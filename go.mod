module mpisim

go 1.22
