package mpisim

import (
	"strings"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	prog := Tomcatv()
	r, err := NewRunner(prog, IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	inputs := TomcatvInputs(96, 2)
	if _, err := r.Calibrate(4, inputs); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Abstract, 8, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time <= 0 {
		t.Fatal("no predicted time")
	}
}

func TestFacadeCompile(t *testing.T) {
	res, err := Compile(Sweep3D())
	if err != nil {
		t.Fatal(err)
	}
	if res.Simplified == nil || res.Timer == nil || len(res.TaskVars) == 0 {
		t.Fatal("incomplete compile result")
	}
	g, err := TaskGraphOf(Sweep3D())
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() == 0 {
		t.Fatal("empty task graph")
	}
}

func TestFacadeMachines(t *testing.T) {
	if IBMSP().Name != "IBM-SP" || Origin2000().Name != "SGI-Origin-2000" {
		t.Fatal("machine presets wrong")
	}
	if _, err := MachineByName("ibmsp"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeInputsBuilders(t *testing.T) {
	if SampleInputs(PatternWavefront, 1, 2, 3, 4, 5)["PATTERN"] != 1 {
		t.Fatal("sample inputs wrong")
	}
	if NASSPInputs(64, 10, 4)["Q"] != 4 {
		t.Fatal("sp inputs wrong")
	}
	if Sweep3DInputs(1, 2, 3, 4, 5, 6)["NPY"] != 6 {
		t.Fatal("sweep inputs wrong")
	}
	if x, y := ProcGrid(12); x*y != 12 {
		t.Fatal("proc grid wrong")
	}
}

func TestFacadeMemoryEstimate(t *testing.T) {
	mem, err := MemoryEstimate(Tomcatv(), 4, TomcatvInputs(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if mem <= 0 {
		t.Fatal("no memory estimated")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 16 {
		t.Fatalf("got %d experiment ids", len(ids))
	}
	res, err := RunExperiment("table1", ExperimentConfig{RankCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Tomcatv") {
		t.Fatal("table1 render missing content")
	}
	if _, err := RunExperiment("nope", ExperimentConfig{}); err == nil {
		t.Fatal("expected unknown experiment error")
	}
}

func TestFacadeHostModel(t *testing.T) {
	r, err := NewRunner(Sample(), Origin2000())
	if err != nil {
		t.Fatal(err)
	}
	inputs := SampleInputs(PatternNearestNeighbour, 2000, 100, 3, 2, 2)
	rep, err := r.Run(Measured, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	w := HostWorkloadFrom(rep, true, r.Lookahead())
	rt, err := DefaultHostParams().Runtime(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rt <= 0 {
		t.Fatal("no host runtime")
	}
}
