package vetcore

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Diagnostic is one finding. The text rendering is what go vet relays
// to the user ("file:line:col: simvet/rule: message"); the JSON form is
// for machine consumers (-json) and mirrors internal/check's Diagnostic
// shape: every field a gate script needs to aggregate per-rule counts.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the vet-style text form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: simvet/%s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Render returns the JSON line form when asJSON is set, the text form
// otherwise.
func (d Diagnostic) Render(asJSON bool) string {
	if !asJSON {
		return d.String()
	}
	b, err := json.Marshal(d)
	if err != nil {
		return d.String() // cannot happen: all fields are plain
	}
	return string(b)
}

// SortDiagnostics orders diagnostics by (file, line, col, rule,
// message), the stable order golden tests and humans both want.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
