// Package vetcore is the shared analysis core of the simvet suite: the
// determinism & concurrency analyzers that machine-check the simulator's
// own source, the way internal/check machine-checks user programs.
//
// It speaks the `go vet -vettool` unit-checker protocol with the
// standard library alone (no golang.org/x/tools), so the analyzers work
// in environments without the x/tools module:
//
//	go build -o simvet ./tools/analyzers/simvet
//	go vet -vettool=$(pwd)/simvet ./...
//
// The core provides what every analyzer needs and none should
// reimplement: vet.cfg package loading and typechecking against the
// build's export data, a Diagnostic type with stable text and JSON
// encodings, the `//simvet:allow <rule> <reason>` suppression mechanism
// (with -strictallow auditing of stale allows), a loop-aware
// use-after-consume flow engine (useafter.go), and call-graph-lite
// reachability from package entry points (reach.go).
package vetcore

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Analyzer is one simvet rule family. Run receives a loaded, typechecked
// package and returns raw diagnostics; the core applies suppressions,
// sorts, and prints.
type Analyzer struct {
	// Name identifies the analyzer (contsafe, detpure, slabref, msgown).
	Name string
	// Doc is a one-line description, printed by -listrules.
	Doc string
	// Rules lists the diagnostic rule names the analyzer can emit. Allow
	// comments name these; unknown names are flagged as stale.
	Rules []string
	// Run performs the analysis.
	Run func(pass *Pass) []Diagnostic
}

// Pass is one package's worth of analysis input.
type Pass struct {
	Fset *token.FileSet
	// Files holds the package's non-test files. Test files are excluded
	// wholesale: they intentionally violate the kernel invariants (panic
	// paths, forced misuse) and carry no suppression obligations.
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string
}

// Position resolves a token position against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Diag constructs a diagnostic at pos.
func (p *Pass) Diag(pos token.Pos, rule, format string, args ...interface{}) Diagnostic {
	tp := p.Fset.Position(pos)
	return Diagnostic{
		File:    tp.Filename,
		Line:    tp.Line,
		Col:     tp.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// Main is the entry point shared by the simvet binary and the msgown
// compatibility wrapper: it implements the vet driver handshake
// (-V=full, -flags), parses the analyzer flags, loads the vet.cfg
// package and runs the given analyzers. It returns the process exit
// code: 0 clean, 1 operational error, 2 diagnostics reported.
func Main(name string, analyzers []Analyzer) int {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	version := fs.String("V", "", "print version and exit (driver handshake)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (driver handshake)")
	listRules := fs.Bool("listrules", false, "list analyzers and their rule names, then exit")
	strict := fs.Bool("strictallow", false, "report stale //simvet:allow comments (no matching diagnostic) as diagnostics")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON lines instead of text")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}
	switch {
	case *version == "full":
		printVersion(name)
		return 0
	case *printFlags:
		// The go command queries supported analyzer flags and then accepts
		// them on the `go vet` command line, forwarding them to every tool
		// invocation.
		fmt.Println(`[{"Name":"strictallow","Bool":true,"Usage":"report stale //simvet:allow comments"},` +
			`{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON lines"}]`)
		return 0
	case *listRules:
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			for _, r := range a.Rules {
				fmt.Printf("  %s\n", r)
			}
		}
		return 0
	}
	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: usage: %s [-strictallow] [-json] <vet.cfg> (run via go vet -vettool)\n", name, name)
		return 2
	}
	return checkPackage(name, args[0], analyzers, Options{StrictAllow: *strict, JSON: *jsonOut})
}

// Options are the per-invocation analysis options.
type Options struct {
	// StrictAllow reports allow comments that suppressed nothing.
	StrictAllow bool
	// JSON emits diagnostics as JSON lines instead of text.
	JSON bool
}

// printVersion implements the -V=full handshake the go command uses for
// build caching: "<name> version devel buildID=<content hash>".
func printVersion(name string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// vetConfig mirrors the JSON the go command writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// checkPackage loads one vet.cfg unit, runs the analyzers and prints
// the surviving diagnostics.
func checkPackage(name, cfgPath string, analyzers []Analyzer, opts Options) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", name, cfgPath, err)
		return 1
	}
	// The driver expects a facts file from every invocation; we carry no
	// facts, so an empty one satisfies it.
	defer func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}()
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fname := range cfg.GoFiles {
		// Comments are needed for the //simvet:allow directives.
		f, err := parser.ParseFile(fset, fname, nil, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		files = append(files, f)
	}

	// Typecheck against the export data the build already produced.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("%s: no export data for %q", name, path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tcfg := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: languageVersion(cfg.GoVersion),
		Error:     func(error) {}, // keep going; the first error is returned anyway
	}
	info := NewInfo()
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return 1
	}

	pass := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, ImportPath: cfg.ImportPath}
	diags := RunAnalyzers(pass, analyzers, opts)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.Render(opts.JSON))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// RunAnalyzers runs the analyzers over a loaded pass, drops diagnostics
// from test files, applies the //simvet:allow suppressions, and returns
// the survivors sorted by position. It is the seam the golden corpus
// tests drive directly, so the suppression semantics under test are
// exactly the ones the vet binary ships.
func RunAnalyzers(pass *Pass, analyzers []Analyzer, opts Options) []Diagnostic {
	nonTest := pass.Files[:0:0]
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	sub := *pass
	sub.Files = nonTest

	known := map[string]bool{}
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, r := range a.Rules {
			known[r] = true
		}
		diags = append(diags, a.Run(&sub)...)
	}
	allows := CollectAllows(sub.Fset, sub.Files)
	diags = ApplyAllows(diags, allows, known, opts.StrictAllow)
	SortDiagnostics(diags)
	return diags
}

// languageVersion reduces a toolchain version like "go1.24.5" to the
// language version go/types accepts.
func languageVersion(v string) string {
	if !strings.HasPrefix(v, "go") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return ""
	}
	return parts[0] + "." + parts[1]
}
