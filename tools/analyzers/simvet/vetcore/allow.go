package vetcore

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives. A comment of the form
//
//	//simvet:allow <rule> <reason>
//
// suppresses diagnostics of that rule on the directive's own line
// (trailing comment) or on the line directly below it (comment-above
// style). The reason is mandatory: an allow without one is malformed
// and reported unconditionally — a suppression nobody can audit is
// itself a finding. A wrong rule name suppresses nothing, so the
// original diagnostic still fires; under -strictallow the unmatched
// directive is additionally reported as stale, which is also how
// annotations that outlive their diagnostic (the code was fixed, the
// comment stayed) surface.

// AllowRule is the rule name under which the suppression mechanism's
// own findings (malformed or stale directives) are reported.
const AllowRule = "allow"

// allowPrefix is the directive marker. Like go:build directives, the
// comment must start exactly with it (no space after //).
const allowPrefix = "simvet:allow"

// Allow is one parsed //simvet:allow directive.
type Allow struct {
	File   string
	Line   int
	Rule   string
	Reason string
	// Malformed is set when the directive lacks a rule or a reason.
	Malformed bool
	// used records whether the directive suppressed at least one
	// diagnostic in this package.
	used bool
}

// CollectAllows parses the suppression directives from the given files
// (which must have been parsed with parser.ParseComments).
func CollectAllows(fset *token.FileSet, files []*ast.File) []*Allow {
	var out []*Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &Allow{File: pos.Filename, Line: pos.Line}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					a.Malformed = true
					if len(fields) == 1 {
						a.Rule = fields[0]
					}
				} else {
					a.Rule = fields[0]
					a.Reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// ApplyAllows filters diags through the directives: a diagnostic is
// suppressed when a well-formed allow with the same rule sits on the
// same line or the line above it in the same file. Malformed directives
// are always reported; unused (stale) and unknown-rule directives are
// reported when strict is set.
func ApplyAllows(diags []Diagnostic, allows []*Allow, knownRules map[string]bool, strict bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.Malformed || a.Rule != d.Rule || a.File != d.File {
				continue
			}
			if a.Line == d.Line || a.Line == d.Line-1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.Malformed:
			out = append(out, Diagnostic{
				File: a.File, Line: a.Line, Col: 1, Rule: AllowRule,
				Message: "malformed //simvet:allow: want \"//simvet:allow <rule> <reason>\"",
			})
		case strict && !knownRules[a.Rule]:
			out = append(out, Diagnostic{
				File: a.File, Line: a.Line, Col: 1, Rule: AllowRule,
				Message: "//simvet:allow names unknown rule " + strconv.Quote(a.Rule),
			})
		case strict && !a.used:
			out = append(out, Diagnostic{
				File: a.File, Line: a.Line, Col: 1, Rule: AllowRule,
				Message: "stale //simvet:allow " + a.Rule + ": no matching diagnostic on this or the next line",
			})
		}
	}
	return out
}
