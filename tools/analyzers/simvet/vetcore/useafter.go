package vetcore

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Use-after-consume flow engine, shared by msgown (message ownership)
// and slabref (event-slab aliasing). The analysis is intraprocedural
// and mostly flow-insensitive, with one deliberate piece of flow
// structure: loop back-edges.
//
// A variable is "consumed" at a position (ownership transferred away,
// or the memory it points into invalidated). A later read of the same
// variable is a finding unless a reassignment re-establishes it in
// between. "Later" means later in execution order, which is source
// order plus the back-edges of enclosing loops: a use that precedes the
// consume in source but shares an enclosing for/range statement with it
// executes after it on the next iteration. That loop case is exactly
// the shape the original standalone msgown documented as its known
// gap; handling it here fixes every analyzer built on the engine at
// once.
//
// For the backward (loop-carried) path consume → loop end → loop start
// → use, a reassignment kills the finding when it lies either after the
// consume (still inside the loop) or before the use — i.e. anywhere on
// that path. The common safe idiom `for { m := recv(); ...; free(m) }`
// is killed by the `m :=` at the loop head; a loop that consumes
// without reassigning (`for ... { free(m) }`) is correctly flagged,
// including at the consuming call's own argument, which is a genuine
// loop-carried double-consume.

// Consumption marks one variable invalidated from Pos onward.
type Consumption struct {
	Obj types.Object
	// Pos is the position after which uses are invalid (typically the
	// consuming call's End).
	Pos token.Pos
	// Label names the consumer for the diagnostic message.
	Label string
}

// UseAfterFinding is one read of a consumed variable.
type UseAfterFinding struct {
	// Use is the offending identifier.
	Use *ast.Ident
	// Consumption is the transfer the use trails.
	Consumption Consumption
	// LoopCarried is set when the use only follows the consumption via a
	// loop back-edge (use before consume in source order).
	LoopCarried bool
}

// FindUsesAfter reports reads of consumed variables after their
// consumption point within body. Kills (reassignments of the variable,
// including := definitions) re-establish ownership on the paths
// described above.
func FindUsesAfter(body *ast.BlockStmt, info *types.Info, consumed []Consumption) []UseAfterFinding {
	if len(consumed) == 0 {
		return nil
	}
	byObj := map[types.Object][]Consumption{}
	for _, c := range consumed {
		byObj[c.Obj] = append(byObj[c.Obj], c)
	}

	// Kill positions: every (re)assignment of a consumed variable, and
	// the set of identifiers that are assignment targets (an LHS ident is
	// not a read).
	kills := map[types.Object][]token.Pos{}
	assignLHS := map[*ast.Ident]bool{}
	var loops []loopRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				assignLHS[id] = true
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id] // := definitions
				}
				if obj != nil && byObj[obj] != nil {
					kills[obj] = append(kills[obj], x.End())
				}
			}
		case *ast.ForStmt:
			loops = append(loops, loopRange{x.Pos(), x.End()})
		case *ast.RangeStmt:
			loops = append(loops, loopRange{x.Pos(), x.End()})
		}
		return true
	})

	var out []UseAfterFinding
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || assignLHS[id] {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		cons := byObj[obj]
		if cons == nil {
			return true
		}
		for _, c := range cons {
			if id.Pos() > c.Pos {
				// Forward: use after consume in source order.
				if !killedBetween(kills[obj], c.Pos, id.Pos()) {
					out = append(out, UseAfterFinding{Use: id, Consumption: c})
					return true
				}
				continue
			}
			// Backward: use precedes the consume in source. It trails it in
			// execution order iff some loop encloses both; the innermost
			// such loop gives the tightest back-edge path.
			l, ok := innermostEnclosingBoth(loops, c.Pos, id.Pos())
			if !ok {
				continue
			}
			// Path consume → loop end → loop start → use; any kill on it
			// re-establishes the variable before the use.
			if killedBetween(kills[obj], c.Pos, l.end) || killedBetween(kills[obj], l.pos-1, id.Pos()) {
				continue
			}
			out = append(out, UseAfterFinding{Use: id, Consumption: c, LoopCarried: true})
			return true
		}
		return true
	})
	return out
}

// loopRange is the source span of one for/range statement.
type loopRange struct {
	pos, end token.Pos
}

// innermostEnclosingBoth returns the smallest loop span containing both
// positions.
func innermostEnclosingBoth(loops []loopRange, a, b token.Pos) (loopRange, bool) {
	var best loopRange
	found := false
	for _, l := range loops {
		if a < l.pos || a > l.end || b < l.pos || b > l.end {
			continue
		}
		if !found || l.end-l.pos < best.end-best.pos {
			best, found = l, true
		}
	}
	return best, found
}

// killedBetween reports whether any kill position lies in (from, to].
func killedBetween(kills []token.Pos, from, to token.Pos) bool {
	for _, k := range kills {
		if k > from && k <= to {
			return true
		}
	}
	return false
}
