package vetcore

import (
	"go/ast"
	"go/types"
)

// Call-graph-lite reachability. Analyzers that guard determinism (like
// detpure) only care about code the simulator can actually execute:
// a dead unexported helper with a wall-clock read is lint, not a
// reproducibility hazard. Building a precise call graph needs pointer
// analysis; this is the honest cheap version:
//
//   - nodes are the package's declared functions and methods;
//   - there is an edge from f to g when f's declaration references g at
//     all (called, deferred, passed, stored — any mention). Reference
//     edges over-approximate calls, which is the safe direction for a
//     reachability *filter*: address-taken functions invoked through a
//     table or goroutine are still covered;
//   - entry points are the exported functions and methods, init, main,
//     and every function referenced from a package-level variable
//     declaration (it escapes into a table the package may consult).
//
// Cross-package calls into the analyzed package (interface dispatch
// from elsewhere) land on exported methods, which are entries already.
type Reach struct {
	reachable map[types.Object]bool
}

// NewReach computes the reachable set for the pass. isEntry may be nil,
// in which case DefaultEntry is used.
func NewReach(pass *Pass, isEntry func(*types.Func) bool) *Reach {
	if isEntry == nil {
		isEntry = DefaultEntry
	}
	// Collect declarations and their reference edges.
	edges := map[types.Object][]types.Object{}
	var work []types.Object
	reachable := map[types.Object]bool{}
	mark := func(obj types.Object) {
		if obj != nil && !reachable[obj] {
			reachable[obj] = true
			work = append(work, obj)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj, ok := pass.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				var refs []types.Object
				ast.Inspect(d, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if g, ok := pass.Info.Uses[id].(*types.Func); ok && g.Pkg() == pass.Pkg {
						refs = append(refs, g)
					}
					return true
				})
				edges[obj] = refs
				if isEntry(obj) {
					mark(obj)
				}
			case *ast.GenDecl:
				// Functions referenced from package-level var/const decls
				// escape into initialization tables: treat them as entries.
				ast.Inspect(d, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					if g, ok := pass.Info.Uses[id].(*types.Func); ok && g.Pkg() == pass.Pkg {
						mark(g)
					}
					return true
				})
			}
		}
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, g := range edges[obj] {
			mark(g)
		}
	}
	return &Reach{reachable: reachable}
}

// DefaultEntry treats exported functions and methods, init and main as
// roots.
func DefaultEntry(fn *types.Func) bool {
	return fn.Exported() || fn.Name() == "init" || fn.Name() == "main"
}

// Reachable reports whether the declaration's function is reachable.
// Declarations without type information (broken code) count as
// reachable, erring toward reporting.
func (r *Reach) Reachable(pass *Pass, decl *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return true
	}
	return r.reachable[obj]
}
