package vetcore

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestLanguageVersion(t *testing.T) {
	cases := map[string]string{
		"go1.24.5": "go1.24",
		"go1.21":   "go1.21",
		"devel":    "",
		"":         "",
	}
	for in, want := range cases {
		if got := languageVersion(in); got != want {
			t.Errorf("languageVersion(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiagnosticRender(t *testing.T) {
	d := Diagnostic{File: "kernel.go", Line: 7, Col: 3, Rule: "slabref", Message: "stale alias"}
	if got, want := d.String(), "kernel.go:7:3: simvet/slabref: stale alias"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	var back Diagnostic
	if err := json.Unmarshal([]byte(d.Render(true)), &back); err != nil {
		t.Fatalf("JSON form does not round-trip: %v", err)
	}
	if back != d {
		t.Errorf("round-trip: got %+v, want %+v", back, d)
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Rule: "x"},
		{File: "a.go", Line: 2, Col: 1, Rule: "x"},
		{File: "a.go", Line: 1, Col: 5, Rule: "x"},
		{File: "a.go", Line: 1, Col: 5, Rule: "m"},
	}
	SortDiagnostics(ds)
	want := []Diagnostic{
		{File: "a.go", Line: 1, Col: 5, Rule: "m"},
		{File: "a.go", Line: 1, Col: 5, Rule: "x"},
		{File: "a.go", Line: 2, Col: 1, Rule: "x"},
		{File: "b.go", Line: 1, Col: 1, Rule: "x"},
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("order[%d] = %+v, want %+v", i, ds[i], want[i])
		}
	}
}

func parseAllows(t *testing.T, src string) []*Allow {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return CollectAllows(fset, []*ast.File{f})
}

func TestCollectAllows(t *testing.T) {
	allows := parseAllows(t, `package p

var a = 1 //simvet:allow wallclock reason with several words
//simvet:allow maprange
// simvet:allow spaced does not count: not a directive
var b = 2
`)
	if len(allows) != 2 {
		t.Fatalf("want 2 directives, got %+v", allows)
	}
	if allows[0].Rule != "wallclock" || allows[0].Reason != "reason with several words" || allows[0].Malformed {
		t.Errorf("directive 0 parsed wrong: %+v", allows[0])
	}
	if allows[1].Rule != "maprange" || !allows[1].Malformed {
		t.Errorf("missing-reason directive not marked malformed: %+v", allows[1])
	}
}

func TestApplyAllowsSameAndPreviousLine(t *testing.T) {
	known := map[string]bool{"wallclock": true}
	allows := []*Allow{{File: "x.go", Line: 10, Rule: "wallclock", Reason: "ok"}}
	diags := []Diagnostic{
		{File: "x.go", Line: 10, Rule: "wallclock"}, // same line: suppressed
		{File: "x.go", Line: 11, Rule: "wallclock"}, // line below the directive: suppressed
		{File: "x.go", Line: 12, Rule: "wallclock"}, // too far: kept
		{File: "y.go", Line: 10, Rule: "wallclock"}, // other file: kept
	}
	out := ApplyAllows(diags, allows, known, false)
	if len(out) != 2 {
		t.Fatalf("want 2 surviving diagnostics, got %+v", out)
	}
	for _, d := range out {
		if d.File == "x.go" && d.Line != 12 {
			t.Errorf("wrong diagnostic survived: %+v", d)
		}
	}
}

func TestApplyAllowsStrict(t *testing.T) {
	known := map[string]bool{"wallclock": true}
	allows := []*Allow{
		{File: "x.go", Line: 3, Rule: "wallclock", Reason: "stale"},
		{File: "x.go", Line: 5, Rule: "bogus", Reason: "typo"},
	}
	out := ApplyAllows(nil, allows, known, true)
	if len(out) != 2 {
		t.Fatalf("want stale + unknown-rule reports, got %+v", out)
	}
	var haveStale, haveUnknown bool
	for _, d := range out {
		if d.Rule != AllowRule {
			t.Errorf("meta-report under wrong rule: %+v", d)
		}
		if strings.Contains(d.Message, "stale") {
			haveStale = true
		}
		if strings.Contains(d.Message, "unknown rule") {
			haveUnknown = true
		}
	}
	if !haveStale || !haveUnknown {
		t.Errorf("missing stale/unknown report: %+v", out)
	}
}
