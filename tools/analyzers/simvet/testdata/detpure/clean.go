package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Scaled threads an explicit seeded stream: fully deterministic, and
// exactly what globalrand steers toward.
func Scaled(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Invert is a keyed store: each iteration writes its own key and reads
// no other, so the visit order is immaterial.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Buckets mixes guards and continue with keyed stores.
func Buckets(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		if v < 0 {
			continue
		}
		if v%2 == 0 {
			out[k] = v
		} else {
			out[k] = -v
		}
	}
	return out
}

// SortedKeys is the append-then-sort idiom: the randomized order is
// washed out before anyone observes it.
func SortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Traced carries a reviewed wallclock annotation: observability only.
func Traced() int64 {
	t := time.Now().UnixNano() //simvet:allow wallclock fixture: observability only
	return t
}

// deadClock is unreachable from any entry point — lint, not a
// reproducibility hazard, and deliberately not reported.
func deadClock() int64 {
	return time.Now().UnixNano()
}
