package sim

// Checksum folds float values in iteration order; float addition is not
// associative, so the sum depends on the randomized order.
func Checksum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// FirstKey returns whichever key the iterator yields first.
func FirstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Concat builds a string in iteration order.
func Concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
