package sim

import "time"

// Stamp reads the wall clock inside the deterministic core.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed derives a duration from wall time.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
