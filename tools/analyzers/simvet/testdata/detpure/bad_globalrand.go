package sim

import "math/rand"

// Jitter draws from the process-global source: seeded once, shared
// across goroutines, irreproducible.
func Jitter() float64 {
	return rand.Float64()
}

// Pick indexes with the global source.
func Pick(n int) int {
	return rand.Intn(n)
}

// Scramble mutates order with the global source.
func Scramble(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
