package sim

import "time"

// EstimateETA is the live-telemetry ETA shape: extrapolating remaining
// wall time for a run fraction from the wall clock. Inside the
// deterministic core this is exactly the code that must carry a
// reviewed //simvet:allow wallclock annotation — without one the gate
// is red (obs.RunInfo carries the allowed twin).
func EstimateETA(start time.Time, percent float64) time.Duration {
	elapsed := time.Since(start)
	if percent <= 0 || percent > 1 {
		return 0
	}
	return time.Duration(float64(elapsed) * (1 - percent) / percent)
}

// SnapshotDue decides a sampling cadence from the wall clock instead of
// virtual time or event counts — the other tempting telemetry bug.
func SnapshotDue(last time.Time, every time.Duration) bool {
	return time.Now().Sub(last) >= every
}
