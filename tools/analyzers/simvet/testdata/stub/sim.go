// Package sim here is a self-contained stand-in for the kernel surface
// the simvet rules recognize (they match named types by package *name*,
// so this stub exercises them exactly like the real kernel). Every
// fixture file in the sibling rule directories is typechecked together
// with this stub as one package. The stub itself is invariant-clean:
// the golden harness runs all analyzers over stub+fixture, so any
// diagnostic in this file would show up in every golden file.
package sim

// Time is virtual time.
type Time int64

// Message mirrors the pooled kernel message.
type Message struct {
	Size    int64
	Payload interface{}
	From    int
	Tag     int
}

// Proc mirrors the process handle.
type Proc struct {
	rank int
}

// Cont is the continuation-handler type.
type Cont func(p *Proc, m *Message) Cont

func (p *Proc) Send(to int, payload interface{}, size int64)              {}
func (p *Proc) SendTag(to, tag int, payload interface{})                  {}
func (p *Proc) SendTagFault(to, tag int, payload interface{}, size int64) {}
func (p *Proc) SendVia(path []int, payload interface{})                   {}
func (p *Proc) Forward(m *Message, to, tag int)                           {}
func (p *Proc) FreeMessage(m *Message)                                    {}
func (p *Proc) Recv() *Message                                            { return nil }
func (p *Proc) RecvSrcTag(src, tag int) *Message                          { return nil }
func (p *Proc) Sleep(d Time)                                              {}
func (p *Proc) WaitRecv()                                                 {}
func (p *Proc) WaitRecvFn(src, tag int)                                   {}
func (p *Proc) WaitSleep(d Time)                                          {}

// event mirrors the plain-value slab event.
type event struct {
	t   Time
	seq uint64
}

func eventLess(a, b *event) bool { return a.t < b.t || (a.t == b.t && a.seq < b.seq) }

// eventQueue mirrors the slab-backed heap.
type eventQueue struct {
	a []event
}

func (q *eventQueue) push(e event) { q.a = append(q.a, e) }
func (q *eventQueue) pop() event {
	e := q.a[len(q.a)-1]
	q.a = q.a[:len(q.a)-1]
	return e
}
func (q *eventQueue) peek() *event {
	if len(q.a) == 0 {
		return nil
	}
	return &q.a[0]
}
func (q *eventQueue) grow() {}

// worker mirrors the per-worker slab owner.
type worker struct {
	queue  eventQueue
	outbox []event
}

func (w *worker) sendOut(e event) { w.outbox = append(w.outbox, e) }
func (w *worker) mergeOutboxes()  {}
func (w *worker) processWindow()  {}
func (w *worker) batchSameTime()  {}
func (w *worker) clearOutbox()    { w.outbox = w.outbox[:0] }
