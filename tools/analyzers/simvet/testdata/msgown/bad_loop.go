package sim

// loopDoubleFree frees the same message on every iteration: the second
// pass consumes a pointer the pool already owns. This backward-jumping
// shape is exactly the flow-insensitivity gap the standalone msgown
// documented; the loop-aware engine closes it.
func loopDoubleFree(p *Proc, n int) {
	m := p.Recv()
	for i := 0; i < n; i++ {
		p.FreeMessage(m)
	}
}

// loopReadStale reads a message on iterations after the one that freed
// it.
func loopReadStale(p *Proc, n int) int64 {
	var total int64
	m := p.Recv()
	for i := 0; i < n; i++ {
		total += m.Size
		p.FreeMessage(m)
	}
	return total
}
