package sim

// consumeLast reads everything it needs before the transfer.
func consumeLast(p *Proc) (int64, interface{}) {
	m := p.RecvSrcTag(0, 1)
	size, data := m.Size, m.Payload
	p.FreeMessage(m)
	return size, data
}

// reassigned restores ownership before the next read.
func reassigned(p *Proc) int64 {
	m := p.RecvSrcTag(0, 1)
	p.FreeMessage(m)
	m = p.RecvSrcTag(0, 2)
	total := m.Size
	p.FreeMessage(m)
	return total
}

// loopFresh re-receives at the head of each iteration: the definition
// kills the previous iteration's consumption on the back-edge path.
func loopFresh(p *Proc, n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		m := p.Recv()
		total += m.Size
		p.FreeMessage(m)
	}
	return total
}

type note struct {
	n int
}

// otherTypes passes a non-message pointer: not ours to police.
func otherTypes(p *Proc, m *note) int {
	p.Send(1, m, 0)
	return m.n
}

// readBeforeForward reads, then forwards, never after.
func readBeforeForward(p *Proc) int64 {
	m := p.RecvSrcTag(0, 1)
	size := m.Size
	p.Forward(m, 1, 0)
	return size
}
