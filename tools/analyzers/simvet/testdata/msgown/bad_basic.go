package sim

// readAfterFree reads the message after returning it to the pool.
func readAfterFree(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size
}

// doubleFree frees twice; the second call hands the pool a pointer it
// may already have re-issued.
func doubleFree(p *Proc, m *Message) {
	p.FreeMessage(m)
	p.FreeMessage(m)
}

// readAfterSend reads after ownership transferred with the payload.
func readAfterSend(p *Proc, m *Message) int64 {
	p.Send(1, m, m.Size)
	return m.Size
}

// readAfterForward reads after re-issuing the message to the kernel.
func readAfterForward(p *Proc, m *Message) int64 {
	p.Forward(m, 1, 0)
	return m.Size
}
