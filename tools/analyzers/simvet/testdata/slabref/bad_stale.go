package sim

// stalePeek holds a peek result across a push: the push may grow the
// slab and move every event.
func stalePeek(q *eventQueue, e event) Time {
	top := q.peek()
	q.push(e)
	return top.t
}

// staleSubslice holds a view of the outbox across a sendOut.
func staleSubslice(w *worker, e event) int {
	pending := w.outbox[1:]
	w.sendOut(e)
	return len(pending)
}

// staleMerge holds a pointer across a merge that rewrites the slab.
func staleMerge(w *worker) Time {
	head := w.queue.peek()
	w.mergeOutboxes()
	return head.t
}
