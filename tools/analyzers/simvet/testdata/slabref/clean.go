package sim

// growPush is the canonical append-grow pattern: a holds the append's
// own result, which is the fresh, valid slab reference.
func growPush(q *eventQueue, e event) {
	a := append(q.a, e)
	i := len(a) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !eventLess(&e, &a[par]) {
			break
		}
		a[i] = a[par]
		i = par
	}
	a[i] = e
	q.a = a
}

// rederive refreshes the reference after the mutation instead of
// holding it across.
func rederive(q *eventQueue, e event) Time {
	top := q.peek()
	t0 := top.t
	q.push(e)
	top = q.peek()
	return top.t - t0
}

// copyOut copies the event value before mutating: events are plain
// values, a copy cannot go stale.
func copyOut(q *eventQueue, e event) Time {
	top := *q.peek()
	q.push(e)
	return top.t
}

// drain re-derives the head at the top of every iteration, so the
// previous iteration's pop never leaks a stale alias into this one.
func drain(q *eventQueue) Time {
	var last Time
	for len(q.a) > 0 {
		top := q.peek()
		last = top.t
		_ = q.pop()
	}
	return last
}
