package sim

// staleLoop reads a peek result taken before the loop on every
// iteration; from the second pass on, the push may have moved it.
func staleLoop(q *eventQueue, n int) Time {
	var last Time
	top := q.peek()
	for i := 0; i < n; i++ {
		last = top.t
		q.push(event{t: last})
	}
	return last
}
