package sim

// noArm returns a continuation without arming any wait: the process
// would never be scheduled again.
func noArm(p *Proc, m *Message) Cont {
	p.FreeMessage(m)
	return noArm
}

// twoArms arms twice before returning; the kernel allows one pending
// wait per process.
func twoArms(p *Proc, m *Message) Cont {
	p.WaitRecv()
	p.WaitSleep(10)
	return twoArms
}

// maybeArm arms on one branch only: the else path returns an armless
// continuation.
func maybeArm(p *Proc, m *Message) Cont {
	if m.Size > 0 {
		p.WaitRecv()
	}
	return maybeArm
}

// armThenNil arms a wait and then terminates; the armed wait fires into
// a dead process.
func armThenNil(p *Proc, m *Message) Cont {
	p.WaitSleep(5)
	return nil
}
