package sim

// spawns starts a goroutine from a handler: worker-owned state is
// single-token and handlers must run to completion.
func spawns(p *Proc, m *Message) Cont {
	go func() {
		_ = p.rank
	}()
	p.WaitRecv()
	return spawns
}
