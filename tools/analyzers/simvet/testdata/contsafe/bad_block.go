package sim

// blockingRecv parks the worker goroutine: handlers run inline on the
// event loop and must arm a wait instead.
func blockingRecv(p *Proc, m *Message) Cont {
	reply := p.Recv()
	p.FreeMessage(reply)
	p.WaitRecv()
	return blockingRecv
}

// blockingSleep blocks the event loop for virtual time.
func blockingSleep(p *Proc, m *Message) Cont {
	p.Sleep(5)
	return nil
}

// blockingSrcTag blocks via the selective receive.
func blockingSrcTag(p *Proc, m *Message) Cont {
	reply := p.RecvSrcTag(0, 1)
	p.FreeMessage(reply)
	p.WaitRecv()
	return blockingSrcTag
}
