package sim

// pingpong arms exactly one wait on each non-nil return path and frees
// the message before returning.
func pingpong(p *Proc, m *Message) Cont {
	if m == nil {
		return nil
	}
	size := m.Size
	from := m.From
	p.FreeMessage(m)
	if size > 0 {
		p.SendTag(from, 0, size)
		p.WaitRecv()
		return pingpong
	}
	return nil
}

// dispatch arms in every switch arm, including the default.
func dispatch(p *Proc, m *Message) Cont {
	switch m.Tag {
	case 0:
		p.WaitRecv()
	case 1:
		p.WaitRecvFn(m.From, 1)
	default:
		p.WaitSleep(1)
	}
	return dispatch
}

// makeHandler is not itself a handler (wrong arity), so its return is
// not judged; the closure it builds is, and is clean.
func makeHandler(tag int) Cont {
	return func(p *Proc, m *Message) Cont {
		p.FreeMessage(m)
		p.WaitRecvFn(0, tag)
		return dispatch
	}
}

// stopper terminates without arming: a plain nil return needs no wait.
func stopper(p *Proc, m *Message) Cont {
	p.FreeMessage(m)
	return nil
}
