package sim

type mailbox struct {
	last *Message
}

var (
	latest *Message
	box    mailbox
)

// retainClosure captures the message in the returned continuation; by
// the time it runs, the pool has recycled the message.
func retainClosure(p *Proc, m *Message) Cont {
	p.WaitRecv()
	return func(p2 *Proc, m2 *Message) Cont {
		p2.SendTag(0, 0, m.Size)
		p2.FreeMessage(m2)
		p2.WaitRecv()
		return retainGlobal
	}
}

// retainGlobal parks the message in a package-level variable.
func retainGlobal(p *Proc, m *Message) Cont {
	latest = m
	p.WaitRecv()
	return retainGlobal
}

// retainField stores the message through a field of long-lived state.
func retainField(p *Proc, m *Message) Cont {
	box.last = m
	p.WaitRecv()
	return retainField
}
