package rules

import (
	"flag"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mpisim/tools/analyzers/simvet/vetcore"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// fixtureImportPath places fixtures inside the detpure core scope.
const fixtureImportPath = "mpisim/internal/sim"

// runSuite typechecks the given sources as one package (with the stdlib
// source importer, so fixtures may import time, math/rand, sort) and
// runs the full analyzer suite through the same RunAnalyzers seam the
// vet binary uses.
func runSuite(t *testing.T, opts vetcore.Options, sources map[string]string) []vetcore.Diagnostic {
	t.Helper()
	return runSuiteAt(t, fixtureImportPath, opts, sources)
}

// runSuiteAt is runSuite with an explicit import path (detpure scopes
// by it).
func runSuiteAt(t *testing.T, importPath string, opts vetcore.Options, sources map[string]string) []vetcore.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := vetcore.NewInfo()
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &vetcore.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, ImportPath: importPath}
	return vetcore.RunAnalyzers(pass, All(), opts)
}

// readStub loads the shared package-sim fixture header.
func readStub(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "testdata", "stub", "sim.go"))
	if err != nil {
		t.Fatalf("read stub: %v", err)
	}
	return string(data)
}

// TestGolden runs every fixture in testdata/<rule>/ together with the
// stub and compares the rendered diagnostics against <fixture>.golden.
// clean* fixtures must produce no diagnostics at all (no golden file).
// Regenerate with: go test ./tools/analyzers/simvet/rules -run Golden -update
func TestGolden(t *testing.T) {
	stub := readStub(t)
	dirs, err := filepath.Glob(filepath.Join("..", "testdata", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		base := filepath.Base(dir)
		if base == "stub" {
			continue
		}
		fixtures, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(fixtures) == 0 {
			t.Errorf("no fixtures under %s", dir)
		}
		for _, fixture := range fixtures {
			fixture := fixture
			t.Run(base+"/"+filepath.Base(fixture), func(t *testing.T) {
				src, err := os.ReadFile(fixture)
				if err != nil {
					t.Fatal(err)
				}
				diags := runSuite(t, vetcore.Options{}, map[string]string{
					"sim_stub.go":          stub,
					filepath.Base(fixture): string(src),
				})
				var lines []string
				for _, d := range diags {
					lines = append(lines, d.String())
				}
				got := strings.Join(lines, "\n")
				if got != "" {
					got += "\n"
				}

				if strings.HasPrefix(filepath.Base(fixture), "clean") {
					if got != "" {
						t.Errorf("clean fixture produced diagnostics:\n%s", got)
					}
					return
				}
				goldenPath := fixture + ".golden"
				if *update {
					if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if got != string(want) {
					t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
				}
				if got == "" {
					t.Errorf("bad fixture produced no diagnostics")
				}
			})
		}
	}
}
