package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpisim/tools/analyzers/simvet/vetcore"
)

// detpure guards the simulator's reproducibility contract: two runs
// with the same configuration and seed must produce bit-identical
// virtual-time results. Inside the deterministic core — the packages
// whose computations feed virtual time, routing, fault injection and
// cost estimation — three nondeterminism sources are banned:
//
//   - wallclock: time.Now / time.Since. Wall-clock reads belong in the
//     observability layer only, behind `//simvet:allow wallclock`
//     annotations that make each one a reviewed decision.
//   - globalrand: the package-level math/rand functions (rand.Intn,
//     rand.Float64, rand.Shuffle, ...). They draw from a process-global
//     source that is seeded once and shared across goroutines; the core
//     must thread explicit *rand.Rand streams (which are methods, not
//     package functions, and are not reported).
//   - maprange: ranging over a map where the iteration order can affect
//     the result. Go randomizes map order per run. Two shapes are
//     provably order-independent and exempt: a body that only performs
//     keyed stores (out[k] = v, out[k] += v — each iteration touches
//     its own key and reads no other), and the append-then-sort idiom
//     (the loop only accumulates into a slice that is sorted
//     immediately after the loop).
//
// Findings are filtered by vetcore.Reach: a dead unexported helper is
// lint, not a reproducibility hazard, and reporting it would train
// people to sprinkle allows.

// detCorePaths are the import paths forming the deterministic core.
// Fixture packages use the same paths via the golden harness.
var detCorePaths = map[string]bool{
	"mpisim/internal/sim":    true,
	"mpisim/internal/mpi":    true,
	"mpisim/internal/net":    true,
	"mpisim/internal/fault":  true,
	"mpisim/internal/interp": true,
	"mpisim/internal/core":   true,
	// The telemetry layer computes progress/ETA and snapshot cadence
	// from values adjacent to virtual time; its intentional wall-clock
	// reads are each annotated, so it rides inside the scope rather
	// than being a blanket exemption.
	"mpisim/internal/obs": true,
}

// DetPure returns the determinism-purity analyzer.
func DetPure() vetcore.Analyzer {
	return vetcore.Analyzer{
		Name:  "detpure",
		Doc:   "the deterministic core must not read the wall clock, draw from the global math/rand source, or depend on map iteration order",
		Rules: []string{"wallclock", "globalrand", "maprange"},
		Run:   runDetPure,
	}
}

func runDetPure(pass *vetcore.Pass) []vetcore.Diagnostic {
	if !detCorePaths[pass.ImportPath] {
		return nil
	}
	reach := vetcore.NewReach(pass, nil)
	var out []vetcore.Diagnostic
	funcDecls(pass, func(_ *ast.File, fn *ast.FuncDecl) {
		if !reach.Reachable(pass, fn) {
			return
		}
		out = append(out, detPureFunc(pass, fn.Body)...)
	})
	return out
}

func detPureFunc(pass *vetcore.Pass, body *ast.BlockStmt) []vetcore.Diagnostic {
	blocks := rangeBlocks(body)
	var out []vetcore.Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, x); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
					out = append(out, pass.Diag(x.Pos(), "wallclock",
						"time.%s in the deterministic core; virtual time must not depend on the wall clock", fn.Name()))
				case fn.Pkg().Path() == "math/rand" && isPackageFunc(fn) && !strings.HasPrefix(fn.Name(), "New"):
					// New/NewSource/NewZipf construct explicit streams from a
					// caller-supplied seed — the deterministic alternative the
					// rule steers toward — and are exempt.
					out = append(out, pass.Diag(x.Pos(), "globalrand",
						"rand.%s draws from the process-global source; thread an explicit seeded *rand.Rand through the core instead", fn.Name()))
				}
			}
		case *ast.RangeStmt:
			if isMapRange(pass.Info, x) && !orderIndependent(pass.Info, x, blocks[x]) {
				out = append(out, pass.Diag(x.Pos(), "maprange",
					"map iteration order is randomized per run and this loop's result can depend on it; iterate sorted keys, or restructure into keyed stores or append-then-sort"))
			}
		}
		return true
	})
	return out
}

// rangeBlocks maps each range statement that sits directly in a block
// to that block, so appendThenSort can look at the statement following
// the loop. Range statements in other positions (case clause bodies)
// simply get no exemption, erring toward reporting.
func rangeBlocks(body *ast.BlockStmt) map[*ast.RangeStmt]*ast.BlockStmt {
	m := map[*ast.RangeStmt]*ast.BlockStmt{}
	ast.Inspect(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for _, s := range blk.List {
			if r, ok := s.(*ast.RangeStmt); ok {
				m[r] = blk
			}
		}
		return true
	})
	return m
}

// isPackageFunc reports whether fn is a package-level function (as
// opposed to a method — *rand.Rand methods on an explicit stream are
// deterministic given the seed and are fine).
func isPackageFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, r *ast.RangeStmt) bool {
	t := info.TypeOf(r.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderIndependent recognizes the two exempt shapes.
func orderIndependent(info *types.Info, r *ast.RangeStmt, blk *ast.BlockStmt) bool {
	return keyedStoreOnly(info, r) || appendThenSort(info, r, blk)
}

// keyedStoreOnly reports whether the loop body consists solely of
// stores into map elements (out[k] = v or out[k] op= v — each iteration
// writes its own key), possibly guarded by if/else and continue, and no
// written map base is read in any right-hand side or condition — so
// iterations cannot observe each other and the order is immaterial.
func keyedStoreOnly(info *types.Info, r *ast.RangeStmt) bool {
	var written []types.Object
	var reads []ast.Expr
	if !keyedStores(info, r.Body.List, &written, &reads) || len(written) == 0 {
		return false
	}
	// out[k] = out[j] + 1 reads what another iteration may or may not
	// have written yet. (out[k] += v reads only its own key through the
	// LHS, which is not in reads.)
	for _, e := range reads {
		for _, base := range written {
			if refersTo(info, e, base) {
				return false
			}
		}
	}
	return true
}

// keyedStores validates one statement list of the keyed-store shape,
// accumulating the written map bases and every read expression
// (store RHSs and branch conditions).
func keyedStores(info *types.Info, stmts []ast.Stmt, written *[]types.Object, reads *[]ast.Expr) bool {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != 1 {
				return false
			}
			idx, ok := x.Lhs[0].(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := info.TypeOf(idx.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
			base := rootIdent(idx.X)
			if base == nil || info.Uses[base] == nil {
				return false
			}
			*written = append(*written, info.Uses[base])
			*reads = append(*reads, x.Rhs...)
		case *ast.IfStmt:
			if x.Init != nil {
				return false
			}
			*reads = append(*reads, x.Cond)
			if !keyedStores(info, x.Body.List, written, reads) {
				return false
			}
			switch e := x.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !keyedStores(info, e.List, written, reads) {
					return false
				}
			case *ast.IfStmt:
				if !keyedStores(info, []ast.Stmt{e}, written, reads) {
					return false
				}
			default:
				return false
			}
		case *ast.BranchStmt:
			if x.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// appendThenSort reports whether the loop only accumulates into an
// outer slice via s = append(s, ...) (plus loop-local assignments and
// ifs over loop-local state), and the statement following the loop in
// the enclosing block sorts that slice (sort.* or slices.Sort*). The
// randomized order is then washed out before anyone observes it.
func appendThenSort(info *types.Info, r *ast.RangeStmt, blk *ast.BlockStmt) bool {
	if blk == nil {
		return false
	}
	locals := map[types.Object]bool{}
	for _, k := range []ast.Expr{r.Key, r.Value} {
		if id, ok := k.(*ast.Ident); ok && info.Defs[id] != nil {
			locals[info.Defs[id]] = true
		}
	}
	var target types.Object
	if !accumulateOnly(info, r.Body.List, &target, locals) || target == nil {
		return false
	}
	// The statement immediately following the loop must be the sort: any
	// intervening statement could observe the unsorted slice.
	for i, s := range blk.List {
		if s == r {
			return i+1 < len(blk.List) && isSortCallOn(info, blk.List[i+1], target)
		}
	}
	return false
}

// accumulateOnly reports whether the statements only build up the
// append target: assignments of the form target = append(target, ...),
// definitions and mutations of loop-local scratch variables, continue,
// and if statements whose branches satisfy the same property. Exactly
// one append target must emerge. Per-item computation over loop-local
// state is fine — the sort after the loop washes out the visit order —
// but any other mutation of outer state is order-dependent and rejected.
func accumulateOnly(info *types.Info, stmts []ast.Stmt, target *types.Object, locals map[types.Object]bool) bool {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && info.Defs[id] != nil {
						locals[info.Defs[id]] = true
					}
				}
				continue
			}
			// target = append(target, ...)
			if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					obj := info.Uses[id]
					if call, ok := x.Rhs[0].(*ast.CallExpr); ok && isAppend(call) && obj != nil {
						if argRoot, _ := call.Args[0].(*ast.Ident); argRoot != nil && info.Uses[argRoot] == obj {
							if *target != nil && *target != obj {
								return false // two different accumulators
							}
							*target = obj
							continue
						}
					}
				}
			}
			// Mutation of loop-local scratch (s.W = ..., tmp = ...): every
			// LHS must be rooted at a loop-local object.
			for _, lhs := range x.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					return false
				}
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if !locals[obj] {
					return false
				}
			}
		case *ast.IfStmt:
			if x.Init != nil {
				return false
			}
			if !accumulateOnly(info, x.Body.List, target, locals) {
				return false
			}
			switch e := x.Else.(type) {
			case nil:
			case *ast.BlockStmt:
				if !accumulateOnly(info, e.List, target, locals) {
					return false
				}
			case *ast.IfStmt:
				if !accumulateOnly(info, []ast.Stmt{e}, target, locals) {
					return false
				}
			default:
				return false
			}
		case *ast.DeclStmt:
			// Local var/const declarations are scratch; record the names.
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							if info.Defs[id] != nil {
								locals[info.Defs[id]] = true
							}
						}
					}
				}
			}
		case *ast.BranchStmt:
			if x.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isSortCallOn reports whether the statement is a call into sort or
// slices (sort.Slice, sort.Strings, slices.Sort, slices.SortFunc, ...)
// whose first argument mentions the accumulator.
func isSortCallOn(info *types.Info, s ast.Stmt, target types.Object) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg := fn.Pkg().Path()
	if pkg != "sort" && pkg != "slices" {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Sort") && !strings.HasPrefix(fn.Name(), "Slice") &&
		fn.Name() != "Strings" && fn.Name() != "Ints" && fn.Name() != "Float64s" {
		return false
	}
	return refersTo(info, call.Args[0], target)
}
