package rules

import (
	"go/ast"
	"go/types"

	"mpisim/tools/analyzers/simvet/vetcore"
)

// contsafe checks continuation handlers — functions and closures with
// the sim.Cont signature `func(*Proc, *Message) Cont` — against the
// scheduler's run-to-completion contract (cont.go):
//
//   - contarm: a handler returning a non-nil next continuation must arm
//     exactly one wait (WaitRecv/WaitRecvFn/WaitSleep) on every path to
//     that return; arming and then returning nil silently discards the
//     arm and is reported too.
//   - contblock: handlers run inline on the worker's event-loop
//     goroutine and must never call the blocking *Proc primitives
//     (Recv, RecvSrcTag, Sleep) — the runtime panics, this reports it
//     at build time.
//   - contspawn: no goroutine may be spawned from a handler; worker
//     state (slabs, free lists, slots) is single-token-owned.
//   - contretain: the *Message argument is only valid during the
//     handler invocation; capturing it in a nested closure or storing
//     it into memory that outlives the call (field, global, element)
//     retains it past return, after which the pool may recycle it.
//
// The arm analysis is a small abstract interpreter over the handler
// body tracking the (min, max) number of waits armed on the paths
// reaching each statement: if/else branches merge, loops widen max
// (their body may run many times) while keeping min (it may run zero
// times), and each return is judged against the state reaching it.

// waitCalls are the arming primitives.
var waitCalls = map[string]bool{"WaitRecv": true, "WaitRecvFn": true, "WaitSleep": true}

// blockingCalls are the classic blocking primitives a handler must not
// invoke.
var blockingCalls = map[string]bool{"Recv": true, "RecvSrcTag": true, "Sleep": true}

// ContSafe returns the continuation-handler analyzer.
func ContSafe() vetcore.Analyzer {
	return vetcore.Analyzer{
		Name:  "contsafe",
		Doc:   "continuation handlers must arm exactly one wait per return path, never block, spawn or retain the message",
		Rules: []string{"contarm", "contblock", "contspawn", "contretain"},
		Run:   runContSafe,
	}
}

func runContSafe(pass *vetcore.Pass) []vetcore.Diagnostic {
	var out []vetcore.Diagnostic
	funcDecls(pass, func(_ *ast.File, fn *ast.FuncDecl) {
		// Handler-typed declarations (methods used as continuations).
		if isHandlerSig(pass.Info.TypeOf(fn.Name)) {
			out = append(out, checkHandler(pass, fn.Type, fn.Body)...)
		}
		// Handler-typed closures anywhere inside (the common shape:
		// fabricCont's self-referencing onClaim).
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && isHandlerSig(pass.Info.TypeOf(lit)) {
				out = append(out, checkHandler(pass, lit.Type, lit.Body)...)
				return false // nested handlers inside are checked by their own visit
			}
			return true
		})
	})
	return out
}

// isHandlerSig reports whether t is the continuation handler shape:
// func(*sim.Proc, *sim.Message) sim.Cont. Matching the full signature
// (not just the Cont result) keeps non-handler helpers that merely
// produce continuations — like the contDriver trampoline's func() Cont
// — out of scope.
func isHandlerSig(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	params, results := sig.Params(), sig.Results()
	return params.Len() == 2 && results.Len() == 1 &&
		simPtrTo(params.At(0).Type(), "Proc") &&
		simPtrTo(params.At(1).Type(), "Message") &&
		simNamed(results.At(0).Type(), "Cont")
}

// checkHandler runs the four contsafe checks over one handler body.
func checkHandler(pass *vetcore.Pass, ftyp *ast.FuncType, body *ast.BlockStmt) []vetcore.Diagnostic {
	var out []vetcore.Diagnostic

	// contblock / contspawn: anywhere in the handler, including nested
	// non-handler closures (they run inline unless spawned — and
	// spawning is reported anyway). Nested handler closures are their
	// own subjects; skip them here.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if isHandlerSig(pass.Info.TypeOf(x)) {
				return false
			}
		case *ast.GoStmt:
			out = append(out, pass.Diag(x.Pos(), "contspawn",
				"goroutine spawned inside a continuation handler; worker-owned state is single-token and handlers must run to completion"))
		case *ast.CallExpr:
			if name := calleeName(x); blockingCalls[name] && isProcMethod(pass.Info, x) {
				out = append(out, pass.Diag(x.Pos(), "contblock",
					"blocking call %s inside a continuation handler; arm WaitRecv/WaitRecvFn/WaitSleep and return the next handler instead", name))
			}
		}
		return true
	})

	// contretain: the *Message parameter escaping the invocation.
	if msg := messageParam(pass.Info, ftyp); msg != nil {
		out = append(out, checkRetention(pass, body, msg)...)
	}

	// contarm: judge every return against the arm state reaching it.
	st, _ := scanArms(pass, body.List, armState{0, 0}, &out)
	_ = st
	return out
}

// isProcMethod reports whether the call's receiver is a *sim.Proc.
func isProcMethod(info *types.Info, c *ast.CallExpr) bool {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return simPtrTo(info.TypeOf(sel.X), "Proc")
}

// messageParam resolves the handler's *Message parameter object (nil
// when it is anonymous or blank).
func messageParam(info *types.Info, ftyp *ast.FuncType) types.Object {
	if ftyp.Params == nil || len(ftyp.Params.List) == 0 {
		return nil
	}
	last := ftyp.Params.List[len(ftyp.Params.List)-1]
	if len(last.Names) == 0 {
		return nil
	}
	name := last.Names[len(last.Names)-1]
	if name.Name == "_" {
		return nil
	}
	obj := info.Defs[name]
	if obj == nil || !simPtrTo(obj.Type(), "Message") {
		return nil
	}
	return obj
}

// checkRetention reports the *Message parameter escaping the handler:
// captured by a nested closure (which outlives the invocation — the
// returned continuation is the canonical case) or stored through a
// selector/index/star expression (memory the handler does not own).
func checkRetention(pass *vetcore.Pass, body *ast.BlockStmt, msg types.Object) []vetcore.Diagnostic {
	var out []vetcore.Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if refersTo(pass.Info, x.Body, msg) {
				out = append(out, pass.Diag(x.Pos(), "contretain",
					"%s (the handler's *Message argument) is captured by a closure and would outlive the handler; copy the fields you need instead", msg.Name()))
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, isIdent := lhs.(*ast.Ident); isIdent {
					// Locals die with the invocation; package-level variables
					// do not.
					v, isVar := pass.Info.Uses[id].(*types.Var)
					if !isVar || v.Parent() != pass.Pkg.Scope() {
						continue
					}
				}
				for _, rhs := range x.Rhs {
					if refersTo(pass.Info, rhs, msg) {
						out = append(out, pass.Diag(x.Pos(), "contretain",
							"%s (the handler's *Message argument) is stored into memory that outlives the handler; the pool may recycle it after return", msg.Name()))
					}
				}
			}
		}
		return true
	})
	return out
}

// armState tracks how many waits have been armed on the paths reaching
// a program point: min over all paths, max over all paths. unbounded is
// the widened max for loops that arm.
const unbounded = 1 << 20

type armState struct{ min, max int }

func (a armState) add(n int) armState {
	if n == 0 {
		return a
	}
	return armState{a.min + n, a.max + n}
}

func mergeArm(a, b armState) armState {
	return armState{min(a.min, b.min), max(a.max, b.max)}
}

// scanArms walks a statement list, judging returns and threading the
// arm state through. The second result reports whether every path
// through the list terminates (returns), so unreachable fallthrough
// state is not merged.
func scanArms(pass *vetcore.Pass, stmts []ast.Stmt, in armState, out *[]vetcore.Diagnostic) (armState, bool) {
	st := in
	for _, s := range stmts {
		var terminated bool
		st, terminated = scanArmStmt(pass, s, st, out)
		if terminated {
			return st, true
		}
	}
	return st, false
}

// scanArmStmt evaluates one statement's effect on the arm state.
func scanArmStmt(pass *vetcore.Pass, s ast.Stmt, in armState, out *[]vetcore.Diagnostic) (armState, bool) {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		st := in.add(countArms(pass.Info, x))
		judgeReturn(pass, x, st, out)
		return st, true
	case *ast.BlockStmt:
		return scanArms(pass, x.List, in, out)
	case *ast.IfStmt:
		st := in.add(countArmsShallow(pass.Info, x.Init)).add(countArmsExpr(pass.Info, x.Cond))
		thenSt, thenTerm := scanArms(pass, x.Body.List, st, out)
		elseSt, elseTerm := st, false
		if x.Else != nil {
			elseSt, elseTerm = scanArmStmt(pass, x.Else, st, out)
		}
		switch {
		case thenTerm && elseTerm:
			return thenSt, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeArm(thenSt, elseSt), false
		}
	case *ast.ForStmt, *ast.RangeStmt:
		// The body may run zero or many times: keep min, widen max if the
		// body can arm. Returns inside are judged with first-iteration
		// state — good enough for handlers, which do not loop over arms.
		var bodyList []ast.Stmt
		if f, ok := x.(*ast.ForStmt); ok {
			bodyList = f.Body.List
		} else {
			bodyList = x.(*ast.RangeStmt).Body.List
		}
		bodySt, _ := scanArms(pass, bodyList, in, out)
		st := in
		if bodySt.max > in.max {
			st.max = unbounded
		}
		return st, false
	case *ast.SwitchStmt:
		return scanArmCases(pass, x.Body, in, out, hasDefaultCase(x.Body))
	case *ast.TypeSwitchStmt:
		return scanArmCases(pass, x.Body, in, out, hasDefaultCase(x.Body))
	default:
		// Plain statements: count any arming calls syntactically inside
		// (assignments, expression statements, ...), excluding nested
		// function literals.
		return in.add(countArmsShallow(pass.Info, s)), false
	}
}

// scanArmCases merges the arm states of a switch's case bodies. Without
// a default, the fall-past path keeps the incoming state.
func scanArmCases(pass *vetcore.Pass, body *ast.BlockStmt, in armState, out *[]vetcore.Diagnostic, hasDefault bool) (armState, bool) {
	merged := armState{-1, -1}
	allTerm := true
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		st, term := scanArms(pass, clause.Body, in, out)
		if !term {
			allTerm = false
			if merged.min < 0 {
				merged = st
			} else {
				merged = mergeArm(merged, st)
			}
		}
	}
	if !hasDefault {
		if merged.min < 0 {
			merged = in
		} else {
			merged = mergeArm(merged, in)
		}
		allTerm = false
	}
	if merged.min < 0 {
		merged = in
	}
	return merged, allTerm && hasDefault
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cc := range body.List {
		if clause, ok := cc.(*ast.CaseClause); ok && clause.List == nil {
			return true
		}
	}
	return false
}

// judgeReturn reports contarm violations at one return site.
func judgeReturn(pass *vetcore.Pass, ret *ast.ReturnStmt, st armState, out *[]vetcore.Diagnostic) {
	if len(ret.Results) != 1 {
		return // malformed; the compiler reports it
	}
	if isNilIdent(ret.Results[0]) {
		if st.min > 0 {
			*out = append(*out, pass.Diag(ret.Pos(), "contarm",
				"handler arms a wait but returns nil; the arm is silently discarded (return the next handler, or do not arm)"))
		}
		return
	}
	switch {
	case st.max == 0:
		*out = append(*out, pass.Diag(ret.Pos(), "contarm",
			"handler returns a continuation without arming a wait (arm exactly one WaitRecv/WaitRecvFn/WaitSleep before returning)"))
	case st.min == 0:
		*out = append(*out, pass.Diag(ret.Pos(), "contarm",
			"handler may return a continuation without arming a wait on some path (arm exactly one wait on every non-nil return path)"))
	case st.min >= 2:
		*out = append(*out, pass.Diag(ret.Pos(), "contarm",
			"handler arms %d waits before returning; a handler arms exactly one", st.min))
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// countArms counts Wait* calls syntactically within node, excluding
// nested function literals.
func countArms(info *types.Info, node ast.Node) int {
	n := 0
	ast.Inspect(node, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if waitCalls[calleeName(c)] && isProcMethod(info, c) {
				n++
			}
		}
		return true
	})
	return n
}

// countArmsShallow is countArms tolerating a nil statement (absent if
// inits) and stopping at nested blocks handled elsewhere.
func countArmsShallow(info *types.Info, s ast.Stmt) int {
	if s == nil {
		return 0
	}
	return countArms(info, s)
}

// countArmsExpr counts arms in an expression (if conditions).
func countArmsExpr(info *types.Info, e ast.Expr) int {
	if e == nil {
		return 0
	}
	return countArms(info, e)
}
