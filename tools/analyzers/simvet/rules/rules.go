// Package rules implements the simvet analyzers over the simulator's
// own source: contsafe (continuation-handler discipline), detpure
// (determinism purity of the result-affecting core), slabref (no
// retained aliases into the per-worker event slabs), and msgown (pooled
// message ownership). All four share the vetcore analysis core; the
// kernel types they recognize are matched structurally (named type in a
// package named "sim"), so the rules work both on the real kernel via
// `go vet -vettool` and on the self-contained fixture packages of the
// golden corpus.
package rules

import (
	"go/ast"
	"go/types"

	"mpisim/tools/analyzers/simvet/vetcore"
)

// All returns the full analyzer suite in reporting order.
func All() []vetcore.Analyzer {
	return []vetcore.Analyzer{ContSafe(), DetPure(), SlabRef(), MsgOwn()}
}

// simNamed reports whether t is the named type typeName declared in a
// package named "sim" (the simulator kernel; matching by package *name*
// covers both the real import path and the corpus fixtures, and keeps
// typechecking the kernel's own sources in scope).
func simNamed(t types.Type, typeName string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// simPtrTo reports whether t is a pointer to the named sim type.
func simPtrTo(t types.Type, typeName string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return simNamed(ptr.Elem(), typeName)
}

// simSliceOf reports whether t is a slice of the named sim type.
func simSliceOf(t types.Type, typeName string) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return simNamed(sl.Elem(), typeName)
}

// calleeName extracts the called function or method name.
func calleeName(c *ast.CallExpr) string {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleeFunc resolves the called function object, nil when unknown.
func calleeFunc(info *types.Info, c *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcDecls yields every function declaration with a body across the
// pass's files, paired with its file.
func funcDecls(pass *vetcore.Pass, visit func(file *ast.File, fn *ast.FuncDecl)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(file, fn)
			}
		}
	}
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (x in x.f[i].g), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// refersTo reports whether node mentions the given object.
func refersTo(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
