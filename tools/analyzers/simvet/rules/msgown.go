package rules

import (
	"go/ast"
	"go/types"

	"mpisim/tools/analyzers/simvet/vetcore"
)

// msgown enforces the kernel's pooling ownership rule: once a
// *sim.Message is passed to Send, SendTag, SendTagFault, SendVia,
// Forward, FreeMessage or freeMessage, the caller has given it up; the
// pool may hand it to another rank (or the kernel may deliver and
// recycle it) at any moment, so no later read of the variable is legal
// until it is reassigned. Violations are exactly the use-after-free
// class the pooled hot path reintroduced.
//
// Built on vetcore.FindUsesAfter, the rule is loop-aware: a use that
// precedes the consuming call in source order but follows it around a
// loop back-edge (including the consuming call's own argument in a
// loop that never reassigns — a loop-carried double-consume) is
// reported. That closes the flow-insensitivity gap the standalone
// msgown documented.

// msgConsumers are the calls that transfer a *sim.Message argument's
// ownership away from the caller. Forward re-issues the received
// message to another process — the kernel owns it again the moment the
// call returns. SendTagFault and SendVia consume a message passed as
// their payload argument, like Send.
var msgConsumers = map[string]bool{
	"Send": true, "SendTag": true, "SendTagFault": true, "SendVia": true,
	"Forward": true, "FreeMessage": true, "freeMessage": true,
}

// MsgOwn returns the message-ownership analyzer.
func MsgOwn() vetcore.Analyzer {
	return vetcore.Analyzer{
		Name:  "msgown",
		Doc:   "a *sim.Message must not be read after being passed to a consuming call (Send*, Forward, FreeMessage)",
		Rules: []string{"msgown"},
		Run:   runMsgOwn,
	}
}

func runMsgOwn(pass *vetcore.Pass) []vetcore.Diagnostic {
	var out []vetcore.Diagnostic
	funcDecls(pass, func(_ *ast.File, fn *ast.FuncDecl) {
		out = append(out, msgOwnFunc(pass, fn.Body)...)
	})
	return out
}

// msgOwnFunc analyzes one function body (closures included: they are
// part of the body's AST and the engine's object-granular tracking
// handles captured variables naturally).
func msgOwnFunc(pass *vetcore.Pass, body *ast.BlockStmt) []vetcore.Diagnostic {
	var consumed []vetcore.Consumption
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !msgConsumers[calleeName(call)] {
			return true
		}
		for _, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if !ok || !simPtrTo(pass.Info.TypeOf(id), "Message") {
				continue
			}
			if obj, ok := pass.Info.Uses[id].(*types.Var); ok {
				consumed = append(consumed, vetcore.Consumption{
					Obj: obj, Pos: call.End(), Label: calleeName(call),
				})
			}
		}
		return true
	})
	var out []vetcore.Diagnostic
	for _, f := range vetcore.FindUsesAfter(body, pass.Info, consumed) {
		out = append(out, pass.Diag(f.Use.Pos(), "msgown",
			"%s is read after being passed to %s%s; the pool may already have recycled it",
			f.Use.Name, f.Consumption.Label, loopNote(f)))
	}
	return out
}

// loopNote annotates loop-carried findings so the report explains the
// execution order the source order hides.
func loopNote(f vetcore.UseAfterFinding) string {
	if f.LoopCarried {
		return " on the previous loop iteration"
	}
	return ""
}
