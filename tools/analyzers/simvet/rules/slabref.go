package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"mpisim/tools/analyzers/simvet/vetcore"
)

// slabref guards the kernel's plain-value event redesign: events live
// in per-worker slabs (the queue's backing array and the outbox
// []event), which grow, shrink and get merged in place. A pointer or
// subslice into a slab is only valid until the next operation that can
// move it; storing one into a variable and reading it after such an
// operation is the aliasing bug the value representation makes
// possible (the classic append-invalidates-pointer class, but inside
// the hottest loop of the simulator).
//
// Tracked aliases (assigned to local variables):
//   - *event values: queue.peek() results, &slab[i];
//   - []event values aliasing an existing slab: subslices, plain
//     aliases, append results.
//
// Invalidators: any call to the slab-mutating kernel operations
// (slabMutators below — the queue's push/pop/grow family and the
// worker/kernel routines that push or merge on behalf of a process),
// plus any append whose first argument is a []event. An invalidator
// consumes every tracked alias in the function: the engine's kill
// analysis (including the loop back-edge path) then decides which later
// reads are actually stale. The rule only fires inside a package named
// "sim" — the slabs are kernel-private.
var slabMutators = map[string]bool{
	// eventQueue mutators (event.go).
	"push": true, "pop": true, "grow": true,
	"pushBin": true, "popBin": true, "pushQuad": true, "popQuad": true,
	// Worker/kernel operations that push, pop or merge events on behalf
	// of the caller (kernel.go, cont.go).
	"sendOut": true, "mergeOutboxes": true, "processWindow": true,
	"runLoop": true, "runCont": true, "invokeCont": true,
	"batchSameTime": true, "clearOutbox": true,
}

// SlabRef returns the event-slab aliasing analyzer.
func SlabRef() vetcore.Analyzer {
	return vetcore.Analyzer{
		Name:  "slabref",
		Doc:   "no pointer or subslice into the per-worker event slabs may survive a call that can grow or merge the slab",
		Rules: []string{"slabref"},
		Run:   runSlabRef,
	}
}

func runSlabRef(pass *vetcore.Pass) []vetcore.Diagnostic {
	if pass.Pkg.Name() != "sim" {
		return nil
	}
	var out []vetcore.Diagnostic
	funcDecls(pass, func(_ *ast.File, fn *ast.FuncDecl) {
		out = append(out, slabRefFunc(pass, fn.Body)...)
	})
	return out
}

func slabRefFunc(pass *vetcore.Pass, body *ast.BlockStmt) []vetcore.Diagnostic {
	// First sweep: which local variables hold slab aliases, and where do
	// the invalidating calls sit?
	tracked := map[types.Object]bool{}
	type mutation struct {
		pos    token.Pos
		label  string
		exempt types.Object // the var holding this append's own result — it is the fresh, valid reference
	}
	var muts []mutation
	// Appends whose result is directly assigned to an ident: the target
	// variable is re-validated by the very call that invalidates every
	// other alias (the canonical `a := append(h.a, e); ...; h.a = a`
	// heap-grow pattern must stay clean).
	appendTarget := map[*ast.CallExpr]types.Object{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				break // tuple assignments don't produce slab aliases
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				rhs := x.Rhs[i]
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				v, ok := obj.(*types.Var)
				if !ok || v.Parent() == nil || v.Parent() == pass.Pkg.Scope() {
					continue // only locals can be audited intraprocedurally
				}
				if call, isCall := rhs.(*ast.CallExpr); isCall && isAppend(call) {
					appendTarget[call] = v
				}
				if aliasesSlab(pass.Info, rhs) {
					tracked[v] = true
				}
			}
		case *ast.CallExpr:
			name := calleeName(x)
			if slabMutators[name] && calleeInSim(pass.Info, x) {
				muts = append(muts, mutation{pos: x.End(), label: name})
			} else if isAppend(x) && len(x.Args) > 0 && simSliceOf(pass.Info.TypeOf(x.Args[0]), "event") {
				muts = append(muts, mutation{pos: x.End(), label: "append", exempt: appendTarget[x]})
			}
		}
		return true
	})
	if len(tracked) == 0 || len(muts) == 0 {
		return nil
	}
	var consumed []vetcore.Consumption
	for obj := range tracked {
		for _, m := range muts {
			if m.exempt == obj {
				continue
			}
			consumed = append(consumed, vetcore.Consumption{Obj: obj, Pos: m.pos, Label: m.label})
		}
	}
	var out []vetcore.Diagnostic
	for _, f := range vetcore.FindUsesAfter(body, pass.Info, consumed) {
		out = append(out, pass.Diag(f.Use.Pos(), "slabref",
			"%s aliases a per-worker event slab and is read after %s may have grown or merged it%s; re-derive the reference instead",
			f.Use.Name, f.Consumption.Label, loopNote(f)))
	}
	return out
}

// aliasesSlab reports whether the expression produces a reference into
// an existing event slab: a *event value (peek results, &slab[i]) or a
// []event deriving from one (subslice, alias, append) — as opposed to
// fresh storage (make, composite literal) or a plain event value copy.
func aliasesSlab(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if simPtrTo(t, "event") {
		return true
	}
	if !simSliceOf(t, "event") {
		return false
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		return false // fresh backing array
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && info.Uses[id] == nil {
			return false // fresh backing array
		}
		return true // append result or a call returning a slab view
	default:
		return true // ident/selector/index/slice of an existing slab
	}
}

// calleeInSim reports whether the call resolves to a function or method
// declared in the sim package (guarding against same-named methods of
// unrelated types).
func calleeInSim(info *types.Info, c *ast.CallExpr) bool {
	fn := calleeFunc(info, c)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "sim"
}

// isAppend reports whether the call is the append builtin.
func isAppend(c *ast.CallExpr) bool {
	id, ok := c.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}
