package rules

import (
	"strings"
	"testing"

	"mpisim/tools/analyzers/simvet/vetcore"
)

// analyzeBody typechecks the stub plus one fixture body and returns the
// surviving diagnostics (default options).
func analyzeBody(t *testing.T, body string) []vetcore.Diagnostic {
	t.Helper()
	return analyzeBodyOpts(t, vetcore.Options{}, body)
}

func analyzeBodyOpts(t *testing.T, opts vetcore.Options, body string) []vetcore.Diagnostic {
	t.Helper()
	return runSuite(t, opts, map[string]string{
		"sim_stub.go": readStub(t),
		"fixture.go":  "package sim\n\n" + body,
	})
}

func wantRules(t *testing.T, diags []vetcore.Diagnostic, rules ...string) {
	t.Helper()
	if len(diags) != len(rules) {
		t.Fatalf("want %d diagnostics %v, got %v", len(rules), rules, diags)
	}
	for i, r := range rules {
		if diags[i].Rule != r {
			t.Errorf("diagnostic %d: want rule %s, got %v", i, r, diags[i])
		}
	}
}

// --- msgown: migrated standalone-analyzer cases ---

func TestMsgOwnReadAfterFree(t *testing.T) {
	diags := analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size
}
`)
	wantRules(t, diags, "msgown")
	if !strings.Contains(diags[0].Message, "FreeMessage") {
		t.Errorf("diagnostic does not name the consumer: %s", diags[0].Message)
	}
}

func TestMsgOwnReadAfterSendAsPayload(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.Send(1, m, m.Size)
	return m.Size
}
`), "msgown")
}

func TestMsgOwnCleanConsumeLast(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func good(p *Proc) (int64, interface{}) {
	m := p.RecvSrcTag(0, 1)
	size, data := m.Size, m.Payload
	p.FreeMessage(m)
	return size, data
}
`))
}

func TestMsgOwnReassignmentRestoresOwnership(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func good(p *Proc) int64 {
	m := p.RecvSrcTag(0, 1)
	p.FreeMessage(m)
	m = p.RecvSrcTag(0, 2)
	total := m.Size
	p.FreeMessage(m)
	return total
}
`))
}

func TestMsgOwnDoubleFree(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func bad(p *Proc, m *Message) {
	p.FreeMessage(m)
	p.FreeMessage(m)
}
`), "msgown")
}

func TestMsgOwnOtherTypesIgnored(t *testing.T) {
	wantRules(t, analyzeBody(t, `
type memo struct{ n int }

func ok(p *Proc, m *memo) int {
	p.Send(1, m, 0)
	return m.n
}
`))
}

func TestMsgOwnForward(t *testing.T) {
	diags := analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.Forward(m, 1, 0)
	return m.Size
}
`)
	wantRules(t, diags, "msgown")
	if !strings.Contains(diags[0].Message, "Forward") {
		t.Errorf("diagnostic does not name the consumer: %s", diags[0].Message)
	}
}

// --- msgown: the loop flow-insensitivity gap, now closed ---

func TestMsgOwnLoopCarriedDoubleFree(t *testing.T) {
	diags := analyzeBody(t, `
func bad(p *Proc, n int) {
	m := p.Recv()
	for i := 0; i < n; i++ {
		p.FreeMessage(m)
	}
}
`)
	wantRules(t, diags, "msgown")
	if !strings.Contains(diags[0].Message, "previous loop iteration") {
		t.Errorf("loop-carried finding not labeled as such: %s", diags[0].Message)
	}
}

func TestMsgOwnLoopBackwardUse(t *testing.T) {
	diags := analyzeBody(t, `
func bad(p *Proc, n int) int64 {
	var total int64
	m := p.Recv()
	for i := 0; i < n; i++ {
		total += m.Size
		p.FreeMessage(m)
	}
	return total
}
`)
	if len(diags) == 0 {
		t.Fatal("backward-jumping use in a loop not reported")
	}
	for _, d := range diags {
		if d.Rule != "msgown" {
			t.Errorf("unexpected rule: %v", d)
		}
	}
}

func TestMsgOwnLoopFreshReceiveClean(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func good(p *Proc, n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		m := p.Recv()
		total += m.Size
		p.FreeMessage(m)
	}
	return total
}
`))
}

// --- contsafe ---

func TestContSafeNoArm(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func h(p *Proc, m *Message) Cont {
	p.FreeMessage(m)
	return h
}
`), "contarm")
}

func TestContSafeTwoArms(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func h(p *Proc, m *Message) Cont {
	p.WaitRecv()
	p.WaitSleep(1)
	return h
}
`), "contarm")
}

func TestContSafeMayNotArm(t *testing.T) {
	diags := analyzeBody(t, `
func h(p *Proc, m *Message) Cont {
	if m.Size > 0 {
		p.WaitRecv()
	}
	return h
}
`)
	wantRules(t, diags, "contarm")
	if !strings.Contains(diags[0].Message, "some path") {
		t.Errorf("want a may-not-arm diagnostic, got: %s", diags[0].Message)
	}
}

func TestContSafeBlockingCall(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func h(p *Proc, m *Message) Cont {
	p.Sleep(1)
	return nil
}
`), "contblock")
}

func TestContSafeCleanHandler(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func h(p *Proc, m *Message) Cont {
	if m == nil {
		return nil
	}
	p.FreeMessage(m)
	p.WaitRecv()
	return h
}
`))
}

func TestContSafeNonHandlerNotJudged(t *testing.T) {
	// Wrong arity: producers of continuations are not handlers; make1
	// returns a continuation without arming and must not be judged.
	wantRules(t, analyzeBody(t, `
func make1(tag int) Cont {
	return h1
}

func h1(p *Proc, m *Message) Cont {
	p.FreeMessage(m)
	p.WaitRecv()
	return h1
}
`))
}

// --- slabref ---

func TestSlabRefStalePeek(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func bad(q *eventQueue, e event) Time {
	top := q.peek()
	q.push(e)
	return top.t
}
`), "slabref")
}

func TestSlabRefAppendResultStaysValid(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func good(q *eventQueue, e event) {
	a := append(q.a, e)
	a[0] = e
	q.a = a
}
`))
}

// --- detpure ---

func TestDetPureWallclock(t *testing.T) {
	wantRules(t, analyzeBody(t, `
import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`), "wallclock")
}

func TestDetPureGlobalRand(t *testing.T) {
	wantRules(t, analyzeBody(t, `
import "math/rand"

func Jitter() float64 { return rand.Float64() }
`), "globalrand")
}

func TestDetPureSeededStreamClean(t *testing.T) {
	wantRules(t, analyzeBody(t, `
import "math/rand"

func Scaled(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
`))
}

func TestDetPureUnreachableNotReported(t *testing.T) {
	wantRules(t, analyzeBody(t, `
import "time"

func deadClock() int64 { return time.Now().UnixNano() }
`))
}

func TestDetPureOutOfScopePackage(t *testing.T) {
	// detpure keys on the import path: identical source outside the
	// deterministic core is not its business (internal/tables renders
	// experiment wall-clock durations all it wants).
	src := `package tables

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	diags := runSuiteAt(t, "mpisim/internal/tables", vetcore.Options{}, map[string]string{"fixture.go": src})
	wantRules(t, diags)
}

func TestDetPureObsInScope(t *testing.T) {
	// The telemetry layer is inside the detpure scope: a bare wall-clock
	// read there is reported, and each intentional one must carry a
	// reviewed allow.
	src := `package obs

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	diags := runSuiteAt(t, "mpisim/internal/obs", vetcore.Options{}, map[string]string{"fixture.go": src})
	wantRules(t, diags, "wallclock")

	allowed := `package obs

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() //simvet:allow wallclock snapshot timestamps are observability-only
}
`
	diags = runSuiteAt(t, "mpisim/internal/obs", vetcore.Options{}, map[string]string{"fixture.go": allowed})
	wantRules(t, diags)
}

// --- //simvet:allow semantics ---

func TestAllowSuppresses(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size //simvet:allow msgown fixture: intentional
}
`))
}

func TestAllowLineAboveSuppresses(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	//simvet:allow msgown fixture: intentional
	return m.Size
}
`))
}

func TestAllowWrongRuleStillReports(t *testing.T) {
	wantRules(t, analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size //simvet:allow slabref wrong rule on purpose
}
`), "msgown")
}

func TestAllowMalformedAlwaysReported(t *testing.T) {
	// Missing reason: the original diagnostic stays AND the directive is
	// itself reported, strict or not.
	diags := analyzeBody(t, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size //simvet:allow msgown
}
`)
	wantRules(t, diags, "allow", "msgown")
}

func TestStrictAllowReportsStale(t *testing.T) {
	src := `
func good(p *Proc) {
	m := p.Recv()
	p.FreeMessage(m) //simvet:allow msgown nothing to suppress here
}
`
	wantRules(t, analyzeBodyOpts(t, vetcore.Options{}, src))
	diags := analyzeBodyOpts(t, vetcore.Options{StrictAllow: true}, src)
	wantRules(t, diags, "allow")
	if !strings.Contains(diags[0].Message, "stale") {
		t.Errorf("want a stale-allow diagnostic, got: %s", diags[0].Message)
	}
}

func TestStrictAllowReportsUnknownRule(t *testing.T) {
	diags := analyzeBodyOpts(t, vetcore.Options{StrictAllow: true}, `
func good(p *Proc) {
	m := p.Recv()
	p.FreeMessage(m) //simvet:allow nosuchrule typo in the rule name
}
`)
	wantRules(t, diags, "allow")
	if !strings.Contains(diags[0].Message, "unknown rule") {
		t.Errorf("want an unknown-rule diagnostic, got: %s", diags[0].Message)
	}
}

func TestStrictAllowUsedDirectiveSilent(t *testing.T) {
	wantRules(t, analyzeBodyOpts(t, vetcore.Options{StrictAllow: true}, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size //simvet:allow msgown fixture: intentional
}
`))
}
