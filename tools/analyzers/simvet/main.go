// Command simvet is the simulator's own static-analysis suite: four
// determinism & concurrency analyzers over the mpisim source, speaking
// the `go vet -vettool` unit-checker protocol with the standard library
// alone (no golang.org/x/tools). Where internal/check verifies the
// *user's* simulated program against the model's restrictions, simvet
// verifies the *simulator* against its own invariants:
//
//	contsafe  continuation handlers arm exactly one wait per non-nil
//	          return path, never block, spawn goroutines, or retain
//	          their *Message argument past return
//	detpure   the deterministic core reads no wall clock, draws no
//	          global randomness, and never depends on map iteration
//	          order (rules: wallclock, globalrand, maprange)
//	slabref   no pointer or subslice into the per-worker event slabs
//	          survives a call that can grow or merge the slab
//	msgown    no *sim.Message is read after ownership transfers to
//	          Send*/Forward/FreeMessage (loop-aware)
//
// Usage:
//
//	go build -o simvet ./tools/analyzers/simvet
//	go vet -vettool=$(pwd)/simvet ./...
//	go vet -vettool=$(pwd)/simvet -strictallow ./...   # audit stale allows
//
// Intentional violations are suppressed with a mandatory reason:
//
//	t := time.Now() //simvet:allow wallclock observability only
//
// Run with -listrules for the rule catalog.
package main

import (
	"os"

	"mpisim/tools/analyzers/simvet/rules"
	"mpisim/tools/analyzers/simvet/vetcore"
)

func main() {
	os.Exit(vetcore.Main("simvet", rules.All()))
}
