package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The fixture is its own little "sim" package, so isOwnedPtr matches
// without needing export data for the real kernel.
const fixtureHeader = `package sim

type Message struct {
	Size    int64
	Payload interface{}
}

type Proc struct{}

func (p *Proc) Send(to int, payload interface{}, size int64) {}
func (p *Proc) SendTag(to, tag int, payload interface{})     {}
func (p *Proc) Forward(m *Message, to, tag int)              {}
func (p *Proc) FreeMessage(m *Message)                       {}
func (p *Proc) RecvSrcTag(src, tag int) *Message             { return nil }
`

func analyzeSource(t *testing.T, body string) []finding {
	t.Helper()
	src := fixtureHeader + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	cfg := &types.Config{}
	if _, err := cfg.Check("sim", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return analyze(fset, []*ast.File{f}, info)
}

func TestFlagsReadAfterFree(t *testing.T) {
	findings := analyzeSource(t, `
func bad(p *Proc, m *Message) int64 {
	p.FreeMessage(m)
	return m.Size
}
`)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	if !strings.Contains(findings[0].msg, "FreeMessage") {
		t.Errorf("finding does not name the consumer: %s", findings[0].msg)
	}
}

func TestFlagsReadAfterSendAsPayload(t *testing.T) {
	findings := analyzeSource(t, `
func bad(p *Proc, m *Message) int64 {
	p.Send(1, m, m.Size)
	return m.Size
}
`)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
}

func TestCleanConsumeLast(t *testing.T) {
	findings := analyzeSource(t, `
func good(p *Proc) (int64, interface{}) {
	m := p.RecvSrcTag(0, 1)
	size, data := m.Size, m.Payload
	p.FreeMessage(m)
	return size, data
}
`)
	if len(findings) != 0 {
		t.Fatalf("clean consume-last pattern flagged: %v", findings)
	}
}

func TestReassignmentRestoresOwnership(t *testing.T) {
	findings := analyzeSource(t, `
func good(p *Proc) int64 {
	m := p.RecvSrcTag(0, 1)
	p.FreeMessage(m)
	m = p.RecvSrcTag(0, 2)
	total := m.Size
	p.FreeMessage(m)
	return total
}
`)
	if len(findings) != 0 {
		t.Fatalf("reassignment did not restore ownership: %v", findings)
	}
}

func TestDoubleFreeFlagged(t *testing.T) {
	findings := analyzeSource(t, `
func bad(p *Proc, m *Message) {
	p.FreeMessage(m)
	p.FreeMessage(m)
}
`)
	if len(findings) != 1 {
		t.Fatalf("double free not flagged exactly once: %v", findings)
	}
}

func TestOtherTypesIgnored(t *testing.T) {
	findings := analyzeSource(t, `
type note struct{ n int }

func ok(p *Proc, m *note) int {
	p.Send(1, m, 0)
	return m.n
}
`)
	if len(findings) != 0 {
		t.Fatalf("non-message type flagged: %v", findings)
	}
}

func TestFlagsReadAfterForward(t *testing.T) {
	findings := analyzeSource(t, `
func bad(p *Proc, m *Message) int64 {
	p.Forward(m, 1, 0)
	return m.Size
}
`)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	if !strings.Contains(findings[0].msg, "Forward") {
		t.Errorf("finding does not name the consumer: %s", findings[0].msg)
	}
}

func TestCleanReadBeforeForward(t *testing.T) {
	findings := analyzeSource(t, `
func good(p *Proc) int64 {
	m := p.RecvSrcTag(0, 1)
	size := m.Size
	p.Forward(m, 1, 0)
	return size
}
`)
	if len(findings) != 0 {
		t.Fatalf("clean read-before-forward pattern flagged: %v", findings)
	}
}

func TestLanguageVersion(t *testing.T) {
	cases := map[string]string{
		"go1.24.5": "go1.24",
		"go1.21":   "go1.21",
		"devel":    "",
		"":         "",
	}
	for in, want := range cases {
		if got := languageVersion(in); got != want {
			t.Errorf("languageVersion(%q) = %q, want %q", in, got, want)
		}
	}
}
