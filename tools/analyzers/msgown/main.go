// Command msgown is a vet analyzer enforcing the simulator's pooling
// ownership rule: once a *sim.Message is passed to Send, SendTag,
// Forward, FreeMessage, or freeMessage, the caller has given it up; the
// pool may hand it to another rank (or the kernel may deliver and
// recycle it) at any moment, so no later statement in the same function
// may read it. Violations are exactly the use-after-free class the
// pooled hot path reintroduced. (Kernel events used to be pooled too and
// carried their own rule; they are plain values in per-worker slabs now,
// with nothing to use after free.)
//
// The command speaks the `go vet -vettool` unit-checker protocol with
// the standard library alone, so it works in environments without
// golang.org/x/tools:
//
//	go build -o msgown ./tools/analyzers/msgown
//	go vet -vettool=$(pwd)/msgown ./...
//
// The analysis is flow-insensitive within a function body: a use is
// "after" a consuming call when it appears later in source order with
// no intervening reassignment of the variable. That matches how the
// pooling call sites are written (consume last) and keeps the checker
// dependency-free; a backward-jumping use inside a loop is the one
// shape it can miss.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	for _, a := range args {
		switch a {
		case "-V=full":
			printVersion()
			return 0
		case "-flags":
			// The vet driver queries supported analyzer flags; we have none.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		fmt.Fprintln(os.Stderr, "msgown: usage: msgown <vet.cfg> (run via go vet -vettool)")
		return 2
	}
	return checkPackage(args[len(args)-1])
}

// printVersion implements the -V=full handshake the go command uses for
// build caching: "<name> version devel buildID=<content hash>".
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("msgown version devel buildID=%s\n", id)
}

// vetConfig mirrors the JSON the go command writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func checkPackage(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msgown:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "msgown: %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver expects a facts file from every invocation; we carry no
	// facts, so an empty one satisfies it.
	defer func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}()
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "msgown:", err)
			return 1
		}
		files = append(files, f)
	}

	// Typecheck against the export data the build already produced.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("msgown: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tcfg := &types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: languageVersion(cfg.GoVersion),
		Error:     func(error) {}, // keep going; the first error is returned anyway
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	if _, err := tcfg.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "msgown:", err)
		return 1
	}

	findings := analyze(fset, files, info)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// languageVersion reduces a toolchain version like "go1.24.5" to the
// language version go/types accepts.
func languageVersion(v string) string {
	if !strings.HasPrefix(v, "go") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return ""
	}
	return parts[0] + "." + parts[1]
}

type finding struct {
	pos token.Position
	msg string
}

// ownRule describes one pooled kernel type and the calls that transfer
// its ownership away from the caller.
type ownRule struct {
	typeName  string
	consumers map[string]bool
}

// rules cover the one pooled kernel type left: messages, consumed by the
// public send/forward API plus the kernel-internal free. Forward is a
// consumer because it re-issues the received message to another process
// — the kernel owns it again the moment the call returns.
var rules = []ownRule{
	{typeName: "Message", consumers: map[string]bool{
		"Send": true, "SendTag": true, "Forward": true,
		"FreeMessage": true, "freeMessage": true,
	}},
}

// ruleFor returns the ownership rule whose consumers include callee.
func ruleFor(callee string) *ownRule {
	for i := range rules {
		if rules[i].consumers[callee] {
			return &rules[i]
		}
	}
	return nil
}

// analyze reports reads of pooled-type variables (*sim.Message) after a
// consuming call in the same function body.
func analyze(fset *token.FileSet, files []*ast.File, info *types.Info) []finding {
	var out []finding
	for _, file := range files {
		base := filepath.Base(fset.Position(file.Pos()).Filename)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, analyzeFunc(fset, fn, info)...)
		}
	}
	return out
}

func analyzeFunc(fset *token.FileSet, fn *ast.FuncDecl, info *types.Info) []finding {
	// First sweep: where does each message variable get consumed, and
	// where is it reassigned (which re-establishes ownership)?
	consumed := map[types.Object][]token.Pos{} // positions just after consuming calls
	killed := map[types.Object][]token.Pos{}   // positions of reassignments
	assignLHS := map[*ast.Ident]bool{}         // idents being (re)assigned, not read
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			rule := ruleFor(calleeName(x))
			if rule == nil {
				return true
			}
			for _, arg := range x.Args {
				id, ok := arg.(*ast.Ident)
				if !ok || !isOwnedPtr(info.TypeOf(id), rule.typeName) {
					continue
				}
				if obj, ok := info.Uses[id].(*types.Var); ok {
					consumed[obj] = append(consumed[obj], x.End())
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				assignLHS[id] = true
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id] // := definitions
				}
				if v, ok := obj.(*types.Var); ok && isOwned(v.Type()) {
					killed[v] = append(killed[v], x.End())
				}
			}
		}
		return true
	})
	if len(consumed) == 0 {
		return nil
	}
	// Second sweep: every later read without an intervening reassignment
	// is a use of a message the pool may already have recycled.
	var out []finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || assignLHS[id] {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		cons, isConsumed := consumed[obj]
		if !isConsumed {
			return true
		}
		for _, cpos := range cons {
			if id.Pos() <= cpos {
				continue
			}
			if reownedBetween(killed[obj], cpos, id.Pos()) {
				continue
			}
			out = append(out, finding{
				pos: fset.Position(id.Pos()),
				msg: fmt.Sprintf("msgown: %s is read after being passed to %s; the pool may already have recycled it",
					id.Name, consumerAt(fn, info, cpos)),
			})
			break
		}
		return true
	})
	return out
}

// reownedBetween reports whether any kill position lies in (from, to].
func reownedBetween(kills []token.Pos, from, to token.Pos) bool {
	for _, k := range kills {
		if k > from && k <= to {
			return true
		}
	}
	return false
}

// consumerAt names the consuming call ending at pos, for the message.
func consumerAt(fn *ast.FuncDecl, info *types.Info, end token.Pos) string {
	name := "a consuming call"
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && c.End() == end && ruleFor(calleeName(c)) != nil {
			name = calleeName(c)
			return false
		}
		return true
	})
	return name
}

// calleeName extracts the called function or method name.
func calleeName(c *ast.CallExpr) string {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isOwnedPtr reports whether t is a pointer to the named pooled type of
// the simulator kernel package (or of a package named sim, so the
// kernel's own sources are covered while typechecking them from source).
func isOwnedPtr(t types.Type, typeName string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == "sim"
}

// isOwned reports whether t is a pointer to any pooled kernel type.
func isOwned(t types.Type) bool {
	for i := range rules {
		if isOwnedPtr(t, rules[i].typeName) {
			return true
		}
	}
	return false
}
