// Command msgown is a vet analyzer enforcing the simulator's pooling
// ownership rule: once a *sim.Message is passed to Send, SendTag,
// SendTagFault, SendVia, Forward, FreeMessage, or freeMessage, the
// caller has given it up; the pool may hand it to another rank (or the
// kernel may deliver and recycle it) at any moment, so no later read of
// the variable is legal until it is reassigned.
//
// The command is kept for compatibility with existing invocations; it
// is a thin wrapper over the simvet suite's msgown analyzer
// (tools/analyzers/simvet), which shares the suite's loop-aware flow
// engine — the backward-jumping-use-in-a-loop gap the standalone
// analyzer used to document is closed. Prefer running the full suite:
//
//	go build -o simvet ./tools/analyzers/simvet
//	go vet -vettool=$(pwd)/simvet ./...
//
// This wrapper speaks the same `go vet -vettool` unit-checker protocol
// with the standard library alone:
//
//	go build -o msgown ./tools/analyzers/msgown
//	go vet -vettool=$(pwd)/msgown ./...
package main

import (
	"os"

	"mpisim/tools/analyzers/simvet/rules"
	"mpisim/tools/analyzers/simvet/vetcore"
)

func main() {
	os.Exit(vetcore.Main("msgown", []vetcore.Analyzer{rules.MsgOwn()}))
}
