// Command simdctl is the scriptable client for mpisimd, used by
// scripts/ci.sh's daemon smoke gate and handy interactively. Each
// subcommand is one HTTP exchange (plus polling for wait):
//
//	simdctl -addr 127.0.0.1:6080 submit '{"app":"sample","ranks":16}'
//	simdctl -addr 127.0.0.1:6080 submit @job.json
//	simdctl -addr 127.0.0.1:6080 -trace run.jsonl submit
//	simdctl -addr 127.0.0.1:6080 -trace run.jsonl -xranks 64 submit
//	simdctl -addr 127.0.0.1:6080 wait j000001-ab12cd34
//	simdctl -addr 127.0.0.1:6080 artifact j000001-ab12cd34
//	simdctl -addr 127.0.0.1:6080 health
//
// submit prints the created job's JSON view (its .id on the first
// line's "id" field); wait polls until the job is terminal and exits 0
// only for state done; artifact streams the artifact JSON to stdout;
// health prints /healthz. Non-2xx responses and non-done terminal
// states exit nonzero with the server's diagnostic on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6080", "mpisimd address")
		timeout = flag.Duration("timeout", 120*time.Second, "overall deadline for the subcommand")
		tracef  = flag.String("trace", "", `submit: JSONL trace file to replay (becomes the spec's "trace" field)`)
		xranks  = flag.Int("xranks", 0, `submit: extrapolate the -trace to this rank count (spec "trace_ranks")`)
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "simdctl: usage: simdctl [flags] submit|wait|artifact|cancel|health [arg]")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	base := "http://" + *addr
	var err error
	switch cmd, arg := flag.Arg(0), flag.Arg(1); cmd {
	case "submit":
		err = submit(ctx, base, arg, *tracef, *xranks)
	case "wait":
		err = wait(ctx, base, arg)
	case "artifact":
		err = get(ctx, base+"/jobs/"+arg+"/artifact")
	case "cancel":
		err = post(ctx, base+"/jobs/"+arg+"/cancel", nil)
	case "health":
		err = get(ctx, base+"/healthz")
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simdctl: %v\n", err)
		os.Exit(1)
	}
}

// readSpec resolves the submit argument: inline JSON, @file, or "-"
// for stdin. With -trace the spec argument is optional (defaults to an
// empty object the trace is injected into).
func readSpec(arg string, haveTrace bool) ([]byte, error) {
	switch {
	case arg == "" && haveTrace:
		return []byte("{}"), nil
	case arg == "":
		return nil, fmt.Errorf("submit needs a spec: inline JSON, @file, or -")
	case arg == "-":
		return io.ReadAll(os.Stdin)
	case strings.HasPrefix(arg, "@"):
		return os.ReadFile(arg[1:])
	default:
		return []byte(arg), nil
	}
}

func submit(ctx context.Context, base, arg, traceFile string, xranks int) error {
	spec, err := readSpec(arg, traceFile != "")
	if err != nil {
		return err
	}
	if traceFile != "" {
		spec, err = injectTrace(spec, traceFile, xranks)
		if err != nil {
			return err
		}
	} else if xranks != 0 {
		return fmt.Errorf("-xranks requires -trace")
	}
	return post(ctx, base+"/jobs", spec)
}

// injectTrace folds a trace file (and optional extrapolation target)
// into the spec JSON, so clients need not hand-escape JSONL inside
// JSON.
func injectTrace(spec []byte, traceFile string, xranks int) ([]byte, error) {
	var m map[string]interface{}
	if err := json.Unmarshal(spec, &m); err != nil {
		return nil, fmt.Errorf("spec is not a JSON object: %v", err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		return nil, err
	}
	m["trace"] = string(data)
	if xranks > 0 {
		m["trace_ranks"] = xranks
	}
	return json.Marshal(m)
}

// wait polls the job until it reaches a terminal state; only "done"
// exits 0, so scripts can chain with set -e.
func wait(ctx context.Context, base, id string) error {
	if id == "" {
		return fmt.Errorf("wait needs a job id")
	}
	for {
		body, err := fetch(ctx, http.MethodGet, base+"/jobs/"+id, nil)
		if err != nil {
			return err
		}
		var v struct {
			State string  `json:"state"`
			Error string  `json:"error"`
			Prog  float64 `json:"progress"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("bad job view: %v", err)
		}
		switch v.State {
		case "done":
			os.Stdout.Write(body)
			return nil
		case "aborted", "failed":
			os.Stdout.Write(body)
			return fmt.Errorf("job %s %s: %s", id, v.State, v.Error)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("job %s still %s at deadline", id, v.State)
		case <-time.After(150 * time.Millisecond):
		}
	}
}

func get(ctx context.Context, url string) error { return run(ctx, http.MethodGet, url, nil) }
func post(ctx context.Context, url string, body []byte) error {
	return run(ctx, http.MethodPost, url, body)
}

func run(ctx context.Context, method, url string, body []byte) error {
	data, err := fetch(ctx, method, url, body)
	if err != nil {
		return err
	}
	os.Stdout.Write(data)
	return nil
}

// fetch performs one exchange and returns the body; non-2xx is an
// error carrying the server's diagnostic.
func fetch(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}
