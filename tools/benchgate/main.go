// Command benchgate guards kernel throughput. It parses `go test -bench`
// output from stdin and enforces two kinds of gate:
//
//   - -baseline BENCH_kernel.json: every benchmark shared with the
//     recorded baseline must keep at least (1 - maxregress) of its
//     recorded events/sec. New benchmarks absent from the baseline are
//     reported but never fail the gate.
//   - -pair base,other,frac (repeatable): benchmark `other` must reach at
//     least (1 - frac) of `base`'s events/sec from the same run. This is
//     the disabled-instrumentation overhead gate: the kernel with an
//     observability registry attached must stay within a few percent of
//     the bare kernel measured in the same process.
//
// Benchmark names are compared after stripping the -GOMAXPROCS suffix, so
// "BenchmarkKernelObs/off-8" matches a baseline entry or pair operand
// named "BenchmarkKernelObs/off". When the input repeats a benchmark
// (`go test -count N`), the best events/sec is used — gates ask whether
// the code can still reach the recorded throughput, and best-of-N
// suppresses host noise that any single sample would carry.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkKernel ./internal/sim/ | \
//	    benchgate -baseline BENCH_kernel.json -maxregress 0.10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// pairGate is one -pair directive.
type pairGate struct {
	base, other string
	frac        float64
}

type pairList []pairGate

func (p *pairList) String() string { return fmt.Sprintf("%v", *p) }

func (p *pairList) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return fmt.Errorf("want base,other,frac, got %q", s)
	}
	frac, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || frac <= 0 || frac >= 1 {
		return fmt.Errorf("bad fraction in %q", s)
	}
	*p = append(*p, pairGate{base: parts[0], other: parts[1], frac: frac})
	return nil
}

// baseEntry mirrors one BENCH_kernel.json record.
type baseEntry struct {
	Name      string  `json:"name"`
	EventsSec float64 `json:"events_sec"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts name -> events/sec from `go test -bench` output.
func parseBench(lines []string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(f[0], "")
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != "events/sec" {
				continue
			}
			// With `go test -count N` the same benchmark appears N times;
			// keep the best run. Throughput gates ask "can the code still
			// go this fast", and the best of N is far less sensitive to
			// host noise than any single sample.
			if v, err := strconv.ParseFloat(f[i], 64); err == nil && v > out[name] {
				out[name] = v
			}
		}
	}
	return out
}

// gateBaseline enforces the recorded-baseline gate and returns the
// failure count. Rows present in the baseline but absent from the input
// (e.g. the env-gated large-rank rows on the short CI path) are
// informational, never failures — and so are new benchmarks absent from
// the baseline.
func gateBaseline(w io.Writer, got map[string]float64, entries []baseEntry, maxRegress float64) int {
	failures := 0
	for _, e := range entries {
		name := cpuSuffix.ReplaceAllString(e.Name, "")
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "benchgate: %-50s in baseline but not run (informational)\n", name)
			continue
		}
		if e.EventsSec <= 0 {
			continue
		}
		change := cur/e.EventsSec - 1
		status := "ok"
		if change < -maxRegress {
			status = "REGRESSION"
			failures++
		}
		fmt.Fprintf(w, "benchgate: %-50s %12.0f -> %12.0f events/sec (%+.1f%%) %s\n",
			name, e.EventsSec, cur, 100*change, status)
	}
	for name := range got {
		found := false
		for _, e := range entries {
			if cpuSuffix.ReplaceAllString(e.Name, "") == name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "benchgate: %-50s not in baseline (new benchmark, not gated)\n", name)
		}
	}
	return failures
}

func run() error {
	var (
		baseline   = flag.String("baseline", "", "BENCH_kernel.json to gate events/sec against")
		maxRegress = flag.Float64("maxregress", 0.10, "allowed fractional events/sec regression vs the baseline")
		pairs      pairList
	)
	flag.Var(&pairs, "pair", "base,other,frac: `other` must reach (1-frac) of `base`'s events/sec (repeatable)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		lines = append(lines, sc.Text())
		fmt.Println(sc.Text()) // pass the bench output through for the log
	}
	if err := sc.Err(); err != nil {
		return err
	}
	got := parseBench(lines)
	if len(got) == 0 {
		return fmt.Errorf("no benchmark events/sec results on stdin")
	}

	failures := 0
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var entries []baseEntry
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("%s: %w", *baseline, err)
		}
		failures += gateBaseline(os.Stdout, got, entries, *maxRegress)
	}
	for _, p := range pairs {
		base, okB := got[p.base]
		other, okO := got[p.other]
		if !okB || !okO {
			return fmt.Errorf("pair %s,%s: benchmark missing from input", p.base, p.other)
		}
		change := other/base - 1
		status := "ok"
		if other < base*(1-p.frac) {
			status = "OVERHEAD EXCEEDED"
			failures++
		}
		fmt.Printf("benchgate: %s vs %s: %+.1f%% (allowed -%.0f%%) %s\n",
			p.other, p.base, 100*change, 100*p.frac, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d gate failure(s)", failures)
	}
	return nil
}
