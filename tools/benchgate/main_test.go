package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	lines := []string{
		"goos: linux",
		"BenchmarkKernelObs/off-8    3  102637211 ns/op  0.006273 allocs/event  2556578 events/sec",
		"BenchmarkKernelObs/disabled-8  3  103826099 ns/op  0.006327 allocs/event  2527303 events/sec",
		"BenchmarkNoMetric-8  10  12345 ns/op",
		"PASS",
	}
	got := parseBench(lines)
	if len(got) != 2 {
		t.Fatalf("parsed %d entries, want 2: %v", len(got), got)
	}
	if got["BenchmarkKernelObs/off"] != 2556578 {
		t.Errorf("off = %g, want 2556578 (cpu suffix must be stripped)", got["BenchmarkKernelObs/off"])
	}
	if _, ok := got["BenchmarkNoMetric"]; ok {
		t.Error("benchmark without events/sec must be ignored")
	}
}

func TestParseBenchBestOfN(t *testing.T) {
	// `go test -count N` repeats each benchmark; the best run wins.
	lines := []string{
		"BenchmarkKernelGuard/off-8  3  110000000 ns/op  2400000 events/sec",
		"BenchmarkKernelGuard/off-8  3  100000000 ns/op  2600000 events/sec",
		"BenchmarkKernelGuard/off-8  3  105000000 ns/op  2500000 events/sec",
	}
	got := parseBench(lines)
	if got["BenchmarkKernelGuard/off"] != 2600000 {
		t.Errorf("off = %g, want best-of-3 2600000", got["BenchmarkKernelGuard/off"])
	}
}

func TestPairListSet(t *testing.T) {
	var p pairList
	if err := p.Set("a,b,0.05"); err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || p[0].base != "a" || p[0].other != "b" || p[0].frac != 0.05 {
		t.Fatalf("parsed pair = %+v", p)
	}
	for _, bad := range []string{"a,b", "a,b,x", "a,b,1.5", "a,b,0"} {
		if err := p.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestGateBaselineMissingRowsInformational(t *testing.T) {
	// The input ran a subset of the recorded rows (the env-gated
	// large-rank rows were skipped) plus one new row: neither direction
	// of mismatch may fail the gate; only a real regression does.
	got := map[string]float64{
		"BenchmarkKernelSequential/procs=4096": 900000,  // regressed
		"BenchmarkKernelSched/cont":            5000000, // new, not recorded
	}
	entries := []baseEntry{
		{Name: "BenchmarkKernelSequential/procs=4096", EventsSec: 1000000},
		{Name: "BenchmarkKernelSequential/procs=65536", EventsSec: 2000000}, // not run
	}
	var sb strings.Builder
	if f := gateBaseline(&sb, got, entries, 0.20); f != 0 {
		t.Fatalf("failures = %d, want 0 (missing rows are informational):\n%s", f, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "procs=65536") || !strings.Contains(out, "not run (informational)") {
		t.Errorf("missing informational line for the unrun baseline row:\n%s", out)
	}
	if !strings.Contains(out, "not in baseline (new benchmark, not gated)") {
		t.Errorf("missing informational line for the new benchmark:\n%s", out)
	}
	if f := gateBaseline(&sb, got, entries, 0.05); f != 1 {
		t.Fatalf("failures = %d, want 1 at the 5%% threshold", f)
	}
}
