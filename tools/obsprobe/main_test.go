package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestProbeTimesOutOnStalledSSE covers the failure mode the hard
// deadline exists for: a server that speaks just enough SSE to get past
// the headers, then never emits a data frame. The probe must give up at
// -timeout with an error instead of hanging the CI job.
func TestProbeTimesOutOnStalledSSE(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		select { // stall: headers out, no frames, ever
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	start := time.Now()
	err := probe(srv.URL, 300*time.Millisecond, 0, "", true)
	if err == nil {
		t.Fatal("probe returned nil on a stalled SSE stream")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe took %v to give up; the deadline is not hard", elapsed)
	}
}

// TestProbeTimesOutOnStalledHeaders stalls even earlier: the connection
// is accepted but no response ever arrives.
func TestProbeTimesOutOnStalledHeaders(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	start := time.Now()
	err := probe(srv.URL, 300*time.Millisecond, 0, "", false)
	if err == nil {
		t.Fatal("probe returned nil on a server that never responded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe took %v to give up; the deadline is not hard", elapsed)
	}
}

// TestProbeRetryBoundedByDeadline ensures -retry (connection-error
// retries for servers still starting) cannot outlive the hard deadline.
func TestProbeRetryBoundedByDeadline(t *testing.T) {
	start := time.Now()
	// Nothing listens on this port (reserved, then closed, by httptest).
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	err := probe(url, 300*time.Millisecond, 30*time.Second, "", false)
	if err == nil {
		t.Fatal("probe returned nil for a dead server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probe retried for %v; -retry must be bounded by -timeout", elapsed)
	}
}

// TestProbeStillPassesOnHealthyEndpoints guards against the deadline
// rework breaking the success paths.
func TestProbeStillPassesOnHealthyEndpoints(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","state":"running"}`)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: {\"events\":1}\n\n")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if err := probe(srv.URL+"/healthz", 5*time.Second, 0, "status,state", false); err != nil {
		t.Fatalf("healthy JSON probe failed: %v", err)
	}
	if err := probe(srv.URL+"/events", 5*time.Second, 0, "events", true); err != nil {
		t.Fatalf("healthy SSE probe failed: %v", err)
	}
}
