// Command obsprobe is the CI smoke-test client for the live-telemetry
// HTTP plane (internal/obs.HandlerWith). It GETs one endpoint, asserts
// the response is well-formed JSON, and optionally that named top-level
// keys are present; with -sse it instead reads a text/event-stream until
// the first data frame arrives and validates that frame's JSON payload.
// Exit status is the assertion: 0 on success, 1 with a diagnostic on
// stderr otherwise, so scripts/ci.sh can chain probes with set -e.
//
// Usage:
//
//	obsprobe -require status,state http://127.0.0.1:6070/healthz
//	obsprobe -require points,next 'http://127.0.0.1:6070/series?since=0'
//	obsprobe -sse http://127.0.0.1:6070/events
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 10*time.Second, "overall probe deadline")
		require = flag.String("require", "", "comma-separated top-level JSON keys that must be present")
		sse     = flag.Bool("sse", false, "treat the endpoint as an SSE stream; validate the first data frame")
		retry   = flag.Duration("retry", 0, "keep retrying connection errors for this long (for servers still starting)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "obsprobe: usage: obsprobe [flags] URL")
		os.Exit(2)
	}
	url := flag.Arg(0)
	if err := probe(url, *timeout, *retry, *require, *sse); err != nil {
		fmt.Fprintf(os.Stderr, "obsprobe: %s: %v\n", url, err)
		os.Exit(1)
	}
}

func probe(url string, timeout, retry time.Duration, require string, sse bool) error {
	// -timeout is a hard overall deadline: connection, retries, headers
	// AND body/stream reads all run under one context, so a server that
	// accepts the connection and then stalls — the failure mode an SSE
	// probe is most exposed to, since it waits for a first data frame
	// that may never come — still turns into a nonzero exit at the
	// deadline instead of a hung CI job.
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	retryUntil := time.Now().Add(retry)
	var resp *http.Response
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err = http.DefaultClient.Do(req)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return fmt.Errorf("hard deadline (%v) exceeded: %w", timeout, err)
		}
		if time.Now().After(retryUntil) {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("hard deadline (%v) exceeded: %w", timeout, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	var payload []byte
	if sse {
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
			return fmt.Errorf("content-type %q, want text/event-stream", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				payload = []byte(strings.TrimPrefix(line, "data: "))
				break
			}
		}
		if payload == nil {
			return fmt.Errorf("stream ended without a data frame: %v", sc.Err())
		}
	} else {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		payload = b
	}
	var obj map[string]any
	if err := json.Unmarshal(payload, &obj); err != nil {
		return fmt.Errorf("response is not a JSON object: %v (body %.120q)", err, payload)
	}
	for _, key := range strings.Split(require, ",") {
		if key = strings.TrimSpace(key); key == "" {
			continue
		}
		if _, ok := obj[key]; !ok {
			return fmt.Errorf("JSON missing required key %q (body %.200q)", key, payload)
		}
	}
	return nil
}
