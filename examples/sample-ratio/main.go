// SAMPLE ratio study: reproduces the paper's Figures 8 and 9 — how the
// accuracy of the compiler-optimized simulator depends on the target
// program's communication-to-computation ratio, for the wavefront and
// nearest-neighbour patterns on the Origin 2000 model.
//
// "the predictions are very accurate when the ratio of computation to
// communication is large, which is typical of many real-world
// applications. As the amount of communication in the program increased,
// the simulator incurs larger errors" (paper §4.2).
//
//	go run ./examples/sample-ratio
package main

import (
	"fmt"
	"log"

	"mpisim"
)

func main() {
	patterns := []struct {
		name string
		id   int
	}{
		{"wavefront", mpisim.PatternWavefront},
		{"nearest-neighbour", mpisim.PatternNearestNeighbour},
	}
	const ranks = 8
	works := []int{400, 2000, 10000, 50000, 250000}

	for _, pat := range patterns {
		fmt.Printf("pattern: %s (8 ranks on a 2x4 grid, Origin 2000 model)\n", pat.name)
		fmt.Printf("%12s  %12s  %12s  %12s  %8s\n",
			"work/iter", "comm/comp", "measured", "predicted", "diff")
		for _, work := range works {
			runner, err := mpisim.NewRunner(mpisim.Sample(), mpisim.Origin2000())
			if err != nil {
				log.Fatal(err)
			}
			inputs := mpisim.SampleInputs(pat.id, work, 500, 10, 2, 4)
			v, err := runner.Validate(ranks, inputs, ranks, inputs)
			if err != nil {
				log.Fatal(err)
			}
			// Communication share measured from the detailed run.
			var comm, comp float64
			for _, rs := range v.MeasuredRep.Ranks {
				comm += float64(rs.BlockedTime) + float64(rs.CommCPUTime)
				comp += float64(rs.ComputeTime) - float64(rs.CommCPUTime)
			}
			fmt.Printf("%12d  %12.3f  %11.5fs  %11.5fs  %+7.2f%%\n",
				work, comm/comp, v.MeasuredTime, v.AMTime,
				100*(v.AMTime-v.MeasuredTime)/v.MeasuredTime)
		}
		fmt.Println()
	}
	fmt.Println("Computation-dominated points validate almost exactly; the error")
	fmt.Println("grows as communication dominates, because the analytic network")
	fmt.Println("model (not the task-time estimates) becomes the bottleneck.")
}
