// Machine study: the point of a calibrated performance-prediction tool
// is asking "what if we ran this on a different machine?" — the paper's
// motivation of "analyzing alternative architectures for such systems"
// (§1). This example predicts NAS SP on the paper's IBM SP, on the SGI
// Origin 2000, and on a commodity Beowulf cluster, then renders the
// predicted execution timeline for the slowest machine to show *where*
// the time goes.
//
//	go run ./examples/machine-study
package main

import (
	"fmt"
	"log"

	"mpisim"
)

func main() {
	machines := []*mpisim.Machine{mpisim.IBMSP(), mpisim.Origin2000(), mpisim.Cluster()}
	const ranks = 16
	inputs := mpisim.NASSPInputs(48, 2, 4)

	fmt.Println("NAS SP (48^3, 2 ADI steps) on 16 processors, predicted by MPI-SIM-AM:")
	fmt.Printf("%-18s  %12s  %10s  %10s\n", "machine", "predicted", "compute%", "blocked%")
	var worst *mpisim.Machine
	worstTime := 0.0
	for _, m := range machines {
		runner, err := mpisim.NewRunner(mpisim.NASSP(), m)
		if err != nil {
			log.Fatal(err)
		}
		runner.CollectTrace = true
		if _, err := runner.Calibrate(ranks, inputs); err != nil {
			log.Fatal(err)
		}
		rep, err := runner.Run(mpisim.Abstract, ranks, inputs)
		if err != nil {
			log.Fatal(err)
		}
		u, err := mpisim.Utilize(rep)
		if err != nil {
			log.Fatal(err)
		}
		var comp, blocked float64
		for k, v := range u.Fraction {
			switch k.String() {
			case "compute", "delay":
				comp += v
			case "blocked":
				blocked += v
			}
		}
		fmt.Printf("%-18s  %11.5fs  %9.1f%%  %9.1f%%\n", m.Name, rep.Time, 100*comp, 100*blocked)
		if rep.Time > worstTime {
			worstTime = rep.Time
			worst = m
		}
	}

	// Show where the slowest machine loses its time.
	runner, err := mpisim.NewRunner(mpisim.NASSP(), worst)
	if err != nil {
		log.Fatal(err)
	}
	runner.CollectTrace = true
	if _, err := runner.Calibrate(ranks, inputs); err != nil {
		log.Fatal(err)
	}
	rep, err := runner.Run(mpisim.Abstract, ranks, inputs)
	if err != nil {
		log.Fatal(err)
	}
	tl, err := mpisim.Timeline(rep, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted execution on %s:\n%s", worst.Name, tl)
	fmt.Println("\nThe cluster's 3x-higher message latency turns the pipelined line")
	fmt.Println("solves into long blocked stretches ('.'), while the same code on the")
	fmt.Println("SP spends most of its time computing ('='). No hardware required.")
}
