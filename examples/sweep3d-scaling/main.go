// Sweep3D scaling study: the paper's headline capability — simulating a
// target system far larger than direct execution can hold ("we were
// successful in simulating the execution of a configuration of Sweep3D
// for a target system with 10,000 processors!").
//
// The per-processor problem size is fixed (as in the paper's Figures 10
// and 16), so the total problem grows with the machine; the script sweeps
// target processor counts, predicting execution time and reporting the
// memory both simulators would need.
//
//	go run ./examples/sweep3d-scaling [maxRanks]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"mpisim"
)

func main() {
	maxRanks := 4096
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad maxRanks %q: %v", os.Args[1], err)
		}
		maxRanks = v
	}

	runner, err := mpisim.NewRunner(mpisim.Sweep3D(), mpisim.IBMSP())
	if err != nil {
		log.Fatal(err)
	}

	// Per-processor size 4x4x64 with 4-plane pipelining (a scaled stand-in
	// for the paper's 4x4x255; pass kt=255 for the full size).
	inputsFor := func(ranks int) map[string]float64 {
		npx, npy := mpisim.ProcGrid(ranks)
		return mpisim.Sweep3DInputs(4, 4, 64, 16, npx, npy)
	}

	if _, err := runner.Calibrate(16, inputsFor(16)); err != nil {
		log.Fatal(err)
	}

	// A 64-node host partition with 256 MB per node bounds what direct
	// execution could hold.
	budget := int64(64) * mpisim.IBMSP().MemoryPerHost

	fmt.Printf("%10s  %14s  %14s  %14s  %s\n",
		"targets", "predicted", "DE memory", "AM memory", "DE feasible?")
	for _, ranks := range []int{16, 64, 256, 1024, 2048, 4096, 10000} {
		if ranks > maxRanks {
			break
		}
		rep, err := runner.Run(mpisim.Abstract, ranks, inputsFor(ranks))
		if err != nil {
			log.Fatal(err)
		}
		deMem, _ := runner.DEMemory(ranks, inputsFor(ranks))
		amMem, _ := runner.AMMemory(ranks, inputsFor(ranks))
		feasible := "yes"
		if deMem > budget {
			feasible = "no (exceeds 64-host budget)"
		}
		fmt.Printf("%10d  %13.4fs  %13.2fMB  %13.3fMB  %s\n",
			ranks, rep.Time, float64(deMem)/1e6, float64(amMem)/1e6, feasible)
	}
	fmt.Println("\nThe predicted time grows with the pipeline depth of the wavefront")
	fmt.Println("sweeps while per-rank memory stays flat: the optimized simulator's")
	fmt.Println("footprint is the dummy communication buffer plus scalars.")
}
