// Tomcatv validation: reproduces the shape of the paper's Figure 3 and
// Figure 13 in one run — prediction accuracy of both simulator variants
// against ground truth, and the modeled cost of the simulators themselves
// when given as many hosts as targets.
//
//	go run ./examples/tomcatv-validation
package main

import (
	"fmt"
	"log"

	"mpisim"
)

func main() {
	runner, err := mpisim.NewRunner(mpisim.Tomcatv(), mpisim.IBMSP())
	if err != nil {
		log.Fatal(err)
	}
	inputs := mpisim.TomcatvInputs(384, 4)
	if _, err := runner.Calibrate(16, inputs); err != nil {
		log.Fatal(err)
	}

	hostParams := mpisim.DefaultHostParams()
	fmt.Println("Tomcatv 384x384, 4 iterations, IBM SP model")
	fmt.Printf("%6s  %12s  %12s  %12s | %12s  %12s\n",
		"procs", "measured", "MPI-SIM-DE", "MPI-SIM-AM", "DE host time", "AM host time")
	for _, ranks := range []int{4, 8, 16, 32, 64} {
		v, err := runner.Validate(ranks, inputs, 16, inputs)
		if err != nil {
			log.Fatal(err)
		}
		// Host-cost of running each simulator with hosts == targets
		// (paper Figure 13: AM's runtime stays flat and far below the
		// application's).
		deW := mpisim.HostWorkloadFrom(v.DERep, true, runner.Lookahead())
		amW := mpisim.HostWorkloadFrom(v.AMRep, false, runner.Lookahead())
		deHost, err := hostParams.Runtime(deW, ranks)
		if err != nil {
			log.Fatal(err)
		}
		amHost, err := hostParams.Runtime(amW, ranks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %11.5fs  %11.5fs  %11.5fs | %11.5fs  %11.5fs\n",
			ranks, v.MeasuredTime, v.DETime, v.AMTime, deHost, amHost)
	}
	fmt.Println("\nDE and AM predictions track the measured curve (errors well inside")
	fmt.Println("the paper's 17% envelope); the AM simulator's own cost stays far")
	fmt.Println("below the application it predicts.")
}
