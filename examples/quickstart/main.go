// Quickstart: the complete compiler-supported simulation workflow of the
// paper's Figure 2 on the Tomcatv benchmark, in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpisim"
)

func main() {
	// 1. A source program: Tomcatv as dhpf compiles it from HPF
	//    ((*,BLOCK) distribution). The compiler pipeline runs inside
	//    NewRunner: static task graph -> condensation -> slicing ->
	//    simplified + timer programs.
	prog := mpisim.Tomcatv()
	runner, err := mpisim.NewRunner(prog, mpisim.IBMSP())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(runner.Compiled.Summary())

	// 2. Calibrate: run the timer-instrumented program once on a small
	//    reference configuration to measure the task-time parameters w_i.
	inputs := mpisim.TomcatvInputs(512, 5)
	taskTimes, err := runner.Calibrate(16, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %d task-time parameters at 16 ranks\n\n", len(taskTimes))

	// 3. Predict: run the simplified program (MPI-SIM-AM) at
	//    configurations direct execution would struggle with, and compare
	//    against ground truth where it is still feasible.
	fmt.Printf("%10s  %14s  %14s  %8s\n", "ranks", "measured", "MPI-SIM-AM", "error")
	for _, ranks := range []int{4, 8, 16, 32, 64} {
		v, err := runner.Validate(ranks, inputs, 16, inputs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %13.6fs  %13.6fs  %7.2f%%\n",
			ranks, v.MeasuredTime, v.AMTime, 100*v.AMError)
	}

	// 4. The payoff: memory. The simplified program needs only the dummy
	//    communication buffer and a few scalars per rank.
	deMem, _ := runner.DEMemory(64, inputs)
	amMem, _ := runner.AMMemory(64, inputs)
	fmt.Printf("\nsimulator memory at 64 ranks: direct execution %.1f MB, optimized %.1f KB (%.0fx less)\n",
		float64(deMem)/1e6, float64(amMem)/1e3, float64(deMem)/float64(amMem))
}
