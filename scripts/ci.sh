#!/bin/sh
# ci.sh — the full verification gate, runnable from a clean checkout:
#
#   1. gofmt enforcement over the tree
#   2. tier-1 build + tests (go build ./... && go test ./...)
#   3. go vet
#   4. race detector over the concurrent packages (sim kernel, MPI
#      layer, observability registry, kernel core, interpreter)
#   5. simvet self-check: the simulator's own static-analysis suite
#      (contsafe, detpure, slabref, msgown) — unit + golden corpus
#      tests for the analyzers, then the suite over ./... with zero
#      non-suppressed diagnostics required and a per-rule count summary
#   6. mpicheck over every registered app and every examples/programs/*.ir
#   7. golden trace-export tests (Chrome trace_event + JSONL formats)
#   8. observability overhead gate: the kernel with a disabled metrics
#      registry attached must stay within 5% of the bare kernel
#   9. telemetry overhead gate: timeline disabled within 0.5% of off,
#      armed (production cadence + RunInfo heartbeats) within 2%, both
#      within-run pairs; then an HTTP smoke over every live endpoint
#      (/healthz /run /series /events, JSON/SSE validated by
#      tools/obsprobe) and a profiler smoke (mpisim -profile output must
#      parse with go tool pprof)
#  10. trace frontend gate: record → replay round-trip and weak-scaling
#      extrapolation tests (bit-exact replay, sched-equivalence across
#      engines), every examples/traces/*.jsonl replayed and extrapolated
#      through mpisim and attributed with mpireport
#  11. service gates: determinism (cached vs fresh artifacts
#      byte-identical, the cache index rebuilt from the journal) and
#      crash recovery (kill mid-run, restart under both policies,
#      orphaned-artifact sweep) tests over internal/svc
#  12. daemon smoke: boot mpisimd on a scratch directory, submit with
#      simdctl, poll to done, fetch the artifact, resubmit and require
#      the cached answer byte-identical, probe the per-job obs plane,
#      submit a recorded trace with simdctl -trace (replay artifact +
#      content-addressed cache hit), then SIGTERM with a job still
#      running and require a graceful drain (clean exit 0, abort
#      journaled)
#  13. fault determinism gate: same fault seed -> byte-identical report,
#      across host worker counts
#  14. fuzz smoke: 10s of randomized fault schedules against the kernel
#      and MPI layer, 10s of hostile job-submission bodies against the
#      daemon's decoder, and 10s of malformed JSONL against the trace
#      parser (no panics, every rejection line-anchored, malformed input
#      never enqueues)
#  15. fault-layer overhead gate: with the watchdog armed the kernel must
#      stay within 15% of the guard-disabled kernel measured in the same
#      process (within-run pair, immune to host drift)
#  16. network determinism gate: topology-aware runs (bus, torus,
#      fat-tree) are byte-identical across host worker counts
#  17. example network configs: every examples/networks/*.json passes
#      the mpicheck netconfig pass
#  18. network overhead gate: flat topology (the seed-compatible fast
#      path) must stay within 2% events/sec of topology-off measured in
#      the same runs
#  19. trace replay overhead gate: replaying a recorded trace must stay
#      within 25% events/sec of simulating the program directly,
#      measured as a within-run pair
#  20. kernel throughput gate: the full BenchmarkKernel suite (through
#      procs=16384 on the short path; KernelNet included) vs the recorded
#      BENCH_kernel.json at a 25% tolerance — best-of-3 samples of
#      identical code land ±20% apart across sessions on this host, so
#      the cross-session gate catches collapses, while the tight bounds
#      are the within-run pairs above. The procs=65536 rows are
#      nightly-only: set MPISIM_BENCH_LARGE=1 to run them; otherwise
#      benchgate reports them as informational.
#
# Usage: scripts/ci.sh
#        MPISIM_BENCH_LARGE=1 scripts/ci.sh   # nightly: include 65536 rows
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== tests"
go test ./...

echo "== race (sim kernel + MPI layer + observability + fault injection + network + core + interpreter + service)"
go test -race ./internal/sim/ ./internal/mpi/ ./internal/obs/ ./internal/fault/ ./internal/net/ ./internal/core/ ./internal/interp/ ./internal/svc/

echo "== simvet static-analysis suite"
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
# The analyzers' own tests first: the flow-engine/allow unit tests and
# the seeded-violation golden corpus (each analyzer must catch every
# seeded bug and stay silent on the clean fixtures).
go test -count=1 ./tools/analyzers/simvet/...
go build -o "$bin/simvet" ./tools/analyzers/simvet
# The suite over the simulator itself: any non-suppressed diagnostic
# fails the gate (go vet exits non-zero when the tool reports).
simvet_out="$bin/simvet.out"
simvet_status=0
go vet -vettool="$bin/simvet" ./... 2>"$simvet_out" || simvet_status=$?
# Per-rule count summary, failing or not (empty on a clean tree).
awk -F'simvet/' '/simvet\//{split($2, a, ":"); n[a[1]]++}
     END{for (r in n) printf "simvet %s: %d\n", r, n[r]}' "$simvet_out" | sort
if [ "$simvet_status" -ne 0 ]; then
    cat "$simvet_out" >&2
    echo "simvet: non-suppressed diagnostics (see above)" >&2
    exit 1
fi
echo "simvet: 0 non-suppressed diagnostics ($("$bin/simvet" -listrules | awk '/^  /{n++} END{print n}') rules)"

echo "== mpicheck: registered applications"
go build -o "$bin/mpicheck" ./cmd/mpicheck
"$bin/mpicheck" -all -min warning

echo "== mpicheck: example programs"
for f in examples/programs/*.ir; do
    "$bin/mpicheck" -file "$f" -inputs N=32,STEPS=2 -min warning
done

echo "== golden trace exports"
go test -count=1 -run 'Golden' ./internal/obs/ ./internal/trace/

# The overhead gates run the bench set several times in separate
# invocations and let benchgate keep the best events/sec per benchmark:
# interleaving the samples across time windows keeps a host-load burst
# from landing entirely on one side of a pair, so the tight thresholds
# reflect the code, not the noisiest single run. The tightest pairs
# (obs disabled 5%, net flat 2%) get five samples at 1s; a best-of-3 at
# 0.5s has been seen opening a fake 8% gap between identical code paths.
echo "== observability overhead gate"
go build -o "$bin/benchgate" ./tools/benchgate
{ for i in 1 2 3 4 5; do
    go test -run '^$' -bench 'BenchmarkKernelObs' -benchtime 1s ./internal/sim/
done; } |
    "$bin/benchgate" \
        -pair "BenchmarkKernelObs/off,BenchmarkKernelObs/disabled,0.05" \
        -pair "BenchmarkKernelObs/off,BenchmarkKernelObs/metrics,0.15"

echo "== telemetry overhead gate"
# Timeline/RunInfo plane: "disabled" is dropped in setupObs, so it must
# be indistinguishable from "off" (0.5%); "armed" samples at the
# production cadence and must stay within 2%. Both pairs are within-run
# and take five interleaved samples like the other tight gates.
{ for i in 1 2 3 4 5; do
    go test -run '^$' -bench 'BenchmarkKernelTelemetry' -benchtime 1s ./internal/sim/
done; } |
    "$bin/benchgate" \
        -pair "BenchmarkKernelTelemetry/off,BenchmarkKernelTelemetry/disabled,0.005" \
        -pair "BenchmarkKernelTelemetry/off,BenchmarkKernelTelemetry/armed,0.02"

echo "== telemetry HTTP smoke"
# Boot a short experiment with the telemetry server up, then hit every
# live endpoint and assert well-formed JSON (obsprobe); -obslinger keeps
# the server alive after the run so the probes cannot race completion.
go build -o "$bin/experiments" ./cmd/experiments
go build -o "$bin/obsprobe" ./tools/obsprobe
obsaddr=127.0.0.1:6074
"$bin/experiments" -id fig3 -obshttp "$obsaddr" -obslinger 15s >/dev/null 2>&1 &
exp_pid=$!
"$bin/obsprobe" -retry 5s -require status,state,heartbeat_age_ns "http://$obsaddr/healthz"
"$bin/obsprobe" -require state,percent,events "http://$obsaddr/run"
"$bin/obsprobe" -require points,next "http://$obsaddr/series?since=0"
"$bin/obsprobe" -sse "http://$obsaddr/events"
kill "$exp_pid" 2>/dev/null || true
wait "$exp_pid" 2>/dev/null || true
echo "telemetry HTTP smoke: /healthz /run /series /events OK"

echo "== virtual-time profiler smoke"
# The profile an mpisim run emits must parse with the real consumer.
go build -o "$bin/mpisim" ./cmd/mpisim
"$bin/mpisim" -app sweep3d -mode am -ranks 16 -profile "$bin/prof.pb.gz" >/dev/null
go tool pprof -top -nodecount=5 "$bin/prof.pb.gz" >/dev/null
echo "profiler smoke: go tool pprof parsed $bin/prof.pb.gz"

echo "== trace frontend gate (record -> replay -> extrapolate)"
# Unit gates: bit-exact round-trip replay, weak-scaling extrapolation
# (16 -> 64 under torus and fat-tree), and record-and-replay determinism
# across engines/worker counts.
go test -count=1 -run 'TestRoundTrip|TestExtrapolate|TestParse' ./internal/tracein/
go test -count=1 -run 'TestSchedEquivalenceReplay' ./internal/core/
# Every committed example trace must replay cleanly; the ring trace is
# additionally extrapolated to a 64-rank torus and the pair's scaling
# loss attributed with mpireport.
go build -o "$bin/mpireport" ./cmd/mpireport
for f in examples/traces/*.jsonl; do
    "$bin/mpisim" -tracein "$f" >/dev/null
done
"$bin/mpisim" -tracein examples/traces/ring.jsonl -runjson "$bin/ring8.json" >/dev/null
"$bin/mpisim" -tracein examples/traces/ring.jsonl -xranks 64 \
    -topology torus:dims=8x8 -runjson "$bin/ring64.json" >/dev/null
"$bin/mpireport" "$bin/ring8.json" "$bin/ring64.json" >/dev/null
echo "trace frontend: examples replayed, 8->64 extrapolation attributed"

echo "== service determinism + crash-recovery gate"
go test -count=1 -run 'TestCachedVsFresh|TestCacheSurvivesRestart|TestCrashRecovery|TestDrain|TestJournal|TestStore|TestTrace' ./internal/svc/

echo "== daemon smoke (mpisimd + simdctl)"
go build -o "$bin/mpisimd" ./cmd/mpisimd
go build -o "$bin/simdctl" ./tools/simdctl
simaddr=127.0.0.1:6075
simdir="$bin/mpisimd-data"
"$bin/mpisimd" -addr "$simaddr" -dir "$simdir" -q &
simd_pid=$!
"$bin/obsprobe" -retry 5s -require status,jobs,queue_depth "http://$simaddr/healthz"
quickjob='{"app":"sample","mode":"measured","ranks":4,"inputs":{"PATTERN":2,"ITERS":50,"WORK":100,"MSG":64}}'
job=$("$bin/simdctl" -addr "$simaddr" submit "$quickjob" |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$job" ] || { echo "daemon smoke: submit returned no job id" >&2; exit 1; }
"$bin/simdctl" -addr "$simaddr" wait "$job" >/dev/null
"$bin/simdctl" -addr "$simaddr" artifact "$job" >"$bin/artifact1.json"
grep -q '"report"' "$bin/artifact1.json"
"$bin/obsprobe" -require state,percent,events "http://$simaddr/jobs/$job/obs/run"
"$bin/obsprobe" -require status,state "http://$simaddr/jobs/$job/obs/healthz"
# Resubmit the identical spec: must be answered from the artifact cache,
# byte-identical to the fresh run.
job2=$("$bin/simdctl" -addr "$simaddr" submit "$quickjob" |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
"$bin/simdctl" -addr "$simaddr" wait "$job2" >/dev/null
"$bin/simdctl" -addr "$simaddr" artifact "$job2" >"$bin/artifact2.json"
cmp "$bin/artifact1.json" "$bin/artifact2.json"
# Trace job: submit a recorded trace for replay and require a normal
# artifact; an identical resubmission must be answered from the
# content-addressed cache (the spec hash covers the trace text).
tjob=$("$bin/simdctl" -addr "$simaddr" -trace examples/traces/ring.jsonl submit |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$tjob" ] || { echo "daemon smoke: trace submit returned no job id" >&2; exit 1; }
"$bin/simdctl" -addr "$simaddr" wait "$tjob" >/dev/null
"$bin/simdctl" -addr "$simaddr" artifact "$tjob" >"$bin/tartifact1.json"
grep -q '"mode": "replay"' "$bin/tartifact1.json"
tjob2=$("$bin/simdctl" -addr "$simaddr" -trace examples/traces/ring.jsonl submit |
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)
"$bin/simdctl" -addr "$simaddr" wait "$tjob2" >/dev/null
"$bin/simdctl" -addr "$simaddr" artifact "$tjob2" >"$bin/tartifact2.json"
cmp "$bin/tartifact1.json" "$bin/tartifact2.json"
# Graceful drain: SIGTERM with a long job still running must cancel it,
# journal the abort, and exit 0.
longjob='{"app":"sample","mode":"measured","ranks":4,"inputs":{"PATTERN":2,"ITERS":500000,"WORK":100,"MSG":64}}'
"$bin/simdctl" -addr "$simaddr" submit "$longjob" >/dev/null
sleep 1
kill -TERM "$simd_pid"
wait "$simd_pid"
grep -q '"state":"aborted"' "$simdir/journal.jsonl"
echo "daemon smoke: submit/wait/artifact/cache/obs/drain OK"

echo "== fault determinism gate"
go test -count=1 -run 'TestFaultDeterminism' ./internal/mpi/

echo "== network determinism gate"
go test -count=1 -run 'TestNetDeterminism|TestNetRealParallelDeterminism' ./internal/mpi/

echo "== example network configs"
for f in examples/networks/*.json; do
    "$bin/mpicheck" -file examples/programs/ring.ir -inputs N=32,STEPS=2 \
        -ranks 8 -netjson "$f" -min warning
done

echo "== fuzz smoke (randomized fault schedules + hostile job submissions + malformed traces)"
go test -fuzz 'FuzzFaultSchedules' -fuzztime 10s -run '^$' ./internal/mpi/
go test -fuzz 'FuzzDecodeSpec' -fuzztime 10s -run '^$' ./internal/svc/
go test -fuzz 'FuzzParseTrace' -fuzztime 10s -run '^$' ./internal/tracein/

echo "== fault-layer overhead gate"
{ for i in 1 2 3; do
    go test -run '^$' -bench 'BenchmarkKernelGuard' -benchtime 1s ./internal/sim/
done; } |
    "$bin/benchgate" \
        -pair "BenchmarkKernelGuard/off,BenchmarkKernelGuard/armed,0.15"

echo "== network overhead gate"
# Five interleaved samples (not three): the flat-vs-off pair threshold is
# 2% and the two benches are near-identical code paths, so the best-of-N
# on each side needs enough samples that host noise can't open a fake gap.
{ for i in 1 2 3 4 5; do
    go test -run '^$' -bench 'BenchmarkKernelNet' -benchtime 1s ./internal/mpi/
done; } |
    "$bin/benchgate" \
        -pair "BenchmarkKernelNet/off,BenchmarkKernelNet/flat,0.02"

echo "== trace replay overhead gate"
# Replay re-issues the recorded call sequence through the same API the
# compiled program used; the trace indirection must stay within 25%
# events/sec of direct simulation, measured within the same runs.
{ for i in 1 2 3; do
    go test -run '^$' -bench 'BenchmarkTraceReplay' -benchtime 1s ./internal/tracein/
done; } |
    "$bin/benchgate" \
        -pair "BenchmarkTraceReplay/direct,BenchmarkTraceReplay/replay,0.25"

echo "== kernel throughput gate (short mode: up to procs=16384)"
# MPISIM_BENCH_LARGE is inherited by the check: unset (the default) the
# 65536 rows in the baseline are informational; the nightly path exports
# it and gates them too.
scripts/bench_kernel.sh -check 0.5s 0.25

echo "CI OK"
