#!/bin/sh
# ci.sh — the full verification gate, runnable from a clean checkout:
#
#   1. gofmt enforcement over the tree
#   2. tier-1 build + tests (go build ./... && go test ./...)
#   3. go vet
#   4. race detector over the concurrent packages (sim kernel, MPI layer)
#   5. the msgown ownership analyzer via go vet -vettool
#   6. mpicheck over every registered app and every examples/programs/*.ir
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== tests"
go test ./...

echo "== race (sim kernel + MPI layer)"
go test -race ./internal/sim/ ./internal/mpi/

echo "== msgown ownership analyzer"
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/msgown" ./tools/analyzers/msgown
go vet -vettool="$bin/msgown" ./...

echo "== mpicheck: registered applications"
go build -o "$bin/mpicheck" ./cmd/mpicheck
"$bin/mpicheck" -all -min warning

echo "== mpicheck: example programs"
for f in examples/programs/*.ir; do
    "$bin/mpicheck" -file "$f" -inputs N=32,STEPS=2 -min warning
done

echo "CI OK"
