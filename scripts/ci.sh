#!/bin/sh
# ci.sh — the full verification gate, runnable from a clean checkout:
#
#   1. gofmt enforcement over the tree
#   2. tier-1 build + tests (go build ./... && go test ./...)
#   3. go vet
#   4. race detector over the concurrent packages (sim kernel, MPI
#      layer, observability registry)
#   5. the msgown ownership analyzer via go vet -vettool
#   6. mpicheck over every registered app and every examples/programs/*.ir
#   7. golden trace-export tests (Chrome trace_event + JSONL formats)
#   8. observability overhead gate: the kernel with a disabled metrics
#      registry attached must stay within 5% of the bare kernel
#   9. fault determinism gate: same fault seed -> byte-identical report,
#      across host worker counts
#  10. fuzz smoke: 10s of randomized fault schedules against the kernel
#      and MPI layer (no panics, accounting invariants hold)
#  11. fault-layer overhead gate: with the fault/guard layer disabled the
#      kernel must stay within 2% events/sec of the recorded
#      BENCH_kernel.json; with the watchdog armed, within 15% of the
#      disabled kernel measured in the same run
#  12. network determinism gate: topology-aware runs (bus, torus,
#      fat-tree) are byte-identical across host worker counts
#  13. example network configs: every examples/networks/*.json passes
#      the mpicheck netconfig pass
#  14. network overhead gate: flat topology (the seed-compatible fast
#      path) must stay within 2% events/sec of topology-off, and the
#      suite must hold the recorded BENCH_kernel.json baseline
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== tests"
go test ./...

echo "== race (sim kernel + MPI layer + observability + fault injection + network)"
go test -race ./internal/sim/ ./internal/mpi/ ./internal/obs/ ./internal/fault/ ./internal/net/

echo "== msgown ownership analyzer"
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/msgown" ./tools/analyzers/msgown
go vet -vettool="$bin/msgown" ./...

echo "== mpicheck: registered applications"
go build -o "$bin/mpicheck" ./cmd/mpicheck
"$bin/mpicheck" -all -min warning

echo "== mpicheck: example programs"
for f in examples/programs/*.ir; do
    "$bin/mpicheck" -file "$f" -inputs N=32,STEPS=2 -min warning
done

echo "== golden trace exports"
go test -count=1 -run 'Golden' ./internal/obs/ ./internal/trace/

# Both overhead gates run the bench set three times in separate
# invocations and let benchgate keep the best events/sec per benchmark:
# interleaving the samples across time windows keeps a host-load burst
# from landing entirely on one side of a pair, so the tight thresholds
# reflect the code, not the noisiest single run.
echo "== observability overhead gate"
go build -o "$bin/benchgate" ./tools/benchgate
{ for i in 1 2 3; do
    go test -run '^$' -bench 'BenchmarkKernelObs' -benchtime 0.5s ./internal/sim/
done; } |
    "$bin/benchgate" \
        -pair "BenchmarkKernelObs/off,BenchmarkKernelObs/disabled,0.05" \
        -pair "BenchmarkKernelObs/off,BenchmarkKernelObs/metrics,0.15"

echo "== fault determinism gate"
go test -count=1 -run 'TestFaultDeterminism' ./internal/mpi/

echo "== network determinism gate"
go test -count=1 -run 'TestNetDeterminism|TestNetRealParallelDeterminism' ./internal/mpi/

echo "== example network configs"
for f in examples/networks/*.json; do
    "$bin/mpicheck" -file examples/programs/ring.ir -inputs N=32,STEPS=2 \
        -ranks 8 -netjson "$f" -min warning
done

echo "== fuzz smoke (randomized fault schedules)"
go test -fuzz 'FuzzFaultSchedules' -fuzztime 10s -run '^$' ./internal/mpi/

echo "== fault-layer overhead gate"
{ for i in 1 2 3; do
    go test -run '^$' -bench 'BenchmarkKernelGuard' -benchtime 1s ./internal/sim/
done; } |
    "$bin/benchgate" \
        -baseline BENCH_kernel.json -maxregress 0.02 \
        -pair "BenchmarkKernelGuard/off,BenchmarkKernelGuard/armed,0.15"

echo "== network overhead gate"
{ for i in 1 2 3; do
    go test -run '^$' -bench 'BenchmarkKernelNet' -benchtime 0.5s ./internal/mpi/
done; } |
    "$bin/benchgate" \
        -baseline BENCH_kernel.json -maxregress 0.10 \
        -pair "BenchmarkKernelNet/off,BenchmarkKernelNet/flat,0.02"

echo "CI OK"
