#!/bin/sh
# ci.sh — the full verification gate, runnable from a clean checkout:
#
#   1. gofmt enforcement over the tree
#   2. tier-1 build + tests (go build ./... && go test ./...)
#   3. go vet
#   4. race detector over the concurrent packages (sim kernel, MPI
#      layer, observability registry)
#   5. the msgown ownership analyzer via go vet -vettool
#   6. mpicheck over every registered app and every examples/programs/*.ir
#   7. golden trace-export tests (Chrome trace_event + JSONL formats)
#   8. observability overhead gate: the kernel with a disabled metrics
#      registry attached must stay within 5% of the bare kernel
#
# Usage: scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== build"
go build ./...

echo "== vet"
go vet ./...

echo "== tests"
go test ./...

echo "== race (sim kernel + MPI layer + observability)"
go test -race ./internal/sim/ ./internal/mpi/ ./internal/obs/

echo "== msgown ownership analyzer"
bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/msgown" ./tools/analyzers/msgown
go vet -vettool="$bin/msgown" ./...

echo "== mpicheck: registered applications"
go build -o "$bin/mpicheck" ./cmd/mpicheck
"$bin/mpicheck" -all -min warning

echo "== mpicheck: example programs"
for f in examples/programs/*.ir; do
    "$bin/mpicheck" -file "$f" -inputs N=32,STEPS=2 -min warning
done

echo "== golden trace exports"
go test -count=1 -run 'Golden' ./internal/obs/ ./internal/trace/

echo "== observability overhead gate"
go build -o "$bin/benchgate" ./tools/benchgate
go test -run '^$' -bench 'BenchmarkKernelObs' -benchtime 0.5s ./internal/sim/ |
    "$bin/benchgate" \
        -pair "BenchmarkKernelObs/off,BenchmarkKernelObs/disabled,0.05" \
        -pair "BenchmarkKernelObs/off,BenchmarkKernelObs/metrics,0.15"

echo "CI OK"
