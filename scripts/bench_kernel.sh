#!/bin/sh
# bench_kernel.sh — run the kernel throughput suite (BenchmarkKernel* in
# internal/sim, the network-layer BenchmarkKernelNet in internal/mpi,
# and the trace-frontend BenchmarkTraceReplay in internal/tracein) and
# record the results as BENCH_kernel.json so the performance trajectory
# is tracked across PRs.
#
# Usage:
#   scripts/bench_kernel.sh [benchtime]                      # record (default 2s)
#   scripts/bench_kernel.sh -check [benchtime] [maxregress]  # compare, don't record
#
# In -check mode the suite runs (default 1s) and tools/benchgate compares
# events/sec against the recorded BENCH_kernel.json, failing on any
# regression beyond maxregress (default 10%); the baseline file is left
# untouched. CI passes a wider tolerance: the baseline is recorded in a
# different process on a different day, and best-of-3 samples of
# identical code have been observed ±20% apart across sessions on this
# shared host — the cross-session gate is for order-of-magnitude
# collapses (the goroutine-per-process kernel was 3-5x off), while tight
# overhead bounds live in ci.sh's within-run pair gates.
#
# The procs=65536 rows are env-gated behind MPISIM_BENCH_LARGE (they need
# ~1 GiB and tens of seconds). Record mode always sets it so the baseline
# stays complete; -check mode inherits the caller's environment, so the
# short CI path skips the large rows (benchgate reports them as
# informational) and the nightly path opts in with MPISIM_BENCH_LARGE=1.
#
# Each JSON entry holds the sub-benchmark name, iteration count, ns/op,
# and every custom metric the suite reports (events/sec, allocs/event).
# Record mode samples every benchmark three times (-count 3) and keeps
# the sample with the median events/sec: a single lucky sample would
# record a throughput the best-of-N check side can't reliably reproduce
# on a noisy host, turning the regression gate into a coin flip.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-check" ]; then
    benchtime="${2:-1s}"
    maxregress="${3:-0.10}"
    bin=$(mktemp -d)
    trap 'rm -rf "$bin"' EXIT
    go build -o "$bin/benchgate" ./tools/benchgate
    # Three interleaved passes; benchgate keeps the best events/sec per
    # benchmark, so a single noisy sample can't fail the gate.
    { for i in 1 2 3; do
        go test -bench 'BenchmarkKernel' -benchtime "$benchtime" -run '^$' ./internal/sim/
        go test -bench 'BenchmarkKernelNet' -benchtime "$benchtime" -run '^$' ./internal/mpi/
        go test -bench 'BenchmarkTraceReplay' -benchtime "$benchtime" -run '^$' ./internal/tracein/
    done; } | "$bin/benchgate" -baseline BENCH_kernel.json -maxregress "$maxregress"
    exit 0
fi

benchtime="${1:-2s}"
out=BENCH_kernel.json
trap 'rm -f "$out.tmp"' EXIT

export MPISIM_BENCH_LARGE=1 # the recorded baseline always carries the 65536 rows

{ go test -bench 'BenchmarkKernel' -benchtime "$benchtime" -count 3 -run '^$' ./internal/sim/
  go test -bench 'BenchmarkKernelNet' -benchtime "$benchtime" -count 3 -run '^$' ./internal/mpi/
  go test -bench 'BenchmarkTraceReplay' -benchtime "$benchtime" -count 3 -run '^$' ./internal/tracein/
} |
awk '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    line = ""
    ev = 0
    # Fields after the iteration count come in (value, unit) pairs.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "events/sec") ev = $i + 0
        gsub(/[^A-Za-z0-9]/, "_", unit)
        line = line sprintf(",\n    \"%s\": %s", unit, $i)
    }
    if (!(name in count)) order[n++] = name
    c = count[name]++
    samples[name, c] = sprintf("  {\n    \"name\": \"%s\",\n    \"iterations\": %s%s\n  }", name, iters, line)
    evs[name, c] = ev
}
END {
    if (n == 0) { print "bench_kernel.sh: no benchmark output" > "/dev/stderr"; exit 1 }
    print "["
    for (i = 0; i < n; i++) {
        name = order[i]
        m = count[name]
        # Keep the sample whose events/sec is the median of the -count
        # runs (rank ceil(m/2) in ascending order, ties broken by index).
        pick = 0
        for (a = 0; a < m; a++) {
            le = 0
            for (b = 0; b < m; b++)
                if (evs[name, b] < evs[name, a] || (evs[name, b] == evs[name, a] && b <= a)) le++
            if (le == int((m + 1) / 2)) { pick = a; break }
        }
        printf "%s%s\n", samples[name, pick], (i < n - 1 ? "," : "")
    }
    print "]"
}
' > "$out.tmp"
mv "$out.tmp" "$out" # atomic: a failed run must not clobber the last good file

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
