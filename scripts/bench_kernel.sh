#!/bin/sh
# bench_kernel.sh — run the kernel throughput suite (BenchmarkKernel* in
# internal/sim) and record the results as BENCH_kernel.json so the
# performance trajectory is tracked across PRs.
#
# Usage: scripts/bench_kernel.sh [benchtime]   (default 2s)
#
# Each JSON entry holds the sub-benchmark name, iteration count, ns/op,
# and every custom metric the suite reports (events/sec, allocs/event).
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2s}"
out=BENCH_kernel.json
trap 'rm -f "$out.tmp"' EXIT

go test -bench 'BenchmarkKernel' -benchtime "$benchtime" -run '^$' ./internal/sim/ |
awk '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    line = ""
    # Fields after the iteration count come in (value, unit) pairs.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]/, "_", unit)
        line = line sprintf(",\n    \"%s\": %s", unit, $i)
    }
    entries[n++] = sprintf("  {\n    \"name\": \"%s\",\n    \"iterations\": %s%s\n  }", name, iters, line)
}
END {
    if (n == 0) { print "bench_kernel.sh: no benchmark output" > "/dev/stderr"; exit 1 }
    print "["
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    print "]"
}
' > "$out.tmp"
mv "$out.tmp" "$out" # atomic: a failed run must not clobber the last good file

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
