#!/bin/sh
# bench_kernel.sh — run the kernel throughput suite (BenchmarkKernel* in
# internal/sim plus the network-layer BenchmarkKernelNet in internal/mpi)
# and record the results as BENCH_kernel.json so the performance
# trajectory is tracked across PRs.
#
# Usage:
#   scripts/bench_kernel.sh [benchtime]          # record (default 2s)
#   scripts/bench_kernel.sh -check [benchtime]   # compare, don't record
#
# In -check mode the suite runs (default 1s) and tools/benchgate compares
# events/sec against the recorded BENCH_kernel.json, failing on any
# regression beyond 10%; the baseline file is left untouched.
#
# Each JSON entry holds the sub-benchmark name, iteration count, ns/op,
# and every custom metric the suite reports (events/sec, allocs/event).
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-check" ]; then
    benchtime="${2:-1s}"
    bin=$(mktemp -d)
    trap 'rm -rf "$bin"' EXIT
    go build -o "$bin/benchgate" ./tools/benchgate
    { go test -bench 'BenchmarkKernel' -benchtime "$benchtime" -run '^$' ./internal/sim/
      go test -bench 'BenchmarkKernelNet' -benchtime "$benchtime" -run '^$' ./internal/mpi/
    } | "$bin/benchgate" -baseline BENCH_kernel.json -maxregress 0.10
    exit 0
fi

benchtime="${1:-2s}"
out=BENCH_kernel.json
trap 'rm -f "$out.tmp"' EXIT

{ go test -bench 'BenchmarkKernel' -benchtime "$benchtime" -run '^$' ./internal/sim/
  go test -bench 'BenchmarkKernelNet' -benchtime "$benchtime" -run '^$' ./internal/mpi/
} |
awk '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
    line = ""
    # Fields after the iteration count come in (value, unit) pairs.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9]/, "_", unit)
        line = line sprintf(",\n    \"%s\": %s", unit, $i)
    }
    entries[n++] = sprintf("  {\n    \"name\": \"%s\",\n    \"iterations\": %s%s\n  }", name, iters, line)
}
END {
    if (n == 0) { print "bench_kernel.sh: no benchmark output" > "/dev/stderr"; exit 1 }
    print "["
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    print "]"
}
' > "$out.tmp"
mv "$out.tmp" "$out" # atomic: a failed run must not clobber the last good file

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
