// Command mpicheck statically verifies a benchmark or pseudocode program
// before it is ever simulated: it matches sends to receives across the
// resolved process sets, searches the communication traces for deadlock,
// verifies collective consistency across ranks, proves section and
// buffer bounds, and audits the compiler's program slice.
//
// Usage:
//
//	mpicheck -app tomcatv -ranks 16
//	mpicheck -file prog.ir -ranks 8 -inputs N=1024
//	mpicheck -all -json
//	mpicheck -list
//	mpicheck -app sweep3d -ranks 16 -topology fattree:k=4 -placement block
//	mpicheck -app sweep3d -ranks 16 -netjson examples/networks/dumbbell.json
//
// Exit status: 0 when every checked program is free of error-severity
// findings (warnings allowed), 1 when errors were found, 2 on usage or
// input problems.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpisim/internal/apps"
	"mpisim/internal/check"
	"mpisim/internal/cliutil"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
)

func main() {
	os.Exit(run())
}

// target is one program to verify with its input bindings.
type target struct {
	prog   *ir.Program
	inputs map[string]float64
}

func run() int {
	var (
		appName   = flag.String("app", "", "application to check: "+strings.Join(apps.Names(), ", "))
		file      = flag.String("file", "", "check a program from a pseudocode file instead of -app")
		all       = flag.Bool("all", false, "check every registered application")
		ranks     = flag.Int("ranks", 4, "process count to resolve the symbolic structure at")
		inputsStr = flag.String("inputs", "", "program inputs as key=value,... (defaults per app)")
		passesStr = flag.String("passes", "", "comma-separated pass subset (default: all)")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON")
		minStr    = flag.String("min", "info", "lowest severity to print: info, warning, error")
		maxOps    = flag.Int("max-ops", 0, "per-rank abstract-execution budget (0 = default)")
		list      = flag.Bool("list", false, "list the registered passes and exit")
		machName  = flag.String("machine", "", "machine model for the netconfig pass: "+strings.Join(machine.Names(), ", ")+" (empty = skip)")
		topology  = flag.String("topology", "", "interconnect topology to validate (implies -machine ibmsp if unset)")
		placement = flag.String("placement", "", "rank placement to validate: block, roundrobin, random:SEED")
		netJSON   = flag.String("netjson", "", "arbitrary-graph topology config file (shorthand for -topology graph:PATH)")
	)
	flag.Parse()

	if *list {
		for _, p := range check.Passes() {
			fmt.Printf("%-10s %s\n", p.Name, p.Desc)
		}
		return 0
	}
	var min check.Severity
	switch *minStr {
	case "info":
		min = check.Info
	case "warning":
		min = check.Warning
	case "error":
		min = check.Error
	default:
		return usage("unknown -min %q (want info, warning, error)", *minStr)
	}
	var passes []string
	if *passesStr != "" {
		known := map[string]bool{}
		for _, p := range check.Passes() {
			known[p.Name] = true
		}
		for _, name := range strings.Split(*passesStr, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				return usage("unknown pass %q (see -list)", name)
			}
			passes = append(passes, name)
		}
	}
	over, err := cliutil.ParseInputs(*inputsStr)
	if err != nil {
		return usage("%v", err)
	}
	if *netJSON != "" {
		if *topology != "" {
			return usage("-netjson and -topology are mutually exclusive")
		}
		*topology = "graph:" + *netJSON
	}
	if *machName == "" && (*topology != "" || *placement != "") {
		*machName = "ibmsp"
	}
	var mach *machine.Model
	if *machName != "" {
		mach, err = machine.ByName(*machName)
		if err != nil {
			return usage("%v", err)
		}
		if *topology != "" {
			mach.Topology = *topology
		}
		if *placement != "" {
			mach.Placement = *placement
		}
	}

	targets, rc := collectTargets(*appName, *file, *all, *ranks, over)
	if rc != 0 {
		return rc
	}

	exit := 0
	for _, tg := range targets {
		res, err := check.Run(tg.prog, check.Options{
			Ranks: *ranks, Inputs: tg.inputs, Passes: passes, MaxOps: *maxOps,
			Machine: mach,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpicheck:", err)
			return 2
		}
		if *jsonOut {
			raw, err := res.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpicheck:", err)
				return 2
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(res.Text(min))
			fmt.Printf("%s: %d error(s), %d warning(s) at %d ranks\n",
				res.Program, res.Errors(), res.Warnings(), res.Ranks)
		}
		if res.HasErrors() {
			exit = 1
		}
	}
	return exit
}

// collectTargets resolves the -app/-file/-all selection into programs
// with bound inputs, reporting usage errors itself.
func collectTargets(appName, file string, all bool, ranks int, over map[string]float64) ([]target, int) {
	switch {
	case all:
		if appName != "" || file != "" {
			return nil, usage("-all excludes -app and -file")
		}
		var out []target
		for _, name := range apps.Names() {
			spec := apps.Registry()[name]
			inputs, err := safeDefaults(spec, ranks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mpicheck: skipping %s: %v\n", name, err)
				continue
			}
			out = append(out, target{spec.Build(), cliutil.MergeInputs(inputs, over)})
		}
		return out, 0
	case file != "":
		if appName != "" {
			return nil, usage("-file excludes -app")
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, usage("%v", err)
		}
		prog, err := ir.Parse(string(src))
		if err != nil {
			return nil, usage("%v", err)
		}
		return []target{{prog, over}}, 0
	case appName != "":
		spec, ok := apps.Registry()[appName]
		if !ok {
			return nil, usage("unknown app %q (have %s)", appName, strings.Join(apps.Names(), ", "))
		}
		inputs, err := safeDefaults(spec, ranks)
		if err != nil {
			return nil, usage("%s: %v", appName, err)
		}
		return []target{{spec.Build(), cliutil.MergeInputs(inputs, over)}}, 0
	}
	return nil, usage("one of -app, -file, -all is required")
}

// safeDefaults converts an app's rank-count panic (e.g. NAS SP on a
// non-square count) into a usage error.
func safeDefaults(spec apps.Spec, ranks int) (inputs map[string]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return spec.Default(ranks), nil
}

// usage prints a message plus flag help and returns exit code 2.
func usage(format string, args ...interface{}) int {
	fmt.Fprintf(os.Stderr, "mpicheck: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "usage of mpicheck:")
	flag.PrintDefaults()
	return 2
}
