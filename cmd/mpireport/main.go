// Command mpireport compares run artifacts written by `mpisim -runjson`
// and attributes the predicted-time difference between configurations:
// which component of the critical rank's time grew (pure compute, delay,
// communication CPU, blocking), how each rank shifted, and which
// condensed task — anchored to its listing line — the delay change comes
// from. This answers the scaling question ("we doubled the ranks and
// only got 1.3x: why?") from predicted executions, before the machine
// exists.
//
// Usage:
//
//	mpisim -app sweep3d -mode am -ranks 16 -runjson r16.json
//	mpisim -app sweep3d -mode am -ranks 64 -runjson r64.json
//	mpireport r16.json r64.json
//	mpireport -json r16.json r32.json r64.json > scaling.json
//	mpireport -profile r64.pb.gz r16.json r64.json   # then go tool pprof
//
// With more than two artifacts, runs are sorted by rank count and each
// consecutive pair is attributed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mpisim/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpireport:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		jsonOut  = flag.Bool("json", false, "emit the attribution(s) as JSON instead of text")
		topN     = flag.Int("top", 10, "bound the per-task and per-rank tables (0 = all)")
		profile  = flag.String("profile", "", "write a virtual-time pprof profile of the largest run (gzip profile.proto; view with go tool pprof)")
		profFold = flag.String("profilefolded", "", "write the largest run's virtual-time profile as folded stacks (flamegraph.pl input)")
	)
	flag.Parse()
	paths := flag.Args()
	profiling := *profile != "" || *profFold != ""
	if len(paths) < 2 && !(profiling && len(paths) == 1) {
		return fmt.Errorf("need at least two run artifacts (from mpisim -runjson), got %d", len(paths))
	}

	arts := make([]*trace.Artifact, len(paths))
	for i, p := range paths {
		a, err := trace.ReadArtifact(p)
		if err != nil {
			return err
		}
		if w := trace.PartialWarning(p, a); w != "" {
			fmt.Fprintf(os.Stderr, "mpireport: warning: %s\n", w)
		}
		arts[i] = a
	}
	sort.SliceStable(arts, func(i, j int) bool { return arts[i].Ranks < arts[j].Ranks })

	if profiling {
		// Profile the largest (highest-rank) run: the configuration whose
		// scaling behaviour the comparison interrogates.
		a := arts[len(arts)-1]
		p, err := trace.BuildProfile(a)
		if err != nil {
			return err
		}
		if *profile != "" {
			if err := writeTo(*profile, p.WritePprof); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "mpireport: profile of %s (%d ranks) written to %s\n",
				artifactName(a), a.Ranks, *profile)
		}
		if *profFold != "" {
			if err := writeTo(*profFold, p.WriteFolded); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "mpireport: folded stacks of %s (%d ranks) written to %s\n",
				artifactName(a), a.Ranks, *profFold)
		}
	}

	var ats []*trace.Attribution
	for i := 0; i+1 < len(arts); i++ {
		at, err := trace.Attribute(arts[i], arts[i+1])
		if err != nil {
			return err
		}
		ats = append(ats, at)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if len(ats) == 1 {
			return enc.Encode(ats[0])
		}
		return enc.Encode(ats)
	}
	for i, at := range ats {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(at.Text(*topN))
	}
	// Topology-mode artifacts additionally get their congestion-hotspot
	// sections: the per-link and per-rank detail behind the 'net'
	// attribution component.
	for _, a := range arts {
		if s := trace.Congestion(a.Report, *topN); s != "" {
			fmt.Printf("\n[%s, %d ranks]\n%s", artifactName(a), a.Ranks, s)
		}
	}
	return nil
}

// writeTo creates path and streams write into it, closing on all paths.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// artifactName labels a congestion section with the run's identity.
func artifactName(a *trace.Artifact) string {
	name := a.App
	if name == "" {
		name = "program"
	}
	if a.Machine != "" {
		name += " on " + a.Machine
	}
	return name
}
