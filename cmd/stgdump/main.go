// Command stgdump inspects the compiler's view of a benchmark: the
// program listing, its static task graph, the condensed graph with
// symbolic scaling functions, the program slice, and the emitted
// simplified and timer-instrumented programs.
//
// Usage:
//
//	stgdump -app tomcatv -what condensed
//	stgdump -app sweep3d -what simplified
//	stgdump -app figure1 -what all
//
// The special app "figure1" is the paper's running example (Figure 1a).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpisim/internal/apps"
	"mpisim/internal/check"
	"mpisim/internal/cliutil"
	"mpisim/internal/compiler"
	"mpisim/internal/ir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stgdump:", err)
		os.Exit(1)
	}
}

// figure1 reconstructs the paper's Figure 1(a) example program.
func figure1() *ir.Program {
	myid := ir.S(ir.BuiltinMyID)
	n := ir.S("N")
	b := ir.S("b")
	return &ir.Program{
		Name:   "figure1",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{
			{Name: "A", Dims: []ir.Expr{n, ir.Add(ir.N(1), ir.CeilDiv(n, ir.S(ir.BuiltinP)))}, Elem: 8},
			{Name: "D", Dims: []ir.Expr{n, ir.Add(ir.N(1), ir.CeilDiv(n, ir.S(ir.BuiltinP)))}, Elem: 8},
		},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.SetS("b", ir.CeilDiv(n, ir.S(ir.BuiltinP))),
			&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(n, ir.N(1)), ir.N(1), ir.N(1))})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(n, ir.N(1)), ir.Add(b, ir.N(1)), ir.Add(b, ir.N(1)))})},
			ir.Loop("compute", "j",
				ir.MaxE(ir.N(2), ir.Add(ir.Mul(myid, b), ir.N(1))),
				ir.MinE(n, ir.Add(ir.Mul(myid, b), b)),
				ir.Loop("", "i", ir.N(2), ir.Sub(n, ir.N(1)),
					ir.SetA("A", ir.IX(ir.S("i"), ir.Sub(ir.S("j"), ir.Mul(myid, b))),
						ir.Mul(ir.Add(
							ir.At("D", ir.S("i"), ir.Sub(ir.S("j"), ir.Mul(myid, b))),
							ir.At("D", ir.S("i"), ir.Add(ir.Sub(ir.S("j"), ir.Mul(myid, b)), ir.N(1)))),
							ir.N(0.5))))),
		),
	}
}

func run() error {
	names := append([]string{"figure1"}, apps.Names()...)
	var (
		appName = flag.String("app", "figure1", "program: "+strings.Join(names, ", "))
		file    = flag.String("file", "", "load a program from a pseudocode file instead of -app")
		what    = flag.String("what", "all",
			"what to print: program, stg, condensed, dot, slice, simplified, timer, summary, all")
		checkFlag = flag.Bool("check", false,
			"statically verify the program first; findings go to stderr, errors abort the dump")
		ranks     = flag.Int("ranks", 4, "process count for -check")
		inputsStr = flag.String("inputs", "", "program inputs for -check as key=value,...")
	)
	flag.Parse()

	var prog *ir.Program
	var defaults map[string]float64
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		prog, err = ir.Parse(string(src))
		if err != nil {
			return err
		}
	} else if *appName == "figure1" {
		prog = figure1()
	} else {
		spec, ok := apps.Registry()[*appName]
		if !ok {
			return fmt.Errorf("unknown app %q (have %s)", *appName, strings.Join(names, ", "))
		}
		prog = spec.Build()
		defaults = spec.Default(*ranks)
	}

	if *checkFlag {
		over, err := cliutil.ParseInputs(*inputsStr)
		if err != nil {
			return err
		}
		cres, err := check.Run(prog, check.Options{
			Ranks: *ranks, Inputs: cliutil.MergeInputs(defaults, over),
		})
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, cres.Text(check.Info))
		if cres.HasErrors() {
			return fmt.Errorf("static verification found %d error(s); dump aborted", cres.Errors())
		}
	}

	res, err := compiler.Compile(prog)
	if err != nil {
		return err
	}
	section := func(title, body string) {
		fmt.Printf("==== %s ====\n%s\n", title, body)
	}
	all := *what == "all"
	shown := false
	if all || *what == "program" {
		section("source program", prog.String())
		shown = true
	}
	if all || *what == "stg" {
		section("static task graph", res.FullGraph.String())
		shown = true
	}
	if all || *what == "condensed" {
		section("condensed task graph", res.Graph.String())
		shown = true
	}
	if *what == "dot" {
		fmt.Print(res.Graph.DOT())
		shown = true
	}
	if all || *what == "slice" {
		var sb strings.Builder
		fmt.Fprintf(&sb, "relevant variables: %s\n", strings.Join(res.Slice.RelevantSorted(), ", "))
		fmt.Fprintf(&sb, "eliminated arrays: %v\n", res.Slice.EliminatedArrays(prog))
		fmt.Fprintf(&sb, "retained statements: %d\n", len(res.Slice.Retained))
		section("program slice", sb.String())
		shown = true
	}
	if all || *what == "simplified" {
		section("simplified MPI program (MPI-SIM-AM input)", res.Simplified.String())
		shown = true
	}
	if all || *what == "timer" {
		section("timer-instrumented program (w_i calibration)", res.Timer.String())
		shown = true
	}
	if all || *what == "summary" {
		section("compilation summary", res.Summary())
		shown = true
	}
	if !shown {
		return fmt.Errorf("unknown -what %q", *what)
	}
	return nil
}
