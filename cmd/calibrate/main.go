// Command calibrate runs the timer-instrumented version of a benchmark on
// a reference configuration and writes the measured task-time parameters
// (the w_i of the paper) as a table consumable by `mpisim -tasktimes`.
//
// Usage:
//
//	calibrate -app tomcatv -ranks 16 -inputs N=2048,ITER=10 -o tomcatv.w
//	mpisim -app tomcatv -mode am -ranks 64 -tasktimes tomcatv.w -inputs N=2048,ITER=100
//
// This is the left half of the paper's Figure 2: "MPI code with timers ->
// parallel system -> measured task times".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpisim/internal/apps"
	"mpisim/internal/cliutil"
	"mpisim/internal/core"
	"mpisim/internal/machine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName   = flag.String("app", "tomcatv", "application: "+strings.Join(apps.Names(), ", "))
		ranks     = flag.Int("ranks", 16, "reference configuration rank count")
		inputsStr = flag.String("inputs", "", "program inputs as key=value,...")
		machName  = flag.String("machine", "ibmsp", "target machine: ibmsp, origin2000")
		outFile   = flag.String("o", "", "output file (default stdout)")
		strict    = flag.Bool("strict", false, "exit nonzero when any coefficient is calibrated from fewer than 3 samples")
	)
	flag.Parse()

	spec, ok := apps.Registry()[*appName]
	if !ok {
		return fmt.Errorf("unknown app %q (have %s)", *appName, strings.Join(apps.Names(), ", "))
	}
	m, err := machine.ByName(*machName)
	if err != nil {
		return err
	}
	inputs := spec.Default(*ranks)
	over, err := cliutil.ParseInputs(*inputsStr)
	if err != nil {
		return err
	}
	inputs = cliutil.MergeInputs(inputs, over)

	r, err := core.NewRunner(spec.Build(), m)
	if err != nil {
		return err
	}
	tt, err := r.Calibrate(*ranks, inputs)
	if err != nil {
		return err
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintf(out, "# w_i for %s on %s, calibrated at %d ranks, inputs %v\n",
		*appName, m.Name, *ranks, inputs)
	if err := cliutil.WriteTaskTimes(out, tt); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "calibrated %d task-time parameters\n", len(tt))

	// Per-coefficient fit quality: the spread of the per-sample unit
	// costs each w_i was averaged from. A large relative stddev means the
	// task's cost is not the linear function of its scaling units the
	// model assumes; few samples mean the mean itself is untrustworthy.
	stats := r.LastCalibration.Stats()
	fmt.Fprintln(os.Stderr, "fit residuals (per-sample unit cost):")
	fmt.Fprintf(os.Stderr, "  %-8s %12s %8s %12s %8s\n",
		"task", "w", "samples", "stddev", "rel")
	low := 0
	for _, s := range stats {
		note := ""
		if s.Samples < 3 {
			note = "  <3 samples"
			low++
		}
		fmt.Fprintf(os.Stderr, "  %-8s %12.6g %8d %12.6g %7.2f%%%s\n",
			s.ID, s.W, s.Samples, s.Stddev, 100*s.RelStddev, note)
	}
	if low > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d coefficient(s) calibrated from fewer than 3 samples; "+
			"increase the reference iteration count or problem size\n", low)
		if *strict {
			return fmt.Errorf("%d under-sampled coefficient(s) with -strict", low)
		}
	}
	return nil
}
