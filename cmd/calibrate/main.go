// Command calibrate runs the timer-instrumented version of a benchmark on
// a reference configuration and writes the measured task-time parameters
// (the w_i of the paper) as a table consumable by `mpisim -tasktimes`.
//
// Usage:
//
//	calibrate -app tomcatv -ranks 16 -inputs N=2048,ITER=10 -o tomcatv.w
//	mpisim -app tomcatv -mode am -ranks 64 -tasktimes tomcatv.w -inputs N=2048,ITER=100
//
// This is the left half of the paper's Figure 2: "MPI code with timers ->
// parallel system -> measured task times".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mpisim/internal/apps"
	"mpisim/internal/cliutil"
	"mpisim/internal/core"
	"mpisim/internal/machine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName   = flag.String("app", "tomcatv", "application: "+strings.Join(apps.Names(), ", "))
		ranks     = flag.Int("ranks", 16, "reference configuration rank count")
		inputsStr = flag.String("inputs", "", "program inputs as key=value,...")
		machName  = flag.String("machine", "ibmsp", "target machine: ibmsp, origin2000")
		outFile   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	spec, ok := apps.Registry()[*appName]
	if !ok {
		return fmt.Errorf("unknown app %q (have %s)", *appName, strings.Join(apps.Names(), ", "))
	}
	m, err := machine.ByName(*machName)
	if err != nil {
		return err
	}
	inputs := spec.Default(*ranks)
	over, err := cliutil.ParseInputs(*inputsStr)
	if err != nil {
		return err
	}
	inputs = cliutil.MergeInputs(inputs, over)

	r, err := core.NewRunner(spec.Build(), m)
	if err != nil {
		return err
	}
	tt, err := r.Calibrate(*ranks, inputs)
	if err != nil {
		return err
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	fmt.Fprintf(out, "# w_i for %s on %s, calibrated at %d ranks, inputs %v\n",
		*appName, m.Name, *ranks, inputs)
	if err := cliutil.WriteTaskTimes(out, tt); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "calibrated %d task-time parameters\n", len(tt))
	return nil
}
