// Command mpisimd is the simulation-as-a-service daemon: an HTTP/JSON
// front end over internal/svc. Clients POST a job spec (app or inline
// program, mode, ranks, machine/topology/placement/fault config,
// budgets) to /jobs, poll the job through pending → compiling →
// running → done/aborted/failed, stream its live telemetry from
// /jobs/{id}/obs/*, and fetch the content-addressed run artifact from
// /jobs/{id}/artifact.
//
// Robustness properties (see DESIGN.md "Service architecture"):
//
//   - bounded admission: a full queue answers 429 + Retry-After
//   - per-job budgets and panic isolation: a poisoned job becomes a
//     failed record, the daemon keeps serving
//   - crash-safe journal: every state change is written ahead to
//     <dir>/journal.jsonl; a killed daemon recovers its jobs on restart
//   - graceful drain: SIGTERM/SIGINT stops admissions, cancels running
//     jobs (each persists a partial artifact), then exits cleanly
//   - artifact cache: identical specs are answered from the store
//     without re-running the compiler or simulator
//
// Usage:
//
//	mpisimd -addr 127.0.0.1:6080 -dir /var/lib/mpisim
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpisim/internal/svc"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:6080", "HTTP listen address")
		dir         = flag.String("dir", "mpisimd-data", "data directory (journal, artifacts, calibration tables)")
		concurrency = flag.Int("concurrency", 2, "jobs simulated at once")
		queueCap    = flag.Int("queue", 16, "admission queue capacity (beyond it: 429)")
		hostWorkers = flag.Int("workers", 1, "simulation host workers per job")
		maxRanks    = flag.Int("max-ranks", 65536, "largest target rank count a job may request")
		maxEvents   = flag.Int64("max-events", 0, "cap on per-job event budget (0 = unlimited)")
		maxVirtual  = flag.Float64("max-vt", 0, "cap on per-job virtual-time budget in seconds (0 = unlimited)")
		wallCap     = flag.Duration("wall-cap", 10*time.Minute, "cap on per-job wall-clock budget")
		stall       = flag.Int64("stall-events", 0, "default no-progress watchdog threshold (0 = off)")
		retryAfter  = flag.Duration("retry-after", 2*time.Second, "Retry-After hint on 429/503")
		recoverPol  = flag.String("recover", "rerun", "interrupted-job policy on restart: rerun|abort")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs on shutdown")
		quiet       = flag.Bool("q", false, "suppress per-event log lines")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := svc.NewServer(svc.Options{
		Dir:               *dir,
		Concurrency:       *concurrency,
		QueueCap:          *queueCap,
		HostWorkers:       *hostWorkers,
		MaxRanks:          *maxRanks,
		MaxEventsCap:      *maxEvents,
		MaxVirtualTimeCap: *maxVirtual,
		WallTimeoutCap:    *wallCap,
		StallEvents:       *stall,
		RetryAfter:        *retryAfter,
		Recover:           svc.RecoverPolicy(*recoverPol),
		Logf:              logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpisimd: %v\n", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpisimd: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logf("mpisimd: serving on http://%s (data %s)", ln.Addr(), *dir)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logf("mpisimd: %v: draining (running jobs persist partial artifacts)", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "mpisimd: serve: %v\n", err)
		os.Exit(1)
	}

	// Drain: stop admitting (in-flight polls keep working), cancel
	// running jobs so each journals its abort + partial artifact, then
	// shut the HTTP server down and exit 0.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mpisimd: drain: %v\n", err)
		hs.Close()
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mpisimd: shutdown: %v\n", err)
		os.Exit(1)
	}
	<-errCh // Serve has returned http.ErrServerClosed
	logf("mpisimd: drained; exiting")
}
