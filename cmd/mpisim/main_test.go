package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"mpisim/internal/trace"
)

// TestMain lets the test binary double as the mpisim CLI: when
// re-executed with MPISIM_SIGNAL_CHILD=1 it runs main() with the
// remaining arguments, so the signal tests exercise the real
// signal-handling path of a real process.
func TestMain(m *testing.M) {
	if os.Getenv("MPISIM_SIGNAL_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestInterruptWritesPartialArtifact sends SIGINT to a long mpisim run
// and verifies the graceful-abort contract: exit status 1 (not a
// signal death), and the -runjson artifact written anyway, flagged
// partial with a cancellation abort reason.
func TestInterruptWritesPartialArtifact(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signals required")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	artifact := filepath.Join(t.TempDir(), "run.json")
	// A deliberately long run with a blocking exchange every iteration:
	// each iteration yields to the kernel, so the cancellation guard can
	// trip promptly, and ITERS this size keeps the run busy (~15s) far
	// beyond the interrupt delay below.
	cmd := exec.Command(exe,
		"-app", "sample", "-mode", "measured", "-ranks", "4",
		"-inputs", "PATTERN=2,ITERS=500000,WORK=100,MSG=64",
		"-nocheck", "-runjson", artifact)
	cmd.Env = append(os.Environ(), "MPISIM_SIGNAL_CHILD=1")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("child did not exit after SIGINT; output:\n%s", out.String())
	}

	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("child exited cleanly; SIGINT should abort with status 1 (output:\n%s)", out.String())
	}
	if ws := ee.Sys().(syscall.WaitStatus); ws.Signaled() {
		t.Fatalf("child died of signal %v instead of handling it; output:\n%s", ws.Signal(), out.String())
	} else if ws.ExitStatus() != 1 {
		t.Fatalf("exit status = %d, want 1; output:\n%s", ws.ExitStatus(), out.String())
	}

	a, err := trace.ReadArtifact(artifact)
	if err != nil {
		t.Fatalf("partial artifact missing after SIGINT: %v (output:\n%s)", err, out.String())
	}
	if !a.Partial {
		t.Errorf("artifact.Partial = false, want true")
	}
	if !strings.Contains(a.AbortReason, "canceled") {
		t.Errorf("artifact.AbortReason = %q, want a cancellation reason", a.AbortReason)
	}
	if !strings.Contains(out.String(), "cancelling run") {
		t.Errorf("stderr missing the cancellation notice; output:\n%s", out.String())
	}
}
