// Command mpisim runs one of the paper's benchmark applications under the
// simulator in any evaluation mode and prints the predicted performance.
//
// Usage:
//
//	mpisim -app tomcatv -mode am -ranks 64 -inputs N=2048,ITER=100
//	mpisim -app sweep3d -mode measured -ranks 16
//	mpisim -app nassp -mode de -ranks 9 -inputs NX=64,STEPS=10,Q=3
//	mpisim -app sweep3d -mode am -ranks 64 -tracefile run.json -metrics
//	mpisim -app sweep3d -mode am -ranks 64 -runjson r64.json   # then mpireport
//	mpisim -app sweep3d -mode am -ranks 64 -faults loss.json -watchdog 100000
//	mpisim -app sweep3d -mode am -ranks 256 -progress -obshttp :8080
//	mpisim -app sweep3d -mode am -ranks 64 -profile run.pb.gz   # go tool pprof
//
// Modes: measured (detailed ground truth), de (MPI-SIM-DE, direct
// execution), am (MPI-SIM-AM, compiler-simplified program with delay
// calls). AM calibrates w_i automatically at -cal-ranks unless a table is
// supplied with -tasktimes.
//
// Robustness: -faults runs under a deterministic fault-injection
// scenario (message loss/duplication/delay, link and compute slowdowns,
// rank crashes; internal/fault). -watchdog, -budget, -timebudget and
// -walltimeout bound the run; a tripped bound aborts with a per-rank
// wait-state dump on stderr while still reporting (and, with -runjson,
// archiving) the partial result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpisim/internal/apps"
	"mpisim/internal/check"
	"mpisim/internal/cliutil"
	"mpisim/internal/core"
	"mpisim/internal/dtg"
	"mpisim/internal/fault"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
	"mpisim/internal/trace"
)

func main() {
	if err := run(); err != nil {
		// When the pre-simulation verifier refused the configuration,
		// surface its findings one per line before the summary.
		var ce *core.CheckError
		if errors.As(err, &ce) {
			fmt.Fprint(os.Stderr, ce.Result.Text(check.Error))
		}
		fmt.Fprintln(os.Stderr, "mpisim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName   = flag.String("app", "tomcatv", "application: "+strings.Join(apps.Names(), ", "))
		file      = flag.String("file", "", "load a program from a pseudocode file instead of -app (see stgdump output for the format)")
		modeName  = flag.String("mode", "am", "evaluation mode: measured, de, am")
		ranks     = flag.Int("ranks", 4, "number of target processors")
		inputsStr = flag.String("inputs", "", "program inputs as key=value,... (defaults per app)")
		machName  = flag.String("machine", "ibmsp", "target machine: "+strings.Join(machine.Names(), ", "))
		listMach  = flag.Bool("listmachines", false, "list the machine model presets and exit")
		topology  = flag.String("topology", "", "interconnect topology: flat, bus[:hosts=N], torus:dims=4x4, fattree:k=4, graph:PATH (empty = machine default)")
		placement = flag.String("placement", "", "rank placement onto hosts: block, roundrobin, random:SEED (empty = machine default)")
		netJSON   = flag.String("netjson", "", "arbitrary-graph topology config file (shorthand for -topology graph:PATH)")
		hosts     = flag.Int("hosts", 1, "host processors for the simulation engine")
		calRanks  = flag.Int("cal-ranks", 0, "calibration rank count for AM (default: min(ranks,16))")
		ttFile    = flag.String("tasktimes", "", "read w_i table from file instead of calibrating")
		memLimit  = flag.Int64("memlimit", 0, "simulated memory limit in bytes for measured/DE runs")
		verbose   = flag.Bool("v", false, "print per-rank statistics")
		matrix    = flag.Bool("matrix", false, "print the rank-to-rank communication matrix")
		timeline  = flag.Bool("timeline", false, "print a per-rank activity timeline of the predicted run")
		dtgFlag   = flag.Bool("dtg", false, "print dynamic-task-graph statistics (critical path, parallelism)")
		checkFlag = flag.Bool("check", false, "print every static-verification finding (not just errors) to stderr before running")
		noCheck   = flag.Bool("nocheck", false, "skip the pre-simulation static verification entirely")
		metrics   = flag.Bool("metrics", false, "print simulator self-metrics to stderr after the run")
		traceFile = flag.String("tracefile", "", "write a structured trace of the run to this file (implies trace collection)")
		traceFmt  = flag.String("traceformat", "chrome", "trace file format: chrome (trace_event JSON for Perfetto) or jsonl")
		runJSON   = flag.String("runjson", "", "write the run artifact as JSON (input for mpireport)")
		progress  = flag.Bool("progress", false, "print a progress/ETA line to stderr every 2s while the run executes")
		obsHTTP   = flag.String("obshttp", "", "serve live telemetry over HTTP on this address (endpoints: / /text /series /run /events /healthz)")
		profile   = flag.String("profile", "", "write a virtual-time pprof profile of the predicted run (gzip profile.proto; view with go tool pprof)")
		profFold  = flag.String("profilefolded", "", "write the virtual-time profile as folded stacks (flamegraph.pl input)")

		faultsFile  = flag.String("faults", "", "run under a deterministic fault-injection scenario (JSON, see internal/fault)")
		faultSeed   = flag.Uint64("seed", 0, "override the fault scenario's RNG seed (0 = keep the file's)")
		watchdog    = flag.Int64("watchdog", 0, "abort after N events without virtual-time progress, with a per-rank wait-state dump (0 = off)")
		budget      = flag.Int64("budget", 0, "abort after N simulation events, keeping the partial result (0 = unlimited)")
		timeBudget  = flag.Float64("timebudget", 0, "abort past this virtual time in seconds (0 = unlimited)")
		wallTimeout = flag.Duration("walltimeout", 0, "abort after this much host wall-clock time, e.g. 30s (0 = unlimited)")
	)
	flag.Parse()

	if *listMach {
		for _, m := range machine.Presets() {
			topo := m.Topology
			if topo == "" {
				topo = "flat"
			}
			fmt.Printf("%-12s %3d MB/s, %6.3g s latency, topology %s\n",
				m.Name, int(m.Net.Bandwidth/1e6), m.Net.Latency, topo)
		}
		return nil
	}

	var prog *ir.Program
	var defaults func(int) map[string]float64
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		prog, err = ir.Parse(string(src))
		if err != nil {
			return err
		}
		*appName = prog.Name
		defaults = func(int) map[string]float64 { return map[string]float64{} }
	} else {
		spec, ok := apps.Registry()[*appName]
		if !ok {
			return fmt.Errorf("unknown app %q (have %s)", *appName, strings.Join(apps.Names(), ", "))
		}
		prog = spec.Build()
		defaults = spec.Default
	}
	m, err := machine.ByName(*machName)
	if err != nil {
		return err
	}
	if *netJSON != "" {
		if *topology != "" {
			return fmt.Errorf("-netjson and -topology are mutually exclusive")
		}
		*topology = "graph:" + *netJSON
	}
	if *topology != "" {
		m.Topology = *topology
	}
	if *placement != "" {
		m.Placement = *placement
	}
	inputs := defaults(*ranks)
	over, err := cliutil.ParseInputs(*inputsStr)
	if err != nil {
		return err
	}
	inputs = cliutil.MergeInputs(inputs, over)

	var mode core.Mode
	switch *modeName {
	case "measured":
		mode = core.Measured
	case "de":
		mode = core.DirectExec
	case "am":
		mode = core.Abstract
	default:
		return fmt.Errorf("unknown mode %q (want measured, de, am)", *modeName)
	}

	// The run-lifecycle tracker covers compilation too, so create it
	// before NewRunner (which compiles the program).
	var ri *obs.RunInfo
	if *progress || *obsHTTP != "" {
		ri = obs.NewRunInfo()
		ri.SetState(obs.RunCompiling)
	}
	r, err := core.NewRunner(prog, m)
	if err != nil {
		return err
	}
	r.RunInfo = ri
	r.HostWorkers = *hosts
	r.RealParallel = *hosts > 1
	r.MemoryLimit = *memLimit
	r.CollectMatrix = *matrix
	r.CollectTrace = *timeline || *dtgFlag || *traceFile != ""
	r.SkipChecks = *noCheck
	if *faultsFile != "" {
		sc, err := fault.Load(*faultsFile)
		if err != nil {
			return err
		}
		if *faultSeed != 0 {
			sc.Seed = *faultSeed
		}
		r.Faults = sc
	}
	r.MaxEvents = *budget
	r.MaxVirtualTime = *timeBudget
	r.StallEvents = *watchdog
	r.WallTimeout = *wallTimeout
	var reg *obs.Registry
	if *metrics || *obsHTTP != "" {
		reg = obs.NewRegistry(*hosts)
		reg.SetEnabled(true)
		r.Metrics = reg
	}
	if *obsHTTP != "" {
		tl := obs.NewTimeline(reg, obs.TimelineOptions{})
		tl.SetEnabled(true)
		r.Timeline = tl
		ln, err := net.Listen("tcp", *obsHTTP)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mpisim: serving telemetry at http://%s/ (/series /run /events /healthz)\n", ln.Addr())
		go http.Serve(ln, obs.HandlerWith(reg, obs.HandlerOpts{Timeline: tl, Run: ri}))
	}
	var tracer *obs.Tracer
	var traceDone func() error
	if *traceFile != "" {
		tracer, traceDone, err = cliutil.OpenTraceFile(*traceFile, *traceFmt)
		if err != nil {
			return err
		}
		r.Tracer = tracer
	}
	if *checkFlag && !*noCheck {
		res, err := r.Check(*ranks, inputs)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, res.Text(check.Info))
	}

	if mode == core.Abstract {
		if *ttFile != "" {
			f, err := os.Open(*ttFile)
			if err != nil {
				return err
			}
			tt, err := cliutil.ReadTaskTimes(f)
			f.Close()
			if err != nil {
				return err
			}
			r.TaskTimes = tt
		} else {
			cr := *calRanks
			if cr <= 0 {
				cr = *ranks
				if cr > 16 {
					cr = 16
				}
			}
			calInputs := cliutil.MergeInputs(defaults(cr), over)
			fmt.Printf("calibrating w_i on %d ranks...\n", cr)
			tt, err := r.Calibrate(cr, calInputs)
			if err != nil {
				return err
			}
			cliutil.WriteTaskTimes(os.Stdout, tt)
		}
	}

	// Interruption is an abort, not a kill: SIGINT/SIGTERM cancels the
	// run context, the kernel trips its cancellation guard, and the
	// normal abort path below still prints the partial prediction and
	// (with -runjson) archives the partial artifact with its abort
	// reason and progress. A second signal force-quits immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "mpisim: %v: cancelling run, partial results follow (repeat to force-quit)\n", sig)
		cancelRun()
		// Keep receiving so a second signal — even one delivered while
		// the first was being handled — force-quits unconditionally
		// instead of relying on restoring the default disposition.
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "mpisim: %v: force quit\n", sig)
		code := 1
		if s, ok := sig.(syscall.Signal); ok {
			code = 128 + int(s)
		}
		os.Exit(code)
	}()
	r.Ctx = runCtx

	if ri != nil && r.TaskTimes != nil {
		// Best-effort static horizon: a fast abstract pre-run fixes the
		// virtual-time end the percent/ETA extrapolate toward.
		_, _ = r.EstimateHorizon(*ranks, inputs)
	}
	var stopProgress func()
	if *progress {
		stopProgress = cliutil.StartProgress(os.Stderr, ri, 2*time.Second)
	}

	rep, err := r.Run(mode, *ranks, inputs)
	if stopProgress != nil {
		stopProgress()
	}
	var abortErr error
	if err != nil {
		// Graceful degradation: an aborted run (budget, watchdog,
		// cancellation, crash starvation) still carries a partial report.
		// Dump the per-rank wait states, keep reporting what the
		// simulation established, and exit nonzero at the end.
		var ae *sim.AbortError
		if !errors.As(err, &ae) || rep == nil {
			return err
		}
		fmt.Fprint(os.Stderr, ae.Dump())
		abortErr = fmt.Errorf("run aborted: %s (wait-state dump on stderr, partial results above)", shorten(ae.Reason))
	}

	fmt.Printf("app=%s mode=%s machine=%s targets=%d inputs=%v\n",
		*appName, mode, m.Name, *ranks, inputs)
	if rep.Partial {
		fmt.Printf("PARTIAL result (aborted: %s)\n", shorten(rep.AbortReason))
	}
	fmt.Printf("predicted execution time: %s\n", cliutil.FormatSeconds(rep.Time))
	if f := rep.Faults; f != nil {
		fmt.Printf("faults: %d dropped (%d lost), %d retransmissions, %d duplicates, %d delayed, %d crashes, retry wait %s\n",
			f.Drops, f.Lost, f.Retransmissions, f.Duplicates, f.Delays, f.Crashes,
			cliutil.FormatSeconds(f.RetryWaitSeconds))
	}
	if st := rep.Net; st != nil {
		fmt.Printf("network: %s placement=%s, routed %d msgs (%s), node-local %d msgs, contention wait %s\n",
			st.Topology, st.Placement, st.InterMsgs, cliutil.FormatBytes(st.InterBytes),
			st.IntraMsgs, cliutil.FormatSeconds(st.Wait))
		if *verbose {
			fmt.Print(trace.Congestion(rep, 5))
		}
	}
	fmt.Printf("target memory: total %s, max rank %s\n",
		cliutil.FormatBytes(rep.TotalPeakBytes), cliutil.FormatBytes(rep.MaxRankPeakBytes))
	fmt.Printf("kernel: %d events, %d messages delivered, %d windows\n",
		rep.Kernel.Events, rep.Kernel.Delivered, rep.Kernel.Windows)
	if *verbose {
		for i, rs := range rep.Ranks {
			fmt.Printf("  rank %4d: compute %-12s delay %-12s blocked %-12s sent %d msgs / %s",
				i, cliutil.FormatSeconds(float64(rs.ComputeTime)),
				cliutil.FormatSeconds(float64(rs.DelayTime)),
				cliutil.FormatSeconds(float64(rs.BlockedTime)),
				rs.MsgsSent, cliutil.FormatBytes(rs.BytesSent))
			if rs.FaultTime > 0 {
				fmt.Printf(" fault %s", cliutil.FormatSeconds(float64(rs.FaultTime)))
			}
			if rs.Crashed {
				fmt.Print(" CRASHED")
			}
			fmt.Println()
		}
	}
	if *timeline {
		tl, err := trace.Timeline(rep, 100)
		if err != nil {
			return err
		}
		fmt.Print(tl)
		u, err := trace.Utilize(rep)
		if err != nil {
			return err
		}
		fmt.Println("utilization:")
		fmt.Print(u.Summary())
	}
	if *dtgFlag {
		g, err := dtg.Build(rep)
		if err != nil {
			return err
		}
		fmt.Println(g.Summarize())
	}
	if tracer != nil {
		// The simulator-plane events streamed during the run; append the
		// simulated plane (rank spans, message flows, collective phases).
		if err := trace.Export(tracer, rep); err != nil {
			return err
		}
		if err := traceDone(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%s)\n", *traceFile, *traceFmt)
	}
	if *runJSON != "" || *profile != "" || *profFold != "" {
		art := &trace.Artifact{
			App: *appName, Mode: mode.String(), Machine: m.Name,
			Inputs: inputs, Report: rep,
		}
		if tls := r.Compiled.TaskLines(); len(tls) > 0 {
			art.TaskLines = make(map[string]int, len(tls))
			art.TaskHeads = make(map[string]string, len(tls))
			for _, tl := range tls {
				art.TaskLines[tl.Task] = tl.Line
				art.TaskHeads[tl.Task] = tl.Head
			}
		}
		if rep.Partial {
			// How much of the run the truncated prediction covers: the
			// live tracker's last snapshot when available, else the
			// consumed fraction of whichever budget is set.
			switch {
			case ri != nil && ri.Status().Percent > 0:
				art.Progress = ri.Status().Percent
			case *timeBudget > 0:
				art.Progress = clamp01(rep.Time / *timeBudget)
			case *budget > 0:
				art.Progress = clamp01(float64(rep.Kernel.Events) / float64(*budget))
			}
		}
		if *runJSON != "" {
			if err := trace.WriteArtifact(*runJSON, art); err != nil {
				return err
			}
			fmt.Printf("run artifact written to %s\n", *runJSON)
		}
		if *profile != "" {
			if err := trace.WriteProfileFile(*profile, art); err != nil {
				return err
			}
			fmt.Printf("profile written to %s (view: go tool pprof -top %s)\n", *profile, *profile)
		}
		if *profFold != "" {
			p, err := trace.BuildProfile(art)
			if err != nil {
				return err
			}
			f, err := os.Create(*profFold)
			if err != nil {
				return err
			}
			if err := p.WriteFolded(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("folded stacks written to %s\n", *profFold)
		}
	}
	if reg != nil {
		fmt.Fprintln(os.Stderr, "simulator self-metrics:")
		if err := reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if *matrix && rep.MsgMatrix != nil {
		fmt.Println("communication matrix (messages sent, row = source):")
		for s, row := range rep.MsgMatrix {
			fmt.Printf("  %4d:", s)
			for _, c := range row {
				fmt.Printf(" %6d", c)
			}
			fmt.Println()
		}
	}
	return abortErr
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// shorten truncates a long abort reason (the deadlock form enumerates
// every blocked process) for one-line console output; the full text is
// in the wait-state dump and the run artifact.
func shorten(s string) string {
	if i := strings.IndexByte(s, ':'); i > 0 {
		s = s[:i]
	}
	if len(s) > 100 {
		s = s[:100] + "..."
	}
	return s
}
