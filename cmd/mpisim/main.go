// Command mpisim runs one of the paper's benchmark applications under the
// simulator in any evaluation mode and prints the predicted performance.
//
// Usage:
//
//	mpisim -app tomcatv -mode am -ranks 64 -inputs N=2048,ITER=100
//	mpisim -app sweep3d -mode measured -ranks 16
//	mpisim -app nassp -mode de -ranks 9 -inputs NX=64,STEPS=10,Q=3
//	mpisim -app sweep3d -mode am -ranks 64 -tracefile run.json -metrics
//	mpisim -app sweep3d -mode am -ranks 64 -runjson r64.json   # then mpireport
//	mpisim -app sweep3d -mode am -ranks 64 -faults loss.json -watchdog 100000
//	mpisim -app sweep3d -mode am -ranks 256 -progress -obshttp :8080
//	mpisim -app sweep3d -mode am -ranks 64 -profile run.pb.gz   # go tool pprof
//	mpisim -app sample -mode de -ranks 16 -record run.trace     # record a trace
//	mpisim -tracein run.trace -topology torus:dims=4x4          # replay it
//	mpisim -tracein run.trace -xranks 64 -runjson x64.json      # extrapolate
//
// Modes: measured (detailed ground truth), de (MPI-SIM-DE, direct
// execution), am (MPI-SIM-AM, compiler-simplified program with delay
// calls). AM calibrates w_i automatically at -cal-ranks unless a table is
// supplied with -tasktimes.
//
// Traces: -record writes the run's API-level call log as a versioned
// JSONL trace (internal/tracein). -tracein replays such a trace — no
// program or compiler involved — against any machine, topology,
// placement, fault scenario and engine configuration; -xranks first
// extrapolates the trace to a larger rank count (weak scaling) using
// the recorded symbolic task-scaling functions.
//
// Robustness: -faults runs under a deterministic fault-injection
// scenario (message loss/duplication/delay, link and compute slowdowns,
// rank crashes; internal/fault). -watchdog, -budget, -timebudget and
// -walltimeout bound the run; a tripped bound aborts with a per-rank
// wait-state dump on stderr while still reporting (and, with -runjson,
// archiving) the partial result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpisim/internal/apps"
	"mpisim/internal/check"
	"mpisim/internal/cliutil"
	"mpisim/internal/compiler"
	"mpisim/internal/core"
	"mpisim/internal/dtg"
	"mpisim/internal/fault"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
	"mpisim/internal/trace"
	"mpisim/internal/tracein"
)

func main() {
	if err := run(); err != nil {
		// When the pre-simulation verifier refused the configuration,
		// surface its findings one per line before the summary.
		var ce *core.CheckError
		if errors.As(err, &ce) {
			fmt.Fprint(os.Stderr, ce.Result.Text(check.Error))
		}
		fmt.Fprintln(os.Stderr, "mpisim:", err)
		os.Exit(1)
	}
}

// output carries the post-run reporting configuration shared by the
// compiled path and the trace-replay path.
type output struct {
	appName, modeStr, machName string
	ranks                      int
	inputs                     map[string]float64
	verbose, matrix            bool
	timeline, dtg              bool
	tracer                     *obs.Tracer
	traceDone                  func() error
	traceFile, traceFmt        string
	runJSON, profile, profFold string
	recordFile                 string
	recordHdr                  tracein.Header
	taskLines                  []compiler.TaskLine
	reg                        *obs.Registry
	ri                         *obs.RunInfo
	budget                     int64
	timeBudget                 float64
}

func run() error {
	var (
		appName   = flag.String("app", "tomcatv", "application: "+strings.Join(apps.Names(), ", "))
		file      = flag.String("file", "", "load a program from a pseudocode file instead of -app (see stgdump output for the format)")
		modeName  = flag.String("mode", "am", "evaluation mode: measured, de, am")
		ranks     = flag.Int("ranks", 4, "number of target processors")
		inputsStr = flag.String("inputs", "", "program inputs as key=value,... (defaults per app)")
		machName  = flag.String("machine", "ibmsp", "target machine: "+strings.Join(machine.Names(), ", "))
		listMach  = flag.Bool("listmachines", false, "list the machine model presets and exit")
		topology  = flag.String("topology", "", "interconnect topology: flat, bus[:hosts=N], torus:dims=4x4, fattree:k=4, graph:PATH (empty = machine default)")
		placement = flag.String("placement", "", "rank placement onto hosts: block, roundrobin, random:SEED (empty = machine default)")
		netJSON   = flag.String("netjson", "", "arbitrary-graph topology config file (shorthand for -topology graph:PATH)")
		hosts     = flag.Int("hosts", 1, "host processors for the simulation engine")
		calRanks  = flag.Int("cal-ranks", 0, "calibration rank count for AM (default: min(ranks,16))")
		ttFile    = flag.String("tasktimes", "", "read w_i table from file instead of calibrating")
		memLimit  = flag.Int64("memlimit", 0, "simulated memory limit in bytes for measured/DE runs")
		verbose   = flag.Bool("v", false, "print per-rank statistics")
		matrix    = flag.Bool("matrix", false, "print the rank-to-rank communication matrix")
		timeline  = flag.Bool("timeline", false, "print a per-rank activity timeline of the predicted run")
		dtgFlag   = flag.Bool("dtg", false, "print dynamic-task-graph statistics (critical path, parallelism)")
		checkFlag = flag.Bool("check", false, "print every static-verification finding (not just errors) to stderr before running")
		noCheck   = flag.Bool("nocheck", false, "skip the pre-simulation static verification entirely")
		metrics   = flag.Bool("metrics", false, "print simulator self-metrics to stderr after the run")
		traceFile = flag.String("tracefile", "", "write a structured trace of the run to this file (implies trace collection)")
		traceFmt  = flag.String("traceformat", "chrome", "trace file format: chrome (trace_event JSON for Perfetto) or jsonl")
		runJSON   = flag.String("runjson", "", "write the run artifact as JSON (input for mpireport)")
		progress  = flag.Bool("progress", false, "print a progress/ETA line to stderr every 2s while the run executes")
		obsHTTP   = flag.String("obshttp", "", "serve live telemetry over HTTP on this address (endpoints: / /text /series /run /events /healthz)")
		profile   = flag.String("profile", "", "write a virtual-time pprof profile of the predicted run (gzip profile.proto; view with go tool pprof)")
		profFold  = flag.String("profilefolded", "", "write the virtual-time profile as folded stacks (flamegraph.pl input)")

		recordFile = flag.String("record", "", "record the run's MPI call log as a JSONL trace to this file (internal/tracein)")
		traceIn    = flag.String("tracein", "", "replay a recorded JSONL trace instead of simulating a program (ignores -app/-file/-mode)")
		xranks     = flag.Int("xranks", 0, "with -tracein: extrapolate the trace to this rank count (a multiple of the trace's) before replaying")

		faultsFile  = flag.String("faults", "", "run under a deterministic fault-injection scenario (JSON, see internal/fault)")
		faultSeed   = flag.Uint64("seed", 0, "override the fault scenario's RNG seed (0 = keep the file's)")
		watchdog    = flag.Int64("watchdog", 0, "abort after N events without virtual-time progress, with a per-rank wait-state dump (0 = off)")
		budget      = flag.Int64("budget", 0, "abort after N simulation events, keeping the partial result (0 = unlimited)")
		timeBudget  = flag.Float64("timebudget", 0, "abort past this virtual time in seconds (0 = unlimited)")
		wallTimeout = flag.Duration("walltimeout", 0, "abort after this much host wall-clock time, e.g. 30s (0 = unlimited)")
	)
	flag.Parse()

	if *listMach {
		for _, m := range machine.Presets() {
			topo := m.Topology
			if topo == "" {
				topo = "flat"
			}
			fmt.Printf("%-12s %3d MB/s, %6.3g s latency, topology %s\n",
				m.Name, int(m.Net.Bandwidth/1e6), m.Net.Latency, topo)
		}
		return nil
	}
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if *xranks != 0 && *traceIn == "" {
		return fmt.Errorf("-xranks requires -tracein")
	}

	over, err := cliutil.ParseInputs(*inputsStr)
	if err != nil {
		return err
	}

	var faults *fault.Scenario
	if *faultsFile != "" {
		sc, err := fault.Load(*faultsFile)
		if err != nil {
			return err
		}
		if *faultSeed != 0 {
			sc.Seed = *faultSeed
		}
		faults = sc
	}

	// Observability plumbing, shared by both paths.
	var ri *obs.RunInfo
	if *progress || *obsHTTP != "" {
		ri = obs.NewRunInfo()
	}
	var reg *obs.Registry
	if *metrics || *obsHTTP != "" {
		reg = obs.NewRegistry(*hosts)
		reg.SetEnabled(true)
	}
	var liveTL *obs.Timeline
	if *obsHTTP != "" {
		liveTL = obs.NewTimeline(reg, obs.TimelineOptions{})
		liveTL.SetEnabled(true)
		ln, err := net.Listen("tcp", *obsHTTP)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mpisim: serving telemetry at http://%s/ (/series /run /events /healthz)\n", ln.Addr())
		go http.Serve(ln, obs.HandlerWith(reg, obs.HandlerOpts{Timeline: liveTL, Run: ri}))
	}
	var tracer *obs.Tracer
	var traceDone func() error
	if *traceFile != "" {
		tracer, traceDone, err = cliutil.OpenTraceFile(*traceFile, *traceFmt)
		if err != nil {
			return err
		}
	}

	// Interruption is an abort, not a kill: SIGINT/SIGTERM cancels the
	// run context, the kernel trips its cancellation guard, and the
	// normal abort path still prints the partial prediction and (with
	// -runjson) archives the partial artifact with its abort reason and
	// progress. A second signal force-quits immediately.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	go func() {
		sig := <-sigCh
		fmt.Fprintf(os.Stderr, "mpisim: %v: cancelling run, partial results follow (repeat to force-quit)\n", sig)
		cancelRun()
		// Keep receiving so a second signal — even one delivered while
		// the first was being handled — force-quits unconditionally
		// instead of relying on restoring the default disposition.
		sig = <-sigCh
		fmt.Fprintf(os.Stderr, "mpisim: %v: force quit\n", sig)
		code := 1
		if s, ok := sig.(syscall.Signal); ok {
			code = 128 + int(s)
		}
		os.Exit(code)
	}()

	o := &output{
		verbose: *verbose, matrix: *matrix, timeline: *timeline, dtg: *dtgFlag,
		tracer: tracer, traceDone: traceDone, traceFile: *traceFile, traceFmt: *traceFmt,
		runJSON: *runJSON, profile: *profile, profFold: *profFold,
		recordFile: *recordFile,
		reg:        reg, ri: ri,
		budget: *budget, timeBudget: *timeBudget,
	}

	// ---- Trace-replay path: no program, no compiler. ----
	if *traceIn != "" {
		tr, err := tracein.ParseFile(*traceIn)
		if err != nil {
			return err
		}
		if *xranks != 0 && *xranks != tr.Header.Ranks {
			tr, err = tracein.Extrapolate(tr, tracein.ExtrapolateOptions{
				Ranks:  *xranks,
				Inputs: over,
				Warn: func(format string, args ...interface{}) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				},
			})
			if err != nil {
				return err
			}
			fmt.Printf("extrapolated %s from %d to %d ranks\n",
				*traceIn, tr.Header.ExtrapolatedFrom, tr.Header.Ranks)
		}
		// Machine precedence: explicit -machine wins, else the header's.
		if !setFlags["machine"] && tr.Header.Machine != "" {
			*machName = tr.Header.Machine
		}
		m, err := machine.ByName(*machName)
		if err != nil {
			return err
		}
		if err := applyTopology(m, netJSON, topology, placement); err != nil {
			return err
		}

		ctx := runCtx
		if *wallTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *wallTimeout)
			defer cancel()
		}
		cfg := mpi.Config{
			Machine:       m,
			HostWorkers:   *hosts,
			RealParallel:  *hosts > 1,
			CollectMatrix: *matrix,
			CollectTrace:  *timeline || *dtgFlag || *traceFile != "",
			RecordCalls:   *recordFile != "",
			Metrics:       reg,
			Tracer:        tracer,
			Timeline:      liveTL,
			RunInfo:       ri,
			Faults:        faults,
			Limits: sim.Limits{
				MaxEvents:   *budget,
				MaxTime:     sim.Time(*timeBudget),
				StallEvents: *watchdog,
				Ctx:         ctx,
			},
		}
		var stopProgress func()
		if *progress {
			stopProgress = cliutil.StartProgress(os.Stderr, ri, 2*time.Second)
		}
		// mpi.Run does not drive the RunInfo lifecycle (core.Runner does
		// on the compiled path), so replay mirrors it here.
		if ri != nil {
			ri.SetHorizon(*timeBudget, *budget)
			ri.SetState(obs.RunRunning)
		}
		rep, err := tracein.Replay(tr, cfg)
		if ri != nil {
			vt := 0.0
			if rep != nil {
				vt = rep.Time
			}
			if err != nil {
				reason := err.Error()
				if ab, ok := err.(*sim.AbortError); ok {
					reason = ab.Reason
				}
				ri.Finish(obs.RunAborted, vt, reason)
			} else {
				ri.Finish(obs.RunDone, vt, "")
			}
		}
		if stopProgress != nil {
			stopProgress()
		}
		abortErr, err := classifyAbort(rep, err)
		if err != nil {
			return err
		}

		o.appName = tr.Header.App
		if o.appName == "" {
			o.appName = *traceIn
		}
		o.modeStr = "replay"
		o.machName = m.Name
		o.ranks = tr.Header.Ranks
		o.inputs = tr.Header.Inputs
		o.recordHdr = tr.Header
		fmt.Printf("trace: %s, %d ranks, %d events (recorded mode=%s comm=%s)\n",
			*traceIn, tr.Header.Ranks, tr.Events(), tr.Header.Mode, tr.Header.Comm)
		return o.emit(rep, abortErr)
	}

	// ---- Compiled path. ----
	var prog *ir.Program
	var defaults func(int) map[string]float64
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		prog, err = ir.Parse(string(src))
		if err != nil {
			return err
		}
		*appName = prog.Name
		defaults = func(int) map[string]float64 { return map[string]float64{} }
	} else {
		spec, ok := apps.Registry()[*appName]
		if !ok {
			return fmt.Errorf("unknown app %q (have %s)", *appName, strings.Join(apps.Names(), ", "))
		}
		prog = spec.Build()
		defaults = spec.Default
	}
	m, err := machine.ByName(*machName)
	if err != nil {
		return err
	}
	if err := applyTopology(m, netJSON, topology, placement); err != nil {
		return err
	}
	inputs := cliutil.MergeInputs(defaults(*ranks), over)

	var mode core.Mode
	switch *modeName {
	case "measured":
		mode = core.Measured
	case "de":
		mode = core.DirectExec
	case "am":
		mode = core.Abstract
	default:
		return fmt.Errorf("unknown mode %q (want measured, de, am)", *modeName)
	}

	// The run-lifecycle tracker covers compilation too.
	if ri != nil {
		ri.SetState(obs.RunCompiling)
	}
	r, err := core.NewRunner(prog, m)
	if err != nil {
		return err
	}
	r.RunInfo = ri
	r.HostWorkers = *hosts
	r.RealParallel = *hosts > 1
	r.MemoryLimit = *memLimit
	r.CollectMatrix = *matrix
	r.CollectTrace = *timeline || *dtgFlag || *traceFile != ""
	r.RecordCalls = *recordFile != ""
	r.SkipChecks = *noCheck
	r.Faults = faults
	r.MaxEvents = *budget
	r.MaxVirtualTime = *timeBudget
	r.StallEvents = *watchdog
	r.WallTimeout = *wallTimeout
	r.Metrics = reg
	r.Timeline = liveTL
	r.Tracer = tracer
	if *checkFlag && !*noCheck {
		res, err := r.Check(*ranks, inputs)
		if err != nil {
			return err
		}
		fmt.Fprint(os.Stderr, res.Text(check.Info))
	}

	if mode == core.Abstract {
		if *ttFile != "" {
			f, err := os.Open(*ttFile)
			if err != nil {
				return err
			}
			tt, err := cliutil.ReadTaskTimes(f)
			f.Close()
			if err != nil {
				return err
			}
			r.TaskTimes = tt
		} else {
			cr := *calRanks
			if cr <= 0 {
				cr = *ranks
				if cr > 16 {
					cr = 16
				}
			}
			calInputs := cliutil.MergeInputs(defaults(cr), over)
			fmt.Printf("calibrating w_i on %d ranks...\n", cr)
			tt, err := r.Calibrate(cr, calInputs)
			if err != nil {
				return err
			}
			cliutil.WriteTaskTimes(os.Stdout, tt)
		}
	}
	r.Ctx = runCtx

	if ri != nil && r.TaskTimes != nil {
		// Best-effort static horizon: a fast abstract pre-run fixes the
		// virtual-time end the percent/ETA extrapolate toward.
		_, _ = r.EstimateHorizon(*ranks, inputs)
	}
	var stopProgress func()
	if *progress {
		stopProgress = cliutil.StartProgress(os.Stderr, ri, 2*time.Second)
	}

	rep, err := r.Run(mode, *ranks, inputs)
	if stopProgress != nil {
		stopProgress()
	}
	abortErr, err := classifyAbort(rep, err)
	if err != nil {
		return err
	}

	o.appName = *appName
	o.modeStr = mode.String()
	o.machName = m.Name
	o.ranks = *ranks
	o.inputs = inputs
	o.taskLines = r.Compiled.TaskLines()
	o.recordHdr = tracein.Header{
		App:       *appName,
		Mode:      mode.String(),
		Machine:   m.Name,
		Comm:      mode.Comm(),
		Inputs:    inputs,
		TaskScale: r.Compiled.TaskScales(),
	}
	return o.emit(rep, abortErr)
}

// applyTopology resolves the -netjson/-topology/-placement overrides
// onto the machine model.
func applyTopology(m *machine.Model, netJSON, topology, placement *string) error {
	if *netJSON != "" {
		if *topology != "" {
			return fmt.Errorf("-netjson and -topology are mutually exclusive")
		}
		*topology = "graph:" + *netJSON
	}
	if *topology != "" {
		m.Topology = *topology
	}
	if *placement != "" {
		m.Placement = *placement
	}
	return nil
}

// classifyAbort separates hard failures from graceful aborts: an
// aborted run (budget, watchdog, cancellation, crash starvation) still
// carries a partial report. The per-rank wait states are dumped to
// stderr and reporting continues; the abort surfaces as the final exit
// status.
func classifyAbort(rep *mpi.Report, err error) (abortErr, hard error) {
	if err == nil {
		return nil, nil
	}
	var ae *sim.AbortError
	if !errors.As(err, &ae) || rep == nil {
		return nil, err
	}
	fmt.Fprint(os.Stderr, ae.Dump())
	return fmt.Errorf("run aborted: %s (wait-state dump on stderr, partial results above)", shorten(ae.Reason)), nil
}

// emit prints the prediction summary and writes every requested
// artifact: timeline, DTG stats, structured trace, recorded call trace,
// run artifact, profiles, metrics.
func (o *output) emit(rep *mpi.Report, abortErr error) error {
	fmt.Printf("app=%s mode=%s machine=%s targets=%d inputs=%v\n",
		o.appName, o.modeStr, o.machName, o.ranks, o.inputs)
	if rep.Partial {
		fmt.Printf("PARTIAL result (aborted: %s)\n", shorten(rep.AbortReason))
	}
	fmt.Printf("predicted execution time: %s\n", cliutil.FormatSeconds(rep.Time))
	if f := rep.Faults; f != nil {
		fmt.Printf("faults: %d dropped (%d lost), %d retransmissions, %d duplicates, %d delayed, %d crashes, retry wait %s\n",
			f.Drops, f.Lost, f.Retransmissions, f.Duplicates, f.Delays, f.Crashes,
			cliutil.FormatSeconds(f.RetryWaitSeconds))
	}
	if st := rep.Net; st != nil {
		fmt.Printf("network: %s placement=%s, routed %d msgs (%s), node-local %d msgs, contention wait %s\n",
			st.Topology, st.Placement, st.InterMsgs, cliutil.FormatBytes(st.InterBytes),
			st.IntraMsgs, cliutil.FormatSeconds(st.Wait))
		if o.verbose {
			fmt.Print(trace.Congestion(rep, 5))
		}
	}
	fmt.Printf("target memory: total %s, max rank %s\n",
		cliutil.FormatBytes(rep.TotalPeakBytes), cliutil.FormatBytes(rep.MaxRankPeakBytes))
	fmt.Printf("kernel: %d events, %d messages delivered, %d windows\n",
		rep.Kernel.Events, rep.Kernel.Delivered, rep.Kernel.Windows)
	if o.verbose {
		for i, rs := range rep.Ranks {
			fmt.Printf("  rank %4d: compute %-12s delay %-12s blocked %-12s sent %d msgs / %s",
				i, cliutil.FormatSeconds(float64(rs.ComputeTime)),
				cliutil.FormatSeconds(float64(rs.DelayTime)),
				cliutil.FormatSeconds(float64(rs.BlockedTime)),
				rs.MsgsSent, cliutil.FormatBytes(rs.BytesSent))
			if rs.FaultTime > 0 {
				fmt.Printf(" fault %s", cliutil.FormatSeconds(float64(rs.FaultTime)))
			}
			if rs.Crashed {
				fmt.Print(" CRASHED")
			}
			fmt.Println()
		}
	}
	if o.timeline {
		tl, err := trace.Timeline(rep, 100)
		if err != nil {
			return err
		}
		fmt.Print(tl)
		u, err := trace.Utilize(rep)
		if err != nil {
			return err
		}
		fmt.Println("utilization:")
		fmt.Print(u.Summary())
	}
	if o.dtg {
		g, err := dtg.Build(rep)
		if err != nil {
			return err
		}
		fmt.Println(g.Summarize())
	}
	if o.tracer != nil {
		// The simulator-plane events streamed during the run; append the
		// simulated plane (rank spans, message flows, collective phases).
		if err := trace.Export(o.tracer, rep); err != nil {
			return err
		}
		if err := o.traceDone(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%s)\n", o.traceFile, o.traceFmt)
	}
	if o.recordFile != "" {
		if rep.Partial {
			// A partial call log includes operations that never completed;
			// replaying it would deadlock. Refuse rather than write a trap.
			fmt.Fprintf(os.Stderr, "mpisim: not recording %s: the run aborted, the call log is incomplete\n", o.recordFile)
		} else {
			tr, err := tracein.Record(rep, o.recordHdr)
			if err != nil {
				return err
			}
			if err := tracein.WriteFile(o.recordFile, tr); err != nil {
				return err
			}
			fmt.Printf("trace recorded to %s (%d ranks, %d events)\n",
				o.recordFile, tr.Header.Ranks, tr.Events())
		}
	}
	if o.runJSON != "" || o.profile != "" || o.profFold != "" {
		art := &trace.Artifact{
			App: o.appName, Mode: o.modeStr, Machine: o.machName,
			Inputs: o.inputs, Report: rep,
		}
		if len(o.taskLines) > 0 {
			art.TaskLines = make(map[string]int, len(o.taskLines))
			art.TaskHeads = make(map[string]string, len(o.taskLines))
			for _, tl := range o.taskLines {
				art.TaskLines[tl.Task] = tl.Line
				art.TaskHeads[tl.Task] = tl.Head
			}
		}
		if rep.Partial {
			// How much of the run the truncated prediction covers: the
			// live tracker's last snapshot when available, else the
			// consumed fraction of whichever budget is set.
			switch {
			case o.ri != nil && o.ri.Status().Percent > 0:
				art.Progress = o.ri.Status().Percent
			case o.timeBudget > 0:
				art.Progress = clamp01(rep.Time / o.timeBudget)
			case o.budget > 0:
				art.Progress = clamp01(float64(rep.Kernel.Events) / float64(o.budget))
			}
		}
		if o.runJSON != "" {
			if err := trace.WriteArtifact(o.runJSON, art); err != nil {
				return err
			}
			fmt.Printf("run artifact written to %s\n", o.runJSON)
		}
		if o.profile != "" {
			if err := trace.WriteProfileFile(o.profile, art); err != nil {
				return err
			}
			fmt.Printf("profile written to %s (view: go tool pprof -top %s)\n", o.profile, o.profile)
		}
		if o.profFold != "" {
			p, err := trace.BuildProfile(art)
			if err != nil {
				return err
			}
			f, err := os.Create(o.profFold)
			if err != nil {
				return err
			}
			if err := p.WriteFolded(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("folded stacks written to %s\n", o.profFold)
		}
	}
	if o.reg != nil {
		fmt.Fprintln(os.Stderr, "simulator self-metrics:")
		if err := o.reg.WriteText(os.Stderr); err != nil {
			return err
		}
	}
	if o.matrix && rep.MsgMatrix != nil {
		fmt.Println("communication matrix (messages sent, row = source):")
		for s, row := range rep.MsgMatrix {
			fmt.Printf("  %4d:", s)
			for _, c := range row {
				fmt.Printf(" %6d", c)
			}
			fmt.Println()
		}
	}
	return abortErr
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// shorten truncates a long abort reason (the deadlock form enumerates
// every blocked process) for one-line console output; the full text is
// in the wait-state dump and the run artifact.
func shorten(s string) string {
	if i := strings.IndexByte(s, ':'); i > 0 {
		s = s[:i]
	}
	if len(s) > 100 {
		s = s[:100] + "..."
	}
	return s
}
