// Command experiments regenerates the paper's evaluation: every figure
// (3-16) and Table 1, as text tables with the same rows/series the paper
// plots.
//
// Usage:
//
//	experiments                 # all experiments, scaled configurations
//	experiments -id fig10       # a single experiment
//	experiments -full           # paper-scale configurations (slow)
//	experiments -outdir results # one file per experiment
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof -id fig10
//
// Scaled configurations preserve every qualitative shape; EXPERIMENTS.md
// records the paper-versus-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"mpisim/internal/tables"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.String("id", "", "run a single experiment (fig3..fig16, table1); default all")
		full    = flag.Bool("full", false, "use paper-scale configurations (slow)")
		hosts   = flag.Int("hosts", 1, "host processors for the simulation engine")
		rankCap = flag.Int("rankcap", 0, "drop configurations above this many target ranks")
		outdir  = flag.String("outdir", "", "also write one file per experiment into this directory")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	cfg := tables.Config{Full: *full, HostWorkers: *hosts, RankCap: *rankCap}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	runOne := func(expID string, gen func(tables.Config) (tables.Result, error)) error {
		start := time.Now()
		res, err := gen(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", expID, err)
		}
		body := res.Render()
		fmt.Println(body)
		fmt.Printf("(%s completed in %v)\n\n", expID, time.Since(start).Round(time.Millisecond))
		if *outdir != "" {
			path := filepath.Join(*outdir, expID+".txt")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	if *id != "" {
		return runOne(*id, func(c tables.Config) (tables.Result, error) {
			return tables.ByID(*id, c)
		})
	}
	for _, e := range tables.Experiments() {
		if err := runOne(e.ID, e.Run); err != nil {
			return err
		}
	}
	return nil
}
