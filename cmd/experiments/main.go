// Command experiments regenerates the paper's evaluation: every figure
// (3-16) and Table 1, as text tables with the same rows/series the paper
// plots.
//
// Usage:
//
//	experiments                 # all experiments, scaled configurations
//	experiments -id fig10       # a single experiment
//	experiments -full           # paper-scale configurations (slow)
//	experiments -outdir results # one file per experiment
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof -id fig10
//
// Scaled configurations preserve every qualitative shape; EXPERIMENTS.md
// records the paper-versus-measured comparison.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"mpisim/internal/cliutil"
	"mpisim/internal/obs"
	"mpisim/internal/tables"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.String("id", "", "run a single experiment (fig3..fig16, table1); default all")
		full    = flag.Bool("full", false, "use paper-scale configurations (slow)")
		hosts   = flag.Int("hosts", 1, "host processors for the simulation engine")
		topo    = flag.String("topology", "", "interconnect topology override for every machine (flat, bus, torus:dims=..., fattree:k=..., graph:PATH)")
		place   = flag.String("placement", "", "rank placement override: block, roundrobin, random:SEED")
		rankCap = flag.Int("rankcap", 0, "drop configurations above this many target ranks")
		outdir  = flag.String("outdir", "", "also write one file per experiment into this directory")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
		metrics = flag.Bool("metrics", false, "print simulator self-metrics to stderr after the run")
		trcFile = flag.String("tracefile", "", "write a structured trace of every simulation to this file")
		trcFmt  = flag.String("traceformat", "chrome", "trace file format: chrome or jsonl")
		obsHTTP = flag.String("obshttp", "", "serve live simulator telemetry over HTTP at this address (e.g. localhost:6070)")
		linger  = flag.Duration("obslinger", 0, "keep the -obshttp server up this long after the experiments finish (for scripted scrapes)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	cfg := tables.Config{Full: *full, HostWorkers: *hosts, RankCap: *rankCap,
		Topology: *topo, Placement: *place}
	var reg *obs.Registry
	if *metrics || *obsHTTP != "" {
		reg = obs.NewRegistry(*hosts)
		reg.SetEnabled(true)
		cfg.Metrics = reg
	}
	var ri *obs.RunInfo
	if *obsHTTP != "" {
		// Fail fast on a bad address, then serve in the background. The
		// registry, timeline and run tracker aggregate across every
		// experiment as the run proceeds: one telemetry plane for the
		// whole sweep.
		tl := obs.NewTimeline(reg, obs.TimelineOptions{})
		tl.SetEnabled(true)
		ri = obs.NewRunInfo()
		cfg.Timeline = tl
		cfg.RunInfo = ri
		ln, err := net.Listen("tcp", *obsHTTP)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "serving telemetry at http://%s/ (/text /series /run /events /healthz)\n", ln.Addr())
		go http.Serve(ln, obs.HandlerWith(reg, obs.HandlerOpts{Timeline: tl, Run: ri}))
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}
	if *trcFile != "" {
		tracer, traceDone, err := cliutil.OpenTraceFile(*trcFile, *trcFmt)
		if err != nil {
			return err
		}
		cfg.Tracer = tracer
		defer func() {
			if err := traceDone(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	if reg != nil {
		defer func() {
			fmt.Fprintln(os.Stderr, "simulator self-metrics (all experiments aggregated):")
			reg.WriteText(os.Stderr)
		}()
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}

	runOne := func(expID string, gen func(tables.Config) (tables.Result, error)) error {
		start := time.Now()
		res, err := gen(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", expID, err)
		}
		body := res.Render()
		fmt.Println(body)
		fmt.Printf("(%s completed in %v)\n\n", expID, time.Since(start).Round(time.Millisecond))
		if *outdir != "" {
			path := filepath.Join(*outdir, expID+".txt")
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	if *id != "" {
		return runOne(*id, func(c tables.Config) (tables.Result, error) {
			return tables.ByID(*id, c)
		})
	}
	for _, e := range tables.Experiments() {
		if err := runOne(e.ID, e.Run); err != nil {
			return err
		}
	}
	return nil
}
