package net

import (
	"encoding/json"
	"fmt"
	"os"
)

// GraphConfig is the JSON schema of a graph topology file
// (-topology graph:PATH, or the -netjson shorthand):
//
//	{
//	  "hosts": 4,
//	  "links": [
//	    {"from": 0, "to": 1, "latency": 1e-5, "bandwidth": 1e8},
//	    {"from": 1, "to": 2, "latency": 1e-5, "bandwidth": 1e8,
//	     "name": "uplink", "duplex": false}
//	  ]
//	}
//
// Node indices 0..hosts-1 are hosts; larger indices may be used freely
// as internal switches. A link is full-duplex by default (two directed
// channels with independent occupancy); "duplex": false makes it a
// single shared half-duplex channel claimed by both directions.
type GraphConfig struct {
	Hosts int         `json:"hosts"`
	Links []GraphLink `json:"links"`
}

// GraphLink is one JSON-declared adjacency.
type GraphLink struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Latency   float64 `json:"latency"`
	Bandwidth float64 `json:"bandwidth"`
	Name      string  `json:"name,omitempty"`
	Duplex    *bool   `json:"duplex,omitempty"` // default true
}

// buildGraph loads a GraphConfig and routes it with Dijkstra
// (latency-weighted, deterministic tie-breaks: the lowest-id node and
// lowest-id link win ties, so routes are independent of map iteration
// and host parallelism).
func (n *Network) buildGraph(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("net: reading topology config: %v", err)
	}
	var cfg GraphConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("net: parsing topology config %s: %v", path, err)
	}
	return n.buildGraphConfig(&cfg, path)
}

func (n *Network) buildGraphConfig(cfg *GraphConfig, path string) error {
	if cfg.Hosts < 1 {
		return fmt.Errorf("net: %s: hosts must be >= 1, got %d", path, cfg.Hosts)
	}
	if len(cfg.Links) == 0 {
		return fmt.Errorf("net: %s: no links declared", path)
	}
	n.Hosts = cfg.Hosts
	// Node ids may exceed hosts (switches); size the adjacency to the
	// largest mentioned id.
	nodes := cfg.Hosts
	for i, l := range cfg.Links {
		if l.From < 0 || l.To < 0 {
			return fmt.Errorf("net: %s: link %d: negative node index", path, i)
		}
		if l.From == l.To {
			return fmt.Errorf("net: %s: link %d: self-loop on node %d", path, i, l.From)
		}
		if l.Latency <= 0 {
			return fmt.Errorf("net: %s: link %d (%d->%d): latency must be positive, got %g", path, i, l.From, l.To, l.Latency)
		}
		if l.Bandwidth <= 0 {
			return fmt.Errorf("net: %s: link %d (%d->%d): bandwidth must be positive, got %g", path, i, l.From, l.To, l.Bandwidth)
		}
		if l.From >= nodes {
			nodes = l.From + 1
		}
		if l.To >= nodes {
			nodes = l.To + 1
		}
	}

	// adjacency: per node, outgoing (neighbour, linkID) in declaration
	// order. Half-duplex links appear in both directions under one id.
	type edge struct {
		to   int
		link int32
	}
	adj := make([][]edge, nodes)
	hostOf := func(v int) int {
		if v < cfg.Hosts {
			return v
		}
		return -1
	}
	for _, l := range cfg.Links {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("link[%d-%d]", l.From, l.To)
		}
		id := n.addLink(hostOf(l.From), hostOf(l.To), name, l.Latency, l.Bandwidth)
		adj[l.From] = append(adj[l.From], edge{l.To, id})
		if l.Duplex == nil || *l.Duplex {
			rev := n.addLink(hostOf(l.To), hostOf(l.From), name+"~", l.Latency, l.Bandwidth)
			adj[l.To] = append(adj[l.To], edge{l.From, rev})
		} else {
			adj[l.To] = append(adj[l.To], edge{l.From, id})
		}
	}

	// Dijkstra from every host. Node counts here are small (config
	// files); the O(V²) scan keeps tie-breaking trivially deterministic.
	const inf = 1e308
	n.routes = make([]Route, cfg.Hosts*cfg.Hosts)
	for src := 0; src < cfg.Hosts; src++ {
		dist := make([]float64, nodes)
		prevLink := make([]int32, nodes)
		prevNode := make([]int, nodes)
		done := make([]bool, nodes)
		for v := range dist {
			dist[v], prevLink[v], prevNode[v] = inf, -1, -1
		}
		dist[src] = 0
		for {
			u, best := -1, inf
			for v := 0; v < nodes; v++ {
				if !done[v] && dist[v] < best {
					u, best = v, dist[v]
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			for _, e := range adj[u] {
				if d := dist[u] + n.Links[e.link].Latency; d < dist[e.to] {
					dist[e.to] = d
					prevLink[e.to], prevNode[e.to] = e.link, u
				}
			}
		}
		for dst := 0; dst < cfg.Hosts; dst++ {
			if dst == src || dist[dst] == inf {
				continue
			}
			var rev []int32
			for v := dst; v != src; v = prevNode[v] {
				rev = append(rev, prevLink[v])
			}
			links := make([]int32, len(rev))
			for i, l := range rev {
				links[len(rev)-1-i] = l
			}
			n.routes[src*cfg.Hosts+dst] = Route{Links: links}
		}
	}
	n.finishRoutes()
	return nil
}
