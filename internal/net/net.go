// Package net models the target machine's interconnect as an explicit
// topology: hosts joined by directed links, rank→host placement, and
// per-link contention. It replaces the single analytic scalar delay
// (machine.Network.AnalyticDelay) with routed, store-and-forward
// transfers whose hops serialize on shared links — the congestion the
// IBM SP's omega switch and the Origin 2000's mesh really exhibit.
//
// Five topology kinds are supported (see Build):
//
//   - flat: no topology at all. Build returns nil and the mpi layer runs
//     the seed analytic path, byte-identical to a build without -topology.
//   - bus: one shared half-duplex medium every inter-host message
//     serializes through.
//   - torus: a k-dimensional torus with dimension-order routing, the
//     shorter wraparound direction chosen per dimension.
//   - fattree: a k-ary fat-tree (k pods, (k/2)² core switches, k³/4
//     hosts) with deterministic D-mod-k up/down routing.
//   - graph: an arbitrary directed graph loaded from JSON, routed by
//     Dijkstra with deterministic tie-breaks.
//
// Everything built here is immutable after Build: routes are precomputed
// for all host pairs, so concurrent rank goroutines may query them
// freely. The only mutable state — per-link busy-until horizons — lives
// in Fabric, which is owned by a single simulated process (the mpi
// layer's fabric proc) and therefore needs no locking; determinism of
// the contention model is argued in DESIGN.md "Network model".
package net

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mpisim/internal/machine"
)

// Link is one directed channel of the interconnect. Shared-medium links
// (the bus, half-duplex graph links) appear once and are claimed by
// traffic in both directions.
type Link struct {
	// ID is the link's index in Network.Links.
	ID int
	// From and To are host indices; -1 marks an endpoint that is not a
	// host (a switch, or the shared bus medium).
	From, To int
	// Name identifies the link in reports and fault selectors.
	Name string
	// Latency is the traversal time in seconds after serialization.
	Latency float64
	// Bandwidth is the link's serialization rate in bytes/second.
	Bandwidth float64
}

// Route is the precomputed path between one ordered host pair:
// the link IDs in traversal order plus the closed-form uncontended
// delay coefficients (delay = Latency + size·InvBW under
// store-and-forward with empty links).
type Route struct {
	Links []int32
	Lat   float64 // sum of link latencies along the path
	InvBW float64 // sum of 1/bandwidth along the path
}

// Delay returns the uncontended store-and-forward transfer time for a
// message of the given size along this route.
func (r *Route) Delay(size int64) float64 {
	return r.Lat + float64(size)*r.InvBW
}

// Network is a built interconnect: topology, links, all-pairs routes and
// the rank→host placement. Immutable after Build.
type Network struct {
	// Kind is the topology kind ("bus", "torus", "fattree", "graph").
	Kind string
	// Spec is the original -topology specification string.
	Spec string
	// Hosts is the number of hosts (not switches) in the topology.
	Hosts int
	// Links holds every link; switch-to-switch links are included.
	Links []Link
	// RankHost maps each rank to its host index.
	RankHost []int
	// Placement names the placement policy that produced RankHost.
	Placement string
	// MinHopLat is the minimum link latency over all links; half of it
	// is the claim-leg latency that bounds the kernel lookahead.
	MinHopLat float64
	// IntraLat and IntraBW model transfers between ranks placed on the
	// same host (node-local memory copies): delay = IntraLat +
	// size/IntraBW, never routed through the fabric.
	IntraLat float64
	IntraBW  float64

	routes []Route // Hosts×Hosts, row-major
}

// Route returns the precomputed route from srcHost to dstHost. The two
// hosts must differ; same-host transfers use IntraDelay.
func (n *Network) Route(srcHost, dstHost int) *Route {
	return &n.routes[srcHost*n.Hosts+dstHost]
}

// UncontendedDelay is the closed-form transfer time between two hosts on
// an empty network, including the same-host (intra-node) case. Fault
// injection scales this to price link-slowdown factors against the real
// path, and the AbstractComm model could consume it as its oracle.
func (n *Network) UncontendedDelay(srcHost, dstHost int, size int64) float64 {
	if srcHost == dstHost {
		return n.IntraDelay(size)
	}
	return n.Route(srcHost, dstHost).Delay(size)
}

// IntraDelay is the node-local transfer time between two ranks sharing a
// host.
func (n *Network) IntraDelay(size int64) float64 {
	return n.IntraLat + float64(size)/n.IntraBW
}

// ClaimLatency is the fixed latency of the sender→fabric claim leg. It
// is half the minimum hop latency, so the forward leg retains at least
// the other half: every path's latency is ≥ MinHopLat, hence a relayed
// message always arrives ≥ ClaimLatency after its claim. Both legs
// therefore respect a kernel lookahead of ClaimLatency.
func (n *Network) ClaimLatency() float64 { return n.MinHopLat / 2 }

// Lookahead is the conservative kernel lookahead valid for this network:
// the claim-leg latency, further bounded by the intra-node latency when
// any host carries more than one rank (intra-node messages bypass the
// fabric and arrive after IntraLat at the earliest).
func (n *Network) Lookahead() float64 {
	l := n.ClaimLatency()
	if n.MultiRankHosts() && n.IntraLat < l {
		l = n.IntraLat
	}
	return l
}

// MultiRankHosts reports whether any host carries more than one rank.
func (n *Network) MultiRankHosts() bool {
	return len(n.RankHost) > n.Hosts || hasDuplicate(n.RankHost)
}

func hasDuplicate(hosts []int) bool {
	seen := make(map[int]bool, len(hosts))
	for _, h := range hosts {
		if seen[h] {
			return true
		}
		seen[h] = true
	}
	return false
}

// Spec is a parsed -topology specification:
//
//	flat
//	bus[:hosts=N][,lat=S][,bw=B]
//	torus:dims=4x4[,lat=S][,bw=B]
//	fattree:k=4[,lat=S][,bw=B]
//	graph:PATH
//
// All kinds additionally accept intralat=S and intrabw=B overriding the
// node-local transfer parameters. Link defaults come from the machine
// model: lat defaults to Net.Latency, bw to Net.Bandwidth, intralat to
// Net.Latency/4 and intrabw to 4·Net.Bandwidth.
type Spec struct {
	Kind   string
	Path   string            // graph: the JSON file path
	Params map[string]string // remaining key=value options
}

// ParseSpec parses a -topology string. An empty string and "flat" both
// yield the flat spec.
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		s = "flat"
	}
	kind, rest, _ := strings.Cut(s, ":")
	sp := &Spec{Kind: kind, Params: map[string]string{}}
	switch kind {
	case "flat", "bus", "torus", "fattree":
	case "graph":
		if rest == "" {
			return nil, fmt.Errorf("net: graph topology needs a path (graph:cfg.json)")
		}
		sp.Path = rest
		return sp, nil
	default:
		return nil, fmt.Errorf("net: unknown topology kind %q (want flat, bus, torus, fattree or graph)", kind)
	}
	if rest == "" {
		return sp, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("net: malformed topology option %q (want key=value)", kv)
		}
		sp.Params[k] = v
	}
	return sp, nil
}

// param consumption helpers: each builder takes what it understands and
// Build rejects leftovers, so typos fail instead of silently defaulting.

func (sp *Spec) floatParam(key string, def float64) (float64, error) {
	v, ok := sp.Params[key]
	if !ok {
		return def, nil
	}
	delete(sp.Params, key)
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("net: topology option %s=%s must be a positive number", key, v)
	}
	return f, nil
}

func (sp *Spec) intParam(key string, def int) (int, error) {
	v, ok := sp.Params[key]
	if !ok {
		return def, nil
	}
	delete(sp.Params, key)
	i, err := strconv.Atoi(v)
	if err != nil || i <= 0 {
		return 0, fmt.Errorf("net: topology option %s=%s must be a positive integer", key, v)
	}
	return i, nil
}

// Build resolves m.Topology and m.Placement into a Network for the given
// rank count. A flat (or empty) topology returns (nil, nil): the caller
// keeps the analytic fast path.
func Build(m *machine.Model, ranks int) (*Network, error) {
	sp, err := ParseSpec(m.Topology)
	if err != nil {
		return nil, err
	}
	if sp.Kind == "flat" {
		if len(sp.Params) > 0 {
			return nil, fmt.Errorf("net: flat topology takes no options")
		}
		return nil, nil
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("net: rank count must be positive, got %d", ranks)
	}
	defLat, defBW := m.Net.Latency, m.Net.Bandwidth
	lat, err := sp.floatParam("lat", defLat)
	if err != nil {
		return nil, err
	}
	bw, err := sp.floatParam("bw", defBW)
	if err != nil {
		return nil, err
	}
	intraLat, err := sp.floatParam("intralat", defLat/4)
	if err != nil {
		return nil, err
	}
	intraBW, err := sp.floatParam("intrabw", 4*defBW)
	if err != nil {
		return nil, err
	}

	n := &Network{Kind: sp.Kind, Spec: m.Topology, IntraLat: intraLat, IntraBW: intraBW}
	switch sp.Kind {
	case "bus":
		err = n.buildBus(sp, ranks, lat, bw)
	case "torus":
		err = n.buildTorus(sp, lat, bw)
	case "fattree":
		err = n.buildFatTree(sp, lat, bw)
	case "graph":
		err = n.buildGraph(sp.Path)
	}
	if err != nil {
		return nil, err
	}
	if len(sp.Params) > 0 {
		keys := make([]string, 0, len(sp.Params))
		for k := range sp.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return nil, fmt.Errorf("net: unknown %s topology option(s): %s", sp.Kind, strings.Join(keys, ", "))
	}
	if err := n.validate(); err != nil {
		return nil, err
	}
	n.MinHopLat = n.Links[0].Latency
	for _, l := range n.Links[1:] {
		if l.Latency < n.MinHopLat {
			n.MinHopLat = l.Latency
		}
	}
	if n.RankHost, err = Place(m.Placement, ranks, n.Hosts); err != nil {
		return nil, err
	}
	n.Placement = placementName(m.Placement)
	return n, nil
}

// validate checks the structural invariants every topology builder must
// provide: at least one host, positive link parameters, and (via the
// route table) a path between every host pair.
func (n *Network) validate() error {
	if n.Hosts < 1 {
		return fmt.Errorf("net: %s topology has no hosts", n.Kind)
	}
	if len(n.Links) == 0 {
		return fmt.Errorf("net: %s topology has no links", n.Kind)
	}
	for _, l := range n.Links {
		if l.Latency <= 0 {
			return fmt.Errorf("net: link %s: latency must be positive, got %g", l.Name, l.Latency)
		}
		if l.Bandwidth <= 0 {
			return fmt.Errorf("net: link %s: bandwidth must be positive, got %g", l.Name, l.Bandwidth)
		}
	}
	if len(n.routes) != n.Hosts*n.Hosts {
		return fmt.Errorf("net: internal error: route table has %d entries, want %d", len(n.routes), n.Hosts*n.Hosts)
	}
	for s := 0; s < n.Hosts; s++ {
		for d := 0; d < n.Hosts; d++ {
			if s == d {
				continue
			}
			r := n.Route(s, d)
			if len(r.Links) == 0 {
				return fmt.Errorf("net: %s topology: no route from host %d to host %d (disconnected graph)", n.Kind, s, d)
			}
		}
	}
	return nil
}

// finishRoutes fills each route's closed-form delay coefficients from
// its link sequence.
func (n *Network) finishRoutes() {
	for i := range n.routes {
		r := &n.routes[i]
		r.Lat, r.InvBW = 0, 0
		for _, id := range r.Links {
			l := &n.Links[id]
			r.Lat += l.Latency
			r.InvBW += 1 / l.Bandwidth
		}
	}
}

// addLink appends a link and returns its id.
func (n *Network) addLink(from, to int, name string, lat, bw float64) int32 {
	id := len(n.Links)
	n.Links = append(n.Links, Link{ID: id, From: from, To: to, Name: name, Latency: lat, Bandwidth: bw})
	return int32(id)
}
