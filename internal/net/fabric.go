package net

import "sort"

// LinkStats accumulates one link's occupancy accounting over a run.
type LinkStats struct {
	// Msgs and Bytes count the messages and payload bytes serialized
	// through the link.
	Msgs  int64
	Bytes int64
	// Busy is the total virtual time the link spent serializing.
	Busy float64
	// Wait is the total virtual time messages queued for the link while
	// it was busy with earlier traffic — the link's contribution to
	// contention.
	Wait float64
}

// Fabric is the mutable occupancy state of a Network: one busy-until
// horizon per link. It must be owned by exactly one simulated process
// (the mpi layer's fabric proc), which claims routes in the kernel's
// deterministic delivery order; the busy-until updates then replay
// identically regardless of host worker count.
type Fabric struct {
	net       *Network
	busyUntil []float64
	stats     []LinkStats
	// Wait is the total contention wait accumulated over all claims.
	Wait float64
	// Msgs counts the claims routed.
	Msgs int64
	// Bytes counts the payload bytes routed.
	Bytes int64
}

// NewFabric returns an empty fabric over n.
func NewFabric(n *Network) *Fabric {
	return &Fabric{
		net:       n,
		busyUntil: make([]float64, len(n.Links)),
		stats:     make([]LinkStats, len(n.Links)),
	}
}

// Claim routes a size-byte message injected at time t from srcHost to
// dstHost, store-and-forward: on each hop the message waits for the
// link's busy-until horizon, serializes for size/bandwidth seconds
// (occupying the link), then traverses for the link latency. It returns
// the arrival time at dstHost and the total time spent waiting on busy
// links (the message's contention share).
func (f *Fabric) Claim(srcHost, dstHost int, size int64, t float64) (arrival, wait float64) {
	r := f.net.Route(srcHost, dstHost)
	for _, id := range r.Links {
		l := &f.net.Links[id]
		st := &f.stats[id]
		start := t
		if bu := f.busyUntil[id]; bu > start {
			start = bu
			w := start - t
			wait += w
			st.Wait += w
		}
		ser := float64(size) / l.Bandwidth
		f.busyUntil[id] = start + ser
		st.Busy += ser
		st.Msgs++
		st.Bytes += size
		t = start + ser + l.Latency
	}
	f.Wait += wait
	f.Msgs++
	f.Bytes += size
	return t, wait
}

// LinkReport is one link's contribution to the run's network Stats.
type LinkReport struct {
	Name  string
	Msgs  int64
	Bytes int64
	// Busy and Wait are the link's LinkStats totals in seconds.
	Busy float64
	Wait float64
	// Utilization is Busy over the run's predicted time (0 when the run
	// time is unknown or zero).
	Utilization float64
}

// Stats is the network summary a topology-mode run attaches to its
// report.
type Stats struct {
	// Topology and Placement echo the resolved configuration.
	Topology  string `json:"topology"`
	Placement string `json:"placement"`
	Hosts     int    `json:"hosts"`
	LinkCount int    `json:"link_count"`
	// IntraMsgs/IntraBytes count node-local transfers that bypassed the
	// fabric; InterMsgs/InterBytes the routed ones.
	IntraMsgs  int64 `json:"intra_msgs"`
	IntraBytes int64 `json:"intra_bytes"`
	InterMsgs  int64 `json:"inter_msgs"`
	InterBytes int64 `json:"inter_bytes"`
	// Wait is the total link-contention wait over all routed messages.
	Wait float64 `json:"wait"`
	// Links holds per-link occupancy for every link that carried
	// traffic, sorted by descending Wait then Busy (the congestion
	// hotspot order).
	Links []LinkReport `json:"links,omitempty"`
}

// Summary assembles the per-link hotspot list. runTime (the predicted
// execution time) scales Busy into Utilization; idle links are omitted.
func (f *Fabric) Summary(runTime float64) []LinkReport {
	var out []LinkReport
	for i, st := range f.stats {
		if st.Msgs == 0 {
			continue
		}
		lr := LinkReport{
			Name: f.net.Links[i].Name, Msgs: st.Msgs, Bytes: st.Bytes,
			Busy: st.Busy, Wait: st.Wait,
		}
		if runTime > 0 {
			lr.Utilization = st.Busy / runTime
		}
		out = append(out, lr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wait != out[j].Wait {
			return out[i].Wait > out[j].Wait
		}
		if out[i].Busy != out[j].Busy {
			return out[i].Busy > out[j].Busy
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FindLink returns the id of the named link, or -1. Fault-injection link
// selectors resolve their endpoints against topology links through the
// host map instead, but diagnostics and tests address links by name.
func (n *Network) FindLink(name string) int {
	for i := range n.Links {
		if n.Links[i].Name == name {
			return i
		}
	}
	return -1
}
