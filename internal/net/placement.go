package net

import (
	"fmt"
	"strconv"
	"strings"
)

// Place resolves a -placement policy string into a rank→host map:
//
//	block            contiguous rank blocks per host (default)
//	roundrobin       rank r on host r mod hosts
//	random:SEED      a seeded deterministic shuffle of the block map
//
// Every policy balances ranks across hosts to within one: with R ranks
// on H hosts, each host carries ⌊R/H⌋ or ⌈R/H⌉ ranks. More ranks than
// hosts therefore yields multi-rank nodes whose internal traffic is
// intra-node (never routed through the fabric).
func Place(policy string, ranks, hosts int) ([]int, error) {
	if policy == "" {
		policy = "block"
	}
	kind, arg, hasArg := strings.Cut(policy, ":")
	hostOf := make([]int, ranks)
	switch kind {
	case "block":
		if hasArg {
			return nil, fmt.Errorf("net: block placement takes no argument")
		}
		blockPlace(hostOf, hosts)
	case "roundrobin":
		if hasArg {
			return nil, fmt.Errorf("net: roundrobin placement takes no argument")
		}
		for r := range hostOf {
			hostOf[r] = r % hosts
		}
	case "random":
		seed := uint64(1)
		if hasArg {
			v, err := strconv.ParseUint(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("net: random placement seed %q must be an unsigned integer", arg)
			}
			seed = v
		}
		blockPlace(hostOf, hosts)
		shuffle(hostOf, seed)
	default:
		return nil, fmt.Errorf("net: unknown placement %q (want block, roundrobin or random:SEED)", policy)
	}
	return hostOf, nil
}

// placementName normalizes an empty policy to its default for reports.
func placementName(policy string) string {
	if policy == "" {
		return "block"
	}
	return policy
}

// blockPlace fills hostOf with contiguous blocks: the first R mod H
// hosts carry one extra rank.
func blockPlace(hostOf []int, hosts int) {
	ranks := len(hostOf)
	q, rem := ranks/hosts, ranks%hosts
	r := 0
	for h := 0; h < hosts && r < ranks; h++ {
		sz := q
		if h < rem {
			sz++
		}
		for i := 0; i < sz; i++ {
			hostOf[r] = h
			r++
		}
	}
}

// shuffle is a Fisher-Yates permutation driven by a local SplitMix64, so
// random placement is identical across platforms and Go releases.
func shuffle(a []int, seed uint64) {
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(a) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		a[i], a[j] = a[j], a[i]
	}
}
