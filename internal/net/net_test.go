package net

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpisim/internal/machine"
)

func build(t *testing.T, topo, place string, ranks int) *Network {
	t.Helper()
	m := machine.IBMSP()
	m.Topology = topo
	m.Placement = place
	n, err := Build(m, ranks)
	if err != nil {
		t.Fatalf("Build(%q, %q, %d): %v", topo, place, ranks, err)
	}
	if n == nil {
		t.Fatalf("Build(%q): unexpected flat network", topo)
	}
	return n
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("torus:dims=4x4,lat=1e-6")
	if err != nil || sp.Kind != "torus" || sp.Params["dims"] != "4x4" || sp.Params["lat"] != "1e-6" {
		t.Fatalf("got %+v, %v", sp, err)
	}
	sp, err = ParseSpec("graph:cfg/net.json")
	if err != nil || sp.Kind != "graph" || sp.Path != "cfg/net.json" {
		t.Fatalf("got %+v, %v", sp, err)
	}
	for _, s := range []string{"", "flat"} {
		sp, err = ParseSpec(s)
		if err != nil || sp.Kind != "flat" {
			t.Fatalf("ParseSpec(%q) = %+v, %v", s, sp, err)
		}
	}
	for _, s := range []string{"mesh", "graph", "bus:hosts", "bus:=4", "torus:dims=4x4,=x"} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): expected error", s)
		}
	}
}

func TestFlatReturnsNil(t *testing.T) {
	for _, topo := range []string{"", "flat"} {
		m := machine.IBMSP()
		m.Topology = topo
		n, err := Build(m, 8)
		if err != nil || n != nil {
			t.Fatalf("Build(%q) = %v, %v; want nil, nil", topo, n, err)
		}
	}
}

// checkHostChain verifies a route is a contiguous walk from s to d over
// the link From/To endpoints, treating -1 (switch) ends as wildcards.
func checkHostChain(t *testing.T, n *Network, s, d int) {
	t.Helper()
	r := n.Route(s, d)
	if len(r.Links) == 0 {
		t.Fatalf("no route %d->%d", s, d)
	}
	cur := s
	for _, id := range r.Links {
		l := n.Links[id]
		if l.From != -1 && l.From != cur {
			t.Fatalf("route %d->%d: link %s starts at %d, walk is at %d", s, d, l.Name, l.From, cur)
		}
		if l.To != -1 {
			cur = l.To
		} else {
			cur = -1
		}
	}
	if cur != d && cur != -1 {
		t.Fatalf("route %d->%d ends at %d", s, d, cur)
	}
	last := n.Links[r.Links[len(r.Links)-1]]
	if last.To != -1 && last.To != d {
		t.Fatalf("route %d->%d: final link %s lands on %d", s, d, last.Name, last.To)
	}
}

// TestTorusRouting checks, for every ordered pair on a 4x3x2 torus, that
// the route walks host-to-host from source to destination and its length
// equals the closed form: the sum over dimensions of the minimal
// wraparound distance.
func TestTorusRouting(t *testing.T) {
	dims := []int{4, 3, 2}
	n := build(t, "torus:dims=4x3x2", "", 24)
	if n.Hosts != 24 {
		t.Fatalf("hosts = %d, want 24", n.Hosts)
	}
	coord := func(h int) []int {
		c := make([]int, len(dims))
		for i, d := range dims {
			c[i] = h % d
			h /= d
		}
		return c
	}
	for s := 0; s < n.Hosts; s++ {
		for d := 0; d < n.Hosts; d++ {
			if s == d {
				continue
			}
			checkHostChain(t, n, s, d)
			want := 0
			cs, cd := coord(s), coord(d)
			for i, sz := range dims {
				fwd := (cd[i] - cs[i] + sz) % sz
				if fwd > sz-fwd {
					fwd = sz - fwd
				}
				want += fwd
			}
			if got := len(n.Route(s, d).Links); got != want {
				t.Fatalf("torus route %d->%d has %d hops, closed form %d", s, d, got, want)
			}
		}
	}
}

// TestFatTreeRouting checks every pair on a k=4 fat-tree: routes start
// and end at the right hosts and path lengths match the 2/4/6 closed
// form for same-edge, same-pod and cross-pod pairs.
func TestFatTreeRouting(t *testing.T) {
	const k = 4
	half := k / 2
	n := build(t, "fattree:k=4", "", k*half*half)
	if n.Hosts != k*half*half {
		t.Fatalf("hosts = %d, want %d", n.Hosts, k*half*half)
	}
	for s := 0; s < n.Hosts; s++ {
		for d := 0; d < n.Hosts; d++ {
			if s == d {
				continue
			}
			checkHostChain(t, n, s, d)
			want := 6
			switch {
			case s/half == d/half:
				want = 2
			case s/(half*half) == d/(half*half):
				want = 4
			}
			if got := len(n.Route(s, d).Links); got != want {
				t.Fatalf("fattree route %d->%d has %d hops, want %d", s, d, got, want)
			}
		}
	}
}

// TestFatTreeUplinkSharing: routes to the same destination from
// different source pods descend through the same core and aggregation
// links (D-mod-k funnels by destination), which is what makes the
// routing deterministic and hotspot analysis meaningful.
func TestFatTreeUplinkSharing(t *testing.T) {
	n := build(t, "fattree:k=4", "", 16)
	// Hosts 4 and 8 are in different pods than 0 and than each other.
	r1, r2 := n.Route(4, 0), n.Route(8, 0)
	// Final two links (agg->edge descent, edge->host) must coincide.
	l1, l2 := r1.Links[len(r1.Links)-2:], r2.Links[len(r2.Links)-2:]
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("descents into host 0 differ: %v vs %v", l1, l2)
	}
}

func TestBusRoutes(t *testing.T) {
	n := build(t, "bus:hosts=5", "", 5)
	if len(n.Links) != 1 || n.Links[0].Name != "bus" {
		t.Fatalf("bus should have exactly one link, got %+v", n.Links)
	}
	for s := 0; s < 5; s++ {
		for d := 0; d < 5; d++ {
			if s == d {
				continue
			}
			if r := n.Route(s, d); len(r.Links) != 1 || r.Links[0] != 0 {
				t.Fatalf("bus route %d->%d = %+v", s, d, r)
			}
		}
	}
}

// TestBuildDeterminism: building the same topology twice yields
// identical links and routes (the foundation of cross-worker
// reproducibility; the kernel-level gate lives in internal/mpi).
func TestBuildDeterminism(t *testing.T) {
	for _, topo := range []string{"torus:dims=4x4", "fattree:k=4", "bus"} {
		a := build(t, topo, "random:7", 16)
		b := build(t, topo, "random:7", 16)
		if !reflect.DeepEqual(a.Links, b.Links) {
			t.Fatalf("%s: links differ between builds", topo)
		}
		if !reflect.DeepEqual(a.routes, b.routes) {
			t.Fatalf("%s: routes differ between builds", topo)
		}
		if !reflect.DeepEqual(a.RankHost, b.RankHost) {
			t.Fatalf("%s: random placement differs between builds", topo)
		}
	}
}

func TestPlacement(t *testing.T) {
	check := func(policy string, ranks, hosts int) []int {
		t.Helper()
		m, err := Place(policy, ranks, hosts)
		if err != nil {
			t.Fatalf("Place(%q): %v", policy, err)
		}
		counts := make([]int, hosts)
		for r, h := range m {
			if h < 0 || h >= hosts {
				t.Fatalf("Place(%q): rank %d on host %d", policy, r, h)
			}
			counts[h]++
		}
		lo, hi := ranks/hosts, (ranks+hosts-1)/hosts
		for h, c := range counts {
			if c < lo || c > hi {
				t.Fatalf("Place(%q): host %d carries %d ranks, want %d..%d", policy, h, c, lo, hi)
			}
		}
		return m
	}
	if m := check("block", 10, 4); m[0] != 0 || m[2] != 0 || m[3] != 1 || m[9] != 3 {
		t.Fatalf("block: %v", m)
	}
	if m := check("roundrobin", 10, 4); m[0] != 0 || m[1] != 1 || m[4] != 0 || m[9] != 1 {
		t.Fatalf("roundrobin: %v", m)
	}
	r1 := check("random:42", 16, 4)
	r2 := check("random:42", 16, 4)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("random placement not deterministic for a fixed seed")
	}
	r3 := check("random:43", 16, 4)
	if reflect.DeepEqual(r1, r3) {
		t.Fatal("different random seeds produced identical placements")
	}
	check("random", 7, 3) // default seed
	for _, p := range []string{"nearest", "block:2", "roundrobin:x", "random:abc"} {
		if _, err := Place(p, 8, 4); err == nil {
			t.Errorf("Place(%q): expected error", p)
		}
	}
}

func TestLookahead(t *testing.T) {
	// One rank per host: lookahead is half the minimum hop latency.
	n := build(t, "torus:dims=4x4", "", 16)
	if n.MultiRankHosts() {
		t.Fatal("16 ranks on 16 hosts should be single-rank")
	}
	if got := n.Lookahead(); got != n.MinHopLat/2 {
		t.Fatalf("lookahead = %g, want MinHopLat/2 = %g", got, n.MinHopLat/2)
	}
	// Multi-rank hosts with a small intra latency bound it further.
	n = build(t, "torus:dims=2x2,intralat=1e-9", "", 8)
	if !n.MultiRankHosts() {
		t.Fatal("8 ranks on 4 hosts must be multi-rank")
	}
	if got := n.Lookahead(); got != 1e-9 {
		t.Fatalf("lookahead = %g, want intralat 1e-9", got)
	}
}

func TestUncontendedDelay(t *testing.T) {
	n := build(t, "bus:hosts=4,lat=1e-5,bw=1e8,intralat=1e-6,intrabw=1e9", "", 8)
	if got, want := n.UncontendedDelay(0, 1, 1000), 1e-5+1000/1e8; got != want {
		t.Fatalf("inter delay = %g, want %g", got, want)
	}
	if got, want := n.UncontendedDelay(2, 2, 1000), 1e-6+1000/1e9; got != want {
		t.Fatalf("intra delay = %g, want %g", got, want)
	}
}

func TestFabricContention(t *testing.T) {
	n := build(t, "bus:hosts=4,lat=1e-5,bw=1e8", "", 4)
	fab := NewFabric(n)
	// Two simultaneous claims on the shared bus: the second serializes
	// behind the first's transmission.
	ser := 1e4 / 1e8 // 10 KB at 100 MB/s
	a1, w1 := fab.Claim(0, 1, 1e4, 0)
	a2, w2 := fab.Claim(2, 3, 1e4, 0)
	if w1 != 0 || a1 != ser+1e-5 {
		t.Fatalf("first claim: arrival %g wait %g", a1, w1)
	}
	if w2 != ser || a2 != 2*ser+1e-5 {
		t.Fatalf("second claim should queue one serialization: arrival %g wait %g", a2, w2)
	}
	if fab.Wait != ser || fab.Msgs != 2 {
		t.Fatalf("fabric totals: %+v", fab)
	}
	sum := fab.Summary(1)
	if len(sum) != 1 || sum[0].Name != "bus" || sum[0].Msgs != 2 || sum[0].Wait != ser {
		t.Fatalf("summary: %+v", sum)
	}
}

func writeGraph(t *testing.T, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "net.json")
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGraphTopology loads a dumbbell: two 2-host clusters joined by one
// slow cross link through two switches (nodes 4 and 5).
func TestGraphTopology(t *testing.T) {
	p := writeGraph(t, `{
		"hosts": 4,
		"links": [
			{"from": 0, "to": 4, "latency": 1e-6, "bandwidth": 1e9},
			{"from": 1, "to": 4, "latency": 1e-6, "bandwidth": 1e9},
			{"from": 2, "to": 5, "latency": 1e-6, "bandwidth": 1e9},
			{"from": 3, "to": 5, "latency": 1e-6, "bandwidth": 1e9},
			{"from": 4, "to": 5, "latency": 1e-5, "bandwidth": 1e8, "name": "trunk"}
		]
	}`)
	n := build(t, "graph:"+p, "", 4)
	if n.Hosts != 4 {
		t.Fatalf("hosts = %d", n.Hosts)
	}
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s != d {
				checkHostChain(t, n, s, d)
			}
		}
	}
	// Same cluster: 2 hops. Cross cluster: 3 hops through the trunk.
	if got := len(n.Route(0, 1).Links); got != 2 {
		t.Fatalf("intra-cluster route has %d links, want 2", got)
	}
	r := n.Route(0, 2)
	if got := len(r.Links); got != 3 {
		t.Fatalf("cross-cluster route has %d links, want 3", got)
	}
	if name := n.Links[r.Links[1]].Name; name != "trunk" {
		t.Fatalf("cross-cluster middle link is %q, want trunk", name)
	}
	// The reverse of the duplex trunk exists with the derived name.
	rev := n.Route(2, 0)
	if name := n.Links[rev.Links[1]].Name; name != "trunk~" {
		t.Fatalf("reverse trunk link is %q, want trunk~", name)
	}
}

func TestGraphHalfDuplexShared(t *testing.T) {
	p := writeGraph(t, `{
		"hosts": 2,
		"links": [{"from": 0, "to": 1, "latency": 1e-6, "bandwidth": 1e9, "duplex": false}]
	}`)
	n := build(t, "graph:"+p, "", 2)
	if len(n.Links) != 1 {
		t.Fatalf("half-duplex link should appear once, got %d links", len(n.Links))
	}
	if n.Route(0, 1).Links[0] != n.Route(1, 0).Links[0] {
		t.Fatal("both directions must share the half-duplex link")
	}
}

func TestGraphErrors(t *testing.T) {
	cases := map[string]string{
		"disconnected": `{"hosts": 3, "links": [{"from": 0, "to": 1, "latency": 1e-6, "bandwidth": 1e9}]}`,
		"self loop":    `{"hosts": 2, "links": [{"from": 0, "to": 0, "latency": 1e-6, "bandwidth": 1e9}]}`,
		"bad latency":  `{"hosts": 2, "links": [{"from": 0, "to": 1, "latency": -1, "bandwidth": 1e9}]}`,
		"no hosts":     `{"hosts": 0, "links": [{"from": 0, "to": 1, "latency": 1e-6, "bandwidth": 1e9}]}`,
		"bad index":    `{"hosts": 2, "links": [{"from": -2, "to": 1, "latency": 1e-6, "bandwidth": 1e9}]}`,
	}
	for name, body := range cases {
		m := machine.IBMSP()
		m.Topology = "graph:" + writeGraph(t, body)
		if _, err := Build(m, 2); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	m := machine.IBMSP()
	m.Topology = "graph:" + filepath.Join(t.TempDir(), "missing.json")
	if _, err := Build(m, 2); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestBuildErrors(t *testing.T) {
	for _, topo := range []string{
		"flat:x=1", "torus", "torus:dims=0x4", "torus:dims=axb",
		"fattree:k=5", "fattree:k=0", "bus:hosts=-1", "bus:lat=0",
		"torus:dims=4x4,bogus=1",
	} {
		m := machine.IBMSP()
		m.Topology = topo
		if _, err := Build(m, 8); err == nil {
			t.Errorf("Build(%q): expected error", topo)
		}
	}
	// Unknown-option errors name the offending keys.
	m := machine.IBMSP()
	m.Topology = "bus:zzz=1,aaa=2"
	_, err := Build(m, 4)
	if err == nil || !strings.Contains(err.Error(), "aaa, zzz") {
		t.Fatalf("leftover options error should list keys sorted, got %v", err)
	}
}

// BenchmarkNetRoute measures the per-message routing + claim cost that
// the fabric pays on the hot path.
func BenchmarkNetRoute(b *testing.B) {
	for _, topo := range []string{"bus", "torus:dims=8x8", "fattree:k=8"} {
		name, _, _ := strings.Cut(topo, ":")
		b.Run(name, func(b *testing.B) {
			m := machine.IBMSP()
			m.Topology = topo
			n, err := Build(m, 64)
			if err != nil {
				b.Fatal(err)
			}
			fab := NewFabric(n)
			b.ReportAllocs()
			var t float64
			for i := 0; i < b.N; i++ {
				s, d := i%n.Hosts, (i*7+3)%n.Hosts
				if s == d {
					d = (d + 1) % n.Hosts
				}
				at, _ := fab.Claim(s, d, 1024, t)
				t = at - n.Route(s, d).Lat
			}
		})
	}
}

func ExampleParseSpec() {
	sp, _ := ParseSpec("fattree:k=4,lat=5e-6")
	fmt.Println(sp.Kind, sp.Params["k"], sp.Params["lat"])
	// Output: fattree 4 5e-6
}
