package net

import (
	"fmt"
	"strconv"
	"strings"
)

// buildBus models one shared half-duplex medium: a single link that
// every inter-host transfer serializes through, in either direction.
// It is the worst case for all-to-all traffic and the sanity anchor for
// the contention model (a bus must predict more time than a fat-tree on
// the same traffic).
func (n *Network) buildBus(sp *Spec, ranks int, lat, bw float64) error {
	hosts, err := sp.intParam("hosts", ranks)
	if err != nil {
		return err
	}
	n.Hosts = hosts
	bus := n.addLink(-1, -1, "bus", lat, bw)
	n.routes = make([]Route, hosts*hosts)
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s != d {
				n.routes[s*hosts+d] = Route{Links: []int32{bus}}
			}
		}
	}
	n.finishRoutes()
	return nil
}

// buildTorus models a k-dimensional torus (dims=AxBx...) with one host
// per node and a full-duplex link pair between wraparound neighbours in
// each dimension. Routing is dimension-order: the message corrects
// dimension 0 first, then 1, and so on, moving in whichever wraparound
// direction is shorter (ties go in the positive direction), so every
// route is unique and deterministic.
func (n *Network) buildTorus(sp *Spec, lat, bw float64) error {
	spec, ok := sp.Params["dims"]
	if !ok {
		return fmt.Errorf("net: torus topology needs dims (torus:dims=4x4)")
	}
	delete(sp.Params, "dims")
	var dims []int
	hosts := 1
	for _, d := range strings.Split(spec, "x") {
		v, err := strconv.Atoi(d)
		if err != nil || v < 2 {
			return fmt.Errorf("net: torus dims %q: each dimension must be an integer >= 2", spec)
		}
		dims = append(dims, v)
		hosts *= v
	}
	n.Hosts = hosts

	// coord <-> host id conversion, dimension 0 fastest-varying.
	coord := func(h int) []int {
		c := make([]int, len(dims))
		for i, d := range dims {
			c[i] = h % d
			h /= d
		}
		return c
	}
	index := func(c []int) int {
		h, stride := 0, 1
		for i, d := range dims {
			h += c[i] * stride
			stride *= d
		}
		return h
	}

	// One directed link per (node, dimension, direction). A dimension of
	// size 2 has coincident +1/-1 neighbours; both directed links are
	// still created (they model the two channels of the cable).
	linkID := make(map[[3]int]int32) // (from, dim, dir01) -> link
	for h := 0; h < hosts; h++ {
		c := coord(h)
		for dim, sz := range dims {
			for dirIdx, dir := range []int{+1, -1} {
				nc := append([]int(nil), c...)
				nc[dim] = (nc[dim] + dir + sz) % sz
				to := index(nc)
				name := fmt.Sprintf("torus[%d.d%d%+d]", h, dim, dir)
				linkID[[3]int{h, dim, dirIdx}] = n.addLink(h, to, name, lat, bw)
			}
		}
	}

	n.routes = make([]Route, hosts*hosts)
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s == d {
				continue
			}
			var links []int32
			c, dc := coord(s), coord(d)
			for dim, sz := range dims {
				for c[dim] != dc[dim] {
					// Shorter wraparound direction; exact halves positive.
					fwd := (dc[dim] - c[dim] + sz) % sz
					dirIdx, dir := 0, +1
					if fwd > sz-fwd {
						dirIdx, dir = 1, -1
					}
					links = append(links, linkID[[3]int{index(c), dim, dirIdx}])
					c[dim] = (c[dim] + dir + sz) % sz
				}
			}
			n.routes[s*hosts+d] = Route{Links: links}
		}
	}
	n.finishRoutes()
	return nil
}

// buildFatTree models a k-ary fat-tree (k even): k pods of k/2 edge and
// k/2 aggregation switches, (k/2)² core switches, k/2 hosts per edge
// switch — k³/4 hosts in total. Every adjacency is a full-duplex link
// pair. Routing is D-mod-k up/down: the uplink taken at each level is
// selected by the destination host id modulo the k/2 uplinks, so the
// upward path is a deterministic function of the destination and the
// downward path is the unique tree descent.
func (n *Network) buildFatTree(sp *Spec, lat, bw float64) error {
	k, err := sp.intParam("k", 0)
	if err != nil {
		return err
	}
	if k < 2 || k%2 != 0 {
		return fmt.Errorf("net: fattree topology needs an even k >= 2 (fattree:k=4)")
	}
	half := k / 2
	hosts := k * half * half // k pods * k/2 edges * k/2 hosts
	n.Hosts = hosts

	// Link tables indexed by position; "up" and "dn" are the two
	// directions of each full-duplex adjacency.
	hostUp := make([]int32, hosts)
	hostDn := make([]int32, hosts)
	edgeUp := make([][]int32, k*half) // [edge global][agg index in pod]
	edgeDn := make([][]int32, k*half)
	aggUp := make([][]int32, k*half) // [agg global][core index among its k/2]
	aggDn := make([][]int32, k*half)

	edgeOf := func(h int) int { return h / half } // global edge switch index
	for h := 0; h < hosts; h++ {
		e := edgeOf(h)
		hostUp[h] = n.addLink(h, -1, fmt.Sprintf("ft[h%d-e%d]", h, e), lat, bw)
		hostDn[h] = n.addLink(-1, h, fmt.Sprintf("ft[e%d-h%d]", e, h), lat, bw)
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			ge := p*half + e
			edgeUp[ge] = make([]int32, half)
			edgeDn[ge] = make([]int32, half)
			for a := 0; a < half; a++ {
				ga := p*half + a
				edgeUp[ge][a] = n.addLink(-1, -1, fmt.Sprintf("ft[e%d-a%d]", ge, ga), lat, bw)
				edgeDn[ge][a] = n.addLink(-1, -1, fmt.Sprintf("ft[a%d-e%d]", ga, ge), lat, bw)
			}
		}
		for a := 0; a < half; a++ {
			ga := p*half + a
			aggUp[ga] = make([]int32, half)
			aggDn[ga] = make([]int32, half)
			for c := 0; c < half; c++ {
				// Aggregation switch a of every pod connects to core
				// switches a*half..a*half+half-1 (the standard grouping).
				core := a*half + c
				aggUp[ga][c] = n.addLink(-1, -1, fmt.Sprintf("ft[a%d-c%d]", ga, core), lat, bw)
				aggDn[ga][c] = n.addLink(-1, -1, fmt.Sprintf("ft[c%d-a%d]", core, ga), lat, bw)
			}
		}
	}

	podOf := func(h int) int { return h / (half * half) }
	n.routes = make([]Route, hosts*hosts)
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s == d {
				continue
			}
			var links []int32
			se, de := edgeOf(s), edgeOf(d)
			links = append(links, hostUp[s])
			switch {
			case se == de:
				// Same edge switch: up to the edge and straight down.
			case podOf(s) == podOf(d):
				// Same pod: up to the D-mod-k aggregation switch, down to
				// the destination's edge switch.
				a := d % half
				links = append(links, edgeUp[se][a], edgeDn[de][a])
			default:
				// Cross-pod: up via agg d%half and core (d/half)%half,
				// then the unique descent into d's pod.
				a := d % half
				c := (d / half) % half
				links = append(links, edgeUp[se][a])
				links = append(links, aggUp[podOf(s)*half+a][c])
				links = append(links, aggDn[podOf(d)*half+a][c])
				links = append(links, edgeDn[de][a])
			}
			links = append(links, hostDn[d])
			n.routes[s*hosts+d] = Route{Links: links}
		}
	}
	n.finishRoutes()
	return nil
}
