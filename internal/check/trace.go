package check

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mpisim/internal/ir"
	"mpisim/internal/stg"
	"mpisim/internal/symexpr"
)

// The trace evaluator abstractly executes the program once per rank at
// the checked configuration, producing the rank's sequence of
// communication operations. Values are tracked as known/unknown: inputs
// and rank-arithmetic resolve exactly (the symbolic-process-set case of
// paper §3.3); anything fed by received data or unbound inputs degrades
// to unknown, and communication reached under an unknown condition is
// recorded as a "may" operation, which downstream passes report as
// warnings rather than errors.
//
// Loops whose bodies neither communicate nor define structure-relevant
// variables are skipped wholesale (their definitions are invalidated),
// which is what keeps the analysis linear in the communication structure
// rather than in the iteration space — the checker-side analogue of the
// compiler's condensation.

// val is an abstract scalar value. uniform marks values provably equal
// on every rank (needed to keep values across Bcast).
type val struct {
	known   bool
	uniform bool
	v       float64
}

func known(v float64, uniform bool) val { return val{known: true, uniform: uniform, v: v} }

// opKind classifies trace operations.
type opKind int

// Trace operation kinds.
const (
	opSend opKind = iota
	opRecv
	opColl
)

// op is one communication operation of one rank's trace.
type op struct {
	kind opKind
	stmt ir.Stmt
	// peer is the resolved partner rank (send dest, recv src, bcast
	// root); peerKnown is false when the expression is data-dependent.
	peer      int
	peerKnown bool
	tag       int
	// elems is the section element count when elemsKnown.
	elems      float64
	elemsKnown bool
	// may marks operations reached under an unknown condition.
	may bool
	// key identifies a collective operation (opColl) for consistency
	// matching; the empty string otherwise.
	key string
}

// describe renders the operation for diagnostics.
func (o op) describe() string {
	switch o.kind {
	case opSend:
		if o.peerKnown {
			return fmt.Sprintf("SEND to %d tag %d", o.peer, o.tag)
		}
		return fmt.Sprintf("SEND to ? tag %d", o.tag)
	case opRecv:
		if o.peerKnown {
			return fmt.Sprintf("RECV from %d tag %d", o.peer, o.tag)
		}
		return fmt.Sprintf("RECV from ? tag %d", o.tag)
	default:
		return o.key
	}
}

// boundsHit is a bounds violation observed during abstract execution.
type boundsHit struct {
	stmt ir.Stmt
	msg  string
	rank int
	may  bool
}

// trace is one rank's abstract execution result.
type trace struct {
	rank      int
	ops       []op
	truncated bool
	notes     []Diagnostic
	bounds    []boundsHit
	// dims holds the per-rank evaluated array dimensions.
	dims map[string][]val
}

// arrTrack tracks the contents of a small array whose values can feed
// parallel structure (the NAS SP CSIZE idiom). ok turns false — and the
// whole array becomes unknown — on any untrackable store.
type arrTrack struct {
	ok   bool
	vals map[int]val
}

const (
	// maxTrackedElems bounds per-array value tracking.
	maxTrackedElems = 4096
	// maxSumTrips bounds bounded-summation evaluation.
	maxSumTrips = 4096
	// maxBoundsHits caps recorded bounds violations per rank.
	maxBoundsHits = 64
)

// buildTraces runs the abstract evaluator for every rank.
func buildTraces(ctx *Context) []*trace {
	structural := structuralVars(ctx.Program, ctx.Graph)
	traces := make([]*trace, ctx.Ranks)
	for r := 0; r < ctx.Ranks; r++ {
		traces[r] = newEvaluator(ctx, r, structural).run()
	}
	return traces
}

// structuralVars computes the set of variable names that can affect
// parallel structure: communication arguments, control headers enclosing
// communication, condensed-task scaling functions, closed under def/use
// dependencies at name granularity. It is computed directly from the IR
// (independently of the slicer, so the slice pass can audit the slicer
// against it).
func structuralVars(p *ir.Program, g *stg.Graph) map[string]bool {
	rel := map[string]bool{}
	add := func(e ir.Expr) {
		if e != nil {
			ir.ScalarsIn(e, rel, rel)
		}
	}
	var seed func(body []ir.Stmt)
	seed = func(body []ir.Stmt) {
		for _, s := range body {
			switch x := s.(type) {
			case *ir.Send:
				add(x.Dest)
				for _, rg := range x.Section {
					add(rg.Lo)
					add(rg.Hi)
				}
			case *ir.Recv:
				add(x.Src)
				for _, rg := range x.Section {
					add(rg.Lo)
					add(rg.Hi)
				}
			case *ir.Bcast:
				add(x.Root)
			case *ir.For:
				if ir.HasComm(x.Body) {
					add(x.Lo)
					add(x.Hi)
				}
				seed(x.Body)
			case *ir.If:
				if ir.HasComm(x.Then) || ir.HasComm(x.Else) {
					add(x.Cond)
				}
				seed(x.Then)
				seed(x.Else)
			case *ir.Timed:
				seed(x.Body)
			case *ir.Delay:
				add(x.Seconds)
			}
		}
	}
	seed(p.Body)
	if g != nil {
		var rec func(ns []*stg.Node)
		rec = func(ns []*stg.Node) {
			for _, n := range ns {
				if n.Kind == stg.KindCondensed {
					add(n.Units)
				}
				rec(n.Children)
				rec(n.Then)
				rec(n.Else)
			}
		}
		rec(g.Roots)
	}
	for changed := true; changed; {
		changed = false
		ir.Walk(p.Body, func(s ir.Stmt) bool {
			du := ir.StmtDefUse(s)
			hit := false
			for d := range du.Defs {
				if rel[d] {
					hit = true
					break
				}
			}
			if hit {
				for u := range du.Uses {
					if !rel[u] {
						rel[u] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return rel
}

type evaluator struct {
	ctx        *Context
	rank       int
	t          *trace
	env        map[string]val
	arrays     map[string]*arrTrack
	structural map[string]bool
	// mayDepth > 0 while executing under an unknown condition.
	mayDepth int
	// nonUniform > 0 while executing under a rank-dependent condition;
	// definitions made there cannot be assumed equal across ranks.
	nonUniform int
	budget     int
	// curStmt anchors bounds hits raised inside expression evaluation.
	curStmt ir.Stmt
	// msgElems / dummyElems drive the dummy-buffer size check against
	// the compiler's replaced messages.
	msgElems   map[ir.Stmt]ir.Expr
	dummyElems val
	hitSeen    map[string]bool
	noteSeen   map[string]bool
}

func newEvaluator(ctx *Context, rank int, structural map[string]bool) *evaluator {
	ev := &evaluator{
		ctx:        ctx,
		rank:       rank,
		structural: structural,
		env:        map[string]val{},
		arrays:     map[string]*arrTrack{},
		budget:     ctx.Opts.MaxOps,
		hitSeen:    map[string]bool{},
		noteSeen:   map[string]bool{},
		t:          &trace{rank: rank, dims: map[string][]val{}},
	}
	ev.env[ir.BuiltinP] = known(float64(ctx.Ranks), true)
	ev.env[ir.BuiltinMyID] = known(float64(rank), false)
	for _, par := range ctx.Program.Params {
		if v, ok := ctx.Opts.Inputs[par]; ok {
			ev.env[par] = known(v, true)
		} else {
			ev.note("input %s is not bound; dependent structure is approximate", par)
		}
	}
	if ctx.Compiled != nil {
		ev.msgElems = ctx.Compiled.Slice.MsgElems
		if ctx.Compiled.DummyElems != nil {
			ev.dummyElems = ev.eval(ctx.Compiled.DummyElems)
		}
	}
	return ev
}

func (ev *evaluator) run() *trace {
	ev.evalDims()
	ev.block(ev.ctx.Program.Body)
	return ev.t
}

// evalDims evaluates every declared dimension in the start environment
// (inputs, P, myid), recording per-rank sizes and preparing small-array
// value tracking.
func (ev *evaluator) evalDims() {
	for _, d := range ev.ctx.Program.Arrays {
		dims := make([]val, len(d.Dims))
		elems := 1.0
		trackable := true
		for i, e := range d.Dims {
			dims[i] = ev.eval(e)
			if !dims[i].known {
				trackable = false
				continue
			}
			if dims[i].v < 1 {
				ev.hit(nil, false, "array %s dimension %d evaluates to %g (non-positive)",
					d.Name, i+1, dims[i].v)
				trackable = false
				continue
			}
			elems *= dims[i].v
		}
		ev.t.dims[d.Name] = dims
		if trackable && elems <= maxTrackedElems {
			ev.arrays[d.Name] = &arrTrack{ok: true, vals: map[int]val{}}
		} else {
			ev.arrays[d.Name] = &arrTrack{}
		}
	}
}

// note records an Info diagnostic about analysis quality, once.
func (ev *evaluator) note(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if ev.noteSeen[msg] {
		return
	}
	ev.noteSeen[msg] = true
	ev.t.notes = append(ev.t.notes, Diagnostic{
		Pass: "trace", Severity: Info, Program: ev.ctx.Program.Name, Message: msg,
	})
}

// hit records a bounds violation, deduplicated per (stmt, message).
func (ev *evaluator) hit(s ir.Stmt, may bool, format string, args ...interface{}) {
	if len(ev.t.bounds) >= maxBoundsHits {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%p|%s", s, msg)
	if ev.hitSeen[key] {
		return
	}
	ev.hitSeen[key] = true
	ev.t.bounds = append(ev.t.bounds, boundsHit{stmt: s, msg: msg, rank: ev.rank, may: may || ev.mayDepth > 0})
}

// --- expression evaluation ---

func (ev *evaluator) eval(e ir.Expr) val {
	switch x := e.(type) {
	case ir.Num:
		return known(x.Value, true)
	case ir.Scalar:
		return ev.env[x.Name]
	case ir.Idx:
		return ev.readArray(x)
	case ir.Bin:
		l, r := ev.eval(x.L), ev.eval(x.R)
		if !l.known || !r.known {
			return val{}
		}
		v, err := symexpr.ApplyOp(x.Op, l.v, r.v)
		if err != nil {
			return val{}
		}
		return known(v, l.uniform && r.uniform)
	case ir.Call:
		a := ev.eval(x.Arg)
		fn := ir.Intrinsics[x.Name]
		if !a.known || fn == nil {
			return val{}
		}
		return known(fn(a.v), a.uniform)
	case ir.SumE:
		lo, hi := ev.eval(x.Lo), ev.eval(x.Hi)
		if !lo.known || !hi.known {
			return val{}
		}
		loI, hiI := int64(math.Floor(lo.v)), int64(math.Floor(hi.v))
		if hiI-loI+1 > maxSumTrips {
			return val{}
		}
		saved, had := ev.env[x.Index]
		sum := known(0, lo.uniform && hi.uniform)
		for i := loI; i <= hiI; i++ {
			ev.env[x.Index] = known(float64(i), sum.uniform)
			b := ev.eval(x.Body)
			if !b.known {
				sum = val{}
				break
			}
			sum.v += b.v
			sum.uniform = sum.uniform && b.uniform
		}
		if had {
			ev.env[x.Index] = saved
		} else {
			delete(ev.env, x.Index)
		}
		return sum
	}
	return val{}
}

// flatIndex resolves an index list to a flattened offset, checking each
// subscript against the declared dimension. ok is false when any
// subscript or dimension is unknown.
func (ev *evaluator) flatIndex(stmt ir.Stmt, array string, index []ir.Expr) (int, bool) {
	dims := ev.t.dims[array]
	flat, stride := 0, 1
	ok := true
	for d, e := range index {
		iv := ev.eval(e)
		if !iv.known {
			ok = false
			continue
		}
		if iv.v < 1 {
			ev.hit(stmt, false, "index %g of %s dimension %d is below 1", iv.v, array, d+1)
			ok = false
			continue
		}
		if d < len(dims) && dims[d].known {
			if iv.v > dims[d].v {
				ev.hit(stmt, false, "index %g of %s dimension %d exceeds declared size %g",
					iv.v, array, d+1, dims[d].v)
				ok = false
				continue
			}
			flat += (int(iv.v) - 1) * stride
			stride *= int(dims[d].v)
		} else {
			ok = false
		}
	}
	return flat, ok
}

func (ev *evaluator) readArray(x ir.Idx) val {
	flat, ok := ev.flatIndex(ev.curStmt, x.Array, x.Index)
	tr := ev.arrays[x.Array]
	if !ok || tr == nil || !tr.ok {
		return val{}
	}
	return tr.vals[flat]
}

// killArray invalidates an array's tracked contents.
func (ev *evaluator) killArray(name string) {
	if tr := ev.arrays[name]; tr != nil {
		tr.ok = false
		tr.vals = nil
	}
}

func (ev *evaluator) writeArray(stmt ir.Stmt, name string, index []ir.Expr, v val) {
	flat, ok := ev.flatIndex(stmt, name, index)
	tr := ev.arrays[name]
	if tr == nil || !tr.ok {
		return
	}
	if !ok || ev.mayDepth > 0 {
		// Unknown element touched (or uncertain execution): the whole
		// array becomes unknown.
		ev.killArray(name)
		return
	}
	if ev.nonUniform > 0 {
		v.uniform = false
	}
	tr.vals[flat] = v
}

// --- statement execution ---

func (ev *evaluator) block(body []ir.Stmt) {
	for _, s := range body {
		if ev.truncatedNow() {
			return
		}
		ev.stmt(s)
	}
}

func (ev *evaluator) truncatedNow() bool {
	if ev.budget <= 0 {
		if !ev.t.truncated {
			ev.t.truncated = true
			ev.t.notes = append(ev.t.notes, Diagnostic{
				Pass: "trace", Severity: Warning, Program: ev.ctx.Program.Name,
				Message: fmt.Sprintf("analysis budget exhausted on rank %d; trace truncated (raise MaxOps)", ev.rank),
			})
		}
		return true
	}
	return false
}

func (ev *evaluator) stmt(s ir.Stmt) {
	ev.budget--
	ev.curStmt = s
	switch x := s.(type) {
	case *ir.Assign:
		v := ev.eval(x.RHS)
		if ev.mayDepth > 0 {
			v = val{}
		} else if ev.nonUniform > 0 {
			v.uniform = false
		}
		if x.LHS.IsArray() {
			ev.writeArray(s, x.LHS.Name, x.LHS.Index, v)
		} else {
			ev.env[x.LHS.Name] = v
		}
	case *ir.ReadInput:
		if v, ok := ev.ctx.Opts.Inputs[x.Var]; ok && ev.mayDepth == 0 {
			ev.env[x.Var] = known(v, true)
		} else {
			ev.env[x.Var] = val{}
		}
	case *ir.For:
		ev.forStmt(x)
	case *ir.If:
		ev.ifStmt(x)
	case *ir.Send:
		ev.commStmt(s, opSend, x.Dest, x.Tag, x.Array, x.Section)
	case *ir.Recv:
		ev.commStmt(s, opRecv, x.Src, x.Tag, x.Array, x.Section)
		ev.killArray(x.Array)
	case *ir.Allreduce:
		for _, v := range x.Vars {
			ev.env[v] = val{}
		}
		ev.emit(op{kind: opColl, stmt: s, may: ev.mayDepth > 0,
			key: "ALLREDUCE(" + x.Op + ") " + strings.Join(x.Vars, ", ")})
	case *ir.Bcast:
		ev.bcastStmt(x)
	case *ir.Barrier:
		ev.emit(op{kind: opColl, stmt: s, may: ev.mayDepth > 0, key: "BARRIER"})
	case *ir.Delay:
		ev.eval(x.Seconds)
	case *ir.Timed:
		ev.block(x.Body)
	case *ir.ReadTaskTimes:
		// Runtime preamble: rank 0 reads the calibration table and
		// broadcasts. Values are external, hence unknown; the operation
		// itself synchronizes like a collective.
		for _, n := range x.Names {
			ev.env[n] = val{}
		}
		ev.emit(op{kind: opColl, stmt: s, may: ev.mayDepth > 0,
			key: "READ_TASK_TIMES " + strings.Join(x.Names, ", ")})
	}
}

func (ev *evaluator) emit(o op) { ev.t.ops = append(ev.t.ops, o) }

func (ev *evaluator) commStmt(s ir.Stmt, kind opKind, peerE ir.Expr, tag int, array string, sec []ir.Range) {
	peer := ev.eval(peerE)
	o := op{kind: kind, stmt: s, tag: tag, may: ev.mayDepth > 0}
	if peer.known {
		o.peer = int(peer.v)
		o.peerKnown = true
	}
	dims := ev.t.dims[array]
	elems := 1.0
	elemsKnown := true
	for d, rg := range sec {
		lo, hi := ev.eval(rg.Lo), ev.eval(rg.Hi)
		if lo.known && lo.v < 1 {
			ev.hit(s, false, "section lower bound %g of %s dimension %d is below 1", lo.v, array, d+1)
		}
		if hi.known && d < len(dims) && dims[d].known && hi.v > dims[d].v {
			ev.hit(s, false, "section upper bound %g of %s dimension %d exceeds declared size %g",
				hi.v, array, d+1, dims[d].v)
		}
		if lo.known && hi.known {
			n := hi.v - lo.v + 1
			if n < 0 {
				n = 0
			}
			elems *= n
		} else {
			elemsKnown = false
		}
	}
	if elemsKnown {
		o.elems = elems
		o.elemsKnown = true
		// Compiler dummy-buffer audit: a message the slicer routes
		// through the dummy buffer must fit it.
		if _, replaced := ev.msgElems[s]; replaced && ev.dummyElems.known {
			if elems > ev.dummyElems.v {
				ev.hit(s, false, "replaced message (%g elems) exceeds the dummy buffer (%g elems)",
					elems, ev.dummyElems.v)
			}
		}
	}
	ev.emit(o)
}

func (ev *evaluator) bcastStmt(x *ir.Bcast) {
	root := ev.eval(x.Root)
	o := op{kind: opColl, stmt: x, may: ev.mayDepth > 0}
	rootStr := "?"
	if root.known {
		o.peer = int(root.v)
		o.peerKnown = true
		rootStr = fmt.Sprintf("%d", o.peer)
	}
	o.key = "BCAST root=" + rootStr + ": " + strings.Join(x.Vars, ", ")
	for _, v := range x.Vars {
		cur := ev.env[v]
		switch {
		case ev.mayDepth > 0:
			ev.env[v] = val{}
		case root.known && int(root.v) == ev.rank:
			// The root keeps its own value (it is the source).
		case cur.known && cur.uniform:
			// Provably rank-independent: the broadcast is a no-op.
		default:
			ev.env[v] = val{}
		}
	}
	ev.emit(o)
}

func (ev *evaluator) forStmt(x *ir.For) {
	lo, hi := ev.eval(x.Lo), ev.eval(x.Hi)
	bodyComm := ir.HasComm(x.Body)
	if lo.known && hi.known && ev.mayDepth == 0 {
		loI, hiI := int64(math.Floor(lo.v)), int64(math.Floor(hi.v))
		if hiI < loI {
			// Zero-trip loop: the body never executes and no state
			// changes beyond the induction variable.
			ev.env[x.Var] = val{}
			return
		}
		if !bodyComm && !ev.defsStructural(x.Body, x.Var) {
			// Pure computation with no effect on parallel structure:
			// skip the iteration space, invalidate its definitions.
			ev.killDefs(x)
			return
		}
		uniform := lo.uniform && hi.uniform && ev.nonUniform == 0
		for i := loI; i <= hiI; i++ {
			if ev.truncatedNow() {
				return
			}
			ev.env[x.Var] = known(float64(i), uniform)
			ev.block(x.Body)
		}
		ev.env[x.Var] = val{}
		return
	}
	// Unknown trip count (or already uncertain execution).
	if !bodyComm && !ev.defsStructural(x.Body, x.Var) {
		ev.killDefs(x)
		return
	}
	if bodyComm && ev.mayDepth == 0 {
		ev.note("loop %s has an unknown trip count but communicates; approximating one iteration",
			ir.StmtHead(x))
	}
	ev.mayDepth++
	ev.env[x.Var] = val{}
	ev.block(x.Body)
	ev.mayDepth--
	ev.killDefs(x)
}

func (ev *evaluator) ifStmt(x *ir.If) {
	c := ev.eval(x.Cond)
	if c.known && ev.mayDepth == 0 {
		enterNonUniform := !c.uniform
		if enterNonUniform {
			ev.nonUniform++
		}
		if c.v != 0 {
			ev.block(x.Then)
		} else {
			ev.block(x.Else)
		}
		if enterNonUniform {
			ev.nonUniform--
		}
		return
	}
	// Unknown condition: both arms may execute. Walk both to collect
	// may-operations, then invalidate everything either arm defines.
	ev.mayDepth++
	ev.block(x.Then)
	ev.block(x.Else)
	ev.mayDepth--
	ev.killDefs(x)
}

// defsStructural reports whether the body (or the induction variable)
// defines any structure-relevant variable.
func (ev *evaluator) defsStructural(body []ir.Stmt, loopVar string) bool {
	if ev.structural[loopVar] {
		return true
	}
	found := false
	ir.Walk(body, func(s ir.Stmt) bool {
		for d := range ir.StmtDefUse(s).Defs {
			if ev.structural[d] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// killDefs invalidates every variable the statement (including nested
// bodies) defines.
func (ev *evaluator) killDefs(s ir.Stmt) {
	kill := func(name string) {
		if ev.ctx.Program.Array(name) != nil {
			ev.killArray(name)
		} else {
			ev.env[name] = val{}
		}
	}
	ir.Walk([]ir.Stmt{s}, func(st ir.Stmt) bool {
		for d := range ir.StmtDefUse(st).Defs {
			kill(d)
		}
		return true
	})
}

// sortedNames is a small shared helper for deterministic output.
func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
