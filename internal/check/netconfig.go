package check

import (
	"fmt"

	"mpisim/internal/net"
)

// passNetConfig validates the machine model's interconnect
// configuration at the checked rank count: the -topology spec parses,
// the graph (for graph: topologies, the -netjson file) is loadable,
// connected and has positive link parameters, and the -placement policy
// resolves. A bad network configuration thereby fails at check time
// with a diagnostic instead of at simulation start.
//
// The pass is inert (no diagnostics) when no machine model was supplied
// or its topology is flat.
func passNetConfig(c *Context) []Diagnostic {
	m := c.Opts.Machine
	if m == nil {
		return nil
	}
	nw, err := net.Build(m, c.Ranks)
	if err != nil {
		return []Diagnostic{c.diag("netconfig", Error, nil, "invalid network configuration: %v", err)}
	}
	if nw == nil {
		return nil // flat: the analytic model needs no validation
	}
	var diags []Diagnostic
	if nw.Hosts > c.Ranks {
		diags = append(diags, c.diag("netconfig", Warning, nil,
			"topology %s has %d hosts but only %d ranks: %d host(s) idle",
			nw.Spec, nw.Hosts, c.Ranks, nw.Hosts-c.Ranks))
	}
	if nw.MultiRankHosts() && nw.Kind != "bus" {
		diags = append(diags, c.diag("netconfig", Info, nil,
			"placement %s packs %d ranks onto %d hosts: co-resident ranks communicate node-locally, bypassing the %s fabric",
			nw.Placement, c.Ranks, nw.Hosts, nw.Kind))
	}
	return diags
}

// DescribeNetwork summarizes a built network for check-time reporting.
func DescribeNetwork(nw *net.Network) string {
	if nw == nil {
		return "flat (analytic delay model)"
	}
	return fmt.Sprintf("%s: %d hosts, %d links, placement %s, lookahead %.3g s",
		nw.Spec, nw.Hosts, len(nw.Links), nw.Placement, nw.Lookahead())
}
