package check

import (
	"sort"

	"mpisim/internal/ir"
	"mpisim/internal/symexpr"
)

// passBounds checks that communication sections and array subscripts
// stay inside declared dimensions, and that messages the compiler routes
// through the shared dummy buffer actually fit it (the static analogue
// of the slicer's §3.1 buffer sizing).
//
// Two layers cooperate:
//
//   - a symbolic layer forward-substitutes uniquely-defined scalars
//     (b -> ceil(N/P), as the compiler's startup resolution does),
//     converts section-vs-dimension margins to symexpr, folds them under
//     the checked configuration, and decides violations for all ranks at
//     once when the fold reaches a constant;
//   - a concrete layer harvests the violations the trace evaluator
//     observed while abstractly executing each rank (subscripts in
//     unrolled loops, per-rank section bounds, dummy-buffer overflow).
//
// Violations observed on a definite path are errors; those on "may"
// paths, warnings. Inconclusive symbolic margins are silent — the
// concrete layer has already checked every definite operation.
func passBounds(ctx *Context) []Diagnostic {
	var diags []Diagnostic

	// Concrete layer: per-rank observations.
	for _, t := range ctx.Traces {
		for _, h := range t.bounds {
			sev := Error
			if h.may {
				sev = Warning
			}
			d := ctx.diag("bounds", sev, h.stmt, "%s", h.msg)
			d.Ranks = []int{h.rank}
			diags = append(diags, d)
		}
	}

	// Symbolic layer.
	pr := newProver(ctx)
	ir.Walk(ctx.Program.Body, func(s ir.Stmt) bool {
		var array string
		var sec []ir.Range
		switch x := s.(type) {
		case *ir.Send:
			array, sec = x.Array, x.Section
		case *ir.Recv:
			array, sec = x.Array, x.Section
		default:
			return true
		}
		decl := ctx.Program.Array(array)
		if decl == nil || len(decl.Dims) != len(sec) {
			return true // Validate already rejected this shape
		}
		for d := range sec {
			// lo >= 1
			if bad, ranks := pr.disproveNonNeg(ir.Sub(sec[d].Lo, ir.N(1))); bad {
				dg := ctx.diag("bounds", Error, s,
					"section lower bound %s of %s dimension %d is provably below 1",
					sec[d].Lo, array, d+1)
				dg.Ranks = ranks
				diags = append(diags, dg)
			}
			// hi <= dim
			if bad, ranks := pr.disproveNonNeg(ir.Sub(decl.Dims[d], sec[d].Hi)); bad {
				dg := ctx.diag("bounds", Error, s,
					"section upper bound %s of %s dimension %d provably exceeds the declared size %s",
					sec[d].Hi, array, d+1, decl.Dims[d])
				dg.Ranks = ranks
				diags = append(diags, dg)
			}
		}
		return true
	})

	// Dummy-buffer fit: every replaced message must fit the buffer the
	// compiler allocated for the simplified program.
	if ctx.Compiled != nil && ctx.Compiled.DummyElems != nil {
		stmts := make([]ir.Stmt, 0, len(ctx.Compiled.Slice.MsgElems))
		for s := range ctx.Compiled.Slice.MsgElems {
			stmts = append(stmts, s)
		}
		sort.Slice(stmts, func(i, j int) bool { return ctx.Lines[stmts[i]] < ctx.Lines[stmts[j]] })
		for _, s := range stmts {
			elems := ctx.Compiled.Slice.MsgElems[s]
			if bad, ranks := pr.disproveNonNeg(ir.Sub(ctx.Compiled.DummyElems, elems)); bad {
				dg := ctx.diag("bounds", Error, s,
					"replaced message of %s elems provably exceeds the dummy buffer (%s elems)",
					elems, ctx.Compiled.DummyElems)
				dg.Ranks = ranks
				diags = append(diags, dg)
			}
		}
	}
	return diags
}

// prover decides margin expressions under the checked configuration by
// forward substitution plus symbolic folding.
type prover struct {
	ctx  *Context
	defs map[string]ir.Expr // uniquely-defined top-level scalars
	env  symexpr.Env        // inputs + P (myid is bound per query)
}

func newProver(ctx *Context) *prover {
	defs := map[string]ir.Expr{}
	multi := map[string]bool{}
	ir.Walk(ctx.Program.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Assign); ok && !a.LHS.IsArray() {
			if _, seen := defs[a.LHS.Name]; seen {
				multi[a.LHS.Name] = true
			}
			defs[a.LHS.Name] = a.RHS
		}
		return true
	})
	for name := range multi {
		delete(defs, name)
	}
	env := symexpr.Env{ir.BuiltinP: float64(ctx.Ranks)}
	for k, v := range ctx.Opts.Inputs {
		env[k] = v
	}
	return &prover{ctx: ctx, defs: defs, env: env}
}

// resolve forward-substitutes uniquely-defined scalars, mirroring the
// compiler's startup resolution.
func (pr *prover) resolve(e ir.Expr) ir.Expr {
	cur := e
	for depth := 0; depth < 10; depth++ {
		names := map[string]bool{}
		ir.ScalarsIn(cur, names, nil)
		progress := false
		for name := range names {
			if name == ir.BuiltinP || name == ir.BuiltinMyID {
				continue
			}
			if _, bound := pr.env[name]; bound {
				continue
			}
			if rhs, ok := pr.defs[name]; ok && !ir.HasArrayRef(rhs) {
				cur = ir.SubstScalar(cur, name, rhs)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	return cur
}

// disproveNonNeg reports whether the margin expression is provably
// negative for at least one rank under the checked configuration, with
// the violating ranks as witnesses. Inconclusive folds report false: the
// symbolic layer never flags what it cannot decide.
func (pr *prover) disproveNonNeg(margin ir.Expr) (bool, []int) {
	sym, err := ir.ToSym(pr.resolve(ir.Simplify(margin)))
	if err != nil {
		return false, nil
	}
	if c, ok := symexpr.Simplify(symexpr.FoldEnv(sym, pr.env)).(symexpr.Const); ok {
		if c.Value < 0 {
			return true, nil // violated independently of the rank
		}
		return false, nil
	}
	// Rank-dependent: decide per rank.
	var witnesses []int
	for r := 0; r < pr.ctx.Ranks; r++ {
		env := pr.env.Clone()
		env[ir.BuiltinMyID] = float64(r)
		c, ok := symexpr.Simplify(symexpr.FoldEnv(sym, env)).(symexpr.Const)
		if !ok {
			return false, nil // inconclusive for some rank: stay silent
		}
		if c.Value < 0 {
			witnesses = append(witnesses, r)
			if len(witnesses) >= 4 {
				break
			}
		}
	}
	return len(witnesses) > 0, witnesses
}
