package check

import (
	"fmt"
	"strings"

	"mpisim/internal/compiler"
	"mpisim/internal/ir"
	"mpisim/internal/stg"
)

// passSlice audits the compiler's program slice. The simplification of
// §3.2 is only sound if the relevant set — the variables whose values
// can affect parallel behaviour — is closed under def/use dependencies;
// a slicer bug that drops a feeding variable produces a simplified
// program that silently mispredicts. Two independent checks:
//
//   - re-derive the required set from the condensed graph (retained
//     control headers, communication arguments, scaling functions) with
//     a separately-implemented fixpoint, and require the slicer's
//     relevant set to contain it;
//   - scan the emitted simplified program for scalar uses that no
//     earlier statement defines (a retained expression whose defining
//     computation was sliced away).
func passSlice(ctx *Context) []Diagnostic {
	if ctx.Compiled == nil {
		return []Diagnostic{ctx.diag("slice", Info, nil,
			"no compilation result (compiler-emitted or graph-rejected program); slice audit skipped")}
	}
	var diags []Diagnostic
	for _, name := range AuditSlice(ctx.Compiled) {
		diags = append(diags, ctx.diag("slice", Error, nil,
			"slicer dropped variable %q, which parallel structure depends on", name))
	}
	for _, msg := range undefinedUses(ctx.Compiled.Simplified) {
		diags = append(diags, ctx.diag("slice", Error, nil, "%s", msg))
	}
	return diags
}

// AuditSlice re-derives the set of variables the parallel structure
// depends on and returns, sorted, every name the compiler's slice is
// missing. An empty result means the slice is closed.
func AuditSlice(res *compiler.Result) []string {
	required := map[string]bool{}
	add := func(e ir.Expr) {
		if e != nil {
			ir.ScalarsIn(e, required, required)
		}
	}
	// Seed exactly what the simplified program must evaluate: control
	// headers and communication arguments of the condensed graph, and the
	// scaling function of every condensed task.
	var rec func(ns []*stg.Node)
	rec = func(ns []*stg.Node) {
		for _, n := range ns {
			switch n.Kind {
			case stg.KindLoop:
				f := n.Stmts[0].(*ir.For)
				add(f.Lo)
				add(f.Hi)
			case stg.KindBranch:
				br := n.Stmts[0].(*ir.If)
				add(br.Cond)
			case stg.KindComm:
				switch c := n.Stmts[0].(type) {
				case *ir.Send:
					add(c.Dest)
					for _, rg := range c.Section {
						add(rg.Lo)
						add(rg.Hi)
					}
				case *ir.Recv:
					add(c.Src)
					for _, rg := range c.Section {
						add(rg.Lo)
						add(rg.Hi)
					}
				case *ir.Bcast:
					add(c.Root)
				}
			case stg.KindCondensed:
				add(n.Units)
			}
			rec(n.Children)
			rec(n.Then)
			rec(n.Else)
		}
	}
	rec(res.Graph.Roots)
	// Closure under def/use at name granularity, independently of the
	// slicer's own fixpoint.
	for changed := true; changed; {
		changed = false
		ir.Walk(res.Original.Body, func(s ir.Stmt) bool {
			du := ir.StmtDefUse(s)
			hit := false
			for d := range du.Defs {
				if required[d] {
					hit = true
					break
				}
			}
			if hit {
				for u := range du.Uses {
					if !required[u] {
						required[u] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	missing := map[string]bool{}
	for name := range required {
		if name == ir.BuiltinP || name == ir.BuiltinMyID {
			continue
		}
		if !res.Slice.Relevant[name] {
			missing[name] = true
		}
	}
	return sortedNames(missing)
}

// undefinedUses scans a simplified program in statement order for scalar
// uses with no preceding definition anywhere in the program.
func undefinedUses(p *ir.Program) []string {
	if p == nil {
		return nil
	}
	defined := map[string]bool{ir.BuiltinP: true, ir.BuiltinMyID: true}
	for _, par := range p.Params {
		defined[par] = true
	}
	arrays := map[string]bool{}
	for _, d := range p.Arrays {
		arrays[d.Name] = true
	}
	lines := p.StmtLines()
	seen := map[string]bool{}
	var out []string
	report := func(s ir.Stmt, name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		out = append(out, fmt.Sprintf(
			"simplified program uses %q before any definition (line %d: %s); its computation may have been sliced away",
			name, lines[s], strings.TrimSpace(ir.StmtHead(s))))
	}
	ir.Walk(p.Body, func(s ir.Stmt) bool {
		du := ir.StmtDefUse(s)
		switch s.(type) {
		case *ir.Allreduce, *ir.Bcast, *ir.ReadTaskTimes:
			// Collective payload values are deliberately abstracted by
			// the slice (the synchronization is what matters); an
			// undefined reduced variable is not a dropped dependency.
		default:
			for u := range du.Uses {
				if !defined[u] && !arrays[u] {
					report(s, u)
				}
			}
		}
		for d := range du.Defs {
			defined[d] = true
		}
		return true
	})
	return out
}
