package check

import "sort"

// passSendRecv matches point-to-point operations across the resolved
// per-rank traces. Every definite (non-"may") send must have a matching
// receive on its destination rank with the same tag, and vice versa;
// resolved peers must lie on the process grid; sizes are compared along
// each (src, dst, tag) channel in FIFO order.
func passSendRecv(ctx *Context) []Diagnostic {
	var diags []Diagnostic

	type chanKey struct {
		from, to, tag int
	}
	type chanOps struct {
		sends, recvs []op
	}
	channels := map[chanKey]*chanOps{}
	// uncertain is set when any operation has a data-dependent peer or
	// executes conditionally: unmatched counts are then only warnings.
	uncertain := false

	for _, t := range ctx.Traces {
		for _, o := range t.ops {
			if o.kind != opSend && o.kind != opRecv {
				continue
			}
			if o.may || !o.peerKnown {
				uncertain = true
				continue
			}
			if o.peer < 0 || o.peer >= ctx.Ranks {
				word := "send to"
				if o.kind == opRecv {
					word = "receive from"
				}
				d := ctx.diag("sendrecv", Error, o.stmt,
					"%s rank %d is outside the process set 0..%d", word, o.peer, ctx.Ranks-1)
				d.Ranks = []int{t.rank}
				diags = append(diags, d)
				continue
			}
			if o.kind == opSend {
				if o.peer == t.rank {
					d := ctx.diag("sendrecv", Warning, o.stmt,
						"rank %d sends to itself; blocking self-sends deadlock under synchronous semantics", t.rank)
					d.Ranks = []int{t.rank}
					diags = append(diags, d)
				}
				ck := chanKey{from: t.rank, to: o.peer, tag: o.tag}
				c := channels[ck]
				if c == nil {
					c = &chanOps{}
					channels[ck] = c
				}
				c.sends = append(c.sends, o)
			} else {
				ck := chanKey{from: o.peer, to: t.rank, tag: o.tag}
				c := channels[ck]
				if c == nil {
					c = &chanOps{}
					channels[ck] = c
				}
				c.recvs = append(c.recvs, o)
			}
		}
	}
	if ctx.Truncated() {
		uncertain = true
	}

	unmatchedSev := Error
	if uncertain {
		unmatchedSev = Warning
	}
	qualifier := ""
	if uncertain {
		qualifier = " (analysis is approximate: data-dependent communication present)"
	}

	keys := make([]chanKey, 0, len(channels))
	for k := range channels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.tag < b.tag
	})

	for _, k := range keys {
		c := channels[k]
		ns, nr := len(c.sends), len(c.recvs)
		if ns > nr {
			d := ctx.diag("sendrecv", unmatchedSev, c.sends[nr].stmt,
				"send to rank %d tag %d has no matching receive (%d sends, %d receives from rank %d)%s",
				k.to, k.tag, ns, nr, k.from, qualifier)
			d.Ranks = []int{k.from, k.to}
			diags = append(diags, d)
		} else if nr > ns {
			d := ctx.diag("sendrecv", unmatchedSev, c.recvs[ns].stmt,
				"receive from rank %d tag %d has no matching send (%d receives, %d sends to rank %d)%s",
				k.from, k.tag, nr, ns, k.to, qualifier)
			d.Ranks = []int{k.from, k.to}
			diags = append(diags, d)
		}
		n := ns
		if nr < n {
			n = nr
		}
		for i := 0; i < n; i++ {
			s, r := c.sends[i], c.recvs[i]
			if !s.elemsKnown || !r.elemsKnown || s.elems == r.elems {
				continue
			}
			if s.elems > r.elems {
				d := ctx.diag("sendrecv", Error, r.stmt,
					"message of %g elems from rank %d tag %d overflows the receive section of %g elems",
					s.elems, k.from, k.tag, r.elems)
				d.Ranks = []int{k.from, k.to}
				diags = append(diags, d)
			} else {
				d := ctx.diag("sendrecv", Warning, r.stmt,
					"message of %g elems from rank %d tag %d is smaller than the receive section of %g elems",
					s.elems, k.from, k.tag, r.elems)
				d.Ranks = []int{k.from, k.to}
				diags = append(diags, d)
			}
		}
	}
	return diags
}
