package check

import (
	"strings"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/compiler"
	"mpisim/internal/ir"
)

// The mutation suite validates each pass against its defect class: a
// correct application is mutated to contain one injected bug and the
// corresponding pass must report an error the clean program lacked.

// editFirst rewrites the first statement matching pred anywhere in the
// body tree. A nil replacement deletes the statement.
func editFirst(body []ir.Stmt, pred func(ir.Stmt) bool, repl func(ir.Stmt) ir.Stmt) ([]ir.Stmt, bool) {
	for i, s := range body {
		if pred(s) {
			if r := repl(s); r != nil {
				body[i] = r
				return body, true
			}
			return append(body[:i:i], body[i+1:]...), true
		}
		switch x := s.(type) {
		case *ir.For:
			if b, ok := editFirst(x.Body, pred, repl); ok {
				x.Body = b
				return body, true
			}
		case *ir.If:
			if b, ok := editFirst(x.Then, pred, repl); ok {
				x.Then = b
				return body, true
			}
			if b, ok := editFirst(x.Else, pred, repl); ok {
				x.Else = b
				return body, true
			}
		case *ir.Timed:
			if b, ok := editFirst(x.Body, pred, repl); ok {
				x.Body = b
				return body, true
			}
		}
	}
	return body, false
}

func isRecv(s ir.Stmt) bool { _, ok := s.(*ir.Recv); return ok }
func isSend(s ir.Stmt) bool { _, ok := s.(*ir.Send); return ok }

// checkMutant runs the checker on the mutated program and returns the
// errors attributed to the given pass.
func checkMutant(t *testing.T, p *ir.Program, inputs map[string]float64, pass string) []Diagnostic {
	t.Helper()
	res, err := Run(p, Options{Ranks: appRanks, Inputs: inputs})
	if err != nil {
		t.Fatalf("check.Run: %v", err)
	}
	var out []Diagnostic
	for _, d := range res.Diags {
		if d.Pass == pass && d.Severity >= Error {
			out = append(out, d)
		}
	}
	return out
}

func mutantApp(t *testing.T, name string) (*ir.Program, map[string]float64) {
	t.Helper()
	spec, ok := apps.Registry()[name]
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return spec.Build(), spec.Default(appRanks)
}

func TestMutantDroppedRecv(t *testing.T) {
	p, inputs := mutantApp(t, "tomcatv")
	body, ok := editFirst(p.Body, isRecv, func(ir.Stmt) ir.Stmt { return nil })
	if !ok {
		t.Fatal("tomcatv has no recv to drop")
	}
	p.Body = body
	diags := checkMutant(t, p, inputs, "sendrecv")
	if len(diags) == 0 {
		t.Fatal("dropping a recv produced no sendrecv error")
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "unmatched") || strings.Contains(d.Message, "never received") ||
			strings.Contains(d.Message, "no matching") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an unmatched-communication error, got:\n%v", diags)
	}
}

func TestMutantSkewedTag(t *testing.T) {
	p, inputs := mutantApp(t, "tomcatv")
	_, ok := editFirst(p.Body, isRecv, func(s ir.Stmt) ir.Stmt {
		r := s.(*ir.Recv)
		r.Tag += 77
		return r
	})
	if !ok {
		t.Fatal("tomcatv has no recv to skew")
	}
	if diags := checkMutant(t, p, inputs, "sendrecv"); len(diags) == 0 {
		t.Fatal("skewing a recv tag produced no sendrecv error")
	}
}

func TestMutantDivergentCollective(t *testing.T) {
	isColl := func(s ir.Stmt) bool { _, ok := s.(*ir.Allreduce); return ok }
	for _, name := range []string{"tomcatv", "sweep3d"} {
		p, inputs := mutantApp(t, name)
		_, ok := editFirst(p.Body, isColl, func(s ir.Stmt) ir.Stmt {
			// The branch-divergent defect: the collective survives only on
			// ranks 1..P-1, so rank 0's definite sequence is shorter.
			return &ir.If{Cond: ir.GT(ir.S(ir.BuiltinMyID), ir.N(0)), Then: ir.Block(s)}
		})
		if !ok {
			t.Fatalf("%s has no allreduce to wrap", name)
		}
		if diags := checkMutant(t, p, inputs, "collective"); len(diags) == 0 {
			t.Errorf("%s: rank-divergent allreduce produced no collective error", name)
		}
	}
}

func TestMutantShrunkBuffer(t *testing.T) {
	p, inputs := mutantApp(t, "tomcatv")
	var victim string
	_, ok := editFirst(p.Body, isSend, func(s ir.Stmt) ir.Stmt {
		victim = s.(*ir.Send).Array
		return s
	})
	if !ok {
		t.Fatal("tomcatv has no send")
	}
	decl := p.Array(victim)
	if decl == nil {
		t.Fatalf("no declaration for sent array %q", victim)
	}
	decl.Dims[0] = ir.N(2)
	if diags := checkMutant(t, p, inputs, "bounds"); len(diags) == 0 {
		t.Fatalf("shrinking %s to 2 rows produced no bounds error", victim)
	}
}

func TestMutantRecvBeforeSendRing(t *testing.T) {
	// Every rank posts its receive before its send; with no message in
	// flight no receive can complete, a certain deadlock with a full
	// wait-for cycle. Peers use mod() wraparound so each send has a
	// matching receive and sendrecv stays quiet — only the deadlock pass
	// can catch this defect class.
	myid, np := ir.S(ir.BuiltinMyID), ir.S(ir.BuiltinP)
	left := ir.Mod(ir.Add(myid, ir.Sub(np, ir.N(1))), np)
	right := ir.Mod(ir.Add(myid, ir.N(1)), np)
	p := &ir.Program{
		Name:   "ring",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(8)}, Elem: 8}},
		Body: ir.Block(
			&ir.Recv{Src: left, Tag: 5, Array: "A", Section: ir.Sec(ir.N(1), ir.N(8))},
			&ir.Send{Dest: right, Tag: 5, Array: "A", Section: ir.Sec(ir.N(1), ir.N(8))},
		),
	}
	res, err := Run(p, Options{Ranks: appRanks})
	if err != nil {
		t.Fatal(err)
	}
	var hit *Diagnostic
	for i, d := range res.Diags {
		if d.Pass == "deadlock" && d.Severity == Error {
			hit = &res.Diags[i]
		}
	}
	if hit == nil {
		t.Fatalf("recv-before-send ring produced no deadlock error:\n%s", res.Text(Info))
	}
	if !strings.Contains(hit.Message, "wait-for cycle") {
		t.Errorf("deadlock message lacks the wait-for cycle path: %s", hit.Message)
	}
	for _, d := range res.Diags {
		if d.Pass == "sendrecv" && d.Severity >= Error {
			t.Errorf("matched ring should have no sendrecv error: %s", d)
		}
	}
}

func TestMutantTamperedSlice(t *testing.T) {
	// A slicer that silently drops a structural variable must be caught
	// by the independent audit. Simulate the bug by deleting entries from
	// a correct compile result's relevant set: at least one deletion must
	// be detected (variables the re-derived closure does not require may
	// legitimately go unnoticed).
	p, _ := mutantApp(t, "tomcatv")
	res, err := compiler.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if missing := AuditSlice(res); len(missing) != 0 {
		t.Fatalf("clean compile already fails the audit: %v", missing)
	}
	names := make([]string, 0, len(res.Slice.Relevant))
	for name := range res.Slice.Relevant {
		names = append(names, name)
	}
	caught := 0
	for _, name := range names {
		delete(res.Slice.Relevant, name)
		missing := AuditSlice(res)
		res.Slice.Relevant[name] = true
		hit := false
		for _, m := range missing {
			if m == name {
				hit = true
			}
		}
		if hit {
			caught++
		}
	}
	if caught == 0 {
		t.Errorf("no deletion from the relevant set %v was detected", names)
	}
}

func TestMutantSlicedAwayDefinition(t *testing.T) {
	// Deleting the definition of a scalar the simplified program still
	// evaluates models a slicer that retained a use but dropped its
	// computation. undefinedUses must flag at least one such deletion.
	p, _ := mutantApp(t, "tomcatv")
	res, err := compiler.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := undefinedUses(res.Simplified); len(msgs) != 0 {
		t.Fatalf("clean simplified program already has undefined uses: %v", msgs)
	}
	caught := false
	for i, s := range res.Simplified.Body {
		a, ok := s.(*ir.Assign)
		if !ok || a.LHS.IsArray() {
			continue
		}
		mutant := *res.Simplified
		mutant.Body = append(append([]ir.Stmt{}, res.Simplified.Body[:i]...), res.Simplified.Body[i+1:]...)
		for _, msg := range undefinedUses(&mutant) {
			if strings.Contains(msg, `"`+a.LHS.Name+`"`) {
				caught = true
			}
		}
	}
	if !caught {
		t.Error("no deleted top-level definition was flagged as an undefined use")
	}
}
