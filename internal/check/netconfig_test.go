package check

import (
	"strings"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/machine"
)

// runNetConfig checks tomcatv at 8 ranks with the given network
// configuration, running only the netconfig pass.
func runNetConfig(t *testing.T, topo, place string) *Result {
	t.Helper()
	m := machine.IBMSP()
	m.Topology = topo
	m.Placement = place
	spec := apps.Registry()["tomcatv"]
	res, err := Run(spec.Build(), Options{
		Ranks: 8, Inputs: spec.Default(8), Passes: []string{"netconfig"}, Machine: m,
	})
	if err != nil {
		t.Fatalf("check.Run: %v", err)
	}
	return res
}

func TestNetConfigValid(t *testing.T) {
	for _, topo := range []string{"", "flat", "bus", "torus:dims=2x4", "fattree:k=4"} {
		if res := runNetConfig(t, topo, ""); res.HasErrors() {
			t.Errorf("topology %q: unexpected errors:\n%s", topo, res.Text(Error))
		}
	}
}

func TestNetConfigRejectsBadSpecs(t *testing.T) {
	for _, topo := range []string{
		"mesh", "torus", "torus:dims=1x4", "fattree:k=3",
		"bus:lat=-2", "graph:/nonexistent/net.json",
	} {
		res := runNetConfig(t, topo, "")
		if !res.HasErrors() {
			t.Errorf("topology %q: expected a netconfig error", topo)
		}
		found := false
		for _, d := range res.Diags {
			if d.Pass == "netconfig" && d.Severity == Error {
				found = true
			}
		}
		if !found {
			t.Errorf("topology %q: error not attributed to the netconfig pass:\n%s",
				topo, res.Text(Info))
		}
	}
	if res := runNetConfig(t, "torus:dims=2x2", "nearest"); !res.HasErrors() {
		t.Error("unknown placement: expected a netconfig error")
	}
}

func TestNetConfigWarnsIdleHosts(t *testing.T) {
	// 8 ranks on a 16-host fat-tree: half the machine is idle.
	res := runNetConfig(t, "fattree:k=4", "")
	if res.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", res.Text(Error))
	}
	if !strings.Contains(res.Text(Warning), "idle") {
		t.Errorf("expected an idle-hosts warning, got:\n%s", res.Text(Info))
	}
}

func TestNetConfigNotesMultiRankHosts(t *testing.T) {
	// 8 ranks packed onto a 2x2 torus: co-resident ranks bypass the fabric.
	res := runNetConfig(t, "torus:dims=2x2", "")
	if res.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", res.Text(Error))
	}
	if !strings.Contains(res.Text(Info), "node-locally") {
		t.Errorf("expected a multi-rank info note, got:\n%s", res.Text(Info))
	}
}

func TestNetConfigInertWithoutMachine(t *testing.T) {
	spec := apps.Registry()["tomcatv"]
	res, err := Run(spec.Build(), Options{
		Ranks: 8, Inputs: spec.Default(8), Passes: []string{"netconfig"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		if d.Pass == "netconfig" {
			t.Errorf("netconfig should be inert without a machine: %v", d)
		}
	}
}
