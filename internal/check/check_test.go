package check

import (
	"encoding/json"
	"strings"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/ir"
)

// runApp checks a registered application at the given rank count with
// its default inputs.
func runApp(t *testing.T, name string, ranks int) *Result {
	t.Helper()
	spec, ok := apps.Registry()[name]
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	res, err := Run(spec.Build(), Options{Ranks: ranks, Inputs: spec.Default(ranks)})
	if err != nil {
		t.Fatalf("check.Run(%s): %v", name, err)
	}
	return res
}

// appRanks picks a rank count every app supports (nassp needs a square).
const appRanks = 4

func TestAppsClean(t *testing.T) {
	for _, name := range apps.Names() {
		res := runApp(t, name, appRanks)
		if res.HasErrors() {
			t.Errorf("%s: unexpected errors:\n%s", name, res.Text(Error))
		}
	}
}

// TestAppsKnownWarnings pins the expected analysis quality on the real
// workloads: the ghost exchanges of tomcatv and the nearest-neighbour
// pattern of SAMPLE are send-before-receive exchanges, legal under the
// simulator's eager sends but flagged as unsafe under rendezvous.
func TestAppsKnownWarnings(t *testing.T) {
	res := runApp(t, "tomcatv", appRanks)
	if !strings.Contains(res.Text(Warning), "unsafe under synchronous sends") {
		t.Errorf("tomcatv: expected a rendezvous-unsafety warning, got:\n%s", res.Text(Info))
	}
}

func TestPrintParseCheckStability(t *testing.T) {
	for _, name := range apps.Names() {
		spec := apps.Registry()[name]
		orig := spec.Build()
		inputs := spec.Default(appRanks)
		res1, err := Run(orig, Options{Ranks: appRanks, Inputs: inputs})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		reparsed, err := ir.Parse(orig.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		res2, err := Run(reparsed, Options{Ranks: appRanks, Inputs: inputs})
		if err != nil {
			t.Fatalf("%s: recheck: %v", name, err)
		}
		if got, want := res2.Text(Info), res1.Text(Info); got != want {
			t.Errorf("%s: diagnostics changed across print->parse:\noriginal:\n%s\nreparsed:\n%s",
				name, want, got)
		}
	}
}

func TestDiagnosticJSONRoundTrip(t *testing.T) {
	res := runApp(t, "tomcatv", appRanks)
	raw, err := res.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(back.Diags) != len(res.Diags) {
		t.Fatalf("round trip lost diagnostics: %d != %d", len(back.Diags), len(res.Diags))
	}
	for i := range res.Diags {
		if back.Diags[i].String() != res.Diags[i].String() {
			t.Errorf("diag %d changed: %+v vs %+v", i, back.Diags[i], res.Diags[i])
		}
	}
}

func TestSeverityStrings(t *testing.T) {
	cases := map[Severity]string{Info: "info", Warning: "warning", Error: "error"}
	for sev, want := range cases {
		if sev.String() != want {
			t.Errorf("Severity(%d).String() = %q, want %q", int(sev), sev.String(), want)
		}
		raw, err := json.Marshal(sev)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Severity
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if back != sev {
			t.Errorf("severity %v did not round-trip", sev)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("expected error for unknown severity name")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Pass: "sendrecv", Severity: Error, Program: "demo", Line: 7,
		Message: "boom", Ranks: []int{1, 2}}
	got := d.String()
	want := "demo:7: error: [sendrecv] boom (ranks [1 2])"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	d.Line = 0
	d.Ranks = nil
	if got := d.String(); got != "demo: error: [sendrecv] boom" {
		t.Errorf("String() without line = %q", got)
	}
}

func TestPassSelection(t *testing.T) {
	spec := apps.Registry()["tomcatv"]
	res, err := Run(spec.Build(), Options{
		Ranks: appRanks, Inputs: spec.Default(appRanks), Passes: []string{"collective"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		if d.Pass != "collective" && d.Pass != "trace" {
			t.Errorf("pass filter leaked diagnostic from %q: %s", d.Pass, d)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Passes() {
		if p.Name == "" || p.Desc == "" || p.Run == nil {
			t.Errorf("pass %+v incomplete", p)
		}
		if names[p.Name] {
			t.Errorf("duplicate pass %q", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"sendrecv", "deadlock", "collective", "bounds", "slice"} {
		if !names[want] {
			t.Errorf("missing pass %q", want)
		}
	}
}
