package check

import (
	"testing"

	"mpisim/internal/irgen"
)

// Generated programs are well-formed and deadlock-free by construction
// (guarded one-directional ring shifts, unconditional collectives), so
// the checker must accept every one of them without errors: any error is
// a false positive by definition, and any panic a robustness bug.
func TestGeneratedProgramsCheckClean(t *testing.T) {
	const seeds = 60
	for seed := int64(0); seed < seeds; seed++ {
		p, inputs := irgen.Program(seed, irgen.Config{})
		for _, ranks := range []int{1, 3, 4} {
			res, err := Run(p, Options{Ranks: ranks, Inputs: inputs})
			if err != nil {
				t.Fatalf("seed %d ranks %d: %v", seed, ranks, err)
			}
			if res.HasErrors() {
				t.Errorf("seed %d ranks %d: false positive:\n%s\nprogram:\n%s",
					seed, ranks, res.Text(Error), p)
			}
		}
	}
}

// Larger generated programs stress the unrolling budget: the checker may
// degrade to warnings about truncation but must never report an error or
// crash.
func TestGeneratedProgramsBudgetedCheck(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p, inputs := irgen.Program(seed, irgen.Config{MaxNests: 6, MaxTimeSteps: 12})
		res, err := Run(p, Options{Ranks: 4, Inputs: inputs, MaxOps: 200})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.HasErrors() {
			t.Errorf("seed %d under a tight budget: false positive:\n%s", seed, res.Text(Error))
		}
	}
}

var sinkText string

// The property test doubles as a smoke benchmark guard: checking a
// generated program end to end must stay cheap enough to run before
// every simulation (the core fail-fast hook).
func BenchmarkCheckGenerated(b *testing.B) {
	p, inputs := irgen.Program(1, irgen.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(p, Options{Ranks: 4, Inputs: inputs})
		if err != nil {
			b.Fatal(err)
		}
		sinkText = res.Text(Info)
	}
}
