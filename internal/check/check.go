// Package check is the static communication verifier: a multi-pass
// analysis framework over the program IR and the static task graph that
// rejects malformed message-passing programs with actionable diagnostics
// before they reach a simulation worker.
//
// The paper's premise is that the compiler can statically recover the
// parallel structure of an MPI program (STG synthesis, slicing, symbolic
// process sets, §3.1–3.3); this package verifies that structure instead
// of trusting it. Six passes ship by default:
//
//	sendrecv   - resolve symbolic process sets and comm-edge mappings;
//	             flag unmatched sends/recvs, out-of-range peers,
//	             truncating transfers and self-sends.
//	deadlock   - abstract execution of the per-rank communication traces
//	             under the eager-send model; reports blocking cycles with
//	             the cycle's node path, and send/send exchanges that are
//	             unsafe under synchronous (rendezvous) sends.
//	collective - every rank must reach the same collectives in the same
//	             order; collectives under data-dependent conditions are
//	             flagged as potentially divergent.
//	bounds     - symbolic/concrete checks that communication sections and
//	             unrolled array accesses stay within declared dimensions,
//	             and that replaced messages fit the compiler's dummy
//	             buffer (the static analogue of §3.1 buffer sizing).
//	slice      - audits the compiler's program slice: the relevant set
//	             must be closed under def/use dependencies, and the
//	             emitted simplified program must not use a variable the
//	             slicer dropped.
//	netconfig  - validates the machine model's interconnect topology and
//	             rank placement at the checked rank count (spec syntax,
//	             graph connectivity, positive link parameters), so a bad
//	             -topology/-netjson fails at check time.
//
// Analyses run at a concrete configuration (rank count + program inputs),
// resolving the symbolic structure exactly where possible and degrading
// to "may" information (warnings, never errors) where values are
// data-dependent. See DESIGN.md "Static verification" for the
// soundness/completeness caveats of each pass.
package check

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"mpisim/internal/compiler"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/stg"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of gravity. Info findings are
// analysis-quality notes (truncated traces, inconclusive proofs);
// warnings are suspicious-but-legal constructs (send/send exchanges,
// data-dependent collectives); errors are definite defects that would
// hang or corrupt a simulation.
const (
	Info Severity = iota
	Warning
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("check: unknown severity %q", name)
	}
	return nil
}

// Diagnostic is one finding of one pass. Line numbers refer to the
// program's canonical pretty-printed listing (ir.Program.String), which
// is stable across print→parse round trips.
type Diagnostic struct {
	Pass     string   `json:"pass"`
	Severity Severity `json:"severity"`
	Program  string   `json:"program"`
	Line     int      `json:"line,omitempty"`
	Stmt     string   `json:"stmt,omitempty"`
	Message  string   `json:"message"`
	// Ranks lists witness ranks (at most a handful), when the finding is
	// tied to specific processes of the checked configuration.
	Ranks []int `json:"ranks,omitempty"`
}

// String renders the diagnostic in the one-line editor format
// "program:line: severity: [pass] message".
func (d Diagnostic) String() string {
	pos := d.Program
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d", d.Program, d.Line)
	}
	msg := fmt.Sprintf("%s: %s: [%s] %s", pos, d.Severity, d.Pass, d.Message)
	if len(d.Ranks) > 0 {
		msg += fmt.Sprintf(" (ranks %v)", d.Ranks)
	}
	return msg
}

// Pass is one registered analysis.
type Pass struct {
	Name string
	Desc string
	Run  func(*Context) []Diagnostic
}

// Passes returns the registered passes in execution order.
func Passes() []Pass {
	return []Pass{
		{"sendrecv", "match sends to receives across resolved process sets", passSendRecv},
		{"deadlock", "detect blocking-communication cycles per rank trace", passDeadlock},
		{"collective", "verify all ranks reach the same collectives in the same order", passCollective},
		{"bounds", "check sections and indices against declared dimensions and the dummy buffer", passBounds},
		{"slice", "audit the program slice for dropped dependencies", passSlice},
		{"netconfig", "validate the machine model's topology and placement configuration", passNetConfig},
	}
}

// Options configure a verification run.
type Options struct {
	// Ranks is the process count to resolve the symbolic structure at
	// (default 4).
	Ranks int
	// Inputs binds the program's input parameters. Missing inputs make
	// the dependent structure data-dependent ("may") rather than failing.
	Inputs map[string]float64
	// Passes selects a subset by name; nil runs all.
	Passes []string
	// MaxOps bounds the per-rank abstract-execution budget (statement
	// visits); 0 means the default of 1<<20. Exceeding it truncates the
	// trace and downgrades trace-dependent passes to a warning.
	MaxOps int
	// Machine optionally supplies the target machine model so the
	// netconfig pass can validate its topology/placement configuration
	// at this rank count. Nil skips the pass.
	Machine *machine.Model
}

// Context is the shared state handed to every pass.
type Context struct {
	Program *ir.Program
	Opts    Options
	Ranks   int
	// Lines anchors statements to the pretty-printed listing.
	Lines map[ir.Stmt]int
	// Graph and Condensed are the full and condensed static task graphs
	// (nil when the program contains compiler-emitted constructs).
	Graph     *stg.Graph
	Condensed *stg.Graph
	// Compiled is the full compilation result (nil when compilation is
	// not applicable, e.g. for already-simplified programs).
	Compiled *compiler.Result
	// Traces holds the abstract per-rank communication traces.
	Traces []*trace
}

// diag builds a diagnostic anchored at a statement (which may be nil).
func (c *Context) diag(pass string, sev Severity, s ir.Stmt, format string, args ...interface{}) Diagnostic {
	d := Diagnostic{
		Pass:     pass,
		Severity: sev,
		Program:  c.Program.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if s != nil {
		d.Line = c.Lines[s]
		d.Stmt = ir.StmtHead(s)
	}
	return d
}

// Truncated reports whether any rank's trace hit the analysis budget.
func (c *Context) Truncated() bool {
	for _, t := range c.Traces {
		if t.truncated {
			return true
		}
	}
	return false
}

// Result collects the diagnostics of one verification run.
type Result struct {
	Program string       `json:"program"`
	Ranks   int          `json:"ranks"`
	Diags   []Diagnostic `json:"diagnostics"`
}

// Errors counts error-severity findings.
func (r *Result) Errors() int { return r.count(Error) }

// Warnings counts warning-severity findings.
func (r *Result) Warnings() int { return r.count(Warning) }

func (r *Result) count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-severity finding is present.
func (r *Result) HasErrors() bool { return r.Errors() > 0 }

// Text renders every diagnostic at or above min, one per line.
func (r *Result) Text(min Severity) string {
	var sb strings.Builder
	for _, d := range r.Diags {
		if d.Severity >= min {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// JSON renders the machine-readable encoding.
func (r *Result) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Run verifies the program at the given configuration. A non-nil error
// means the checker itself could not run (structurally invalid program,
// bad options); findings about a structurally valid program are returned
// as diagnostics, not errors.
func Run(p *ir.Program, opts Options) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("check: nil program")
	}
	if opts.Ranks <= 0 {
		opts.Ranks = 4
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 1 << 20
	}
	res := &Result{Program: p.Name, Ranks: opts.Ranks}
	if err := p.Validate(); err != nil {
		// Structural invalidity is itself a (fatal) diagnostic: nothing
		// else can run over a malformed tree.
		res.Diags = append(res.Diags, Diagnostic{
			Pass: "validate", Severity: Error, Program: p.Name, Message: err.Error(),
		})
		return res, nil
	}
	ctx := &Context{
		Program: p,
		Opts:    opts,
		Ranks:   opts.Ranks,
		Lines:   p.StmtLines(),
	}
	// Graph + compile: only for source programs. Compiler-emitted
	// programs (Delay/Timed/ReadTaskTimes) are checked on traces alone.
	if g, err := stg.Build(p); err == nil {
		ctx.Graph = g
		if comp, err := compiler.Compile(p); err == nil {
			ctx.Compiled = comp
			ctx.Condensed = comp.Graph
		} else {
			res.Diags = append(res.Diags, Diagnostic{
				Pass: "slice", Severity: Warning, Program: p.Name,
				Message: fmt.Sprintf("compilation failed, slice audit skipped: %v", err),
			})
		}
	}
	ctx.Traces = buildTraces(ctx)
	for _, t := range ctx.Traces {
		res.Diags = append(res.Diags, t.notes...)
	}
	enabled := map[string]bool{}
	for _, name := range opts.Passes {
		enabled[name] = true
	}
	for _, pass := range Passes() {
		if len(enabled) > 0 && !enabled[pass.Name] {
			continue
		}
		res.Diags = append(res.Diags, pass.Run(ctx)...)
	}
	res.Diags = dedupe(res.Diags)
	return res, nil
}

// dedupe removes repeated (pass, line, message) findings and orders the
// rest by line, then pass, then message, so output is deterministic and
// stable across print→parse round trips.
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s|%d|%d|%s", d.Pass, d.Severity, d.Line, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Pass != out[j].Pass {
			return out[i].Pass < out[j].Pass
		}
		return out[i].Message < out[j].Message
	})
	return out
}
