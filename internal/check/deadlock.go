package check

import (
	"fmt"
	"strings"

	"mpisim/internal/ir"
)

// passDeadlock simulates the definite per-rank communication traces to
// completion under two progress models and reports configurations that
// cannot terminate:
//
//   - eager sends (the simulator's model, and the buffered reality of
//     small MPI messages): a send always completes; a receive blocks
//     until a matching message is in flight; collectives block until
//     every rank arrives. A stuck state here is a definite deadlock and
//     is reported as an error, with the wait-for cycle's node path.
//   - synchronous (rendezvous) sends: a send additionally blocks until
//     its matching receive is posted. Programs that only terminate under
//     eager semantics — the classic head-to-head SEND/SEND exchange —
//     are legal for this simulator but unsafe MPI, and are reported as
//     warnings.
//
// Operations with data-dependent peers or conditional execution are
// excluded (they advance unconditionally), so cycles through them are
// not detected; an Info note records this degradation.
func passDeadlock(ctx *Context) []Diagnostic {
	var diags []Diagnostic
	traces := make([][]op, ctx.Ranks)
	excluded := false
	for r, t := range ctx.Traces {
		traces[r] = t.ops
		for _, o := range t.ops {
			if o.may || (o.kind != opColl && !o.peerKnown) {
				excluded = true
			}
		}
	}
	if excluded {
		diags = append(diags, ctx.diag("deadlock", Info, nil,
			"data-dependent communication present; deadlock analysis covers definite operations only"))
	}
	if ctx.Truncated() {
		diags = append(diags, ctx.diag("deadlock", Warning, nil,
			"trace truncated by the analysis budget; deadlock analysis is incomplete"))
		return diags
	}

	if stuck, waits := simulate(ctx, traces, false); stuck {
		// With excluded operations the stuck state may be an analysis
		// artifact, not a certain hang: degrade to a warning.
		sev, prefix := Error, "deadlock: "
		if excluded {
			sev, prefix = Warning, "possible deadlock (approximate analysis): "
		}
		diags = append(diags, reportStuck(ctx, traces, waits, sev, prefix))
		return diags
	}
	if stuck, waits := simulate(ctx, traces, true); stuck {
		diags = append(diags, reportStuck(ctx, traces, waits, Warning,
			"unsafe under synchronous sends: "))
	}
	return diags
}

// waitState is each rank's program counter at the stuck point.
type waitState struct {
	pc []int
}

// simulate advances all ranks until every trace is consumed or no rank
// can progress. rendezvous selects the synchronous-send model. It
// returns the stuck state when the system cannot terminate.
func simulate(ctx *Context, traces [][]op, rendezvous bool) (bool, waitState) {
	n := len(traces)
	pc := make([]int, n)
	type chanKey struct{ from, to, tag int }
	inflight := map[chanKey]int{}

	// skippable reports operations the simulation advances through
	// unconditionally: uncertain ops and out-of-range peers (the latter
	// are sendrecv-pass errors; blocking on them here would duplicate).
	skippable := func(o op) bool {
		if o.may {
			return true
		}
		if o.kind == opColl {
			return false
		}
		return !o.peerKnown || o.peer < 0 || o.peer >= n
	}

	done := func() bool {
		for r := 0; r < n; r++ {
			if pc[r] < len(traces[r]) {
				return false
			}
		}
		return true
	}

	for {
		progressed := false
		// Point-to-point progress.
		for r := 0; r < n; r++ {
			for pc[r] < len(traces[r]) {
				o := traces[r][pc[r]]
				if skippable(o) {
					pc[r]++
					progressed = true
					continue
				}
				advanced := false
				switch o.kind {
				case opSend:
					if !rendezvous {
						inflight[chanKey{r, o.peer, o.tag}]++
						advanced = true
					} else if p := o.peer; pc[p] < len(traces[p]) {
						// Synchronous: complete only against a posted
						// matching receive at the peer's current op.
						po := traces[p][pc[p]]
						if po.kind == opRecv && !skippable(po) && po.peer == r && po.tag == o.tag {
							pc[p]++
							advanced = true
						}
					}
				case opRecv:
					ck := chanKey{o.peer, r, o.tag}
					if !rendezvous {
						if inflight[ck] > 0 {
							inflight[ck]--
							advanced = true
						}
					}
					// Under rendezvous, receives complete from the send
					// side (handled in the opSend case above).
				}
				if !advanced {
					break
				}
				pc[r]++
				progressed = true
			}
		}
		// Collective progress: all unfinished ranks must sit at the same
		// collective.
		allAtColl := true
		var key string
		first := true
		for r := 0; r < n; r++ {
			if pc[r] >= len(traces[r]) {
				allAtColl = false
				break
			}
			o := traces[r][pc[r]]
			if o.kind != opColl || o.may {
				allAtColl = false
				break
			}
			if first {
				key = o.key
				first = false
			} else if o.key != key {
				allAtColl = false
				break
			}
		}
		if allAtColl && !first {
			for r := 0; r < n; r++ {
				pc[r]++
			}
			progressed = true
		}
		if done() {
			return false, waitState{}
		}
		if !progressed {
			return true, waitState{pc: pc}
		}
	}
}

// reportStuck renders a stuck simulation state as a diagnostic: a
// wait-for cycle when one exists, otherwise the first blocked rank's
// dependency chain.
func reportStuck(ctx *Context, traces [][]op, ws waitState, sev Severity, prefix string) Diagnostic {
	n := len(traces)
	// waitsOn returns the set of ranks the blocked rank is waiting for.
	waitsOn := func(r int) []int {
		if ws.pc[r] >= len(traces[r]) {
			return nil
		}
		o := traces[r][ws.pc[r]]
		switch o.kind {
		case opSend, opRecv:
			if o.peerKnown && o.peer >= 0 && o.peer < n {
				return []int{o.peer}
			}
		case opColl:
			var out []int
			for s := 0; s < n; s++ {
				if s == r {
					continue
				}
				if ws.pc[s] >= len(traces[s]) {
					out = append(out, s)
					continue
				}
				so := traces[s][ws.pc[s]]
				if so.kind != opColl || so.key != o.key {
					out = append(out, s)
				}
			}
			return out
		}
		return nil
	}
	describeAt := func(r int) string {
		if ws.pc[r] >= len(traces[r]) {
			return fmt.Sprintf("rank %d (finished)", r)
		}
		o := traces[r][ws.pc[r]]
		line := ctx.Lines[o.stmt]
		if line > 0 {
			return fmt.Sprintf("rank %d at %s (line %d)", r, o.describe(), line)
		}
		return fmt.Sprintf("rank %d at %s", r, o.describe())
	}

	// DFS for a cycle over the first wait-for edge of each rank.
	cycle := findCycle(n, func(r int) []int { return waitsOn(r) })
	var sb strings.Builder
	sb.WriteString(prefix)
	var anchor op
	haveAnchor := false
	if len(cycle) > 0 {
		parts := make([]string, 0, len(cycle)+1)
		for _, r := range cycle {
			parts = append(parts, describeAt(r))
		}
		parts = append(parts, fmt.Sprintf("rank %d", cycle[0]))
		sb.WriteString("wait-for cycle ")
		sb.WriteString(strings.Join(parts, " -> "))
		if ws.pc[cycle[0]] < len(traces[cycle[0]]) {
			anchor = traces[cycle[0]][ws.pc[cycle[0]]]
			haveAnchor = true
		}
	} else {
		// No cycle: some rank waits on ranks that terminated or diverged.
		for r := 0; r < n; r++ {
			if ws.pc[r] < len(traces[r]) {
				deps := waitsOn(r)
				sb.WriteString(describeAt(r))
				sb.WriteString(" blocks forever")
				if len(deps) > 0 {
					sb.WriteString(fmt.Sprintf(" waiting on rank %d", deps[0]))
				}
				anchor = traces[r][ws.pc[r]]
				haveAnchor = true
				break
			}
		}
	}
	d := Diagnostic{
		Pass: "deadlock", Severity: sev, Program: ctx.Program.Name, Message: sb.String(),
	}
	if haveAnchor && anchor.stmt != nil {
		d.Line = ctx.Lines[anchor.stmt]
		d.Stmt = ir.StmtHead(anchor.stmt)
	}
	return d
}

// findCycle finds a cycle among blocked ranks following wait-for edges,
// returning the ranks along the cycle in order (empty when none).
func findCycle(n int, edges func(int) []int) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(r int) bool
	dfs = func(r int) bool {
		color[r] = gray
		for _, s := range edges(r) {
			if color[s] == gray {
				// Unwind from r back to s.
				cycle = append(cycle, s)
				for v := r; v != s; v = parent[v] {
					cycle = append(cycle, v)
				}
				// Reverse into forward order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
			if color[s] == white {
				parent[s] = r
				if dfs(s) {
					return true
				}
			}
		}
		color[r] = black
		return false
	}
	for r := 0; r < n; r++ {
		if color[r] == white && dfs(r) {
			return cycle
		}
	}
	return nil
}
