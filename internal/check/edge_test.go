package check

import (
	"strings"
	"testing"

	"mpisim/internal/ir"
)

// assertClean fails when the result carries warnings or errors (info
// notes are allowed).
func assertClean(t *testing.T, res *Result) {
	t.Helper()
	for _, d := range res.Diags {
		if d.Severity >= Warning {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func edgeRun(t *testing.T, p *ir.Program, inputs map[string]float64) *Result {
	t.Helper()
	res, err := Run(p, Options{Ranks: appRanks, Inputs: inputs})
	if err != nil {
		t.Fatalf("check.Run(%s): %v", p.Name, err)
	}
	return res
}

// A send inside a zero-trip loop is never executed: no unmatched-send
// error and no deadlock report. (The symbolic bounds layer is
// deliberately flow-insensitive — a provably out-of-range section is a
// defect even in dead code — so the section here is in range.)
func TestEdgeZeroTripLoop(t *testing.T) {
	p := &ir.Program{
		Name:   "zerotrip",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(8)}, Elem: 8}},
		Body: ir.Block(
			ir.Loop("", "i", ir.N(5), ir.N(4),
				&ir.Send{Dest: ir.N(0), Tag: 1, Array: "A",
					Section: ir.Sec(ir.N(1), ir.N(8))}),
			&ir.Barrier{},
		),
	}
	assertClean(t, edgeRun(t, p, nil))
}

// Communication guarded by a condition no rank satisfies (an empty
// process set) must not be reported as unmatched.
func TestEdgeEmptyProcessSet(t *testing.T) {
	p := &ir.Program{
		Name:   "emptyset",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(8)}, Elem: 8}},
		Body: ir.Block(
			&ir.If{Cond: ir.LT(ir.S(ir.BuiltinMyID), ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.N(0), Tag: 1, Array: "A", Section: ir.Sec(ir.N(1), ir.N(8))},
				&ir.Recv{Src: ir.N(0), Tag: 2, Array: "A", Section: ir.Sec(ir.N(1), ir.N(8))},
			)},
		),
	}
	assertClean(t, edgeRun(t, p, nil))
}

// A program with no communication at all exercises every pass's empty
// case (and the STG builder's comm-free condensation).
func TestEdgeNoCommunication(t *testing.T) {
	p := &ir.Program{
		Name:   "nocomm",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.S("N")}, Elem: 8}},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.Loop("", "i", ir.N(1), ir.S("N"),
				ir.SetA("A", ir.IX(ir.S("i")), ir.Mul(ir.S("i"), ir.N(2)))),
		),
	}
	assertClean(t, edgeRun(t, p, map[string]float64{"N": 64}))
}

// A collective reached only when received data satisfies a predicate —
// the Sweep3D flux-fixup shape — cannot be proven consistent and must
// surface as a data-dependent-collective warning, not an error.
func TestEdgeDataDependentCollective(t *testing.T) {
	myid, np := ir.S(ir.BuiltinMyID), ir.S(ir.BuiltinP)
	p := &ir.Program{
		Name:   "fixup",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(4)}, Elem: 8}},
		Body: ir.Block(
			&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 3, Array: "A",
					Section: ir.Sec(ir.N(1), ir.N(4))})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(np, ir.N(1))), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 3, Array: "A",
					Section: ir.Sec(ir.N(1), ir.N(4))})},
			&ir.If{Cond: ir.LT(ir.At("A", ir.N(1)), ir.N(0)), Then: ir.Block(
				&ir.Allreduce{Op: "sum", Vars: []string{"fix"}})},
		),
	}
	res := edgeRun(t, p, nil)
	if res.HasErrors() {
		t.Fatalf("data-dependent collective must not be an error:\n%s", res.Text(Error))
	}
	if !strings.Contains(res.Text(Warning), "data-dependent condition") {
		t.Errorf("expected a data-dependent collective warning, got:\n%s", res.Text(Info))
	}
}
