package check

import "fmt"

// passCollective verifies that every rank reaches the same collective
// operations in the same order. The per-rank traces resolve the
// process-set guards exactly, so a collective skipped (or reordered) on
// a subset of ranks — the branch-divergent Barrier/Allreduce defect —
// shows up as diverging definite sequences and is an error. Collectives
// under data-dependent conditions cannot be sequenced definitely and are
// reported as warnings instead.
func passCollective(ctx *Context) []Diagnostic {
	var diags []Diagnostic

	// Data-dependent collectives: warn once per statement.
	warned := map[string]bool{}
	for _, t := range ctx.Traces {
		for _, o := range t.ops {
			if o.kind != opColl || !o.may {
				continue
			}
			key := fmt.Sprintf("%p", o.stmt)
			if warned[key] {
				continue
			}
			warned[key] = true
			diags = append(diags, ctx.diag("collective", Warning, o.stmt,
				"%s executes under a data-dependent condition; ranks may diverge", o.key))
		}
	}

	// Bcast root sanity (roots are carried on collective ops).
	for _, t := range ctx.Traces {
		for _, o := range t.ops {
			if o.kind != opColl || o.stmt == nil {
				continue
			}
			if isBcast(o) && o.peerKnown && (o.peer < 0 || o.peer >= ctx.Ranks) {
				d := ctx.diag("collective", Error, o.stmt,
					"bcast root %d is outside the process set 0..%d", o.peer, ctx.Ranks-1)
				d.Ranks = []int{t.rank}
				diags = append(diags, d)
			}
			if isBcast(o) && !o.peerKnown && !o.may {
				diags = append(diags, ctx.diag("collective", Warning, o.stmt,
					"bcast root is data-dependent; ranks may disagree on the root"))
			}
		}
	}

	if ctx.Truncated() {
		diags = append(diags, ctx.diag("collective", Warning, nil,
			"trace truncated by the analysis budget; collective-consistency analysis is incomplete"))
		return diags
	}

	// Definite sequence comparison against rank 0.
	seqs := make([][]op, ctx.Ranks)
	for r, t := range ctx.Traces {
		for _, o := range t.ops {
			if o.kind == opColl && !o.may {
				seqs[r] = append(seqs[r], o)
			}
		}
	}
	base := seqs[0]
	for r := 1; r < ctx.Ranks; r++ {
		cur := seqs[r]
		limit := len(base)
		if len(cur) < limit {
			limit = len(cur)
		}
		diverged := false
		for i := 0; i < limit; i++ {
			if base[i].key != cur[i].key {
				d := ctx.diag("collective", Error, cur[i].stmt,
					"collective sequence diverges at position %d: rank 0 reaches %s (line %d), rank %d reaches %s",
					i+1, base[i].key, ctx.Lines[base[i].stmt], r, cur[i].key)
				d.Ranks = []int{0, r}
				diags = append(diags, d)
				diverged = true
				break
			}
		}
		if diverged {
			continue
		}
		if len(cur) != len(base) {
			longer, shorter := 0, r
			seq := base
			if len(cur) > len(base) {
				longer, shorter = r, 0
				seq = cur
			}
			extra := seq[limit]
			d := ctx.diag("collective", Error, extra.stmt,
				"rank %d reaches %d collectives but rank %d reaches %d; first unmatched: %s",
				longer, len(seq), shorter, limit, extra.key)
			d.Ranks = []int{0, r}
			diags = append(diags, d)
		}
	}
	return diags
}

func isBcast(o op) bool {
	return len(o.key) >= 5 && o.key[:5] == "BCAST"
}
