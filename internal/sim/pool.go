package sim

import "sync"

// Message pooling, so steady-state simulation is allocation-free.
// (Events used to be pooled too; they are plain values inside per-worker
// slabs now — see event.go — so the only pooled type left is *Message.)
//
// Ownership rules (see also DESIGN.md "Kernel performance"):
//
//   - messages are allocated by Send and handed to the receiver by Recv.
//     The receiver owns the message from then on and MAY return it with
//     FreeMessage once it is done with every field (including Payload);
//     freeing is optional — unfreed messages fall to the garbage
//     collector — and freeing twice panics.
//
// Each worker keeps a private free list, sized from its share of the
// spawned processes at Run (see Kernel.Run). It is only touched by
// goroutines holding that worker's run token (the driver or the single
// running process), so no locking is needed; the shared sync.Pool
// backstops it, absorbing cross-worker and cross-window imbalance and
// letting idle windows shed memory under GC pressure.

var messagePool = sync.Pool{New: func() interface{} { return new(Message) }}

// minFreeList is the free-list bound floor; workers owning more
// processes scale the bound with their share (msgCap) so fan-heavy
// workloads at large rank counts stay inside the worker-local list.
const minFreeList = 1 << 12

// newMessage returns a live message. All exported fields are stale; Send
// assigns every one.
func (w *worker) newMessage() *Message {
	var m *Message
	if n := len(w.freeMsgs) - 1; n >= 0 {
		m = w.freeMsgs[n]
		w.freeMsgs[n] = nil
		w.freeMsgs = w.freeMsgs[:n]
		if w.obs != nil {
			w.obs.poolMsgHit++
		}
	} else {
		m = messagePool.Get().(*Message)
		if w.obs != nil {
			w.obs.poolMsgMiss++
		}
	}
	m.live = true
	return m
}

// freeMessage recycles a received message into the receiver's worker.
func (w *worker) freeMessage(m *Message) {
	if !m.live {
		panic("sim: message double-free (or free of a message not obtained from Recv)")
	}
	m.live = false
	m.Payload = nil // drop the payload reference for the garbage collector
	if len(w.freeMsgs) < w.msgCap {
		w.freeMsgs = append(w.freeMsgs, m)
		return
	}
	messagePool.Put(m)
}
