package sim

import "sync"

// Object pooling for the two hot-path allocations, *event and *Message,
// so steady-state simulation is allocation-free.
//
// Ownership rules (see also DESIGN.md "Kernel performance"):
//
//   - events are kernel-internal: allocated by Send/Sleep/Run, freed by
//     the worker loop the moment they are popped. Cross-worker events are
//     allocated from the sender's worker and freed into the destination
//     worker's list.
//   - messages are allocated by Send and handed to the receiver by Recv.
//     The receiver owns the message from then on and MAY return it with
//     FreeMessage once it is done with every field (including Payload);
//     freeing is optional — unfreed messages fall to the garbage
//     collector — and freeing twice panics.
//
// Each worker keeps private free lists. They are only touched by
// goroutines holding that worker's run token (the driver or the single
// running process), so no locking is needed; the shared sync.Pools
// backstop them, absorbing cross-worker and cross-window imbalance and
// letting idle windows shed memory under GC pressure.

var eventPool = sync.Pool{New: func() interface{} { return new(event) }}

var messagePool = sync.Pool{New: func() interface{} { return new(Message) }}

// maxFreeList bounds each worker-local free list; overflow spills to the
// shared pools.
const maxFreeList = 1 << 12

// newEvent returns a live event. All fields except live are stale; the
// caller must assign every one it relies on.
func (w *worker) newEvent() *event {
	var e *event
	if n := len(w.freeEvents) - 1; n >= 0 {
		e = w.freeEvents[n]
		w.freeEvents[n] = nil
		w.freeEvents = w.freeEvents[:n]
		if w.obs != nil {
			w.obs.poolEventHit++
		}
	} else {
		e = eventPool.Get().(*event)
		if w.obs != nil {
			w.obs.poolEventMiss++
		}
	}
	e.live = true
	return e
}

// freeEvent recycles a popped event. Double-freeing panics: it would let
// one event sit in two queues and silently corrupt the simulation.
func (w *worker) freeEvent(e *event) {
	if !e.live {
		panic("sim: event double-free")
	}
	e.live = false
	e.msg = nil
	if len(w.freeEvents) < maxFreeList {
		w.freeEvents = append(w.freeEvents, e)
		return
	}
	eventPool.Put(e)
}

// newMessage returns a live message. All exported fields are stale; Send
// assigns every one.
func (w *worker) newMessage() *Message {
	var m *Message
	if n := len(w.freeMsgs) - 1; n >= 0 {
		m = w.freeMsgs[n]
		w.freeMsgs[n] = nil
		w.freeMsgs = w.freeMsgs[:n]
		if w.obs != nil {
			w.obs.poolMsgHit++
		}
	} else {
		m = messagePool.Get().(*Message)
		if w.obs != nil {
			w.obs.poolMsgMiss++
		}
	}
	m.live = true
	return m
}

// freeMessage recycles a received message into the receiver's worker.
func (w *worker) freeMessage(m *Message) {
	if !m.live {
		panic("sim: message double-free (or free of a message not obtained from Recv)")
	}
	m.live = false
	m.Payload = nil // drop the payload reference for the garbage collector
	if len(w.freeMsgs) < maxFreeList {
		w.freeMsgs = append(w.freeMsgs, m)
		return
	}
	messagePool.Put(m)
}
