package sim

import "fmt"

// Continuation scheduling: the kernel's native fast path.
//
// A classic process body is an arbitrary blocking function — the kernel
// cannot suspend it without parking its goroutine, so every block/wake
// costs a channel operation and a goroutine switch. A continuation
// process instead describes its behaviour as a chain of run-to-completion
// handlers: each handler runs on the worker's own goroutine, arms at most
// one wait (WaitRecv/WaitRecvFn/WaitSleep) and returns the next handler
// (or nil when the process is finished). The kernel resumes the chain
// inline when the wait is satisfied — zero goroutines, zero channel
// operations, and all hot state in the worker-owned slot array.
//
// Event order is identical to the classic path by construction: a
// handler runs exactly where the classic body would have run between two
// blocking calls (same completeRecv accounting before it, same wake/
// delivery event consumed), and an armed receive whose match already
// arrived continues the chain immediately, exactly like the classic
// recvMatched fast path. Config.ForceGoroutine routes continuation
// processes through a classic blocking-body driver instead, which the
// scheduler-equivalence tests use to pin the two paths byte-for-byte
// against each other.

// Cont is one resumable handler of a continuation process. m is the
// message that satisfied the armed receive (nil on start and after a
// sleep). The handler must either return nil (process finished) or arm
// exactly one wait and return the next handler.
type Cont func(p *Proc, m *Message) Cont

// armKind records which wait a handler armed before returning.
type armKind uint8

const (
	armNone armKind = iota
	armRecv
	armSleep
)

// errContNoWait is the panic value for a handler that returned a next
// continuation without arming a wait. It is a plain value (not a
// distinct type) so the native inline path and the ForceGoroutine driver
// produce byte-identical *PanicError results.
const errContNoWait = "sim: continuation returned without arming a wait (arm WaitRecv/WaitRecvFn/WaitSleep or return nil)"

// SpawnCont registers a continuation process starting at the given
// handler. Like Spawn it must precede Run; the process id equals the
// spawn order. Continuation processes own no goroutine and no resume
// channel (unless Config.ForceGoroutine reroutes them).
func (k *Kernel) SpawnCont(name string, start Cont) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	if start == nil {
		panic("sim: SpawnCont with nil start continuation")
	}
	p := &Proc{
		id:     len(k.procs),
		name:   name,
		kernel: k,
		cont0:  start,
	}
	k.procs = append(k.procs, p)
	return p
}

// WaitRecv arms a (source, tag) receive for the current handler: the
// next handler in the chain runs with the earliest matching message, its
// clock advanced past the arrival exactly as RecvSrcTag would have.
// src and tag each either name an exact value or are the wildcard Any.
// Must be called from inside a continuation handler.
func (p *Proc) WaitRecv(src, tag int) {
	s := p.armWait(armRecv)
	s.matchMode, s.matchSrc, s.matchTag = matchSrcTag, src, tag
}

// WaitRecvFn arms a predicate receive (the continuation counterpart of
// Recv). The closure is dropped once a message matches.
func (p *Proc) WaitRecvFn(match func(*Message) bool) {
	s := p.armWait(armRecv)
	s.matchMode, s.matchFn = matchFunc, match
}

// WaitSleep arms a sleep until the given absolute simulated time (the
// continuation counterpart of Sleep). Sleeping into the past is a no-op:
// the next handler runs immediately, with the clock unchanged.
func (p *Proc) WaitSleep(until Time) {
	s := p.armWait(armSleep)
	s.sleepUntil = until
}

// armWait validates and records the arm; handlers arm at most one wait.
func (p *Proc) armWait(kind armKind) *procSlot {
	s := p.slot
	if !s.inHandler {
		panic(fmt.Sprintf("sim: Wait* outside a continuation handler on proc %d", p.id))
	}
	if s.armKind != armNone {
		panic(fmt.Sprintf("sim: continuation handler on proc %d armed two waits", p.id))
	}
	s.armKind = kind
	return s
}

// runCont advances a continuation process as far as it can go without a
// real wait: handlers run back-to-back while their armed receives are
// already satisfiable (the inline analogue of the classic recvMatched
// fast path) or their sleeps lie in the past. Called from runLoop with
// the worker's run token; never blocks, never yields the goroutine.
// m is the delivery that satisfied the armed receive (nil on start and
// wake).
func (w *worker) runCont(p *Proc, m *Message) {
	s := p.slot
	if s.state == stBlocked {
		w.contWaiting--
	}
	for {
		if m != nil {
			// A matched receive: identical completion to recvMatched.
			s.matchMode, s.matchFn = matchNone, nil
			p.completeRecv(m)
		} else if s.state == stBlocked {
			// Waking from an armed sleep.
			if s.sleepUntil > s.now {
				s.now = s.sleepUntil
			}
		}
		s.state = stRunnable
		cont := s.cont
		s.cont = nil
		if w.obs != nil {
			w.obs.conts++
		}
		next := w.invokeCont(p, cont, m)
		m = nil
		if next == nil {
			// Finished (or the handler panicked; invokeCont captured it).
			s.armKind = armNone
			s.matchMode, s.matchFn = matchNone, nil
			s.state = stDone
			s.stats.FinishTime = s.now
			return
		}
		s.cont = next
		switch s.armKind {
		case armRecv:
			s.armKind = armNone
			if mm := p.takeMatched(); mm != nil {
				m = mm
				continue
			}
			s.state = stBlocked
			w.contWaiting++
			return
		case armSleep:
			s.armKind = armNone
			if s.sleepUntil <= s.now {
				continue // sleep into the past: run the next handler now
			}
			w.queue.push(event{t: s.sleepUntil, proc: p.id, seq: p.nextSeq(), kind: evWake, dst: p.id})
			s.state = stBlocked // matchMode is matchNone: arrivals queue in the mailbox
			w.contWaiting++
			return
		default:
			// Mirror a body panic: same error, same guard trip, and the
			// worker goroutine survives to keep draining its window.
			w.contPanic(p, errContNoWait)
			s.cont = nil
			s.state = stDone
			s.stats.FinishTime = s.now
			return
		}
	}
}

// invokeCont runs one handler, capturing panics exactly as the classic
// run() does for bodies — the panic must not unwind the worker (or
// donated process) goroutine executing the event loop.
func (w *worker) invokeCont(p *Proc, cont Cont, m *Message) (next Cont) {
	s := p.slot
	s.inHandler = true
	defer func() {
		s.inHandler = false
		if r := recover(); r != nil {
			w.contPanic(p, r)
			next = nil
		}
	}()
	return cont(p, m)
}

// contPanic records a handler failure like run() records a body panic.
func (w *worker) contPanic(p *Proc, value interface{}) {
	p.err = &PanicError{Proc: p.id, Name: p.name, Value: value}
	if g := p.kernel.guard; g != nil {
		g.trip(tripPanic, fmt.Sprintf("proc %d (%s) panicked: %v", p.id, p.name, value))
	}
}

// contDriver wraps a continuation chain in a classic blocking body: the
// old-path semantics used when Config.ForceGoroutine is set. Each armed
// wait is performed with the blocking primitives (recvMatched/Sleep), so
// the event sequence — and therefore every Result byte — is identical to
// the inline path; only the host-side scheduling differs.
func contDriver(start Cont) func(*Proc) {
	return func(p *Proc) {
		s := p.slot
		cont := start
		var m *Message
		for cont != nil {
			s.inHandler = true
			next := func() Cont {
				defer func() { s.inHandler = false }()
				return cont(p, m)
			}()
			m = nil
			cont = next
			if cont == nil {
				s.armKind = armNone
				return
			}
			switch s.armKind {
			case armRecv:
				s.armKind = armNone
				m = p.recvMatched()
				s.matchFn = nil
			case armSleep:
				s.armKind = armNone
				p.Sleep(s.sleepUntil)
			default:
				panic(errContNoWait)
			}
		}
	}
}
