package sim

import (
	"fmt"
	"runtime"
	"testing"

	"mpisim/internal/obs"
)

// The BenchmarkKernel* suite measures raw kernel throughput (events/sec)
// and steady-state allocation behaviour (allocs/event) across the
// engine, protocol and queue axes at 16/256/4096 target processes.
// scripts/bench_kernel.sh runs it and records the results in
// BENCH_kernel.json so the performance trajectory is tracked across PRs.

// benchBody is a neighbour-exchange workload: every process alternates
// local computation, a send to its successor and a receive, recycling
// each received message. Fully deterministic, communication-dominated —
// the kernel hot path is the entire cost.
func benchBody(n, rounds int, latency Time) func(*Proc) {
	return func(p *Proc) {
		next := (p.ID() + 1) % n
		for r := 0; r < rounds; r++ {
			p.Advance(1e-7)
			p.Send(next, nil, 64, p.Now()+latency)
			p.FreeMessage(p.RecvSrcTag(Any, Any))
		}
	}
}

// benchFanIn is a same-time gather: every round, all senders deliver to
// one receiver at an identical timestamp. This is the same-time wake
// batching fast path: the first matching delivery wakes the receiver
// with a single handoff and the rest of the batch goes straight to its
// mailbox, so subsequent receives complete without yielding. The
// receiver is the highest process id because batching only absorbs
// senders ordered at or before the receiver in the deterministic
// (time, proc, seq) order.
func benchFanIn(n, rounds int, latency Time) func(*Proc) {
	recv := n - 1
	return func(p *Proc) {
		if p.ID() != recv {
			for r := 0; r < rounds; r++ {
				t := Time(r) * 1e-3
				p.Sleep(t) // pace the rounds: bounded in-flight messages
				p.Send(recv, nil, 8, t+latency)
			}
			return
		}
		for r := 0; r < rounds; r++ {
			for s := 0; s < n-1; s++ {
				p.FreeMessage(p.RecvSrcTag(Any, Any))
			}
		}
	}
}

// benchEventTarget is the approximate number of kernel events per
// benchmark iteration; rounds are scaled down as the process count grows
// so every configuration does comparable work.
const benchEventTarget = 1 << 18

func benchKernel(b *testing.B, procs, workers int, proto Protocol, queue QueueKind) {
	benchKernelBody(b, procs, workers, proto, queue, benchBody)
}

func benchKernelBody(b *testing.B, procs, workers int, proto Protocol, queue QueueKind,
	prog func(n, rounds int, latency Time) func(*Proc), mutate ...func(*Config)) {
	const latency = Time(1e-6)
	rounds := benchEventTarget / procs
	if rounds < 1 {
		rounds = 1
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{Workers: workers, Protocol: proto, Queue: queue}
		if workers > 1 {
			cfg.Lookahead = latency
			cfg.RealParallel = true
		}
		for _, m := range mutate {
			m(&cfg)
		}
		k, err := NewKernel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < procs; j++ {
			k.Spawn("p", prog(procs, rounds, latency))
		}
		res, err := k.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	// Mallocs delta over the whole measured region: includes per-run
	// setup (Spawn, goroutines), so this is an honest upper bound on the
	// steady-state allocation rate.
	allocs := ms.Mallocs - startMallocs
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
}

func benchSizes(b *testing.B, workers int, proto Protocol) {
	for _, procs := range []int{16, 256, 4096} {
		procs := procs
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchKernel(b, procs, workers, proto, QueueQuaternary)
		})
	}
}

// BenchmarkKernelSequential: the sequential engine (single worker).
func BenchmarkKernelSequential(b *testing.B) { benchSizes(b, 1, ProtocolWindow) }

// BenchmarkKernelFanIn: the sequential engine on the same-time gather
// workload (see benchFanIn), where same-time wake batching applies.
func BenchmarkKernelFanIn(b *testing.B) {
	for _, procs := range []int{16, 256, 4096} {
		procs := procs
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchKernelBody(b, procs, 1, ProtocolWindow, QueueQuaternary, benchFanIn)
		})
	}
}

// BenchmarkKernelWindow: conservative time-window protocol, 4 workers on
// real goroutines.
func BenchmarkKernelWindow(b *testing.B) { benchSizes(b, 4, ProtocolWindow) }

// BenchmarkKernelNullMessage: null-message protocol, 4 workers on real
// goroutines.
func BenchmarkKernelNullMessage(b *testing.B) { benchSizes(b, 4, ProtocolNullMessage) }

// BenchmarkKernelQueue compares the event-queue implementations
// head-to-head on the sequential engine at 256 processes.
func BenchmarkKernelQueue(b *testing.B) {
	for _, queue := range []QueueKind{QueueQuaternary, QueueBinary} {
		queue := queue
		b.Run(queue.String(), func(b *testing.B) {
			benchKernel(b, 256, 1, ProtocolWindow, queue)
		})
	}
}

// BenchmarkKernelObs measures the observability plane's cost on the
// sequential engine at 256 processes. "off" is the paired baseline
// (Config.Metrics nil, so every hook is one nil check); "disabled"
// attaches a registry with recording switched off; "metrics" records.
// scripts/ci.sh gates off/metrics against each other, and
// scripts/bench_kernel.sh -check gates "off" against BENCH_kernel.json.
func BenchmarkKernelObs(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, benchBody)
	})
	b.Run("disabled", func(b *testing.B) {
		reg := obs.NewRegistry(1)
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, benchBody,
			func(cfg *Config) { cfg.Metrics = reg })
	})
	b.Run("metrics", func(b *testing.B) {
		reg := obs.NewRegistry(1)
		reg.SetEnabled(true)
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, benchBody,
			func(cfg *Config) { cfg.Metrics = reg })
	})
}

// BenchmarkKernelGuard measures the run-limit guard's cost on the
// sequential engine at 256 processes. "off" is the fault/guard layer
// disabled (Config.Limits zero, so the hot loop pays two nil checks per
// event); "armed" arms the watchdog and an unreachable event budget, so
// guardTick runs on every event without ever tripping. scripts/ci.sh
// gates "off" against the recorded BENCH_kernel.json at 2% and "armed"
// against "off" in the same process.
func BenchmarkKernelGuard(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, benchBody)
	})
	b.Run("armed", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, benchBody,
			func(cfg *Config) {
				cfg.Limits = Limits{MaxEvents: 1 << 60, StallEvents: 1 << 40}
			})
	})
}

// BenchmarkKernelWorkers sweeps the worker count at a fixed process
// count, exercising the O(W) safeBounds and the sorted outbox merge.
func BenchmarkKernelWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchKernel(b, 1024, workers, ProtocolWindow, QueueQuaternary)
		})
	}
}
