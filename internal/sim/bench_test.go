package sim

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"mpisim/internal/obs"
)

// The BenchmarkKernel* suite measures raw kernel throughput (events/sec)
// and steady-state allocation behaviour (allocs/event) across the
// engine, protocol, queue and scheduler axes at 16 to 65536 target
// processes (the top row is gated behind MPISIM_BENCH_LARGE so routine
// runs stay fast). scripts/bench_kernel.sh runs it and records the
// results in BENCH_kernel.json so the performance trajectory is tracked
// across PRs.
//
// The workloads run as continuation processes — the kernel's native
// scheduling path (cont.go) — with the classic goroutine path kept
// head-to-head in BenchmarkKernelSched. Continuation and classic bodies
// generate identical event streams, so events/sec is comparable across
// the axis.

// benchSpawner populates a kernel with the workload's processes.
type benchSpawner func(k *Kernel, procs, rounds int, latency Time)

// contExch is a neighbour-exchange process: every round it does local
// computation, sends to its successor and waits for its predecessor,
// recycling each received message. Fully deterministic,
// communication-dominated — the kernel hot path is the entire cost.
// The bound handler is cached in self so returning it allocates nothing.
type contExch struct {
	n, rounds, r int
	latency      Time
	self         Cont
}

func (c *contExch) step(p *Proc, m *Message) Cont {
	if m != nil {
		p.FreeMessage(m)
		c.r++
		if c.r == c.rounds {
			return nil
		}
	}
	p.Advance(1e-7)
	p.Send((p.ID()+1)%c.n, nil, 64, p.Now()+c.latency)
	p.WaitRecv(Any, Any)
	return c.self
}

func spawnExch(k *Kernel, procs, rounds int, latency Time) {
	for j := 0; j < procs; j++ {
		c := &contExch{n: procs, rounds: rounds, latency: latency}
		c.self = c.step
		k.SpawnCont("p", c.self)
	}
}

// classicExch is the goroutine-path twin of contExch: same kernel calls,
// same event stream, but an arbitrary blocking body on a carrier
// goroutine. BenchmarkKernelSched races the two.
func classicExch(n, rounds int, latency Time) func(*Proc) {
	return func(p *Proc) {
		next := (p.ID() + 1) % n
		for r := 0; r < rounds; r++ {
			p.Advance(1e-7)
			p.Send(next, nil, 64, p.Now()+latency)
			p.FreeMessage(p.RecvSrcTag(Any, Any))
		}
	}
}

func spawnClassicExch(k *Kernel, procs, rounds int, latency Time) {
	for j := 0; j < procs; j++ {
		k.Spawn("p", classicExch(procs, rounds, latency))
	}
}

// Fan-in: a same-time gather where, every round, all senders deliver to
// one receiver at an identical timestamp. This is the same-time wake
// batching fast path: the first matching delivery resumes the receiver
// and the rest of the batch goes straight to its mailbox, so subsequent
// receives complete inline. The receiver is the highest process id
// because batching only absorbs senders ordered at or before the
// receiver in the deterministic (time, proc, seq) order.

type contFanSend struct {
	recv, rounds, r int
	latency         Time
	self            Cont
}

func (c *contFanSend) step(p *Proc, _ *Message) Cont {
	t := Time(c.r) * 1e-3 // pace the rounds: bounded in-flight messages
	p.Send(c.recv, nil, 8, t+c.latency)
	c.r++
	if c.r == c.rounds {
		return nil
	}
	p.WaitSleep(Time(c.r) * 1e-3)
	return c.self
}

type contFanRecv struct {
	remaining int
	self      Cont
}

func (c *contFanRecv) step(p *Proc, m *Message) Cont {
	if m != nil {
		p.FreeMessage(m)
		c.remaining--
		if c.remaining == 0 {
			return nil
		}
	}
	p.WaitRecv(Any, Any)
	return c.self
}

func spawnFanIn(k *Kernel, procs, rounds int, latency Time) {
	for j := 0; j < procs-1; j++ {
		c := &contFanSend{recv: procs - 1, rounds: rounds, latency: latency}
		c.self = c.step
		k.SpawnCont("p", c.self)
	}
	r := &contFanRecv{remaining: (procs - 1) * rounds}
	r.self = r.step
	k.SpawnCont("p", r.self)
}

// benchEventTarget is the approximate number of kernel events per
// benchmark iteration; rounds are scaled down as the process count grows
// so every configuration does comparable work.
const benchEventTarget = 1 << 18

// benchAllocCeiling asserts the allocation budget: steady-state event
// processing must stay essentially allocation-free, with a per-process
// term covering per-run setup (Proc handles, workload state, slot and
// slab sizing, pool warm-up) that amortizes away as rounds grow.
func benchAllocCeiling(b *testing.B, allocs uint64, events int64, procs int) {
	ceiling := 0.05*float64(events) + 24*float64(procs)*float64(b.N)
	if float64(allocs) > ceiling {
		b.Errorf("allocs = %d over ceiling %.0f (events=%d procs=%d N=%d)",
			allocs, ceiling, events, procs, b.N)
	}
}

func benchKernel(b *testing.B, procs, workers int, proto Protocol, queue QueueKind) {
	benchKernelBody(b, procs, workers, proto, queue, spawnExch)
}

func benchKernelBody(b *testing.B, procs, workers int, proto Protocol, queue QueueKind,
	spawn benchSpawner, mutate ...func(*Config)) {
	const latency = Time(1e-6)
	rounds := benchEventTarget / procs
	if rounds < 1 {
		rounds = 1
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{Workers: workers, Protocol: proto, Queue: queue}
		if workers > 1 {
			cfg.Lookahead = latency
			cfg.RealParallel = true
		}
		for _, m := range mutate {
			m(&cfg)
		}
		k, err := NewKernel(cfg)
		if err != nil {
			b.Fatal(err)
		}
		spawn(k, procs, rounds, latency)
		res, err := k.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	// Mallocs delta over the whole measured region: includes per-run
	// setup (Spawn, workload state), so this is an honest upper bound on
	// the steady-state allocation rate.
	allocs := ms.Mallocs - startMallocs
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(allocs)/float64(events), "allocs/event")
	benchAllocCeiling(b, allocs, events, procs)
}

// benchProcCounts returns the process-count axis. The 65536 row models
// the 100k-rank regime and takes long enough that it only runs when
// MPISIM_BENCH_LARGE is set (scripts/bench_kernel.sh sets it when
// recording; CI leaves it unset on the short path).
func benchProcCounts() []int {
	sizes := []int{16, 256, 4096, 16384}
	if os.Getenv("MPISIM_BENCH_LARGE") != "" {
		sizes = append(sizes, 65536)
	}
	return sizes
}

func benchSizes(b *testing.B, workers int, proto Protocol) {
	for _, procs := range benchProcCounts() {
		procs := procs
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchKernel(b, procs, workers, proto, QueueQuaternary)
		})
	}
}

// BenchmarkKernelSequential: the sequential engine (single worker).
func BenchmarkKernelSequential(b *testing.B) { benchSizes(b, 1, ProtocolWindow) }

// BenchmarkKernelFanIn: the sequential engine on the same-time gather
// workload, where same-time wake batching applies.
func BenchmarkKernelFanIn(b *testing.B) {
	for _, procs := range benchProcCounts() {
		procs := procs
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			benchKernelBody(b, procs, 1, ProtocolWindow, QueueQuaternary, spawnFanIn)
		})
	}
}

// BenchmarkKernelWindow: conservative time-window protocol, 4 workers on
// real goroutines.
func BenchmarkKernelWindow(b *testing.B) { benchSizes(b, 4, ProtocolWindow) }

// BenchmarkKernelNullMessage: null-message protocol, 4 workers on real
// goroutines.
func BenchmarkKernelNullMessage(b *testing.B) { benchSizes(b, 4, ProtocolNullMessage) }

// BenchmarkKernelSched races the two scheduling paths on the identical
// neighbour-exchange event stream at 4096 processes: "cont" runs the
// handlers inline on the worker goroutine, "goroutine" the same
// continuation processes forced through the classic carrier-goroutine
// path, and "classic" a hand-written blocking body. The cont/goroutine
// gap is the direct cost of goroutine scheduling and channel handoffs.
func BenchmarkKernelSched(b *testing.B) {
	b.Run("cont", func(b *testing.B) {
		benchKernelBody(b, 4096, 1, ProtocolWindow, QueueQuaternary, spawnExch)
	})
	b.Run("goroutine", func(b *testing.B) {
		benchKernelBody(b, 4096, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) { cfg.ForceGoroutine = true })
	})
	b.Run("classic", func(b *testing.B) {
		benchKernelBody(b, 4096, 1, ProtocolWindow, QueueQuaternary, spawnClassicExch)
	})
}

// BenchmarkKernelQueue compares the event-queue implementations
// head-to-head on the sequential engine at 256 processes.
func BenchmarkKernelQueue(b *testing.B) {
	for _, queue := range []QueueKind{QueueQuaternary, QueueBinary} {
		queue := queue
		b.Run(queue.String(), func(b *testing.B) {
			benchKernel(b, 256, 1, ProtocolWindow, queue)
		})
	}
}

// BenchmarkKernelObs measures the observability plane's cost on the
// sequential engine at 256 processes. "off" is the paired baseline
// (Config.Metrics nil, so every hook is one nil check); "disabled"
// attaches a registry with recording switched off; "metrics" records.
// scripts/ci.sh gates off/metrics against each other, and
// scripts/bench_kernel.sh -check gates "off" against BENCH_kernel.json.
func BenchmarkKernelObs(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch)
	})
	b.Run("disabled", func(b *testing.B) {
		reg := obs.NewRegistry(1)
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) { cfg.Metrics = reg })
	})
	b.Run("metrics", func(b *testing.B) {
		reg := obs.NewRegistry(1)
		reg.SetEnabled(true)
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) { cfg.Metrics = reg })
	})
}

// BenchmarkKernelTelemetry measures the live-telemetry plane's cost on
// the sequential engine at 256 processes. "off" is the paired baseline:
// a recording registry but no timeline/run-info, so the telemetry hook
// in obsSample is one nil check. "disabled" attaches a timeline that is
// switched off (setupObs drops it, so the cost must equal "off");
// "armed" samples the timeline at a production cadence and heartbeats a
// RunInfo. scripts/ci.sh gates armed within 2% and disabled within 0.5%
// of off in the same process.
func BenchmarkKernelTelemetry(b *testing.B) {
	reg := func() *obs.Registry {
		r := obs.NewRegistry(1)
		r.SetEnabled(true)
		return r
	}
	b.Run("off", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) { cfg.Metrics = reg() })
	})
	b.Run("disabled", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) {
				cfg.Metrics = reg()
				cfg.Timeline = obs.NewTimeline(nil, obs.TimelineOptions{})
				cfg.RunInfo = nil
			})
	})
	b.Run("armed", func(b *testing.B) {
		tl := obs.NewTimeline(nil, obs.TimelineOptions{})
		tl.SetEnabled(true)
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) {
				cfg.Metrics = reg()
				cfg.Timeline = tl
				cfg.RunInfo = obs.NewRunInfo()
			})
	})
}

// BenchmarkKernelGuard measures the run-limit guard's cost on the
// sequential engine at 256 processes. "off" is the fault/guard layer
// disabled (Config.Limits zero, so the hot loop pays two nil checks per
// event); "armed" arms the watchdog and an unreachable event budget, so
// guardTick runs on every event without ever tripping. scripts/ci.sh
// gates "off" against the recorded BENCH_kernel.json at 2% and "armed"
// against "off" in the same process.
func BenchmarkKernelGuard(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch)
	})
	b.Run("armed", func(b *testing.B) {
		benchKernelBody(b, 256, 1, ProtocolWindow, QueueQuaternary, spawnExch,
			func(cfg *Config) {
				cfg.Limits = Limits{MaxEvents: 1 << 60, StallEvents: 1 << 40}
			})
	})
}

// BenchmarkKernelWorkers sweeps the worker count at a fixed process
// count, exercising the O(W) safeBounds and the sorted outbox merge.
func BenchmarkKernelWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchKernel(b, 1024, workers, ProtocolWindow, QueueQuaternary)
		})
	}
}
