package sim

import (
	"errors"
	"fmt"
)

// errTeardown is the panic value used to unwind a process goroutine that
// the kernel unblocked during teardown (deadlock or guard abort). It is
// compared by identity in run's recover and never reaches p.err: a
// torn-down process is not a failed one.
var errTeardown = errors.New("sim: process terminated by kernel teardown")

// Time is simulated time in seconds.
type Time float64

// Infinity is a time later than any event.
const Infinity = Time(1e300)

// Any is the wildcard for RecvSrcTag's source and tag arguments. It is
// an exact sentinel (not "any negative value"): the mpi layer reserves
// large negative tags for collectives, which must not match a wildcard.
const Any = -1

// Message is a unit of simulated communication between processes. The
// mpi package layers MPI envelope semantics on top: Tag carries the MPI
// tag (or an internal collective tag), Payload the user data.
//
// Messages are pooled. The receiver owns a message returned by
// Recv/RecvSrcTag and may recycle it with FreeMessage once it is done
// with every field, including Payload; freeing is optional, freeing
// twice panics. Senders must not retain the message after Send.
type Message struct {
	From, To int  // process ids
	Tag      int  // mpi-layer tag, matched by RecvSrcTag
	SendTime Time // sender's local time when the send was issued
	Arrival  Time // timestamp at which the message reaches the receiver
	// FaultDelay is the portion of the transit time attributable to
	// injected faults (retransmission waits, delay injection, link
	// slowdown): Arrival would have been FaultDelay earlier on a healthy
	// machine. Receivers use it to attribute blocked time to faults.
	FaultDelay Time
	// NetWait is the portion of the transit time spent queued on busy
	// interconnect links, set by a relay that models link contention
	// (zero on direct sends). Receivers use it to attribute blocked time
	// to network congestion.
	NetWait Time
	// Hops is the number of interconnect links the message traversed
	// (zero on direct sends); carried for trace annotation.
	Hops int
	// RelayDst is the final destination of a message sent to a relay
	// with SendVia; the relay re-issues it there with Forward. Meaningful
	// only on relay-addressed messages.
	RelayDst int
	Size     int64
	Payload  interface{}
	seq      uint64 // sender-side sequence, part of the deterministic order
	live     bool   // pool liveness guard (detects double-free)
}

// procState tracks where a process is in its lifecycle.
type procState uint8

const (
	stNew procState = iota
	stRunnable
	stBlocked // waiting in Recv or Sleep
	stDone
)

// matchMode discriminates how a blocked process matches arrivals.
type matchMode uint8

const (
	matchNone   matchMode = iota // not receiving (e.g. Sleep): nothing matches
	matchFunc                    // arbitrary predicate (Recv)
	matchSrcTag                  // kernel-side (source, tag) match (RecvSrcTag)
)

// ProcStats accumulates per-process accounting used for validation,
// Table 1 and the host-cost model.
type ProcStats struct {
	ComputeTime Time  // simulated time consumed by Advance (direct execution / delays)
	BlockedTime Time  // simulated time spent waiting in Recv
	MsgsSent    int64 // point-to-point messages issued
	BytesSent   int64
	MsgsRecvd   int64
	BytesRecvd  int64
	FinishTime  Time // local clock when the body returned
}

// procSlot is the hot per-process state, flattened into one
// index-addressed, worker-owned array (Kernel.slots): delivering to or
// waking process i touches the contiguous cache lines of slots[i]
// instead of chasing a pointer to a heap-scattered struct. Every field
// is owned by the process's worker (only goroutines holding that
// worker's run token touch it).
type procSlot struct {
	now   Time
	seq   uint64
	state procState
	// Receive predicate, valid while state == stBlocked.
	matchMode matchMode
	// Continuation bookkeeping (cont.go): the armed wait of the handler
	// currently running, and whether a handler is on the stack (so the
	// blocking primitives can reject misuse).
	armKind   armKind
	inHandler bool
	wid       int // owning worker id
	matchSrc  int
	matchTag  int
	// mailbox[mbHead:] holds arrived, unmatched messages. Deliveries are
	// appended in event pop order, which is exactly the deterministic
	// (arrival, sender, sequence) order of messageLess, so the mailbox is
	// always sorted: the first match is the earliest match, and the
	// common take-from-the-front is O(1) via the head index.
	mailbox []*Message
	mbHead  int
	// cont is the pending continuation of a continuation process (nil
	// for classic bodies and while a handler is running).
	cont       Cont
	sleepUntil Time
	matchFn    func(*Message) bool
	stats      ProcStats
}

// Proc is a simulated process (one target MPI rank, in this system). A
// classic process runs its body function on a (pooled) goroutine; a
// continuation process (SpawnCont) runs its handlers inline on its
// worker's goroutine. Kernel calls (Advance, Send, Recv, Sleep, Wait*)
// coordinate it with simulated time and must only be called from the
// body or handler. Proc is the stable public handle; the hot state lives
// in the kernel's flat slot array (procSlot).
type Proc struct {
	id     int
	name   string
	kernel *Kernel
	worker *worker
	slot   *procSlot

	body   func(*Proc)   // classic blocking body (nil for continuation procs)
	cont0  Cont          // start handler of a continuation proc (nil for classic)
	resume chan *Message // handoff into a blocked classic process: matched message or wake (nil)

	err error // panic captured from the body or a handler
}

// ID returns the process identifier (0..N-1 in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the process's local virtual time.
func (p *Proc) Now() Time { return p.slot.now }

// Stats returns a snapshot of the process's accounting.
func (p *Proc) Stats() ProcStats { return p.slot.stats }

// Advance consumes d seconds of simulated local time. This is the
// mechanism behind both direct execution of computational code and the
// simulator-provided delay function of the paper (MPI-Sim's "forward the
// simulation clock on the simulation thread by a specified amount").
// It never yields to the kernel: local computation cannot affect other
// processes except through later messages, so running ahead is safe
// under the conservative protocols.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Advance(%v) on proc %d", d, p.id))
	}
	s := p.slot
	s.now += d
	s.stats.ComputeTime += d
}

// nextSeq returns the per-process monotone sequence used for
// deterministic event ordering.
func (p *Proc) nextSeq() uint64 {
	p.slot.seq++
	return p.slot.seq
}

// Send schedules delivery of payload to process `to` at the given
// arrival time, with tag 0. Arrival must be at least Now()+lookahead
// when running under the parallel engine; the mpi layer guarantees this
// by construction because the kernel lookahead is the minimum network
// delay.
func (p *Proc) Send(to int, payload interface{}, size int64, arrival Time) {
	p.SendTag(to, 0, payload, size, arrival)
}

// SendTag is Send with an explicit tag for RecvSrcTag matching.
func (p *Proc) SendTag(to, tag int, payload interface{}, size int64, arrival Time) {
	p.SendTagFault(to, tag, payload, size, arrival, 0)
}

// SendTagFault is SendTag with a fault-delay component: faultDelay
// seconds of the transit time (already included in arrival) are
// attributable to injected faults and are carried to the receiver in
// Message.FaultDelay.
func (p *Proc) SendTagFault(to, tag int, payload interface{}, size int64, arrival, faultDelay Time) {
	if to < 0 || to >= len(p.kernel.procs) {
		panic(fmt.Sprintf("sim: Send to unknown proc %d", to))
	}
	s := p.slot
	if arrival < s.now {
		panic(fmt.Sprintf("sim: Send arrival %v before local time %v", arrival, s.now))
	}
	w := p.worker
	m := w.newMessage()
	m.From, m.To, m.Tag = p.id, to, tag
	m.SendTime, m.Arrival = s.now, arrival
	m.FaultDelay = faultDelay
	m.NetWait, m.Hops, m.RelayDst = 0, 0, 0 // pooled: clear relay state
	m.Size, m.Payload = size, payload
	m.seq = p.nextSeq()
	s.stats.MsgsSent++
	s.stats.BytesSent += size
	w.sendOut(event{t: arrival, proc: p.id, seq: m.seq, kind: evDeliver, dst: to, msg: m})
}

// SendVia addresses a message to a relay process (the mpi layer's
// interconnect fabric) while naming its final destination: the relay
// receives it like any message, with Message.RelayDst = dst, and
// re-issues it to dst with Forward once the interconnect model has
// resolved the true arrival time. dst may be any caller-chosen sentinel
// (e.g. negative for control traffic); it is validated by Forward, not
// here. Sender statistics count only real traffic (dst >= 0).
func (p *Proc) SendVia(relay, dst, tag int, payload interface{}, size int64, arrival, faultDelay Time) {
	if relay < 0 || relay >= len(p.kernel.procs) {
		panic(fmt.Sprintf("sim: SendVia through unknown proc %d", relay))
	}
	s := p.slot
	if arrival < s.now {
		panic(fmt.Sprintf("sim: SendVia arrival %v before local time %v", arrival, s.now))
	}
	w := p.worker
	m := w.newMessage()
	m.From, m.To, m.Tag = p.id, relay, tag
	m.SendTime, m.Arrival = s.now, arrival
	m.FaultDelay = faultDelay
	m.NetWait, m.Hops, m.RelayDst = 0, 0, dst
	m.Size, m.Payload = size, payload
	m.seq = p.nextSeq()
	if dst >= 0 {
		s.stats.MsgsSent++
		s.stats.BytesSent += size
	}
	w.sendOut(event{t: arrival, proc: p.id, seq: m.seq, kind: evDeliver, dst: relay, msg: m})
}

// Forward re-issues a message this process received to another process
// with a new arrival time, preserving the original sender envelope
// (From, Tag, SendTime, Size, Payload, FaultDelay): the receiver
// matches it exactly as if the original sender had sent it directly.
// Ownership of m passes back to the kernel — the caller must not touch
// or FreeMessage it afterwards. The caller should set NetWait/Hops
// before forwarding; receiver statistics are counted at delivery as
// usual, and the forwarding process's own send counters are untouched.
func (p *Proc) Forward(m *Message, dst int, arrival Time) {
	if dst < 0 || dst >= len(p.kernel.procs) {
		panic(fmt.Sprintf("sim: Forward to unknown proc %d", dst))
	}
	if arrival < p.slot.now {
		panic(fmt.Sprintf("sim: Forward arrival %v before local time %v", arrival, p.slot.now))
	}
	w := p.worker
	m.To = dst
	m.Arrival = arrival
	m.seq = p.nextSeq()
	w.sendOut(event{t: arrival, proc: p.id, seq: m.seq, kind: evDeliver, dst: dst, msg: m})
}

// Recv blocks until a message satisfying match has arrived, removes it
// from the mailbox and returns it. The local clock advances to the
// message's arrival time if that is later than Now(). When several
// messages match, the earliest in the deterministic (arrival, sender,
// sequence) order is returned. Continuation handlers must arm
// WaitRecvFn instead.
func (p *Proc) Recv(match func(*Message) bool) *Message {
	s := p.slot
	p.checkBlockingCall("Recv")
	s.matchMode, s.matchFn = matchFunc, match
	m := p.recvMatched()
	s.matchFn = nil // do not retain the closure past the call
	return m
}

// RecvSrcTag is Recv with the ubiquitous (source, tag) predicate
// evaluated inside the kernel: src and tag each either name an exact
// value or are the wildcard Any. Unlike Recv it needs no per-call
// closure, so the mpi receive path stays allocation-free.
func (p *Proc) RecvSrcTag(src, tag int) *Message {
	s := p.slot
	p.checkBlockingCall("RecvSrcTag")
	s.matchMode, s.matchSrc, s.matchTag = matchSrcTag, src, tag
	return p.recvMatched()
}

// checkBlockingCall rejects blocking primitives inside a continuation
// handler: a handler runs on the worker's event-loop goroutine and must
// arm a wait instead of blocking.
func (p *Proc) checkBlockingCall(what string) {
	if p.slot.inHandler && p.body == nil {
		panic(fmt.Sprintf("sim: %s inside a continuation handler on proc %d (arm WaitRecv/WaitRecvFn/WaitSleep instead)", what, p.id))
	}
}

// matches evaluates the published receive predicate against m.
func (p *Proc) matches(m *Message) bool {
	s := p.slot
	switch s.matchMode {
	case matchFunc:
		return s.matchFn(m)
	case matchSrcTag:
		return (s.matchSrc == Any || m.From == s.matchSrc) &&
			(s.matchTag == Any || m.Tag == s.matchTag)
	default:
		return false
	}
}

// recvMatched completes a receive whose predicate has been published in
// the match fields: take an already-arrived match if any, otherwise
// block until the kernel hands one over.
func (p *Proc) recvMatched() *Message {
	s := p.slot
	if m := p.takeMatched(); m != nil {
		s.matchMode = matchNone
		p.completeRecv(m)
		return m
	}
	s.state = stBlocked
	m := p.yield()
	s.matchMode = matchNone
	s.state = stRunnable
	if m == nil {
		// Teardown (deadlock or guard abort): the kernel unblocks us so
		// the goroutine can exit; run recognizes the sentinel and exits
		// without recording an error.
		panic(errTeardown)
	}
	p.completeRecv(m)
	return m
}

// yield donates this goroutine to the worker's event loop until an event
// resumes p. This is the direct-handoff scheduler: control flows from
// the yielding process straight to the next one with a single channel
// send (loopHandoff), or with none at all when the next event resumes p
// itself (loopSelf). Only when the window is exhausted does control
// return to the worker driver.
func (p *Proc) yield() *Message {
	w := p.worker
	st, m := w.runLoop(p)
	switch st {
	case loopSelf:
		return m
	case loopWindowDone:
		w.parked <- struct{}{}
	}
	return <-p.resume
}

// completeRecv advances the clock past the message arrival and accounts
// for blocking time.
func (p *Proc) completeRecv(m *Message) {
	s := p.slot
	if m.Arrival > s.now {
		s.stats.BlockedTime += m.Arrival - s.now
		s.now = m.Arrival
	}
	s.stats.MsgsRecvd++
	s.stats.BytesRecvd += m.Size
}

// takeMatched removes and returns the earliest mailbox message matching
// the published predicate: because the mailbox is sorted (see the field
// doc), that is the first match.
func (p *Proc) takeMatched() *Message {
	s := p.slot
	o := p.worker.obs
	if o != nil {
		o.scans++
	}
	for i := s.mbHead; i < len(s.mailbox); i++ {
		m := s.mailbox[i]
		if !p.matches(m) {
			continue
		}
		if o != nil {
			o.scanned += int64(i - s.mbHead + 1)
		}
		if i == s.mbHead {
			s.mailbox[i] = nil
			s.mbHead++
			if s.mbHead == len(s.mailbox) {
				s.mailbox = s.mailbox[:0]
				s.mbHead = 0
			}
		} else {
			s.mailbox = append(s.mailbox[:i], s.mailbox[i+1:]...)
		}
		return m
	}
	if o != nil {
		o.scanned += int64(len(s.mailbox) - s.mbHead)
	}
	return nil
}

// HasMatch reports whether a matching message has already arrived. It
// supports probe-style optimizations but never blocks; a false result
// does not imply no such message will arrive (conservatively, callers
// must still Recv).
func (p *Proc) HasMatch(match func(*Message) bool) bool {
	s := p.slot
	for _, m := range s.mailbox[s.mbHead:] {
		if match(m) {
			return true
		}
	}
	return false
}

// FreeMessage returns a message obtained from Recv/RecvSrcTag to the
// process's worker pool. Optional; see Message. Must only be called from
// the body function, on a message this process received, at most once.
func (p *Proc) FreeMessage(m *Message) {
	p.worker.freeMessage(m)
}

// messageLess orders messages by (arrival, sender, sequence).
func messageLess(a, b *Message) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.seq < b.seq
}

// Sleep suspends the process until the given absolute simulated time,
// yielding to the kernel. Unlike Advance it allows other processes'
// messages to be matched first; it exists for test scenarios and
// time-driven workloads. Sleeping into the past is a no-op. Continuation
// handlers must arm WaitSleep instead.
func (p *Proc) Sleep(until Time) {
	s := p.slot
	if until <= s.now {
		return
	}
	p.checkBlockingCall("Sleep")
	w := p.worker
	w.queue.push(event{t: until, proc: p.id, seq: p.nextSeq(), kind: evWake, dst: p.id})
	s.state = stBlocked // matchMode is matchNone: arrivals queue in the mailbox
	p.yield()
	if p.kernel.teardown {
		// A guard abort can tear down a sleeper (its wake event is still
		// queued); the nil resume is an exit request, not the wake.
		panic(errTeardown)
	}
	s.state = stRunnable
	if until > s.now {
		s.now = until
	}
}

// run executes the process body on the pooled carrier goroutine g,
// capturing panics as errors. On return the goroutine still holds the
// worker's run token: it releases g back to the worker's pool (so a
// start event popped by the trailing loop can reuse the warm goroutine)
// and keeps driving the event loop until it can hand off or the window
// is done.
func (p *Proc) run(g *gworker) {
	defer func() {
		if r := recover(); r != nil && r != errTeardown {
			p.err = &PanicError{Proc: p.id, Name: p.name, Value: r}
			if g := p.kernel.guard; g != nil {
				g.trip(tripPanic, fmt.Sprintf("proc %d (%s) panicked: %v", p.id, p.name, r))
			}
		}
		s := p.slot
		s.state = stDone
		s.stats.FinishTime = s.now
		w := p.worker
		w.freeG = append(w.freeG, g)
		st := loopWindowDone
		func() {
			defer func() {
				if rr := recover(); rr != nil {
					// The trailing event loop itself failed (corrupted
					// queue, panicking predicate). With the guard live,
					// abort and fall through to park so the driver
					// survives; without it, preserve the hard crash — a
					// silent infinite window would be worse.
					g := p.kernel.guard
					if g == nil {
						panic(rr)
					}
					g.trip(tripPanic, fmt.Sprintf("event loop on proc %d (%s): %v", p.id, p.name, rr))
				}
			}()
			st, _ = w.runLoop(nil)
		}()
		if st == loopWindowDone {
			w.parked <- struct{}{}
		}
	}()
	p.slot.state = stRunnable
	p.body(p)
}
