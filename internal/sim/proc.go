package sim

import "fmt"

// Time is simulated time in seconds.
type Time float64

// Infinity is a time later than any event.
const Infinity = Time(1e300)

// Message is a unit of simulated communication between processes. The
// mpi package layers MPI envelope semantics (tag, communicator, kind)
// on top via Payload.
type Message struct {
	From, To int  // process ids
	SendTime Time // sender's local time when the send was issued
	Arrival  Time // timestamp at which the message reaches the receiver
	Size     int64
	Payload  interface{}
	seq      uint64 // sender-side sequence, part of the deterministic order
}

// procState tracks where a process is in its lifecycle.
type procState uint8

const (
	stNew procState = iota
	stRunnable
	stBlocked // waiting in Recv
	stDone
)

// ProcStats accumulates per-process accounting used for validation,
// Table 1 and the host-cost model.
type ProcStats struct {
	ComputeTime Time  // simulated time consumed by Advance (direct execution / delays)
	BlockedTime Time  // simulated time spent waiting in Recv
	MsgsSent    int64 // point-to-point messages issued
	BytesSent   int64
	MsgsRecvd   int64
	BytesRecvd  int64
	FinishTime  Time // local clock when the body returned
}

// Proc is a simulated process (one target MPI rank, in this system).
// Its body function runs on its own goroutine; kernel calls (Advance,
// Send, Recv, Sleep) coordinate it with simulated time. Methods on Proc
// must only be called from the body function.
type Proc struct {
	id     int
	name   string
	kernel *Kernel
	worker *worker

	now   Time
	state procState
	seq   uint64

	body    func(*Proc)
	resume  chan *Message       // kernel -> proc: start or matched message
	mailbox []*Message          // arrived, unmatched messages
	match   func(*Message) bool // set while blocked in Recv
	err     error               // panic captured from the body
	stats   ProcStats
}

// ID returns the process identifier (0..N-1 in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the process's local virtual time.
func (p *Proc) Now() Time { return p.now }

// Stats returns a snapshot of the process's accounting.
func (p *Proc) Stats() ProcStats { return p.stats }

// Advance consumes d seconds of simulated local time. This is the
// mechanism behind both direct execution of computational code and the
// simulator-provided delay function of the paper (MPI-Sim's "forward the
// simulation clock on the simulation thread by a specified amount").
// It never yields to the kernel: local computation cannot affect other
// processes except through later messages, so running ahead is safe
// under the conservative protocols.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative Advance(%v) on proc %d", d, p.id))
	}
	p.now += d
	p.stats.ComputeTime += d
}

// nextSeq returns the per-process monotone sequence used for
// deterministic event ordering.
func (p *Proc) nextSeq() uint64 {
	p.seq++
	return p.seq
}

// Send schedules delivery of payload to process `to` at the given arrival
// time. Arrival must be at least Now()+lookahead when running under the
// parallel engine; the mpi layer guarantees this by construction because
// the kernel lookahead is the minimum network delay.
func (p *Proc) Send(to int, payload interface{}, size int64, arrival Time) {
	if to < 0 || to >= len(p.kernel.procs) {
		panic(fmt.Sprintf("sim: Send to unknown proc %d", to))
	}
	if arrival < p.now {
		panic(fmt.Sprintf("sim: Send arrival %v before local time %v", arrival, p.now))
	}
	m := &Message{
		From: p.id, To: to, SendTime: p.now, Arrival: arrival,
		Size: size, Payload: payload, seq: p.nextSeq(),
	}
	p.stats.MsgsSent++
	p.stats.BytesSent += size
	p.worker.sendOut(&event{t: arrival, proc: p.id, seq: m.seq, kind: evDeliver, dst: to, msg: m})
}

// Recv blocks until a message satisfying match has arrived, removes it
// from the mailbox and returns it. The local clock advances to the
// message's arrival time if that is later than Now(). When several
// messages match, the earliest in the deterministic (arrival, sender,
// sequence) order is returned.
func (p *Proc) Recv(match func(*Message) bool) *Message {
	if m := p.takeMatch(match); m != nil {
		p.completeRecv(m)
		return m
	}
	// Block: publish the predicate and yield to the kernel.
	p.match = match
	p.state = stBlocked
	p.worker.park()
	m := <-p.resume
	p.match = nil
	p.state = stRunnable
	if m == nil {
		// Deadlock teardown: the kernel unblocks us so the goroutine can
		// exit; the panic is captured by run and reported via the kernel.
		panic("terminated while blocked in Recv (deadlock teardown)")
	}
	p.completeRecv(m)
	return m
}

// completeRecv advances the clock past the message arrival and accounts
// for blocking time.
func (p *Proc) completeRecv(m *Message) {
	if m.Arrival > p.now {
		p.stats.BlockedTime += m.Arrival - p.now
		p.now = m.Arrival
	}
	p.stats.MsgsRecvd++
	p.stats.BytesRecvd += m.Size
}

// takeMatch removes and returns the earliest matching mailbox message.
func (p *Proc) takeMatch(match func(*Message) bool) *Message {
	best := -1
	for i, m := range p.mailbox {
		if !match(m) {
			continue
		}
		if best == -1 || messageLess(m, p.mailbox[best]) {
			best = i
		}
	}
	if best == -1 {
		return nil
	}
	m := p.mailbox[best]
	p.mailbox = append(p.mailbox[:best], p.mailbox[best+1:]...)
	return m
}

// HasMatch reports whether a matching message has already arrived. It
// supports probe-style optimizations but never blocks; a false result
// does not imply no such message will arrive (conservatively, callers
// must still Recv).
func (p *Proc) HasMatch(match func(*Message) bool) bool {
	for _, m := range p.mailbox {
		if match(m) {
			return true
		}
	}
	return false
}

// messageLess orders messages by (arrival, sender, sequence).
func messageLess(a, b *Message) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.seq < b.seq
}

// Sleep suspends the process until the given absolute simulated time,
// yielding to the kernel. Unlike Advance it allows other processes'
// messages to be matched first; it exists for test scenarios and
// time-driven workloads. Sleeping into the past is a no-op.
func (p *Proc) Sleep(until Time) {
	if until <= p.now {
		return
	}
	p.worker.scheduleLocal(&event{t: until, proc: p.id, seq: p.nextSeq(), kind: evWake, dst: p.id})
	p.state = stBlocked
	p.worker.park()
	<-p.resume
	p.state = stRunnable
	if until > p.now {
		p.now = until
	}
}

// run executes the process body, capturing panics as errors.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			p.err = fmt.Errorf("sim: proc %d (%s) panicked: %v", p.id, p.name, r)
		}
		p.state = stDone
		p.stats.FinishTime = p.now
		p.worker.park()
	}()
	p.state = stRunnable
	p.body(p)
}
