package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// contRing is the continuation-scheduled twin of ringProgram: identical
// kernel calls in identical order, so every Result byte must match the
// classic body. Per-proc state lives in the closure struct instead of on
// a goroutine stack.
type contRing struct {
	n, rounds int
	latency   Time
	r         *rand.Rand
	round     int
}

func (c *contRing) start(p *Proc, _ *Message) Cont {
	c.r = rand.New(rand.NewSource(int64(p.ID()) + 1))
	if p.ID() == 0 {
		p.Advance(Time(c.r.Float64()) * 1e-3)
		p.Send((p.ID()+1)%c.n, 0, 8, p.Now()+c.latency)
	}
	p.WaitRecvFn(anyMsg)
	return c.onMsg
}

func (c *contRing) onMsg(p *Proc, m *Message) Cont {
	p.Advance(Time(c.r.Float64()) * 1e-3)
	last := p.ID() == 0 && c.round == c.rounds-1
	if !last {
		nr := m.Payload.(int)
		if p.ID() == 0 {
			nr++
		}
		p.Send((p.ID()+1)%c.n, nr, 8, p.Now()+c.latency)
	}
	c.round++
	if c.round == c.rounds {
		return nil
	}
	p.WaitRecvFn(anyMsg)
	return c.onMsg
}

// runContRing runs the continuation ring under the given config.
func runContRing(t *testing.T, cfg Config, n, rounds int, latency Time) *Result {
	t.Helper()
	k, err := NewKernel(cfg)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	for i := 0; i < n; i++ {
		c := &contRing{n: n, rounds: rounds, latency: latency}
		k.SpawnCont("p", c.start)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestContMatchesClassic pins the equivalence bar: the continuation ring
// produces a Result identical to the classic-goroutine ring — and to its
// own ForceGoroutine rerun — for every engine and worker count.
func TestContMatchesClassic(t *testing.T) {
	const n, rounds = 8, 3
	const latency = Time(1e-5)
	ref := runKernel(t, Config{Workers: 1}, n, ringProgram(n, rounds, latency))
	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 2, Lookahead: latency},
		{Workers: 4, Lookahead: latency, RealParallel: true},
		{Workers: 4, Lookahead: latency, Protocol: ProtocolNullMessage},
		{Workers: 4, Lookahead: latency, Queue: QueueBinary},
	} {
		classic := runKernel(t, cfg, n, ringProgram(n, rounds, latency))
		native := runContRing(t, cfg, n, rounds, latency)
		forcedCfg := cfg
		forcedCfg.ForceGoroutine = true
		forced := runContRing(t, forcedCfg, n, rounds, latency)
		if !reflect.DeepEqual(native, classic) {
			t.Errorf("workers=%d: continuation result %+v != classic %+v", cfg.Workers, native, classic)
		}
		if !reflect.DeepEqual(native, forced) {
			t.Errorf("workers=%d: continuation result %+v != ForceGoroutine %+v", cfg.Workers, native, forced)
		}
		// Across engines only the host-side counters (CrossWorker, Windows)
		// may differ; the simulated outcome must not.
		if native.EndTime != ref.EndTime || native.Events != ref.Events ||
			native.Delivered != ref.Delivered || !reflect.DeepEqual(native.Procs, ref.Procs) {
			t.Errorf("workers=%d: simulated outcome drifted from sequential reference", cfg.Workers)
		}
	}
}

// TestContWaitSleep checks WaitSleep semantics: future sleeps advance the
// clock and let other procs run; past sleeps continue inline without
// rewinding — matching classic Sleep exactly.
func TestContWaitSleep(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	var trace []string
	k.SpawnCont("sleeper", func(p *Proc, _ *Message) Cont {
		p.WaitSleep(2e-3)
		return func(p *Proc, _ *Message) Cont {
			trace = append(trace, "woke")
			if p.Now() != 2e-3 {
				t.Errorf("Now() after sleep = %v, want 2e-3", p.Now())
			}
			p.WaitSleep(1e-3) // past: must continue inline, clock unchanged
			return func(p *Proc, _ *Message) Cont {
				trace = append(trace, "past")
				if p.Now() != 2e-3 {
					t.Errorf("Now() after past sleep = %v, want 2e-3", p.Now())
				}
				return nil
			}
		}
	})
	k.Spawn("marker", func(p *Proc) {
		p.Sleep(1e-3)
		trace = append(trace, "marker")
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"marker", "woke", "past"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// TestContWaitRecvSrcTag checks kernel-side (src, tag) matching and that
// an already-arrived match continues the chain inline.
func TestContWaitRecvSrcTag(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	got := make([]int, 0, 2)
	k.SpawnCont("recv", func(p *Proc, _ *Message) Cont {
		// Sleep past both arrivals so the matches are already in the
		// mailbox when the receives arm (the inline fast path), and
		// arrive out of tag order.
		p.WaitSleep(1)
		return func(p *Proc, _ *Message) Cont {
			p.WaitRecv(1, 7)
			return func(p *Proc, m *Message) Cont {
				got = append(got, m.Tag)
				p.FreeMessage(m)
				p.WaitRecv(Any, Any)
				return func(p *Proc, m *Message) Cont {
					got = append(got, m.Tag)
					p.FreeMessage(m)
					return nil
				}
			}
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.SendTag(0, 3, nil, 8, p.Now()+1e-5)
		p.SendTag(0, 7, nil, 8, p.Now()+2e-5)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int{7, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("received tags %v, want %v", got, want)
	}
}

// TestContHandlerPanic: a panicking handler surfaces as the same
// *PanicError a classic body panic produces, on both scheduling paths.
func TestContHandlerPanic(t *testing.T) {
	for _, force := range []bool{false, true} {
		k, _ := NewKernel(Config{Workers: 1, ForceGoroutine: force})
		k.SpawnCont("bad", func(p *Proc, _ *Message) Cont {
			panic("boom")
		})
		_, err := k.Run()
		pe, ok := err.(*PanicError)
		if !ok {
			t.Fatalf("force=%v: got %v, want *PanicError", force, err)
		}
		if pe.Value != "boom" || pe.Proc != 0 {
			t.Fatalf("force=%v: unexpected PanicError %+v", force, pe)
		}
	}
}

// TestContMissingArm: returning a next handler without arming a wait is
// a programming error reported identically on both scheduling paths.
func TestContMissingArm(t *testing.T) {
	var errs []string
	for _, force := range []bool{false, true} {
		k, _ := NewKernel(Config{Workers: 1, ForceGoroutine: force})
		k.SpawnCont("noarm", func(p *Proc, _ *Message) Cont {
			return func(p *Proc, _ *Message) Cont { return nil }
		})
		_, err := k.Run()
		if err == nil || !strings.Contains(err.Error(), "without arming a wait") {
			t.Fatalf("force=%v: got %v, want missing-arm panic error", force, err)
		}
		errs = append(errs, err.Error())
	}
	if errs[0] != errs[1] {
		t.Fatalf("paths disagree:\n  native: %s\n  forced: %s", errs[0], errs[1])
	}
}

// TestContDoubleArmPanics: a handler arming two waits is caught.
func TestContDoubleArmPanics(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.SpawnCont("double", func(p *Proc, _ *Message) Cont {
		p.WaitSleep(1)
		p.WaitRecv(Any, Any)
		return func(p *Proc, _ *Message) Cont { return nil }
	})
	if _, err := k.Run(); err == nil || !strings.Contains(err.Error(), "armed two waits") {
		t.Fatalf("got %v, want double-arm error", err)
	}
}

// TestContBlockingCallPanics: the classic blocking primitives are
// rejected inside a handler (they would block the worker's event loop).
func TestContBlockingCallPanics(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.SpawnCont("blocker", func(p *Proc, _ *Message) Cont {
		p.Recv(anyMsg)
		return nil
	})
	if _, err := k.Run(); err == nil || !strings.Contains(err.Error(), "inside a continuation handler") {
		t.Fatalf("got %v, want blocking-call rejection", err)
	}
}

// TestContWaitOutsideHandlerPanics: Wait* from a classic body is caught.
func TestContWaitOutsideHandlerPanics(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("classic", func(p *Proc) {
		p.WaitSleep(1)
	})
	if _, err := k.Run(); err == nil || !strings.Contains(err.Error(), "outside a continuation handler") {
		t.Fatalf("got %v, want outside-handler rejection", err)
	}
}

// TestContDeadlockTeardown: a continuation process parked on a receive
// that never matches deadlocks the run; teardown retires it without a
// goroutine and the wait-state dump names its receive.
func TestContDeadlockTeardown(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.SpawnCont("stuck", func(p *Proc, _ *Message) Cont {
		p.Advance(1e-3)
		p.WaitRecv(5, 9)
		return func(p *Proc, _ *Message) Cont { return nil }
	})
	k.Spawn("other", func(p *Proc) { p.Advance(1) })
	res, err := k.Run()
	ae, ok := err.(*AbortError)
	if !ok || !strings.Contains(ae.Reason, "deadlock") {
		t.Fatalf("got %v, want deadlock AbortError", err)
	}
	found := false
	for _, s := range ae.States {
		if s.Name == "stuck" {
			found = true
			if s.State != "blocked" || s.Waiting != "recv(src=5, tag=9)" {
				t.Errorf("stuck state = %+v, want blocked recv(src=5, tag=9)", s)
			}
		}
	}
	if !found {
		t.Fatal("no wait state for the stuck proc")
	}
	if res == nil || res.Procs[0].FinishTime != 1e-3 {
		t.Fatalf("partial result %+v, want stuck FinishTime 1e-3", res)
	}
}

// TestContFanIn: many continuation senders into one continuation
// receiver, exercising sleep staggering, mailbox batching and the inline
// resume path at once; checked against the classic equivalent.
func TestContFanIn(t *testing.T) {
	const n = 32
	const latency = Time(1e-5)
	build := func(cont bool, cfg Config) *Result {
		k, err := NewKernel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n-1; i++ {
			if cont {
				k.SpawnCont("send", func(p *Proc, _ *Message) Cont {
					p.WaitSleep(Time(p.ID()%7) * 1e-4)
					return func(p *Proc, _ *Message) Cont {
						p.Send(n-1, nil, 64, p.Now()+latency)
						return nil
					}
				})
			} else {
				k.Spawn("send", func(p *Proc) {
					p.Sleep(Time(p.ID()%7) * 1e-4)
					p.Send(n-1, nil, 64, p.Now()+latency)
				})
			}
		}
		if cont {
			var seen int
			var loop Cont
			loop = func(p *Proc, m *Message) Cont {
				if m != nil {
					seen++
					p.FreeMessage(m)
					if seen == n-1 {
						return nil
					}
				}
				p.WaitRecv(Any, Any)
				return loop
			}
			k.SpawnCont("recv", loop)
		} else {
			k.Spawn("recv", func(p *Proc) {
				for seen := 0; seen < n-1; seen++ {
					p.FreeMessage(p.RecvSrcTag(Any, Any))
				}
			})
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 4, Lookahead: latency, RealParallel: true},
	} {
		classic := build(false, cfg)
		native := build(true, cfg)
		if !reflect.DeepEqual(native, classic) {
			t.Errorf("workers=%d: cont fan-in %+v != classic %+v", cfg.Workers, native, classic)
		}
	}
}
