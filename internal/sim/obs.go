package sim

import (
	"fmt"
	"time"

	"mpisim/internal/obs"
)

// Simulator-plane observability (the second plane of DESIGN.md
// "Observability"): metrics and trace tracks about the simulator's own
// execution — event throughput, pool behaviour, mailbox scan lengths,
// queue depth, wake batching, and wallclock cost per virtual second.
//
// Cost discipline: the kernel hot loop pays one nil-pointer check per
// instrumentation point when observability is off (cfg.Metrics,
// cfg.Tracer, cfg.RunInfo all nil and cfg.Timeline nil or disabled).
// When on, per-event costs are plain increments
// on worker-local accumulators; the sharded registry and the tracer are
// only touched at sample points (every obsSampleEvery events per
// worker) and at the final flush, so the deterministic simulation
// result is unchanged and the enabled overhead stays bounded.
// time.Now() is called only at sample points and never influences
// simulation behaviour.

// obsSampleEvery is the per-worker event countdown between sample
// points (queue-depth observation, counter flush, tracer counter
// tracks).
const obsSampleEvery = 4096

// kernelObs holds the metric handles shared by all workers of one
// kernel. Handles are resolved once per Run; the registry deduplicates
// by name, so kernels of an experiment sweep can share one registry.
type kernelObs struct {
	reg      *obs.Registry
	tr       *obs.Tracer
	timeline *obs.Timeline
	run      *obs.RunInfo

	// windowsLive counts the windows already added to the windows
	// counter by the parallel driver, so obsFinish only adds the
	// remainder. Driver-owned; read by obsFinish after the drivers stop.
	windowsLive int64

	events    *obs.Counter
	delivered *obs.Counter
	cross     *obs.Counter
	windows   *obs.Counter

	poolMsgHit  *obs.Counter
	poolMsgMiss *obs.Counter

	mailboxScans   *obs.Counter
	mailboxScanned *obs.Counter
	wakeBatched    *obs.Counter

	// Scheduler counters (cont.go): handler invocations, classic-path
	// starts that needed a carrier goroutine, and the bytes shipped across
	// workers in barrier batches (counted in mergeOutboxes).
	conts       *obs.Counter
	fallbacks   *obs.Counter
	xbatchBytes *obs.Counter

	queueDepth     *obs.Gauge
	queueDepthHist *obs.Histogram
	contWaitDepth  *obs.Gauge
	wallPerVirtual *obs.Gauge
}

// workerObs is the per-worker accumulator state. All fields are owned
// by the goroutine holding the worker's run token, like the free lists.
type workerObs struct {
	k         *kernelObs
	countdown int

	// Wallclock-per-virtual-second sampling state.
	lastWall time.Time
	lastVirt Time
	haveWall bool

	// Accumulators flushed to the sharded counters at sample points.
	poolMsgHit  int64
	poolMsgMiss int64
	scans       int64
	scanned     int64
	batched     int64
	conts       int64
	fallbacks   int64

	// High-water marks of the worker totals already flushed.
	syncedEvents    int64
	syncedDelivered int64
	syncedCross     int64
}

// setupObs wires the observability plane before the first window. It
// returns nil when both the registry and the tracer are absent, which
// keeps every hot-path hook to a single nil check.
func (k *Kernel) setupObs() *kernelObs {
	reg, tr := k.cfg.Metrics, k.cfg.Tracer
	tl, run := k.cfg.Timeline, k.cfg.RunInfo
	if tl != nil && !tl.Enabled() {
		// A disabled timeline is dropped here, so its hot-path cost is
		// exactly the shared nil check — the same as no timeline at all.
		tl = nil
	}
	if reg == nil && tr == nil && tl == nil && run == nil {
		return nil
	}
	if reg == nil {
		// Tracing (or telemetry) without metrics still needs handles for
		// the sampled counter tracks and the timeline's vitals; a private
		// registry keeps the code uniform.
		reg = obs.NewRegistry(len(k.workers))
		reg.SetEnabled(true)
	}
	o := &kernelObs{
		reg:      reg,
		tr:       tr,
		timeline: tl,
		run:      run,

		events:    reg.Counter("sim_events_total", "kernel events processed"),
		delivered: reg.Counter("sim_messages_delivered_total", "messages delivered to processes"),
		cross:     reg.Counter("sim_cross_worker_total", "messages routed across host workers"),
		windows:   reg.Counter("sim_windows_total", "conservative windows executed"),

		poolMsgHit:  reg.Counter("sim_pool_msg_hit_total", "message allocations served by a worker free list"),
		poolMsgMiss: reg.Counter("sim_pool_msg_miss_total", "message allocations falling through to the shared pool"),

		mailboxScans:   reg.Counter("sim_mailbox_scans_total", "mailbox scans performed by receives"),
		mailboxScanned: reg.Counter("sim_mailbox_scanned_total", "mailbox entries examined across all scans"),
		wakeBatched:    reg.Counter("sim_wake_batched_total", "same-time deliveries batched without a wake"),

		conts:       reg.Counter("sim_continuations_total", "continuation handlers invoked inline on worker goroutines"),
		fallbacks:   reg.Counter("sim_goroutine_fallbacks_total", "process starts that required a carrier goroutine (classic blocking bodies)"),
		xbatchBytes: reg.Counter("sim_xworker_batch_bytes", "event bytes shipped across workers in barrier batches"),

		queueDepth:     reg.Gauge("sim_queue_depth", "pending-event queue depth, sampled per worker"),
		queueDepthHist: reg.Histogram("sim_queue_depth_hist", "sampled pending-event queue depth distribution", []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}),
		contWaitDepth:  reg.Gauge("sim_cont_wait_depth", "continuation processes parked in an armed wait, sampled per worker"),
		wallPerVirtual: reg.Gauge("sim_wall_ns_per_virtual_s", "host nanoseconds spent per simulated second, sampled per worker"),
	}
	// Seeding the wallclock baseline here means even a run shorter than
	// one sample interval gets a final wall-per-virtual-second sample.
	start := time.Now() //simvet:allow wallclock observability baseline; never feeds virtual time
	for _, w := range k.workers {
		w.obs = &workerObs{k: o, countdown: obsSampleEvery, lastWall: start, haveWall: true}
	}
	if tr != nil && tr.Enabled() {
		tr.Meta(obs.PlaneSimulator, -1, "simulator (host workers)")
		for _, w := range k.workers {
			tr.Meta(obs.PlaneSimulator, w.id, fmt.Sprintf("worker %d", w.id))
		}
	}
	return o
}

// obsTick is the per-event hook: a decrement and branch until the
// countdown expires, then a full sample. now is the popped event's
// timestamp (copied before the event was freed).
func (w *worker) obsTick(now Time) {
	o := w.obs
	o.countdown--
	if o.countdown > 0 {
		return
	}
	o.countdown = obsSampleEvery
	w.obsSample(now)
}

// obsSample flushes the worker's accumulators into the sharded metrics
// and emits the sampled simulator-plane tracer tracks. Called from the
// goroutine holding the worker's run token; shard index is the worker
// id, preserving the single-writer histogram discipline.
func (w *worker) obsSample(now Time) {
	o := w.obs
	k := o.k
	w.obsFlushCounters()

	depth := int64(w.queue.len())
	k.queueDepth.Set(w.id, depth)
	k.queueDepthHist.Observe(w.id, float64(depth))
	k.contWaitDepth.Set(w.id, w.contWaiting)

	wall := time.Now() //simvet:allow wallclock wall-per-virtual-second metric; never feeds virtual time
	var nsPerVs float64
	haveRate := false
	if o.haveWall && now > o.lastVirt {
		nsPerVs = float64(wall.Sub(o.lastWall).Nanoseconds()) / float64(now-o.lastVirt)
		k.wallPerVirtual.Set(w.id, int64(nsPerVs))
		haveRate = true
	}
	o.lastWall, o.lastVirt, o.haveWall = wall, now, true

	if k.tr != nil && k.tr.Enabled() {
		k.tr.Counter(obs.PlaneSimulator, w.id, "queue_depth", float64(now),
			obs.Num("events", float64(depth)))
		k.tr.Counter(obs.PlaneSimulator, w.id, "cont_wait_depth", float64(now),
			obs.Num("procs", float64(w.contWaiting)))
		if haveRate {
			k.tr.Counter(obs.PlaneSimulator, w.id, "wall_ns_per_virtual_s", float64(now),
				obs.Num("ns", nsPerVs))
		}
	}

	// Live telemetry: heartbeat the run info and offer the timeline a
	// snapshot. Both are strictly out of band — they read the merged
	// counters but feed nothing back into the simulation.
	if k.run != nil || k.timeline != nil {
		events := k.events.Value()
		if k.run != nil {
			k.run.Heartbeat(float64(now), events)
		}
		if k.timeline != nil {
			k.timeline.Offer(obs.Vitals{
				Virtual:           float64(now),
				Events:            events,
				Windows:           k.windows.Value(),
				WallNsPerVirtualS: nsPerVs,
			})
		}
	}
}

// obsFlushCounters moves the worker-local accumulators into the sharded
// counters. Totals (events/delivered/cross) are flushed as deltas
// against the already-synced high-water marks, so the registry reflects
// live progress without double counting.
func (w *worker) obsFlushCounters() {
	o := w.obs
	k := o.k
	if d := w.events - o.syncedEvents; d > 0 {
		k.events.Add(w.id, d)
		o.syncedEvents = w.events
	}
	if d := w.delivered - o.syncedDelivered; d > 0 {
		k.delivered.Add(w.id, d)
		o.syncedDelivered = w.delivered
	}
	if d := w.cross - o.syncedCross; d > 0 {
		k.cross.Add(w.id, d)
		o.syncedCross = w.cross
	}
	if o.poolMsgHit > 0 {
		k.poolMsgHit.Add(w.id, o.poolMsgHit)
		o.poolMsgHit = 0
	}
	if o.poolMsgMiss > 0 {
		k.poolMsgMiss.Add(w.id, o.poolMsgMiss)
		o.poolMsgMiss = 0
	}
	if o.scans > 0 {
		k.mailboxScans.Add(w.id, o.scans)
		o.scans = 0
	}
	if o.scanned > 0 {
		k.mailboxScanned.Add(w.id, o.scanned)
		o.scanned = 0
	}
	if o.batched > 0 {
		k.wakeBatched.Add(w.id, o.batched)
		o.batched = 0
	}
	if o.conts > 0 {
		k.conts.Add(w.id, o.conts)
		o.conts = 0
	}
	if o.fallbacks > 0 {
		k.fallbacks.Add(w.id, o.fallbacks)
		o.fallbacks = 0
	}
}

// obsFinish performs a final sample per worker after the last window, so
// the registry totals exactly match the Result counters and the tracer's
// counter tracks carry at least one point even for runs shorter than a
// sample interval.
func (k *Kernel) obsFinish(ko *kernelObs, res *Result) {
	if ko == nil {
		return
	}
	for _, w := range k.workers {
		w.obsSample(res.EndTime)
	}
	ko.windows.Add(0, res.Windows-ko.windowsLive)
	if ko.run != nil {
		ko.run.Heartbeat(float64(res.EndTime), res.Events)
	}
	if ko.timeline != nil {
		// Forced final point: even a run shorter than one cadence yields
		// a timeline entry, and /events subscribers see a closing delta.
		ko.timeline.Sample(obs.Vitals{
			Virtual: float64(res.EndTime),
			Events:  res.Events,
			Windows: res.Windows,
		})
	}
}
