package sim

import "container/heap"

// eventKind discriminates kernel events.
type eventKind uint8

const (
	evStart   eventKind = iota // begin executing a process body
	evDeliver                  // deposit a message into a mailbox
	evWake                     // resume a process sleeping via Sleep
)

// event is a kernel-internal scheduled occurrence. Events are totally
// ordered by (time, proc, seq) so that simulation results are independent
// of engine choice and host processor count.
type event struct {
	t    Time
	proc int    // tie-break: originating process id
	seq  uint64 // tie-break: per-process sequence number
	kind eventKind
	dst  int // destination process id
	msg  *Message
}

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.proc != b.proc {
		return a.proc < b.proc
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events ordered by eventLess.
type eventHeap []*event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (h *eventHeap) push(e *event) { heap.Push(h, e) }

func (h *eventHeap) pop() *event { return heap.Pop(h).(*event) }

func (h *eventHeap) peek() *event {
	if len(*h) == 0 {
		return nil
	}
	return (*h)[0]
}
