package sim

import "unsafe"

// eventKind discriminates kernel events.
type eventKind uint8

const (
	evStart   eventKind = iota // begin executing a process body
	evDeliver                  // deposit a message into a mailbox
	evWake                     // resume a process sleeping via Sleep
)

// event is a kernel-internal scheduled occurrence. Events are totally
// ordered by (time, proc, seq) so that simulation results are independent
// of engine choice and host processor count. Events are plain values:
// they live inside the per-worker queue and outbox slabs and are copied,
// never pointed to across operations, so scheduling allocates nothing and
// the pending set is one contiguous block of memory per worker instead of
// a pointer heap over scattered pool objects.
type event struct {
	t    Time
	seq  uint64 // tie-break: per-process sequence number
	msg  *Message
	proc int // tie-break: originating process id
	dst  int // destination process id
	kind eventKind
}

// eventBytes is the slab footprint of one event, reported by the
// sim_xworker_batch_bytes counter.
var eventBytes = int64(unsafe.Sizeof(event{}))

// eventLess orders events by (time, proc, seq). It takes pointers (into
// the queue and outbox slabs) so the comparison copies no event values.
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.proc != b.proc {
		return a.proc < b.proc
	}
	return a.seq < b.seq
}

// eventCmp is eventLess as a three-way comparison for slices.SortFunc.
// The (time, proc, seq) order is strict, so 0 is never returned for
// distinct events.
func eventCmp(a, b event) int {
	if a.t != b.t {
		if a.t < b.t {
			return -1
		}
		return 1
	}
	if a.proc != b.proc {
		if a.proc < b.proc {
			return -1
		}
		return 1
	}
	if a.seq < b.seq {
		return -1
	}
	if a.seq > b.seq {
		return 1
	}
	return 0
}

// QueueKind selects the pending-event queue implementation. Because the
// event order (time, proc, seq) is a strict total order, every correct
// implementation pops events in exactly the same sequence: simulation
// results are bit-identical across kinds, and the choice is purely a
// performance knob (benchmarked head-to-head in BenchmarkKernelQueue*).
type QueueKind int

const (
	// QueueQuaternary is an implicit 4-ary min-heap: half the depth of a
	// binary heap, so pops touch fewer cache lines. It wins at large
	// process counts (deep queues, the paper's 6400-10000-rank regime)
	// and is the default; the binary heap is a few percent ahead on
	// small queues.
	QueueQuaternary QueueKind = iota
	// QueueBinary is a classic implicit binary min-heap (the seed
	// kernel's structure, hand-rolled to avoid container/heap's
	// interface-call overhead), kept for comparison.
	QueueBinary
)

// String implements fmt.Stringer.
func (q QueueKind) String() string {
	if q == QueueBinary {
		return "binary"
	}
	return "quaternary"
}

// eventQueue is a min-heap of pending event values, popping in ascending
// (time, proc, seq) order. It is a concrete type — not an interface —
// so the hot-path push/pop/peek calls dispatch directly and peek
// inlines; the kind branch inside push/pop is perfectly predicted.
// Sifts move the hole rather than swapping, and an ascending push (the
// common pattern: arrivals trend upward, and the barrier merge inserts
// sorted runs) sifts at most one level.
type eventQueue struct {
	kind QueueKind
	a    []event
}

// newEventQueue constructs the queue implementation selected by kind.
func newEventQueue(kind QueueKind) eventQueue {
	return eventQueue{kind: kind}
}

// grow preallocates capacity for n pending events so steady-state pushes
// never reallocate the slab.
func (h *eventQueue) grow(n int) {
	if cap(h.a)-len(h.a) < n {
		a := make([]event, len(h.a), len(h.a)+n)
		copy(a, h.a)
		h.a = a
	}
}

func (h *eventQueue) len() int { return len(h.a) }

// peek returns a pointer to the earliest pending event, valid until the
// next push or pop, or nil when the queue is empty.
func (h *eventQueue) peek() *event {
	if len(h.a) == 0 {
		return nil
	}
	return &h.a[0]
}

func (h *eventQueue) push(e event) {
	if h.kind == QueueBinary {
		h.pushBin(e)
	} else {
		h.pushQuad(e)
	}
}

func (h *eventQueue) pop() event {
	if h.kind == QueueBinary {
		return h.popBin()
	}
	return h.popQuad()
}

func (h *eventQueue) pushBin(e event) {
	a := append(h.a, e)
	i := len(a) - 1
	for i > 0 {
		par := (i - 1) / 2
		if !eventLess(&e, &a[par]) {
			break
		}
		a[i] = a[par]
		i = par
	}
	a[i] = e
	h.a = a
}

func (h *eventQueue) popBin() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = event{} // drop the stale message pointer for the collector
	h.a = a[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && eventLess(&a[c+1], &a[c]) {
				c++
			}
			if !eventLess(&a[c], &last) {
				break
			}
			a[i] = a[c]
			i = c
		}
		a[i] = last
	}
	return top
}

// Quaternary heap: children of node i are 4i+1..4i+4.

func (h *eventQueue) pushQuad(e event) {
	a := append(h.a, e)
	i := len(a) - 1
	for i > 0 {
		par := (i - 1) / 4
		if !eventLess(&e, &a[par]) {
			break
		}
		a[i] = a[par]
		i = par
	}
	a[i] = e
	h.a = a
}

func (h *eventQueue) popQuad() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = event{} // drop the stale message pointer for the collector
	h.a = a[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if eventLess(&a[j], &a[min]) {
					min = j
				}
			}
			if !eventLess(&a[min], &last) {
				break
			}
			a[i] = a[min]
			i = min
		}
		a[i] = last
	}
	return top
}
