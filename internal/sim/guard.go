package sim

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mpisim/internal/obs"
)

// Kernel guard: watchdog, budgets and graceful abort.
//
// A long sweep is a production job: one runaway configuration (a fault
// scenario that makes a receive unmatchable, a workload whose event count
// explodes, a livelocked protocol) must not hang or OOM the whole run.
// The guard bounds a run by event count, virtual time, no-progress event
// count (the watchdog) and external context cancellation; when any bound
// trips, the kernel stops popping events, tears the process goroutines
// down, and Run returns a *partial* Result together with an *AbortError
// carrying a per-rank wait-state dump and a diagnostic Snapshot (queue
// depths, mailbox sizes, the most recent events).
//
// Cost discipline mirrors obs.go: with Limits inactive the hot loop pays
// a single nil pointer check per event; when active, the per-event work
// is a ring-buffer store and a couple of compares on worker-local state,
// with the shared atomic event counter touched only every
// guardFlushEvery events.

// Limits bounds a kernel run. The zero value disables the guard
// entirely (no hot-path cost beyond one nil check per event).
type Limits struct {
	// MaxEvents aborts the run after approximately this many kernel
	// events across all workers (checked at flush granularity;
	// 0 = unlimited).
	MaxEvents int64
	// MaxTime aborts the run once an event beyond this virtual time is
	// processed (0 = unlimited).
	MaxTime Time
	// StallEvents is the watchdog: abort after this many consecutive
	// events on one worker without virtual time advancing — the
	// signature of a livelocked protocol, e.g. unbounded same-time
	// retransmission. It must comfortably exceed the legitimate
	// same-timestamp burst size (at least the process count;
	// 0 = disabled).
	StallEvents int64
	// Ctx, when non-nil, cancels the run from outside (wall-clock
	// timeouts via context.WithTimeout). Cancellation is detected
	// promptly by a watcher goroutine; the workers observe the abort
	// flag at the next event.
	Ctx context.Context
}

// active reports whether any bound is set.
func (l Limits) active() bool {
	return l.MaxEvents > 0 || l.MaxTime > 0 || l.StallEvents > 0 || l.Ctx != nil
}

// guardFlushEvery is the per-worker event countdown between flushes of
// the local event count into the shared budget counter.
const guardFlushEvery = 64

// guardRingSize is the per-worker capacity of the recent-event ring
// recorded for diagnostic snapshots.
const guardRingSize = 32

// tripKind classifies what tripped the guard, for metrics.
type tripKind uint8

const (
	tripWatchdog tripKind = iota
	tripBudget
	tripCancel
	tripPanic
	numTripKinds
)

// kernelGuard is the shared abort state of one kernel run.
type kernelGuard struct {
	limits Limits
	// events is the flushed global event count checked against MaxEvents.
	events atomic.Int64
	// abort is the stop flag every worker loop polls; reason/kind are
	// written once, by whichever trip wins, under mu.
	abort  atomic.Bool
	mu     sync.Mutex
	reason string
	trips  [numTripKinds]*obs.Counter
}

// trip requests an abort. The first caller wins; later trips are noops
// so the reported reason is the root cause, not a cascade.
func (g *kernelGuard) trip(kind tripKind, reason string) {
	g.mu.Lock()
	if !g.abort.Load() {
		g.reason = reason
		g.abort.Store(true)
		if c := g.trips[kind]; c != nil {
			c.Add(0, 1)
		}
	}
	g.mu.Unlock()
}

func (g *kernelGuard) tripped() bool { return g.abort.Load() }

func (g *kernelGuard) why() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reason
}

// guardState is the per-worker guard accumulator. Like workerObs it is
// only touched by the goroutine holding the worker's run token.
type guardState struct {
	g         *kernelGuard
	countdown int
	// Stall watchdog: consecutive events without time advancing.
	lastTime Time
	stalled  int64
	// High-water mark of w.events already flushed into g.events.
	synced int64
	// Ring of the most recent events, for Snapshot.LastEvents.
	ring [guardRingSize]EventRecord
	rpos int
	rlen int
}

// setupGuard wires the guard before the first window; a noop when the
// configured Limits are inactive, keeping the hot path to one nil check.
func (k *Kernel) setupGuard() {
	if !k.cfg.Limits.active() {
		return
	}
	g := &kernelGuard{limits: k.cfg.Limits}
	if reg := k.cfg.Metrics; reg != nil {
		g.trips[tripWatchdog] = reg.Counter("sim_watchdog_trips_total", "watchdog aborts: no virtual-time progress within the stall budget")
		g.trips[tripBudget] = reg.Counter("sim_budget_trips_total", "aborts from event-count or virtual-time budgets")
		g.trips[tripCancel] = reg.Counter("sim_cancel_trips_total", "aborts from external context cancellation")
		g.trips[tripPanic] = reg.Counter("sim_panic_trips_total", "process panics captured by the kernel")
	}
	k.guard = g
	for _, w := range k.workers {
		w.guard = &guardState{g: g, countdown: guardFlushEvery}
	}
}

// guardTick is the per-event hook: record the event, advance the stall
// watchdog, and enforce the time and (at flush granularity) event
// budgets. Arguments are copied out of the event before it was freed.
func (w *worker) guardTick(t Time, kind eventKind, src, dst int) {
	gs := w.guard
	r := &gs.ring[gs.rpos]
	r.Time, r.Kind, r.Src, r.Dst, r.Worker = t, kind.String(), src, dst, w.id
	gs.rpos++
	if gs.rpos == guardRingSize {
		gs.rpos = 0
	}
	if gs.rlen < guardRingSize {
		gs.rlen++
	}

	lim := &gs.g.limits
	if t > gs.lastTime {
		gs.lastTime = t
		gs.stalled = 0
	} else if lim.StallEvents > 0 {
		gs.stalled++
		if gs.stalled >= lim.StallEvents {
			gs.g.trip(tripWatchdog, fmt.Sprintf(
				"watchdog: %d events without virtual-time progress at t=%g on worker %d",
				gs.stalled, float64(t), w.id))
			gs.stalled = 0
		}
	}
	if lim.MaxTime > 0 && t > lim.MaxTime {
		gs.g.trip(tripBudget, fmt.Sprintf(
			"virtual-time budget exhausted: event at t=%g past budget %g",
			float64(t), float64(lim.MaxTime)))
	}

	gs.countdown--
	if gs.countdown <= 0 {
		gs.countdown = guardFlushEvery
		total := gs.g.events.Add(w.events - gs.synced)
		gs.synced = w.events
		if lim.MaxEvents > 0 && total >= lim.MaxEvents {
			gs.g.trip(tripBudget, fmt.Sprintf(
				"event budget exhausted: %d events >= limit %d", total, lim.MaxEvents))
		}
	}
}

// watchCtx aborts the run when the configured context is canceled. The
// returned stop function must be called when the run completes.
func (k *Kernel) watchCtx() func() {
	g := k.guard
	if g == nil || g.limits.Ctx == nil {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-g.limits.Ctx.Done():
			g.trip(tripCancel, "canceled: "+g.limits.Ctx.Err().Error())
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// ProcWaitState is one process's state in a wait-state dump: what it was
// doing when the run was aborted or found deadlocked.
type ProcWaitState struct {
	Proc    int    `json:"proc"`
	Name    string `json:"name"`
	State   string `json:"state"` // "new", "running", "blocked", "done"
	Now     Time   `json:"now"`
	Waiting string `json:"waiting,omitempty"` // blocked on what, e.g. "recv(src=3, tag=any)"
	Mailbox int    `json:"mailbox"`           // arrived-but-unmatched messages
	Sent    int64  `json:"sent"`
	Recvd   int64  `json:"recvd"`
}

// EventRecord is one entry of a Snapshot's recent-event ring.
type EventRecord struct {
	Time   Time   `json:"t"`
	Kind   string `json:"kind"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Worker int    `json:"worker"`
}

// Snapshot is the diagnostic state captured when a run aborts: enough to
// see where the simulation was without rerunning it.
type Snapshot struct {
	Reason string `json:"reason"`
	// QueueDepths is the pending-event count per worker at abort.
	QueueDepths []int `json:"queue_depths"`
	// LastEvents are the most recent events (up to guardRingSize per
	// worker), oldest first.
	LastEvents []EventRecord   `json:"last_events,omitempty"`
	Procs      []ProcWaitState `json:"procs"`
}

// AbortError reports a run stopped before completion: a guard trip
// (watchdog, budget, cancellation) or a deadlock. Run returns it
// alongside the partial Result.
type AbortError struct {
	Reason   string
	States   []ProcWaitState
	Snapshot *Snapshot // nil when the guard was inactive (plain deadlock)
}

// Error keeps the legacy single-line form; deadlocks preserve the
// "deadlock, N blocked processes" text callers match on.
func (e *AbortError) Error() string { return "sim: " + e.Reason }

// Dump renders the per-rank wait-state table, one line per process.
func (e *AbortError) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "abort: %s\n", e.Reason)
	for _, s := range e.States {
		fmt.Fprintf(&b, "  proc %4d %-12s %-8s t=%-14g mailbox=%-4d sent=%-6d recvd=%-6d %s\n",
			s.Proc, s.Name, s.State, float64(s.Now), s.Mailbox, s.Sent, s.Recvd, s.Waiting)
	}
	if e.Snapshot != nil {
		fmt.Fprintf(&b, "  pending events per worker: %v\n", e.Snapshot.QueueDepths)
	}
	return b.String()
}

// PanicError reports a process body panic, with the diagnostic snapshot
// when the guard was active.
type PanicError struct {
	Proc     int
	Name     string
	Value    interface{}
	Snapshot *Snapshot
}

// Error keeps the seed kernel's message form.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: proc %d (%s) panicked: %v", e.Proc, e.Name, e.Value)
}

// anyStr renders a RecvSrcTag argument ("any" for the wildcard).
func anyStr(v int) string {
	if v == Any {
		return "any"
	}
	return strconv.Itoa(v)
}

// waitStates captures the per-process wait-state dump. Called by the
// driver after all workers parked, so the fields are quiescent.
func (k *Kernel) waitStates() []ProcWaitState {
	states := make([]ProcWaitState, len(k.procs))
	for i, p := range k.procs {
		sl := p.slot
		s := ProcWaitState{
			Proc:    p.id,
			Name:    p.name,
			Now:     sl.now,
			Mailbox: len(sl.mailbox) - sl.mbHead,
			Sent:    sl.stats.MsgsSent,
			Recvd:   sl.stats.MsgsRecvd,
		}
		switch sl.state {
		case stNew:
			s.State = "new"
		case stRunnable:
			s.State = "running"
		case stDone:
			s.State = "done"
		case stBlocked:
			s.State = "blocked"
			switch sl.matchMode {
			case matchSrcTag:
				s.Waiting = fmt.Sprintf("recv(src=%s, tag=%s)", anyStr(sl.matchSrc), anyStr(sl.matchTag))
			case matchFunc:
				s.Waiting = "recv(predicate)"
			default:
				s.Waiting = "sleep"
			}
		}
		states[i] = s
	}
	return states
}

// snapshot assembles the diagnostic snapshot at abort.
func (k *Kernel) snapshot(reason string, states []ProcWaitState) *Snapshot {
	snap := &Snapshot{
		Reason:      reason,
		QueueDepths: make([]int, len(k.workers)),
		Procs:       states,
	}
	for i, w := range k.workers {
		snap.QueueDepths[i] = w.queue.len()
		if gs := w.guard; gs != nil {
			for j := 0; j < gs.rlen; j++ {
				idx := gs.rpos - gs.rlen + j
				if idx < 0 {
					idx += guardRingSize
				}
				snap.LastEvents = append(snap.LastEvents, gs.ring[idx])
			}
		}
	}
	sort.SliceStable(snap.LastEvents, func(a, b int) bool {
		return snap.LastEvents[a].Time < snap.LastEvents[b].Time
	})
	return snap
}

// String implements fmt.Stringer for the snapshot's event kinds.
func (k eventKind) String() string {
	switch k {
	case evStart:
		return "start"
	case evWake:
		return "wake"
	default:
		return "deliver"
	}
}
