package sim

import (
	"testing"
	"testing/quick"
)

// iterativeSeedBounds is a verbatim port of the seed kernel's
// null-message promise computation: a bounded Gauss-Seidel fixed-point
// iteration over
//
//	p_i = lookahead + min(top_i, min_{j != i} p_j)
//
// with bounds[i] = min_{j != i} p_j. It is the reference the closed-form
// safeBounds must reproduce exactly (same float operations, so ==
// comparison is valid). nw >= 2 is assumed; the seed's nw == 1 branch
// was dead code because runParallel is only entered with nw > 1.
func iterativeSeedBounds(tops []Time, lookahead Time) ([]Time, bool) {
	nw := len(tops)
	start := Infinity
	for _, t := range tops {
		if t < start {
			start = t
		}
	}
	if start >= Infinity {
		return nil, false
	}
	promises := make([]Time, nw)
	for i := range promises {
		promises[i] = start + lookahead
	}
	for iter := 0; iter < nw+1; iter++ {
		changed := false
		for i := range promises {
			minPeer := Infinity
			for j := range promises {
				if j != i && promises[j] < minPeer {
					minPeer = promises[j]
				}
			}
			next := tops[i]
			if minPeer < next {
				next = minPeer
			}
			if p := next + lookahead; p > promises[i] {
				promises[i] = p
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	bounds := make([]Time, nw)
	for i := range bounds {
		minPeer := Infinity
		for j := range promises {
			if j != i && promises[j] < minPeer {
				minPeer = promises[j]
			}
		}
		bounds[i] = minPeer
	}
	return bounds, true
}

// boundsKernel builds a kernel whose workers' queues have exactly the
// given top times (Infinity = empty queue) so safeBounds can be driven
// directly.
func boundsKernel(tops []Time, lookahead Time, proto Protocol) *Kernel {
	k := &Kernel{cfg: Config{Workers: len(tops), Lookahead: lookahead, Protocol: proto}}
	k.workers = make([]*worker, len(tops))
	for i := range k.workers {
		w := &worker{id: i, kernel: k, queue: newEventQueue(QueueQuaternary)}
		if tops[i] < Infinity {
			w.queue.push(event{t: tops[i], proc: i})
		}
		k.workers[i] = w
	}
	k.bounds = make([]Time, len(tops))
	return k
}

// Property (testing/quick): the O(W) closed-form safeBounds equals the
// seed's O(W^2)-per-sweep iterative fixed point, bit for bit, for every
// worker count, lookahead and top-time pattern — including ties,
// all-idle peers and Infinity tops. Window counts (and therefore host
// predictions and results/*.txt) are thus unchanged from the seed.
func TestNullMessageBoundsMatchIterative(t *testing.T) {
	f := func(raw []uint16, nwRaw uint8, lRaw uint16) bool {
		nw := 2 + int(nwRaw)%7 // 2..8 workers
		lookahead := Time(lRaw%1000+1) * 1e-6
		tops := make([]Time, nw)
		for i := range tops {
			switch {
			case i >= len(raw) || raw[i]%5 == 0:
				tops[i] = Infinity // empty queue / idle worker
			default:
				tops[i] = Time(raw[i]%97) * 1e-3 // small range forces ties
			}
		}
		k := boundsKernel(tops, lookahead, ProtocolNullMessage)
		got, any := k.safeBounds()
		want, wantAny := iterativeSeedBounds(tops, lookahead)
		if any != wantAny {
			return false
		}
		if !any {
			return true
		}
		for i := range want {
			if got[i] != want[i] {
				t.Logf("tops=%v L=%v worker=%d got=%v want=%v", tops, lookahead, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The window protocol bound is lookahead past the global minimum for
// every worker, and safeBounds reports no work only when all queues are
// empty.
func TestWindowBounds(t *testing.T) {
	k := boundsKernel([]Time{5, Infinity, 3}, 2, ProtocolWindow)
	bounds, any := k.safeBounds()
	if !any {
		t.Fatal("expected work")
	}
	for i, b := range bounds {
		if b != 5 {
			t.Fatalf("worker %d: bound %v, want 5", i, b)
		}
	}
	k = boundsKernel([]Time{Infinity, Infinity}, 2, ProtocolWindow)
	if _, any := k.safeBounds(); any {
		t.Fatal("expected no work on empty queues")
	}
}
