package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mpisim/internal/obs"
)

// pingPong spawns a 2-proc message loop of rounds exchanges with dt
// seconds between hops.
func pingPongKernel(t *testing.T, cfg Config, rounds int, dt Time) *Kernel {
	t.Helper()
	k, err := NewKernel(cfg)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	body := func(p *Proc) {
		peer := 1 - p.ID()
		for i := 0; i < rounds; i++ {
			if p.ID() == 0 {
				p.Send(peer, nil, 8, p.Now()+dt)
				p.FreeMessage(p.Recv(anyMsg))
			} else {
				p.FreeMessage(p.Recv(anyMsg))
				p.Send(peer, nil, 8, p.Now()+dt)
			}
		}
	}
	k.Spawn("a", body)
	k.Spawn("b", body)
	return k
}

func TestGuardEventBudget(t *testing.T) {
	k := pingPongKernel(t, Config{Workers: 1, Limits: Limits{MaxEvents: 200}}, 1_000_000, 1e-6)
	res, err := k.Run()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if !strings.Contains(ae.Reason, "event budget") {
		t.Fatalf("reason = %q, want event budget trip", ae.Reason)
	}
	if res == nil || res.Events == 0 {
		t.Fatalf("want partial result with progress, got %+v", res)
	}
	// Budget is enforced at flush granularity, not exactly.
	if res.Events > 200+2*guardFlushEvery {
		t.Fatalf("ran %d events, far past the 200-event budget", res.Events)
	}
	if ae.Snapshot == nil || len(ae.Snapshot.LastEvents) == 0 || len(ae.Snapshot.QueueDepths) != 1 {
		t.Fatalf("snapshot missing or empty: %+v", ae.Snapshot)
	}
	if len(ae.States) != 2 {
		t.Fatalf("wait states = %d, want 2", len(ae.States))
	}
}

func TestGuardTimeBudget(t *testing.T) {
	k := pingPongKernel(t, Config{Workers: 1, Limits: Limits{MaxTime: 0.5}}, 1_000_000, 1e-3)
	res, err := k.Run()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if !strings.Contains(ae.Reason, "virtual-time budget") {
		t.Fatalf("reason = %q, want virtual-time budget trip", ae.Reason)
	}
	if res.EndTime > 0.6 {
		t.Fatalf("partial EndTime %v, want ~0.5", res.EndTime)
	}
}

func TestGuardWatchdogLivelock(t *testing.T) {
	// Zero-delay self-message loop: virtual time never advances.
	reg := obs.NewRegistry(1)
	reg.SetEnabled(true)
	k, err := NewKernel(Config{Workers: 1, Metrics: reg, Limits: Limits{StallEvents: 500}})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("spin", func(p *Proc) {
		for {
			p.Send(p.ID(), nil, 0, p.Now())
			p.FreeMessage(p.Recv(anyMsg))
		}
	})
	_, err = k.Run()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if !strings.Contains(ae.Reason, "watchdog") {
		t.Fatalf("reason = %q, want watchdog trip", ae.Reason)
	}
	if len(ae.States) != 1 || ae.States[0].State == "done" {
		t.Fatalf("want a live wait state, got %+v", ae.States)
	}
	if got := metricValue(t, reg, "sim_watchdog_trips_total"); got != 1 {
		t.Fatalf("sim_watchdog_trips_total = %d, want 1", got)
	}
}

func TestGuardContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	k, err := NewKernel(Config{Workers: 1, Limits: Limits{Ctx: ctx}})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("spin", func(p *Proc) {
		for {
			p.Send(p.ID(), nil, 0, p.Now()+1e-9)
			p.FreeMessage(p.Recv(anyMsg))
		}
	})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err = k.Run()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if !strings.Contains(ae.Reason, "canceled") {
		t.Fatalf("reason = %q, want cancellation", ae.Reason)
	}
}

func TestGuardAbortParallelEngine(t *testing.T) {
	for _, rp := range []bool{false, true} {
		k := pingPongKernel(t, Config{
			Workers: 2, Lookahead: 1e-6, RealParallel: rp,
			Limits: Limits{MaxEvents: 300},
		}, 1_000_000, 1e-6)
		res, err := k.Run()
		var ae *AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("RealParallel=%v: want *AbortError, got %v", rp, err)
		}
		if res == nil || res.Events == 0 {
			t.Fatalf("RealParallel=%v: want partial result", rp)
		}
	}
}

func TestGuardAbortTeardownSleepers(t *testing.T) {
	// A sleeper blocked far in the future must be torn down cleanly when
	// the budget trips (its wake event is still queued).
	k, err := NewKernel(Config{Workers: 1, Limits: Limits{MaxEvents: 100}})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1e6)
		t.Error("sleeper body continued past teardown")
	})
	k.Spawn("spin", func(p *Proc) {
		for {
			p.Send(p.ID(), nil, 0, p.Now()+1e-9)
			p.FreeMessage(p.Recv(anyMsg))
		}
	})
	_, err = k.Run()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
}

func TestGuardPanicSnapshot(t *testing.T) {
	k, err := NewKernel(Config{Workers: 1, Limits: Limits{MaxEvents: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	k.Spawn("boom", func(p *Proc) {
		p.Advance(1)
		panic("kaboom")
	})
	k.Spawn("waiter", func(p *Proc) {
		p.FreeMessage(p.Recv(anyMsg)) // never satisfied: torn down
	})
	_, err = k.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Proc != 0 || pe.Value != "kaboom" {
		t.Fatalf("panic identity wrong: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "panicked") {
		t.Fatalf("message lost legacy form: %q", pe.Error())
	}
	if pe.Snapshot == nil {
		t.Fatal("panic with guard live should carry a snapshot")
	}
}

func TestGuardPanicWithoutGuardKeepsLegacyError(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("boom", func(p *Proc) { panic("kaboom") })
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "panicked: kaboom") {
		t.Fatalf("want legacy panicked error, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T", err)
	}
	if pe.Snapshot != nil {
		t.Fatal("no snapshot expected without the guard")
	}
}

func TestDeadlockIsAbortErrorWithWaitStates(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("a", func(p *Proc) { p.RecvSrcTag(Any, 7) })
	_, err := k.Run()
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AbortError, got %v", err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock text lost: %v", err)
	}
	if len(ae.States) != 1 || ae.States[0].State != "blocked" ||
		!strings.Contains(ae.States[0].Waiting, "tag=7") {
		t.Fatalf("wait state wrong: %+v", ae.States)
	}
	if d := ae.Dump(); !strings.Contains(d, "blocked") || !strings.Contains(d, "recv(src=any, tag=7)") {
		t.Fatalf("dump missing wait detail:\n%s", d)
	}
}

func TestGuardPoolsSurviveAbort(t *testing.T) {
	// Abort with events still queued, then run a healthy kernel: the
	// shared pools must not hand out corrupted objects.
	k := pingPongKernel(t, Config{Workers: 1, Limits: Limits{MaxEvents: 150}}, 1_000_000, 1e-6)
	if _, err := k.Run(); err == nil {
		t.Fatal("expected abort")
	}
	k2 := pingPongKernel(t, Config{Workers: 1}, 500, 1e-6)
	res, err := k2.Run()
	if err != nil {
		t.Fatalf("healthy run after abort: %v", err)
	}
	if res.Delivered != 1000 {
		t.Fatalf("delivered %d, want 1000", res.Delivered)
	}
}

// metricValue reads a counter total from the registry's JSON-free API.
func metricValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name == name {
			return int64(m.Value)
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
