package sim

import (
	"strings"
	"testing"
)

// TestDeadlockTeardownParallel exercises terminateBlocked under the
// really-parallel engine: workers run on separate goroutines, several
// processes deadlock in Recv (some with pooled messages sitting
// unmatched in their mailboxes), and the kernel must report the
// deadlock, unwind every blocked goroutine, and leave the shared pools
// consistent (the live guards in pool.go panic on any double-free).
// Run with -race.
func TestDeadlockTeardownParallel(t *testing.T) {
	const n = 12
	build := func() (*Result, error) {
		k, err := NewKernel(Config{Workers: 4, Lookahead: 1e-6, RealParallel: true, Protocol: ProtocolWindow})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			k.Spawn("p", func(p *Proc) {
				switch {
				case p.ID()%3 == 0:
					// Sends a message nobody waits for specifically, then
					// blocks forever: the delivery lands in a mailbox and must
					// not be double-freed at teardown.
					p.Send((p.ID()+1)%n, "orphan", 8, p.Now()+1e-6)
					p.Recv(func(m *Message) bool { return false })
				case p.ID()%3 == 1:
					// Receives one message (recycling it), then deadlocks.
					m := p.RecvSrcTag(Any, Any)
					p.FreeMessage(m)
					p.Recv(func(m *Message) bool { return false })
				default:
					// Completes normally after some local work.
					p.Advance(1e-3)
				}
			})
		}
		return k.Run()
	}
	// Run the deadlocking program twice: the second run reuses the shared
	// sync.Pools seeded by the first teardown, so stale liveness state
	// from an incorrect unwind would trip the double-free guards here.
	for round := 0; round < 2; round++ {
		_, err := build()
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("round %d: expected deadlock error, got %v", round, err)
		}
		if !strings.Contains(err.Error(), "blocked processes") {
			t.Fatalf("round %d: error should list blocked processes: %v", round, err)
		}
	}
	// The pools must still be usable for a clean run.
	res := runKernel(t, Config{Workers: 4, Lookahead: 1e-5, RealParallel: true}, n, ringProgram(n, 3, 1e-5))
	if res.EndTime <= 0 {
		t.Fatal("post-teardown run did not advance time")
	}
}

// TestBodyPanicParallel: a panicking body under the parallel engine must
// surface as an error, not hang the barrier or corrupt the pools.
func TestBodyPanicParallel(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 2, Lookahead: 1e-6, RealParallel: true})
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) {
			p.Advance(1e-3)
			if p.ID() == 2 {
				panic("boom")
			}
		})
	}
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected body panic error, got %v", err)
	}
}

// TestMessageDoubleFreePanics pins the pool guard: freeing a received
// message twice must panic rather than corrupt the free list.
func TestMessageDoubleFreePanics(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("s", func(p *Proc) { p.Send(1, nil, 1, p.Now()+1) })
	k.Spawn("r", func(p *Proc) {
		m := p.RecvSrcTag(Any, Any)
		p.FreeMessage(m)
		p.FreeMessage(m) // must panic; captured by run() as a proc error
	})
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "double-free") {
		t.Fatalf("expected double-free panic error, got %v", err)
	}
}

// TestQueueEquivalence is the queue axis of the determinism property:
// for every engine x protocol combination, both queue implementations
// must produce identical results (the event order is a strict total
// order, so any correct priority queue pops identically).
func TestQueueEquivalence(t *testing.T) {
	const n = 12
	build := func(workers int, real bool, proto Protocol, queue QueueKind) *Result {
		cfg := Config{Workers: workers, RealParallel: real, Protocol: proto, Queue: queue}
		if workers > 1 {
			cfg.Lookahead = 1e-5
		}
		return runKernel(t, cfg, n, ringProgram(n, 4, 1e-5))
	}
	ref := build(1, false, ProtocolWindow, QueueQuaternary)
	for _, workers := range []int{1, 3, 4} {
		for _, real := range []bool{false, true} {
			for _, proto := range []Protocol{ProtocolWindow, ProtocolNullMessage} {
				for _, queue := range []QueueKind{QueueQuaternary, QueueBinary} {
					got := build(workers, real, proto, queue)
					if got.EndTime != ref.EndTime {
						t.Fatalf("w=%d real=%v proto=%v queue=%v: EndTime %v != %v",
							workers, real, proto, queue, got.EndTime, ref.EndTime)
					}
					for i := range ref.Procs {
						if got.Procs[i] != ref.Procs[i] {
							t.Fatalf("w=%d real=%v proto=%v queue=%v: proc %d stats differ",
								workers, real, proto, queue, i)
						}
					}
					if got.Delivered != ref.Delivered || got.Events != ref.Events {
						t.Fatalf("w=%d real=%v proto=%v queue=%v: event counts differ",
							workers, real, proto, queue)
					}
				}
			}
		}
	}
}
