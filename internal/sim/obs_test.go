package sim

import (
	"strings"
	"testing"

	"mpisim/internal/obs"
)

// TestObsTotalsMatchResult checks that the flushed registry totals
// exactly equal the Result counters, and that instrumentation does not
// perturb the simulated result.
func TestObsTotalsMatchResult(t *testing.T) {
	ref := runKernel(t, Config{Workers: 1}, 8, ringProgram(8, 3, 1e-5))

	reg := obs.NewRegistry(4)
	reg.SetEnabled(true)
	cfg := Config{Workers: 4, Lookahead: 1e-5, RealParallel: true, Metrics: reg}
	res := runKernel(t, cfg, 8, ringProgram(8, 3, 1e-5))

	if res.EndTime != ref.EndTime {
		t.Fatalf("instrumented EndTime %v != uninstrumented %v", res.EndTime, ref.EndTime)
	}
	want := map[string]int64{
		"sim_events_total":             res.Events,
		"sim_messages_delivered_total": res.Delivered,
		"sim_cross_worker_total":       res.CrossWorker,
		"sim_windows_total":            res.Windows,
	}
	got := map[string]int64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = int64(s.Value)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %d, want %d", name, got[name], w)
		}
	}
	// Every pooled message allocation is either a free-list hit or a pool
	// miss; the ring program sends one message per delivery.
	allocs := got["sim_pool_msg_hit_total"] + got["sim_pool_msg_miss_total"]
	if allocs != res.Delivered {
		t.Errorf("message pool hits+misses = %d, want %d delivered", allocs, res.Delivered)
	}
	// The ring bodies are classic blocking procs: every start is a
	// goroutine fallback, and no continuation handlers run.
	if got["sim_goroutine_fallbacks_total"] != 8 {
		t.Errorf("sim_goroutine_fallbacks_total = %d, want 8", got["sim_goroutine_fallbacks_total"])
	}
	if got["sim_continuations_total"] != 0 {
		t.Errorf("sim_continuations_total = %d, want 0", got["sim_continuations_total"])
	}
	// Cross-worker traffic went through barrier batches: the byte counter
	// must account for exactly the cross-worker events.
	if wantB := res.CrossWorker * eventBytes; got["sim_xworker_batch_bytes"] != wantB {
		t.Errorf("sim_xworker_batch_bytes = %d, want %d", got["sim_xworker_batch_bytes"], wantB)
	}
}

// TestObsDisabledRegistryStaysZero: a registry that is attached but not
// enabled must record nothing, while the simulation still completes.
func TestObsDisabledRegistryStaysZero(t *testing.T) {
	reg := obs.NewRegistry(1)
	res := runKernel(t, Config{Workers: 1, Metrics: reg}, 4, ringProgram(4, 2, 1e-5))
	if res.Events == 0 {
		t.Fatal("simulation processed no events")
	}
	for _, s := range reg.Snapshot() {
		if s.Value != 0 || s.Count != 0 {
			t.Errorf("disabled registry metric %s recorded value=%g count=%d", s.Name, s.Value, s.Count)
		}
	}
}

// TestObsTracerEmitsSimulatorPlane: an enabled tracer attached to the
// kernel yields worker metadata and sampled counter tracks on the
// simulator plane.
func TestObsTracerEmitsSimulatorPlane(t *testing.T) {
	var sb strings.Builder
	tr := obs.NewTracer(obs.NewJSONLSink(&sb))
	cfg := Config{Workers: 2, Lookahead: 1e-6, Tracer: tr}
	k, err := NewKernel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		k.Spawn("p", func(p *Proc) {
			id := p.ID()
			// Enough traffic for at least two sample points per worker
			// (the wallclock-rate track needs a previous sample).
			for r := 0; r < 400; r++ {
				p.Send((id+1)%n, nil, 8, p.Now()+1e-6)
				p.Recv(anyMsg)
				p.Advance(1e-7)
			}
		})
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"name":"worker 0"`) {
		t.Errorf("missing worker 0 metadata track:\n%.400s", out)
	}
	if !strings.Contains(out, `"name":"queue_depth"`) {
		t.Errorf("missing sampled queue_depth counter track:\n%.400s", out)
	}
	if !strings.Contains(out, `"name":"wall_ns_per_virtual_s"`) {
		t.Errorf("missing wall_ns_per_virtual_s counter track:\n%.400s", out)
	}
}
