package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// runKernel builds a kernel with n procs from body and runs it.
func runKernel(t *testing.T, cfg Config, n int, body func(*Proc)) *Result {
	t.Helper()
	k, err := NewKernel(cfg)
	if err != nil {
		t.Fatalf("NewKernel: %v", err)
	}
	for i := 0; i < n; i++ {
		k.Spawn("p", body)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func anyMsg(*Message) bool { return true }

func TestConfigValidation(t *testing.T) {
	if _, err := NewKernel(Config{Workers: 0}); err == nil {
		t.Fatal("expected error for Workers=0")
	}
	if _, err := NewKernel(Config{Workers: 2, Lookahead: 0}); err == nil {
		t.Fatal("expected error for parallel engine without lookahead")
	}
	if _, err := NewKernel(Config{Workers: 1}); err != nil {
		t.Fatalf("sequential engine should not need lookahead: %v", err)
	}
}

func TestEmptyKernel(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTime != 0 {
		t.Fatalf("EndTime = %v, want 0", res.EndTime)
	}
}

func TestRunTwice(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("a", func(p *Proc) {})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(); err == nil {
		t.Fatal("expected error on second Run")
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("a", func(p *Proc) {})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn("b", func(p *Proc) {})
}

func TestAdvanceAccumulates(t *testing.T) {
	res := runKernel(t, Config{Workers: 1}, 1, func(p *Proc) {
		p.Advance(1.5)
		p.Advance(2.5)
	})
	if res.EndTime != 4 {
		t.Fatalf("EndTime = %v, want 4", res.EndTime)
	}
	if res.Procs[0].ComputeTime != 4 {
		t.Fatalf("ComputeTime = %v, want 4", res.Procs[0].ComputeTime)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("a", func(p *Proc) { p.Advance(-1) })
	if _, err := k.Run(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("expected negative advance error, got %v", err)
	}
}

func TestPingPong(t *testing.T) {
	const latency = Time(1e-5)
	k, _ := NewKernel(Config{Workers: 1})
	var t0End, t1End Time
	k.Spawn("sender", func(p *Proc) {
		p.Advance(1e-3)
		p.Send(1, "ping", 8, p.Now()+latency)
		m := p.Recv(anyMsg)
		if m.Payload != "pong" {
			panic("wrong payload")
		}
		t0End = p.Now()
	})
	k.Spawn("receiver", func(p *Proc) {
		m := p.Recv(anyMsg)
		if m.Payload != "ping" {
			panic("wrong payload")
		}
		p.Advance(2e-3)
		p.Send(0, "pong", 8, p.Now()+latency)
		t1End = p.Now()
	})
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	// receiver: recv completes at 1e-3+1e-5, computes 2e-3, ends there.
	wantT1 := Time(1e-3 + 1e-5 + 2e-3)
	if t1End != wantT1 {
		t.Fatalf("receiver end = %v, want %v", t1End, wantT1)
	}
	wantT0 := wantT1 + latency
	if t0End != wantT0 {
		t.Fatalf("sender end = %v, want %v", t0End, wantT0)
	}
	if res.EndTime != wantT0 {
		t.Fatalf("EndTime = %v, want %v", res.EndTime, wantT0)
	}
	if res.Delivered != 2 {
		t.Fatalf("Delivered = %d, want 2", res.Delivered)
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	// Receiver posts Recv long before the message is sent; blocked time
	// must be accounted.
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("late-sender", func(p *Proc) {
		p.Advance(5)
		p.Send(1, nil, 4, p.Now()+1)
	})
	k.Spawn("early-receiver", func(p *Proc) {
		p.Recv(anyMsg)
		if p.Now() != 6 {
			panic("wrong completion time")
		}
	})
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[1].BlockedTime != 6 {
		t.Fatalf("BlockedTime = %v, want 6", res.Procs[1].BlockedTime)
	}
}

func TestRecvAfterArrivalDoesNotRewindClock(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("sender", func(p *Proc) {
		p.Send(1, nil, 4, p.Now()+1)
	})
	k.Spawn("busy-receiver", func(p *Proc) {
		p.Advance(10) // runs past the arrival time
		p.Sleep(11)   // yield so the delivery is processed
		p.Recv(anyMsg)
		if p.Now() != 11 {
			panic("clock rewound or advanced unexpectedly")
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicMatchOrder(t *testing.T) {
	// Two messages arrive at the same time; the lower sender id must be
	// matched first.
	k, _ := NewKernel(Config{Workers: 1})
	order := []int{}
	k.Spawn("s0", func(p *Proc) { p.Send(2, nil, 1, 5) })
	k.Spawn("s1", func(p *Proc) { p.Send(2, nil, 1, 5) })
	k.Spawn("r", func(p *Proc) {
		p.Sleep(6)
		m1 := p.Recv(anyMsg)
		m2 := p.Recv(anyMsg)
		order = append(order, m1.From, m2.From)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("match order = %v, want [0 1]", order)
	}
}

func TestSelectiveMatch(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("s", func(p *Proc) {
		p.Send(1, "a", 1, 1)
		p.Send(1, "b", 1, 2)
	})
	k.Spawn("r", func(p *Proc) {
		// Ask for "b" first even though "a" arrives earlier.
		mb := p.Recv(func(m *Message) bool { return m.Payload == "b" })
		ma := p.Recv(func(m *Message) bool { return m.Payload == "a" })
		if mb.Payload != "b" || ma.Payload != "a" {
			panic("wrong selective match")
		}
		if p.Now() != 2 {
			panic("clock must not rewind after out-of-order match")
		}
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHasMatch(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("s", func(p *Proc) { p.Send(1, "x", 1, 1) })
	k.Spawn("r", func(p *Proc) {
		if p.HasMatch(anyMsg) {
			panic("premature match")
		}
		p.Sleep(2)
		if !p.HasMatch(anyMsg) {
			panic("expected match after arrival")
		}
		p.Recv(anyMsg)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("a", func(p *Proc) { p.Recv(anyMsg) })
	k.Spawn("b", func(p *Proc) { p.Recv(anyMsg) })
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestBodyPanicPropagates(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("bad", func(p *Proc) { panic("boom") })
	_, err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestSleep(t *testing.T) {
	res := runKernel(t, Config{Workers: 1}, 1, func(p *Proc) {
		p.Sleep(3)
		p.Sleep(1) // into the past: no-op
		if p.Now() != 3 {
			panic("sleep wrong")
		}
	})
	if res.EndTime != 3 {
		t.Fatalf("EndTime = %v, want 3", res.EndTime)
	}
}

func TestSendValidation(t *testing.T) {
	k, _ := NewKernel(Config{Workers: 1})
	k.Spawn("a", func(p *Proc) { p.Send(99, nil, 1, 1) })
	if _, err := k.Run(); err == nil || !strings.Contains(err.Error(), "unknown proc") {
		t.Fatalf("expected unknown proc error, got %v", err)
	}
	k2, _ := NewKernel(Config{Workers: 1})
	k2.Spawn("a", func(p *Proc) { p.Advance(5); p.Send(0, nil, 1, 1) })
	if _, err := k2.Run(); err == nil || !strings.Contains(err.Error(), "before local time") {
		t.Fatalf("expected causality error, got %v", err)
	}
}

// ringProgram returns a body where each proc passes a token around a ring
// R times, with random per-hop computation drawn deterministically from
// the proc id.
func ringProgram(n, rounds int, latency Time) func(*Proc) {
	return func(p *Proc) {
		next := (p.ID() + 1) % n
		r := rand.New(rand.NewSource(int64(p.ID()) + 1))
		for round := 0; round < rounds; round++ {
			if p.ID() == 0 && round == 0 {
				p.Advance(Time(r.Float64()) * 1e-3)
				p.Send(next, round, 8, p.Now()+latency)
			}
			m := p.Recv(anyMsg)
			p.Advance(Time(r.Float64()) * 1e-3)
			last := p.ID() == 0 && round == rounds-1
			if !last {
				nr := m.Payload.(int)
				if p.ID() == 0 {
					nr++
				}
				p.Send(next, nr, 8, p.Now()+latency)
			}
		}
	}
}

func TestRingCompletes(t *testing.T) {
	res := runKernel(t, Config{Workers: 1}, 8, ringProgram(8, 3, 1e-5))
	if res.EndTime <= 0 {
		t.Fatal("ring did not advance time")
	}
	// 8 procs x 3 rounds of one message each, minus the final hop that is
	// not sent: 23 messages... token passes: each round has 8 sends except
	// the last round where proc 7->0 still occurs but 0 stops. Count via
	// stats instead of hardcoding: every delivered message was sent.
	var sent int64
	for _, ps := range res.Procs {
		sent += ps.MsgsSent
	}
	if sent != res.Delivered {
		t.Fatalf("sent %d != delivered %d", sent, res.Delivered)
	}
}

// engineResults runs the same ring under a given worker count.
func engineResult(t *testing.T, workers int, real bool) *Result {
	t.Helper()
	cfg := Config{Workers: workers, Lookahead: 1e-5, RealParallel: real}
	if workers == 1 {
		cfg.Lookahead = 0
	}
	return runKernel(t, cfg, 12, ringProgram(12, 5, 1e-5))
}

// TestEngineEquivalence is the core determinism property: the sequential
// engine, the modeled parallel engine and the really-parallel engine must
// produce identical simulated results for any worker count.
func TestEngineEquivalence(t *testing.T) {
	ref := engineResult(t, 1, false)
	for _, workers := range []int{2, 3, 5, 12} {
		for _, real := range []bool{false, true} {
			got := engineResult(t, workers, real)
			if got.EndTime != ref.EndTime {
				t.Fatalf("workers=%d real=%v: EndTime %v != %v", workers, real, got.EndTime, ref.EndTime)
			}
			for i := range ref.Procs {
				if got.Procs[i].FinishTime != ref.Procs[i].FinishTime {
					t.Fatalf("workers=%d real=%v proc %d: finish %v != %v",
						workers, real, i, got.Procs[i].FinishTime, ref.Procs[i].FinishTime)
				}
				if got.Procs[i].ComputeTime != ref.Procs[i].ComputeTime {
					t.Fatalf("workers=%d real=%v proc %d: compute differs", workers, real, i)
				}
			}
			if got.Delivered != ref.Delivered {
				t.Fatalf("workers=%d real=%v: delivered %d != %d", workers, real, got.Delivered, ref.Delivered)
			}
		}
	}
}

// TestEngineEquivalenceRandom stresses equivalence on random communication
// patterns: procs send to random peers with random delays >= lookahead.
func TestEngineEquivalenceRandom(t *testing.T) {
	const n = 10
	const lookahead = Time(1e-6)
	build := func(workers int) *Result {
		cfg := Config{Workers: workers, Lookahead: lookahead, RealParallel: workers > 1}
		k, err := NewKernel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			k.Spawn("p", func(p *Proc) {
				r := rand.New(rand.NewSource(int64(p.ID()) * 7919))
				// Everyone sends 5 messages to the next 2 neighbours, then
				// receives its expected 10.
				for j := 0; j < 5; j++ {
					p.Advance(Time(r.Float64()) * 1e-4)
					p.Send((p.ID()+1)%n, j, 64, p.Now()+lookahead+Time(r.Float64())*1e-4)
					p.Send((p.ID()+2)%n, j, 64, p.Now()+lookahead+Time(r.Float64())*1e-4)
				}
				for j := 0; j < 10; j++ {
					p.Recv(anyMsg)
					p.Advance(Time(r.Float64()) * 1e-5)
				}
			})
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := build(1)
	for _, w := range []int{2, 4, 10} {
		got := build(w)
		if got.EndTime != ref.EndTime {
			t.Fatalf("workers=%d: EndTime %v != %v", w, got.EndTime, ref.EndTime)
		}
		for i := range ref.Procs {
			if got.Procs[i] != ref.Procs[i] {
				t.Fatalf("workers=%d proc %d stats differ: %+v vs %+v", w, i, got.Procs[i], ref.Procs[i])
			}
		}
	}
}

func TestCrossWorkerAccounting(t *testing.T) {
	cfg := Config{Workers: 2, Lookahead: 1e-5}
	k, _ := NewKernel(cfg)
	// procs 0,1 on worker 0; procs 2,3 on worker 1.
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) {
			if p.ID() == 0 {
				p.Send(3, nil, 1, p.Now()+1e-5) // cross
				p.Send(1, nil, 1, p.Now()+1e-5) // local
			}
			if p.ID() == 1 || p.ID() == 3 {
				p.Recv(anyMsg)
			}
		})
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossWorker != 1 {
		t.Fatalf("CrossWorker = %d, want 1", res.CrossWorker)
	}
	if res.Windows < 1 {
		t.Fatalf("Windows = %d, want >= 1", res.Windows)
	}
}

func TestManyProcs(t *testing.T) {
	// 1000 processes exchanging with neighbours: exercises scalability of
	// the kernel bookkeeping (the paper simulates up to 10,000 targets).
	const n = 1000
	cfg := Config{Workers: 4, Lookahead: 1e-6, RealParallel: true}
	k, _ := NewKernel(cfg)
	for i := 0; i < n; i++ {
		k.Spawn("p", func(p *Proc) {
			id := p.ID()
			if id+1 < n {
				p.Send(id+1, nil, 8, p.Now()+1e-6)
			}
			if id > 0 {
				p.Recv(anyMsg)
			}
			p.Advance(1e-6)
		})
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != n-1 {
		t.Fatalf("Delivered = %d, want %d", res.Delivered, n-1)
	}
}

func TestWorkersClampedToProcs(t *testing.T) {
	cfg := Config{Workers: 16, Lookahead: 1e-6}
	res := func() *Result {
		k, _ := NewKernel(cfg)
		k.Spawn("only", func(p *Proc) { p.Advance(1) })
		r, err := k.Run()
		if err != nil {
			panic(err)
		}
		return r
	}()
	if res.EndTime != 1 {
		t.Fatalf("EndTime = %v", res.EndTime)
	}
}

func TestMaxProcTime(t *testing.T) {
	res := &Result{Procs: []ProcStats{{ComputeTime: 3}, {ComputeTime: 7}, {ComputeTime: 5}}}
	if got := res.MaxProcTime(func(ps ProcStats) Time { return ps.ComputeTime }); got != 7 {
		t.Fatalf("MaxProcTime = %v, want 7", got)
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolWindow.String() != "window" || ProtocolNullMessage.String() != "null-message" {
		t.Fatal("protocol strings wrong")
	}
}

// pipelineProgram builds a linear pipeline: rank i waits for i-1, computes
// a long block, and forwards to i+1 — the worst case for global windows.
func pipelineProgram(n int, compute Time, latency Time) func(*Proc) {
	return func(p *Proc) {
		if p.ID() > 0 {
			p.Recv(anyMsg)
		}
		p.Advance(compute)
		if p.ID()+1 < n {
			p.Send(p.ID()+1, nil, 8, p.Now()+latency)
		}
	}
}

func TestNullMessageEquivalence(t *testing.T) {
	const n = 8
	run := func(proto Protocol, workers int) *Result {
		k, err := NewKernel(Config{Workers: workers, Lookahead: 1e-5, Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			k.Spawn("p", pipelineProgram(n, 1e-3, 1e-5))
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(ProtocolWindow, 1)
	for _, workers := range []int{2, 4, 8} {
		for _, proto := range []Protocol{ProtocolWindow, ProtocolNullMessage} {
			got := run(proto, workers)
			if got.EndTime != ref.EndTime {
				t.Fatalf("%v workers=%d: EndTime %v != %v", proto, workers, got.EndTime, ref.EndTime)
			}
			for i := range ref.Procs {
				if got.Procs[i].FinishTime != ref.Procs[i].FinishTime {
					t.Fatalf("%v workers=%d: proc %d finish differs", proto, workers, i)
				}
			}
		}
	}
}

func TestNullMessageFewerRoundsOnLocalTraffic(t *testing.T) {
	// Each worker hosts one ping-pong pair that never communicates across
	// workers. The window protocol still synchronizes every worker to the
	// global minimum each round, so it needs roughly one round per
	// message; promise chains bound each worker at the peers' promises
	// plus several lookaheads, letting it batch multiple local exchanges
	// per round.
	const pairs = 4
	const rounds = 40
	const latency = Time(1e-5)
	run := func(proto Protocol) *Result {
		k, _ := NewKernel(Config{Workers: pairs, Lookahead: latency, Protocol: proto})
		for i := 0; i < 2*pairs; i++ {
			k.Spawn("p", func(p *Proc) {
				peer := p.ID() ^ 1 // partner within the pair
				// Stagger pairs so their event times interleave.
				p.Advance(Time(p.ID()/2) * latency / Time(pairs))
				for r := 0; r < rounds; r++ {
					if p.ID()%2 == 0 {
						p.Send(peer, nil, 8, p.Now()+latency)
						p.Recv(anyMsg)
					} else {
						p.Recv(anyMsg)
						p.Send(peer, nil, 8, p.Now()+latency)
					}
				}
			})
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	windowRounds := run(ProtocolWindow).Windows
	nullRounds := run(ProtocolNullMessage).Windows
	if nullRounds >= windowRounds {
		t.Fatalf("null-message rounds %d not fewer than window rounds %d",
			nullRounds, windowRounds)
	}
	// And the results must still be identical.
	if run(ProtocolWindow).EndTime != run(ProtocolNullMessage).EndTime {
		t.Fatal("protocols disagree on simulated time")
	}
}

func TestNullMessageRandomEquivalence(t *testing.T) {
	build := func(proto Protocol, workers int) *Result {
		cfg := Config{Workers: workers, Lookahead: 1e-6, Protocol: proto,
			RealParallel: workers > 1}
		k, err := NewKernel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 10
		for i := 0; i < n; i++ {
			k.Spawn("p", func(p *Proc) {
				r := rand.New(rand.NewSource(int64(p.ID()) * 1237))
				for j := 0; j < 5; j++ {
					p.Advance(Time(r.Float64()) * 1e-4)
					p.Send((p.ID()+1)%n, j, 64, p.Now()+1e-6+Time(r.Float64())*1e-4)
					p.Send((p.ID()+3)%n, j, 64, p.Now()+1e-6+Time(r.Float64())*1e-4)
				}
				for j := 0; j < 10; j++ {
					p.Recv(anyMsg)
					p.Advance(Time(r.Float64()) * 1e-5)
				}
			})
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := build(ProtocolWindow, 1)
	for _, w := range []int{2, 5, 10} {
		got := build(ProtocolNullMessage, w)
		if got.EndTime != ref.EndTime {
			t.Fatalf("workers=%d: EndTime %v != %v", w, got.EndTime, ref.EndTime)
		}
		for i := range ref.Procs {
			if got.Procs[i] != ref.Procs[i] {
				t.Fatalf("workers=%d proc %d stats differ", w, i)
			}
		}
	}
}

// Property (testing/quick): every event queue implementation pops in
// (time, proc, seq) order for random event sets, so simulation results
// cannot depend on the Config.Queue knob.
func TestEventQueueOrderQuick(t *testing.T) {
	for _, kind := range []QueueKind{QueueQuaternary, QueueBinary} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(times []uint16, procs []uint8) bool {
				n := len(times)
				if len(procs) < n {
					n = len(procs)
				}
				if n == 0 {
					return true
				}
				h := newEventQueue(kind)
				for i := 0; i < n; i++ {
					h.push(event{t: Time(times[i]), proc: int(procs[i]), seq: uint64(i)})
				}
				if h.len() != n {
					return false
				}
				prev := h.pop()
				for h.len() > 0 {
					if h.peek() == nil {
						return false
					}
					cur := h.pop()
					if eventLess(&cur, &prev) {
						return false
					}
					prev = cur
				}
				return h.peek() == nil
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSleepInterleavesWithDeliveries(t *testing.T) {
	// A sleeping proc must wake at the right time relative to deliveries.
	k, _ := NewKernel(Config{Workers: 1})
	var order []string
	k.Spawn("sender", func(p *Proc) {
		p.Send(1, "early", 1, 2)
		p.Send(1, "late", 1, 7)
	})
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5)
		if p.HasMatch(func(m *Message) bool { return m.Payload == "early" }) {
			order = append(order, "early-present")
		}
		if p.HasMatch(func(m *Message) bool { return m.Payload == "late" }) {
			order = append(order, "late-present")
		}
		p.Recv(anyMsg)
		p.Recv(anyMsg)
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "early-present" {
		t.Fatalf("order = %v", order)
	}
}

func TestResultStatsConsistency(t *testing.T) {
	res := runKernel(t, Config{Workers: 2, Lookahead: 1e-5}, 6, ringProgram(6, 2, 1e-5))
	var sent, recvd int64
	for _, ps := range res.Procs {
		sent += ps.MsgsSent
		recvd += ps.MsgsRecvd
	}
	if sent != recvd {
		t.Fatalf("sent %d != received %d", sent, recvd)
	}
	if res.Delivered != sent {
		t.Fatalf("delivered %d != sent %d", res.Delivered, sent)
	}
	if res.Events < res.Delivered {
		t.Fatalf("events %d < delivered %d", res.Events, res.Delivered)
	}
}
