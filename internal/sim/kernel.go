// Package sim is the discrete-event simulation kernel underlying the
// MPI-Sim reproduction. It is process-oriented with two execution
// styles: a classic process runs an arbitrary blocking body on a
// (pooled) goroutine and interacts with simulated time through kernel
// calls (Advance, Send, Recv, Sleep); a continuation process (SpawnCont)
// runs resumable run-to-completion handlers inline on its worker's own
// goroutine, arming waits (WaitRecv, WaitSleep) instead of blocking —
// the scalable path for 100k+ simulated ranks, since it needs no
// goroutine, no channel operations and no per-process stack.
//
// Two engines are provided, mirroring MPI-Sim's sequential and
// conservative parallel simulation protocols:
//
//   - the sequential engine (Workers == 1) processes events from a single
//     queue in global (time, proc, seq) order;
//   - the parallel engine partitions processes over Workers host logical
//     processes and synchronizes them with a conservative time-window
//     protocol: in each round the window [T, T+Lookahead) is processed
//     concurrently by all workers, which is safe because every message
//     incurs at least Lookahead of network delay and therefore cannot be
//     received inside the window it was sent in.
//
// Simulation results are bit-identical across engines, worker counts,
// queue implementations and execution styles (continuation vs. forced
// goroutine fallback); the kernel is deterministic by construction
// (total event order (time, proc, seq), deterministic mailbox matching).
//
// The hot path is allocation-free in steady state: events are plain
// values in per-worker slabs, messages are pooled (pool.go), per-process
// hot state lives in one flat slot array (proc.go), and a classic wake
// costs a single channel operation — the goroutine that yields runs the
// worker's event loop itself and hands control directly to the next
// process (zero channel operations when that process is itself, and none
// at all for continuation processes).
package sim

import (
	"fmt"
	"runtime"
	"slices"
	"strings"

	"mpisim/internal/obs"
)

// Protocol selects the conservative synchronization protocol of the
// parallel engine (MPI-Sim provides "a set of conservative parallel
// simulation protocols"; this kernel provides two).
type Protocol int

const (
	// ProtocolWindow processes global time windows [T, T+Lookahead): all
	// workers advance in lockstep from the global minimum event time.
	ProtocolWindow Protocol = iota
	// ProtocolNullMessage exchanges per-worker clock promises
	// (Chandy-Misra-Bryant null messages, evaluated by synchronous
	// reduction rounds): each worker advances to the minimum promise of
	// its peers, which lets workers ahead of the global minimum keep
	// processing when their peers cannot affect them yet. Fewer, larger
	// rounds on pipelined workloads; identical simulation results.
	ProtocolNullMessage
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == ProtocolNullMessage {
		return "null-message"
	}
	return "window"
}

// Config controls the kernel.
type Config struct {
	// Workers is the number of host logical processes (>= 1). It models
	// the host processors of MPI-Sim. Values larger than the number of
	// spawned processes are clamped.
	Workers int
	// Lookahead is the conservative window width; it must be positive for
	// Workers > 1 and no larger than the minimum message delay, which the
	// mpi layer guarantees by setting it to the network's minimum latency.
	Lookahead Time
	// RealParallel, when true, executes each window's workers on separate
	// goroutines (true host parallelism). When false the workers are run
	// sequentially in worker order, which is useful to model large host
	// counts deterministically on few cores; results are identical.
	RealParallel bool
	// Protocol selects the conservative synchronization protocol for
	// Workers > 1 (default ProtocolWindow).
	Protocol Protocol
	// Queue selects the pending-event queue implementation (default
	// QueueQuaternary). Results are identical across kinds; see QueueKind.
	Queue QueueKind
	// ForceGoroutine runs continuation processes (SpawnCont) through the
	// classic blocking-body goroutine path instead of inline continuation
	// scheduling. Results are byte-identical by construction — the knob
	// exists for the scheduler-equivalence tests and as an escape hatch;
	// it does not affect classic processes.
	ForceGoroutine bool
	// Metrics, when non-nil, receives simulator-plane metrics (event
	// throughput, pool hit rates, queue depth, scheduler counters, ...).
	// Size its shard count to Workers; see internal/obs. Nil disables
	// instrumentation down to one pointer check per hook.
	Metrics *obs.Registry
	// Tracer, when non-nil and enabled, receives sampled simulator-plane
	// counter tracks (queue depth, wallclock per virtual second) on
	// obs.PlaneSimulator. Neither option affects simulation results.
	Tracer *obs.Tracer
	// Timeline, when non-nil and enabled, receives time-series snapshots
	// of run vitals and registry metrics, offered from the existing
	// worker sample points (every obsSampleEvery events). A nil or
	// disabled timeline costs the hot path the same single nil check as
	// the other observability options; snapshots are strictly out of
	// band and never change simulation results.
	Timeline *obs.Timeline
	// RunInfo, when non-nil, receives progress heartbeats (virtual time,
	// committed events) from the same sample points, feeding live
	// percent/ETA reporting. Same cost discipline as Timeline.
	RunInfo *obs.RunInfo
	// Limits bounds the run: event/virtual-time budgets, the no-progress
	// watchdog, and context cancellation (guard.go). The zero value
	// disables the guard; an aborted run returns a partial Result and an
	// *AbortError.
	Limits Limits
}

// Result summarizes a completed simulation.
type Result struct {
	// EndTime is the maximum finish time over all processes: the
	// predicted execution time of the target program.
	EndTime Time
	// Procs holds per-process statistics indexed by process id.
	Procs []ProcStats
	// Events is the total number of kernel events processed.
	Events int64
	// Delivered is the number of messages delivered.
	Delivered int64
	// CrossWorker is the number of messages that crossed host workers.
	CrossWorker int64
	// Windows is the number of conservative windows executed (1 for the
	// sequential engine).
	Windows int64
}

// MaxProcTime returns the maximum over processes of the given accessor.
func (r *Result) MaxProcTime(f func(ProcStats) Time) Time {
	var m Time
	for _, ps := range r.Procs {
		if v := f(ps); v > m {
			m = v
		}
	}
	return m
}

// gworker is a pooled carrier goroutine for classic (blocking) process
// bodies: instead of spawning a fresh goroutine per evStart, the worker
// hands the process to a parked carrier over its buffered channel. The
// stack stays warm across bodies and per-start allocation drops to zero
// once the pool has grown to the worker's concurrency watermark.
type gworker struct {
	runq chan *Proc
}

// worker owns a partition of the processes and their pending events.
type worker struct {
	id     int
	kernel *Kernel
	queue  eventQueue
	parked chan struct{} // window-completion signal to the driver
	end    Time          // current window bound, written by the driver
	outbox []event       // cross-worker sends buffered until the barrier
	// Pooled message free list (pool.go) and its bound, sized from this
	// worker's share of the processes. Only touched by goroutines
	// holding this worker's run token.
	freeMsgs []*Message
	msgCap   int
	// Pooled carrier goroutines for classic bodies. freeG holds parked
	// carriers (LIFO: warmest stack first); allG tracks every carrier
	// ever created so Run can retire them. Token-owned, like freeMsgs.
	freeG []*gworker
	allG  []*gworker
	// Persistent window-driver channels, created only under
	// RealParallel: the driver publishes each round's bound on winStart
	// instead of spawning a goroutine per worker per window.
	winStart  chan Time
	winDone   chan struct{}
	events    int64
	delivered int64
	cross     int64
	// contWaiting counts continuation processes of this worker parked in
	// an armed wait — the "continuation queue" depth sampled by obs.
	contWaiting int64
	// obs is nil unless Config.Metrics or Config.Tracer is set; every
	// instrumentation hook gates on that nil check (obs.go).
	obs *workerObs
	// guard is nil unless Config.Limits is active; same nil-check
	// discipline (guard.go).
	guard *guardState
}

// Kernel drives a set of spawned processes to completion.
type Kernel struct {
	cfg     Config
	procs   []*Proc
	slots   []procSlot // flat per-process hot state, indexed by proc id
	workers []*worker
	started bool
	// guard is non-nil when Config.Limits is active (guard.go); teardown
	// is set by terminateBlocked so unblocked processes know a nil resume
	// means "exit", not a wake.
	guard    *kernelGuard
	teardown bool
	// kobs is the resolved metric-handle set (nil when observability is
	// off); kept on the kernel for barrier-side hooks like the
	// cross-worker batch-bytes counter.
	kobs *kernelObs
	// Per-round scratch buffers, reused so rounds do not allocate.
	bounds     []Time
	mergeHeads []outCursor
}

// NewKernel returns a kernel with the given configuration.
func NewKernel(cfg Config) (*Kernel, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sim: Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.Workers > 1 && cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("sim: parallel engine requires positive Lookahead")
	}
	return &Kernel{cfg: cfg}, nil
}

// Spawn registers a classic process with the given blocking body. All
// processes must be spawned before Run. The returned process id equals
// the spawn order. For the goroutine-free fast path, see SpawnCont.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(k.procs),
		name:   name,
		kernel: k,
		body:   body,
	}
	k.procs = append(k.procs, p)
	return p
}

// NumProcs returns the number of spawned processes.
func (k *Kernel) NumProcs() int { return len(k.procs) }

// workerOf maps a process id to its host worker (block distribution, as
// MPI-Sim maps target processes to host processors).
func (k *Kernel) workerOf(proc int) *worker {
	w := proc * len(k.workers) / len(k.procs)
	return k.workers[w]
}

// Run executes the simulation to completion and returns the result. It
// returns an error if any process panicked (*PanicError), if the program
// deadlocks (every process blocked with no messages in flight), or if a
// configured limit tripped (*AbortError in the latter two cases). On
// error the Result is still returned when the kernel got far enough to
// assemble one: a partial result covering the work done before the
// abort, for graceful degradation.
func (k *Kernel) Run() (*Result, error) {
	if k.started {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	k.started = true
	if len(k.procs) == 0 {
		return &Result{}, nil
	}
	n := len(k.procs)
	nw := k.cfg.Workers
	if nw > n {
		nw = n
	}
	k.workers = make([]*worker, nw)
	for i := range k.workers {
		k.workers[i] = &worker{
			id:     i,
			kernel: k,
			parked: make(chan struct{}),
			queue:  newEventQueue(k.cfg.Queue),
		}
	}
	k.bounds = make([]Time, nw)
	// Flatten per-process state and size the per-worker slabs up front
	// from Workers×procs, so the steady state never grows a slab: the
	// slot array, each worker's queue capacity (every proc contributes at
	// most one pending start/wake plus in-flight deliveries), and the
	// message free-list bound.
	k.slots = make([]procSlot, n)
	shares := make([]int, nw)
	for _, p := range k.procs {
		p.worker = k.workerOf(p.id)
		p.slot = &k.slots[p.id]
		p.slot.wid = p.worker.id
		shares[p.worker.id]++
	}
	for i, w := range k.workers {
		w.queue.grow(2*shares[i] + 64)
		w.msgCap = max(minFreeList, 2*shares[i])
		w.freeMsgs = make([]*Message, 0, min(2*shares[i]+64, w.msgCap))
	}
	// Instrumentation attaches before the start events are seeded so the
	// counters see every event from the first start on.
	k.kobs = k.setupObs()
	k.setupGuard()
	defer k.watchCtx()()
	defer k.stopGWorkers()
	for _, p := range k.procs {
		switch {
		case p.cont0 == nil:
			// Classic body: blocks on its carrier goroutine.
			p.resume = make(chan *Message)
		case k.cfg.ForceGoroutine:
			// Old-path semantics: drive the continuation chain with the
			// blocking primitives on a carrier goroutine.
			p.body = contDriver(p.cont0)
			p.resume = make(chan *Message)
		default:
			p.slot.cont = p.cont0
		}
		p.worker.queue.push(event{t: 0, proc: p.id, seq: 0, kind: evStart, dst: p.id})
	}

	res := &Result{}
	if nw == 1 {
		k.workers[0].processWindow(Infinity)
		res.Windows = 1
	} else {
		k.runParallel(res)
	}
	out, err := k.finish(res)
	// After finish so the final sample carries the run's end time (or the
	// partial result's, on abort).
	k.obsFinish(k.kobs, out)
	return out, err
}

// stopGWorkers retires every pooled carrier goroutine. Run defers it
// after finish: by then all carriers are parked on (or heading back to)
// their run queues, and closing the queue ends their loop.
func (k *Kernel) stopGWorkers() {
	for _, w := range k.workers {
		for _, g := range w.allG {
			close(g.runq)
		}
		w.allG, w.freeG = nil, nil
	}
}

// takeG pops a parked carrier goroutine, growing the pool on demand.
// Called with the worker's run token held.
func (w *worker) takeG() *gworker {
	if n := len(w.freeG) - 1; n >= 0 {
		g := w.freeG[n]
		w.freeG[n] = nil
		w.freeG = w.freeG[:n]
		return g
	}
	g := &gworker{runq: make(chan *Proc, 1)}
	w.allG = append(w.allG, g)
	go func() {
		for p := range g.runq {
			p.run(g)
		}
	}()
	return g
}

// runParallel executes conservative rounds until no events remain or the
// guard trips. Under RealParallel each worker gets one persistent driver
// goroutine for the whole run (created here, retired on return): the
// per-round cost is two channel operations per worker instead of a
// goroutine spawn, which is what kept the parallel engine's allocation
// rate above zero per event.
func (k *Kernel) runParallel(res *Result) {
	if k.cfg.RealParallel {
		for _, w := range k.workers {
			w.winStart = make(chan Time)
			w.winDone = make(chan struct{})
			go func(w *worker) {
				for end := range w.winStart {
					w.processWindow(end)
					w.winDone <- struct{}{}
				}
			}(w)
		}
		defer func() {
			for _, w := range k.workers {
				close(w.winStart)
			}
		}()
	}
	for {
		// Barrier: route cross-worker messages produced in the last round.
		k.mergeOutboxes()
		if k.guard != nil && k.guard.tripped() {
			return
		}
		bounds, any := k.safeBounds()
		if !any {
			return
		}
		res.Windows++
		if k.kobs != nil {
			// Live window count: incremented here on the driver between
			// windows, with the final-sample remainder added in obsFinish.
			k.kobs.windows.Inc(0)
			k.kobs.windowsLive++
		}
		if k.cfg.RealParallel {
			for i, w := range k.workers {
				w.winStart <- bounds[i]
			}
			for _, w := range k.workers {
				<-w.winDone
			}
		} else {
			for i, w := range k.workers {
				w.processWindow(bounds[i])
			}
		}
	}
}

// outCursor walks one worker's sorted outbox during the barrier merge.
type outCursor struct {
	w   *worker
	idx int
}

// mergeOutboxes routes every cross-worker event produced in the last
// round into its destination worker's queue. Each outbox is one sorted
// value slab (sorted at window end, inside the worker's parallel
// section), so a k-way merge yields the events in global (time, proc,
// seq) order; inserting an ascending sequence into an implicit heap
// sifts at most one level, so the per-event insertion cost is
// effectively O(1). The seed kernel instead concatenated all outboxes
// and re-sorted the whole pending slice every barrier.
func (k *Kernel) mergeOutboxes() {
	heads := k.mergeHeads[:0]
	for _, w := range k.workers {
		if len(w.outbox) > 0 {
			heads = append(heads, outCursor{w: w, idx: 0})
			if k.kobs != nil {
				k.kobs.xbatchBytes.Add(0, int64(len(w.outbox))*eventBytes)
			}
		}
	}
	switch len(heads) {
	case 0:
	case 1:
		// Common case: only one worker sent cross-worker this round.
		w := heads[0].w
		for i := range w.outbox {
			e := w.outbox[i]
			k.workers[k.slots[e.dst].wid].queue.push(e)
		}
		clearOutbox(w)
	default:
		// Binary min-heap of cursors keyed by their head event.
		less := func(a, b outCursor) bool {
			return eventLess(&a.w.outbox[a.idx], &b.w.outbox[b.idx])
		}
		for i := len(heads)/2 - 1; i >= 0; i-- {
			siftCursor(heads, i, less)
		}
		for len(heads) > 0 {
			c := heads[0]
			e := c.w.outbox[c.idx]
			k.workers[k.slots[e.dst].wid].queue.push(e)
			if c.idx+1 < len(c.w.outbox) {
				heads[0].idx++
			} else {
				clearOutbox(c.w)
				heads[0] = heads[len(heads)-1]
				heads = heads[:len(heads)-1]
			}
			if len(heads) > 0 {
				siftCursor(heads, 0, less)
			}
		}
	}
	k.mergeHeads = heads[:0]
}

// siftCursor restores the min-heap property at index i.
func siftCursor(h []outCursor, i int, less func(a, b outCursor) bool) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && less(h[c+1], h[c]) {
			c++
		}
		if !less(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// clearOutbox resets a drained outbox slab, dropping stale message
// pointers held in the value slack.
func clearOutbox(w *worker) {
	clear(w.outbox)
	w.outbox = w.outbox[:0]
}

// safeBounds computes, per worker, the time bound below which it may
// safely process events this round. It reports false when no events
// remain anywhere. Both protocols are O(Workers) per round; the seed
// kernel evaluated the null-message promises by an O(Workers^2)
// fixed-point iteration, whose limit has the closed form used here (the
// equivalence is property-tested against the iterative reference in
// TestNullMessageBoundsMatchIterative).
func (k *Kernel) safeBounds() ([]Time, bool) {
	// One scan finds the earliest pending event time t1, the first worker
	// a holding it, and the earliest time t2 among the other workers.
	t1, t2 := Infinity, Infinity
	a := -1
	for i, w := range k.workers {
		t := Infinity
		if top := w.queue.peek(); top != nil {
			t = top.t
		}
		if t < t1 {
			t2 = t1
			t1 = t
			a = i
		} else if t < t2 {
			t2 = t
		}
	}
	if a == -1 {
		return nil, false
	}
	bounds := k.bounds
	L := k.cfg.Lookahead
	switch k.cfg.Protocol {
	case ProtocolNullMessage:
		// Clock promises: worker i cannot emit an arrival earlier than
		// lookahead past its next activity, which is its next local event
		// or the earliest arrival its peers could still send it:
		//
		//	p_i = L + min(top_i, min_{j != i} p_j)
		//
		// The least fixed point of this monotone system is
		//
		//	p_a = L + t1            (the earliest worker's own event wins)
		//	p_i = L + min(t_i, p_a) (everyone else is capped by a's promise)
		//
		// and each worker's bound is the minimum promise of its peers:
		// p_a for everyone except a itself, which is bounded by the least
		// promise among the others, L + min(t2, p_a).
		pa := t1 + L
		for i := range bounds {
			bounds[i] = pa
		}
		amin := t2
		if pa < amin {
			amin = pa
		}
		bounds[a] = amin + L
	default: // ProtocolWindow
		end := t1 + L
		for i := range bounds {
			bounds[i] = end
		}
	}
	return bounds, true
}

// finish validates terminal state, tears down blocked processes and
// assembles the (possibly partial) result. On abort or deadlock the
// wait-state dump is captured before teardown, so it reflects what every
// process was doing when the run stopped.
func (k *Kernel) finish(res *Result) (*Result, error) {
	aborted := k.guard != nil && k.guard.tripped()
	var blocked []string
	for _, p := range k.procs {
		if p.slot.state == stBlocked {
			blocked = append(blocked, fmt.Sprintf("%d(%s)@%g", p.id, p.name, float64(p.slot.now)))
		}
	}
	var abortErr *AbortError
	if aborted || len(blocked) > 0 {
		states := k.waitStates()
		reason := ""
		if aborted {
			reason = k.guard.why()
		} else {
			reason = fmt.Sprintf("deadlock, %d blocked processes: %s",
				len(blocked), strings.Join(blocked, ", "))
		}
		abortErr = &AbortError{Reason: reason, States: states}
		if k.guard != nil {
			abortErr.Snapshot = k.snapshot(reason, states)
		}
		k.terminateBlocked()
	}
	// Assemble statistics after teardown so finish times are final; on
	// abort this is the partial result.
	res.Procs = make([]ProcStats, len(k.procs))
	for i := range k.slots {
		res.Procs[i] = k.slots[i].stats
		if st := k.slots[i].stats.FinishTime; st > res.EndTime {
			res.EndTime = st
		}
	}
	for _, w := range k.workers {
		res.Events += w.events
		res.Delivered += w.delivered
		res.CrossWorker += w.cross
	}
	// A body panic is the most specific failure: report it over the
	// generic abort, with the snapshot attached when the guard was live.
	for _, p := range k.procs {
		if p.err == nil {
			continue
		}
		if pe, ok := p.err.(*PanicError); ok && abortErr != nil && abortErr.Snapshot != nil {
			pe.Snapshot = abortErr.Snapshot
		}
		return res, p.err
	}
	if abortErr != nil {
		return res, abortErr
	}
	return res, nil
}

// terminateBlocked unblocks stuck processes. Classic bodies are resumed
// with a nil message so their goroutines can exit (they observe the
// teardown and panic errTeardown, which run swallows); continuation
// processes have no goroutine to unwind — their pending handler is
// dropped and they are retired in place, with the same terminal state
// the classic teardown produces. On a deadlock every queue is empty, so
// each resumed goroutine's loop finds no work and parks immediately; on
// a guard abort the queues may still hold events, but the abort flag
// makes runLoop return without popping any, so the same invariant holds:
// no event is touched after teardown.
func (k *Kernel) terminateBlocked() {
	k.teardown = true
	for _, p := range k.procs {
		s := p.slot
		if s.state != stBlocked {
			continue
		}
		if s.cont != nil {
			s.cont = nil
			s.matchMode, s.matchFn = matchNone, nil
			s.state = stDone
			s.stats.FinishTime = s.now
			continue
		}
		w := p.worker
		p.resume <- nil
		<-w.parked
	}
	// Let the scheduler retire the goroutines.
	runtime.Gosched()
}

// sendOut routes a delivery event: same-worker events are inserted
// directly (they cannot fall inside the current window, see package doc);
// cross-worker events are appended to the outbox slab until the window
// barrier.
func (w *worker) sendOut(e event) {
	if w.kernel.slots[e.dst].wid != w.id {
		w.cross++
		w.outbox = append(w.outbox, e)
		return
	}
	w.queue.push(e)
}

// loopStatus reports how a runLoop invocation ended.
type loopStatus uint8

const (
	// loopWindowDone: no events below the window bound remain.
	loopWindowDone loopStatus = iota
	// loopHandoff: control was transferred to another process goroutine
	// with a single channel send.
	loopHandoff
	// loopSelf: the next event wakes the very process whose goroutine is
	// running the loop; it resumes with no channel operation at all.
	loopSelf
)

// processWindow is the driver entry: it publishes the window bound, runs
// the loop (following the token through process goroutines if control is
// handed off) and, once the window is exhausted, sorts the outbox for
// the barrier merge. Sorting here keeps it inside the worker's parallel
// section under RealParallel.
func (w *worker) processWindow(end Time) {
	w.end = end
	if st, _ := w.runLoop(nil); st == loopHandoff {
		<-w.parked
	}
	if len(w.outbox) > 1 {
		slices.SortFunc(w.outbox, eventCmp)
	}
}

// runLoop pops and handles events with time < w.end in (time, proc, seq)
// order. self names the classic process whose goroutine is executing the
// loop (nil when the worker driver runs it): the kernel is
// process-oriented but the event loop is not tied to one goroutine —
// whichever goroutine last yielded donates itself to the loop, so waking
// the next classic process is a direct handoff costing one channel
// operation instead of the seed's two (resume + park), and zero when the
// next event resumes self. Continuation processes never take the token
// at all: their handlers run inline right here (runCont) and the loop
// continues to the next event.
func (w *worker) runLoop(self *Proc) (loopStatus, *Message) {
	for {
		// Guard abort: stop popping. This is also what makes teardown with
		// non-empty queues safe — resumed goroutines park without touching
		// another event.
		if w.guard != nil && w.guard.g.abort.Load() {
			return loopWindowDone, nil
		}
		top := w.queue.peek()
		if top == nil || top.t >= w.end {
			return loopWindowDone, nil
		}
		e := w.queue.pop()
		w.events++
		q := w.kernel.procs[e.dst]
		kind, t, m := e.kind, e.t, e.msg
		if w.obs != nil {
			w.obsTick(t)
		}
		if w.guard != nil {
			w.guardTick(t, kind, e.proc, e.dst)
		}
		switch kind {
		case evStart:
			if q.slot.cont != nil {
				w.runCont(q, nil)
				continue
			}
			if w.obs != nil {
				w.obs.fallbacks++
			}
			g := w.takeG()
			g.runq <- q
			return loopHandoff, nil
		case evWake:
			if q.slot.cont != nil {
				w.runCont(q, nil)
				continue
			}
			if q == self {
				return loopSelf, nil
			}
			q.resume <- nil
			return loopHandoff, nil
		default: // evDeliver
			w.delivered++
			s := q.slot
			if s.state == stBlocked && q.matches(m) {
				w.batchSameTime(q, t)
				if s.cont != nil {
					w.runCont(q, m)
					continue
				}
				if q == self {
					return loopSelf, m
				}
				q.resume <- m
				return loopHandoff, nil
			}
			s.mailbox = append(s.mailbox, m)
		}
	}
}

// batchSameTime drains immediately-following deliveries to q that share
// the wake timestamp into q's mailbox before q runs, saving a
// block/handoff cycle per message on same-time fan-in. Only senders
// ordered at or before q's own position in the (time, proc, seq) order
// are batched: q cannot schedule any event that would precede those, so
// the processing order is exactly what the unbatched kernel would have
// produced and results stay bit-identical.
func (w *worker) batchSameTime(q *Proc, t Time) {
	s := q.slot
	for {
		top := w.queue.peek()
		if top == nil || top.t != t || top.kind != evDeliver ||
			top.dst != q.id || top.proc > q.id {
			return
		}
		e := w.queue.pop()
		w.events++
		w.delivered++
		s.mailbox = append(s.mailbox, e.msg)
		if w.obs != nil {
			w.obs.batched++
		}
	}
}
