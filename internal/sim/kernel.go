// Package sim is the discrete-event simulation kernel underlying the
// MPI-Sim reproduction. It is process-oriented: each simulated process
// (a target MPI rank) runs its body on a goroutine and interacts with
// simulated time through kernel calls (Advance, Send, Recv, Sleep).
//
// Two engines are provided, mirroring MPI-Sim's sequential and
// conservative parallel simulation protocols:
//
//   - the sequential engine (Workers == 1) processes events from a single
//     heap in global (time, proc, seq) order;
//   - the parallel engine partitions processes over Workers host logical
//     processes and synchronizes them with a conservative time-window
//     protocol: in each round the window [T, T+Lookahead) is processed
//     concurrently by all workers, which is safe because every message
//     incurs at least Lookahead of network delay and therefore cannot be
//     received inside the window it was sent in.
//
// Simulation results are bit-identical across engines and worker counts;
// the kernel is deterministic by construction (total event order
// (time, proc, seq), deterministic mailbox matching).
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Protocol selects the conservative synchronization protocol of the
// parallel engine (MPI-Sim provides "a set of conservative parallel
// simulation protocols"; this kernel provides two).
type Protocol int

const (
	// ProtocolWindow processes global time windows [T, T+Lookahead): all
	// workers advance in lockstep from the global minimum event time.
	ProtocolWindow Protocol = iota
	// ProtocolNullMessage exchanges per-worker clock promises
	// (Chandy-Misra-Bryant null messages, evaluated by synchronous
	// reduction rounds): each worker advances to the minimum promise of
	// its peers, which lets workers ahead of the global minimum keep
	// processing when their peers cannot affect them yet. Fewer, larger
	// rounds on pipelined workloads; identical simulation results.
	ProtocolNullMessage
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	if p == ProtocolNullMessage {
		return "null-message"
	}
	return "window"
}

// Config controls the kernel.
type Config struct {
	// Workers is the number of host logical processes (>= 1). It models
	// the host processors of MPI-Sim. Values larger than the number of
	// spawned processes are clamped.
	Workers int
	// Lookahead is the conservative window width; it must be positive for
	// Workers > 1 and no larger than the minimum message delay, which the
	// mpi layer guarantees by setting it to the network's minimum latency.
	Lookahead Time
	// RealParallel, when true, executes each window's workers on separate
	// goroutines (true host parallelism). When false the workers are run
	// sequentially in worker order, which is useful to model large host
	// counts deterministically on few cores; results are identical.
	RealParallel bool
	// Protocol selects the conservative synchronization protocol for
	// Workers > 1 (default ProtocolWindow).
	Protocol Protocol
}

// Result summarizes a completed simulation.
type Result struct {
	// EndTime is the maximum finish time over all processes: the
	// predicted execution time of the target program.
	EndTime Time
	// Procs holds per-process statistics indexed by process id.
	Procs []ProcStats
	// Events is the total number of kernel events processed.
	Events int64
	// Delivered is the number of messages delivered.
	Delivered int64
	// CrossWorker is the number of messages that crossed host workers.
	CrossWorker int64
	// Windows is the number of conservative windows executed (1 for the
	// sequential engine).
	Windows int64
}

// MaxProcTime returns the maximum over processes of the given accessor.
func (r *Result) MaxProcTime(f func(ProcStats) Time) Time {
	var m Time
	for _, ps := range r.Procs {
		if v := f(ps); v > m {
			m = v
		}
	}
	return m
}

// worker owns a partition of the processes and their pending events.
type worker struct {
	id        int
	kernel    *Kernel
	heap      eventHeap
	parked    chan struct{}
	outbox    []*event // cross-worker sends buffered until the barrier
	events    int64
	delivered int64
	cross     int64
}

// Kernel drives a set of spawned processes to completion.
type Kernel struct {
	cfg     Config
	procs   []*Proc
	workers []*worker
	started bool
}

// NewKernel returns a kernel with the given configuration.
func NewKernel(cfg Config) (*Kernel, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sim: Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.Workers > 1 && cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("sim: parallel engine requires positive Lookahead")
	}
	return &Kernel{cfg: cfg}, nil
}

// Spawn registers a process with the given body. All processes must be
// spawned before Run. The returned process id equals the spawn order.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(k.procs),
		name:   name,
		kernel: k,
		body:   body,
		resume: make(chan *Message),
	}
	k.procs = append(k.procs, p)
	return p
}

// NumProcs returns the number of spawned processes.
func (k *Kernel) NumProcs() int { return len(k.procs) }

// workerOf maps a process id to its host worker (block distribution, as
// MPI-Sim maps target processes to host processors).
func (k *Kernel) workerOf(proc int) *worker {
	w := proc * len(k.workers) / len(k.procs)
	return k.workers[w]
}

// Run executes the simulation to completion and returns the result. It
// returns an error if any process panicked or if the program deadlocks
// (every process blocked with no messages in flight).
func (k *Kernel) Run() (*Result, error) {
	if k.started {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	k.started = true
	if len(k.procs) == 0 {
		return &Result{}, nil
	}
	nw := k.cfg.Workers
	if nw > len(k.procs) {
		nw = len(k.procs)
	}
	k.workers = make([]*worker, nw)
	for i := range k.workers {
		k.workers[i] = &worker{id: i, kernel: k, parked: make(chan struct{})}
	}
	for _, p := range k.procs {
		p.worker = k.workerOf(p.id)
		p.worker.heap.push(&event{t: 0, proc: p.id, seq: 0, kind: evStart, dst: p.id})
	}

	res := &Result{}
	if nw == 1 {
		k.workers[0].processWindow(Infinity)
		res.Windows = 1
	} else {
		if err := k.runParallel(res); err != nil {
			return nil, err
		}
	}
	return k.finish(res)
}

// runParallel executes conservative rounds until no events remain.
func (k *Kernel) runParallel(res *Result) error {
	for {
		// Barrier: merge cross-worker messages produced in the last round.
		var pending []*event
		for _, w := range k.workers {
			pending = append(pending, w.outbox...)
			w.outbox = w.outbox[:0]
		}
		sort.Slice(pending, func(i, j int) bool { return eventLess(pending[i], pending[j]) })
		for _, e := range pending {
			k.workerOf(e.dst).heap.push(e)
		}
		bounds, any := k.safeBounds()
		if !any {
			return nil
		}
		res.Windows++
		if k.cfg.RealParallel {
			var wg sync.WaitGroup
			for i, w := range k.workers {
				wg.Add(1)
				go func(w *worker, end Time) {
					defer wg.Done()
					w.processWindow(end)
				}(w, bounds[i])
			}
			wg.Wait()
		} else {
			for i, w := range k.workers {
				w.processWindow(bounds[i])
			}
		}
	}
}

// safeBounds computes, per worker, the time bound below which it may
// safely process events this round. It reports false when no events
// remain anywhere.
func (k *Kernel) safeBounds() ([]Time, bool) {
	nw := len(k.workers)
	tops := make([]Time, nw)
	start := Infinity
	for i, w := range k.workers {
		tops[i] = Infinity
		if top := w.heap.peek(); top != nil {
			tops[i] = top.t
			if top.t < start {
				start = top.t
			}
		}
	}
	if start >= Infinity {
		return nil, false
	}
	bounds := make([]Time, nw)
	switch k.cfg.Protocol {
	case ProtocolNullMessage:
		// Clock promises: worker i cannot emit an arrival earlier than
		// lookahead past its next activity, which is its next local event
		// or the earliest arrival its peers could still send it:
		//
		//	p_i = lookahead + min(top_i, min_{j != i} p_j)
		//
		// Starting from the always-safe bound (lookahead past the global
		// minimum event time), iterate upward; every intermediate value
		// is a valid lower bound because it is the formula applied to
		// valid lower bounds, and the sequence is monotone. A bounded
		// iteration count keeps rounds cheap; promises merely end up
		// conservative when peers are idle.
		promises := make([]Time, nw)
		for i := range promises {
			promises[i] = start + k.cfg.Lookahead
		}
		for iter := 0; iter < nw+1; iter++ {
			changed := false
			for i := range promises {
				minPeer := Infinity
				for j := range promises {
					if j != i && promises[j] < minPeer {
						minPeer = promises[j]
					}
				}
				next := tops[i]
				if minPeer < next {
					next = minPeer
				}
				if p := next + k.cfg.Lookahead; p > promises[i] {
					promises[i] = p
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for i := range bounds {
			minPeer := Infinity
			for j := range promises {
				if j != i && promises[j] < minPeer {
					minPeer = promises[j]
				}
			}
			bounds[i] = minPeer
			if nw == 1 {
				bounds[i] = Infinity
			}
		}
	default: // ProtocolWindow
		end := start + k.cfg.Lookahead
		for i := range bounds {
			bounds[i] = end
		}
	}
	return bounds, true
}

// finish validates terminal state, tears down blocked processes and
// assembles the result.
func (k *Kernel) finish(res *Result) (*Result, error) {
	var blocked []string
	for _, p := range k.procs {
		if p.state == stBlocked {
			blocked = append(blocked, fmt.Sprintf("%d(%s)@%g", p.id, p.name, float64(p.now)))
		}
	}
	if len(blocked) > 0 {
		k.terminateBlocked()
		return nil, fmt.Errorf("sim: deadlock, %d blocked processes: %s",
			len(blocked), strings.Join(blocked, ", "))
	}
	res.Procs = make([]ProcStats, len(k.procs))
	for i, p := range k.procs {
		if p.err != nil {
			return nil, p.err
		}
		res.Procs[i] = p.stats
		if p.stats.FinishTime > res.EndTime {
			res.EndTime = p.stats.FinishTime
		}
	}
	for _, w := range k.workers {
		res.Events += w.events
		res.Delivered += w.delivered
		res.CrossWorker += w.cross
	}
	return res, nil
}

// terminateBlocked unblocks deadlocked processes so their goroutines can
// exit (their bodies observe a nil message and panic, which is captured).
func (k *Kernel) terminateBlocked() {
	for _, p := range k.procs {
		if p.state != stBlocked {
			continue
		}
		w := p.worker
		p.resume <- nil
		<-w.parked
	}
	// Let the scheduler retire the goroutines.
	runtime.Gosched()
}

// park is called from a process goroutine when it hands control back to
// its worker.
func (w *worker) park() { w.parked <- struct{}{} }

// sendOut routes a delivery event: same-worker events are inserted
// directly (they cannot fall inside the current window, see package doc);
// cross-worker events are buffered until the window barrier.
func (w *worker) sendOut(e *event) {
	dst := w.kernel.workerOf(e.dst)
	if dst == w {
		w.heap.push(e)
		return
	}
	w.cross++
	w.outbox = append(w.outbox, e)
}

// scheduleLocal inserts an event for a process owned by this worker.
func (w *worker) scheduleLocal(e *event) { w.heap.push(e) }

// processWindow pops and handles every event with time < end.
func (w *worker) processWindow(end Time) {
	for {
		top := w.heap.peek()
		if top == nil || top.t >= end {
			return
		}
		e := w.heap.pop()
		w.events++
		p := w.kernel.procs[e.dst]
		switch e.kind {
		case evStart:
			go p.run()
			<-w.parked
		case evWake:
			p.resume <- nil
			<-w.parked
		case evDeliver:
			w.delivered++
			w.deliver(p, e.msg)
		}
	}
}

// deliver deposits a message, waking the destination if it is blocked on
// a matching Recv. A blocked process has already scanned its mailbox, so
// the delivered message is handed over directly when it matches.
func (w *worker) deliver(p *Proc, m *Message) {
	if p.state == stBlocked && p.match != nil && p.match(m) {
		p.resume <- m
		<-w.parked
		return
	}
	p.mailbox = append(p.mailbox, m)
}
