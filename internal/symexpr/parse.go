package symexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an expression in the surface syntax produced by
// Expr.String. Supported forms:
//
//	number          123, 4.5, 1e-6
//	variable        N, myid, w_1
//	e1 OP e2        + - * / // % < <= > >= == !=
//	fn(e)           ceil floor abs sqrt log2
//	min(a,b) max(a,b) ceildiv(a,b)
//	sum(i, lo, hi, body)
//	test ? a : b
//	( e )
//
// Operator precedence follows Go: * / // % bind tighter than + -, which
// bind tighter than comparisons; ?: is lowest and right-associative.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	p.next()
	e, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("symexpr: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for constants in code and tests.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokNum
	tokIdent
	tokOp     // one of + - * / // % < <= > >= == != ? :
	tokLParen // (
	tokRParen // )
	tokComma
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	off int
	tok token
}

func (p *parser) next() {
	for p.off < len(p.src) && unicode.IsSpace(rune(p.src[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = token{tokEOF, "", start}
		return
	}
	c := p.src[p.off]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		for p.off < len(p.src) && (isNumChar(p.src[p.off]) ||
			// accept exponent sign immediately after e/E
			((p.src[p.off] == '+' || p.src[p.off] == '-') && p.off > start &&
				(p.src[p.off-1] == 'e' || p.src[p.off-1] == 'E'))) {
			p.off++
		}
		p.tok = token{tokNum, p.src[start:p.off], start}
	case isIdentStart(c):
		for p.off < len(p.src) && isIdentChar(p.src[p.off]) {
			p.off++
		}
		p.tok = token{tokIdent, p.src[start:p.off], start}
	case c == '(':
		p.off++
		p.tok = token{tokLParen, "(", start}
	case c == ')':
		p.off++
		p.tok = token{tokRParen, ")", start}
	case c == ',':
		p.off++
		p.tok = token{tokComma, ",", start}
	default:
		// multi-character operators first
		two := ""
		if p.off+1 < len(p.src) {
			two = p.src[p.off : p.off+2]
		}
		switch two {
		case "//", "<=", ">=", "==", "!=":
			p.off += 2
			p.tok = token{tokOp, two, start}
			return
		}
		if strings.ContainsRune("+-*/%<>?:", rune(c)) {
			p.off++
			p.tok = token{tokOp, string(c), start}
			return
		}
		p.tok = token{tokOp, string(c), start}
		p.off++
	}
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E'
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

// parseCond handles the lowest-precedence ternary operator.
func (p *parser) parseCond() (Expr, error) {
	test, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp && p.tok.text == "?" {
		p.next()
		then, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || p.tok.text != ":" {
			return nil, fmt.Errorf("symexpr: expected ':' at offset %d", p.tok.pos)
		}
		p.next()
		els, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return Cond{test, then, els}, nil
	}
	return test, nil
}

var cmpOps = map[string]Op{
	"<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE, "==": OpEQ, "!=": OpNE,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Binary{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := OpAdd
		if p.tok.text == "-" {
			op = OpSub
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
	return l, nil
}

var mulOps = map[string]Op{"*": OpMul, "/": OpDiv, "//": OpIDiv, "%": OpMod}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp {
		op, ok := mulOps[p.tok.text]
		if !ok {
			break
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{op, l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Binary{OpSub, Const{0}, e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokNum:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("symexpr: bad number %q: %v", p.tok.text, err)
		}
		p.next()
		return Const{v}, nil
	case tokIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind != tokLParen {
			return Var{name}, nil
		}
		return p.parseCall(name)
	case tokLParen:
		p.next()
		e, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("symexpr: expected ')' at offset %d", p.tok.pos)
		}
		p.next()
		return e, nil
	}
	return nil, fmt.Errorf("symexpr: unexpected %q at offset %d", p.tok.text, p.tok.pos)
}

func (p *parser) parseCall(name string) (Expr, error) {
	// consume '('
	p.next()
	var args []Expr
	// sum's first argument is an identifier binding, handled specially.
	if name == "sum" {
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("symexpr: sum index must be an identifier at offset %d", p.tok.pos)
		}
		idx := p.tok.text
		p.next()
		for i := 0; i < 3; i++ {
			if p.tok.kind != tokComma {
				return nil, fmt.Errorf("symexpr: sum expects 4 arguments at offset %d", p.tok.pos)
			}
			p.next()
			a, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("symexpr: expected ')' at offset %d", p.tok.pos)
		}
		p.next()
		return Sum{idx, args[0], args[1], args[2]}, nil
	}
	for {
		a, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.tok.kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.tok.kind != tokRParen {
		return nil, fmt.Errorf("symexpr: expected ')' at offset %d", p.tok.pos)
	}
	p.next()
	switch name {
	case "min", "max", "ceildiv":
		if len(args) != 2 {
			return nil, fmt.Errorf("symexpr: %s expects 2 arguments, got %d", name, len(args))
		}
		op := map[string]Op{"min": OpMin, "max": OpMax, "ceildiv": OpCeilDiv}[name]
		return Binary{op, args[0], args[1]}, nil
	default:
		if _, ok := unaryFuncs[name]; !ok {
			return nil, fmt.Errorf("symexpr: unknown function %q", name)
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("symexpr: %s expects 1 argument, got %d", name, len(args))
		}
		return Func{name, args[0]}, nil
	}
}
