package symexpr

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, e Expr, env Env) float64 {
	t.Helper()
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%s) failed: %v", e, err)
	}
	return v
}

func TestConstEval(t *testing.T) {
	if got := evalOK(t, C(3.5), nil); got != 3.5 {
		t.Fatalf("got %v, want 3.5", got)
	}
	if got := evalOK(t, CI(-7), nil); got != -7 {
		t.Fatalf("got %v, want -7", got)
	}
}

func TestVarEval(t *testing.T) {
	env := Env{"N": 100}
	if got := evalOK(t, V("N"), env); got != 100 {
		t.Fatalf("got %v, want 100", got)
	}
	if _, err := V("missing").Eval(env); err == nil {
		t.Fatal("expected unbound variable error")
	}
	if _, err := V("x").Eval(nil); err == nil {
		t.Fatal("expected error for nil env")
	}
}

func TestBinaryArith(t *testing.T) {
	env := Env{"a": 7, "b": 2}
	cases := []struct {
		e    Expr
		want float64
	}{
		{Add(V("a"), V("b")), 9},
		{Sub(V("a"), V("b")), 5},
		{Mul(V("a"), V("b")), 14},
		{Div(V("a"), V("b")), 3.5},
		{Binary{OpIDiv, V("a"), V("b")}, 3},
		{CeilDiv(V("a"), V("b")), 4},
		{Binary{OpMod, V("a"), V("b")}, 1},
		{Min(V("a"), V("b")), 2},
		{Max(V("a"), V("b")), 7},
		{Binary{OpLT, V("a"), V("b")}, 0},
		{Binary{OpGT, V("a"), V("b")}, 1},
		{Binary{OpLE, V("b"), V("b")}, 1},
		{Binary{OpGE, V("b"), V("a")}, 0},
		{Binary{OpEQ, V("a"), V("a")}, 1},
		{Binary{OpNE, V("a"), V("b")}, 1},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e, env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, op := range []Op{OpDiv, OpIDiv, OpCeilDiv, OpMod} {
		if _, err := (Binary{op, C(1), C(0)}).Eval(nil); err == nil {
			t.Errorf("op %v: expected division-by-zero error", op)
		}
	}
}

func TestModNonNegative(t *testing.T) {
	// Euclidean remainder: (-3) mod 5 == 2.
	got := evalOK(t, Binary{OpMod, C(-3), C(5)}, nil)
	if got != 2 {
		t.Fatalf("(-3) mod 5 = %v, want 2", got)
	}
}

func TestFuncEval(t *testing.T) {
	cases := map[string]struct {
		e    Expr
		want float64
	}{
		"ceil":  {Ceil(C(2.1)), 3},
		"floor": {Floor(C(2.9)), 2},
		"sqrt":  {Sqrt(C(16)), 4},
		"abs":   {Func{"abs", C(-3)}, 3},
		"log2":  {Func{"log2", C(8)}, 3},
	}
	for name, c := range cases {
		if got := evalOK(t, c.e, nil); got != c.want {
			t.Errorf("%s: got %v, want %v", name, got, c.want)
		}
	}
	if _, err := (Func{"nosuch", C(1)}).Eval(nil); err == nil {
		t.Fatal("expected unknown function error")
	}
}

func TestCondEval(t *testing.T) {
	e := If(Binary{OpGT, V("p"), C(0)}, C(10), C(20))
	if got := evalOK(t, e, Env{"p": 3}); got != 10 {
		t.Fatalf("then branch: got %v", got)
	}
	if got := evalOK(t, e, Env{"p": 0}); got != 20 {
		t.Fatalf("else branch: got %v", got)
	}
}

func TestSumEval(t *testing.T) {
	// sum_{i=1..4} i = 10
	s := SumOf("i", C(1), C(4), V("i"))
	if got := evalOK(t, s, Env{}); got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
	// empty range sums to 0
	s = SumOf("i", C(5), C(4), V("i"))
	if got := evalOK(t, s, Env{}); got != 0 {
		t.Fatalf("empty sum: got %v, want 0", got)
	}
	// index shadows env binding and does not leak
	env := Env{"i": 99, "N": 3}
	s = SumOf("i", C(1), V("N"), V("i"))
	if got := evalOK(t, s, env); got != 6 {
		t.Fatalf("got %v, want 6", got)
	}
	if env["i"] != 99 {
		t.Fatalf("env mutated: i=%v", env["i"])
	}
}

func TestSumRangeGuard(t *testing.T) {
	s := SumOf("i", C(0), C(1e9), C(1))
	if _, err := s.Eval(Env{}); err == nil {
		t.Fatal("expected sum range error")
	}
}

func TestVarsCollection(t *testing.T) {
	e := Add(Mul(V("N"), V("P")), SumOf("i", V("lo"), V("hi"), Mul(V("i"), V("w_1"))))
	got := Vars(e)
	want := []string{"N", "P", "hi", "lo", "w_1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestSubst(t *testing.T) {
	e := Add(V("N"), Mul(V("P"), V("N")))
	s := Subst(e, "N", C(8))
	if got := evalOK(t, s, Env{"P": 2}); got != 24 {
		t.Fatalf("got %v, want 24", got)
	}
	// substitution does not capture bound sum indices
	sum := SumOf("i", C(1), C(3), V("i"))
	s2 := Subst(sum, "i", C(100))
	if got := evalOK(t, s2, Env{}); got != 6 {
		t.Fatalf("bound index substituted: got %v, want 6", got)
	}
}

func TestEvalInt(t *testing.T) {
	v, err := EvalInt(Div(V("N"), C(3)), Env{"N": 10})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("got %d, want 3", v)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{Add(V("x"), C(0)), "x"},
		{Add(C(0), V("x")), "x"},
		{Sub(V("x"), C(0)), "x"},
		{Sub(V("x"), V("x")), "0"},
		{Mul(V("x"), C(1)), "x"},
		{Mul(C(1), V("x")), "x"},
		{Mul(V("x"), C(0)), "0"},
		{Mul(C(0), V("x")), "0"},
		{Div(V("x"), C(1)), "x"},
		{Add(C(2), C(3)), "5"},
		{Min(V("x"), V("x")), "x"},
		{If(C(1), V("a"), V("b")), "a"},
		{If(C(0), V("a"), V("b")), "b"},
		{Ceil(C(1.2)), "2"},
	}
	for _, c := range cases {
		got := Simplify(c.in).String()
		if got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifySumIndependentBody(t *testing.T) {
	// sum_{i=1..N} c  ->  c*N
	s := Simplify(SumOf("i", C(1), V("N"), V("c")))
	if _, isSum := s.(Sum); isSum {
		t.Fatalf("expected sum collapse, got %s", s)
	}
	got := evalOK(t, s, Env{"N": 7, "c": 3})
	if got != 21 {
		t.Fatalf("got %v, want 21", got)
	}
	// empty-range behaviour must be preserved by the collapse
	got = evalOK(t, s, Env{"N": 0, "c": 3})
	if got != 0 {
		t.Fatalf("empty range after collapse: got %v, want 0", got)
	}
}

func TestFoldEnv(t *testing.T) {
	e := MustParse("(N - 2) * (min(N, myid*b + b) - max(2, myid*b + 1)) * w_1")
	folded := FoldEnv(e, Env{"w_1": 2e-8})
	if strings.Contains(folded.String(), "w_1") {
		t.Fatalf("w_1 not folded: %s", folded)
	}
	full := Env{"N": 100, "myid": 1, "b": 25, "w_1": 2e-8}
	want := evalOK(t, e, full)
	got := evalOK(t, folded, full)
	if math.Abs(want-got) > 1e-18 {
		t.Fatalf("fold changed value: %v vs %v", got, want)
	}
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want float64
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"10 // 3", nil, 3},
		{"10 % 3", nil, 1},
		{"-4 + 1", nil, -3},
		{"2 < 3", nil, 1},
		{"min(4, 9)", nil, 4},
		{"max(4, 9)", nil, 9},
		{"ceildiv(7, 2)", nil, 4},
		{"ceil(N / P)", Env{"N": 10, "P": 4}, 3},
		{"sqrt(P)", Env{"P": 16}, 4},
		{"p > 0 ? 1 : 2", Env{"p": 5}, 1},
		{"p > 0 ? 1 : 2", Env{"p": 0}, 2},
		{"sum(i, 1, 4, i*i)", Env{}, 30},
		{"1e-6 * 2", nil, 2e-6},
		{"1e+2", nil, 100},
		{"w_1 * 3", Env{"w_1": 2}, 6},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed: %v", c.src, err)
			continue
		}
		got := evalOK(t, e, c.env)
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "min(1)", "nosuch(3)", "1 2", "sum(1,2,3,4)",
		"sum(i,1,2)", "a ? b", "ceil(1,2)", "@", "min(1,2,3)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	exprs := []Expr{
		Add(Mul(V("N"), V("P")), C(3)),
		CeilDiv(V("N"), V("P")),
		If(Binary{OpGT, V("myid"), C(0)}, V("a"), V("b")),
		SumOf("i", C(1), V("N"), Mul(V("i"), V("w_2"))),
		Min(V("x"), Max(V("y"), C(2))),
		Binary{OpMod, V("n"), C(4)},
		Binary{OpIDiv, V("n"), C(4)},
	}
	env := Env{"N": 12, "P": 4, "myid": 1, "a": 5, "b": 6, "w_2": 0.5,
		"x": 3, "y": 9, "n": 13}
	for _, e := range exprs {
		back, err := Parse(e.String())
		if err != nil {
			t.Errorf("round-trip parse of %q failed: %v", e.String(), err)
			continue
		}
		if evalOK(t, e, env) != evalOK(t, back, env) {
			t.Errorf("round trip changed semantics for %s", e)
		}
	}
}

// randomExpr builds a random expression tree over the given variables.
func randomExpr(r *rand.Rand, depth int, vars []string) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return C(float64(r.Intn(21) - 10))
		}
		return V(vars[r.Intn(len(vars))])
	}
	switch r.Intn(6) {
	case 0:
		return Add(randomExpr(r, depth-1, vars), randomExpr(r, depth-1, vars))
	case 1:
		return Sub(randomExpr(r, depth-1, vars), randomExpr(r, depth-1, vars))
	case 2:
		return Mul(randomExpr(r, depth-1, vars), randomExpr(r, depth-1, vars))
	case 3:
		return Min(randomExpr(r, depth-1, vars), randomExpr(r, depth-1, vars))
	case 4:
		return Max(randomExpr(r, depth-1, vars), randomExpr(r, depth-1, vars))
	default:
		return If(Binary{OpGT, randomExpr(r, depth-1, vars), C(0)},
			randomExpr(r, depth-1, vars), randomExpr(r, depth-1, vars))
	}
}

// Property: Simplify never changes the value of an expression.
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vars := []string{"N", "P", "myid"}
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(r, 4, vars)
		env := Env{"N": float64(r.Intn(100) + 1), "P": float64(r.Intn(16) + 1),
			"myid": float64(r.Intn(16))}
		want, err1 := e.Eval(env)
		got, err2 := Simplify(e).Eval(env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error behaviour changed for %s: %v vs %v", e, err1, err2)
		}
		if err1 == nil && math.Abs(want-got) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("Simplify changed %s: %v -> %v (env %v)", e, want, got, env)
		}
	}
}

// Property: String/Parse round trip preserves value.
func TestParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vars := []string{"a", "b"}
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(r, 4, vars)
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q) failed: %v", e.String(), err)
		}
		env := Env{"a": float64(r.Intn(20) - 10), "b": float64(r.Intn(20) - 10)}
		want, err1 := e.Eval(env)
		got, err2 := back.Eval(env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error behaviour changed for %q", e.String())
		}
		if err1 == nil && want != got {
			t.Fatalf("round trip changed %q: %v -> %v", e.String(), want, got)
		}
	}
}

// Property (testing/quick): CeilDiv(a,b) == ceil(a/b) for positive ints.
func TestCeilDivQuick(t *testing.T) {
	f := func(a uint16, b uint16) bool {
		bb := int64(b%1000) + 1
		aa := int64(a)
		got, err := CeilDiv(CI(aa), CI(bb)).Eval(nil)
		if err != nil {
			return false
		}
		want := (aa + bb - 1) / bb
		return int64(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): Mod result is always in [0, |m|).
func TestModRangeQuick(t *testing.T) {
	f := func(a int16, m uint8) bool {
		mm := int64(m) + 1
		got, err := (Binary{OpMod, CI(int64(a)), CI(mm)}).Eval(nil)
		if err != nil {
			return false
		}
		return got >= 0 && got < float64(mm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"x": 1}
	c := e.Clone()
	c["x"] = 2
	if e["x"] != 1 {
		t.Fatal("Clone did not copy")
	}
}

func TestEqualStructural(t *testing.T) {
	a := Add(V("x"), C(1))
	b := Add(V("x"), C(1))
	if !Equal(a, b) {
		t.Fatal("identical expressions not Equal")
	}
	if Equal(a, Add(V("x"), C(2))) {
		t.Fatal("different expressions Equal")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Fatal("nil handling wrong")
	}
}

func TestMustEvalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustEval(V("unbound"), nil)
}

func TestSumEvalErrorPropagation(t *testing.T) {
	// Errors in bounds and body surface.
	if _, err := SumOf("i", V("unbound"), C(3), C(1)).Eval(Env{}); err == nil {
		t.Fatal("expected lo error")
	}
	if _, err := SumOf("i", C(1), V("unbound"), C(1)).Eval(Env{}); err == nil {
		t.Fatal("expected hi error")
	}
	if _, err := SumOf("i", C(1), C(3), V("unbound")).Eval(Env{}); err == nil {
		t.Fatal("expected body error")
	}
}

func TestCondErrorPropagation(t *testing.T) {
	if _, err := If(V("unbound"), C(1), C(2)).Eval(Env{}); err == nil {
		t.Fatal("expected test error")
	}
	if _, err := If(C(1), V("unbound"), C(2)).Eval(Env{}); err == nil {
		t.Fatal("expected then error")
	}
	if _, err := If(C(0), C(1), V("unbound")).Eval(Env{}); err == nil {
		t.Fatal("expected else error")
	}
}

func TestApplyOpExported(t *testing.T) {
	v, err := ApplyOp(OpAdd, 2, 3)
	if err != nil || v != 5 {
		t.Fatalf("ApplyOp = %v, %v", v, err)
	}
	if _, err := ApplyOp(Op(99), 1, 1); err == nil {
		t.Fatal("expected unknown operator error")
	}
}

func TestSubstOnCond(t *testing.T) {
	e := If(Binary{OpGT, V("x"), C(0)}, V("x"), Binary{OpSub, C(0), V("x")})
	s := Subst(e, "x", C(-4))
	if got := MustEval(s, Env{}); got != 4 {
		t.Fatalf("|x| at -4 = %v", got)
	}
}

func TestFoldEnvSkipsNaN(t *testing.T) {
	e := Add(V("a"), V("b"))
	folded := FoldEnv(e, Env{"a": 1, "b": math.NaN()})
	vars := Vars(folded)
	if len(vars) != 1 || vars[0] != "b" {
		t.Fatalf("Vars after fold = %v", vars)
	}
}
