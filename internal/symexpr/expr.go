// Package symexpr provides the symbolic expression algebra used throughout
// the simulator: scaling functions of condensed tasks, symbolic process
// sets and communication mappings of the static task graph, and symbolic
// array dimensions of the program IR are all represented as Exprs.
//
// Expressions are evaluated under an Env that binds program variables
// (problem size N, processor count P, rank myid, task-time coefficients
// w_i, ...) to numeric values. The package also provides simplification
// (constant folding and algebraic identities) and a small parser so that
// scaling functions can be written, stored and read back as text.
package symexpr

import (
	"fmt"
	"math"
	"sort"
)

// Env binds variable names to numeric values during evaluation.
type Env map[string]float64

// Lookup returns the value bound to name.
func (e Env) Lookup(name string) (float64, bool) {
	v, ok := e[name]
	return v, ok
}

// Clone returns a copy of the environment that can be mutated
// independently.
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Expr is a symbolic arithmetic expression over named variables.
//
// Implementations are immutable; Simplify and substitution return new
// expressions.
type Expr interface {
	// Eval evaluates the expression under env. It fails if a variable is
	// unbound or an arithmetic error (division by zero) occurs.
	Eval(env Env) (float64, error)
	// addVars adds every free variable of the expression to set.
	addVars(set map[string]bool)
	// String renders the expression in the syntax accepted by Parse.
	String() string
}

// Vars returns the sorted free variables of e.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	e.addVars(set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EvalInt evaluates e and rounds the result to the nearest integer. It is
// used where the expression denotes a count (trip counts, message sizes,
// process identifiers).
func EvalInt(e Expr, env Env) (int64, error) {
	v, err := e.Eval(env)
	if err != nil {
		return 0, err
	}
	return int64(math.Round(v)), nil
}

// Const is a numeric literal.
type Const struct{ Value float64 }

// C returns a constant expression.
func C(v float64) Const { return Const{Value: v} }

// CI returns an integer constant expression.
func CI(v int64) Const { return Const{Value: float64(v)} }

// Eval implements Expr.
func (c Const) Eval(Env) (float64, error) { return c.Value, nil }

func (c Const) addVars(map[string]bool) {}

func (c Const) String() string {
	if c.Value == math.Trunc(c.Value) && math.Abs(c.Value) < 1e15 {
		return fmt.Sprintf("%d", int64(c.Value))
	}
	return fmt.Sprintf("%g", c.Value)
}

// Var is a reference to a named variable bound by the evaluation Env.
type Var struct{ Name string }

// V returns a variable reference expression.
func V(name string) Var { return Var{Name: name} }

// Eval implements Expr.
func (v Var) Eval(env Env) (float64, error) {
	if env != nil {
		if val, ok := env.Lookup(v.Name); ok {
			return val, nil
		}
	}
	return 0, fmt.Errorf("symexpr: unbound variable %q", v.Name)
}

func (v Var) addVars(set map[string]bool) { set[v.Name] = true }

func (v Var) String() string { return v.Name }

// Op identifies a binary operator.
type Op int

// Binary operators. IDiv is truncating integer division; CeilDiv is the
// ceiling division that appears in block-distribution bounds
// (b = ceil(N/P)); Mod is the Euclidean remainder.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpCeilDiv
	OpMod
	OpMin
	OpMax
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpIDiv: "//", OpCeilDiv: "ceildiv", OpMod: "%",
	OpMin: "min", OpMax: "max",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "==", OpNE: "!=",
}

// String returns the operator's surface syntax.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a 0/1 truth value.
func (o Op) IsComparison() bool { return o >= OpLT }

// Binary applies Op to two operands. Comparison operators evaluate to 1
// (true) or 0 (false), so they compose with arithmetic (e.g. statistical
// branch folding multiplies a body cost by a probability expression).
type Binary struct {
	Op   Op
	L, R Expr
}

// Add returns l+r.
func Add(l, r Expr) Expr { return Binary{OpAdd, l, r} }

// Sub returns l-r.
func Sub(l, r Expr) Expr { return Binary{OpSub, l, r} }

// Mul returns l*r.
func Mul(l, r Expr) Expr { return Binary{OpMul, l, r} }

// Div returns l/r (real division).
func Div(l, r Expr) Expr { return Binary{OpDiv, l, r} }

// CeilDiv returns ceil(l/r), the block size of a BLOCK distribution.
func CeilDiv(l, r Expr) Expr { return Binary{OpCeilDiv, l, r} }

// Min returns min(l,r).
func Min(l, r Expr) Expr { return Binary{OpMin, l, r} }

// Max returns max(l,r).
func Max(l, r Expr) Expr { return Binary{OpMax, l, r} }

// Eval implements Expr.
func (b Binary) Eval(env Env) (float64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	return applyOp(b.Op, l, r)
}

// ApplyOp applies a binary operator to two values. It is shared with the
// program IR, which reuses this package's operator set.
func ApplyOp(op Op, l, r float64) (float64, error) { return applyOp(op, l, r) }

func applyOp(op Op, l, r float64) (float64, error) {
	switch op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("symexpr: division by zero")
		}
		return l / r, nil
	case OpIDiv:
		if r == 0 {
			return 0, fmt.Errorf("symexpr: integer division by zero")
		}
		return math.Trunc(l / r), nil
	case OpCeilDiv:
		if r == 0 {
			return 0, fmt.Errorf("symexpr: ceildiv by zero")
		}
		return math.Ceil(l / r), nil
	case OpMod:
		if r == 0 {
			return 0, fmt.Errorf("symexpr: mod by zero")
		}
		m := math.Mod(l, r)
		if m < 0 {
			m += math.Abs(r)
		}
		return m, nil
	case OpMin:
		return math.Min(l, r), nil
	case OpMax:
		return math.Max(l, r), nil
	case OpLT:
		return truth(l < r), nil
	case OpLE:
		return truth(l <= r), nil
	case OpGT:
		return truth(l > r), nil
	case OpGE:
		return truth(l >= r), nil
	case OpEQ:
		return truth(l == r), nil
	case OpNE:
		return truth(l != r), nil
	}
	return 0, fmt.Errorf("symexpr: unknown operator %d", int(op))
}

func truth(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (b Binary) addVars(set map[string]bool) {
	b.L.addVars(set)
	b.R.addVars(set)
}

func (b Binary) String() string {
	switch b.Op {
	case OpMin, OpMax, OpCeilDiv:
		return fmt.Sprintf("%s(%s, %s)", b.Op, b.L, b.R)
	default:
		return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
	}
}

// Func is a unary intrinsic application (ceil, floor, abs, sqrt, log2).
type Func struct {
	Name string
	Arg  Expr
}

var unaryFuncs = map[string]func(float64) float64{
	"ceil":  math.Ceil,
	"floor": math.Floor,
	"abs":   math.Abs,
	"sqrt":  math.Sqrt,
	"log2":  math.Log2,
}

// Ceil returns ceil(e).
func Ceil(e Expr) Expr { return Func{"ceil", e} }

// Floor returns floor(e).
func Floor(e Expr) Expr { return Func{"floor", e} }

// Sqrt returns sqrt(e).
func Sqrt(e Expr) Expr { return Func{"sqrt", e} }

// Eval implements Expr.
func (f Func) Eval(env Env) (float64, error) {
	fn, ok := unaryFuncs[f.Name]
	if !ok {
		return 0, fmt.Errorf("symexpr: unknown function %q", f.Name)
	}
	v, err := f.Arg.Eval(env)
	if err != nil {
		return 0, err
	}
	return fn(v), nil
}

func (f Func) addVars(set map[string]bool) { f.Arg.addVars(set) }

func (f Func) String() string { return fmt.Sprintf("%s(%s)", f.Name, f.Arg) }

// Cond is a ternary conditional: if Test != 0 then Then else Else.
type Cond struct {
	Test, Then, Else Expr
}

// If returns the conditional expression test ? then : else.
func If(test, then, els Expr) Expr { return Cond{test, then, els} }

// Eval implements Expr.
func (c Cond) Eval(env Env) (float64, error) {
	t, err := c.Test.Eval(env)
	if err != nil {
		return 0, err
	}
	if t != 0 {
		return c.Then.Eval(env)
	}
	return c.Else.Eval(env)
}

func (c Cond) addVars(set map[string]bool) {
	c.Test.addVars(set)
	c.Then.addVars(set)
	c.Else.addVars(set)
}

func (c Cond) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", c.Test, c.Then, c.Else)
}

// Sum is a symbolic summation of Body over Index running from Lo to Hi
// inclusive. It expresses scaling functions of loops whose trip counts
// depend on the surrounding loop's index (triangular nests, wavefronts).
type Sum struct {
	Index  string
	Lo, Hi Expr
	Body   Expr
}

// SumOf returns sum_{index=lo..hi} body.
func SumOf(index string, lo, hi, body Expr) Expr {
	return Sum{Index: index, Lo: lo, Hi: hi, Body: body}
}

// Eval implements Expr.
func (s Sum) Eval(env Env) (float64, error) {
	lo, err := s.Lo.Eval(env)
	if err != nil {
		return 0, err
	}
	hi, err := s.Hi.Eval(env)
	if err != nil {
		return 0, err
	}
	loI, hiI := int64(math.Round(lo)), int64(math.Round(hi))
	if hiI < loI {
		return 0, nil
	}
	// Guard against accidental unbounded sums from malformed inputs.
	if hiI-loI > 1<<24 {
		return 0, fmt.Errorf("symexpr: sum range too large (%d..%d)", loI, hiI)
	}
	inner := env.Clone()
	var total float64
	for i := loI; i <= hiI; i++ {
		inner[s.Index] = float64(i)
		v, err := s.Body.Eval(inner)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

func (s Sum) addVars(set map[string]bool) {
	s.Lo.addVars(set)
	s.Hi.addVars(set)
	body := make(map[string]bool)
	s.Body.addVars(body)
	delete(body, s.Index)
	for n := range body {
		set[n] = true
	}
}

func (s Sum) String() string {
	return fmt.Sprintf("sum(%s, %s, %s, %s)", s.Index, s.Lo, s.Hi, s.Body)
}

// Subst returns e with every free occurrence of name replaced by repl.
func Subst(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case Const:
		return x
	case Var:
		if x.Name == name {
			return repl
		}
		return x
	case Binary:
		return Binary{x.Op, Subst(x.L, name, repl), Subst(x.R, name, repl)}
	case Func:
		return Func{x.Name, Subst(x.Arg, name, repl)}
	case Cond:
		return Cond{Subst(x.Test, name, repl), Subst(x.Then, name, repl), Subst(x.Else, name, repl)}
	case Sum:
		if x.Index == name {
			// The index shadows the substituted name inside the body.
			return Sum{x.Index, Subst(x.Lo, name, repl), Subst(x.Hi, name, repl), x.Body}
		}
		return Sum{x.Index, Subst(x.Lo, name, repl), Subst(x.Hi, name, repl), Subst(x.Body, name, repl)}
	}
	return e
}

// MustEval evaluates e and panics on error. For use in tests and in
// contexts where the environment is known to be complete by construction.
func MustEval(e Expr, env Env) float64 {
	v, err := e.Eval(env)
	if err != nil {
		panic(err)
	}
	return v
}

// Equal reports whether two expressions are structurally identical.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}
