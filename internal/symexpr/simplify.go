package symexpr

import "math"

// Simplify returns an expression equivalent to e with constants folded and
// common algebraic identities applied (x+0, x*1, x*0, x-0, x/1, min/max of
// equal operands, conditionals with constant tests). The compiler applies
// it to every synthesized scaling function so that the emitted simplified
// programs stay readable.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case Const, Var:
		return e
	case Binary:
		return simplifyBinary(Binary{x.Op, Simplify(x.L), Simplify(x.R)})
	case Func:
		arg := Simplify(x.Arg)
		if c, ok := arg.(Const); ok {
			if fn, known := unaryFuncs[x.Name]; known {
				return Const{fn(c.Value)}
			}
		}
		return Func{x.Name, arg}
	case Cond:
		test := Simplify(x.Test)
		if c, ok := test.(Const); ok {
			if c.Value != 0 {
				return Simplify(x.Then)
			}
			return Simplify(x.Else)
		}
		return Cond{test, Simplify(x.Then), Simplify(x.Else)}
	case Sum:
		lo, hi, body := Simplify(x.Lo), Simplify(x.Hi), Simplify(x.Body)
		// A body independent of the index collapses to body*(hi-lo+1).
		free := make(map[string]bool)
		body.addVars(free)
		if !free[x.Index] {
			count := Simplify(Max(C(0), Add(Sub(hi, lo), C(1))))
			return simplifyBinary(Binary{OpMul, body, count})
		}
		return Sum{x.Index, lo, hi, body}
	}
	return e
}

func simplifyBinary(b Binary) Expr {
	lc, lIsC := b.L.(Const)
	rc, rIsC := b.R.(Const)
	if lIsC && rIsC {
		if v, err := applyOp(b.Op, lc.Value, rc.Value); err == nil {
			return Const{v}
		}
		return b
	}
	switch b.Op {
	case OpAdd:
		if lIsC && lc.Value == 0 {
			return b.R
		}
		if rIsC && rc.Value == 0 {
			return b.L
		}
	case OpSub:
		if rIsC && rc.Value == 0 {
			return b.L
		}
		if Equal(b.L, b.R) {
			return Const{0}
		}
	case OpMul:
		if lIsC {
			if lc.Value == 0 {
				return Const{0}
			}
			if lc.Value == 1 {
				return b.R
			}
		}
		if rIsC {
			if rc.Value == 0 {
				return Const{0}
			}
			if rc.Value == 1 {
				return b.L
			}
		}
	case OpDiv, OpIDiv, OpCeilDiv:
		if rIsC && rc.Value == 1 {
			return b.L
		}
		if lIsC && lc.Value == 0 && !(rIsC && rc.Value == 0) {
			return Const{0}
		}
	case OpMin, OpMax:
		if Equal(b.L, b.R) {
			return b.L
		}
	}
	return b
}

// FoldEnv partially evaluates e: variables bound in env are replaced by
// their values, then the result is simplified. Unbound variables remain
// symbolic. This implements the paper's parameterization step, where a
// scaling function over (N, P, myid, w_1) is specialized for a measured
// w_1 while remaining symbolic in the problem size.
func FoldEnv(e Expr, env Env) Expr {
	folded := e
	for name, v := range env {
		if !math.IsNaN(v) {
			folded = Subst(folded, name, Const{v})
		}
	}
	return Simplify(folded)
}
