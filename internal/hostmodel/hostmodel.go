// Package hostmodel estimates the running time of the simulator itself
// on a parallel host machine, reproducing the simulator-performance
// studies of the paper (§4.4, Figures 12-16).
//
// The paper measures MPI-Sim's own wall-clock on up to 64 IBM SP host
// processors. This container cannot run 64-way hosts, so the repository
// models the host cost explicitly from the kernel's event statistics:
// direct-executed computation runs at target speed times an
// instrumentation overhead factor, every kernel event and message costs
// fixed simulator overheads, and the conservative protocol charges a
// synchronization cost per time window that grows with the host count.
// The constants are calibrated so the paper's qualitative results hold:
// MPI-SIM-DE runs about twice as slow as the application it predicts,
// MPI-SIM-AM runs faster than the application, and parallel speedup
// saturates near 15 on 64 hosts for communication-bound workloads.
package hostmodel

import (
	"fmt"
	"math"

	"mpisim/internal/mpi"
)

// Params are the host-machine cost coefficients.
type Params struct {
	// ExecFactor multiplies direct-executed target computation: the
	// overhead of running application code inside the simulator (timer
	// trapping, scheduling). ~2 reproduces "MPI-SIM-DE is running about
	// twice slower than the application it is predicting".
	ExecFactor float64
	// EventCost is host seconds per kernel event (thread switch, heap
	// operation).
	EventCost float64
	// MessageCost is host seconds per simulated message (matching,
	// buffering, timestamp bookkeeping).
	MessageCost float64
	// ByteCost is host seconds per simulated message byte (the copy
	// through the simulated network buffers; both simulators move the
	// same byte counts, the optimized one through the dummy buffer).
	ByteCost float64
	// WindowBase is the per-window scheduling cost of the conservative
	// protocol, charged regardless of host count.
	WindowBase float64
	// WindowSync is the additional per-window cost per log2(hosts):
	// the barrier/null-message exchange.
	WindowSync float64
}

// Default returns coefficients calibrated for the paper-shape results.
// Experiments (figs 12-16) use these; they are pinned so regenerated
// results stay byte-identical across kernel optimizations.
func Default() Params {
	return Params{
		ExecFactor:  2.0,
		EventCost:   2e-5,
		MessageCost: 2e-5,
		ByteCost:    2.5e-9,
		WindowBase:  5e-7,
		WindowSync:  2e-6,
	}
}

// MeasuredKernel returns coefficients re-derived from this repository's
// own kernel on the BenchmarkKernel* suite (see BENCH_kernel.json),
// rather than calibrated to the paper's 1999 hardware. Derivation, from
// the 256-process runs: the neighbour-exchange workload (every event
// delivers a message) gives EventCost+MessageCost = 1/2.77e6 s; the
// fan-in workload (alternating message-free wake and delivery events)
// gives 2*EventCost+MessageCost = 2/4.33e6 s; solving yields the values
// below. Window costs come from the 4-worker window-protocol delta over
// the sequential engine at 16 processes (~2.5e-6 s per window at
// log2(4) sync stages). ExecFactor and ByteCost are not kernel
// properties and keep their calibrated values.
func MeasuredKernel() Params {
	return Params{
		ExecFactor:  2.0,
		EventCost:   1.0e-7,
		MessageCost: 2.6e-7,
		ByteCost:    2.5e-9,
		WindowBase:  5e-7,
		WindowSync:  1.0e-6,
	}
}

// Workload summarizes one simulation run for host-cost purposes.
type Workload struct {
	// ExecSeconds is, per target rank, the directly executed target
	// computation (zero when the rank's computation was replaced by
	// delay calls).
	ExecSeconds []float64
	// Events is, per target rank, the kernel events it generated.
	Events []float64
	// Messages is, per target rank, messages sent plus received.
	Messages []float64
	// Bytes is, per target rank, message bytes sent plus received.
	Bytes []float64
	// Blocked is, per target rank, simulated time spent blocked in
	// receives. For direct-execution workloads it drives the
	// critical-path floor: a host cannot process a rank's receive before
	// the upstream rank's computation has been executed (at ExecFactor
	// speed), so pipeline stalls are replayed by the simulator.
	Blocked []float64
	// DirectExec records whether computation was directly executed. Only
	// then does blocked time imply host-side stalls; under the
	// analytical model upstream "computation" is a delay call that costs
	// the host nothing.
	DirectExec bool
	// SimTime is the simulated end time.
	SimTime float64
	// Lookahead is the conservative window width (the network's minimum
	// latency).
	Lookahead float64
}

// FromReport extracts a workload from a simulation report. directExec
// states whether the run executed computation directly (measured/DE) or
// through delay calls (AM): delays cost the simulator nothing beyond
// their events.
func FromReport(rep *mpi.Report, directExec bool, lookahead float64) Workload {
	n := len(rep.Ranks)
	w := Workload{
		ExecSeconds: make([]float64, n),
		Events:      make([]float64, n),
		Messages:    make([]float64, n),
		Bytes:       make([]float64, n),
		Blocked:     make([]float64, n),
		SimTime:     rep.Time,
		Lookahead:   lookahead,
		DirectExec:  directExec,
	}
	for i, rs := range rep.Ranks {
		if directExec {
			w.ExecSeconds[i] = float64(rs.ComputeTime - rs.DelayTime)
		}
		w.Messages[i] = float64(rs.MsgsSent + rs.MsgsRecvd)
		w.Bytes[i] = float64(rs.BytesSent + rs.BytesRecvd)
		w.Blocked[i] = float64(rs.BlockedTime)
		// start event + one deliver per received message.
		w.Events[i] = 1 + float64(rs.MsgsRecvd)
	}
	return w
}

// Ranks returns the number of target ranks in the workload.
func (w Workload) Ranks() int { return len(w.ExecSeconds) }

// rankCost is the host time to simulate one target rank's activity.
func (p Params) rankCost(w Workload, i int) float64 {
	c := w.ExecSeconds[i]*p.ExecFactor +
		w.Events[i]*p.EventCost +
		w.Messages[i]*p.MessageCost
	if i < len(w.Bytes) {
		c += w.Bytes[i] * p.ByteCost
	}
	return c
}

// Runtime estimates the simulator's wall-clock on the given number of
// host processors. Target ranks are block-assigned to hosts as the
// kernel does; the runtime is the maximum per-host load plus the
// synchronization cost of the conservative windows.
func (p Params) Runtime(w Workload, hosts int) (float64, error) {
	n := w.Ranks()
	if n == 0 {
		return 0, fmt.Errorf("hostmodel: empty workload")
	}
	if hosts < 1 {
		return 0, fmt.Errorf("hostmodel: hosts must be >= 1, got %d", hosts)
	}
	if hosts > n {
		hosts = n
	}
	loads := make([]float64, hosts)
	for i := 0; i < n; i++ {
		loads[i*hosts/n] += p.rankCost(w, i)
	}
	maxLoad := 0.0
	for _, l := range loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	floor := p.criticalPathFloor(w)
	if maxLoad < floor {
		maxLoad = floor
	}
	if hosts == 1 {
		return maxLoad, nil
	}
	windows := 1.0
	if w.Lookahead > 0 {
		windows = math.Max(1, w.SimTime/w.Lookahead)
	}
	sync := windows * (p.WindowBase + p.WindowSync*math.Log2(float64(hosts)))
	return maxLoad + sync, nil
}

// criticalPathFloor bounds the runtime of a direct-execution simulation
// from below: the last-finishing rank's executed computation plus its
// compute-induced stalls (blocked time minus the pure network latency of
// its messages) must be replayed at ExecFactor speed regardless of host
// count. Analytical-model workloads have no such floor; their upstream
// work is delay calls.
func (p Params) criticalPathFloor(w Workload) float64 {
	if !w.DirectExec {
		return 0
	}
	floor := 0.0
	for i := range w.ExecSeconds {
		stall := 0.0
		if i < len(w.Blocked) {
			stall = w.Blocked[i]
			if i < len(w.Messages) {
				stall -= w.Messages[i] * w.Lookahead
			}
			if stall < 0 {
				stall = 0
			}
		}
		if c := p.ExecFactor * (w.ExecSeconds[i] + stall); c > floor {
			floor = c
		}
	}
	return floor
}

// WallPerVirtualSecond predicts the simulator's host wall-clock cost per
// simulated second: Runtime over the workload's simulated end time. It
// is the model-side counterpart of the kernel's sim_wall_ns_per_virtual_s
// gauge (internal/obs), which samples the same ratio from a live run —
// comparing the two calibrates the host model against reality.
func (p Params) WallPerVirtualSecond(w Workload, hosts int) (float64, error) {
	if w.SimTime <= 0 {
		return 0, fmt.Errorf("hostmodel: non-positive simulated time %g", w.SimTime)
	}
	rt, err := p.Runtime(w, hosts)
	if err != nil {
		return 0, err
	}
	return rt / w.SimTime, nil
}

// Speedup returns Runtime(1 host) / Runtime(hosts).
func (p Params) Speedup(w Workload, hosts int) (float64, error) {
	t1, err := p.Runtime(w, 1)
	if err != nil {
		return 0, err
	}
	th, err := p.Runtime(w, hosts)
	if err != nil {
		return 0, err
	}
	if th == 0 {
		return 0, fmt.Errorf("hostmodel: zero parallel runtime")
	}
	return t1 / th, nil
}
