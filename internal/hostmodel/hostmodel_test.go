package hostmodel

import (
	"testing"

	"mpisim/internal/mpi"
	"mpisim/internal/sim"
)

func uniformWorkload(ranks int, exec float64) Workload {
	w := Workload{
		ExecSeconds: make([]float64, ranks),
		Events:      make([]float64, ranks),
		Messages:    make([]float64, ranks),
		SimTime:     1.0,
		Lookahead:   4e-5,
	}
	for i := range w.ExecSeconds {
		w.ExecSeconds[i] = exec
		w.Events[i] = 100
		w.Messages[i] = 200
	}
	return w
}

// TestDefaultPinned pins the calibrated coefficients: figs 12-16 are
// generated from them, so any change breaks the byte-identical
// regeneration of results/*.txt. Kernel-derived coefficients belong in
// MeasuredKernel instead.
func TestDefaultPinned(t *testing.T) {
	want := Params{
		ExecFactor:  2.0,
		EventCost:   2e-5,
		MessageCost: 2e-5,
		ByteCost:    2.5e-9,
		WindowBase:  5e-7,
		WindowSync:  2e-6,
	}
	if Default() != want {
		t.Fatalf("Default() changed: %+v", Default())
	}
}

// TestMeasuredKernelSane: the benchmark-derived coefficients must behave
// like a host model (faster per event than the calibrated 1999 numbers,
// runtimes still decreasing with hosts).
func TestMeasuredKernelSane(t *testing.T) {
	m, d := MeasuredKernel(), Default()
	if m.EventCost >= d.EventCost || m.MessageCost >= d.MessageCost {
		t.Fatalf("measured kernel should be cheaper per event/message than the calibrated model: %+v", m)
	}
	w := uniformWorkload(64, 0.5)
	t1, err := m.Runtime(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	t64, err := m.Runtime(w, 64)
	if err != nil {
		t.Fatal(err)
	}
	if t64 >= t1 {
		t.Fatalf("measured params: no speedup on 64 hosts (%g >= %g)", t64, t1)
	}
}

func TestRuntimeValidation(t *testing.T) {
	p := Default()
	if _, err := p.Runtime(Workload{}, 1); err == nil {
		t.Fatal("expected error for empty workload")
	}
	if _, err := p.Runtime(uniformWorkload(4, 1), 0); err == nil {
		t.Fatal("expected error for zero hosts")
	}
}

func TestRuntimeDecreasesWithHosts(t *testing.T) {
	p := Default()
	w := uniformWorkload(64, 0.5)
	prev, err := p.Runtime(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{2, 4, 8, 16, 32, 64} {
		cur, err := p.Runtime(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if cur >= prev {
			t.Fatalf("runtime did not decrease at %d hosts: %g >= %g", h, cur, prev)
		}
		prev = cur
	}
}

func TestSpeedupBoundedByHosts(t *testing.T) {
	p := Default()
	w := uniformWorkload(64, 0.5)
	for _, h := range []int{2, 4, 16, 64} {
		s, err := p.Speedup(w, h)
		if err != nil {
			t.Fatal(err)
		}
		if s <= 1 || s > float64(h) {
			t.Fatalf("speedup at %d hosts = %g, must be in (1, %d]", h, s, h)
		}
	}
}

func TestSpeedupSaturates(t *testing.T) {
	// With many windows (communication-bound), speedup at 64 hosts must
	// saturate well below 64 — the paper reports about 15 for Sweep3D.
	p := Default()
	w := uniformWorkload(64, 0.02) // little computation
	w.SimTime = 5.0                // many windows
	s64, err := p.Speedup(w, 64)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := p.Speedup(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s64 >= 40 {
		t.Fatalf("speedup did not saturate: %g", s64)
	}
	// Efficiency must drop between 8 and 64 hosts.
	if s64/64 >= s8/8 {
		t.Fatalf("efficiency did not drop: s8=%g s64=%g", s8, s64)
	}
}

func TestHostsClampedToRanks(t *testing.T) {
	p := Default()
	w := uniformWorkload(4, 0.1)
	a, _ := p.Runtime(w, 4)
	b, _ := p.Runtime(w, 400)
	if a != b {
		t.Fatalf("clamping failed: %g vs %g", a, b)
	}
}

func TestAMCheaperThanDE(t *testing.T) {
	p := Default()
	de := uniformWorkload(16, 1.0)
	am := de
	am.ExecSeconds = make([]float64, 16) // delays: no executed computation
	for _, h := range []int{1, 4, 16} {
		dt, _ := p.Runtime(de, h)
		at, _ := p.Runtime(am, h)
		if at >= dt {
			t.Fatalf("AM (%g) not cheaper than DE (%g) at %d hosts", at, dt, h)
		}
	}
}

func TestDEAboutTwiceApplication(t *testing.T) {
	// When computation dominates, DE at hosts==targets runs about
	// ExecFactor times the application (Figure 12's observation).
	p := Default()
	w := uniformWorkload(16, 2.0)
	w.Events = make([]float64, 16)
	w.Messages = make([]float64, 16)
	rt, _ := p.Runtime(w, 16)
	app := 2.0 // per-rank compute == app time for a balanced app
	ratio := rt / app
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("DE/app ratio = %g, want about 2", ratio)
	}
}

func TestFromReport(t *testing.T) {
	rep := &mpi.Report{
		Time: 3.5,
		Ranks: []mpi.RankStats{
			{ProcStats: sim.ProcStats{ComputeTime: 2.0, MsgsSent: 5, MsgsRecvd: 7}, DelayTime: 0.5},
			{ProcStats: sim.ProcStats{ComputeTime: 1.0, MsgsSent: 3, MsgsRecvd: 2}, DelayTime: 1.0},
		},
	}
	w := FromReport(rep, true, 4e-5)
	if w.Ranks() != 2 {
		t.Fatalf("Ranks = %d", w.Ranks())
	}
	if w.ExecSeconds[0] != 1.5 || w.ExecSeconds[1] != 0 {
		t.Fatalf("ExecSeconds = %v", w.ExecSeconds)
	}
	if w.Messages[0] != 12 || w.Events[0] != 8 {
		t.Fatalf("Messages/Events = %v %v", w.Messages, w.Events)
	}
	am := FromReport(rep, false, 4e-5)
	if am.ExecSeconds[0] != 0 {
		t.Fatalf("AM exec must be zero, got %v", am.ExecSeconds)
	}
	if w.SimTime != 3.5 || w.Lookahead != 4e-5 {
		t.Fatalf("SimTime/Lookahead = %v %v", w.SimTime, w.Lookahead)
	}
}

func TestCriticalPathFloor(t *testing.T) {
	p := Default()
	w := uniformWorkload(8, 0.1)
	w.DirectExec = true
	w.Blocked = make([]float64, 8)
	// One rank blocked 1s on upstream computation: the simulator must
	// replay it at ExecFactor speed regardless of host count.
	w.Blocked[7] = 1.0
	rt, err := p.Runtime(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	floor := p.ExecFactor * (0.1 + 1.0 - w.Messages[7]*w.Lookahead)
	if rt < floor {
		t.Fatalf("runtime %g below critical-path floor %g", rt, floor)
	}
	// Without direct execution (AM), no floor applies.
	w.DirectExec = false
	am, err := p.Runtime(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if am >= rt {
		t.Fatalf("AM runtime %g not below DE %g", am, rt)
	}
}

func TestByteCostCharged(t *testing.T) {
	p := Default()
	small := uniformWorkload(4, 0)
	big := small
	big.Bytes = make([]float64, 4)
	for i := range big.Bytes {
		big.Bytes[i] = 1e9
	}
	a, _ := p.Runtime(small, 1)
	b, _ := p.Runtime(big, 1)
	if b <= a {
		t.Fatalf("byte cost not charged: %g vs %g", b, a)
	}
}

func TestWallPerVirtualSecond(t *testing.T) {
	p := Default()
	w := uniformWorkload(16, 0.5)
	rt, err := p.Runtime(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.WallPerVirtualSecond(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := rt / w.SimTime; got != want {
		t.Fatalf("WallPerVirtualSecond = %g, want Runtime/SimTime = %g", got, want)
	}
	w.SimTime = 0
	if _, err := p.WallPerVirtualSecond(w, 4); err == nil {
		t.Fatal("expected error for zero simulated time")
	}
}
