// Package tracein is the simulator's offline trace frontend: a second
// front door, co-equal with the compiler path, through which any
// workload able to produce a trace can be simulated (the role DUMPI
// replay plays for SST/macro and time-independent traces for SMPI).
//
// A trace is a versioned JSONL stream: a header line followed by one
// event line per API-level MPI operation (compute spans, delays, p2p
// sends/receives with peer/tag/bytes, collectives with payload sizes).
// Payload values are never recorded — only sizes affect timing — so a
// trace is a complete, machine-independent description of the
// communication schedule. The package provides:
//
//   - Record: build a Trace from a simulation run's API call log
//     (mpi.Config.RecordCalls), and Write it as JSONL;
//   - Parse: a strict streaming parser with line-anchored diagnostics
//     that never panics on malformed input;
//   - Replay: drive a parsed trace through internal/mpi on the
//     existing kernel against any machine/topology/placement/fault
//     configuration, producing a normal report so attribution,
//     congestion analysis, profiling and mpireport work unchanged;
//   - Extrapolate: weak-scaling rank extrapolation using the symbolic
//     scaling functions the compiler derives (a 64-rank trace replayed
//     at 1024 ranks).
//
// simulate → record → replay on the same configuration reproduces the
// predicted schedule exactly: replay re-issues the identical API call
// sequence, and the simulator's timing depends only on call arguments,
// never on payload contents.
package tracein

import (
	"fmt"

	"mpisim/internal/mpi"
)

// SchemaVersion is the trace format version this package reads and
// writes (the "mpisim_trace" header field).
const SchemaVersion = 1

// MaxRanks bounds the rank count a parsed header may declare. It
// protects services that parse untrusted traces from allocation bombs
// (a forged header declaring 10^9 ranks); it is far above anything the
// kernel can usefully replay.
const MaxRanks = 1 << 20

// Header is the trace's first JSONL line: run metadata that replay and
// extrapolation need. App, Mode, Machine and Inputs are descriptive
// provenance; Ranks and Comm are semantic (they fix the world size and
// the communication timing model the trace was recorded under).
type Header struct {
	// Version is the schema version (SchemaVersion).
	Version int `json:"mpisim_trace"`
	// App names the traced application ("" when unknown).
	App string `json:"app,omitempty"`
	// Mode is the simulation mode the trace was recorded from (e.g.
	// "MPI-SIM-AM", "measured").
	Mode string `json:"mode,omitempty"`
	// Ranks is the number of ranks in the trace.
	Ranks int `json:"ranks"`
	// Machine names the machine model of the recording run; Replay
	// uses it as the default target when the caller supplies none.
	Machine string `json:"machine,omitempty"`
	// Comm names the communication timing model the trace was recorded
	// under (mpi.CommModel.String); replay re-simulates under the same
	// model so the schedule is reproduced rather than re-modeled.
	Comm string `json:"comm,omitempty"`
	// Inputs are the problem-size inputs of the recording run; together
	// with P and myid they form the environment the task-scale
	// expressions are evaluated in.
	Inputs map[string]float64 `json:"inputs,omitempty"`
	// TaskScale maps condensed-task names (w_i) to their symbolic
	// scaling functions (compiler.Result.TaskScales), the hook
	// weak-scaling extrapolation rescales per-task delays with.
	TaskScale map[string]string `json:"task_scale,omitempty"`
	// ExtrapolatedFrom is the source trace's rank count when this trace
	// was produced by Extrapolate (0 for directly recorded traces).
	ExtrapolatedFrom int `json:"extrapolated_from,omitempty"`
}

// CommModel resolves the header's communication model name.
func (h *Header) CommModel() (mpi.CommModel, error) {
	return mpi.CommByName(h.Comm)
}

// Trace is a parsed or recorded trace: the header plus each rank's
// API-level call sequence.
type Trace struct {
	Header Header
	Calls  [][]mpi.Call
}

// Events counts the trace's event lines (total calls over all ranks).
func (t *Trace) Events() int {
	n := 0
	for _, calls := range t.Calls {
		n += len(calls)
	}
	return n
}

// Record builds a Trace from a report carrying the API-level call log
// (a run with mpi.Config.RecordCalls set) and the given metadata.
// hdr.Version and hdr.Ranks are filled in; other fields are taken as
// provided.
func Record(rep *mpi.Report, hdr Header) (*Trace, error) {
	if rep.Calls == nil {
		return nil, fmt.Errorf("tracein: report has no call log (run with RecordCalls)")
	}
	hdr.Version = SchemaVersion
	if hdr.Ranks == 0 {
		hdr.Ranks = len(rep.Calls)
	}
	if hdr.Ranks != len(rep.Calls) {
		return nil, fmt.Errorf("tracein: header declares %d ranks but the report recorded %d", hdr.Ranks, len(rep.Calls))
	}
	return &Trace{Header: hdr, Calls: rep.Calls}, nil
}
