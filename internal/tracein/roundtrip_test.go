package tracein_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/core"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/tracein"
)

// The round-trip gate: simulate → record → write → parse → replay on
// the same machine/topology configuration must reproduce the predicted
// schedule exactly. Replay re-issues the identical API call sequence
// with nil payloads, and the simulator's timing depends only on call
// arguments, so per-rank finish times are required to match to the bit,
// not to a tolerance.

// smallInputs are per-app problem sizes small enough for the full
// matrix (mirrors the core package's flat-test inputs).
func smallInputs(app string, ranks int) map[string]float64 {
	gx, gy := apps.ProcGrid(ranks)
	switch app {
	case "tomcatv":
		return apps.TomcatvInputs(64, 2)
	case "sweep3d":
		return apps.Sweep3DInputs(4, 4, 8, 2, gx, gy)
	case "nassp":
		return apps.NASSPInputs(16, 2, 2)
	case "sample":
		return apps.SampleInputs(apps.PatternWavefront, 500, 256, 4, gx, gy)
	}
	return nil
}

// recordRun simulates prog with call recording on and returns the
// report plus the recorded trace (with full provenance header).
func recordRun(t *testing.T, app string, prog *ir.Program, mode core.Mode,
	ranks int, inputs map[string]float64, topo string) (*mpi.Report, *tracein.Trace, *machine.Model) {
	t.Helper()
	m := machine.IBMSP()
	m.Topology = topo
	r, err := core.NewRunner(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	r.RecordCalls = true
	if mode == core.Abstract || mode == core.PureAnalytic {
		if _, err := r.Calibrate(ranks, inputs); err != nil {
			t.Fatalf("calibrate: %v", err)
		}
	}
	rep, err := r.Run(mode, ranks, inputs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, err := tracein.Record(rep, tracein.Header{
		App:       app,
		Mode:      mode.String(),
		Machine:   m.Name,
		Comm:      mode.Comm(),
		Inputs:    inputs,
		TaskScale: r.Compiled.TaskScales(),
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return rep, tr, m
}

// checkRoundTrip drives one recorded run through the full
// write→parse→replay→re-record cycle and checks every gate.
func checkRoundTrip(t *testing.T, rep *mpi.Report, tr *tracein.Trace, m *machine.Model) {
	t.Helper()

	// Serialization round-trip: the parsed trace is structurally
	// identical to the recorded one.
	var buf bytes.Buffer
	if err := tracein.Write(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := tracein.ParseBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if !reflect.DeepEqual(parsed, tr) {
		t.Fatalf("parsed trace differs from recorded trace")
	}

	// Replay on the same machine reproduces the schedule exactly.
	rep2, err := tracein.Replay(parsed, mpi.Config{Machine: m, RecordCalls: true})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep2.Time != rep.Time {
		t.Errorf("replayed Time %v != simulated %v", rep2.Time, rep.Time)
	}
	if len(rep2.Ranks) != len(rep.Ranks) {
		t.Fatalf("replayed %d ranks, want %d", len(rep2.Ranks), len(rep.Ranks))
	}
	for i := range rep.Ranks {
		if rep2.Ranks[i].FinishTime != rep.Ranks[i].FinishTime {
			t.Errorf("rank %d: replayed finish %v != simulated %v",
				i, rep2.Ranks[i].FinishTime, rep.Ranks[i].FinishTime)
		}
	}

	// The attribution identity holds on the replayed report: a rank's
	// local clock is exactly its advanced time plus its blocked time.
	for i, rs := range rep2.Ranks {
		sum := float64(rs.ComputeTime) + float64(rs.BlockedTime)
		if diff := math.Abs(sum - float64(rs.FinishTime)); diff > 1e-9*(1+math.Abs(float64(rs.FinishTime))) {
			t.Errorf("rank %d: attribution identity broken: compute %v + blocked %v != finish %v",
				i, rs.ComputeTime, rs.BlockedTime, rs.FinishTime)
		}
	}

	// Re-recording the replay is a fixed point: byte-identical trace.
	tr2, err := tracein.Record(rep2, tr.Header)
	if err != nil {
		t.Fatalf("re-record: %v", err)
	}
	var buf2 bytes.Buffer
	if err := tracein.Write(&buf2, tr2); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("re-recorded trace is not byte-identical to the original")
	}
}

// TestRoundTripApps runs the gate for every registered application in
// measured mode (full computation, detailed communication) at 4 ranks.
func TestRoundTripApps(t *testing.T) {
	for _, name := range apps.Names() {
		spec := apps.Registry()[name]
		inputs := smallInputs(name, 4)
		if inputs == nil {
			t.Fatalf("no inputs for app %q", name)
		}
		t.Run(name, func(t *testing.T) {
			rep, tr, m := recordRun(t, name, spec.Build(), core.Measured, 4, inputs, "")
			checkRoundTrip(t, rep, tr, m)
		})
	}
}

// TestRoundTripAbstract runs the gate in MPI-SIM-AM mode, where the
// recorded calls are condensed-task delays rather than computes and the
// header carries the tasks' symbolic scaling functions.
func TestRoundTripAbstract(t *testing.T) {
	spec := apps.Registry()["sample"]
	inputs := smallInputs("sample", 4)
	rep, tr, m := recordRun(t, "sample", spec.Build(), core.Abstract, 4, inputs, "")
	if len(tr.Header.TaskScale) == 0 {
		t.Fatalf("abstract-mode trace carries no task scaling functions")
	}
	checkRoundTrip(t, rep, tr, m)
}

// TestRoundTripTopology runs the gate under a contended torus so the
// replayed schedule includes interconnect queueing.
func TestRoundTripTopology(t *testing.T) {
	spec := apps.Registry()["sample"]
	inputs := smallInputs("sample", 4)
	rep, tr, m := recordRun(t, "sample", spec.Build(), core.Measured, 4, inputs, "torus:dims=2x2")
	if rep.Net == nil {
		t.Fatalf("topology run produced no network stats")
	}
	checkRoundTrip(t, rep, tr, m)
}

// TestRoundTripExamples runs the gate for every example pseudocode
// program in MPI-SIM-DE mode.
func TestRoundTripExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/programs/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	inputs := map[string]float64{"N": 32, "STEPS": 2}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		t.Run(filepath.Base(f), func(t *testing.T) {
			rep, tr, m := recordRun(t, filepath.Base(f), prog, core.DirectExec, 4, inputs, "")
			checkRoundTrip(t, rep, tr, m)
		})
	}
}
