package tracein

import (
	"fmt"

	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// Replay runs the trace through the simulation kernel and returns the
// report, exactly as if the traced program had been simulated directly:
// every rank re-issues its recorded API call sequence with nil payloads
// (timing depends only on sizes, so the schedule is identical), while
// communication is re-simulated against cfg's machine, topology,
// placement, fault scenario and limits.
//
// cfg.Ranks defaults to the trace's rank count and must match it when
// set. cfg.Machine defaults to the header's machine model. The
// communication timing model always comes from the header: replay
// reproduces the recorded schedule under the model it was recorded
// with rather than re-modeling it.
func Replay(t *Trace, cfg mpi.Config) (*mpi.Report, error) {
	if t.Header.Ranks != len(t.Calls) {
		return nil, fmt.Errorf("tracein: header declares %d ranks but trace has %d call sequences", t.Header.Ranks, len(t.Calls))
	}
	if cfg.Ranks == 0 {
		cfg.Ranks = t.Header.Ranks
	}
	if cfg.Ranks != t.Header.Ranks {
		return nil, fmt.Errorf("tracein: config has %d ranks but the trace has %d (use Extrapolate to change the rank count)", cfg.Ranks, t.Header.Ranks)
	}
	if cfg.Machine == nil {
		if t.Header.Machine == "" {
			return nil, fmt.Errorf("tracein: no machine model (config has none and the trace header names none)")
		}
		m, err := machine.ByName(t.Header.Machine)
		if err != nil {
			return nil, err
		}
		cfg.Machine = m
	}
	comm, err := t.Header.CommModel()
	if err != nil {
		return nil, err
	}
	cfg.Comm = comm
	return mpi.Run(cfg, func(r *mpi.Rank) {
		calls := t.Calls[r.Rank()]
		for i := range calls {
			replayCall(r, &calls[i])
		}
	})
}

// replayCall re-issues one recorded operation. Payloads are nil
// throughout; recorded sizes carry the timing.
func replayCall(r *mpi.Rank, c *mpi.Call) {
	switch c.Op {
	case "compute":
		r.Compute(c.Sec)
	case "delay":
		r.DelayTask(c.Task, c.Sec)
	case "send":
		r.Send(c.Peer, c.Tag, c.Bytes, nil)
	case "recv":
		r.RecvSized(c.Peer, c.Tag, c.Bytes)
	case "sendrecv":
		r.Sendrecv(c.Peer, c.Tag, c.Bytes, nil, c.Peer2, c.Tag2)
	case "bcast":
		r.Bcast(c.Root, nil, c.Bytes)
	case "reduce":
		r.Reduce(c.Root, nil, c.Bytes, mpi.OpSum)
	case "allreduce":
		r.Allreduce(nil, c.Bytes, mpi.OpSum)
	case "barrier":
		r.Barrier()
	case "gather":
		r.Gather(c.Root, nil, c.Bytes)
	case "scatter":
		if c.Sizes != nil {
			r.ScatterSizes(c.Root, c.Sizes, c.Bytes)
		} else {
			r.Scatter(c.Root, nil, c.Bytes)
		}
	case "allgather":
		r.Allgather(nil, c.Bytes)
	case "alltoall":
		if c.Sizes != nil {
			r.AlltoallSizes(c.Sizes, c.Bytes)
		} else {
			r.Alltoall(nil, c.Bytes)
		}
	default:
		panic(fmt.Sprintf("tracein: unknown op %q reached replay (parser must reject it)", c.Op))
	}
}
