package tracein

import (
	"fmt"

	"mpisim/internal/ir"
	"mpisim/internal/mpi"
	"mpisim/internal/symexpr"
)

// ExtrapolateOptions configure a weak-scaling extrapolation.
type ExtrapolateOptions struct {
	// Ranks is the target rank count; it must be a positive multiple of
	// the source trace's rank count.
	Ranks int
	// Inputs override or extend the recorded problem-size inputs for
	// the scaled run (weak scaling typically grows the global problem
	// with the machine; per-rank inputs stay put).
	Inputs map[string]float64
	// Warn receives diagnostics about scaling functions that could not
	// be applied (nil discards them). Each affected task is reported
	// once; its delays then replay unscaled.
	Warn func(format string, args ...interface{})
}

// Extrapolate clones a recorded trace from its P0 ranks to a larger
// rank count P (a multiple of P0), the weak-scaling prediction move of
// trace-driven simulators:
//
//   - Target rank i replays the call sequence of source rank i mod P0.
//   - Point-to-point peers are remapped by relative offset: the
//     minimal signed residue δ of (peer − src) mod P0 is re-applied
//     around the larger ring, preserving ring, stencil and fan-in
//     block structure. (Offsets of exactly P0/2 are ambiguous and
//     resolve to −P0/2.) Receive wildcards stay wildcards.
//   - Collective roots are kept absolute (root < P0 ≤ P) and the
//     collectives naturally widen to all P ranks — the true source of
//     weak-scaling communication loss.
//   - Per-task delays are rescaled by the ratio of the task's symbolic
//     scaling function (Header.TaskScale) evaluated at the new and old
//     environments {inputs..., P, myid}. Tasks without a resolvable
//     scaling function replay unscaled, with a warning.
//   - Message and collective payload sizes are kept (the weak-scaling
//     assumption: per-rank data volume is constant); per-destination
//     size vectors are tiled periodically.
func Extrapolate(t *Trace, opts ExtrapolateOptions) (*Trace, error) {
	p0 := t.Header.Ranks
	p := opts.Ranks
	if p0 < 1 || p0 != len(t.Calls) {
		return nil, fmt.Errorf("tracein: malformed source trace (%d ranks, %d call sequences)", p0, len(t.Calls))
	}
	if p < p0 || p%p0 != 0 {
		return nil, fmt.Errorf("tracein: extrapolation target %d must be a multiple of the trace's %d ranks", p, p0)
	}
	if p > MaxRanks {
		return nil, fmt.Errorf("tracein: extrapolation target %d exceeds the supported maximum %d", p, MaxRanks)
	}
	warn := opts.Warn
	if warn == nil {
		warn = func(string, ...interface{}) {}
	}

	inputs := make(map[string]float64, len(t.Header.Inputs)+len(opts.Inputs))
	for k, v := range t.Header.Inputs {
		inputs[k] = v
	}
	for k, v := range opts.Inputs {
		inputs[k] = v
	}

	// Parse each task's scaling function once; failures degrade that
	// task to factor 1.
	scales := make(map[string]symexpr.Expr, len(t.Header.TaskScale))
	for task, src := range t.Header.TaskScale {
		e, err := ir.ParseExpr(src)
		if err != nil {
			warn("tracein: task %s: unparseable scaling function %q: %v (delays replay unscaled)", task, src, err)
			continue
		}
		se, err := ir.ToSym(e)
		if err != nil {
			warn("tracein: task %s: scaling function %q is not closed-form: %v (delays replay unscaled)", task, src, err)
			continue
		}
		scales[task] = se
	}
	warned := map[string]bool{}

	out := &Trace{Header: t.Header}
	out.Header.Ranks = p
	out.Header.ExtrapolatedFrom = p0
	if len(inputs) > 0 {
		out.Header.Inputs = inputs
	}
	out.Calls = make([][]mpi.Call, p)

	half := p0 / 2
	for i := 0; i < p; i++ {
		s := i % p0
		envOld := scaleEnv(t.Header.Inputs, p0, s)
		envNew := scaleEnv(inputs, p, i)
		// Minimal-signed-residue peer remap around the larger ring.
		remap := func(peer int) int {
			if peer < 0 {
				return peer // receive wildcard
			}
			d := ((peer-s+half)%p0+p0)%p0 - half
			np := (i + d) % p
			if np < 0 {
				np += p
			}
			return np
		}
		factors := map[string]float64{}
		src := t.Calls[s]
		calls := make([]mpi.Call, len(src))
		for j, c := range src {
			switch c.Op {
			case "delay":
				if c.Task != "" {
					f, ok := factors[c.Task]
					if !ok {
						f = taskFactor(scales, c.Task, envOld, envNew, warn, warned)
						factors[c.Task] = f
					}
					c.Sec *= f
				}
			case "send", "recv":
				c.Peer = remap(c.Peer)
			case "sendrecv":
				c.Peer = remap(c.Peer)
				c.Peer2 = remap(c.Peer2)
			case "scatter":
				if c.Sizes != nil {
					if i == c.Root {
						c.Sizes = tileSizes(c.Sizes, p)
					} else {
						// Clones of the root-source rank are not the root in
						// the larger world; their size vector is meaningless
						// (and the canonical format rejects it).
						c.Sizes = nil
					}
				}
			case "alltoall":
				if c.Sizes != nil {
					c.Sizes = tileSizes(c.Sizes, p)
				}
			}
			calls[j] = c
		}
		out.Calls[i] = calls
	}
	return out, nil
}

// scaleEnv builds the evaluation environment of a scaling function:
// the problem inputs plus the builtin P and myid.
func scaleEnv(inputs map[string]float64, p, myid int) symexpr.Env {
	env := make(symexpr.Env, len(inputs)+2)
	for k, v := range inputs {
		env[k] = v
	}
	env[ir.BuiltinP] = float64(p)
	env[ir.BuiltinMyID] = float64(myid)
	return env
}

// taskFactor evaluates the delay rescale ratio for one task, degrading
// to 1 (with a once-per-task warning) when the function cannot be
// evaluated or yields a degenerate ratio.
func taskFactor(scales map[string]symexpr.Expr, task string,
	envOld, envNew symexpr.Env,
	warn func(string, ...interface{}), warned map[string]bool) float64 {
	warnOnce := func(format string, args ...interface{}) {
		if !warned[task] {
			warned[task] = true
			warn(format, args...)
		}
	}
	e, ok := scales[task]
	if !ok {
		warnOnce("tracein: task %s: no scaling function recorded (delays replay unscaled)", task)
		return 1
	}
	old, err := e.Eval(envOld)
	if err != nil {
		warnOnce("tracein: task %s: scaling function does not evaluate at the recorded configuration: %v (delays replay unscaled)", task, err)
		return 1
	}
	if old <= 0 {
		warnOnce("tracein: task %s: scaling function is %g at the recorded configuration (delays replay unscaled)", task, old)
		return 1
	}
	next, err := e.Eval(envNew)
	if err != nil {
		warnOnce("tracein: task %s: scaling function does not evaluate at the target configuration: %v (delays replay unscaled)", task, err)
		return 1
	}
	if next < 0 {
		next = 0
	}
	return next / old
}

// tileSizes extends a per-destination size vector to p entries by
// periodic repetition.
func tileSizes(sizes []int64, p int) []int64 {
	out := make([]int64, p)
	for d := range out {
		out[d] = sizes[d%len(sizes)]
	}
	return out
}
