package tracein_test

import (
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/core"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/tracein"
)

// ringTrace builds a small hand trace: each of p ranks delays on task
// w_1 for 1s, then sendrecvs around the ring.
func ringTrace(p int) *tracein.Trace {
	t := &tracein.Trace{
		Header: tracein.Header{
			Version:   tracein.SchemaVersion,
			Ranks:     p,
			Machine:   "ibmsp",
			Comm:      "analytic",
			Inputs:    map[string]float64{"N": 64},
			TaskScale: map[string]string{"w_1": "N / P"},
		},
	}
	t.Calls = make([][]mpi.Call, p)
	for i := 0; i < p; i++ {
		t.Calls[i] = []mpi.Call{
			{Op: "delay", Task: "w_1", Sec: 1.0},
			{Op: "sendrecv", Peer: (i + 1) % p, Tag: 7, Bytes: 1024,
				Peer2: (i - 1 + p) % p, Tag2: 7},
			{Op: "barrier"},
		}
	}
	return t
}

// TestExtrapolateRemap checks the structural rules: ring peers remap
// around the larger ring, delays rescale by the symbolic scaling
// function's ratio, and the header records the provenance.
func TestExtrapolateRemap(t *testing.T) {
	src := ringTrace(4)
	out, err := tracein.Extrapolate(src, tracein.ExtrapolateOptions{Ranks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Header.Ranks != 8 || out.Header.ExtrapolatedFrom != 4 {
		t.Fatalf("header = %+v", out.Header)
	}
	for i := 0; i < 8; i++ {
		calls := out.Calls[i]
		if len(calls) != 3 {
			t.Fatalf("rank %d has %d calls", i, len(calls))
		}
		// N/P at (N=64, P=4) is 16; at (N=64, P=8) it is 8 → factor 0.5.
		if calls[0].Sec != 0.5 {
			t.Errorf("rank %d: delay scaled to %v, want 0.5", i, calls[0].Sec)
		}
		if want := (i + 1) % 8; calls[1].Peer != want {
			t.Errorf("rank %d: send peer %d, want %d", i, calls[1].Peer, want)
		}
		if want := (i - 1 + 8) % 8; calls[1].Peer2 != want {
			t.Errorf("rank %d: recv peer %d, want %d", i, calls[1].Peer2, want)
		}
	}
	// The source trace is untouched.
	if src.Calls[0][0].Sec != 1.0 || src.Calls[0][1].Peer != 1 {
		t.Fatalf("extrapolation mutated the source trace")
	}
	// Inputs can be overridden for the scaled run: doubling N with P
	// keeps N/P constant → factor 1.
	out, err = tracein.Extrapolate(src, tracein.ExtrapolateOptions{
		Ranks:  8,
		Inputs: map[string]float64{"N": 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Calls[0][0].Sec != 1.0 {
		t.Errorf("weak-scaled delay = %v, want 1.0", out.Calls[0][0].Sec)
	}
}

// TestExtrapolateWarnings checks the degradation paths: tasks without a
// scaling function (or with one that fails to evaluate) replay unscaled
// and warn once.
func TestExtrapolateWarnings(t *testing.T) {
	src := ringTrace(4)
	src.Header.TaskScale = map[string]string{"w_1": "N / UNDEFINED"}
	var warns []string
	out, err := tracein.Extrapolate(src, tracein.ExtrapolateOptions{
		Ranks: 8,
		Warn:  func(format string, args ...interface{}) { warns = append(warns, format) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Calls[0][0].Sec != 1.0 {
		t.Errorf("unevaluable scale changed the delay to %v", out.Calls[0][0].Sec)
	}
	if len(warns) == 0 {
		t.Errorf("no warning for unevaluable scaling function")
	}
}

// TestExtrapolateErrors checks target validation.
func TestExtrapolateErrors(t *testing.T) {
	src := ringTrace(4)
	for _, ranks := range []int{0, 2, 6, tracein.MaxRanks * 4} {
		if _, err := tracein.Extrapolate(src, tracein.ExtrapolateOptions{Ranks: ranks}); err == nil {
			t.Errorf("target %d accepted", ranks)
		}
	}
	if _, err := tracein.Extrapolate(src, tracein.ExtrapolateOptions{Ranks: 4}); err != nil {
		t.Errorf("identity extrapolation rejected: %v", err)
	}
}

// TestExtrapolateGate is the acceptance gate: a 16-rank trace recorded
// from a real app extrapolates to 64 ranks and replays to completion
// under both a torus and a fat-tree, and the report attributes the
// weak-scaling loss (nonzero blocked time, live network stats).
func TestExtrapolateGate(t *testing.T) {
	gx, gy := apps.ProcGrid(16)
	inputs := apps.SampleInputs(apps.PatternWavefront, 500, 256, 4, gx, gy)
	spec := apps.Registry()["sample"]
	rep, tr, _ := recordRun(t, "sample", spec.Build(), core.DirectExec, 16, inputs, "")
	if rep.Time <= 0 {
		t.Fatalf("source run predicts no time")
	}

	for _, topo := range []string{"torus:dims=8x8", "fattree:k=4"} {
		t.Run(topo, func(t *testing.T) {
			big, err := tracein.Extrapolate(tr, tracein.ExtrapolateOptions{
				Ranks: 64,
				Warn:  t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := machine.IBMSP()
			m.Topology = topo
			rep2, err := tracein.Replay(big, mpi.Config{Machine: m})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep2.Ranks) != 64 {
				t.Fatalf("replayed %d ranks", len(rep2.Ranks))
			}
			if rep2.Time <= 0 {
				t.Fatalf("extrapolated replay predicts no time")
			}
			if rep2.Net == nil {
				t.Fatalf("extrapolated replay has no network stats")
			}
			var blocked float64
			for _, rs := range rep2.Ranks {
				blocked += float64(rs.BlockedTime)
			}
			if blocked <= 0 {
				t.Errorf("extrapolated replay shows no communication wait to attribute")
			}
		})
	}
}
