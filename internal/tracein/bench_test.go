package tracein_test

import (
	"testing"

	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/tracein"
)

// benchBody is a synthetic ring workload: per step, a compute span and
// a neighbor sendrecv; a closing barrier.
func benchBody(p, steps int) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		me := r.Rank()
		next, prev := (me+1)%p, (me-1+p)%p
		for s := 0; s < steps; s++ {
			r.Compute(1e-6)
			r.Sendrecv(next, s, 4096, nil, prev, s)
		}
		r.Barrier()
	}
}

// BenchmarkTraceReplay compares direct simulation of the workload with
// replaying its recorded trace through the same kernel. ci.sh gates
// replay throughput at no worse than 25% below direct: the trace
// frontend walks a call slice instead of executing the program body, so
// its per-event cost must stay in the same regime.
func BenchmarkTraceReplay(b *testing.B) {
	const p, steps = 16, 200
	cfg := mpi.Config{Ranks: p, Machine: machine.IBMSP(), Comm: mpi.Analytic}
	body := benchBody(p, steps)

	rcfg := cfg
	rcfg.RecordCalls = true
	rep, err := mpi.Run(rcfg, body)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := tracein.Record(rep, tracein.Header{
		Machine: "ibmsp",
		Comm:    "analytic",
	})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		var events int64
		for i := 0; i < b.N; i++ {
			rep, err := mpi.Run(cfg, body)
			if err != nil {
				b.Fatal(err)
			}
			events += rep.Kernel.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("replay", func(b *testing.B) {
		b.ReportAllocs()
		var events int64
		for i := 0; i < b.N; i++ {
			rep, err := tracein.Replay(tr, mpi.Config{Machine: cfg.Machine})
			if err != nil {
				b.Fatal(err)
			}
			events += rep.Kernel.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	})
}
