package tracein

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mpisim/internal/mpi"
)

// Write serializes the trace as JSONL: the header line followed by each
// rank's calls in rank order. The output is deterministic (fixed field
// order per event kind, sorted map keys in the header) and Parse reads
// it back to an identical Trace.
func Write(w io.Writer, t *Trace) error {
	if t.Header.Version != SchemaVersion {
		return fmt.Errorf("tracein: cannot write schema version %d (want %d)", t.Header.Version, SchemaVersion)
	}
	if t.Header.Ranks != len(t.Calls) {
		return fmt.Errorf("tracein: header declares %d ranks but trace has %d call sequences", t.Header.Ranks, len(t.Calls))
	}
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(&t.Header)
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for rank, calls := range t.Calls {
		for i := range calls {
			line, err := marshalEvent(rank, &calls[i])
			if err != nil {
				return err
			}
			bw.Write(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to path (0644, truncating).
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// marshalEvent renders one call as its canonical JSONL line. Per-op
// anonymous structs pin the field order, so equal traces serialize to
// equal bytes.
func marshalEvent(rank int, c *mpi.Call) ([]byte, error) {
	type rop struct {
		R  int    `json:"r"`
		Op string `json:"op"`
	}
	switch c.Op {
	case "compute":
		return json.Marshal(struct {
			rop
			Sec float64 `json:"sec"`
		}{rop{rank, c.Op}, c.Sec})
	case "delay":
		return json.Marshal(struct {
			rop
			Sec  float64 `json:"sec"`
			Task string  `json:"task,omitempty"`
		}{rop{rank, c.Op}, c.Sec, c.Task})
	case "send", "recv":
		return json.Marshal(struct {
			rop
			Peer  int   `json:"peer"`
			Tag   int   `json:"tag"`
			Bytes int64 `json:"bytes"`
		}{rop{rank, c.Op}, c.Peer, c.Tag, c.Bytes})
	case "sendrecv":
		return json.Marshal(struct {
			rop
			Peer  int   `json:"peer"`
			Tag   int   `json:"tag"`
			Bytes int64 `json:"bytes"`
			Peer2 int   `json:"peer2"`
			Tag2  int   `json:"tag2"`
		}{rop{rank, c.Op}, c.Peer, c.Tag, c.Bytes, c.Peer2, c.Tag2})
	case "bcast", "reduce", "gather":
		return json.Marshal(struct {
			rop
			Root  int   `json:"root"`
			Bytes int64 `json:"bytes"`
		}{rop{rank, c.Op}, c.Root, c.Bytes})
	case "scatter":
		return json.Marshal(struct {
			rop
			Root  int     `json:"root"`
			Bytes int64   `json:"bytes"`
			Sizes []int64 `json:"sizes,omitempty"`
		}{rop{rank, c.Op}, c.Root, c.Bytes, c.Sizes})
	case "allreduce", "allgather":
		return json.Marshal(struct {
			rop
			Bytes int64 `json:"bytes"`
		}{rop{rank, c.Op}, c.Bytes})
	case "alltoall":
		return json.Marshal(struct {
			rop
			Bytes int64   `json:"bytes"`
			Sizes []int64 `json:"sizes,omitempty"`
		}{rop{rank, c.Op}, c.Bytes, c.Sizes})
	case "barrier":
		return json.Marshal(rop{rank, c.Op})
	}
	return nil, fmt.Errorf("tracein: rank %d: unknown op %q in call log", rank, c.Op)
}
