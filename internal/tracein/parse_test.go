package tracein_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"mpisim/internal/tracein"
)

const hdr4 = `{"mpisim_trace":1,"ranks":4,"machine":"ibmsp","comm":"analytic"}` + "\n"

// TestParseValid checks a hand-written trace covering every op parses
// and replays.
func TestParseValid(t *testing.T) {
	src := hdr4 +
		`{"r":0,"op":"compute","sec":0.001}` + "\n" +
		`{"r":0,"op":"delay","sec":0.002,"task":"w_1"}` + "\n" +
		`{"r":0,"op":"send","peer":1,"tag":7,"bytes":2048}` + "\n" +
		`{"r":1,"op":"recv","peer":0,"tag":7,"bytes":2048}` + "\n" +
		`{"r":2,"op":"recv","peer":-1,"tag":-1,"bytes":64}` + "\n" +
		`{"r":3,"op":"send","peer":2,"tag":0,"bytes":64}` + "\n" +
		"\n" + // blank lines are skipped
		`{"r":0,"op":"sendrecv","peer":1,"tag":1,"bytes":8,"peer2":1,"tag2":2}` + "\n" +
		`{"r":1,"op":"sendrecv","peer":0,"tag":2,"bytes":8,"peer2":0,"tag2":1}` + "\n" +
		`{"r":0,"op":"bcast","root":0,"bytes":1024}` + "\n" +
		`{"r":1,"op":"bcast","root":0,"bytes":1024}` + "\n" +
		`{"r":2,"op":"bcast","root":0,"bytes":1024}` + "\n" +
		`{"r":3,"op":"bcast","root":0,"bytes":1024}` + "\n" +
		`{"r":0,"op":"scatter","root":0,"bytes":0,"sizes":[8,16,24,32]}` + "\n" +
		`{"r":1,"op":"scatter","root":0,"bytes":0}` + "\n" +
		`{"r":2,"op":"scatter","root":0,"bytes":0}` + "\n" +
		`{"r":3,"op":"scatter","root":0,"bytes":0}` + "\n" +
		`{"r":0,"op":"barrier"}` + "\n" +
		`{"r":1,"op":"barrier"}` + "\n" +
		`{"r":2,"op":"barrier"}` + "\n" +
		`{"r":3,"op":"barrier"}` + "\n"
	tr, err := tracein.ParseBytes([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Ranks != 4 || tr.Events() != 20 {
		t.Fatalf("got %d ranks, %d events", tr.Header.Ranks, tr.Events())
	}
	// A final newline is not required.
	if _, err := tracein.ParseBytes([]byte(strings.TrimSuffix(src, "\n"))); err != nil {
		t.Fatalf("trace without trailing newline: %v", err)
	}
}

// TestParseErrors is the diagnostics table: every malformed input must
// produce a *ParseError anchored to the offending line — never a panic,
// never a silent acceptance.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
		want string // substring of the message
	}{
		{"empty", "", 1, "missing header line"},
		{"blank only", "\n\n", 1, "missing header line"},
		{"not json", "hello world\n", 1, "not a trace header"},
		{"json array", "[1,2,3]\n", 1, "not a trace header"},
		{"object but not a header", `{"foo":1}` + "\n", 1, "not a trace header"},
		{"future version", `{"mpisim_trace":2,"ranks":4}` + "\n", 1, "unsupported trace version 2"},
		{"unknown header field", `{"mpisim_trace":1,"ranks":4,"zap":1}` + "\n", 1, `unknown field "zap"`},
		{"zero ranks", `{"mpisim_trace":1,"ranks":0}` + "\n", 1, "ranks must be >= 1"},
		{"negative ranks", `{"mpisim_trace":1,"ranks":-3}` + "\n", 1, "ranks must be >= 1"},
		{"allocation bomb", `{"mpisim_trace":1,"ranks":1000000000}` + "\n", 1, "exceeds the supported maximum"},
		{"unknown comm", `{"mpisim_trace":1,"ranks":4,"comm":"psychic"}` + "\n", 1, `unknown comm model "psychic"`},
		{"huge input", `{"mpisim_trace":1,"ranks":4,"inputs":{"n":1e999}}` + "\n", 1, ""},
		{"negative extrapolated_from", `{"mpisim_trace":1,"ranks":4,"extrapolated_from":-1}` + "\n", 1, "extrapolated_from"},
		{"header trailing garbage", `{"mpisim_trace":1,"ranks":4} junk` + "\n", 1, "trailing content"},
		{"event not an object", hdr4 + "42\n", 2, "expected a JSON object"},
		{"event bad json", hdr4 + "{broken\n", 2, ""},
		{"event trailing garbage", hdr4 + `{"r":0,"op":"barrier"} junk` + "\n", 2, "trailing content"},
		{"missing r", hdr4 + `{"op":"barrier"}` + "\n", 2, `missing field "r"`},
		{"missing op", hdr4 + `{"r":0}` + "\n", 2, `missing field "op"`},
		{"rank out of range", hdr4 + `{"r":4,"op":"barrier"}` + "\n", 2, "rank 4 out of range"},
		{"negative rank", hdr4 + `{"r":-1,"op":"barrier"}` + "\n", 2, "rank -1 out of range"},
		{"unknown op", hdr4 + `{"r":0,"op":"teleport"}` + "\n", 2, `unknown op "teleport"`},
		{"unknown event field", hdr4 + `{"r":0,"op":"barrier","zz":1}` + "\n", 2, `unknown field "zz"`},
		{"missing required field", hdr4 + `{"r":0,"op":"send","peer":1,"tag":0}` + "\n", 2, "missing field(s): bytes"},
		{"foreign field", hdr4 + `{"r":0,"op":"compute","sec":1,"peer":2}` + "\n", 2, "does not take field(s): peer"},
		{"barrier with payload", hdr4 + `{"r":0,"op":"barrier","bytes":4}` + "\n", 2, "does not take field(s): bytes"},
		{"negative sec", hdr4 + `{"r":0,"op":"compute","sec":-1}` + "\n", 2, "sec must be finite"},
		{"infinite sec", hdr4 + `{"r":0,"op":"compute","sec":1e999}` + "\n", 2, ""},
		{"negative bytes", hdr4 + `{"r":0,"op":"send","peer":1,"tag":0,"bytes":-8}` + "\n", 2, "bytes must be >= 0"},
		{"peer out of range", hdr4 + `{"r":0,"op":"send","peer":4,"tag":0,"bytes":8}` + "\n", 2, "peer 4 out of range"},
		{"send wildcard peer", hdr4 + `{"r":0,"op":"send","peer":-1,"tag":0,"bytes":8}` + "\n", 2, "peer -1 out of range"},
		{"recv below wildcard", hdr4 + `{"r":0,"op":"recv","peer":-2,"tag":0,"bytes":8}` + "\n", 2, "peer -2 out of range"},
		{"peer2 out of range", hdr4 + `{"r":0,"op":"sendrecv","peer":1,"tag":0,"bytes":8,"peer2":9,"tag2":0}` + "\n", 2, "peer2 9 out of range"},
		{"root out of range", hdr4 + `{"r":0,"op":"bcast","root":4,"bytes":8}` + "\n", 2, "root 4 out of range"},
		{"sizes wrong length", hdr4 + `{"r":0,"op":"scatter","root":0,"bytes":0,"sizes":[1,2]}` + "\n", 2, "sizes has 2 entries"},
		{"negative size entry", hdr4 + `{"r":0,"op":"scatter","root":0,"bytes":0,"sizes":[1,2,-3,4]}` + "\n", 2, "sizes[2] must be >= 0"},
		{"scatter sizes off root", hdr4 + `{"r":1,"op":"scatter","root":0,"bytes":0,"sizes":[1,2,3,4]}` + "\n", 2, "only valid on the root"},
		{"error on later line", hdr4 + `{"r":0,"op":"barrier"}` + "\n" + `{"r":0,"op":"warp"}` + "\n", 3, `unknown op "warp"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tracein.ParseBytes([]byte(tc.src))
			if err == nil {
				t.Fatalf("parse accepted malformed input")
			}
			var perr *tracein.ParseError
			if !errors.As(err, &perr) {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if perr.Line != tc.line {
				t.Errorf("error anchored to line %d, want %d: %v", perr.Line, tc.line, err)
			}
			if tc.want != "" && !strings.Contains(perr.Msg, tc.want) {
				t.Errorf("message %q does not contain %q", perr.Msg, tc.want)
			}
		})
	}
}

// FuzzParseTrace feeds the parser arbitrary bytes. The contract under
// fuzzing: never panic; every rejection is a line-anchored *ParseError;
// every accepted trace re-serializes canonically and stably
// (write → parse → write is a fixed point).
func FuzzParseTrace(f *testing.F) {
	valid := hdr4 +
		`{"r":0,"op":"compute","sec":0.001}` + "\n" +
		`{"r":0,"op":"send","peer":1,"tag":7,"bytes":2048}` + "\n" +
		`{"r":1,"op":"recv","peer":0,"tag":7,"bytes":2048}` + "\n" +
		`{"r":0,"op":"allreduce","bytes":64}` + "\n" +
		`{"r":0,"op":"scatter","root":0,"bytes":0,"sizes":[8,16,24,32]}` + "\n" +
		`{"r":0,"op":"barrier"}` + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(hdr4)+20]))                                    // truncated mid-event
	f.Add([]byte(strings.Replace(valid, `"bytes":2048`, `"bytes":-1`, 1))) // corrupt value
	f.Add([]byte(strings.Replace(valid, `"mpisim_trace":1`, `"mpisim_trace":99`, 1)))
	f.Add([]byte(strings.Replace(valid, `"op":"send"`, `"op":"zap"`, 1)))
	f.Add([]byte(`{"mpisim_trace":1,"ranks":999999999}` + "\n"))
	f.Add([]byte(""))
	f.Add([]byte("\xff\xfe not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := tracein.ParseBytes(data)
		if err != nil {
			var perr *tracein.ParseError
			if !errors.As(err, &perr) {
				t.Fatalf("rejection is %T, want *ParseError: %v", err, err)
			}
			return
		}
		// Accepted: the canonical serialization must parse back and be
		// a fixed point byte-for-byte.
		var buf bytes.Buffer
		if err := tracein.Write(&buf, tr); err != nil {
			t.Fatalf("accepted trace does not serialize: %v", err)
		}
		tr2, err := tracein.ParseBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("canonical serialization does not parse: %v", err)
		}
		var buf2 bytes.Buffer
		if err := tracein.Write(&buf2, tr2); err != nil {
			t.Fatalf("reparsed trace does not serialize: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("write→parse→write is not a fixed point")
		}
	})
}
