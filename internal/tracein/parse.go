package tracein

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"mpisim/internal/mpi"
)

// ParseError is a line-anchored trace diagnostic. Every way a trace can
// be malformed — bad JSON, unknown fields, missing or extra fields for
// an op, out-of-range ranks or sizes — reports as a ParseError naming
// the offending line; the parser never panics.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("tracein: line %d: %s", e.Line, e.Msg)
}

func lineErr(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads a JSONL trace stream strictly: the first line must be a
// valid header of the supported schema version, every following
// non-empty line one well-formed event. Unknown fields, fields foreign
// to an event's op, wrong types, non-finite numbers and out-of-range
// references are all rejected with line-anchored errors.
func Parse(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	lineNo := 0
	sawHeader := false
	for {
		raw, err := br.ReadBytes('\n')
		if len(raw) == 0 && err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		lineNo++
		line := bytes.TrimRight(raw, "\r\n")
		if len(bytes.TrimSpace(line)) == 0 {
			if err == io.EOF {
				break
			}
			continue
		}
		if !sawHeader {
			if perr := parseHeader(line, lineNo, &t.Header); perr != nil {
				return nil, perr
			}
			t.Calls = make([][]mpi.Call, t.Header.Ranks)
			sawHeader = true
		} else if perr := parseEvent(line, lineNo, t); perr != nil {
			return nil, perr
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if !sawHeader {
		return nil, lineErr(1, "empty trace: missing header line")
	}
	return t, nil
}

// ParseBytes parses an in-memory trace.
func ParseBytes(data []byte) (*Trace, error) {
	return Parse(bytes.NewReader(data))
}

// ParseHeader reads and validates only the trace's header line: cheap
// access to the run metadata (app, rank count, machine) without
// materializing the call log.
func ParseHeader(data []byte) (*Header, error) {
	br := bufio.NewReader(bytes.NewReader(data))
	lineNo := 0
	for {
		raw, err := br.ReadBytes('\n')
		if len(raw) == 0 && err != nil {
			break
		}
		lineNo++
		line := bytes.TrimRight(raw, "\r\n")
		if len(bytes.TrimSpace(line)) == 0 {
			if err == io.EOF {
				break
			}
			continue
		}
		var h Header
		if perr := parseHeader(line, lineNo, &h); perr != nil {
			return nil, perr
		}
		return &h, nil
	}
	return nil, lineErr(1, "empty trace: missing header line")
}

// ParseFile parses a trace file.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// decodeStrict unmarshals one line into v, rejecting unknown fields,
// non-object values and trailing content.
func decodeStrict(line []byte, lineNo int, v interface{}) error {
	trimmed := bytes.TrimSpace(line)
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return lineErr(lineNo, "expected a JSON object")
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return lineErr(lineNo, "%v", err)
	}
	if dec.More() {
		return lineErr(lineNo, "trailing content after JSON object")
	}
	return nil
}

func parseHeader(line []byte, lineNo int, h *Header) error {
	// Presence of the version key distinguishes "not a trace at all"
	// from "a trace of an unsupported version".
	var probe struct {
		Version *int `json:"mpisim_trace"`
	}
	probeDec := json.NewDecoder(bytes.NewReader(line))
	if err := probeDec.Decode(&probe); err != nil || probe.Version == nil {
		return lineErr(lineNo, `not a trace header (missing "mpisim_trace" version field)`)
	}
	if *probe.Version != SchemaVersion {
		return lineErr(lineNo, "unsupported trace version %d (this build reads version %d)", *probe.Version, SchemaVersion)
	}
	if err := decodeStrict(line, lineNo, h); err != nil {
		return err
	}
	if h.Ranks < 1 {
		return lineErr(lineNo, "ranks must be >= 1, got %d", h.Ranks)
	}
	if h.Ranks > MaxRanks {
		return lineErr(lineNo, "ranks %d exceeds the supported maximum %d", h.Ranks, MaxRanks)
	}
	if h.Comm != "" {
		if _, err := mpi.CommByName(h.Comm); err != nil {
			return lineErr(lineNo, "unknown comm model %q", h.Comm)
		}
	}
	for k, v := range h.Inputs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return lineErr(lineNo, "input %q is not finite", k)
		}
	}
	if h.ExtrapolatedFrom < 0 {
		return lineErr(lineNo, "extrapolated_from must be >= 0, got %d", h.ExtrapolatedFrom)
	}
	return nil
}

// wireEvent is the event line's wire form: pointer fields distinguish
// absent from zero so each op's required and allowed field sets can be
// enforced exactly.
type wireEvent struct {
	R     *int     `json:"r"`
	Op    *string  `json:"op"`
	Sec   *float64 `json:"sec"`
	Task  *string  `json:"task"`
	Peer  *int     `json:"peer"`
	Tag   *int     `json:"tag"`
	Bytes *int64   `json:"bytes"`
	Peer2 *int     `json:"peer2"`
	Tag2  *int     `json:"tag2"`
	Root  *int     `json:"root"`
	Sizes []int64  `json:"sizes"`
}

type fieldMask uint16

const (
	fSec fieldMask = 1 << iota
	fTask
	fPeer
	fTag
	fBytes
	fPeer2
	fTag2
	fRoot
	fSizes
)

var fieldNames = []struct {
	mask fieldMask
	name string
}{
	{fSec, "sec"}, {fTask, "task"}, {fPeer, "peer"}, {fTag, "tag"},
	{fBytes, "bytes"}, {fPeer2, "peer2"}, {fTag2, "tag2"},
	{fRoot, "root"}, {fSizes, "sizes"},
}

// opFields declares, per op, which fields must and which additionally
// may appear.
var opFields = map[string]struct{ req, opt fieldMask }{
	"compute":   {fSec, 0},
	"delay":     {fSec, fTask},
	"send":      {fPeer | fTag | fBytes, 0},
	"recv":      {fPeer | fTag | fBytes, 0},
	"sendrecv":  {fPeer | fTag | fBytes | fPeer2 | fTag2, 0},
	"bcast":     {fRoot | fBytes, 0},
	"reduce":    {fRoot | fBytes, 0},
	"gather":    {fRoot | fBytes, 0},
	"scatter":   {fRoot | fBytes, fSizes},
	"allreduce": {fBytes, 0},
	"allgather": {fBytes, 0},
	"alltoall":  {fBytes, fSizes},
	"barrier":   {0, 0},
}

func (w *wireEvent) present() fieldMask {
	var m fieldMask
	if w.Sec != nil {
		m |= fSec
	}
	if w.Task != nil {
		m |= fTask
	}
	if w.Peer != nil {
		m |= fPeer
	}
	if w.Tag != nil {
		m |= fTag
	}
	if w.Bytes != nil {
		m |= fBytes
	}
	if w.Peer2 != nil {
		m |= fPeer2
	}
	if w.Tag2 != nil {
		m |= fTag2
	}
	if w.Root != nil {
		m |= fRoot
	}
	if w.Sizes != nil {
		m |= fSizes
	}
	return m
}

func maskNames(m fieldMask) string {
	var names []string
	for _, f := range fieldNames {
		if m&f.mask != 0 {
			names = append(names, f.name)
		}
	}
	return strings.Join(names, ", ")
}

func parseEvent(line []byte, lineNo int, t *Trace) error {
	var w wireEvent
	if err := decodeStrict(line, lineNo, &w); err != nil {
		return err
	}
	if w.R == nil {
		return lineErr(lineNo, `event missing field "r"`)
	}
	if w.Op == nil {
		return lineErr(lineNo, `event missing field "op"`)
	}
	ranks := t.Header.Ranks
	rank := *w.R
	if rank < 0 || rank >= ranks {
		return lineErr(lineNo, "rank %d out of range [0, %d)", rank, ranks)
	}
	spec, ok := opFields[*w.Op]
	if !ok {
		return lineErr(lineNo, "unknown op %q", *w.Op)
	}
	have := w.present()
	if missing := spec.req &^ have; missing != 0 {
		return lineErr(lineNo, "op %q missing field(s): %s", *w.Op, maskNames(missing))
	}
	if extra := have &^ (spec.req | spec.opt); extra != 0 {
		return lineErr(lineNo, "op %q does not take field(s): %s", *w.Op, maskNames(extra))
	}

	c := mpi.Call{Op: *w.Op}
	if w.Sec != nil {
		if math.IsNaN(*w.Sec) || math.IsInf(*w.Sec, 0) || *w.Sec < 0 {
			return lineErr(lineNo, "sec must be finite and >= 0, got %v", *w.Sec)
		}
		c.Sec = *w.Sec
	}
	if w.Task != nil {
		c.Task = *w.Task
	}
	if w.Bytes != nil {
		if *w.Bytes < 0 {
			return lineErr(lineNo, "bytes must be >= 0, got %d", *w.Bytes)
		}
		c.Bytes = *w.Bytes
	}
	if w.Peer != nil {
		c.Peer = *w.Peer
		lo := 0
		if *w.Op == "recv" {
			lo = mpi.AnySource // the receive wildcard
		}
		if c.Peer < lo || c.Peer >= ranks {
			return lineErr(lineNo, "peer %d out of range [%d, %d)", c.Peer, lo, ranks)
		}
	}
	if w.Tag != nil {
		c.Tag = *w.Tag
	}
	if w.Peer2 != nil {
		c.Peer2 = *w.Peer2
		if c.Peer2 < mpi.AnySource || c.Peer2 >= ranks {
			return lineErr(lineNo, "peer2 %d out of range [%d, %d)", c.Peer2, mpi.AnySource, ranks)
		}
	}
	if w.Tag2 != nil {
		c.Tag2 = *w.Tag2
	}
	if w.Root != nil {
		c.Root = *w.Root
		if c.Root < 0 || c.Root >= ranks {
			return lineErr(lineNo, "root %d out of range [0, %d)", c.Root, ranks)
		}
	}
	if w.Sizes != nil {
		if len(w.Sizes) != ranks {
			return lineErr(lineNo, "sizes has %d entries, want one per rank (%d)", len(w.Sizes), ranks)
		}
		for i, s := range w.Sizes {
			if s < 0 {
				return lineErr(lineNo, "sizes[%d] must be >= 0, got %d", i, s)
			}
		}
		if *w.Op == "scatter" && rank != c.Root {
			return lineErr(lineNo, "scatter sizes are only valid on the root's event (rank %d, root %d)", rank, c.Root)
		}
		c.Sizes = w.Sizes
	}
	t.Calls[rank] = append(t.Calls[rank], c)
	return nil
}
