package compiler

import (
	"math"
	"strings"
	"testing"

	"mpisim/internal/interp"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// figure1 is the running example from the paper (Figure 1a).
func figure1() *ir.Program {
	myid := ir.S(ir.BuiltinMyID)
	nVar := ir.S("N")
	b := ir.S("b")
	return &ir.Program{
		Name:   "figure1",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{
			{Name: "A", Dims: []ir.Expr{nVar, ir.Add(ir.N(1), ir.CeilDiv(nVar, ir.S(ir.BuiltinP)))}, Elem: 8},
			{Name: "D", Dims: []ir.Expr{nVar, ir.Add(ir.N(1), ir.CeilDiv(nVar, ir.S(ir.BuiltinP)))}, Elem: 8},
		},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.SetS("b", ir.CeilDiv(nVar, ir.S(ir.BuiltinP))),
			&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(nVar, ir.N(1)), ir.N(1), ir.N(1))})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(nVar, ir.N(1)), ir.Add(b, ir.N(1)), ir.Add(b, ir.N(1)))})},
			ir.Loop("compute", "j",
				ir.MaxE(ir.N(2), ir.Add(ir.Mul(myid, b), ir.N(1))),
				ir.MinE(nVar, ir.Add(ir.Mul(myid, b), b)),
				ir.Loop("", "i", ir.N(2), ir.Sub(nVar, ir.N(1)),
					ir.SetA("A", ir.IX(ir.S("i"), ir.Sub(ir.S("j"), ir.Mul(myid, b))),
						ir.Mul(ir.Add(ir.At("D", ir.S("i"), ir.Sub(ir.S("j"), ir.Mul(myid, b))),
							ir.At("D", ir.S("i"), ir.Add(ir.Sub(ir.S("j"), ir.Mul(myid, b)), ir.N(1)))), ir.N(0.5))),
				),
			),
		),
	}
}

// interp mirrors DummyBufferName as a local constant (it cannot import
// this package: these in-package tests import interp); this pin breaks
// if the name drifts.
func TestDummyBufferNamePinned(t *testing.T) {
	if DummyBufferName != "dummy_buf" {
		t.Fatalf("DummyBufferName = %q; interp's mirrored constant must be updated in lockstep", DummyBufferName)
	}
}

func TestCompileFigure1(t *testing.T) {
	res, err := Compile(figure1())
	if err != nil {
		t.Fatal(err)
	}
	// Two condensed tasks: prologue + loop nest.
	if len(res.TaskVars) != 2 {
		t.Fatalf("TaskVars = %v", res.TaskVars)
	}
	// b and N must be relevant (they determine comm and loop bounds).
	if !res.Slice.Relevant["b"] || !res.Slice.Relevant["N"] {
		t.Fatalf("relevant = %v", res.Slice.RelevantSorted())
	}
	// A is pure computation: eliminated. D is comm-only: dummy.
	if !res.Slice.DummyArrays["D"] {
		t.Fatalf("D should be dummied: %v", res.Slice.DummyArrays)
	}
	elim := res.Slice.EliminatedArrays(res.Original)
	if len(elim) != 1 || elim[0] != "A" {
		t.Fatalf("eliminated = %v", elim)
	}
	// Simplified program keeps no full-size arrays.
	if res.Simplified.Array("A") != nil || res.Simplified.Array("D") != nil {
		t.Fatalf("simplified kept arrays:\n%s", res.Simplified)
	}
	if res.Simplified.Array(DummyBufferName) == nil {
		t.Fatal("simplified missing dummy buffer")
	}
	// The dummy buffer dims must be evaluable from inputs only.
	scalars := map[string]bool{}
	ir.ScalarsIn(res.Simplified.Array(DummyBufferName).Dims[0], scalars, nil)
	for s := range scalars {
		if s != "N" && s != ir.BuiltinP && s != ir.BuiltinMyID {
			t.Fatalf("dummy dims reference computed scalar %q: %s", s,
				res.Simplified.Array(DummyBufferName).Dims[0])
		}
	}
	// Retained prologue: b = ceil(N/P) must appear in the simplified
	// program (Figure 1c keeps it).
	listing := res.Simplified.String()
	if !strings.Contains(listing, "b = ceildiv(N, P)") {
		t.Fatalf("prologue not retained:\n%s", listing)
	}
	if !strings.Contains(listing, "read_and_broadcast(w_1, w_2)") {
		t.Fatalf("w preamble missing:\n%s", listing)
	}
	if !strings.Contains(listing, "call delay(") {
		t.Fatalf("delay call missing:\n%s", listing)
	}
	// Timer program wraps both tasks.
	tl := res.Timer.String()
	if strings.Count(tl, "start_timer") != 2 {
		t.Fatalf("timer program:\n%s", tl)
	}
	// Summary renders.
	sum := res.Summary()
	for _, want := range []string{"condensed tasks: 2", "dummy buffer elements"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

// calibrateAndPredict runs the full Figure-2 workflow: timer run on a
// reference config, then the simplified program with the measured w_i.
func calibrateAndPredict(t *testing.T, res *Result, m *machine.Model,
	calRanks int, calInputs map[string]float64,
	ranks int, inputs map[string]float64) (am, de float64, amRep *mpi.Report) {
	t.Helper()
	cal := interp.NewCalibration()
	_, err := interp.Run(res.Timer, interp.Config{
		Ranks: calRanks, Machine: m, Comm: mpi.Detailed,
		Inputs: calInputs, Calibration: cal,
	})
	if err != nil {
		t.Fatalf("timer run: %v", err)
	}
	amRep, err = interp.Run(res.Simplified, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Analytic,
		Inputs: inputs, TaskTimes: cal.TaskTimes(),
	})
	if err != nil {
		t.Fatalf("AM run: %v", err)
	}
	deRep, err := interp.Run(res.Original, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Analytic,
		Inputs: inputs,
	})
	if err != nil {
		t.Fatalf("DE run: %v", err)
	}
	return amRep.Time, deRep.Time, amRep
}

func TestAMMatchesDEAtCalibrationConfig(t *testing.T) {
	// At the calibration configuration the cache factor is identical, so
	// the simplified program's prediction must match direct execution to
	// within the tiny double-count of retained scalar statements and the
	// w-broadcast preamble.
	res, err := Compile(figure1())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.IBMSP()
	inputs := map[string]float64{"N": 64}
	am, de, _ := calibrateAndPredict(t, res, m, 4, inputs, 4, inputs)
	if de <= 0 || am <= 0 {
		t.Fatalf("degenerate times am=%v de=%v", am, de)
	}
	relErr := math.Abs(am-de) / de
	if relErr > 0.02 {
		t.Fatalf("AM=%v DE=%v relative error %.3f > 2%%", am, de, relErr)
	}
}

func TestAMAccuracyAcrossConfigs(t *testing.T) {
	// Calibrate at P=4, predict at P=8 with a different N: errors must
	// stay within the paper's envelope (<17%).
	res, err := Compile(figure1())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.IBMSP()
	am, de, _ := calibrateAndPredict(t, res, m,
		4, map[string]float64{"N": 64},
		8, map[string]float64{"N": 96})
	relErr := math.Abs(am-de) / de
	if relErr > 0.17 {
		t.Fatalf("AM=%v DE=%v relative error %.3f > 17%%", am, de, relErr)
	}
}

func TestMemoryReduction(t *testing.T) {
	// The simplified program must use orders of magnitude less memory
	// (Table 1's effect).
	res, err := Compile(figure1())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.IBMSP()
	inputs := map[string]float64{"N": 256}
	deRep, err := interp.Run(res.Original, interp.Config{
		Ranks: 4, Machine: m, Comm: mpi.Analytic, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	cal := interp.NewCalibration()
	if _, err := interp.Run(res.Timer, interp.Config{
		Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs, Calibration: cal}); err != nil {
		t.Fatal(err)
	}
	amRep, err := interp.Run(res.Simplified, interp.Config{
		Ranks: 4, Machine: m, Comm: mpi.Analytic, Inputs: inputs,
		TaskTimes: cal.TaskTimes()})
	if err != nil {
		t.Fatal(err)
	}
	factor := float64(deRep.TotalPeakBytes) / float64(amRep.TotalPeakBytes)
	// Original: 2 arrays of 256x65; simplified: one 254-element buffer.
	if factor < 50 {
		t.Fatalf("memory reduction factor = %.1f (DE=%d AM=%d)",
			factor, deRep.TotalPeakBytes, amRep.TotalPeakBytes)
	}
}

func TestDataDependentBoundsRetained(t *testing.T) {
	// NAS-SP-style: loop bounds come from an array computed at runtime;
	// the slicer must keep that array and its defining loop, and the
	// delay scaling expression must reference it (paper §3.3).
	p := &ir.Program{
		Name:   "spstyle",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{
			{Name: "CELL", Dims: []ir.Expr{ir.N(4)}, Elem: 8},
			{Name: "U", Dims: []ir.Expr{ir.N(64), ir.N(64)}, Elem: 8},
		},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			// cell sizes computed into an array
			ir.Loop("", "c", ir.N(1), ir.N(4),
				ir.SetA("CELL", ir.IX(ir.S("c")), ir.CeilDiv(ir.S("N"), ir.Mul(ir.S("c"), ir.N(1))))),
			// exchange guarded by rank
			&ir.If{Cond: ir.GT(ir.S(ir.BuiltinMyID), ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(ir.S(ir.BuiltinMyID), ir.N(1)), Tag: 1, Array: "U",
					Section: ir.Sec(ir.N(1), ir.At("CELL", ir.N(1)), ir.N(1), ir.N(1))})},
			&ir.If{Cond: ir.LT(ir.S(ir.BuiltinMyID), ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
				&ir.Recv{Src: ir.Add(ir.S(ir.BuiltinMyID), ir.N(1)), Tag: 1, Array: "U",
					Section: ir.Sec(ir.N(1), ir.At("CELL", ir.N(1)), ir.N(2), ir.N(2))})},
			// compute over bounds from CELL
			ir.Loop("solve", "i", ir.N(1), ir.At("CELL", ir.N(2)),
				ir.Loop("", "j", ir.N(1), ir.N(64),
					ir.SetA("U", ir.IX(ir.MinE(ir.S("i"), ir.N(64)), ir.S("j")),
						ir.Add(ir.At("U", ir.MinE(ir.S("i"), ir.N(64)), ir.S("j")), ir.N(1))))),
		),
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Slice.KeptArrays["CELL"] {
		t.Fatalf("CELL not kept: %s", res.Summary())
	}
	if !res.Slice.DummyArrays["U"] {
		t.Fatalf("U not dummied: %s", res.Summary())
	}
	// The CELL-defining loop must be retained in the simplified program.
	listing := res.Simplified.String()
	if !strings.Contains(listing, "CELL(c) = ") {
		t.Fatalf("CELL definition lost:\n%s", listing)
	}
	// And the simplified program must run correctly end to end.
	cal := interp.NewCalibration()
	m := machine.IBMSP()
	if _, err := interp.Run(res.Timer, interp.Config{
		Ranks: 2, Machine: m, Comm: mpi.Detailed,
		Inputs: map[string]float64{"N": 32}, Calibration: cal}); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(res.Simplified, interp.Config{
		Ranks: 2, Machine: m, Comm: mpi.Analytic,
		Inputs: map[string]float64{"N": 32}, TaskTimes: cal.TaskTimes()}); err != nil {
		t.Fatal(err)
	}
}

func TestCommInsideRetainedLoop(t *testing.T) {
	// Iterative stencil: loop { shift; compute } — the loop is retained,
	// a delay is emitted per iteration, and the dummy buffer works inside
	// the loop.
	myid := ir.S(ir.BuiltinMyID)
	p := &ir.Program{
		Name:   "iter",
		Params: []string{"N", "STEPS"},
		Arrays: []*ir.ArrayDecl{
			{Name: "D", Dims: []ir.Expr{ir.S("N")}, Elem: 8},
		},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			&ir.ReadInput{Var: "STEPS"},
			ir.Loop("timeloop", "it", ir.N(1), ir.S("STEPS"),
				&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
					&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
						Section: ir.Sec(ir.N(1), ir.S("N"))})},
				&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
					&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
						Section: ir.Sec(ir.N(1), ir.S("N"))})},
				ir.Loop("", "i", ir.N(1), ir.S("N"),
					ir.SetA("D", ir.IX(ir.S("i")), ir.Add(ir.At("D", ir.S("i")), ir.N(1)))),
			),
		),
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	listing := res.Simplified.String()
	if !strings.Contains(listing, "do it = 1, STEPS") {
		t.Fatalf("time loop not retained:\n%s", listing)
	}
	// Exactly one delay inside the loop body (prologue has none: the
	// reads define relevant vars and are retained, leaving an empty
	// region... the prologue region is all-retained so its delay is
	// trivial but still emitted).
	if !strings.Contains(listing, "call delay(") {
		t.Fatalf("no delay emitted:\n%s", listing)
	}
	m := machine.IBMSP()
	inputs := map[string]float64{"N": 128, "STEPS": 5}
	am, de, _ := calibrateAndPredict(t, res, m, 4, inputs, 4, inputs)
	relErr := math.Abs(am-de) / de
	if relErr > 0.05 {
		t.Fatalf("iterative AM=%v DE=%v err=%.3f", am, de, relErr)
	}
}

func TestNoCondenseOption(t *testing.T) {
	res, err := CompileOpts(figure1(), Options{NoCondense: true})
	if err != nil {
		t.Fatal(err)
	}
	// Leaf condensation produces at least as many tasks as region
	// condensation (here: prologue, loop nest... the nest is one leaf
	// compute node inside two loops — it stays per-leaf).
	if len(res.TaskVars) < 2 {
		t.Fatalf("TaskVars = %v", res.TaskVars)
	}
	if err := res.Simplified.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoSliceOption(t *testing.T) {
	res, err := CompileOpts(figure1(), Options{NoSlice: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without slicing, the prologue's b-assignment is dropped from the
	// simplified program.
	if strings.Contains(res.Simplified.String(), "b = ceildiv(N, P)") {
		t.Fatalf("NoSlice retained statements:\n%s", res.Simplified)
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	p := &ir.Program{Name: "bad", Body: ir.Block(ir.SetS("x", ir.At("Q", ir.N(1))))}
	if _, err := Compile(p); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPureComputationProgram(t *testing.T) {
	// No communication at all: one condensed task, no dummy buffer.
	p := &ir.Program{
		Name:   "pure",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.S("N")}, Elem: 8}},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.Loop("", "i", ir.N(1), ir.S("N"),
				ir.SetA("A", ir.IX(ir.S("i")), ir.S("i"))),
		),
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskVars) != 1 {
		t.Fatalf("TaskVars = %v", res.TaskVars)
	}
	if res.DummyElems != nil {
		t.Fatal("unexpected dummy buffer")
	}
	if res.Simplified.Array("A") != nil {
		t.Fatal("array A should be eliminated")
	}
}

func TestDummyBufferFallbackForDynamicSizes(t *testing.T) {
	// The message size depends on a loop variable, which cannot be
	// resolved at array-declaration time; the compiler must fall back to
	// the conservative bound (the full replaced array) per §3.1's
	// "allocate the buffer statically or dynamically ... depending on
	// when the required message sizes are known".
	myid := ir.S(ir.BuiltinMyID)
	p := &ir.Program{
		Name:   "dynsize",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(64)}, Elem: 8}},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.Loop("rounds", "k", ir.N(1), ir.N(4),
				&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
					// Message length k varies per iteration.
					&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
						Section: ir.Sec(ir.N(1), ir.S("k"))})},
				&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
					&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
						Section: ir.Sec(ir.N(1), ir.S("k"))})},
			),
		),
	}
	res, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback bound: the whole 64-element array.
	if res.DummyElems == nil || res.DummyElems.String() != "64" {
		t.Fatalf("dummy elems = %v, want conservative 64", res.DummyElems)
	}
	// The simplified program must still run correctly: sections use k,
	// which stays within the conservative buffer.
	cal := interp.NewCalibration()
	m := machine.IBMSP()
	inputs := map[string]float64{"N": 8}
	if _, err := interp.Run(res.Timer, interp.Config{
		Ranks: 3, Machine: m, Comm: mpi.Detailed, Inputs: inputs, Calibration: cal}); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(res.Simplified, interp.Config{
		Ranks: 3, Machine: m, Comm: mpi.Analytic, Inputs: inputs,
		TaskTimes: cal.TaskTimes()}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryListsEverything(t *testing.T) {
	res, err := Compile(figure1())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary()
	for _, want := range []string{"STG nodes", "relevant variables", "arrays kept",
		"replaced by dummy buffer", "eliminated"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
