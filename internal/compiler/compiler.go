// Package compiler implements the dhpf-side pipeline of the paper
// (Figure 2): from a source program it synthesizes the static task graph,
// condenses it, slices the program, and emits two derived programs:
//
//   - the simplified program, in which every condensed task is replaced
//     by a call to the simulator-provided delay function with a symbolic
//     scaling expression, unused arrays are eliminated or replaced by a
//     shared dummy communication buffer, and a preamble reads and
//     broadcasts the measured w_i parameters (paper §3.1);
//   - the timer-instrumented program, the unmodified computation wrapped
//     with timers around each condensed task, whose output calibrates the
//     w_i parameters (paper §3.3).
package compiler

import (
	"fmt"
	"sort"
	"strings"

	"mpisim/internal/ir"
	"mpisim/internal/slicer"
	"mpisim/internal/stg"
)

// Result bundles the compilation artifacts.
type Result struct {
	// Original is the validated input program.
	Original *ir.Program
	// Simplified is the delay-call program fed to the optimized
	// simulator (MPI-SIM-AM).
	Simplified *ir.Program
	// Timer is the instrumented program used to measure the w_i
	// parameters.
	Timer *ir.Program
	// Graph is the condensed static task graph.
	Graph *stg.Graph
	// FullGraph is the uncondensed static task graph.
	FullGraph *stg.Graph
	// Slice is the program slice used for the simplification.
	Slice *slicer.Slice
	// TaskVars lists the w_i parameter names in order.
	TaskVars []string
	// DummyElems is the dummy buffer's element-count expression (nil if
	// no dummy buffer was needed).
	DummyElems ir.Expr
}

// DummyBufferName is the name of the shared communication buffer in
// simplified programs.
const DummyBufferName = "dummy_buf"

// Options tune the compilation; the zero value reproduces the paper.
type Options struct {
	// NoCondense disables region condensation: every loop nest remains a
	// separate task... it retains the full graph and emits one delay per
	// leaf compute node. Used by the ablation benchmarks.
	NoCondense bool
	// NoSlice disables program slicing: the simplified program retains
	// no computational statements (scaling functions may then evaluate
	// incorrectly when they depend on computed values). Used by the
	// ablation benchmarks.
	NoSlice bool
	// BranchProbs supplies measured taken-probabilities for the
	// statistical folding of conditionals inside collapsed regions
	// (paper §3.1's profiling refinement). Missing branches use 0.5.
	BranchProbs map[*ir.If]float64
}

// Compile runs the full pipeline with default options.
func Compile(p *ir.Program) (*Result, error) { return CompileOpts(p, Options{}) }

// CompileOpts runs the pipeline with explicit options.
func CompileOpts(p *ir.Program, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	full, err := stg.Build(p)
	if err != nil {
		return nil, err
	}
	var cg *stg.Graph
	if opts.NoCondense {
		cg = condenseLeaves(full)
	} else {
		cg = full.CondenseProfiled(opts.BranchProbs)
	}
	sl, err := slicer.Run(p, cg)
	if err != nil {
		return nil, err
	}
	if opts.NoSlice {
		sl.Retained = map[ir.Stmt]bool{}
	}
	res := &Result{
		Original:  p,
		Graph:     cg,
		FullGraph: full,
		Slice:     sl,
		TaskVars:  append([]string{}, cg.TaskVars...),
	}
	em := &emitter{prog: p, slice: sl, graph: cg}
	res.Simplified, res.DummyElems, err = em.simplified()
	if err != nil {
		return nil, err
	}
	res.Timer = em.timer()
	if err := res.Simplified.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: emitted simplified program invalid: %w", err)
	}
	if err := res.Timer.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: emitted timer program invalid: %w", err)
	}
	return res, nil
}

// condenseLeaves is the ablation variant: condense each comm-free leaf
// node separately instead of maximal regions.
func condenseLeaves(full *stg.Graph) *stg.Graph {
	// Reuse Condense but force region breaks by condensing single nodes:
	// build a graph where every node is its own region. Implemented by
	// condensing the full graph and then... simplest faithful approach:
	// condense each compute node individually via a recursive rebuild.
	ng := &stg.Graph{Program: full.Program}
	var rec func(ns []*stg.Node) []*stg.Node
	rec = func(ns []*stg.Node) []*stg.Node {
		var out []*stg.Node
		for _, n := range ns {
			switch n.Kind {
			case stg.KindComm:
				out = append(out, n)
			case stg.KindLoop:
				cp := *n
				cp.Children = rec(n.Children)
				out = append(out, &cp)
			case stg.KindBranch:
				cp := *n
				cp.Then = rec(n.Then)
				cp.Else = rec(n.Else)
				out = append(out, &cp)
			case stg.KindCompute:
				c := &stg.Node{
					ID:      n.ID,
					Kind:    stg.KindCondensed,
					Guard:   n.Guard,
					Stmts:   n.Stmts,
					TaskVar: fmt.Sprintf("w_%d", len(ng.TaskVars)+1),
				}
				c.Units = ir.Simplify(stg.UnitsOf(n.Stmts))
				c.Label = "task " + c.TaskVar
				ng.TaskVars = append(ng.TaskVars, c.TaskVar)
				out = append(out, c)
			}
		}
		return out
	}
	ng.Roots = rec(full.Roots)
	return ng
}

type emitter struct {
	prog  *ir.Program
	slice *slicer.Slice
	graph *stg.Graph
}

// simplified emits the delay-call program.
func (em *emitter) simplified() (*ir.Program, ir.Expr, error) {
	out := &ir.Program{
		Name:   em.prog.Name + "_simplified",
		Params: append([]string{}, em.prog.Params...),
	}
	// Kept arrays keep their declarations.
	for _, d := range em.prog.Arrays {
		if em.slice.KeptArrays[d.Name] {
			out.Arrays = append(out.Arrays, d)
		}
	}
	// Dummy buffer sized to the largest replaced message.
	var dummyElems ir.Expr
	if len(em.slice.DummyArrays) > 0 {
		seen := map[string]bool{}
		var sizes []ir.Expr
		for _, e := range em.slice.MsgElems {
			if key := e.String(); !seen[key] {
				seen[key] = true
				sizes = append(sizes, e)
			}
		}
		sort.Slice(sizes, func(i, j int) bool { return sizes[i].String() < sizes[j].String() })
		max := sizes[0]
		for _, e := range sizes[1:] {
			max = ir.MaxE(max, e)
		}
		dummyElems = em.resolveStartup(ir.Simplify(max))
		out.Arrays = append(out.Arrays, &ir.ArrayDecl{
			Name: DummyBufferName, Dims: []ir.Expr{dummyElems}, Elem: 8,
		})
	}
	body := em.emitSimplifiedSeq(em.graph.Roots)
	if len(em.graph.TaskVars) > 0 {
		body = append([]ir.Stmt{&ir.ReadTaskTimes{Names: em.graph.TaskVars}}, body...)
	}
	out.Body = body
	return out, dummyElems, nil
}

func (em *emitter) emitSimplifiedSeq(ns []*stg.Node) []ir.Stmt {
	var out []ir.Stmt
	for _, n := range ns {
		switch n.Kind {
		case stg.KindCondensed:
			out = append(out, em.retainedSubset(n.Stmts)...)
			out = append(out, &ir.Delay{
				Seconds: ir.Mul(n.Units, ir.S(n.TaskVar)),
				Task:    n.TaskVar,
			})
		case stg.KindLoop:
			f := n.Stmts[0].(*ir.For)
			out = append(out, &ir.For{
				Var: f.Var, Lo: f.Lo, Hi: f.Hi, Label: f.Label,
				Body: em.emitSimplifiedSeq(n.Children),
			})
		case stg.KindBranch:
			br := n.Stmts[0].(*ir.If)
			out = append(out, &ir.If{
				Cond: br.Cond,
				Then: em.emitSimplifiedSeq(n.Then),
				Else: em.emitSimplifiedSeq(n.Else),
			})
		case stg.KindComm:
			out = append(out, em.rewriteComm(n.Stmts[0]))
		}
	}
	return out
}

// retainedSubset extracts the sliced statements of a condensed region,
// preserving the control structure that encloses them.
func (em *emitter) retainedSubset(stmts []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range stmts {
		if !em.slice.Retained[s] {
			continue
		}
		switch x := s.(type) {
		case *ir.For:
			out = append(out, &ir.For{
				Var: x.Var, Lo: x.Lo, Hi: x.Hi, Label: x.Label,
				Body: em.retainedSubset(x.Body),
			})
		case *ir.If:
			out = append(out, &ir.If{
				Cond: x.Cond,
				Then: em.retainedSubset(x.Then),
				Else: em.retainedSubset(x.Else),
			})
		default:
			out = append(out, s)
		}
	}
	return out
}

// rewriteComm replaces payload arrays by the dummy buffer when the slice
// allows it.
func (em *emitter) rewriteComm(s ir.Stmt) ir.Stmt {
	switch x := s.(type) {
	case *ir.Send:
		if em.slice.DummyArrays[x.Array] {
			return &ir.Send{Dest: x.Dest, Tag: x.Tag, Array: DummyBufferName,
				Section: []ir.Range{{Lo: ir.N(1), Hi: em.slice.MsgElems[s]}}}
		}
	case *ir.Recv:
		if em.slice.DummyArrays[x.Array] {
			return &ir.Recv{Src: x.Src, Tag: x.Tag, Array: DummyBufferName,
				Section: []ir.Range{{Lo: ir.N(1), Hi: em.slice.MsgElems[s]}}}
		}
	}
	return s
}

// timer emits the instrumented program: the original computation with a
// Timed wrapper around every condensed task.
func (em *emitter) timer() *ir.Program {
	out := &ir.Program{
		Name:   em.prog.Name + "_timer",
		Params: append([]string{}, em.prog.Params...),
		Arrays: em.prog.Arrays,
	}
	out.Body = em.emitTimerSeq(em.graph.Roots)
	return out
}

func (em *emitter) emitTimerSeq(ns []*stg.Node) []ir.Stmt {
	var out []ir.Stmt
	for _, n := range ns {
		switch n.Kind {
		case stg.KindCondensed:
			out = append(out, &ir.Timed{ID: n.TaskVar, Units: n.Units, Body: n.Stmts})
		case stg.KindLoop:
			f := n.Stmts[0].(*ir.For)
			out = append(out, &ir.For{
				Var: f.Var, Lo: f.Lo, Hi: f.Hi, Label: f.Label,
				Body: em.emitTimerSeq(n.Children),
			})
		case stg.KindBranch:
			br := n.Stmts[0].(*ir.If)
			out = append(out, &ir.If{
				Cond: br.Cond,
				Then: em.emitTimerSeq(n.Then),
				Else: em.emitTimerSeq(n.Else),
			})
		case stg.KindComm:
			out = append(out, n.Stmts[0])
		}
	}
	return out
}

// resolveStartup rewrites an expression so it is evaluable at program
// start (array declaration time): computed scalars with a unique
// top-level definition are forward-substituted by their defining
// expressions (b -> ceil(N/P)). If unresolvable scalars remain, it falls
// back to the conservative bound of the largest replaced array
// ("allocate the buffer statically or dynamically ... depending on when
// the required message sizes are known", paper §3.1).
func (em *emitter) resolveStartup(e ir.Expr) ir.Expr {
	defs := map[string]ir.Expr{}
	multi := map[string]bool{}
	ir.Walk(em.prog.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Assign); ok && !a.LHS.IsArray() {
			if _, seen := defs[a.LHS.Name]; seen {
				multi[a.LHS.Name] = true
			}
			defs[a.LHS.Name] = a.RHS
		}
		return true
	})
	inputs := map[string]bool{ir.BuiltinP: true, ir.BuiltinMyID: true}
	for _, par := range em.prog.Params {
		inputs[par] = true
	}
	cur := e
	for depth := 0; depth < 10; depth++ {
		unresolved := em.unresolvedScalars(cur, inputs)
		if len(unresolved) == 0 && !ir.HasArrayRef(cur) {
			return ir.Simplify(cur)
		}
		if ir.HasArrayRef(cur) {
			break
		}
		progress := false
		for _, name := range unresolved {
			if rhs, ok := defs[name]; ok && !multi[name] && !ir.HasArrayRef(rhs) {
				cur = ir.SubstScalar(cur, name, rhs)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Fallback: the largest replaced array bounds any section of it.
	var bound ir.Expr
	for _, d := range em.prog.Arrays {
		if !em.slice.DummyArrays[d.Name] {
			continue
		}
		var total ir.Expr = ir.N(1)
		for _, dim := range d.Dims {
			total = ir.Mul(total, dim)
		}
		if bound == nil {
			bound = total
		} else {
			bound = ir.MaxE(bound, total)
		}
	}
	if bound == nil {
		bound = ir.N(1)
	}
	return ir.Simplify(bound)
}

func (em *emitter) unresolvedScalars(e ir.Expr, inputs map[string]bool) []string {
	set := map[string]bool{}
	ir.ScalarsIn(e, set, nil)
	var out []string
	for n := range set {
		if !inputs[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Summary renders a human-readable compilation report.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "compilation of %s\n", r.Original.Name)
	fmt.Fprintf(&sb, "  STG nodes: %d full, %d condensed\n",
		r.FullGraph.NodeCount(), r.Graph.NodeCount())
	fmt.Fprintf(&sb, "  condensed tasks: %d (%s)\n", len(r.TaskVars), strings.Join(r.TaskVars, ", "))
	fmt.Fprintf(&sb, "  relevant variables: %s\n", strings.Join(r.Slice.RelevantSorted(), ", "))
	var kept, dummy []string
	for n := range r.Slice.KeptArrays {
		kept = append(kept, n)
	}
	for n := range r.Slice.DummyArrays {
		dummy = append(dummy, n)
	}
	sort.Strings(kept)
	sort.Strings(dummy)
	fmt.Fprintf(&sb, "  arrays kept: [%s], replaced by dummy buffer: [%s], eliminated: %v\n",
		strings.Join(kept, " "), strings.Join(dummy, " "), r.Slice.EliminatedArrays(r.Original))
	if r.DummyElems != nil {
		fmt.Fprintf(&sb, "  dummy buffer elements: %s\n", r.DummyElems)
	}
	return sb.String()
}

// TaskScales maps every condensed task's w_i parameter name to its
// symbolic scaling function — the abstract-operation count as an
// expression over program inputs, P and myid — rendered in the
// canonical syntax ir.ParseExpr reads back. Recorded traces carry this
// table so weak-scaling extrapolation can rescale per-task delays for
// a different rank count without recompiling the program.
func (r *Result) TaskScales() map[string]string {
	out := map[string]string{}
	var rec func(ns []*stg.Node)
	rec = func(ns []*stg.Node) {
		for _, n := range ns {
			if n.Kind == stg.KindCondensed && n.TaskVar != "" && n.Units != nil {
				out[n.TaskVar] = n.Units.String()
			}
			rec(n.Children)
			rec(n.Then)
			rec(n.Else)
		}
	}
	rec(r.Graph.Roots)
	return out
}

// TaskLine anchors one condensed task to the canonical listing of the
// original program (Program.String), the same coordinates the static
// verifier and the scaling-loss attribution report use.
type TaskLine struct {
	// Task is the w_i time parameter name.
	Task string `json:"task"`
	// Line is the 1-based listing line of the task's first collapsed
	// statement (0 when the task region is empty).
	Line int `json:"line"`
	// Head is the header text of that statement.
	Head string `json:"head"`
}

// TaskLines locates every condensed task in the original program's
// listing, in graph order.
func (r *Result) TaskLines() []TaskLine {
	lines := r.Original.StmtLines()
	var out []TaskLine
	var rec func(ns []*stg.Node)
	rec = func(ns []*stg.Node) {
		for _, n := range ns {
			if n.Kind == stg.KindCondensed && n.TaskVar != "" {
				tl := TaskLine{Task: n.TaskVar}
				if len(n.Stmts) > 0 {
					tl.Line = lines[n.Stmts[0]]
					tl.Head = ir.StmtHead(n.Stmts[0])
				}
				out = append(out, tl)
			}
			rec(n.Children)
			rec(n.Then)
			rec(n.Else)
		}
	}
	rec(r.Graph.Roots)
	return out
}
