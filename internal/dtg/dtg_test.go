package dtg

import (
	"math"
	"strings"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/interp"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// tracedSweep runs a small Sweep3D with tracing: a wavefront gives the
// DAG non-trivial cross-rank structure.
func tracedSweep(t *testing.T) *mpi.Report {
	t.Helper()
	rep, err := interp.Run(apps.Sweep3D(), interp.Config{
		Ranks: 4, Machine: machine.IBMSP(), Comm: mpi.Detailed,
		Inputs:       apps.Sweep3DInputs(4, 4, 16, 8, 2, 2),
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBuildRequiresTrace(t *testing.T) {
	if _, err := Build(&mpi.Report{}); err == nil {
		t.Fatal("expected error for untraced report")
	}
}

func TestGraphStructure(t *testing.T) {
	g, err := Build(tracedSweep(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 || len(g.Edges) == 0 {
		t.Fatal("empty graph")
	}
	// Edges must go forward in node time (the recorded execution is a
	// valid schedule).
	const eps = 1e-12
	for _, e := range g.Edges {
		from, to := g.Nodes[e.From], g.Nodes[e.To]
		if from.End > to.Start+e.Delay+eps && from.Rank != to.Rank {
			t.Fatalf("message edge violates schedule: %+v -> %+v", from, to)
		}
		if from.Rank == to.Rank && from.End > to.Start+eps {
			t.Fatalf("program-order edge backwards: %+v -> %+v", from, to)
		}
	}
	// There must be cross-rank edges (the wavefront).
	cross := 0
	for _, e := range g.Edges {
		if g.Nodes[e.From].Rank != g.Nodes[e.To].Rank {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("no message edges")
	}
}

func TestCriticalPathMatchesSimulation(t *testing.T) {
	rep := tracedSweep(t)
	g, err := Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	cp := g.CriticalPath()
	if cp > rep.Time*(1+1e-9) {
		t.Fatalf("critical path %g exceeds simulated time %g", cp, rep.Time)
	}
	// For this tightly synchronized code the DAG replay should recover
	// most of the simulated time.
	if cp < 0.8*rep.Time {
		t.Fatalf("critical path %g too far below simulated %g", cp, rep.Time)
	}
}

func TestZeroLatencyBound(t *testing.T) {
	g, err := Build(tracedSweep(t))
	if err != nil {
		t.Fatal(err)
	}
	s := g.Summarize()
	if s.ZeroLatency > s.CriticalPath {
		t.Fatalf("zero-latency replay %g exceeds full replay %g", s.ZeroLatency, s.CriticalPath)
	}
	if s.ZeroLatency <= 0 {
		t.Fatal("zero-latency replay is zero")
	}
	// Average parallelism lies in (0, ranks].
	if s.AvgParallelism <= 0 || s.AvgParallelism > 4+1e-9 {
		t.Fatalf("avg parallelism = %g", s.AvgParallelism)
	}
	if !strings.Contains(s.String(), "critical path") {
		t.Fatalf("stats render: %s", s)
	}
}

func TestSingleRankGraph(t *testing.T) {
	rep, err := interp.Run(apps.Tomcatv(), interp.Config{
		Ranks: 1, Machine: machine.IBMSP(), Comm: mpi.Detailed,
		Inputs: apps.TomcatvInputs(32, 1), CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(rep)
	if err != nil {
		t.Fatal(err)
	}
	// A single rank's critical path is its total work.
	if math.Abs(g.CriticalPath()-g.TotalWork()) > 1e-12 {
		t.Fatalf("single-rank CP %g != work %g", g.CriticalPath(), g.TotalWork())
	}
	// Parallelism of a serial run is 1.
	if math.Abs(g.AvgParallelism()-1) > 1e-9 {
		t.Fatalf("avg parallelism = %g", g.AvgParallelism())
	}
}

func TestReplayScalesWithLatency(t *testing.T) {
	g, err := Build(tracedSweep(t))
	if err != nil {
		t.Fatal(err)
	}
	prev := g.Replay(0)
	for _, scale := range []float64{0.5, 1, 2, 4} {
		cur := g.Replay(scale)
		if cur < prev {
			t.Fatalf("replay not monotone in latency scale at %g", scale)
		}
		prev = cur
	}
}
