// Package dtg builds the dynamic task graph of a simulated execution:
// the unrolled DAG of executed task instances and the messages between
// them. The paper's static task graph is "a compact, symbolic
// representation ... independent of specific program input values or the
// number of processors"; the dynamic task graph is its instantiation for
// one run (the paper cites its own companion work on static *and
// dynamic* task graph synthesis [3], and the POEMS environment consumes
// both).
//
// The graph supports classic task-graph analyses: total work, critical
// path, average parallelism, and what-if replays (e.g. an idealized
// zero-latency network), giving bounds that complement the simulator's
// point predictions.
package dtg

import (
	"fmt"
	"sort"

	"mpisim/internal/mpi"
)

// Node is one executed task instance on one rank.
type Node struct {
	ID   int
	Rank int
	Kind mpi.SegKind
	// Start and End are the simulated times of the instance.
	Start, End float64
	// Duration is End-Start (the task's work).
	Duration float64
}

// Edge is a dependence between task instances: either program order on a
// rank (Delay == 0 and same rank) or a message (Delay = network time).
type Edge struct {
	From, To int // node IDs
	// Delay is the time the dependence takes to propagate (message
	// network time; zero for program order).
	Delay float64
}

// Graph is a dynamic task graph.
type Graph struct {
	Nodes []Node
	Edges []Edge
	// SimTime is the simulated end time of the run the graph came from.
	SimTime float64
	// in[v] lists edges into node v (built lazily).
	in [][]int
}

// Build constructs the dynamic task graph from a traced report
// (Config.CollectTrace). Blocked segments become scheduling slack, not
// nodes; every other segment is a task instance chained in rank order,
// and every received message adds an edge from the sender's task that
// issued it to the receiver's first task at or after the completion.
func Build(rep *mpi.Report) (*Graph, error) {
	if rep.Traces == nil {
		return nil, fmt.Errorf("dtg: report has no traces (run with CollectTrace)")
	}
	g := &Graph{SimTime: rep.Time}
	// Per rank: nodes in time order, chained.
	rankNodes := make([][]int, len(rep.Traces))
	for rank, segs := range rep.Traces {
		prev := -1
		for _, s := range segs {
			if s.Kind == mpi.SegBlocked {
				continue
			}
			id := len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{
				ID: id, Rank: rank, Kind: s.Kind,
				Start: s.Start, End: s.End, Duration: s.End - s.Start,
			})
			rankNodes[rank] = append(rankNodes[rank], id)
			if prev >= 0 {
				g.Edges = append(g.Edges, Edge{From: prev, To: id})
			}
			prev = id
		}
	}
	// Message edges.
	for rank, events := range rep.CommEvents {
		for _, e := range events {
			src := lastNodeEndingBy(g, rankNodes[e.From], e.SendTime)
			dst := firstNodeStartingAt(g, rankNodes[rank], e.Complete)
			if src < 0 || dst < 0 {
				continue // boundary sends with no surrounding task
			}
			g.Edges = append(g.Edges, Edge{From: src, To: dst, Delay: e.Arrival - e.SendTime})
		}
	}
	return g, nil
}

// lastNodeEndingBy finds the last node in ids (time ordered) whose end
// is <= t (with slack for float rounding).
func lastNodeEndingBy(g *Graph, ids []int, t float64) int {
	const eps = 1e-12
	i := sort.Search(len(ids), func(i int) bool { return g.Nodes[ids[i]].End > t+eps })
	if i == 0 {
		return -1
	}
	return ids[i-1]
}

// firstNodeStartingAt finds the first node in ids whose start is >= t
// (with slack).
func firstNodeStartingAt(g *Graph, ids []int, t float64) int {
	const eps = 1e-12
	i := sort.Search(len(ids), func(i int) bool { return g.Nodes[ids[i]].Start >= t-eps })
	if i == len(ids) {
		return -1
	}
	return ids[i]
}

// TotalWork sums all task durations: the serial execution time of the
// computation and communication CPU work.
func (g *Graph) TotalWork() float64 {
	total := 0.0
	for _, n := range g.Nodes {
		total += n.Duration
	}
	return total
}

// incoming builds the reverse adjacency index.
func (g *Graph) incoming() [][]int {
	if g.in == nil {
		g.in = make([][]int, len(g.Nodes))
		for ei, e := range g.Edges {
			g.in[e.To] = append(g.in[e.To], ei)
		}
	}
	return g.in
}

// Replay recomputes every node's finish time honoring the dependence
// structure, with message delays scaled by latencyScale (1 = as
// simulated, 0 = idealized zero-latency network). It returns the
// resulting makespan. Nodes are processed in start-time order, which is
// a valid topological order of the recorded execution.
func (g *Graph) Replay(latencyScale float64) float64 {
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := g.Nodes[order[a]], g.Nodes[order[b]]
		if na.Start != nb.Start {
			return na.Start < nb.Start
		}
		return na.ID < nb.ID
	})
	in := g.incoming()
	finish := make([]float64, len(g.Nodes))
	makespan := 0.0
	for _, v := range order {
		ready := 0.0
		for _, ei := range in[v] {
			e := g.Edges[ei]
			if t := finish[e.From] + e.Delay*latencyScale; t > ready {
				ready = t
			}
		}
		finish[v] = ready + g.Nodes[v].Duration
		if finish[v] > makespan {
			makespan = finish[v]
		}
	}
	return makespan
}

// CriticalPath returns the dependence-respecting makespan with message
// delays as simulated. It is a lower bound on (and for well-formed
// traces very close to) the simulated execution time: the difference is
// scheduling slack the simulation observed but the DAG does not force.
func (g *Graph) CriticalPath() float64 { return g.Replay(1) }

// AvgParallelism is total work divided by the critical path: the classic
// task-graph parallelism metric.
func (g *Graph) AvgParallelism() float64 {
	cp := g.CriticalPath()
	if cp == 0 {
		return 0
	}
	return g.TotalWork() / cp
}

// Stats summarizes the graph.
type Stats struct {
	Nodes, Edges   int
	TotalWork      float64
	CriticalPath   float64
	AvgParallelism float64
	// ZeroLatency is the replayed makespan on an idealized network.
	ZeroLatency float64
	// SimTime is the simulated execution time for reference.
	SimTime float64
}

// Summarize computes all graph statistics.
func (g *Graph) Summarize() Stats {
	return Stats{
		Nodes:          len(g.Nodes),
		Edges:          len(g.Edges),
		TotalWork:      g.TotalWork(),
		CriticalPath:   g.CriticalPath(),
		AvgParallelism: g.AvgParallelism(),
		ZeroLatency:    g.Replay(0),
		SimTime:        g.SimTime,
	}
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf(
		"dynamic task graph: %d tasks, %d edges\n"+
			"  total work        %.6gs\n"+
			"  critical path     %.6gs (simulated %.6gs)\n"+
			"  avg parallelism   %.2f\n"+
			"  zero-latency net  %.6gs",
		s.Nodes, s.Edges, s.TotalWork, s.CriticalPath, s.SimTime,
		s.AvgParallelism, s.ZeroLatency)
}
