package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testRegistry() *Registry {
	reg := NewRegistry(1)
	reg.SetEnabled(true)
	reg.Counter("demo_total", "a demo counter").Add(0, 42)
	return reg
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHandlerRootJSON(t *testing.T) {
	rec := get(t, Handler(testRegistry()), "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	var body struct {
		Metrics []Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Metrics) != 1 || body.Metrics[0].Name != "demo_total" || body.Metrics[0].Value != 42 {
		t.Fatalf("metrics = %+v", body.Metrics)
	}
}

func TestHandlerText(t *testing.T) {
	rec := get(t, Handler(testRegistry()), "/text")
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("content-type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "demo_total") {
		t.Fatalf("text output missing metric:\n%s", rec.Body.String())
	}
}

func TestHandlerUnknownPath404(t *testing.T) {
	if rec := get(t, Handler(testRegistry()), "/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}

func TestHandlerNonGET405(t *testing.T) {
	h := HandlerWith(testRegistry(), HandlerOpts{
		Timeline: NewTimeline(nil, TimelineOptions{}),
		Run:      NewRunInfo(),
	})
	for _, path := range []string{"/", "/text", "/series", "/run", "/healthz", "/events"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader("x")))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d, want 405", path, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != "GET" {
			t.Fatalf("POST %s: Allow %q, want GET", path, allow)
		}
	}
}

func TestHandlerTelemetryEndpointsAbsentBackings404(t *testing.T) {
	h := Handler(testRegistry())
	for _, path := range []string{"/series", "/run", "/events"} {
		if rec := get(t, h, path); rec.Code != http.StatusNotFound {
			t.Fatalf("GET %s without backing: status %d, want 404", path, rec.Code)
		}
	}
	// /healthz works even without a RunInfo.
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}
}

func TestHandlerSeriesSince(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryEvents: 1})
	tl.SetEnabled(true)
	for i := 1; i <= 3; i++ {
		tl.Sample(Vitals{Virtual: float64(i), Events: int64(i * 10)})
	}
	h := HandlerWith(testRegistry(), HandlerOpts{Timeline: tl})

	var body struct {
		Points []TimePoint `json:"points"`
		Next   int64       `json:"next"`
	}
	rec := get(t, h, "/series?since=0")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Points) != 3 || body.Next != 3 {
		t.Fatalf("since=0: %d points next %d", len(body.Points), body.Next)
	}

	rec = get(t, h, "/series?since=2")
	body.Points = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Points) != 1 || body.Points[0].Seq != 3 {
		t.Fatalf("since=2 returned %+v, want only seq 3", body.Points)
	}

	if rec := get(t, h, "/series?since=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d, want 400", rec.Code)
	}
}

func TestHandlerRun(t *testing.T) {
	ri := NewRunInfo()
	ri.SetHorizon(10, 0)
	ri.SetState(RunRunning)
	ri.Heartbeat(5, 100)
	rec := get(t, HandlerWith(testRegistry(), HandlerOpts{Run: ri}), "/run")
	var st RunStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if st.State != RunRunning || st.Percent != 0.5 {
		t.Fatalf("run status = %+v", st)
	}
}

func TestHandlerHealthz(t *testing.T) {
	ri := NewRunInfo()
	ri.SetState(RunRunning)
	ri.Heartbeat(1, 10)
	h := HandlerWith(testRegistry(), HandlerOpts{Run: ri})
	rec := get(t, h, "/healthz")
	var health struct {
		Status         string `json:"status"`
		State          string `json:"state"`
		HeartbeatAgeNs int64  `json:"heartbeat_age_ns"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rec.Code != http.StatusOK || health.Status != "ok" || health.State != "running" {
		t.Fatalf("healthz = %d %+v", rec.Code, health)
	}
	if health.HeartbeatAgeNs < 0 {
		t.Fatalf("heartbeat age %d, want >= 0 after a beat", health.HeartbeatAgeNs)
	}

	// A running simulation with an ancient heartbeat reports stalled.
	stale := HandlerWith(testRegistry(), HandlerOpts{Run: ri, StaleAfter: time.Nanosecond})
	time.Sleep(2 * time.Millisecond)
	rec = get(t, stale, "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rec.Code != http.StatusServiceUnavailable || health.Status != "stalled" {
		t.Fatalf("stale healthz = %d %+v, want 503 stalled", rec.Code, health)
	}
}

func TestHandlerEventsStreamsDeltas(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryEvents: 1})
	tl.SetEnabled(true)
	tl.Sample(Vitals{Virtual: 1, Events: 10})

	srv := httptest.NewServer(HandlerWith(testRegistry(), HandlerOpts{Timeline: tl}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}

	type frame struct {
		point TimePoint
		err   error
	}
	frames := make(chan frame, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var p TimePoint
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
				frames <- frame{err: err}
				return
			}
			frames <- frame{point: p}
		}
	}()

	// The pre-existing point arrives immediately; a point captured after
	// the subscription arrives as a delta.
	want := func(seq int64) {
		t.Helper()
		select {
		case f := <-frames:
			if f.err != nil {
				t.Fatalf("bad SSE frame: %v", f.err)
			}
			if f.point.Seq != seq {
				t.Fatalf("got seq %d, want %d", f.point.Seq, seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for SSE frame seq %d", seq)
		}
	}
	want(1)
	tl.Sample(Vitals{Virtual: 2, Events: 20})
	want(2)
}
