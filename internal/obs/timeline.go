package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Timeline is a lock-light ring buffer of time-series snapshots of a
// running simulation: run vitals (virtual time, committed events,
// window count, wall-ns per virtual second) plus the merged value of
// every registered counter and gauge. Kernel workers offer vitals from
// their existing sample points (every obsSampleEvery events, see
// internal/sim); the timeline decides — with a few atomic loads and no
// lock — whether the configured cadence has elapsed, so the per-offer
// cost is negligible and a disabled timeline costs the kernel exactly
// one nil check. Snapshots are strictly out of band: nothing read or
// written here feeds back into simulation state, so results stay
// byte-identical with the timeline off, disabled, or armed.
//
// Readers (the /series and /events HTTP endpoints) page through the
// ring with Since, using each point's monotonically increasing Seq as
// the cursor, and block for new points on the channel returned by Wait.
type Timeline struct {
	reg *Registry
	cap int

	everyVirtual float64 // minimum virtual-time advance between points
	everyEvents  int64   // minimum committed-event advance between points

	enabled atomic.Bool

	// Last-captured vitals, readable without the lock for the cadence
	// fast path. lastVirtBits holds math.Float64bits of the virtual time.
	lastVirtBits atomic.Uint64
	lastEvents   atomic.Int64

	mu    sync.Mutex
	start time.Time
	ring  []TimePoint
	n     int   // points currently in the ring
	next  int   // ring index of the next write
	seq   int64 // last assigned sequence number
	wake  chan struct{}
}

// TimelineOptions configures a Timeline. The zero value gets a
// capacity of 1024 points and an event cadence of 262144 committed
// events (coarse enough that capture cost is unmeasurable, fine enough
// to chart multi-second runs).
type TimelineOptions struct {
	// Capacity is the ring size: the newest Capacity points are kept.
	Capacity int
	// EveryVirtual samples whenever virtual time has advanced by at
	// least this amount since the last point.
	EveryVirtual float64
	// EveryEvents samples whenever at least this many events have been
	// committed since the last point. Either cadence firing captures a
	// point; a zero field never fires.
	EveryEvents int64
}

// Vitals is the run-vital tuple a kernel worker offers at a sample
// point.
type Vitals struct {
	Virtual           float64
	Events            int64
	Windows           int64
	WallNsPerVirtualS float64
}

// TimePoint is one captured snapshot.
type TimePoint struct {
	// Seq increases by one per captured point; /series?since= cursors
	// and SSE deltas key on it.
	Seq int64 `json:"seq"`
	// WallNs is wall time since the timeline was created.
	WallNs int64 `json:"wall_ns"`
	// Virtual is the offering worker's virtual time.
	Virtual float64 `json:"virtual"`
	// Events is the merged committed-event count.
	Events int64 `json:"events"`
	// Windows is the number of conservative windows executed so far.
	Windows int64 `json:"windows"`
	// WallNsPerVirtualS is the sampled simulation rate (0 if unknown).
	WallNsPerVirtualS float64 `json:"wall_ns_per_virtual_s,omitempty"`
	// Metrics holds the merged value of every registered counter and
	// gauge (histograms report their sample count), keyed by metric
	// name. Nil when the timeline has no registry.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewTimeline returns a timeline capturing from reg (which may be nil:
// points then carry vitals only). The timeline starts disabled; call
// SetEnabled(true) to arm it.
func NewTimeline(reg *Registry, opts TimelineOptions) *Timeline {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.EveryVirtual <= 0 && opts.EveryEvents <= 0 {
		opts.EveryEvents = 262144
	}
	return &Timeline{
		reg:          reg,
		cap:          opts.Capacity,
		everyVirtual: opts.EveryVirtual,
		everyEvents:  opts.EveryEvents,
		start:        time.Now(), //simvet:allow wallclock timeline epoch; never feeds virtual time
		ring:         make([]TimePoint, opts.Capacity),
		wake:         make(chan struct{}),
	}
}

// SetEnabled arms or disarms capture. A disabled timeline is dropped by
// the kernel at setup, reducing its hot-path cost to the shared nil
// check.
func (t *Timeline) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether the timeline captures offered vitals.
func (t *Timeline) Enabled() bool { return t.enabled.Load() }

// Offer captures a point if the timeline is enabled and a cadence has
// elapsed since the last point. The common path (cadence not reached)
// is three atomic loads; when a capture is due, contending offerers
// skip rather than queue (TryLock), so workers never serialize here.
func (t *Timeline) Offer(v Vitals) {
	if !t.enabled.Load() {
		return
	}
	due := false
	if t.everyVirtual > 0 &&
		v.Virtual-math.Float64frombits(t.lastVirtBits.Load()) >= t.everyVirtual {
		due = true
	}
	if !due && t.everyEvents > 0 && v.Events-t.lastEvents.Load() >= t.everyEvents {
		due = true
	}
	if !due {
		return
	}
	if !t.mu.TryLock() {
		return
	}
	defer t.mu.Unlock()
	// Re-check under the lock: another offerer may have just captured.
	if t.everyVirtual <= 0 || v.Virtual-math.Float64frombits(t.lastVirtBits.Load()) < t.everyVirtual {
		if t.everyEvents <= 0 || v.Events-t.lastEvents.Load() < t.everyEvents {
			return
		}
	}
	t.capture(v)
}

// Sample captures a point unconditionally (if enabled), waiting for the
// lock. The kernel calls it once at run end so even a short run yields
// at least one point and /events subscribers see a final delta.
func (t *Timeline) Sample(v Vitals) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.capture(v)
}

// capture appends a point. Caller holds t.mu.
func (t *Timeline) capture(v Vitals) {
	t.seq++
	p := TimePoint{
		Seq:               t.seq,
		WallNs:            time.Since(t.start).Nanoseconds(), //simvet:allow wallclock snapshot timestamp; never feeds virtual time
		Virtual:           v.Virtual,
		Events:            v.Events,
		Windows:           v.Windows,
		WallNsPerVirtualS: v.WallNsPerVirtualS,
	}
	if t.reg != nil {
		snaps := t.reg.Snapshot()
		p.Metrics = make(map[string]float64, len(snaps))
		for _, s := range snaps {
			p.Metrics[s.Name] = s.Value
		}
	}
	t.ring[t.next] = p
	t.next = (t.next + 1) % t.cap
	if t.n < t.cap {
		t.n++
	}
	t.lastVirtBits.Store(math.Float64bits(v.Virtual))
	t.lastEvents.Store(v.Events)
	close(t.wake)
	t.wake = make(chan struct{})
}

// Since returns, oldest first, every retained point with Seq > since,
// plus the newest sequence number (the cursor for the next call; equal
// to since when nothing new arrived).
func (t *Timeline) Since(since int64) ([]TimePoint, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TimePoint
	for i := 0; i < t.n; i++ {
		p := t.ring[(t.next-t.n+i+t.cap)%t.cap]
		if p.Seq > since {
			out = append(out, p)
		}
	}
	cursor := since
	if t.seq > cursor {
		cursor = t.seq
	}
	return out, cursor
}

// Latest returns the newest point, if any.
func (t *Timeline) Latest() (TimePoint, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return TimePoint{}, false
	}
	return t.ring[(t.next-1+t.cap)%t.cap], true
}

// Wait returns a channel closed when the next point is captured.
// Grab it before calling Since to avoid missing a point between the
// read and the wait.
func (t *Timeline) Wait() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wake
}
