package obs

import (
	"strings"
	"testing"
)

func TestRunInfoLifecycle(t *testing.T) {
	ri := NewRunInfo()
	if ri.State() != RunPending {
		t.Fatalf("initial state %q, want pending", ri.State())
	}
	ri.SetState(RunCompiling)
	ri.SetState(RunCalibrating)
	ri.SetState(RunRunning)
	st := ri.Status()
	if st.State != RunRunning {
		t.Fatalf("state %q, want running", st.State)
	}
	if st.ElapsedNs < 0 {
		t.Fatalf("elapsed %d < 0", st.ElapsedNs)
	}
	if st.HeartbeatAgeNs != -1 {
		t.Fatalf("heartbeat age %d before any beat, want -1", st.HeartbeatAgeNs)
	}
	ri.Finish(RunDone, 4.2, "")
	st = ri.Status()
	if st.State != RunDone || st.Percent != 1 || st.ETANs != 0 {
		t.Fatalf("done status = %+v", st)
	}
	if st.Virtual != 4.2 {
		t.Fatalf("final virtual %g, want 4.2", st.Virtual)
	}
}

func TestRunInfoPercentFromVirtualHorizon(t *testing.T) {
	ri := NewRunInfo()
	ri.SetHorizon(10, 1000)
	ri.SetState(RunRunning)
	ri.Heartbeat(2.5, 100)
	st := ri.Status()
	if st.Percent != 0.25 {
		t.Fatalf("percent %g, want 0.25 (virtual horizon wins)", st.Percent)
	}
	if st.ETANs <= 0 {
		t.Fatalf("eta %d, want > 0 while running with progress", st.ETANs)
	}
	if st.HeartbeatAgeNs < 0 {
		t.Fatalf("heartbeat age %d after a beat", st.HeartbeatAgeNs)
	}
}

func TestRunInfoPercentFallsBackToEventBudget(t *testing.T) {
	ri := NewRunInfo()
	ri.SetHorizon(0, 1000)
	ri.SetState(RunRunning)
	ri.Heartbeat(1, 400)
	if p := ri.Status().Percent; p != 0.4 {
		t.Fatalf("percent %g, want 0.4 from event budget", p)
	}
	// Progress beyond the budget clamps rather than exceeding 100%.
	ri.Heartbeat(2, 5000)
	if p := ri.Status().Percent; p != 1 {
		t.Fatalf("percent %g, want clamp to 1", p)
	}
}

func TestRunInfoNoHorizonMeansUnknown(t *testing.T) {
	ri := NewRunInfo()
	ri.SetState(RunRunning)
	ri.Heartbeat(3, 300)
	st := ri.Status()
	if st.Percent != -1 || st.ETANs != -1 {
		t.Fatalf("percent %g eta %d, want -1/-1 with no horizon", st.Percent, st.ETANs)
	}
}

func TestRunInfoZeroHorizonFieldsDoNotOverwrite(t *testing.T) {
	ri := NewRunInfo()
	ri.SetHorizon(7, 0)
	ri.SetHorizon(0, 500)
	st := ri.Status()
	if st.HorizonVirtual != 7 || st.HorizonEvents != 500 {
		t.Fatalf("horizons %g/%d, want 7/500", st.HorizonVirtual, st.HorizonEvents)
	}
}

func TestRunInfoAbort(t *testing.T) {
	ri := NewRunInfo()
	ri.SetState(RunRunning)
	ri.Finish(RunAborted, 1.5, "event budget exceeded")
	st := ri.Status()
	if st.State != RunAborted || st.AbortReason != "event budget exceeded" {
		t.Fatalf("abort status = %+v", st)
	}
	if st.ETANs != -1 {
		t.Fatalf("aborted run has eta %d, want -1", st.ETANs)
	}
}

func TestRunInfoWriteJSON(t *testing.T) {
	ri := NewRunInfo()
	ri.SetState(RunRunning)
	var b strings.Builder
	if err := ri.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"state": "running"`, `"percent"`, `"eta_ns"`, `"heartbeat_age_ns"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}
