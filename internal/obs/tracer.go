package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// The tracer's track identifiers. Trace consumers (Perfetto,
// chrome://tracing) group tracks by process then thread; the two
// observability planes map onto two synthetic processes sharing the
// virtual-time axis:
//
//	pid PlaneSimulated — the predicted target execution; tid = rank.
//	pid PlaneSimulator — the simulator's own behaviour;  tid = worker.
const (
	PlaneSimulated = 1
	PlaneSimulator = 2
)

// Phase discriminates trace event kinds, mirroring the Chrome
// trace_event phases the sinks serialize.
type Phase byte

// Trace event phases.
const (
	PhaseSpan       Phase = 'X' // complete span: ts + dur
	PhaseInstant    Phase = 'i' // point event
	PhaseCounter    Phase = 'C' // counter sample (one track per arg key)
	PhaseFlowStart  Phase = 's' // start of a flow arrow (message edge)
	PhaseFlowEnd    Phase = 'f' // end of a flow arrow
	PhaseAsyncBegin Phase = 'b' // async (non-nested) span begin
	PhaseAsyncEnd   Phase = 'e' // async span end
	PhaseMeta       Phase = 'M' // metadata: process/thread names
)

// Arg is one key/value annotation on a trace event. Exactly one of
// Str/Num is meaningful, selected by IsNum.
type Arg struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Num builds a numeric argument.
func Num(key string, v float64) Arg { return Arg{Key: key, Num: v, IsNum: true} }

// Str builds a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v} }

// Event is one structured trace record handed to a Sink. Times are in
// seconds on the virtual (simulated) axis unless the emitting site says
// otherwise; sinks convert units.
type Event struct {
	Phase Phase
	Pid   int
	Tid   int
	Cat   string
	Name  string
	Ts    float64 // seconds
	Dur   float64 // seconds, spans only
	ID    uint64  // flow/async correlation id
	Args  []Arg
}

// Sink consumes trace events. Implementations need not be goroutine
// safe; the Tracer serializes calls.
type Sink interface {
	Event(e *Event) error
	Close() error
}

// Tracer serializes trace events into a sink, guarded by an atomic
// enabled flag so instrumented code can skip event construction
// entirely when tracing is off. The first sink error latches and stops
// further emission.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	sink    Sink
	err     error
}

// NewTracer returns an enabled tracer writing to sink.
func NewTracer(sink Sink) *Tracer {
	t := &Tracer{sink: sink}
	t.enabled.Store(true)
	return t
}

// Enabled reports whether events are currently recorded. Instrumented
// hot paths must check it before building events.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetEnabled switches tracing on or off.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Err returns the first sink error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes and closes the sink. The tracer is disabled first so
// concurrent emitters quiesce.
func (t *Tracer) Close() error {
	t.enabled.Store(false)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return t.err
	}
	err := t.sink.Close()
	t.sink = nil
	if t.err == nil {
		t.err = err
	}
	return t.err
}

// Emit hands one event to the sink. Safe for concurrent use.
func (t *Tracer) Emit(e *Event) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.sink == nil {
		return
	}
	if err := t.sink.Event(e); err != nil {
		t.err = err
	}
}

// Meta names a process (tid < 0) or thread track.
func (t *Tracer) Meta(pid, tid int, name string) {
	e := Event{Phase: PhaseMeta, Pid: pid, Tid: tid, Name: "thread_name",
		Args: []Arg{Str("name", name)}}
	if tid < 0 {
		e.Tid = 0
		e.Name = "process_name"
	}
	t.Emit(&e)
}

// Span records a complete [start, start+dur) span.
func (t *Tracer) Span(pid, tid int, cat, name string, start, dur float64, args ...Arg) {
	t.Emit(&Event{Phase: PhaseSpan, Pid: pid, Tid: tid, Cat: cat, Name: name,
		Ts: start, Dur: dur, Args: args})
}

// Instant records a point event.
func (t *Tracer) Instant(pid, tid int, cat, name string, ts float64, args ...Arg) {
	t.Emit(&Event{Phase: PhaseInstant, Pid: pid, Tid: tid, Cat: cat, Name: name,
		Ts: ts, Args: args})
}

// Counter records a counter sample; each numeric arg becomes a series
// on the counter track.
func (t *Tracer) Counter(pid, tid int, name string, ts float64, args ...Arg) {
	t.Emit(&Event{Phase: PhaseCounter, Pid: pid, Tid: tid, Name: name,
		Ts: ts, Args: args})
}

// Flow records a message edge: a flow arrow from (srcTid, sendTs) to
// (dstTid, recvTs) within pid, annotated with args on both ends.
func (t *Tracer) Flow(pid int, id uint64, cat, name string,
	srcTid int, sendTs float64, dstTid int, recvTs float64, args ...Arg) {
	t.Emit(&Event{Phase: PhaseFlowStart, Pid: pid, Tid: srcTid, Cat: cat,
		Name: name, Ts: sendTs, ID: id, Args: args})
	t.Emit(&Event{Phase: PhaseFlowEnd, Pid: pid, Tid: dstTid, Cat: cat,
		Name: name, Ts: recvTs, ID: id, Args: args})
}

// Async records a non-nested span as a begin/end pair correlated by id;
// trace viewers render async spans on their own sub-tracks, so phases
// that straddle ordinary spans (collectives) stay legible.
func (t *Tracer) Async(pid, tid int, id uint64, cat, name string, start, end float64, args ...Arg) {
	t.Emit(&Event{Phase: PhaseAsyncBegin, Pid: pid, Tid: tid, Cat: cat,
		Name: name, Ts: start, ID: id, Args: args})
	t.Emit(&Event{Phase: PhaseAsyncEnd, Pid: pid, Tid: tid, Cat: cat,
		Name: name, Ts: end, ID: id})
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshalling a string cannot fail; keep the sink total anyway.
		return `"?"`
	}
	return string(b)
}

// jsonFloat renders v compactly with full round-trip precision.
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeArgs renders the args object with stable (emission) ordering.
func writeArgs(w io.Writer, args []Arg) error {
	if _, err := io.WriteString(w, `"args":{`); err != nil {
		return err
	}
	for i, a := range args {
		sep := ""
		if i > 0 {
			sep = ","
		}
		var val string
		if a.IsNum {
			val = jsonFloat(a.Num)
		} else {
			val = jsonString(a.Str)
		}
		if _, err := fmt.Fprintf(w, "%s%s:%s", sep, jsonString(a.Key), val); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// ChromeSink streams Chrome trace_event JSON (the "JSON Array Format"):
// a single array of event objects, loadable by Perfetto and
// chrome://tracing. Timestamps convert to microseconds as the format
// requires. Field order is fixed, so output is deterministic for a
// deterministic event sequence.
type ChromeSink struct {
	w     io.Writer
	wrote bool
	done  bool
}

// NewChromeSink returns a sink writing the JSON array to w.
func NewChromeSink(w io.Writer) *ChromeSink { return &ChromeSink{w: w} }

// Event implements Sink.
func (s *ChromeSink) Event(e *Event) error {
	lead := "[\n"
	if s.wrote {
		lead = ",\n"
	}
	s.wrote = true
	if _, err := io.WriteString(s.w, lead+"{"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, `"name":%s,"ph":%s,"pid":%d,"tid":%d`,
		jsonString(e.Name), jsonString(string(rune(e.Phase))), e.Pid, e.Tid); err != nil {
		return err
	}
	if e.Cat != "" {
		if _, err := fmt.Fprintf(s.w, `,"cat":%s`, jsonString(e.Cat)); err != nil {
			return err
		}
	}
	if e.Phase != PhaseMeta {
		if _, err := fmt.Fprintf(s.w, `,"ts":%s`, jsonFloat(e.Ts*1e6)); err != nil {
			return err
		}
	}
	if e.Phase == PhaseSpan {
		if _, err := fmt.Fprintf(s.w, `,"dur":%s`, jsonFloat(e.Dur*1e6)); err != nil {
			return err
		}
	}
	if e.Phase == PhaseInstant {
		if _, err := io.WriteString(s.w, `,"s":"t"`); err != nil {
			return err
		}
	}
	switch e.Phase {
	case PhaseFlowStart, PhaseFlowEnd, PhaseAsyncBegin, PhaseAsyncEnd:
		if _, err := fmt.Fprintf(s.w, `,"id":"0x%x"`, e.ID); err != nil {
			return err
		}
	}
	if e.Phase == PhaseFlowEnd {
		// Bind the arrow head to the enclosing slice, the convention
		// trace viewers expect for flow termination.
		if _, err := io.WriteString(s.w, `,"bp":"e"`); err != nil {
			return err
		}
	}
	if len(e.Args) > 0 {
		if _, err := io.WriteString(s.w, ","); err != nil {
			return err
		}
		if err := writeArgs(s.w, e.Args); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.w, "}")
	return err
}

// Close terminates the JSON array.
func (s *ChromeSink) Close() error {
	if s.done {
		return nil
	}
	s.done = true
	if !s.wrote {
		_, err := io.WriteString(s.w, "[]\n")
		return err
	}
	_, err := io.WriteString(s.w, "\n]\n")
	return err
}

// phaseType names each phase for the JSONL stream.
func phaseType(p Phase) string {
	switch p {
	case PhaseSpan:
		return "span"
	case PhaseInstant:
		return "instant"
	case PhaseCounter:
		return "counter"
	case PhaseFlowStart:
		return "flow_start"
	case PhaseFlowEnd:
		return "flow_end"
	case PhaseAsyncBegin:
		return "phase_begin"
	case PhaseAsyncEnd:
		return "phase_end"
	case PhaseMeta:
		return "meta"
	}
	return "unknown"
}

// JSONLSink streams one self-describing JSON object per line: a compact
// machine-readable form for downstream analysis (jq, dataframes).
// Timestamps stay in seconds. Field order is fixed.
type JSONLSink struct {
	w io.Writer
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Event implements Sink.
func (s *JSONLSink) Event(e *Event) error {
	if _, err := fmt.Fprintf(s.w, `{"type":%s,"pid":%d,"tid":%d`,
		jsonString(phaseType(e.Phase)), e.Pid, e.Tid); err != nil {
		return err
	}
	if e.Name != "" {
		if _, err := fmt.Fprintf(s.w, `,"name":%s`, jsonString(e.Name)); err != nil {
			return err
		}
	}
	if e.Cat != "" {
		if _, err := fmt.Fprintf(s.w, `,"cat":%s`, jsonString(e.Cat)); err != nil {
			return err
		}
	}
	if e.Phase != PhaseMeta {
		if _, err := fmt.Fprintf(s.w, `,"t":%s`, jsonFloat(e.Ts)); err != nil {
			return err
		}
	}
	if e.Phase == PhaseSpan {
		if _, err := fmt.Fprintf(s.w, `,"dur":%s`, jsonFloat(e.Dur)); err != nil {
			return err
		}
	}
	switch e.Phase {
	case PhaseFlowStart, PhaseFlowEnd, PhaseAsyncBegin, PhaseAsyncEnd:
		if _, err := fmt.Fprintf(s.w, `,"id":%d`, e.ID); err != nil {
			return err
		}
	}
	if len(e.Args) > 0 {
		if _, err := io.WriteString(s.w, ","); err != nil {
			return err
		}
		if err := writeArgs(s.w, e.Args); err != nil {
			return err
		}
	}
	_, err := io.WriteString(s.w, "}\n")
	return err
}

// Close implements Sink; the stream needs no terminator.
func (s *JSONLSink) Close() error { return nil }
