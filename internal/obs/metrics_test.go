package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardsMerge(t *testing.T) {
	r := NewRegistry(4)
	r.SetEnabled(true)
	c := r.Counter("events_total", "processed events")
	for shard := 0; shard < 4; shard++ {
		for i := 0; i < 10; i++ {
			c.Add(shard, int64(shard+1))
		}
	}
	if got, want := c.Value(), int64(10*(1+2+3+4)); got != want {
		t.Fatalf("Value = %d, want %d", got, want)
	}
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := NewRegistry(1)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10})
	c.Inc(0)
	g.Set(0, 7)
	h.Observe(0, 3)
	if c.Value() != 0 || g.Sum() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded updates: c=%d g=%d h=%d",
			c.Value(), g.Sum(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc(0)
	if c.Value() != 1 {
		t.Fatalf("enabled counter = %d, want 1", c.Value())
	}
}

func TestGaugeSumMax(t *testing.T) {
	r := NewRegistry(4)
	r.SetEnabled(true)
	g := r.Gauge("depth", "")
	g.Set(0, 5)
	g.Set(1, 11)
	g.Set(2, 3)
	if g.Sum() != 19 {
		t.Fatalf("Sum = %d, want 19", g.Sum())
	}
	if g.Max() != 11 {
		t.Fatalf("Max = %d, want 11", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	h := r.Histogram("scan", "", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 4, 5, 100} {
		h.Observe(0, v)
	}
	h.Observe(1, 17)
	s := h.snapshot()
	wantCounts := []int64{2, 2, 1, 2} // le1, le4, le16, +Inf
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if want := 0.0 + 1 + 2 + 4 + 5 + 100 + 17; s.Sum != want {
		t.Fatalf("Sum = %g, want %g", s.Sum, want)
	}
	if !math.IsInf(s.Buckets[3].Upper, 1) {
		t.Fatalf("last bucket upper = %g, want +Inf", s.Buckets[3].Upper)
	}
}

func TestShardMaskWraps(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	c := r.Counter("c", "")
	c.Add(17, 3) // 17 & 1 == 1: must not panic, must count
	if c.Value() != 3 {
		t.Fatalf("Value = %d, want 3", c.Value())
	}
}

func TestReregistrationIsIdempotent(t *testing.T) {
	r := NewRegistry(1)
	r.SetEnabled(true)
	c := r.Counter("x", "")
	c.Inc(0)
	// Same name + kind hands back the same handle, so repeated kernel
	// runs can share one registry across an experiment sweep.
	if c2 := r.Counter("x", ""); c2 != c {
		t.Fatal("re-registering a counter returned a new handle")
	}
	if c.Value() != 1 {
		t.Fatalf("counter = %d after re-registration, want 1", c.Value())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind-conflicting registration did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestConcurrentUpdates exercises every metric kind from concurrent
// worker goroutines (one per shard, the kernel's discipline) while a
// reader snapshots, under the race detector in CI.
func TestConcurrentUpdates(t *testing.T) {
	const workers = 8
	const iters = 2000
	r := NewRegistry(workers)
	r.SetEnabled(true)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100, 1000})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc(w)
				g.Set(w, int64(i))
				h.Observe(w, float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = c.Value()
			_ = h.Sum()
		}
	}()
	wg.Wait()
	<-done
	if got, want := c.Value(), int64(workers*iters); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got, want := h.Count(), int64(workers*iters); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

func TestSnapshotJSONValidAndSorted(t *testing.T) {
	r := NewRegistry(2)
	r.SetEnabled(true)
	r.Counter("zz", "last").Inc(0)
	r.Gauge("aa", "first").Set(0, 4)
	r.Histogram("mm", "middle", []float64{1})
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("WriteJSON produced invalid JSON:\n%s", sb.String())
	}
	snaps := r.Snapshot()
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Name > snaps[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snaps[i-1].Name, snaps[i].Name)
		}
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	r := NewRegistry(1)
	c := r.Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(0)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	r := NewRegistry(1)
	r.SetEnabled(true)
	c := r.Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(0)
	}
}
