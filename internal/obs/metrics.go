// Package obs is the simulator's observability substrate: a metrics
// registry whose update path is allocation-free and shard-per-worker
// (the same single-writer discipline as the kernel's object pools), and
// a structured event tracer with pluggable sinks (Chrome trace_event
// JSON for Perfetto/chrome://tracing, and a compact JSONL stream).
//
// Two planes are observed through it:
//
//   - the *simulated* execution: per-rank activity spans, message edges
//     and collective phases, exported post-run from an mpi.Report by
//     internal/trace;
//   - the *simulator's own* execution: event-queue depth, pool hit/miss,
//     mailbox scan lengths, wake batching and wallclock-per-virtual-
//     second, emitted live by the sim kernel.
//
// The package depends only on the standard library and is imported by
// the kernel, so it must never import sim, mpi or trace.
//
// Cost discipline: every metric handle checks one atomic enabled flag
// and then performs one uncontended atomic add on a cache-line-padded
// per-worker shard. With the registry disabled (or absent) the
// instrumented hot paths reduce to a nil check; BenchmarkKernelObs*
// (internal/sim) holds this within noise of the uninstrumented kernel.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// shard is one cache-line-padded accumulator cell. 64-bit payload plus
// padding to 64 bytes so neighbouring workers never share a line.
type shard struct {
	v int64
	_ [56]byte
}

// Registry holds named metrics. Metric handles are created up front
// (Counter/Gauge/Histogram) and updated from hot paths; creation takes a
// lock, updates never do.
type Registry struct {
	enabled atomic.Bool
	shards  int
	mask    int

	mu     sync.Mutex
	order  []metric
	byName map[string]metric
}

// metric is the common interface of the three metric kinds.
type metric interface {
	name() string
	help() string
	snapshot() Snapshot
}

// NewRegistry returns a registry with at least the given number of
// update shards (rounded up to a power of two, minimum 1). Pass the
// number of host workers; shard indices larger than the shard count
// wrap, which is safe but contended.
func NewRegistry(shards int) *Registry {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Registry{
		shards: n,
		mask:   n - 1,
		byName: map[string]metric{},
	}
}

// Shards returns the shard count (a power of two).
func (r *Registry) Shards() int { return r.shards }

// SetEnabled switches metric collection on or off. The flag is atomic:
// updates racing with the switch are either counted or not, never torn.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether updates are currently recorded.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// lookup returns the existing metric under name, after checking that a
// repeated registration asks for the same kind: handle creation is
// idempotent so repeated kernel runs can share one registry (experiment
// sweeps), but re-registering a name as a different kind is a bug.
func lookup[M metric](r *Registry, name string) (M, bool) {
	var zero M
	m, ok := r.byName[name]
	if !ok {
		return zero, false
	}
	typed, ok := m.(M)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
	}
	return typed, true
}

// register adds m under its name. The caller holds r.mu and has checked
// for an existing registration with lookup.
func (r *Registry) register(m metric) {
	r.byName[m.name()] = m
	r.order = append(r.order, m)
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	reg   *Registry
	nm    string
	hp    string
	cells []shard
}

// Counter creates the named counter, or returns the existing handle.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := lookup[*Counter](r, name); ok {
		return c
	}
	c := &Counter{reg: r, nm: name, hp: help, cells: make([]shard, r.shards)}
	r.register(c)
	return c
}

// Add increments the counter by n on the given shard (the caller's
// worker id). No-op while the registry is disabled.
func (c *Counter) Add(shard int, n int64) {
	if !c.reg.enabled.Load() {
		return
	}
	atomic.AddInt64(&c.cells[shard&c.reg.mask].v, n)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value returns the merged total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += atomic.LoadInt64(&c.cells[i].v)
	}
	return t
}

func (c *Counter) name() string { return c.nm }
func (c *Counter) help() string { return c.hp }

func (c *Counter) snapshot() Snapshot {
	return Snapshot{Name: c.nm, Kind: "counter", Help: c.hp, Value: float64(c.Value())}
}

// Gauge is a sharded last-value metric: each shard holds its writer's
// most recent sample; reads merge as sum and max over shards.
type Gauge struct {
	reg   *Registry
	nm    string
	hp    string
	cells []shard
}

// Gauge creates the named gauge, or returns the existing handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := lookup[*Gauge](r, name); ok {
		return g
	}
	g := &Gauge{reg: r, nm: name, hp: help, cells: make([]shard, r.shards)}
	r.register(g)
	return g
}

// Set records v as the shard's current value. No-op while disabled.
func (g *Gauge) Set(shard int, v int64) {
	if !g.reg.enabled.Load() {
		return
	}
	atomic.StoreInt64(&g.cells[shard&g.reg.mask].v, v)
}

// Sum returns the sum of all shard values.
func (g *Gauge) Sum() int64 {
	var t int64
	for i := range g.cells {
		t += atomic.LoadInt64(&g.cells[i].v)
	}
	return t
}

// Max returns the maximum shard value.
func (g *Gauge) Max() int64 {
	var m int64 = math.MinInt64
	for i := range g.cells {
		if v := atomic.LoadInt64(&g.cells[i].v); v > m {
			m = v
		}
	}
	return m
}

func (g *Gauge) name() string { return g.nm }
func (g *Gauge) help() string { return g.hp }

func (g *Gauge) snapshot() Snapshot {
	return Snapshot{Name: g.nm, Kind: "gauge", Help: g.hp,
		Value: float64(g.Sum()), Max: float64(g.Max())}
}

// histShard is one shard of a histogram: per-bucket counts plus count
// and sum. Each shard has a single writer (the worker holding that
// shard index), so read-modify-write of the sum bits is safe; atomics
// keep concurrent snapshot reads race-free.
type histShard struct {
	counts  []int64
	n       int64
	sumBits uint64
}

// Histogram is a fixed-bucket sharded histogram. Bounds are inclusive
// upper edges; an implicit +Inf bucket catches the overflow.
type Histogram struct {
	reg    *Registry
	nm     string
	hp     string
	bounds []float64
	cells  []histShard
}

// Histogram creates a histogram with the given ascending upper bounds,
// or returns the existing handle under that name.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := lookup[*Histogram](r, name); ok {
		return h
	}
	h := &Histogram{reg: r, nm: name, hp: help,
		bounds: append([]float64(nil), bounds...),
		cells:  make([]histShard, r.shards)}
	for i := range h.cells {
		h.cells[i].counts = make([]int64, len(bounds)+1)
	}
	r.register(h)
	return h
}

// Observe records one sample on the given shard. The shard must have a
// single writer (the observability discipline of the kernel workers);
// concurrent Observe calls on *different* shards and concurrent
// snapshots are safe. No-op while disabled.
func (h *Histogram) Observe(shard int, v float64) {
	if !h.reg.enabled.Load() {
		return
	}
	s := &h.cells[shard&h.reg.mask]
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&s.counts[i], 1)
	atomic.AddInt64(&s.n, 1)
	// Single writer per shard: load-add-store cannot lose updates.
	atomic.StoreUint64(&s.sumBits,
		math.Float64bits(math.Float64frombits(atomic.LoadUint64(&s.sumBits))+v))
}

// Count returns the merged sample count.
func (h *Histogram) Count() int64 {
	var t int64
	for i := range h.cells {
		t += atomic.LoadInt64(&h.cells[i].n)
	}
	return t
}

// Sum returns the merged sample sum.
func (h *Histogram) Sum() float64 {
	var t float64
	for i := range h.cells {
		t += math.Float64frombits(atomic.LoadUint64(&h.cells[i].sumBits))
	}
	return t
}

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }

func (h *Histogram) snapshot() Snapshot {
	s := Snapshot{Name: h.nm, Kind: "histogram", Help: h.hp,
		Count: h.Count(), Sum: h.Sum()}
	s.Buckets = make([]Bucket, len(h.bounds)+1)
	for bi := range s.Buckets {
		upper := math.Inf(1)
		if bi < len(h.bounds) {
			upper = h.bounds[bi]
		}
		var n int64
		for ci := range h.cells {
			n += atomic.LoadInt64(&h.cells[ci].counts[bi])
		}
		s.Buckets[bi] = Bucket{Upper: upper, Count: n}
	}
	s.Value = float64(s.Count)
	return s
}

// Bucket is one histogram bucket in a snapshot. An infinite Upper is
// the overflow bucket (serialized as "+Inf").
type Bucket struct {
	Upper float64 `json:"-"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the bucket with a JSON-safe upper bound.
func (b Bucket) MarshalJSON() ([]byte, error) {
	upper := "+Inf"
	if !math.IsInf(b.Upper, 1) {
		upper = fmt.Sprintf("%g", b.Upper)
	}
	return json.Marshal(struct {
		Upper string `json:"le"`
		Count int64  `json:"count"`
	}{upper, b.Count})
}

// Snapshot is the merged read-side view of one metric.
type Snapshot struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Help    string   `json:"help,omitempty"`
	Value   float64  `json:"value"`
	Max     float64  `json:"max,omitempty"`
	Count   int64    `json:"samples,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns the merged state of every metric, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.Lock()
	ms := append([]metric(nil), r.order...)
	r.mu.Unlock()
	out := make([]Snapshot, len(ms))
	for i, m := range ms {
		out[i] = m.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteJSON writes the snapshot as a JSON object {"metrics": [...]}.
// Output is deterministic: metrics sort by name, structs marshal in
// field order.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Snapshot `json:"metrics"`
	}{r.Snapshot()})
}

// WriteText writes a human-readable metric table.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case "histogram":
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			if _, err := fmt.Fprintf(w, "%-36s samples=%d mean=%.4g", s.Name, s.Count, mean); err != nil {
				return err
			}
			for _, b := range s.Buckets {
				if b.Count == 0 {
					continue
				}
				le := "+Inf"
				if !math.IsInf(b.Upper, 1) {
					le = fmt.Sprintf("%g", b.Upper)
				}
				if _, err := fmt.Fprintf(w, " le%s=%d", le, b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%-36s %g (max shard %g)\n", s.Name, s.Value, s.Max); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%-36s %g\n", s.Name, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
