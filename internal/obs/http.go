package obs

import (
	"net/http"
)

// Handler serves the registry as an expvar-style HTTP endpoint:
//
//	GET /        — JSON snapshot {"metrics": [...]}
//	GET /text    — the human-readable table of WriteText
//
// Mount it (e.g. on cmd/experiments' -obshttp flag) to watch a long
// sweep's kernel behaviour live without touching the run.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/text", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	return mux
}
