package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// HandlerOpts attaches the live-telemetry surfaces to a Handler. All
// fields are optional; endpoints whose backing object is absent return
// 404.
type HandlerOpts struct {
	// Timeline backs /series and /events.
	Timeline *Timeline
	// Run backs /run and enriches /healthz with heartbeat state.
	Run *RunInfo
	// StaleAfter is the heartbeat age beyond which /healthz reports a
	// running simulation as stalled (503). Zero means 15s.
	StaleAfter time.Duration
}

// Handler serves the registry as an expvar-style HTTP endpoint:
//
//	GET /        — JSON snapshot {"metrics": [...]}
//	GET /text    — the human-readable table of WriteText
//
// Mount it (e.g. on cmd/experiments' -obshttp flag) to watch a long
// sweep's kernel behaviour live without touching the run. For the live
// telemetry endpoints (/series, /run, /healthz, /events) use
// HandlerWith.
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, HandlerOpts{})
}

// HandlerWith is Handler plus the live-telemetry endpoints — one such
// handler per run is what the future mpisimd daemon mounts:
//
//	GET /              — JSON metrics snapshot {"metrics": [...]}
//	GET /text          — human-readable metric table
//	GET /series?since=N — JSON {"points": [...], "next": M}: retained
//	                     timeline points with seq > N, oldest first
//	GET /run           — RunInfo status (state, progress, ETA)
//	GET /healthz       — liveness: state + watchdog-heartbeat age
//	GET /events        — SSE stream; each timeline point arrives as one
//	                     `data:` frame (JSON TimePoint)
//
// Non-GET methods get 405; every response carries a Content-Type.
func HandlerWith(r *Registry, o HandlerOpts) http.Handler {
	if o.StaleAfter <= 0 {
		o.StaleAfter = 15 * time.Second
	}
	mux := http.NewServeMux()
	handle := func(path string, fn http.HandlerFunc) {
		mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodGet && req.Method != http.MethodHead {
				w.Header().Set("Allow", "GET")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			fn(w, req)
		})
	}
	handle("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	handle("/text", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	handle("/series", func(w http.ResponseWriter, req *http.Request) {
		if o.Timeline == nil {
			http.NotFound(w, req)
			return
		}
		since := int64(0)
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		pts, next := o.Timeline.Since(since)
		if pts == nil {
			pts = []TimePoint{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Points []TimePoint `json:"points"`
			Next   int64       `json:"next"`
		}{pts, next})
	})
	handle("/run", func(w http.ResponseWriter, req *http.Request) {
		if o.Run == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = o.Run.WriteJSON(w)
	})
	handle("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		health := struct {
			Status         string   `json:"status"`
			State          RunState `json:"state,omitempty"`
			HeartbeatAgeNs int64    `json:"heartbeat_age_ns"`
		}{Status: "ok", HeartbeatAgeNs: -1}
		code := http.StatusOK
		if o.Run != nil {
			st := o.Run.Status()
			health.State = st.State
			health.HeartbeatAgeNs = st.HeartbeatAgeNs
			if st.State == RunRunning && st.HeartbeatAgeNs >= 0 &&
				st.HeartbeatAgeNs > o.StaleAfter.Nanoseconds() {
				health.Status = "stalled"
				code = http.StatusServiceUnavailable
			}
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(health)
	})
	handle("/events", func(w http.ResponseWriter, req *http.Request) {
		if o.Timeline == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		flusher, _ := w.(http.Flusher)
		since := int64(0)
		for {
			// Grab the wake channel before reading, so a point captured
			// between Since and the select still wakes us.
			wake := o.Timeline.Wait()
			pts, next := o.Timeline.Since(since)
			for _, p := range pts {
				data, err := json.Marshal(p)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
					return
				}
			}
			if len(pts) > 0 && flusher != nil {
				flusher.Flush()
			}
			since = next
			select {
			case <-req.Context().Done():
				return
			case <-wake:
			}
		}
	})
	return mux
}
