package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// emitSample drives the tracer through one of every event kind, in a
// fixed order, so sink golden files cover the full serialization
// surface.
func emitSample(t *Tracer) {
	t.Meta(PlaneSimulated, -1, "target (virtual time)")
	t.Meta(PlaneSimulated, 0, "rank 0")
	t.Span(PlaneSimulated, 0, "activity", "compute", 0, 0.5, Num("ops", 128))
	t.Instant(PlaneSimulated, 0, "marker", "finish", 1.5)
	t.Counter(PlaneSimulator, 0, "queue", 0.25, Num("depth", 7))
	t.Flow(PlaneSimulated, 42, "msg", "p2p", 0, 0.5, 1, 0.75,
		Num("bytes", 4096), Num("tag", 3), Str("kind", "send"))
	t.Async(PlaneSimulated, 1, 9, "collective", "bcast", 0.75, 0.9, Num("ranks", 2))
}

const chromeGolden = `[
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"target (virtual time)"}},
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 0"}},
{"name":"compute","ph":"X","pid":1,"tid":0,"cat":"activity","ts":0,"dur":500000,"args":{"ops":128}},
{"name":"finish","ph":"i","pid":1,"tid":0,"cat":"marker","ts":1.5e+06,"s":"t"},
{"name":"queue","ph":"C","pid":2,"tid":0,"ts":250000,"args":{"depth":7}},
{"name":"p2p","ph":"s","pid":1,"tid":0,"cat":"msg","ts":500000,"id":"0x2a","args":{"bytes":4096,"tag":3,"kind":"send"}},
{"name":"p2p","ph":"f","pid":1,"tid":1,"cat":"msg","ts":750000,"id":"0x2a","bp":"e","args":{"bytes":4096,"tag":3,"kind":"send"}},
{"name":"bcast","ph":"b","pid":1,"tid":1,"cat":"collective","ts":750000,"id":"0x9","args":{"ranks":2}},
{"name":"bcast","ph":"e","pid":1,"tid":1,"cat":"collective","ts":900000,"id":"0x9"}
]
`

const jsonlGolden = `{"type":"meta","pid":1,"tid":0,"name":"process_name","args":{"name":"target (virtual time)"}}
{"type":"meta","pid":1,"tid":0,"name":"thread_name","args":{"name":"rank 0"}}
{"type":"span","pid":1,"tid":0,"name":"compute","cat":"activity","t":0,"dur":0.5,"args":{"ops":128}}
{"type":"instant","pid":1,"tid":0,"name":"finish","cat":"marker","t":1.5}
{"type":"counter","pid":2,"tid":0,"name":"queue","t":0.25,"args":{"depth":7}}
{"type":"flow_start","pid":1,"tid":0,"name":"p2p","cat":"msg","t":0.5,"id":42,"args":{"bytes":4096,"tag":3,"kind":"send"}}
{"type":"flow_end","pid":1,"tid":1,"name":"p2p","cat":"msg","t":0.75,"id":42,"args":{"bytes":4096,"tag":3,"kind":"send"}}
{"type":"phase_begin","pid":1,"tid":1,"name":"bcast","cat":"collective","t":0.75,"id":9,"args":{"ranks":2}}
{"type":"phase_end","pid":1,"tid":1,"name":"bcast","cat":"collective","t":0.9,"id":9}
`

func TestChromeSinkGolden(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(NewChromeSink(&sb))
	emitSample(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !json.Valid([]byte(got)) {
		t.Fatalf("chrome sink output is not valid JSON:\n%s", got)
	}
	if got != chromeGolden {
		t.Fatalf("chrome output mismatch\n--- got ---\n%s--- want ---\n%s", got, chromeGolden)
	}
}

func TestJSONLSinkGolden(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(NewJSONLSink(&sb))
	emitSample(tr)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for i, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line %d is not valid JSON: %s", i+1, line)
		}
	}
	if got != jsonlGolden {
		t.Fatalf("jsonl output mismatch\n--- got ---\n%s--- want ---\n%s", got, jsonlGolden)
	}
}

func TestChromeSinkEmptyTrace(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(NewChromeSink(&sb))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("empty trace is not valid JSON: %q", sb.String())
	}
}

func TestDisabledTracerEmitsNothing(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(NewJSONLSink(&sb))
	tr.SetEnabled(false)
	emitSample(tr)
	if sb.Len() != 0 {
		t.Fatalf("disabled tracer wrote %d bytes", sb.Len())
	}
}

// errWriter fails after n bytes, to exercise error latching.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestTracerLatchesSinkError(t *testing.T) {
	tr := NewTracer(NewJSONLSink(&errWriter{n: 10}))
	emitSample(tr)
	if tr.Err() == nil {
		t.Fatal("sink error was not latched")
	}
}
