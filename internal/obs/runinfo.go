package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// RunState is the lifecycle phase of one simulation run.
type RunState string

// Lifecycle states, in the order core.Runner moves through them.
const (
	RunPending     RunState = "pending"
	RunCompiling   RunState = "compiling"
	RunCalibrating RunState = "calibrating"
	RunRunning     RunState = "running"
	RunDone        RunState = "done"
	RunAborted     RunState = "aborted"
	// RunFailed marks a run that ended in an error or isolated panic
	// rather than a clean finish or budgeted abort (used by the service
	// daemon's job lifecycle).
	RunFailed RunState = "failed"
)

// RunInfo tracks one run's lifecycle and progress: state, wall-clock
// start and elapsed time, last-heartbeat vitals, and — when a horizon
// is known — percent-complete and an ETA. internal/core.Runner updates
// it around compile/calibrate/run; kernel workers heartbeat it from
// their sample points. All wall-clock reads here are observability-only
// and never feed virtual time (hence the simvet allows).
//
// The horizon comes from whichever bound is known first: the program's
// statically predicted virtual-time end (core.Runner.EstimateHorizon,
// analytic mode), or the sim.Limits budget (MaxTime, else MaxEvents).
type RunInfo struct {
	mu           sync.Mutex
	state        RunState
	start        time.Time // RunInfo creation
	runStart     time.Time // transition into RunRunning
	virtual      float64
	events       int64
	horizonVirt  float64
	horizonEvts  int64
	lastBeat     time.Time
	haveBeat     bool
	abortReason  string
	finalVirtual float64
}

// RunStatus is the JSON view of a RunInfo at one instant, served by
// /run and consulted by mpisim -progress. Percent is in [0,1], or -1
// when no horizon is known; ETANs is -1 when unknown.
type RunStatus struct {
	State          RunState `json:"state"`
	ElapsedNs      int64    `json:"elapsed_ns"`
	RunningNs      int64    `json:"running_ns,omitempty"`
	Virtual        float64  `json:"virtual_time"`
	Events         int64    `json:"events"`
	HorizonVirtual float64  `json:"horizon_virtual,omitempty"`
	HorizonEvents  int64    `json:"horizon_events,omitempty"`
	Percent        float64  `json:"percent"`
	ETANs          int64    `json:"eta_ns"`
	HeartbeatAgeNs int64    `json:"heartbeat_age_ns"`
	AbortReason    string   `json:"abort_reason,omitempty"`
}

// NewRunInfo returns a RunInfo in state pending.
func NewRunInfo() *RunInfo {
	return &RunInfo{
		state: RunPending,
		start: time.Now(), //simvet:allow wallclock run lifecycle epoch; never feeds virtual time
	}
}

// SetState moves the run to s. Entering RunRunning stamps the running
// epoch the ETA extrapolates from.
func (r *RunInfo) SetState(s RunState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = s
	if s == RunRunning && r.runStart.IsZero() {
		r.runStart = time.Now() //simvet:allow wallclock ETA epoch; never feeds virtual time
	}
}

// State returns the current lifecycle state.
func (r *RunInfo) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// SetHorizon records the expected virtual-time end and/or event budget.
// Zero fields leave the corresponding horizon unchanged, so a budget
// default never overwrites a static estimate.
func (r *RunInfo) SetHorizon(virtual float64, events int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if virtual > 0 {
		r.horizonVirt = virtual
	}
	if events > 0 {
		r.horizonEvts = events
	}
}

// Heartbeat records the latest vitals and stamps the watchdog
// heartbeat. Called from kernel worker sample points (coarse: every
// few thousand events per worker), so a mutex is cheap enough.
func (r *RunInfo) Heartbeat(virtual float64, events int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if virtual > r.virtual {
		r.virtual = virtual
	}
	if events > r.events {
		r.events = events
	}
	r.lastBeat = time.Now() //simvet:allow wallclock watchdog heartbeat; never feeds virtual time
	r.haveBeat = true
}

// Finish moves the run to its terminal state (RunDone or RunAborted)
// with the final virtual time and, on abort, the reason.
func (r *RunInfo) Finish(s RunState, virtual float64, abortReason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = s
	if virtual > r.virtual {
		r.virtual = virtual
	}
	r.finalVirtual = virtual
	r.abortReason = abortReason
}

// Status returns a consistent snapshot of the run's progress.
func (r *RunInfo) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now() //simvet:allow wallclock elapsed/ETA computation; never feeds virtual time
	st := RunStatus{
		State:          r.state,
		ElapsedNs:      now.Sub(r.start).Nanoseconds(),
		Virtual:        r.virtual,
		Events:         r.events,
		HorizonVirtual: r.horizonVirt,
		HorizonEvents:  r.horizonEvts,
		Percent:        -1,
		ETANs:          -1,
		HeartbeatAgeNs: -1,
		AbortReason:    r.abortReason,
	}
	if !r.runStart.IsZero() {
		st.RunningNs = now.Sub(r.runStart).Nanoseconds()
	}
	if r.haveBeat {
		st.HeartbeatAgeNs = now.Sub(r.lastBeat).Nanoseconds()
	}
	switch {
	case r.state == RunDone:
		st.Percent, st.ETANs = 1, 0
	case r.horizonVirt > 0:
		st.Percent = clamp01(r.virtual / r.horizonVirt)
	case r.horizonEvts > 0:
		st.Percent = clamp01(float64(r.events) / float64(r.horizonEvts))
	}
	if r.state == RunRunning && st.Percent > 0 && st.Percent <= 1 && st.RunningNs > 0 {
		st.ETANs = int64(float64(st.RunningNs) * (1 - st.Percent) / st.Percent)
	}
	return st
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// WriteJSON writes the current status as indented JSON.
func (r *RunInfo) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Status())
}
