package obs

import (
	"testing"
)

func TestTimelineDisabledCapturesNothing(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryEvents: 1})
	tl.Offer(Vitals{Virtual: 1, Events: 100})
	tl.Sample(Vitals{Virtual: 2, Events: 200})
	if pts, next := tl.Since(0); len(pts) != 0 || next != 0 {
		t.Fatalf("disabled timeline captured: %d points, next %d", len(pts), next)
	}
}

func TestTimelineEventCadence(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryEvents: 100})
	tl.SetEnabled(true)
	tl.Offer(Vitals{Virtual: 0.1, Events: 50}) // below cadence from 0
	if pts, _ := tl.Since(0); len(pts) != 0 {
		t.Fatalf("offer below cadence captured %d points", len(pts))
	}
	tl.Offer(Vitals{Virtual: 0.2, Events: 120})
	tl.Offer(Vitals{Virtual: 0.3, Events: 180}) // only +60 since last point
	tl.Offer(Vitals{Virtual: 0.4, Events: 250})
	pts, next := tl.Since(0)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Events != 120 || pts[1].Events != 250 {
		t.Fatalf("captured events %d, %d; want 120, 250", pts[0].Events, pts[1].Events)
	}
	if pts[0].Seq != 1 || pts[1].Seq != 2 || next != 2 {
		t.Fatalf("seqs %d,%d next %d; want 1,2,2", pts[0].Seq, pts[1].Seq, next)
	}
}

func TestTimelineVirtualCadence(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryVirtual: 1.0})
	tl.SetEnabled(true)
	tl.Offer(Vitals{Virtual: 0.5, Events: 10})
	tl.Offer(Vitals{Virtual: 1.5, Events: 20})
	tl.Offer(Vitals{Virtual: 2.0, Events: 30})
	tl.Offer(Vitals{Virtual: 2.6, Events: 40})
	pts, _ := tl.Since(0)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].Virtual != 1.5 || pts[1].Virtual != 2.6 {
		t.Fatalf("captured virtual %g, %g; want 1.5, 2.6", pts[0].Virtual, pts[1].Virtual)
	}
}

func TestTimelineRingWrapKeepsNewest(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{Capacity: 4, EveryEvents: 1})
	tl.SetEnabled(true)
	for i := 1; i <= 10; i++ {
		tl.Sample(Vitals{Virtual: float64(i), Events: int64(i)})
	}
	pts, next := tl.Since(0)
	if len(pts) != 4 || next != 10 {
		t.Fatalf("got %d points next %d, want 4 points next 10", len(pts), next)
	}
	for i, p := range pts {
		if want := int64(7 + i); p.Seq != want {
			t.Fatalf("point %d has seq %d, want %d", i, p.Seq, want)
		}
	}
}

func TestTimelineSinceReturnsOnlyNewer(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryEvents: 1})
	tl.SetEnabled(true)
	for i := 1; i <= 5; i++ {
		tl.Sample(Vitals{Events: int64(i)})
	}
	pts, next := tl.Since(3)
	if len(pts) != 2 || pts[0].Seq != 4 || pts[1].Seq != 5 || next != 5 {
		t.Fatalf("Since(3) = %d points next %d", len(pts), next)
	}
	if pts, next := tl.Since(5); len(pts) != 0 || next != 5 {
		t.Fatalf("Since(5) = %d points next %d, want 0 points next 5", len(pts), next)
	}
	// A stale cursor far beyond the newest seq stays where it is.
	if _, next := tl.Since(99); next != 99 {
		t.Fatalf("Since(99) next = %d, want 99", next)
	}
}

func TestTimelineCapturesRegistryMetrics(t *testing.T) {
	reg := NewRegistry(1)
	reg.SetEnabled(true)
	c := reg.Counter("test_total", "")
	g := reg.Gauge("test_gauge", "")
	c.Add(0, 7)
	g.Set(0, 3)
	tl := NewTimeline(reg, TimelineOptions{EveryEvents: 1})
	tl.SetEnabled(true)
	tl.Sample(Vitals{Virtual: 1, Events: 10})
	p, ok := tl.Latest()
	if !ok {
		t.Fatal("no point captured")
	}
	if p.Metrics["test_total"] != 7 || p.Metrics["test_gauge"] != 3 {
		t.Fatalf("metrics = %v", p.Metrics)
	}
}

func TestTimelineWaitWakesOnCapture(t *testing.T) {
	tl := NewTimeline(nil, TimelineOptions{EveryEvents: 1})
	tl.SetEnabled(true)
	wake := tl.Wait()
	select {
	case <-wake:
		t.Fatal("wake channel closed before any capture")
	default:
	}
	tl.Sample(Vitals{Events: 1})
	select {
	case <-wake:
	default:
		t.Fatal("wake channel not closed after capture")
	}
}
