package irgen

import (
	"math"
	"testing"

	"mpisim/internal/compiler"
	"mpisim/internal/interp"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

func TestGeneratedProgramsValidate(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p, _ := Program(seed, Config{})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a, ia := Program(7, Config{})
	b, ib := Program(7, Config{})
	if a.String() != b.String() {
		t.Fatal("same seed produced different programs")
	}
	if ia["N"] != ib["N"] || ia["STEPS"] != ib["STEPS"] {
		t.Fatal("same seed produced different inputs")
	}
	c, _ := Program(8, Config{})
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical programs")
	}
}

// Property: every generated program runs deadlock-free under every
// engine with identical results.
func TestGeneratedProgramsEngineEquivalence(t *testing.T) {
	m := machine.IBMSP()
	for seed := int64(0); seed < 12; seed++ {
		p, inputs := Program(seed, Config{})
		base, err := interp.Run(p, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		par, err := interp.Run(p, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs,
			HostWorkers: 3, RealParallel: true})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if par.Time != base.Time {
			t.Fatalf("seed %d: parallel %g != sequential %g", seed, par.Time, base.Time)
		}
	}
}

// Property (the paper's core invariant): for any generated program, the
// compiler-simplified version with w_i calibrated at the same
// configuration reproduces direct execution closely. The tolerance
// covers the statistical folding of generated data-dependent branches.
func TestGeneratedProgramsAMMatchesDE(t *testing.T) {
	m := machine.IBMSP()
	worst := 0.0
	for seed := int64(0); seed < 20; seed++ {
		p, inputs := Program(seed, Config{})
		res, err := compiler.Compile(p)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		cal := interp.NewCalibration()
		if _, err := interp.Run(res.Timer, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Detailed,
			Inputs: inputs, Calibration: cal}); err != nil {
			t.Fatalf("seed %d: timer: %v", seed, err)
		}
		de, err := interp.Run(p, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Analytic, Inputs: inputs})
		if err != nil {
			t.Fatalf("seed %d: DE: %v", seed, err)
		}
		am, err := interp.Run(res.Simplified, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Analytic,
			Inputs: inputs, TaskTimes: cal.TaskTimes()})
		if err != nil {
			t.Fatalf("seed %d: AM: %v", seed, err)
		}
		e := math.Abs(am.Time-de.Time) / de.Time
		if e > worst {
			worst = e
		}
		if e > 0.10 {
			t.Errorf("seed %d: AM %g vs DE %g, error %.3f > 10%%\n%s",
				seed, am.Time, de.Time, e, res.Summary())
		}
		// The simplified program must also use less memory whenever the
		// original held full-size arrays.
		if am.TotalPeakBytes >= de.TotalPeakBytes {
			t.Errorf("seed %d: AM memory %d >= DE %d",
				seed, am.TotalPeakBytes, de.TotalPeakBytes)
		}
	}
	t.Logf("worst AM-vs-DE error over generated programs: %.4f", worst)
}

// Property: the memory estimate matches actual allocation for generated
// programs.
func TestGeneratedProgramsMemoryEstimate(t *testing.T) {
	m := machine.IBMSP()
	for seed := int64(30); seed < 40; seed++ {
		p, inputs := Program(seed, Config{})
		est, err := interp.MemoryEstimate(p, 3, inputs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := interp.Run(p, interp.Config{
			Ranks: 3, Machine: m, Comm: mpi.Analytic, Inputs: inputs})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.TotalPeakBytes != est {
			t.Fatalf("seed %d: estimate %d != actual %d", seed, est, rep.TotalPeakBytes)
		}
	}
}

// Property: every generated program round-trips through the text format.
func TestGeneratedProgramsRoundTripThroughText(t *testing.T) {
	for seed := int64(50); seed < 90; seed++ {
		p, _ := Program(seed, Config{})
		text := p.String()
		back, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, text)
		}
		if back.String() != text {
			t.Fatalf("seed %d: round trip changed program", seed)
		}
	}
}

// Property: compilation is deterministic — compiling the same program
// twice yields byte-identical simplified and timer programs.
func TestCompileDeterministic(t *testing.T) {
	for seed := int64(90); seed < 110; seed++ {
		p, _ := Program(seed, Config{})
		a, err := compiler.Compile(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := compiler.Compile(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Simplified.String() != b.Simplified.String() {
			t.Fatalf("seed %d: simplified program not deterministic", seed)
		}
		if a.Timer.String() != b.Timer.String() {
			t.Fatalf("seed %d: timer program not deterministic", seed)
		}
		if a.Graph.String() != b.Graph.String() {
			t.Fatalf("seed %d: condensed graph not deterministic", seed)
		}
	}
}
