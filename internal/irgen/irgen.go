// Package irgen generates random, well-formed, deadlock-free IR programs
// for property-based testing of the whole pipeline: any generated program
// must validate, compile, run deterministically under every engine, and
// — the paper's core invariant — its compiler-simplified version must
// reproduce direct execution at the calibration configuration.
//
// Generated programs follow the shape of real data-parallel codes: a
// prologue computing block sizes from inputs, an initialization nest, a
// time loop containing ring-shift communication guarded by rank tests,
// computation nests over the local block, occasional data-dependent
// branches inside collapsible nests, and reductions. Communication is
// restricted to left/right ring shifts with matching guards so the
// programs cannot deadlock by construction.
package irgen

import (
	"fmt"
	"math/rand"

	"mpisim/internal/ir"
)

// Config bounds the generated program's shape.
type Config struct {
	// MaxArrays in 1..; default 3.
	MaxArrays int
	// MaxNests bounds computation nests in the time loop; default 3.
	MaxNests int
	// MaxTimeSteps bounds the time loop trip count; default 4.
	MaxTimeSteps int
}

func (c Config) withDefaults() Config {
	if c.MaxArrays <= 0 {
		c.MaxArrays = 3
	}
	if c.MaxNests <= 0 {
		c.MaxNests = 3
	}
	if c.MaxTimeSteps <= 0 {
		c.MaxTimeSteps = 4
	}
	return c
}

// Program generates a random program from the seed. The same seed always
// produces the same program. Inputs returns suitable input values.
func Program(seed int64, cfg Config) (*ir.Program, map[string]float64) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, cfg: cfg}
	return g.program(seed)
}

type gen struct {
	r   *rand.Rand
	cfg Config
}

func (g *gen) program(seed int64) (*ir.Program, map[string]float64) {
	nArrays := 1 + g.r.Intn(g.cfg.MaxArrays)
	p := &ir.Program{
		Name:   fmt.Sprintf("gen%d", seed),
		Params: []string{"N", "STEPS"},
	}
	// Local arrays sized by the block size plus ghost cells.
	cols := ir.Add(ir.CeilDiv(ir.S("N"), ir.S(ir.BuiltinP)), ir.N(2))
	for i := 0; i < nArrays; i++ {
		p.Arrays = append(p.Arrays, &ir.ArrayDecl{
			Name: fmt.Sprintf("A%d", i),
			Dims: []ir.Expr{ir.S("N"), cols},
			Elem: 8,
		})
	}
	arr := func(i int) string { return fmt.Sprintf("A%d", i%nArrays) }

	body := ir.Block(
		&ir.ReadInput{Var: "N"},
		&ir.ReadInput{Var: "STEPS"},
		ir.SetS("b", ir.CeilDiv(ir.S("N"), ir.S(ir.BuiltinP))),
		ir.SetS("nloc", ir.MaxE(ir.N(1), ir.MinE(ir.S("b"),
			ir.Sub(ir.S("N"), ir.Mul(ir.S(ir.BuiltinMyID), ir.S("b")))))),
	)
	// Initialization nest over the local block.
	body = append(body, ir.Loop("init", "j", ir.N(1), ir.Add(ir.S("nloc"), ir.N(2)),
		ir.Loop("", "i", ir.N(1), ir.S("N"),
			ir.SetA(arr(0), ir.IX(ir.S("i"), ir.S("j")),
				ir.Mul(ir.Add(ir.S("i"), ir.S("j")), ir.N(0.01))))))

	// Time loop: ring shifts plus random computation nests.
	var step []ir.Stmt
	step = append(step, g.shift(arr(g.r.Intn(nArrays)))...)
	nests := 1 + g.r.Intn(g.cfg.MaxNests)
	for n := 0; n < nests; n++ {
		step = append(step, g.nest(arr, nArrays, n))
		if g.r.Intn(3) == 0 {
			step = append(step, g.reduction(arr(g.r.Intn(nArrays)))...)
		}
	}
	body = append(body, ir.Loop("time", "t", ir.N(1), ir.S("STEPS"), step...))
	p.Body = body

	inputs := map[string]float64{
		"N":     float64(16 + 8*g.r.Intn(6)),
		"STEPS": float64(1 + g.r.Intn(g.cfg.MaxTimeSteps)),
	}
	return p, inputs
}

// shift emits a guarded ring shift of one boundary column: send left,
// receive from right (no deadlock under eager sends).
func (g *gen) shift(array string) []ir.Stmt {
	myid := ir.S(ir.BuiltinMyID)
	tag := 10 + g.r.Intn(5)
	return ir.Block(
		&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
			&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: tag, Array: array,
				Section: ir.Sec(ir.N(1), ir.S("N"), ir.N(2), ir.N(2))})},
		&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
			&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: tag, Array: array,
				Section: ir.Sec(ir.N(1), ir.S("N"),
					ir.Add(ir.S("nloc"), ir.N(2)), ir.Add(ir.S("nloc"), ir.N(2)))})},
	)
}

// nest emits a random computation nest over the local block, sometimes
// containing a data-dependent branch (the Sweep3D fixup pattern).
func (g *gen) nest(arr func(int) string, nArrays, id int) ir.Stmt {
	i, j := ir.S("i"), ir.S("j")
	dst := arr(g.r.Intn(nArrays))
	src := arr(g.r.Intn(nArrays))
	var rhs ir.Expr
	switch g.r.Intn(4) {
	case 0:
		rhs = ir.Mul(ir.Add(ir.At(src, i, j), ir.At(src, i, ir.Add(j, ir.N(1)))), ir.N(0.5))
	case 1:
		rhs = ir.Add(ir.At(src, i, j), ir.Mul(ir.S("t"), ir.N(0.001)))
	case 2:
		rhs = ir.Sub(ir.Mul(ir.At(src, i, j), ir.N(0.9)),
			ir.Mul(ir.At(dst, i, j), ir.N(0.1)))
	default:
		rhs = ir.Abs(ir.Sub(ir.At(src, i, j), ir.At(src, ir.MaxE(ir.Sub(i, ir.N(1)), ir.N(1)), j)))
	}
	inner := []ir.Stmt{ir.SetA(dst, ir.IX(i, j), rhs)}
	if g.r.Intn(3) == 0 {
		// Data-dependent branch inside the collapsible nest.
		inner = append(inner, &ir.If{
			Cond: ir.LT(ir.At(dst, i, j), ir.N(0.25)),
			Then: ir.Block(ir.SetA(dst, ir.IX(i, j), ir.Mul(ir.At(dst, i, j), ir.N(1.5)))),
		})
	}
	return ir.Loop(fmt.Sprintf("nest%d", id), "j", ir.N(2), ir.Add(ir.S("nloc"), ir.N(1)),
		ir.Loop("", "i", ir.N(2), ir.Sub(ir.S("N"), ir.N(1)), inner...))
}

// reduction emits a local accumulation followed by an allreduce.
func (g *gen) reduction(array string) []ir.Stmt {
	ops := []string{"sum", "max", "min"}
	return ir.Block(
		ir.SetS("acc", ir.N(0)),
		ir.Loop("acc", "j", ir.N(2), ir.Add(ir.S("nloc"), ir.N(1)),
			ir.SetS("acc", ir.Add(ir.S("acc"), ir.At(array, ir.N(2), ir.S("j"))))),
		&ir.Allreduce{Op: ops[g.r.Intn(len(ops))], Vars: []string{"acc"}},
	)
}
