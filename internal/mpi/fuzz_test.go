package mpi

import (
	"errors"
	"math"
	"testing"

	"mpisim/internal/fault"
	"mpisim/internal/machine"
	"mpisim/internal/sim"
)

// FuzzFaultSchedules drives the kernel and MPI layer with randomized
// fault scenarios over program shapes modeled on the four benchmark
// apps (ring shift + allreduce like tomcatv, wavefront like sweep3d,
// phased alltoall like the NAS SP transpose, collective-heavy). The
// invariants: the simulator never panics (the pools' double-free guards
// panic on a freed-event delivery, so that is covered implicitly), a
// run either completes or aborts with a structured *sim.AbortError, and
// the per-rank accounting stays consistent (non-negative times bounded
// by the run time, fault-explained wait within blocked time, exact
// component decomposition on complete runs).
func FuzzFaultSchedules(f *testing.F) {
	// Seed corpus: one entry per app shape, healthy and faulted.
	f.Add(uint64(1), uint8(8), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), true)    // tomcatv shape, healthy
	f.Add(uint64(2), uint8(8), uint8(1), uint8(5), uint8(0), uint8(0), uint8(0), true)    // sweep3d shape, loss+retry
	f.Add(uint64(3), uint8(9), uint8(2), uint8(5), uint8(5), uint8(5), uint8(0), true)    // SP shape, loss+dup+delay
	f.Add(uint64(4), uint8(6), uint8(3), uint8(0), uint8(0), uint8(0), uint8(3), false)   // collectives + crash
	f.Add(uint64(5), uint8(12), uint8(1), uint8(20), uint8(0), uint8(0), uint8(0), false) // heavy loss, no retry -> hang caught

	f.Fuzz(func(t *testing.T, seed uint64, ranksB, bodyB, lossB, dupB, delayB, crashB uint8, retry bool) {
		ranks := 2 + int(ranksB)%11 // 2..12
		sc := &fault.Scenario{Seed: seed}
		if lossB > 0 {
			sc.Loss = []fault.LossSpec{{Prob: float64(lossB) / 512, From: fault.AnyRank, To: fault.AnyRank}}
		}
		if dupB > 0 {
			sc.Duplicate = []fault.DupSpec{{Prob: float64(dupB) / 512, From: fault.AnyRank, To: fault.AnyRank}}
		}
		if delayB > 0 {
			sc.Delay = []fault.DelaySpec{{
				Prob: float64(delayB) / 512, Extra: 1e-4, Jitter: 1e-4,
				From: fault.AnyRank, To: fault.AnyRank,
			}}
		}
		if crashB > 0 {
			sc.Crashes = []fault.CrashSpec{{Rank: int(crashB) % ranks, Time: float64(crashB) * 5e-5}}
		}
		if retry {
			sc.Retry = &fault.RetryConfig{Timeout: 5e-4, Backoff: 2, MaxRetries: 8}
		}
		cfg := Config{
			Ranks: ranks, Machine: machine.IBMSP(), Comm: Analytic,
			Faults: sc,
			// Lost messages without retries hang receivers by design; the
			// watchdog and event budget keep every input terminating.
			Limits: sim.Limits{StallEvents: 20_000, MaxEvents: 300_000},
		}
		body := fuzzBodies[int(bodyB)%len(fuzzBodies)]
		rep, err := Run(cfg, body)
		if err != nil {
			var ae *sim.AbortError
			if !errors.As(err, &ae) {
				t.Fatalf("run failed with a non-abort error: %v", err)
			}
		}
		if rep == nil {
			if err == nil {
				t.Fatal("nil report without error")
			}
			return
		}
		if rep.Time < 0 || math.IsNaN(rep.Time) || math.IsInf(rep.Time, 0) {
			t.Fatalf("bad run time %g", rep.Time)
		}
		for i, rs := range rep.Ranks {
			if rs.FinishTime < 0 || float64(rs.FinishTime) > rep.Time+1e-9 {
				t.Fatalf("rank %d finish %g outside [0, %g]", i, float64(rs.FinishTime), rep.Time)
			}
			if rs.FaultBlocked < 0 || rs.FaultBlocked > rs.BlockedTime+1e-12 {
				t.Fatalf("rank %d FaultBlocked %g outside [0, BlockedTime=%g]",
					i, float64(rs.FaultBlocked), float64(rs.BlockedTime))
			}
			if rs.FaultTime < rs.FaultBlocked-1e-12 {
				t.Fatalf("rank %d FaultTime %g < FaultBlocked %g",
					i, float64(rs.FaultTime), float64(rs.FaultBlocked))
			}
			if !rep.Partial {
				faultCPU := rs.FaultTime - rs.FaultBlocked
				pure := rs.ComputeTime - rs.DelayTime - rs.CommCPUTime - faultCPU
				sum := pure + rs.DelayTime + rs.CommCPUTime +
					(rs.BlockedTime - rs.FaultBlocked) + rs.FaultTime
				if math.Abs(float64(sum-rs.FinishTime)) > 1e-9*math.Max(1, float64(rs.FinishTime)) {
					t.Fatalf("rank %d components sum %g != finish %g",
						i, float64(sum), float64(rs.FinishTime))
				}
			}
		}
	})
}

// fuzzBodies are the program shapes the fuzzer exercises, modeled on
// the repo's benchmark applications. Crashed ranks abandon their part
// of the pattern, so peers may starve — that must surface as a clean
// watchdog/deadlock abort, never a hang or panic.
var fuzzBodies = []func(*Rank){
	// tomcatv shape: ring shift then a residual allreduce per iteration.
	func(r *Rank) {
		p := r.Size()
		for i := 0; i < 4; i++ {
			r.Delay(1e-4)
			r.Send((r.Rank()+1)%p, 1, 512, nil)
			r.Recv((r.Rank()-1+p)%p, 1)
			r.Allreduce([]float64{float64(r.Rank())}, 8, OpSum)
		}
	},
	// sweep3d shape: wavefront — wait upstream, compute, push downstream.
	func(r *Rank) {
		for i := 0; i < 4; i++ {
			if r.Rank() > 0 {
				r.Recv(r.Rank()-1, 2)
			}
			r.Compute(5e-5)
			if r.Rank() < r.Size()-1 {
				r.Send(r.Rank()+1, 2, 256, nil)
			}
		}
	},
	// NAS SP shape: compute phases separated by transposes (alltoall).
	func(r *Rank) {
		chunks := make([][]float64, r.Size())
		for i := range chunks {
			chunks[i] = []float64{1}
		}
		for i := 0; i < 3; i++ {
			r.Compute(1e-4)
			r.Alltoall(chunks, 64)
		}
	},
	// Collective-heavy: bcast/reduce/barrier rounds.
	func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Bcast(0, []float64{1, 2}, 16)
			r.Compute(5e-5)
			r.Reduce(0, []float64{float64(r.Rank())}, 8, OpMax)
			r.Barrier()
		}
	},
}
