package mpi

import "fmt"

// Call is one recorded API-level MPI operation, captured under
// Config.RecordCalls. The sequence of calls per rank is everything a
// replay needs to reproduce the predicted schedule: payload values never
// affect timing (only sizes do), so calls carry sizes and metadata but
// no data. Composed operations record as a single call (an Allreduce
// is one "allreduce", not its constituent reduce+bcast), and
// nonblocking operations record at the point their cost lands: Isend as
// a "send" (the eager model buffers immediately), Irecv at its Wait as
// a "recv".
type Call struct {
	// Op names the operation: compute, delay, send, recv, sendrecv,
	// bcast, reduce, allreduce, barrier, gather, scatter, allgather,
	// alltoall.
	Op string
	// Sec is the local-work duration of a compute or delay, in seconds.
	Sec float64
	// Task is the condensed-task attribution of a delay ("" = none).
	Task string
	// Peer is the destination rank of a send / sendrecv send leg, or
	// the source rank of a recv (AnySource for the wildcard).
	Peer int
	// Tag is the message tag of the Peer leg.
	Tag int
	// Bytes is the message size of a send, the receiver's declared size
	// of a recv (what the AbstractComm model charges), or the
	// per-participant payload size of a collective.
	Bytes int64
	// Peer2 and Tag2 are the receive leg of a sendrecv.
	Peer2 int
	Tag2  int
	// Root is the root rank of a rooted collective (bcast, reduce,
	// gather, scatter).
	Root int
	// Sizes holds per-destination chunk bytes of a variable-size
	// scatter (recorded at the root only) or alltoall.
	Sizes []int64
}

// noRecord is the shared no-op closer returned while recording is off,
// so disabled runs pay no allocation per call.
var noRecord = func() {}

// record captures an API-level call when recording is enabled and
// returns the closer that ends the call's recording scope. Use as
//
//	defer r.record(Call{...})()
//
// at the top of a public MPI method. Only depth-0 calls are kept:
// operations issued while another recorded call is in flight (a
// collective's constituent messages, the receive leg of a Sendrecv)
// are implementation detail that replaying the outer call re-derives.
// Arguments are captured before execution, so a run that crashes
// mid-call still records the call and replays to the same schedule
// under the same fault scenario.
func (r *Rank) record(c Call) func() {
	if !r.world.cfg.RecordCalls {
		return noRecord
	}
	if r.recDepth == 0 {
		r.calls = append(r.calls, c)
	}
	r.recDepth++
	return r.endRecord
}

func (r *Rank) endRecord() { r.recDepth-- }

// CommByName maps a communication-model name (the CommModel.String
// forms) back to the model, for consumers that persist the model choice
// (recorded traces, job specs).
func CommByName(name string) (CommModel, error) {
	switch name {
	case "analytic", "":
		return Analytic, nil
	case "detailed":
		return Detailed, nil
	case "abstract":
		return AbstractComm, nil
	}
	return 0, fmt.Errorf("mpi: unknown communication model %q", name)
}
