package mpi

import (
	"mpisim/internal/fault"
	"mpisim/internal/net"
	"mpisim/internal/sim"
)

// Topology-mode communication: when the machine model names a non-flat
// topology, the world spawns one extra simulated process — the fabric —
// that owns the interconnect's per-link busy-until state. Senders do not
// compute arrival times themselves (link occupancy depends on every
// other rank's traffic); they send a *claim* to the fabric carrying the
// final destination, and the fabric resolves the route, serializes the
// message across each link's horizon, and re-issues it to the true
// destination with the original sender envelope.
//
// Determinism: claims reach the fabric through the kernel, so it
// processes them in the kernel's global (arrival, sender, sequence)
// order — the same order under every engine and host worker count. The
// busy-until state therefore replays identically, and so do all
// contention delays. The conservative lookahead stays valid because the
// claim leg costs exactly ClaimLatency = MinHopLat/2 and the forward leg
// at least the path latency ≥ MinHopLat, i.e. ≥ ClaimLatency beyond the
// claim; intra-node transfers bypass the fabric and bound the lookahead
// by IntraLat instead (see net.Network.Lookahead).

// netDone is the RelayDst sentinel of a rank's end-of-traffic claim: the
// fabric exits once every rank has retired.
const netDone = -1

// fabricCont builds the fabric's continuation chain (sim.SpawnCont):
// the fabric is pure event-reactive state — per-link busy-until, the
// non-overtaking clamp, a retirement count — so it runs inline on its
// worker's goroutine instead of occupying a blocked goroutine between
// claims. The handler is a single self-referencing closure, allocated
// once at spawn; each claim is priced and forwarded without any host
// scheduling at all.
func (w *World) fabricCont() sim.Cont {
	fab := w.fabric
	nw := w.net
	claimLat := sim.Time(nw.ClaimLatency())
	// MPI non-overtaking across the fabric: per (src,dst) pair, a
	// fault-delayed message must not be overtaken by a later one. (The
	// pure contention model is FIFO per route by construction.)
	last := make(map[int64]sim.Time)
	remaining := w.cfg.Ranks
	var onClaim sim.Cont
	onClaim = func(p *sim.Proc, m *sim.Message) sim.Cont {
		if m != nil {
			if m.RelayDst != netDone {
				relayClaim(p, fab, nw, claimLat, last, m)
			} else {
				// End-of-traffic claim: the message carries no payload to
				// relay. (Freed after its last read — the msgown analyzer
				// checks by position.)
				remaining--
				p.FreeMessage(m)
				if remaining == 0 {
					return nil
				}
			}
		}
		p.WaitRecv(sim.Any, sim.Any)
		return onClaim
	}
	return onClaim
}

// relayClaim prices one fabric claim and re-issues the message to its
// true destination, envelope preserved.
func relayClaim(p *sim.Proc, fab *net.Fabric, nw *net.Network,
	claimLat sim.Time, last map[int64]sim.Time, m *sim.Message) {
	src, dst := m.From, m.RelayDst
	srcHost, dstHost := nw.RankHost[src], nw.RankHost[dst]
	// The claim leg cost exactly claimLat, so the sender handed the
	// message to the network at Arrival - claimLat; link occupancy
	// starts there.
	inject := float64(m.Arrival - claimLat)
	at, wait := fab.Claim(srcHost, dstHost, m.Size, inject)
	arrival := sim.Time(at) + m.FaultDelay
	key := int64(src)<<32 | int64(dst)
	if l := last[key]; arrival < l {
		arrival = l
	}
	last[key] = arrival
	m.NetWait = sim.Time(wait)
	m.Hops = len(nw.Route(srcHost, dstHost).Links)
	p.Forward(m, dst, arrival)
}

// sendNet issues a message under a non-flat topology: node-local
// transfers go directly (uncontended memory copy), inter-host transfers
// go through the fabric claim protocol. The sender-side CPU cost is the
// same LogGP overhead as the flat model.
func (r *Rank) sendNet(dst, tag int, size int64, data interface{}, fate fault.MsgFate) {
	w := r.world
	nw := w.net
	n := &w.cfg.Machine.Net
	now := r.proc.Now()
	srcHost, dstHost := nw.RankHost[r.rank], nw.RankHost[dst]
	cpu := sim.Time(n.SendOverhead)
	inject := now + cpu
	if w.cfg.Comm == Detailed {
		// NIC occupancy serializes injection exactly as in the flat model.
		start := now
		if r.nicSendFree > start {
			start = r.nicSendFree
		}
		occupancy := sim.Time(n.SendOverhead + float64(size)*n.GapPerByte)
		r.nicSendFree = start + occupancy
		inject = start + occupancy
	}
	var faultDelay sim.Time
	if r.faults != nil {
		// Link-slowdown factors price against the real topology path
		// (the uncontended route delay), not the flat analytic scalar.
		faultDelay = sim.Time(fate.RetryWait + fate.ExtraDelay +
			(fate.LinkFactor-1)*nw.UncontendedDelay(srcHost, dstHost, size))
	}
	if srcHost == dstHost {
		// Intra-node: never routed; clamped sender-side for
		// non-overtaking, like the flat model.
		arrival := inject + sim.Time(nw.IntraDelay(size)) + faultDelay
		if r.lastArrival == nil {
			r.lastArrival = make(map[int]sim.Time)
		}
		if l := r.lastArrival[dst]; arrival < l {
			arrival = l
		}
		r.lastArrival[dst] = arrival
		r.proc.SendTagFault(dst, tag, data, size, arrival, faultDelay)
		r.netIntraMsgs++
		r.netIntraBytes += size
	} else {
		claim := inject + sim.Time(nw.ClaimLatency())
		r.proc.SendVia(w.netProc, dst, tag, data, size, claim, faultDelay)
	}
	r.commCPU += cpu
	r.segment(r.Now(), r.Now()+float64(cpu), SegComm)
	r.proc.Advance(cpu)
}

// sendNetDone retires this rank with the fabric. Called when the rank's
// body returns (normally or at an injected crash), after which the rank
// issues no further claims.
func (r *Rank) sendNetDone() {
	w := r.world
	arrival := r.proc.Now() + sim.Time(w.net.ClaimLatency())
	r.proc.SendVia(w.netProc, netDone, 0, nil, 0, arrival, 0)
}

// netStats assembles the run's network summary.
func (w *World) netStats(runTime float64) *net.Stats {
	st := &net.Stats{
		Topology:   w.net.Spec,
		Placement:  w.net.Placement,
		Hosts:      w.net.Hosts,
		LinkCount:  len(w.net.Links),
		InterMsgs:  w.fabric.Msgs,
		InterBytes: w.fabric.Bytes,
		Wait:       w.fabric.Wait,
		Links:      w.fabric.Summary(runTime),
	}
	for _, r := range w.ranks {
		st.IntraMsgs += r.netIntraMsgs
		st.IntraBytes += r.netIntraBytes
	}
	return st
}

// publishNetMetrics flushes the network summary into the metrics
// registry, alongside the kernel's simulator-plane counters. Per-link
// detail lives in Report.Net (and the mpireport congestion section);
// here the aggregate and the worst link are exposed.
func (w *World) publishNetMetrics(st *net.Stats) {
	reg := w.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("net_msgs_routed_total", "messages routed through the interconnect fabric").Add(0, st.InterMsgs)
	reg.Counter("net_bytes_routed_total", "payload bytes routed through the interconnect fabric").Add(0, st.InterBytes)
	reg.Counter("net_msgs_intranode_total", "node-local messages that bypassed the fabric").Add(0, st.IntraMsgs)
	reg.Counter("net_contention_wait_us_total", "virtual microseconds messages queued on busy links").Add(0, int64(st.Wait*1e6))
	reg.Counter("net_links_used_total", "links that carried at least one message").Add(0, int64(len(st.Links)))
	if len(st.Links) > 0 {
		top := st.Links[0]
		reg.Gauge("net_top_link_wait_us", "contention wait on the most contended link (virtual microseconds)").Set(0, int64(top.Wait*1e6))
		reg.Gauge("net_top_link_utilization_ppm", "utilization of the most contended link (parts per million of the run)").Set(0, int64(top.Utilization*1e6))
	}
}
