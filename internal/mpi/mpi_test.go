package mpi

import (
	"math"
	"strings"
	"testing"

	"mpisim/internal/machine"
)

func testConfig(ranks int) Config {
	return Config{Ranks: ranks, Machine: machine.IBMSP(), Comm: Analytic}
}

func mustRun(t *testing.T, cfg Config, body func(*Rank)) *Report {
	t.Helper()
	rep, err := Run(cfg, body)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 0, Machine: machine.IBMSP()}); err == nil {
		t.Fatal("expected error for 0 ranks")
	}
	if _, err := NewWorld(Config{Ranks: 2}); err == nil {
		t.Fatal("expected error for missing machine")
	}
	bad := *machine.IBMSP()
	bad.OpTime = 0
	if _, err := NewWorld(Config{Ranks: 2, Machine: &bad}); err == nil {
		t.Fatal("expected error for invalid machine")
	}
}

func TestRankIdentity(t *testing.T) {
	seen := make([]bool, 4)
	mustRun(t, testConfig(4), func(r *Rank) {
		if r.Size() != 4 {
			panic("wrong size")
		}
		seen[r.Rank()] = true
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("rank %d body did not run", i)
		}
	}
}

func TestSendRecvPayload(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, 800, []float64{1, 2, 3})
		} else {
			size, data := r.Recv(0, 7)
			if size != 800 {
				panic("wrong size")
			}
			v := data.([]float64)
			if v[0] != 1 || v[2] != 3 {
				panic("wrong payload")
			}
		}
	})
}

func TestRecvTimeAnalytic(t *testing.T) {
	m := machine.IBMSP()
	var recvDone float64
	mustRun(t, Config{Ranks: 2, Machine: m, Comm: Analytic}, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 1000, nil)
		} else {
			r.Recv(0, 0)
			recvDone = r.Now()
		}
	})
	want := m.Net.SendOverhead + m.Net.AnalyticDelay(1000) + m.Net.RecvOverhead
	if math.Abs(recvDone-want) > 1e-12 {
		t.Fatalf("recv completion %v, want %v", recvDone, want)
	}
}

func TestDetailedAtLeastAnalytic(t *testing.T) {
	// Under load, the detailed model (NIC occupancy) must be no faster
	// than the analytic model.
	body := func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 20; i++ {
				r.Send(1, i, 100000, nil)
			}
		} else {
			for i := 0; i < 20; i++ {
				r.Recv(0, i)
			}
		}
	}
	m := machine.IBMSP()
	a := mustRun(t, Config{Ranks: 2, Machine: m, Comm: Analytic}, body)
	d := mustRun(t, Config{Ranks: 2, Machine: m, Comm: Detailed}, body)
	if d.Time < a.Time {
		t.Fatalf("detailed (%v) faster than analytic (%v)", d.Time, a.Time)
	}
}

func TestNonOvertaking(t *testing.T) {
	// A large message followed by a tiny one between the same pair must
	// be received in send order.
	mustRun(t, testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, 10_000_000, "big")
			r.Send(1, 5, 1, "small")
		} else {
			_, first := r.Recv(0, 5)
			_, second := r.Recv(0, 5)
			if first != "big" || second != "small" {
				panic("messages overtook each other")
			}
		}
	})
}

func TestSendrecvShift(t *testing.T) {
	// Classic shift: everyone sends right, receives from left.
	const n = 5
	mustRun(t, testConfig(n), func(r *Rank) {
		right := (r.Rank() + 1) % n
		left := (r.Rank() - 1 + n) % n
		_, data := r.Sendrecv(right, 1, 8, []float64{float64(r.Rank())}, left, 1)
		got := data.([]float64)[0]
		if got != float64(left) {
			panic("wrong shift data")
		}
	})
}

func TestIsendIrecvWait(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			req := r.Isend(1, 3, 64, "x")
			req.Wait() // no-op for sends
		} else {
			req := r.Irecv(0, 3)
			size, data := req.Wait()
			if size != 64 || data != "x" {
				panic("irecv wrong")
			}
			// Waiting again returns the same result.
			size2, _ := req.Wait()
			if size2 != 64 {
				panic("double wait wrong")
			}
		}
	})
}

func TestWaitall(t *testing.T) {
	mustRun(t, testConfig(3), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 0, 8, nil)
			r.Send(2, 0, 8, nil)
		} else {
			reqs := []*Request{r.Irecv(0, 0)}
			r.Waitall(reqs)
		}
	})
}

func TestSelfSend(t *testing.T) {
	mustRun(t, testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(0, 9, 128, "self")
			_, data := r.Recv(0, 9)
			if data != "self" {
				panic("self message lost")
			}
		}
	})
}

func TestDelayForwardsClock(t *testing.T) {
	rep := mustRun(t, testConfig(1), func(r *Rank) {
		r.Delay(2.5)
		r.Delay(-1) // clamped to zero
	})
	if rep.Time != 2.5 {
		t.Fatalf("Time = %v, want 2.5", rep.Time)
	}
	if rep.Ranks[0].DelayTime != 2.5 {
		t.Fatalf("DelayTime = %v, want 2.5", rep.Ranks[0].DelayTime)
	}
}

func TestComputeNegativePanics(t *testing.T) {
	_, err := Run(testConfig(1), func(r *Rank) { r.Compute(-1) })
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("expected negative compute error, got %v", err)
	}
}

func TestReadTaskTime(t *testing.T) {
	cfg := testConfig(4)
	cfg.TaskTimes = map[string]float64{"w_1": 3.25e-8}
	vals := make([]float64, 4)
	mustRun(t, cfg, func(r *Rank) {
		vals[r.Rank()] = r.ReadTaskTime("w_1")
	})
	for i, v := range vals {
		if v != 3.25e-8 {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestBcastValues(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 16} {
		for root := 0; root < n; root += max(1, n/3) {
			got := make([]float64, n)
			cfg := testConfig(n)
			root := root
			mustRun(t, cfg, func(r *Rank) {
				var data []float64
				if r.Rank() == root {
					data = []float64{42.5}
				}
				out := r.Bcast(root, data, 8)
				got[r.Rank()] = out[0]
			})
			for i, v := range got {
				if v != 42.5 {
					t.Fatalf("n=%d root=%d: rank %d got %v", n, root, i, v)
				}
			}
		}
	}
}

func TestBcastNilData(t *testing.T) {
	// Simplified programs broadcast timing-only messages.
	mustRun(t, testConfig(5), func(r *Rank) {
		out := r.Bcast(0, nil, 1024)
		if out != nil {
			panic("expected nil data")
		}
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 9} {
		var rootGot []float64
		mustRun(t, testConfig(n), func(r *Rank) {
			out := r.Reduce(0, []float64{float64(r.Rank() + 1), 1}, 16, OpSum)
			if r.Rank() == 0 {
				rootGot = out
			} else if out != nil {
				panic("non-root got a reduce result")
			}
		})
		want := float64(n * (n + 1) / 2)
		if rootGot[0] != want || rootGot[1] != float64(n) {
			t.Fatalf("n=%d: reduce got %v, want [%v %v]", n, rootGot, want, n)
		}
	}
}

func TestReduceNonzeroRoot(t *testing.T) {
	const n = 6
	var got []float64
	mustRun(t, testConfig(n), func(r *Rank) {
		out := r.Reduce(4, []float64{1}, 8, OpSum)
		if r.Rank() == 4 {
			got = out
		}
	})
	if got[0] != n {
		t.Fatalf("reduce at root 4: got %v, want %v", got[0], n)
	}
}

func TestAllreduceOps(t *testing.T) {
	const n = 7
	sums := make([]float64, n)
	maxs := make([]float64, n)
	mins := make([]float64, n)
	mustRun(t, testConfig(n), func(r *Rank) {
		me := float64(r.Rank())
		sums[r.Rank()] = r.Allreduce([]float64{me}, 8, OpSum)[0]
		maxs[r.Rank()] = r.Allreduce([]float64{me}, 8, OpMax)[0]
		mins[r.Rank()] = r.Allreduce([]float64{me}, 8, OpMin)[0]
	})
	for i := 0; i < n; i++ {
		if sums[i] != 21 || maxs[i] != 6 || mins[i] != 0 {
			t.Fatalf("rank %d: sum=%v max=%v min=%v", i, sums[i], maxs[i], mins[i])
		}
	}
}

func TestAllreduceResultNotShared(t *testing.T) {
	// Mutating one rank's allreduce result must not affect another's.
	const n = 3
	results := make([][]float64, n)
	mustRun(t, testConfig(n), func(r *Rank) {
		out := r.Allreduce([]float64{1}, 8, OpSum)
		out[0] += float64(r.Rank()) * 100
		results[r.Rank()] = out
	})
	if results[0][0] == results[1][0] || results[1][0] == results[2][0] {
		t.Fatalf("allreduce results aliased: %v", results)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 6
	after := make([]float64, n)
	mustRun(t, testConfig(n), func(r *Rank) {
		// Stagger arrival times.
		r.Compute(float64(r.Rank()) * 1e-3)
		r.Barrier()
		after[r.Rank()] = r.Now()
	})
	// Everyone must leave the barrier no earlier than the last arrival.
	for i := 0; i < n; i++ {
		if after[i] < float64(n-1)*1e-3 {
			t.Fatalf("rank %d left barrier at %v, before last arrival", i, after[i])
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 5
	var gathered [][]float64
	scattered := make([]float64, n)
	mustRun(t, testConfig(n), func(r *Rank) {
		g := r.Gather(0, []float64{float64(r.Rank() * 10)}, 8)
		if r.Rank() == 0 {
			gathered = g
		}
		var chunks [][]float64
		if r.Rank() == 0 {
			chunks = make([][]float64, n)
			for i := range chunks {
				chunks[i] = []float64{float64(i + 100)}
			}
		}
		mine := r.Scatter(0, chunks, 8)
		scattered[r.Rank()] = mine[0]
	})
	for i := 0; i < n; i++ {
		if gathered[i][0] != float64(i*10) {
			t.Fatalf("gather[%d] = %v", i, gathered[i])
		}
		if scattered[i] != float64(i+100) {
			t.Fatalf("scatter[%d] = %v", i, scattered[i])
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6} {
		results := make([][][]float64, n)
		mustRun(t, testConfig(n), func(r *Rank) {
			results[r.Rank()] = r.Allgather([]float64{float64(r.Rank())}, 8)
		})
		for rk := 0; rk < n; rk++ {
			for src := 0; src < n; src++ {
				if results[rk][src][0] != float64(src) {
					t.Fatalf("n=%d rank %d slot %d = %v", n, rk, src, results[rk][src])
				}
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	results := make([][][]float64, n)
	mustRun(t, testConfig(n), func(r *Rank) {
		chunks := make([][]float64, n)
		for d := range chunks {
			chunks[d] = []float64{float64(r.Rank()*100 + d)}
		}
		results[r.Rank()] = r.Alltoall(chunks, 8)
	})
	for rk := 0; rk < n; rk++ {
		for src := 0; src < n; src++ {
			want := float64(src*100 + rk)
			if results[rk][src][0] != want {
				t.Fatalf("alltoall[%d][%d] = %v, want %v", rk, src, results[rk][src][0], want)
			}
		}
	}
}

func TestCollectivesCountAndTime(t *testing.T) {
	rep := mustRun(t, testConfig(4), func(r *Rank) {
		r.Barrier()
		r.Allreduce([]float64{1}, 8, OpSum)
	})
	if rep.Time <= 0 {
		t.Fatal("collectives consumed no simulated time")
	}
	for i, rs := range rep.Ranks {
		// Barrier = reduce+bcast, Allreduce = reduce+bcast: 4 each.
		if rs.Collectives != 4 {
			t.Fatalf("rank %d Collectives = %d, want 4", i, rs.Collectives)
		}
	}
}

func TestMemoryTracking(t *testing.T) {
	rep := mustRun(t, testConfig(2), func(r *Rank) {
		r.TrackAlloc(1000)
		r.TrackAlloc(500)
		r.TrackFree(300)
	})
	for _, rs := range rep.Ranks {
		if rs.PeakBytes != 1500 {
			t.Fatalf("PeakBytes = %d, want 1500", rs.PeakBytes)
		}
		if rs.CurBytes != 1200 {
			t.Fatalf("CurBytes = %d, want 1200", rs.CurBytes)
		}
	}
	if rep.TotalPeakBytes != 3000 {
		t.Fatalf("TotalPeakBytes = %d, want 3000", rep.TotalPeakBytes)
	}
	if rep.MaxRankPeakBytes != 1500 {
		t.Fatalf("MaxRankPeakBytes = %d", rep.MaxRankPeakBytes)
	}
}

func TestMemoryLimitEnforced(t *testing.T) {
	cfg := testConfig(2)
	cfg.MemoryLimit = 1000
	_, err := Run(cfg, func(r *Rank) {
		r.TrackAlloc(800) // 2 ranks x 800 > 1000
	})
	if err == nil {
		t.Fatal("expected memory limit error")
	}
	if !strings.Contains(err.Error(), "memory limit") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestIsMemoryLimit(t *testing.T) {
	err := &MemoryLimitError{Used: 10, Limit: 5}
	if !IsMemoryLimit(err) {
		t.Fatal("IsMemoryLimit(MemoryLimitError) = false")
	}
	if IsMemoryLimit(nil) {
		t.Fatal("IsMemoryLimit(nil) = true")
	}
	if IsMemoryLimit(errOther) {
		t.Fatal("IsMemoryLimit(other error) = true")
	}
}

var errOther = fmtError("other")

type fmtError string

func (e fmtError) Error() string { return string(e) }

func TestParallelEngineEquivalence(t *testing.T) {
	// The same program must yield identical predicted time under the
	// sequential engine and the conservative parallel engine.
	body := func(r *Rank) {
		n := r.Size()
		for iter := 0; iter < 3; iter++ {
			right := (r.Rank() + 1) % n
			left := (r.Rank() - 1 + n) % n
			r.Compute(1e-4 * float64(r.Rank()+1))
			r.Sendrecv(right, iter, 4096, nil, left, iter)
			r.Allreduce([]float64{float64(r.Rank())}, 8, OpSum)
		}
	}
	base := mustRun(t, Config{Ranks: 8, Machine: machine.IBMSP()}, body)
	for _, hw := range []int{2, 4, 8} {
		for _, real := range []bool{false, true} {
			cfg := Config{Ranks: 8, Machine: machine.IBMSP(), HostWorkers: hw, RealParallel: real}
			got := mustRun(t, cfg, body)
			if got.Time != base.Time {
				t.Fatalf("hostWorkers=%d real=%v: time %v != %v", hw, real, got.Time, base.Time)
			}
		}
	}
}

func TestSendInvalidRank(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) { r.Send(5, 0, 1, nil) })
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("expected invalid rank error, got %v", err)
	}
}

func TestBcastRootValidation(t *testing.T) {
	_, err := Run(testConfig(2), func(r *Rank) { r.Bcast(7, nil, 8) })
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected root range error, got %v", err)
	}
}

func TestAnyTagAndAnySource(t *testing.T) {
	mustRun(t, testConfig(3), func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(2, 11, 8, "from0")
		case 1:
			// guarantee ordering: rank1 sends later in simulated time
			r.Compute(1)
			r.Send(2, 12, 8, "from1")
		case 2:
			_, d1 := r.Recv(AnySource, AnyTag)
			_, d2 := r.Recv(AnySource, AnyTag)
			if d1 != "from0" || d2 != "from1" {
				panic("any-source order wrong")
			}
		}
	})
}

func TestCommMatrix(t *testing.T) {
	cfg := testConfig(3)
	cfg.CollectMatrix = true
	rep := mustRun(t, cfg, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1, 100, nil)
			r.Send(1, 2, 50, nil)
			r.Send(2, 3, 25, nil)
		}
		switch r.Rank() {
		case 1:
			r.Recv(0, 1)
			r.Recv(0, 2)
		case 2:
			r.Recv(0, 3)
		}
	})
	if rep.MsgMatrix == nil {
		t.Fatal("matrix not collected")
	}
	if rep.MsgMatrix[0][1] != 2 || rep.MsgMatrix[0][2] != 1 {
		t.Fatalf("MsgMatrix = %v", rep.MsgMatrix)
	}
	if rep.ByteMatrix[0][1] != 150 || rep.ByteMatrix[0][2] != 25 {
		t.Fatalf("ByteMatrix = %v", rep.ByteMatrix)
	}
	// Without the flag the matrices stay nil.
	rep2 := mustRun(t, testConfig(2), func(r *Rank) {})
	if rep2.MsgMatrix != nil {
		t.Fatal("matrix collected without the flag")
	}
}

func TestAbstractCommModel(t *testing.T) {
	cfg := testConfig(4)
	cfg.Comm = AbstractComm
	rep := mustRun(t, cfg, func(r *Rank) {
		r.Send((r.Rank()+1)%4, 1, 1000, nil)
		n, payload := r.RecvSized((r.Rank()+3)%4, 1, 1000)
		if payload != nil {
			panic("abstract comm transported a payload")
		}
		if n != 1000 {
			panic("wrong declared size")
		}
		r.Allreduce([]float64{1}, 8, OpSum)
		r.Barrier()
		r.Bcast(0, nil, 64)
	})
	if rep.Kernel.Delivered != 0 {
		t.Fatalf("abstract model delivered %d kernel messages", rep.Kernel.Delivered)
	}
	if rep.Time <= 0 {
		t.Fatal("abstract comm charged no time")
	}
}

func TestAbstractCommCheaperThanAnalytic(t *testing.T) {
	body := func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Allreduce([]float64{float64(i)}, 8, OpSum)
		}
	}
	a := mustRun(t, testConfig(8), body)
	cfg := testConfig(8)
	cfg.Comm = AbstractComm
	ab := mustRun(t, cfg, body)
	// Closed-form costs approximate the tree: same order of magnitude.
	if ab.Time <= 0 || ab.Time > 3*a.Time {
		t.Fatalf("abstract %g vs analytic %g diverge", ab.Time, a.Time)
	}
}

func TestDelayByTask(t *testing.T) {
	rep := mustRun(t, testConfig(2), func(r *Rank) {
		r.DelayTask("w_1", 0.5)
		r.DelayTask("w_2", 0.25)
		r.DelayTask("w_1", 0.5)
		r.Delay(0.1) // unattributed
	})
	if rep.DelayByTask["w_1"] != 2.0 || rep.DelayByTask["w_2"] != 0.5 {
		t.Fatalf("DelayByTask = %v", rep.DelayByTask)
	}
	for _, rs := range rep.Ranks {
		if rs.DelayTime != 1.35 {
			t.Fatalf("DelayTime = %v", rs.DelayTime)
		}
	}
}

func TestAbstractGatherScatterAllgatherAlltoall(t *testing.T) {
	cfg := testConfig(4)
	cfg.Comm = AbstractComm
	rep := mustRun(t, cfg, func(r *Rank) {
		r.Gather(0, []float64{1}, 8)
		r.Scatter(0, nil, 8)
		r.Allgather([]float64{2}, 8)
		r.Alltoall(nil, 8)
	})
	if rep.Kernel.Delivered != 0 {
		t.Fatalf("abstract collectives delivered %d messages", rep.Kernel.Delivered)
	}
	if rep.Time <= 0 {
		t.Fatal("abstract collectives cost nothing")
	}
	for _, rs := range rep.Ranks {
		if rs.Collectives != 4 {
			t.Fatalf("Collectives = %d", rs.Collectives)
		}
	}
}

func TestRecvSizedIgnoredByEventModels(t *testing.T) {
	// Under event models, the declared size is ignored; the real message
	// size is returned.
	mustRun(t, testConfig(2), func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 1, 640, nil)
		} else {
			n, _ := r.RecvSized(0, 1, 9999)
			if n != 640 {
				panic("RecvSized did not return the real size")
			}
		}
	})
}

func TestDetailedSelfSend(t *testing.T) {
	cfg := testConfig(1)
	cfg.Comm = Detailed
	rep := mustRun(t, cfg, func(r *Rank) {
		r.Send(0, 1, 4096, "x")
		_, d := r.Recv(0, 1)
		if d != "x" {
			panic("self payload lost")
		}
	})
	if rep.Time <= 0 {
		t.Fatal("self send free under detailed model")
	}
}
