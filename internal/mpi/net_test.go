package mpi

import (
	"encoding/json"
	"testing"

	"mpisim/internal/fault"
	"mpisim/internal/machine"
	"mpisim/internal/sim"
)

func netConfig(ranks int, topo, place string) Config {
	m := machine.IBMSP()
	m.Topology = topo
	m.Placement = place
	return Config{Ranks: ranks, Machine: m, Comm: Analytic}
}

// reportJSON marshals a report with the kernel meta-result dropped: the
// kernel's window/cross-worker accounting depends on the host
// configuration by design; the simulation payload must not.
func reportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	rep.Kernel = nil
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestNetFlatByteIdentical pins the tentpole's zero-cost guarantee: a
// machine with Topology "flat" (or unset) produces a byte-identical
// report to the seed analytic model, including traces and matrices.
func TestNetFlatByteIdentical(t *testing.T) {
	run := func(topo string) string {
		cfg := netConfig(16, topo, "")
		cfg.CollectMatrix = true
		cfg.CollectTrace = true
		return reportJSON(t, mustRun(t, cfg, sweepBody(20)))
	}
	if run("") != run("flat") {
		t.Fatal("flat topology diverged from the seed analytic model")
	}
}

// TestNetDeterminism is the topology analogue of TestFaultDeterminism:
// torus, fat-tree and bus runs must be byte-identical across host
// worker counts and repeated runs.
func TestNetDeterminism(t *testing.T) {
	for _, topo := range []string{"bus", "torus:dims=4x4", "fattree:k=4"} {
		run := func(workers int, place string) string {
			cfg := netConfig(16, topo, place)
			cfg.HostWorkers = workers
			cfg.CollectMatrix = true
			cfg.CollectTrace = true
			return reportJSON(t, mustRun(t, cfg, sweepBody(20)))
		}
		a := run(1, "")
		if b := run(1, ""); a != b {
			t.Fatalf("%s: repeated run diverged", topo)
		}
		for _, workers := range []int{2, 8} {
			if c := run(workers, ""); a != c {
				t.Fatalf("%s: %d host workers changed the result", topo, workers)
			}
		}
		if d := run(1, "roundrobin"); a == d {
			t.Fatalf("%s: placement change did not change the result", topo)
		}
		if d1, d2 := run(2, "random:7"), run(8, "random:7"); d1 != d2 {
			t.Fatalf("%s: random placement not deterministic across workers", topo)
		}
	}
}

// TestNetRealParallelDeterminism runs the torus under the real-parallel
// engine and both conservative protocols: same payload as sequential.
func TestNetRealParallelDeterminism(t *testing.T) {
	run := func(workers int, real bool, proto sim.Protocol) string {
		cfg := netConfig(16, "torus:dims=4x4", "")
		cfg.HostWorkers = workers
		cfg.RealParallel = real
		cfg.Protocol = proto
		cfg.CollectTrace = true
		return reportJSON(t, mustRun(t, cfg, sweepBody(20)))
	}
	a := run(1, false, sim.ProtocolWindow)
	if b := run(4, true, sim.ProtocolWindow); a != b {
		t.Fatal("real-parallel window run diverged from sequential")
	}
	if c := run(4, true, sim.ProtocolNullMessage); a != c {
		t.Fatal("real-parallel null-message run diverged from sequential")
	}
}

// TestNetBusSlowerThanFatTree is the contention sanity anchor: the same
// all-to-all traffic must predict strictly more time on one shared bus
// than on a fat-tree with its multiplicity of paths.
func TestNetBusSlowerThanFatTree(t *testing.T) {
	body := func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Alltoall(nil, 64<<10)
		}
	}
	run := func(topo string) *Report {
		return mustRun(t, netConfig(16, topo, ""), body)
	}
	bus, ft := run("bus"), run("fattree:k=4")
	if bus.Time <= ft.Time {
		t.Fatalf("all-to-all on bus (%g s) not slower than fat-tree (%g s)", bus.Time, ft.Time)
	}
	if bus.Net == nil || bus.Net.Wait <= 0 {
		t.Fatalf("bus all-to-all should report contention wait, got %+v", bus.Net)
	}
}

// TestNetContentionAttribution drives a fan-in hotspot over the bus and
// checks the congestion accounting: positive link wait, NetBlocked
// folded into (and bounded by) the kernel's BlockedTime, and the link
// hotspot list populated.
func TestNetContentionAttribution(t *testing.T) {
	cfg := netConfig(8, "bus", "")
	cfg.CollectTrace = true
	rep := mustRun(t, cfg, func(r *Rank) {
		const msgs = 4
		if r.Rank() == 0 {
			for i := 0; i < msgs*(r.Size()-1); i++ {
				r.Recv(AnySource, 3)
			}
			return
		}
		for i := 0; i < msgs; i++ {
			r.Send(0, 3, 128<<10, nil)
		}
	})
	if rep.Net == nil {
		t.Fatal("topology run missing Report.Net")
	}
	if rep.Net.Wait <= 0 {
		t.Fatalf("fan-in over one bus must contend, got wait %g", rep.Net.Wait)
	}
	if len(rep.Net.Links) == 0 || rep.Net.Links[0].Name != "bus" {
		t.Fatalf("hotspot list should lead with the bus link, got %+v", rep.Net.Links)
	}
	if got := rep.Net.InterMsgs; got != 4*7 {
		t.Fatalf("routed message count = %d, want %d", got, 4*7)
	}
	var netBlocked sim.Time
	for i, rs := range rep.Ranks {
		if rs.NetBlocked < 0 || rs.NetBlocked > rs.BlockedTime {
			t.Fatalf("rank %d: NetBlocked %g outside [0, BlockedTime %g]",
				i, float64(rs.NetBlocked), float64(rs.BlockedTime))
		}
		netBlocked += rs.NetBlocked
	}
	if netBlocked <= 0 {
		t.Fatal("receiver should attribute blocked time to contention")
	}
	// The receiver's observed contention cannot exceed what the fabric
	// accumulated (caps only shrink it).
	if float64(netBlocked) > rep.Net.Wait+1e-12 {
		t.Fatalf("NetBlocked sum %g exceeds fabric wait %g", float64(netBlocked), rep.Net.Wait)
	}
}

// TestNetIntraNode places 8 ranks on a 2x2 torus (two ranks per host,
// block placement): neighbour traffic splits into node-local transfers
// that bypass the fabric and routed inter-host transfers.
func TestNetIntraNode(t *testing.T) {
	cfg := netConfig(8, "torus:dims=2x2", "block")
	cfg.CollectTrace = true
	rep := mustRun(t, cfg, sweepBody(5))
	if rep.Net == nil {
		t.Fatal("missing Report.Net")
	}
	if rep.Net.IntraMsgs == 0 {
		t.Fatal("block placement with 2 ranks/host must produce intra-node traffic")
	}
	if rep.Net.InterMsgs == 0 {
		t.Fatal("ring over 4 hosts must produce inter-host traffic")
	}
	// Hop annotation: routed messages carry hops, node-local ones none.
	var withHops, without int
	for _, evs := range rep.CommEvents {
		for _, ev := range evs {
			if ev.Hops > 0 {
				withHops++
			} else {
				without++
			}
		}
	}
	if withHops == 0 || without == 0 {
		t.Fatalf("expected both routed (%d) and node-local (%d) receive events", withHops, without)
	}
}

// TestNetFaultCompose injects loss/retry and a rank-pair link slowdown
// under a torus: the run completes, prices the slowdown against the
// topology path, and stays deterministic across worker counts.
func TestNetFaultCompose(t *testing.T) {
	run := func(workers int) (*Report, string) {
		cfg := netConfig(16, "torus:dims=4x4", "")
		cfg.HostWorkers = workers
		cfg.Faults = lossScenario(11, 0.02, true)
		cfg.Faults.Links = []fault.LinkSpec{{From: 0, To: 1, Factor: 8}}
		rep := mustRun(t, cfg, sweepBody(20))
		return rep, reportJSON(t, rep)
	}
	rep, a := run(1)
	if rep.Faults == nil || rep.Faults.Retransmissions == 0 {
		t.Fatalf("expected retransmissions under loss, got %+v", rep.Faults)
	}
	var faultBlocked sim.Time
	for _, rs := range rep.Ranks {
		faultBlocked += rs.FaultBlocked
	}
	if faultBlocked <= 0 {
		t.Fatal("link slowdown through the topology should produce fault-blocked time")
	}
	if _, b := run(4); a != b {
		t.Fatal("faulted topology run not deterministic across workers")
	}
}

// TestNetCrashRetiresFabric crashes a rank mid-run under a topology:
// the crashed rank must still retire with the fabric so the run
// completes instead of hanging on the fabric process.
func TestNetCrashRetiresFabric(t *testing.T) {
	cfg := netConfig(4, "torus:dims=2x2", "roundrobin")
	cfg.Faults = &fault.Scenario{Crashes: []fault.CrashSpec{{Rank: 2, Time: 0.001}}}
	rep := mustRun(t, cfg, func(r *Rank) {
		// All communication finishes well before the crash fires.
		next := (r.Rank() + 1) % r.Size()
		prev := (r.Rank() - 1 + r.Size()) % r.Size()
		r.Send(next, 1, 1024, nil)
		r.Recv(prev, 1)
		r.Compute(0.01) // rank 2 crashes in here
	})
	if !rep.Ranks[2].Crashed {
		t.Fatal("rank 2 should have crashed")
	}
	if rep.Partial {
		t.Fatal("run should complete: no one waits on rank 2 after its crash")
	}
}

// TestNetAbstractCommIgnoresTopology: AbstractComm simulates no
// messages, so a topology changes nothing (but is still validated).
func TestNetAbstractCommIgnoresTopology(t *testing.T) {
	run := func(topo string) string {
		cfg := netConfig(8, topo, "")
		cfg.Comm = AbstractComm
		return reportJSON(t, mustRun(t, cfg, sweepBody(10)))
	}
	if run("") != run("bus") {
		t.Fatal("AbstractComm result changed under a topology")
	}
	cfg := netConfig(8, "torus:dims=1x4", "")
	cfg.Comm = AbstractComm
	if _, err := NewWorld(cfg); err == nil {
		t.Fatal("invalid topology must be rejected even under AbstractComm")
	}
}

// TestNetBadTopologyRejected: construction-time validation surfaces
// before any simulation runs.
func TestNetBadTopologyRejected(t *testing.T) {
	for _, topo := range []string{
		"mesh",                  // unknown kind
		"torus",                 // missing dims
		"torus:dims=1x4",        // dimension < 2
		"fattree:k=3",           // odd k
		"fattree",               // missing k
		"bus:hosts=0",           // no hosts
		"bus:lat=-1",            // negative latency
		"torus:dims=4x4,typo=1", // unknown option
		"graph:/nonexistent/cfg.json",
	} {
		if _, err := NewWorld(netConfig(8, topo, "")); err == nil {
			t.Errorf("topology %q: expected error", topo)
		}
	}
	if _, err := NewWorld(netConfig(8, "bus", "nearest")); err == nil {
		t.Error("unknown placement: expected error")
	}
}

// TestNetDetailedCommModel: the Detailed (NIC occupancy) model composes
// with a topology and stays deterministic.
func TestNetDetailedCommModel(t *testing.T) {
	run := func(workers int) string {
		cfg := netConfig(16, "fattree:k=4", "")
		cfg.Comm = Detailed
		cfg.HostWorkers = workers
		return reportJSON(t, mustRun(t, cfg, sweepBody(10)))
	}
	if run(1) != run(4) {
		t.Fatal("Detailed+topology run not deterministic across workers")
	}
}

// BenchmarkKernelNet measures the events/sec cost of the network layer
// across topologies; ci.sh gates "off" vs "flat" (<2%: flat must compile
// to the seed fast path) and the torus/fat-tree entries document the
// cost of full contention modeling.
func BenchmarkKernelNet(b *testing.B) {
	bench := func(b *testing.B, topo string) {
		cfg := netConfig(16, topo, "")
		b.ReportAllocs()
		var events int64
		for i := 0; i < b.N; i++ {
			rep, err := Run(cfg, sweepBody(50))
			if err != nil {
				b.Fatal(err)
			}
			events += rep.Kernel.Events
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	}
	b.Run("off", func(b *testing.B) { bench(b, "") })
	b.Run("flat", func(b *testing.B) { bench(b, "flat") })
	b.Run("torus", func(b *testing.B) { bench(b, "torus:dims=4x4") })
	b.Run("fattree", func(b *testing.B) { bench(b, "fattree:k=4") })
}
