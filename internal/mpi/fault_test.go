package mpi

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"mpisim/internal/fault"
	"mpisim/internal/machine"
	"mpisim/internal/sim"
)

// sweepBody is a wavefront-style exchange: each rank computes, then
// shifts a message to the next rank, rounds times.
func sweepBody(rounds int) func(*Rank) {
	return func(r *Rank) {
		p := r.Size()
		for i := 0; i < rounds; i++ {
			r.Delay(1e-4)
			next, prev := (r.Rank()+1)%p, (r.Rank()-1+p)%p
			r.Send(next, 1, 1024, nil)
			r.Recv(prev, 1)
		}
	}
}

func lossScenario(seed uint64, prob float64, retry bool) *fault.Scenario {
	s := &fault.Scenario{
		Seed: seed,
		Loss: []fault.LossSpec{{Prob: prob, From: fault.AnyRank, To: fault.AnyRank}},
	}
	if retry {
		s.Retry = &fault.RetryConfig{Timeout: 5e-4, Backoff: 2, MaxRetries: 16}
	}
	return s
}

// TestLossWithRetriesCompletes is the acceptance scenario: 1% message
// loss on a 64-rank sweep completes under the retry model, runs slower
// than the healthy run, and the fault component sums exactly into the
// decomposition.
func TestLossWithRetriesCompletes(t *testing.T) {
	cfg := testConfig(64)
	healthy := mustRun(t, cfg, sweepBody(40))

	cfg.Faults = lossScenario(42, 0.01, true)
	rep := mustRun(t, cfg, sweepBody(40))
	if rep.Partial {
		t.Fatal("faulted run should complete, not abort")
	}
	if rep.Faults == nil || rep.Faults.Retransmissions == 0 {
		t.Fatalf("expected retransmissions, got %+v", rep.Faults)
	}
	if rep.Time <= healthy.Time {
		t.Fatalf("faulted time %g not slower than healthy %g", rep.Time, healthy.Time)
	}
	// Exact decomposition per rank: Finish = PureCompute + Delay +
	// CommCPU + GenuineWait + Fault, where PureCompute excludes the
	// fault CPU and GenuineWait excludes the fault-explained wait.
	for i, rs := range rep.Ranks {
		faultCPU := rs.FaultTime - rs.FaultBlocked
		pure := rs.ComputeTime - rs.DelayTime - rs.CommCPUTime - faultCPU
		wait := rs.BlockedTime - rs.FaultBlocked
		sum := pure + rs.DelayTime + rs.CommCPUTime + wait + rs.FaultTime
		if math.Abs(float64(sum-rs.FinishTime)) > 1e-9*math.Max(1, float64(rs.FinishTime)) {
			t.Fatalf("rank %d: components sum to %g, finish %g", i, float64(sum), float64(rs.FinishTime))
		}
		if rs.FaultBlocked < 0 || rs.FaultBlocked > rs.BlockedTime {
			t.Fatalf("rank %d: FaultBlocked %g outside [0, BlockedTime=%g]",
				i, float64(rs.FaultBlocked), float64(rs.BlockedTime))
		}
	}
}

// TestLossWithoutRetriesCaughtByWatchdog: the same scenario with
// recovery disabled loses messages for good; the receivers hang and the
// watchdog (or deadlock detector) must catch it with a wait-state dump.
func TestLossWithoutRetriesCaughtByWatchdog(t *testing.T) {
	cfg := testConfig(64)
	cfg.Faults = lossScenario(42, 0.01, false)
	cfg.Limits = sim.Limits{StallEvents: 50_000}
	rep, err := Run(cfg, sweepBody(40))
	var ae *sim.AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("want *sim.AbortError, got %v", err)
	}
	if len(ae.States) != 64 {
		t.Fatalf("wait-state dump has %d entries, want 64", len(ae.States))
	}
	blocked := 0
	for _, s := range ae.States {
		if s.State == "blocked" {
			blocked++
			if !strings.Contains(s.Waiting, "recv") {
				t.Fatalf("blocked rank %d wait detail missing: %+v", s.Proc, s)
			}
		}
	}
	if blocked == 0 {
		t.Fatal("no blocked ranks in the dump")
	}
	if rep == nil || !rep.Partial || rep.AbortReason == "" {
		t.Fatalf("want partial report with abort reason, got %+v", rep)
	}
	if rep.Faults == nil || rep.Faults.Lost == 0 {
		t.Fatalf("expected lost messages, got %+v", rep.Faults)
	}
}

// TestFaultDeterminism: same seed, byte-identical reports; different
// seed, different outcome.
func TestFaultDeterminism(t *testing.T) {
	run := func(seed uint64, workers int) []byte {
		cfg := testConfig(32)
		cfg.Faults = lossScenario(seed, 0.05, true)
		cfg.Faults.Delay = []fault.DelaySpec{{Prob: 0.1, Extra: 1e-4, Jitter: 1e-4, From: fault.AnyRank, To: fault.AnyRank}}
		cfg.HostWorkers = workers
		rep := mustRun(t, cfg, sweepBody(20))
		// The kernel meta-result (windows, cross-worker routing) depends
		// on the host configuration by design; the simulation payload
		// must not.
		rep.Kernel = nil
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(7, 1), run(7, 1)
	if string(a) != string(b) {
		t.Fatal("same seed produced different reports")
	}
	if c := run(7, 4); string(a) != string(c) {
		t.Fatal("host worker count changed the faulted result")
	}
	if d := run(8, 1); string(a) == string(d) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestCrashStopsRankAndIsReported(t *testing.T) {
	cfg := testConfig(4)
	cfg.Faults = &fault.Scenario{
		Crashes: []fault.CrashSpec{{Rank: 2, Time: 0.002}},
	}
	cfg.Limits = sim.Limits{StallEvents: 10_000}
	rep, err := Run(cfg, func(r *Rank) {
		// Independent work plus a self-contained neighbor exchange that
		// rank 2's crash will starve.
		for i := 0; i < 100; i++ {
			r.Compute(1e-4)
			if r.Rank() == 3 {
				r.Recv(2, 9)
			}
			if r.Rank() == 2 {
				r.Send(3, 9, 64, nil)
			}
		}
	})
	if err == nil {
		t.Fatal("expected abort: rank 3 starves after rank 2 crashes")
	}
	if rep == nil {
		t.Fatal("expected partial report")
	}
	if !rep.Ranks[2].Crashed {
		t.Fatal("rank 2 not marked crashed")
	}
	if got := float64(rep.Ranks[2].FinishTime); got > 0.002+1e-9 {
		t.Fatalf("crashed rank finished at %g, want <= crash time 0.002", got)
	}
	if rep.Faults == nil || rep.Faults.Crashes != 1 {
		t.Fatalf("crash not accounted: %+v", rep.Faults)
	}
}

func TestComputeSlowdownWindow(t *testing.T) {
	cfg := testConfig(2)
	cfg.Faults = &fault.Scenario{
		Compute: []fault.ComputeSpec{{Rank: 0, Factor: 3, Window: fault.Window{Start: 0, End: 1}}},
	}
	rep := mustRun(t, cfg, func(r *Rank) {
		r.Compute(0.01)
	})
	r0, r1 := rep.Ranks[0], rep.Ranks[1]
	if math.Abs(float64(r0.FinishTime)-0.03) > 1e-12 {
		t.Fatalf("slowed rank finished at %g, want 0.03", float64(r0.FinishTime))
	}
	if math.Abs(float64(r0.FaultTime)-0.02) > 1e-12 {
		t.Fatalf("fault time %g, want 0.02 (the slowdown excess)", float64(r0.FaultTime))
	}
	if r1.FaultTime != 0 || math.Abs(float64(r1.FinishTime)-0.01) > 1e-12 {
		t.Fatalf("unaffected rank wrong: %+v", r1)
	}
}

func TestLinkSlowdownDelaysAndAttributes(t *testing.T) {
	cfg := testConfig(2)
	base := mustRun(t, cfg, pingOnce)
	cfg.Faults = &fault.Scenario{
		Links: []fault.LinkSpec{{From: 0, To: 1, Factor: 10}},
	}
	rep := mustRun(t, cfg, pingOnce)
	if rep.Time <= base.Time {
		t.Fatalf("link slowdown did not slow the run: %g vs %g", rep.Time, base.Time)
	}
	if rep.Ranks[1].FaultBlocked <= 0 {
		t.Fatal("receiver's extra wait not attributed to the fault")
	}
}

func pingOnce(r *Rank) {
	if r.Rank() == 0 {
		r.Send(1, 1, 1<<16, nil)
	} else {
		r.Recv(0, 1)
	}
}

func TestFaultsIgnoredUnderAbstractComm(t *testing.T) {
	cfg := testConfig(8)
	cfg.Comm = AbstractComm
	cfg.Faults = lossScenario(1, 0.5, false)
	rep := mustRun(t, cfg, func(r *Rank) {
		r.Delay(1e-3)
		r.Send((r.Rank()+1)%r.Size(), 1, 128, nil)
		r.RecvSized((r.Rank()-1+r.Size())%r.Size(), 1, 128)
	})
	if rep.Faults != nil {
		t.Fatalf("AbstractComm should not inject faults, got %+v", rep.Faults)
	}
}

func TestHealthyRunUnchangedByInactiveScenario(t *testing.T) {
	cfg := testConfig(16)
	a := mustRun(t, cfg, sweepBody(10))
	cfg.Faults = &fault.Scenario{Seed: 99} // no specs: inactive
	b := mustRun(t, cfg, sweepBody(10))
	if a.Time != b.Time {
		t.Fatalf("inactive scenario changed the result: %g vs %g", a.Time, b.Time)
	}
	if b.Faults != nil {
		t.Fatal("inactive scenario should not produce fault stats")
	}
}

// BenchmarkFaultOverhead measures the events/sec cost of the fault layer
// in its two states; ci.sh gates "off" (scenario absent) against the
// seed kernel benchmark and "off" vs "on" documents the enabled cost.
func BenchmarkFaultOverhead(b *testing.B) {
	bench := func(b *testing.B, faults *fault.Scenario) {
		cfg := Config{Ranks: 16, Machine: machine.IBMSP(), Comm: Analytic, Faults: faults}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := Run(cfg, sweepBody(50))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rep.Kernel.Events), "events/op")
		}
	}
	b.Run("off", func(b *testing.B) { bench(b, nil) })
	b.Run("on", func(b *testing.B) { bench(b, lossScenario(3, 0.01, true)) })
}
