package mpi

import (
	"errors"
	"fmt"

	"mpisim/internal/fault"
	"mpisim/internal/machine"
	"mpisim/internal/sim"
)

// errRankCrash unwinds a rank body at an injected stop-failure; the
// World.Run body wrapper recovers it, ending the rank at its crash time.
var errRankCrash = errors.New("mpi: injected rank crash")

// Rank is one target MPI process. All methods must be called from the
// rank's own body function.
type Rank struct {
	world *World
	proc  *sim.Proc
	rank  int

	// Detailed-model NIC occupancy state.
	nicSendFree sim.Time
	nicRecvFree sim.Time
	// Non-overtaking guarantee: last arrival time per destination.
	lastArrival map[int]sim.Time

	delayTime   sim.Time
	commCPU     sim.Time
	curBytes    int64
	peakBytes   int64
	collectives int64
	// AbstractComm accounting (no kernel messages exist to count).
	abstractSent  int64
	abstractBytes int64
	// Per-destination accounting, allocated when CollectMatrix is set.
	msgMatrix  []int64
	byteMatrix []int64
	// Activity segments, collected when CollectTrace is set.
	segments []Segment
	// Received-message records, collected when CollectTrace is set.
	commEvents []CommEvent
	// Collective intervals, collected when CollectTrace is set.
	collPhases []CollPhase
	// Delay seconds per condensed task name.
	delayByTask map[string]float64
	// API-level call log, collected when RecordCalls is set; recDepth
	// suppresses the constituent operations of composed calls.
	calls    []Call
	recDepth int

	// Fault injection (nil / zero without an active scenario). faultCPU
	// is fault time consumed through Advance (retransmission CPU,
	// duplicate handling, compute-slowdown excess); faultBlocked is the
	// portion of kernel BlockedTime caused by fault-delayed messages.
	faults        *fault.RankFaults
	hasCrash      bool
	crashDeadline sim.Time
	crashed       bool
	faultCPU      sim.Time
	faultBlocked  sim.Time

	// Topology-mode accounting (zero under the flat network model):
	// netBlocked is the portion of kernel BlockedTime caused by link
	// contention; netIntraMsgs/netIntraBytes count node-local transfers
	// that bypassed the fabric.
	netBlocked    sim.Time
	netIntraMsgs  int64
	netIntraBytes int64
}

// segment appends a trace segment when tracing is enabled; zero-length
// segments are dropped.
func (r *Rank) segment(start, end float64, kind SegKind) {
	if !r.world.cfg.CollectTrace || end <= start {
		return
	}
	r.segments = append(r.segments, Segment{Start: start, End: end, Kind: kind})
}

// Rank returns this process's rank in 0..Size()-1.
func (r *Rank) Rank() int { return r.rank }

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.world.cfg.Ranks }

// Now returns the rank's local simulated time in seconds.
func (r *Rank) Now() float64 { return float64(r.proc.Now()) }

// Machine returns the target machine model.
func (r *Rank) Machine() *machine.Model { return r.world.cfg.Machine }

// checkCrash fires the rank's injected stop-failure once its local clock
// has reached the crash time. Crashes are detected at MPI-call
// boundaries (and mid-work by advanceWork); a rank blocked forever in
// Recv past its crash time is resolved by the watchdog or the deadlock
// detector instead.
func (r *Rank) checkCrash() {
	if r.hasCrash && !r.crashed && r.proc.Now() >= r.crashDeadline {
		r.crash()
	}
}

// crash records the stop-failure and unwinds the body.
func (r *Rank) crash() {
	r.crashed = true
	r.faults.RecordCrash()
	panic(errRankCrash)
}

// advanceWork advances local work of the given base duration, applying
// any transient compute slowdown (the factor sampled at the start of the
// work item applies to the whole item) and stopping at an injected
// crash. It returns the base seconds actually performed and whether the
// rank crashed mid-work; the caller accounts the work, then must call
// crash() when crashed is true.
func (r *Rank) advanceWork(seconds float64, kind SegKind) (done float64, crashed bool) {
	if r.faults == nil {
		r.segment(r.Now(), r.Now()+seconds, kind)
		r.proc.Advance(sim.Time(seconds))
		return seconds, false
	}
	r.checkCrash()
	now := r.Now()
	factor := r.faults.ComputeFactor(now)
	total := seconds * factor
	done = seconds
	if r.hasCrash && sim.Time(now+total) >= r.crashDeadline {
		total = float64(r.crashDeadline) - now
		if total < 0 {
			total = 0
		}
		done = total / factor
		crashed = true
	}
	r.segment(now, now+done, kind)
	if excess := total - done; excess > 0 {
		r.segment(now+done, now+total, SegFault)
		r.faultCPU += sim.Time(excess)
	}
	r.proc.Advance(sim.Time(total))
	return done, crashed
}

// Compute directly executes local computation costing the given seconds
// of target time (MPI-Sim's direct execution of sequential code blocks).
func (r *Rank) Compute(seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("mpi: negative Compute(%g)", seconds))
	}
	defer r.record(Call{Op: "compute", Sec: seconds})()
	_, crashed := r.advanceWork(seconds, SegCompute)
	if crashed {
		r.crash()
	}
}

// Delay is the simulator-provided delay function of the paper: it simply
// forwards the simulation clock on the simulation thread by a specified
// amount. It is the replacement for collapsed computational tasks in the
// simplified (MPI-SIM-AM) programs.
func (r *Rank) Delay(seconds float64) { r.DelayTask("", seconds) }

// DelayTask is Delay attributed to a named condensed task, so reports
// can break predicted computation down per task.
func (r *Rank) DelayTask(task string, seconds float64) {
	if seconds < 0 {
		// Scaling functions can yield tiny negative values for degenerate
		// (empty) iteration spaces; clamp as the runtime library would.
		seconds = 0
	}
	defer r.record(Call{Op: "delay", Task: task, Sec: seconds})()
	done, crashed := r.advanceWork(seconds, SegDelay)
	r.delayTime += sim.Time(done)
	if task != "" {
		if r.delayByTask == nil {
			r.delayByTask = map[string]float64{}
		}
		r.delayByTask[task] += done
	}
	if crashed {
		r.crash()
	}
}

// ReadTaskTime returns the measured w_i parameter with the given name
// from the calibration table (the simplified program's preamble, paper
// §3.1: "read in the value of the parameter from a file and broadcast it
// to all processors"). The read-and-broadcast is instrumentation of the
// simplified program rather than behaviour of the application being
// predicted, so it is charged zero simulated time; otherwise the
// preamble's broadcast latency would bias predictions for short runs.
func (r *Rank) ReadTaskTime(name string) float64 {
	return r.world.cfg.TaskTimes[name]
}

// TrackAlloc records allocation of n bytes of target-program memory. The
// interpreter calls it for every array the target program allocates; the
// direct-execution simulator therefore "uses at least as much memory as
// the application" while the optimized simulator tracks only the dummy
// communication buffer and retained scalars.
func (r *Rank) TrackAlloc(n int64) {
	r.curBytes += n
	if r.curBytes > r.peakBytes {
		r.peakBytes = r.curBytes
	}
	if err := r.world.trackAlloc(n); err != nil {
		panic(err.Error())
	}
}

// TrackFree records release of n bytes of target-program memory.
func (r *Rank) TrackFree(n int64) {
	r.curBytes -= n
	r.world.memMu.Lock()
	r.world.memUsed -= n
	r.world.memMu.Unlock()
}

// sendTimes computes (cpuOverhead, arrivalTime) for a message of size
// bytes issued now, under the configured communication model. faultDelay
// is injected transit delay (retransmission waits, delay injection, link
// slowdown excess); it joins the arrival before the non-overtaking clamp
// so later messages on the same pair can never overtake a fault-delayed
// one.
func (r *Rank) sendTimes(dst int, size int64, faultDelay sim.Time) (cpu sim.Time, arrival sim.Time) {
	n := &r.world.cfg.Machine.Net
	now := r.proc.Now()
	if dst == r.rank {
		// Self message: a memory copy, no network traversal. Same-worker
		// delivery, so it is exempt from the lookahead bound.
		cpu = sim.Time(n.SendOverhead / 4)
		arrival = now + cpu + sim.Time(float64(size)/(4*n.Bandwidth))
		return cpu, arrival
	}
	switch r.world.cfg.Comm {
	case Detailed:
		start := now
		if r.nicSendFree > start {
			start = r.nicSendFree
		}
		occupancy := sim.Time(n.SendOverhead + float64(size)*n.GapPerByte)
		r.nicSendFree = start + occupancy
		cpu = sim.Time(n.SendOverhead)
		arrival = start + occupancy + sim.Time(n.Latency+float64(size)/n.Bandwidth) + faultDelay
	default: // Analytic
		cpu = sim.Time(n.SendOverhead)
		arrival = now + cpu + sim.Time(n.Latency+float64(size)/n.Bandwidth) + faultDelay
	}
	// MPI non-overtaking: messages between the same pair are delivered in
	// send order.
	if r.lastArrival == nil {
		r.lastArrival = make(map[int]sim.Time)
	}
	if last := r.lastArrival[dst]; arrival < last {
		arrival = last
	}
	r.lastArrival[dst] = arrival
	return cpu, arrival
}

// send issues the message and charges sender-side CPU cost.
func (r *Rank) send(dst, tag int, size int64, data interface{}) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dst, r.Size()))
	}
	if r.faults != nil {
		r.checkCrash()
	}
	if r.world.cfg.CollectMatrix {
		if r.msgMatrix == nil {
			r.msgMatrix = make([]int64, r.Size())
			r.byteMatrix = make([]int64, r.Size())
		}
		r.msgMatrix[dst]++
		r.byteMatrix[dst] += size
	}
	if r.world.cfg.Comm == AbstractComm {
		// Closed-form sender cost; no message is simulated.
		n := &r.world.cfg.Machine.Net
		cpu := sim.Time(n.SendOverhead)
		r.commCPU += cpu
		r.proc.Advance(cpu)
		r.abstractSent++
		r.abstractBytes += size
		return
	}
	var fate fault.MsgFate
	var faultDelay sim.Time
	if r.faults != nil && dst != r.rank {
		n := &r.world.cfg.Machine.Net
		fate = r.faults.SendFate(dst, r.Now())
		if fate.Lost {
			// Dropped with retries disabled or exhausted: no message is
			// issued. The sender still pays its overheads — the original
			// attempt as communication CPU, the retransmissions as fault
			// CPU — and the receiver provably hangs until the watchdog,
			// deadlock detector or an any-source match resolves it.
			cpu := sim.Time(n.SendOverhead)
			r.commCPU += cpu
			r.segment(r.Now(), r.Now()+float64(cpu), SegComm)
			r.proc.Advance(cpu)
			if retry := sim.Time(float64(fate.Retries) * n.SendOverhead); retry > 0 {
				r.faultCPU += retry
				r.segment(r.Now(), r.Now()+float64(retry), SegFault)
				r.proc.Advance(retry)
			}
			return
		}
	}
	if r.world.net != nil && dst != r.rank {
		// Non-flat topology: route through the interconnect model (the
		// fabric computes faultDelay against the real path there).
		r.sendNet(dst, tag, size, data, fate)
	} else {
		if r.faults != nil && dst != r.rank {
			n := &r.world.cfg.Machine.Net
			faultDelay = sim.Time(fate.RetryWait + fate.ExtraDelay +
				(fate.LinkFactor-1)*(n.Latency+float64(size)/n.Bandwidth))
		}
		cpu, arrival := r.sendTimes(dst, size, faultDelay)
		r.proc.SendTagFault(dst, tag, data, size, arrival, faultDelay)
		r.commCPU += cpu
		r.segment(r.Now(), r.Now()+float64(cpu), SegComm)
		r.proc.Advance(cpu)
	}
	if fate.Retries > 0 || fate.Duplicated {
		// Sender CPU for each retransmitted copy plus one for handling
		// the suppressed duplicate.
		n := &r.world.cfg.Machine.Net
		extra := sim.Time(float64(fate.Retries) * n.SendOverhead)
		if fate.Duplicated {
			extra += sim.Time(n.SendOverhead)
		}
		r.faultCPU += extra
		r.segment(r.Now(), r.Now()+float64(extra), SegFault)
		r.proc.Advance(extra)
	}
}

// Send is a blocking standard-mode send of size bytes with the given tag.
// Sends are modeled as eager/buffered: the call returns after the sender
// CPU overhead. data is an optional payload carried to the receiver (the
// direct-execution interpreter moves real array sections; the simplified
// programs send nil, standing for the dummy buffer).
func (r *Rank) Send(dst, tag int, size int64, data interface{}) {
	defer r.record(Call{Op: "send", Peer: dst, Tag: tag, Bytes: size})()
	r.send(dst, tag, size, data)
}

// AnyTag matches any message tag. AnyTag and AnySource equal the
// kernel's exact wildcard sentinel sim.Any, so (src, tag) matching is
// evaluated inside the kernel with no per-receive closure.
const AnyTag = sim.Any

// Recv blocks until a message with the given source and tag arrives and
// returns its size and payload. Receiver-side costs (CPU overhead, and
// NIC serialization under the Detailed model) are charged on completion.
// Under the AbstractComm model the expected size is unknown, so a
// zero-byte transfer is assumed; prefer RecvSized there.
func (r *Rank) Recv(src, tag int) (int64, interface{}) {
	return r.RecvSized(src, tag, 0)
}

// RecvSized is Recv with the receiver's declared message size, which the
// AbstractComm model needs to compute the closed-form transfer cost
// ("based on message size, message destination, etc.", paper §5). The
// event-driven models ignore expect and use the real message's size.
func (r *Rank) RecvSized(src, tag int, expect int64) (int64, interface{}) {
	defer r.record(Call{Op: "recv", Peer: src, Tag: tag, Bytes: expect})()
	if r.world.cfg.Comm == AbstractComm {
		n := &r.world.cfg.Machine.Net
		cost := sim.Time(n.AnalyticDelay(expect) + n.RecvOverhead)
		r.commCPU += sim.Time(n.RecvOverhead)
		r.proc.Advance(cost)
		return expect, nil
	}
	if r.faults != nil {
		r.checkCrash()
	}
	t0 := r.Now()
	m := r.proc.RecvSrcTag(src, tag)
	now := r.Now()
	// Attribute to faults the part of the wait the message's FaultDelay
	// explains: had the machine been healthy, the message would have
	// arrived that much earlier, capped by how long we actually waited.
	// The message's link-contention wait (NetWait) is attributed the same
	// way, capped by the wait the fault share has not already claimed.
	fb := float64(m.FaultDelay)
	if fb > now-t0 {
		fb = now - t0
	}
	if r.faults == nil {
		fb = 0
	}
	nb := float64(m.NetWait)
	if nb > now-t0-fb {
		nb = now - t0 - fb
	}
	r.segment(t0, now-fb-nb, SegBlocked)
	if nb > 0 {
		r.netBlocked += sim.Time(nb)
		r.segment(now-fb-nb, now-fb, SegNet)
	}
	if fb > 0 {
		r.faultBlocked += sim.Time(fb)
		r.segment(now-fb, now, SegFault)
	}
	return r.finishRecv(m)
}

func (r *Rank) finishRecv(m *sim.Message) (int64, interface{}) {
	n := &r.world.cfg.Machine.Net
	if r.world.cfg.Comm == Detailed && m.From != r.rank {
		// Serialize through the receive NIC.
		ready := m.Arrival
		if r.nicRecvFree > ready {
			ready = r.nicRecvFree
		}
		r.nicRecvFree = ready + sim.Time(float64(m.Size)*n.GapPerByte)
		if ready > r.proc.Now() {
			r.segment(r.Now(), float64(ready), SegBlocked)
			r.proc.Advance(ready - r.proc.Now())
		}
	}
	cpu := sim.Time(n.RecvOverhead)
	if m.From == r.rank {
		cpu = sim.Time(n.RecvOverhead / 4)
	}
	r.commCPU += cpu
	r.segment(r.Now(), r.Now()+float64(cpu), SegComm)
	if r.world.cfg.CollectTrace {
		r.commEvents = append(r.commEvents, CommEvent{
			From: m.From, SendTime: float64(m.SendTime),
			Arrival: float64(m.Arrival), Complete: r.Now(),
			Size: m.Size, Tag: m.Tag,
			Hops: m.Hops, NetWait: float64(m.NetWait),
		})
	}
	r.proc.Advance(cpu)
	size, data := m.Size, m.Payload
	// The message and every field have been consumed; recycle it.
	r.proc.FreeMessage(m)
	return size, data
}

// Sendrecv performs a combined send and receive, as used by shift
// communications. The send is issued first (eager), then the receive
// blocks; this cannot deadlock under the eager model.
func (r *Rank) Sendrecv(dst, sendTag int, size int64, data interface{}, src, recvTag int) (int64, interface{}) {
	defer r.record(Call{Op: "sendrecv", Peer: dst, Tag: sendTag, Bytes: size, Peer2: src, Tag2: recvTag})()
	r.send(dst, sendTag, size, data)
	return r.Recv(src, recvTag)
}

// Request represents a nonblocking operation handle.
type Request struct {
	rank   *Rank
	isSend bool
	src    int
	tag    int
	done   bool
	size   int64
	data   interface{}
}

// Isend starts a nonblocking send. Under the eager model the message is
// buffered immediately, so the request is born complete.
func (r *Rank) Isend(dst, tag int, size int64, data interface{}) *Request {
	// Recorded as a plain send: timing is identical under the eager
	// model, so the replay need not distinguish the two.
	defer r.record(Call{Op: "send", Peer: dst, Tag: tag, Bytes: size})()
	r.send(dst, tag, size, data)
	return &Request{rank: r, isSend: true, done: true}
}

// Irecv posts a nonblocking receive for (src, tag). The match is made at
// Wait time.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, isSend: false, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the received size
// and payload (zero values for sends).
func (req *Request) Wait() (int64, interface{}) {
	if req.done {
		return req.size, req.data
	}
	req.done = true
	req.size, req.data = req.rank.Recv(req.src, req.tag)
	return req.size, req.data
}

// Waitall completes all requests in order.
func (r *Rank) Waitall(reqs []*Request) {
	for _, q := range reqs {
		q.Wait()
	}
}
