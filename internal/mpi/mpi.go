// Package mpi is the simulated Message Passing Interface library at the
// heart of the MPI-Sim reproduction. Target programs are Go functions
// (here: the IR interpreter, examples and tests) that run one body per
// target rank; every MPI call is trapped and its cost on the target
// architecture is simulated, while local computation is either directly
// executed (MPI-SIM-DE) or replaced by the Delay function (MPI-SIM-AM),
// exactly as in the paper (§2.1, §3.1).
//
// Three communication timing models are provided:
//
//   - Detailed: LogGP-style with per-rank NIC occupancy serialization on
//     both the send and receive side. This is the reproduction's stand-in
//     for "direct measurement on the real machine".
//   - Analytic: latency + size/bandwidth plus CPU overheads, the model
//     MPI-Sim uses to predict communication time.
//   - AbstractComm: closed-form costs with no event simulation (the
//     paper's §5 extension).
package mpi

import (
	"errors"
	"fmt"
	"sync"

	"mpisim/internal/fault"
	"mpisim/internal/machine"
	"mpisim/internal/net"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
)

// CommModel selects the communication timing model.
type CommModel int

const (
	// Analytic is the simple latency+bandwidth model used by the simulator.
	Analytic CommModel = iota
	// Detailed adds NIC occupancy serialization; it is the ground-truth
	// ("measured") model of this reproduction.
	Detailed
	// AbstractComm is the paper's §5 alternative: "extend the MPI-Sim
	// simulator to take as input an abstract model of the communication
	// (based on message size, message destination, etc.) and use it to
	// predict communication performance". No messages are simulated at
	// all: every communication call advances the caller's clock by a
	// closed-form cost. It is by far the fastest model, but — exactly as
	// the paper's §1 critique of fully abstract simulation warns — it
	// ignores cross-process synchronization (pipelines, wavefronts,
	// load imbalance at barriers), so its predictions degrade on
	// dependence-heavy codes. Payload values are not transported.
	AbstractComm
)

// String implements fmt.Stringer.
func (c CommModel) String() string {
	switch c {
	case Detailed:
		return "detailed"
	case AbstractComm:
		return "abstract"
	}
	return "analytic"
}

// AnySource matches a message from any sender (the kernel's exact
// wildcard sentinel sim.Any). It is exact under the sequential engine;
// conservative parallel runs should avoid it (the benchmarks in this
// repository do).
const AnySource = sim.Any

// Config describes one simulation run.
type Config struct {
	// Ranks is the number of target processes.
	Ranks int
	// Machine is the target architecture model.
	Machine *machine.Model
	// Comm selects the communication timing model.
	Comm CommModel
	// HostWorkers is the number of host processors the simulator itself
	// uses (1 = sequential engine).
	HostWorkers int
	// RealParallel runs host workers on separate goroutines.
	RealParallel bool
	// ForceGoroutine routes the kernel's continuation processes (e.g. the
	// interconnect fabric) through the classic goroutine path. Results
	// are byte-identical; used by the scheduler-equivalence tests.
	ForceGoroutine bool
	// Protocol selects the conservative synchronization protocol of the
	// parallel engine (window or null-message).
	Protocol sim.Protocol
	// Queue selects the kernel's pending-event queue implementation.
	// Purely a performance knob: simulation results are identical across
	// kinds.
	Queue sim.QueueKind
	// TaskTimes is the w_i calibration table consumed by ReadTaskTime
	// (the paper's "read in the value of the parameter from a file and
	// broadcast it to all processors").
	TaskTimes map[string]float64
	// MemoryLimit, when positive, bounds the total simulated memory the
	// target program may allocate across all ranks (TrackAlloc). It
	// reproduces the out-of-memory wall that limits MPI-SIM-DE.
	MemoryLimit int64
	// CollectMatrix enables per-pair communication accounting; the
	// Report then carries the rank-to-rank message and byte matrices
	// ("more detailed metrics of the communication behavior", paper
	// §2.2 challenge (a)).
	CollectMatrix bool
	// CollectTrace enables per-rank activity segments (compute, delay,
	// blocked, communication CPU) in the Report, from which a timeline
	// of the predicted execution can be rendered.
	CollectTrace bool
	// RecordCalls enables the API-level call log (Report.Calls): every
	// rank's sequence of MPI operations with sizes and metadata but no
	// payloads, sufficient for internal/tracein to replay the run.
	RecordCalls bool
	// Metrics, when non-nil, receives simulator-plane metrics from the
	// underlying kernel (see sim.Config.Metrics / internal/obs).
	Metrics *obs.Registry
	// Tracer, when non-nil and enabled, receives the kernel's sampled
	// simulator-plane counter tracks. The simulated plane (per-rank
	// spans, message flows, collective phases) is exported separately
	// from the Report by internal/trace.Export.
	Tracer *obs.Tracer
	// Timeline / RunInfo attach the live-telemetry plane to the kernel:
	// time-series snapshots and progress heartbeats (see sim.Config).
	Timeline *obs.Timeline
	RunInfo  *obs.RunInfo
	// Faults, when non-nil and active, injects the scenario's faults
	// (crashes, loss, duplication, delay, link and compute slowdown)
	// into the run, deterministically per scenario seed. Ignored under
	// AbstractComm, which simulates no messages to inject into.
	Faults *fault.Scenario
	// Limits bounds the kernel run: event/virtual-time budgets, the
	// no-progress watchdog and context cancellation (sim.Limits). On a
	// trip, Run returns a partial Report together with the
	// *sim.AbortError.
	Limits sim.Limits
}

// SegKind classifies a trace segment.
type SegKind uint8

// Trace segment kinds.
const (
	// SegCompute is directly executed target computation.
	SegCompute SegKind = iota
	// SegDelay is abstracted computation (delay calls).
	SegDelay
	// SegBlocked is time spent waiting for a message.
	SegBlocked
	// SegComm is CPU time in communication calls.
	SegComm
	// SegFault is time attributable to injected faults: retransmission
	// CPU and waits, duplicate handling, compute-slowdown excess, and the
	// portion of blocked time caused by fault-delayed messages.
	SegFault
	// SegNet is the portion of blocked time caused by interconnect
	// contention (messages queued on busy links), under a non-flat
	// topology.
	SegNet
)

// String implements fmt.Stringer.
func (k SegKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegDelay:
		return "delay"
	case SegBlocked:
		return "blocked"
	case SegComm:
		return "comm"
	case SegFault:
		return "fault"
	case SegNet:
		return "net"
	}
	return "unknown"
}

// Segment is one interval of a rank's simulated activity.
type Segment struct {
	Start, End float64
	Kind       SegKind
}

// CommEvent records one received message from the receiver's viewpoint,
// collected under CollectTrace; the dynamic task graph is built from
// these.
type CommEvent struct {
	// From is the sending rank.
	From int
	// SendTime is the sender's clock when the send was issued.
	SendTime float64
	// Arrival is when the message reached the receiver.
	Arrival float64
	// Complete is when the receive finished (>= Arrival).
	Complete float64
	// Size is the message size in bytes.
	Size int64
	// Tag is the MPI tag (negative for internal collective traffic).
	Tag int
	// Hops is the number of interconnect links the message traversed
	// (zero under the flat network model and for node-local transfers).
	Hops int `json:",omitempty"`
	// NetWait is the transit time the message spent queued on busy
	// links (zero under the flat network model).
	NetWait float64 `json:",omitempty"`
}

// CollPhase is one collective operation interval on a rank, collected
// under CollectTrace. Composed collectives (Allreduce, Barrier) appear
// as their constituent primitives.
type CollPhase struct {
	// Name is the primitive collective ("bcast", "reduce", ...).
	Name string
	// Start and End bound the rank's participation in seconds.
	Start, End float64
	// Bytes is the payload this rank contributed to the collective: the
	// resolved per-participant size (real data wins over the declared
	// size), summed over per-destination chunks for the variable-size
	// collectives (scatter at the root, alltoall).
	Bytes int64 `json:",omitempty"`
}

// RankStats extends the kernel's per-process statistics with MPI-level
// accounting.
type RankStats struct {
	sim.ProcStats
	// DelayTime is simulated time injected through Delay (the abstracted
	// computation of MPI-SIM-AM).
	DelayTime sim.Time
	// CommCPUTime is CPU time charged for send/receive overheads.
	CommCPUTime sim.Time
	// PeakBytes is the high-water mark of tracked target-program memory.
	PeakBytes int64
	// CurBytes is the tracked memory at program end.
	CurBytes int64
	// Collectives counts collective operations completed.
	Collectives int64
	// FaultTime is simulated time this rank lost to injected faults:
	// retransmission CPU, duplicate handling, compute-slowdown excess,
	// plus the FaultBlocked portion below. Zero without fault injection.
	FaultTime sim.Time
	// FaultBlocked is the portion of BlockedTime attributable to
	// fault-delayed messages (FaultTime includes it); the remainder of
	// BlockedTime is genuine wait the healthy machine would also see.
	FaultBlocked sim.Time
	// NetBlocked is the portion of BlockedTime attributable to
	// interconnect contention: the received messages' link-queueing
	// delays, capped by the actual wait. Zero under the flat model.
	NetBlocked sim.Time
	// Crashed reports that the rank hit an injected stop-failure and
	// terminated at FinishTime.
	Crashed bool
}

// Report is the outcome of a World run.
type Report struct {
	// Time is the predicted execution time of the target program in
	// seconds (the maximum rank finish time).
	Time float64
	// Ranks holds per-rank statistics.
	Ranks []RankStats
	// TotalPeakBytes sums the per-rank memory peaks: the total memory the
	// simulator needs for target-program state (Table 1).
	TotalPeakBytes int64
	// MaxRankPeakBytes is the largest single-rank peak.
	MaxRankPeakBytes int64
	// Kernel carries the kernel-level result (events, windows, ...).
	Kernel *sim.Result
	// MsgMatrix[s][d] counts messages sent from rank s to rank d, and
	// ByteMatrix the corresponding bytes. Only populated when
	// Config.CollectMatrix is set.
	MsgMatrix  [][]int64
	ByteMatrix [][]int64
	// Traces holds each rank's activity segments when
	// Config.CollectTrace is set.
	Traces [][]Segment
	// CommEvents holds each rank's received-message records when
	// Config.CollectTrace is set.
	CommEvents [][]CommEvent
	// CollPhases holds each rank's collective intervals when
	// Config.CollectTrace is set.
	CollPhases [][]CollPhase
	// Calls holds each rank's API-level call log when
	// Config.RecordCalls is set. It is in-memory hand-off to the trace
	// recorder, not part of the serialized report (traces have their
	// own JSONL format).
	Calls [][]Call `json:"-"`
	// DelayByTask aggregates delay seconds per condensed-task name over
	// all ranks (populated by simplified-program runs).
	DelayByTask map[string]float64
	// Faults aggregates the injected-fault accounting when Config.Faults
	// was active; nil otherwise.
	Faults *fault.Stats
	// Net summarizes the interconnect when the machine model named a
	// non-flat topology: placement, intra/inter-node traffic split,
	// total contention wait and the per-link hotspot list. Nil under the
	// flat model.
	Net *net.Stats
	// Partial marks a report assembled from an aborted run (watchdog,
	// budget, cancellation): every figure covers only the simulated work
	// up to the abort. AbortReason carries the guard's root cause.
	Partial     bool
	AbortReason string
}

// World runs a target program of Config.Ranks ranks.
type World struct {
	cfg      Config
	kernel   *sim.Kernel
	ranks    []*Rank
	injector *fault.Injector // nil without fault injection

	// Topology mode (nil/zero under the flat network model): the built
	// interconnect, its mutable occupancy state, and the fabric process
	// id (== Ranks; the fabric is spawned after the rank procs).
	net     *net.Network
	fabric  *net.Fabric
	netProc int

	memMu   sync.Mutex
	memUsed int64
	memErr  error
}

// NewWorld validates cfg and prepares a world.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mpi: Ranks must be positive, got %d", cfg.Ranks)
	}
	if cfg.Machine == nil {
		return nil, fmt.Errorf("mpi: Machine model required")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.HostWorkers <= 0 {
		cfg.HostWorkers = 1
	}
	// Resolve the machine's topology. Flat (or empty) yields nil and the
	// seed analytic path; a real topology lowers the lookahead to the
	// minimum delay it can produce (claim leg / intra-node transfer).
	nw, err := net.Build(cfg.Machine, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	lookahead := sim.Time(cfg.Machine.Net.Latency)
	if cfg.Comm == AbstractComm {
		// AbstractComm simulates no messages at all, so there is no
		// traffic to route or congest; like fault injection, the
		// topology is validated above but otherwise ignored.
		nw = nil
	}
	if nw != nil {
		lookahead = sim.Time(nw.Lookahead())
	}
	k, err := sim.NewKernel(sim.Config{
		Workers:        cfg.HostWorkers,
		Lookahead:      lookahead,
		RealParallel:   cfg.RealParallel,
		ForceGoroutine: cfg.ForceGoroutine,
		Protocol:       cfg.Protocol,
		Queue:          cfg.Queue,
		Metrics:        cfg.Metrics,
		Tracer:         cfg.Tracer,
		Timeline:       cfg.Timeline,
		RunInfo:        cfg.RunInfo,
		Limits:         cfg.Limits,
	})
	if err != nil {
		return nil, err
	}
	w := &World{cfg: cfg, kernel: k}
	if nw != nil {
		w.net = nw
		w.fabric = net.NewFabric(nw)
		w.netProc = cfg.Ranks
	}
	if cfg.Faults != nil && cfg.Faults.Active() && cfg.Comm != AbstractComm {
		// Every fault effect only *increases* message delays, so the
		// kernel's conservative lookahead (the healthy minimum latency)
		// remains a valid lower bound under injection.
		inj, err := cfg.Faults.Injector(cfg.Ranks)
		if err != nil {
			return nil, err
		}
		w.injector = inj
	}
	return w, nil
}

// Run executes body once per rank and returns the report. The error
// reports deadlocks, panics in the target program, exceeding the
// simulated memory limit, or a guard abort (*sim.AbortError). On abort
// the partial report is returned alongside the error (Report.Partial),
// so long sweeps degrade to partial artifacts instead of losing the run.
func (w *World) Run(body func(*Rank)) (*Report, error) {
	w.ranks = make([]*Rank, w.cfg.Ranks)
	for i := 0; i < w.cfg.Ranks; i++ {
		r := &Rank{world: w, rank: i}
		if w.injector != nil {
			r.faults = w.injector.Rank(i)
			if ct, ok := r.faults.CrashTime(); ok {
				r.hasCrash = true
				r.crashDeadline = sim.Time(ct)
			}
		}
		w.ranks[i] = r
		w.kernel.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			r.proc = p
			defer func() {
				if rec := recover(); rec != nil {
					if rec != errRankCrash {
						panic(rec)
					}
					// Injected stop-failure: the rank's body ends here and
					// its proc finishes at the crash time; peers waiting on
					// it block until retries, the watchdog or a deadlock
					// resolve the run.
				}
				if w.net != nil {
					// Retire with the fabric (also after an injected
					// crash); kernel teardown re-panicked above and never
					// reaches this send.
					r.sendNetDone()
				}
			}()
			body(r)
		})
	}
	if w.net != nil {
		w.kernel.SpawnCont("fabric", w.fabricCont())
	}
	res, err := w.kernel.Run()
	if w.memErr != nil {
		return nil, w.memErr
	}
	if err != nil && res == nil {
		return nil, err
	}
	endTime := res.EndTime
	if w.net != nil {
		// The fabric proc finishes after the last rank's done-claim; the
		// predicted program time is the maximum over the ranks only.
		endTime = 0
		for i := 0; i < w.cfg.Ranks && i < len(res.Procs); i++ {
			if ft := res.Procs[i].FinishTime; ft > endTime {
				endTime = ft
			}
		}
	}
	rep := &Report{Time: float64(endTime), Kernel: res}
	var abort *sim.AbortError
	if err != nil {
		if !errors.As(err, &abort) {
			return nil, err
		}
		rep.Partial = true
		rep.AbortReason = abort.Reason
	}
	rep.Ranks = make([]RankStats, w.cfg.Ranks)
	for i, r := range w.ranks {
		rs := RankStats{
			ProcStats:    res.Procs[i],
			DelayTime:    r.delayTime,
			CommCPUTime:  r.commCPU,
			PeakBytes:    r.peakBytes,
			CurBytes:     r.curBytes,
			Collectives:  r.collectives,
			FaultTime:    r.faultCPU + r.faultBlocked,
			FaultBlocked: r.faultBlocked,
			NetBlocked:   r.netBlocked,
			Crashed:      r.crashed,
		}
		rep.Ranks[i] = rs
		rep.TotalPeakBytes += r.peakBytes
		if r.peakBytes > rep.MaxRankPeakBytes {
			rep.MaxRankPeakBytes = r.peakBytes
		}
	}
	if w.cfg.CollectMatrix {
		rep.MsgMatrix = make([][]int64, w.cfg.Ranks)
		rep.ByteMatrix = make([][]int64, w.cfg.Ranks)
		for i, r := range w.ranks {
			rep.MsgMatrix[i] = r.msgMatrix
			rep.ByteMatrix[i] = r.byteMatrix
		}
	}
	if w.cfg.CollectTrace {
		rep.Traces = make([][]Segment, w.cfg.Ranks)
		rep.CommEvents = make([][]CommEvent, w.cfg.Ranks)
		rep.CollPhases = make([][]CollPhase, w.cfg.Ranks)
		for i, r := range w.ranks {
			rep.Traces[i] = r.segments
			rep.CommEvents[i] = r.commEvents
			rep.CollPhases[i] = r.collPhases
		}
	}
	if w.cfg.RecordCalls {
		rep.Calls = make([][]Call, w.cfg.Ranks)
		for i, r := range w.ranks {
			rep.Calls[i] = r.calls
		}
	}
	for _, r := range w.ranks {
		if r.delayByTask == nil {
			continue
		}
		if rep.DelayByTask == nil {
			rep.DelayByTask = map[string]float64{}
		}
		for task, secs := range r.delayByTask {
			rep.DelayByTask[task] += secs
		}
	}
	if w.injector != nil {
		st := w.injector.Stats()
		rep.Faults = &st
		w.publishFaultMetrics(&st)
	}
	if w.net != nil {
		rep.Net = w.netStats(rep.Time)
		w.publishNetMetrics(rep.Net)
	}
	return rep, err
}

// publishFaultMetrics flushes the injector's aggregate accounting into
// the metrics registry, alongside the kernel's simulator-plane counters.
func (w *World) publishFaultMetrics(st *fault.Stats) {
	reg := w.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("fault_drops_total", "message transmissions dropped by fault injection").Add(0, st.Drops)
	reg.Counter("fault_lost_total", "messages permanently lost (retries disabled or exhausted)").Add(0, st.Lost)
	reg.Counter("fault_retransmissions_total", "retransmitted message copies").Add(0, st.Retransmissions)
	reg.Counter("fault_backoff_waits_total", "retransmission waits beyond the base timeout (exponential backoff)").Add(0, st.BackoffWaits)
	reg.Counter("fault_duplicates_total", "duplicate message copies delivered and suppressed").Add(0, st.Duplicates)
	reg.Counter("fault_delays_total", "messages given injected extra transit delay").Add(0, st.Delays)
	reg.Counter("fault_crashes_total", "ranks stopped by injected crash failures").Add(0, st.Crashes)
}

// Run is a convenience wrapper: build a world and run body on every rank.
func Run(cfg Config, body func(*Rank)) (*Report, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	return w.Run(body)
}

// trackAlloc charges n bytes (n may be negative for frees) against the
// global memory limit.
func (w *World) trackAlloc(n int64) error {
	w.memMu.Lock()
	defer w.memMu.Unlock()
	w.memUsed += n
	if w.cfg.MemoryLimit > 0 && w.memUsed > w.cfg.MemoryLimit {
		if w.memErr == nil {
			w.memErr = &MemoryLimitError{Used: w.memUsed, Limit: w.cfg.MemoryLimit}
		}
		return w.memErr
	}
	return nil
}

// MemoryLimitError reports that the target program exceeded the simulated
// memory available to the simulator, the failure mode that prevents
// MPI-SIM-DE from simulating large configurations.
type MemoryLimitError struct {
	Used, Limit int64
}

// Error implements error.
func (e *MemoryLimitError) Error() string {
	return fmt.Sprintf("mpi: simulated memory limit exceeded (%d > %d bytes)", e.Used, e.Limit)
}

// IsMemoryLimit reports whether err is a memory-limit failure.
func IsMemoryLimit(err error) bool {
	_, ok := err.(*MemoryLimitError)
	return ok
}
