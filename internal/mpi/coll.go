package mpi

import (
	"fmt"

	"mpisim/internal/sim"
)

// Collective operations are built from point-to-point messages using
// binomial-tree algorithms, so the simulator models them in full detail
// (the paper retains and simulates all communication code precisely).
//
// Internal collective traffic uses tags below collTagBase so it can never
// match user receives, and each rank separates successive collectives by
// the MPI non-overtaking guarantee of the transport.
const collTagBase = -1000

// ReduceOp combines a contribution into an accumulator, elementwise.
// Accumulator and contribution have equal length.
type ReduceOp func(acc, in []float64)

// OpSum adds elementwise.
func OpSum(acc, in []float64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// OpMax takes the elementwise maximum.
func OpMax(acc, in []float64) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

// OpMin takes the elementwise minimum.
func OpMin(acc, in []float64) {
	for i := range acc {
		if in[i] < acc[i] {
			acc[i] = in[i]
		}
	}
}

// collPhase records the rank's participation interval in a primitive
// collective when tracing is enabled. Use as
//
//	defer r.collPhase(name, r.Now(), bytes)()
//
// so the interval closes when the collective returns. bytes is the
// rank's payload contribution, carried into the exported trace.
// Zero-length intervals (e.g. single-rank worlds) are dropped.
func (r *Rank) collPhase(name string, start float64, bytes int64) func() {
	if !r.world.cfg.CollectTrace {
		return func() {}
	}
	return func() {
		if end := r.Now(); end > start {
			r.collPhases = append(r.collPhases, CollPhase{Name: name, Start: start, End: end, Bytes: bytes})
		}
	}
}

// chunkSizes extracts the per-destination byte counts of real chunks
// (the size-only shadow a variable-size collective records and replays).
func chunkSizes(chunks [][]float64) []int64 {
	sizes := make([]int64, len(chunks))
	for i, c := range chunks {
		sizes[i] = int64(len(c)) * 8
	}
	return sizes
}

// sumSizes totals a per-destination size vector (the payload a rank
// feeds into a variable-size collective).
func sumSizes(sizes []int64) int64 {
	var total int64
	for _, s := range sizes {
		total += s
	}
	return total
}

// ceilLog2 returns ceil(log2(p)) for p >= 1.
func ceilLog2(p int) float64 {
	steps := 0.0
	for n := 1; n < p; n <<= 1 {
		steps++
	}
	return steps
}

// abstractColl charges the closed-form cost of a collective under the
// AbstractComm model and reports whether that model is active. steps is
// the number of sequential communication rounds the algorithm needs;
// each costs a send overhead plus an analytic transfer. Payload values
// are not transported under this model.
func (r *Rank) abstractColl(steps float64, bytes int64) bool {
	if r.world.cfg.Comm != AbstractComm {
		return false
	}
	n := &r.world.cfg.Machine.Net
	r.commCPU += sim.Time(steps * n.SendOverhead)
	r.proc.Advance(sim.Time(steps * (n.SendOverhead + n.AnalyticDelay(bytes))))
	return true
}

// collBytes resolves the simulated payload size: real data wins over the
// declared size so that simplified (AM) programs can pass nil data with an
// explicit byte count.
func collBytes(data []float64, size int64) int64 {
	if data != nil {
		return int64(len(data)) * 8
	}
	if size < 0 {
		return 0
	}
	return size
}

// Bcast broadcasts data of the given size from root using a binomial
// tree. Every rank returns the broadcast data (nil when the caller passed
// nil, i.e. in simplified programs where only timing matters).
func (r *Rank) Bcast(root int, data []float64, size int64) []float64 {
	p := r.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range", root))
	}
	r.collectives++
	bytes := collBytes(data, size)
	defer r.record(Call{Op: "bcast", Root: root, Bytes: bytes})()
	defer r.collPhase("bcast", r.Now(), bytes)()
	if p == 1 {
		return data
	}
	if r.abstractColl(ceilLog2(p), bytes) {
		return data
	}
	rel := (r.rank - root + p) % p
	// Receive phase: find the subtree parent.
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			_, payload := r.Recv(src, collTagBase)
			if payload != nil {
				// Clone so ranks never share mutable state through the
				// simulated network.
				data = cloneVec(payload.([]float64))
			}
			break
		}
		mask <<= 1
	}
	// Send phase: forward to subtree children.
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			var payload interface{}
			if data != nil {
				payload = data
			}
			r.send(dst, collTagBase, bytes, payload)
		}
		mask >>= 1
	}
	return data
}

// Reduce combines data from all ranks at root with op over a binomial
// tree. The root returns the combined vector; other ranks return nil.
// data may be nil (with an explicit size) in simplified programs; the
// combination is then skipped but the communication is fully simulated.
func (r *Rank) Reduce(root int, data []float64, size int64, op ReduceOp) []float64 {
	p := r.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: Reduce root %d out of range", root))
	}
	r.collectives++
	bytes := collBytes(data, size)
	defer r.record(Call{Op: "reduce", Root: root, Bytes: bytes})()
	defer r.collPhase("reduce", r.Now(), bytes)()
	if p == 1 {
		return cloneVec(data)
	}
	if r.abstractColl(ceilLog2(p), bytes) {
		if r.rank == root {
			return cloneVec(data)
		}
		return nil
	}
	acc := cloneVec(data)
	rel := (r.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask == 0 {
			child := rel + mask
			if child < p {
				src := (child + root) % p
				_, payload := r.Recv(src, collTagBase-1)
				if payload != nil && acc != nil {
					op(acc, payload.([]float64))
				}
			}
		} else {
			dst := (rel - mask + root) % p
			var payload interface{}
			if acc != nil {
				payload = acc
			}
			r.send(dst, collTagBase-1, bytes, payload)
			return nil
		}
		mask <<= 1
	}
	if r.rank == root {
		return acc
	}
	return nil
}

// Allreduce combines data across all ranks and distributes the result,
// implemented as Reduce to rank 0 followed by Bcast (both fully
// simulated). Every rank returns the combined vector (nil payloads stay
// nil).
func (r *Rank) Allreduce(data []float64, size int64, op ReduceOp) []float64 {
	defer r.record(Call{Op: "allreduce", Bytes: collBytes(data, size)})()
	acc := r.Reduce(0, data, size, op)
	return r.Bcast(0, acc, collBytes(data, size))
}

// Barrier blocks until all ranks have entered it, modeled as a zero-byte
// allreduce over the binomial trees.
func (r *Rank) Barrier() {
	defer r.record(Call{Op: "barrier"})()
	r.Allreduce(nil, 4, OpSum)
}

// Gather collects size-byte contributions at root (linear algorithm).
// The root returns the concatenation in rank order; others return nil.
func (r *Rank) Gather(root int, data []float64, size int64) [][]float64 {
	p := r.Size()
	r.collectives++
	bytes := collBytes(data, size)
	defer r.record(Call{Op: "gather", Root: root, Bytes: bytes})()
	defer r.collPhase("gather", r.Now(), bytes)()
	if r.abstractColl(float64(p-1), bytes) {
		return nil
	}
	if r.rank != root {
		var payload interface{}
		if data != nil {
			payload = data
		}
		r.send(root, collTagBase-2, bytes, payload)
		return nil
	}
	out := make([][]float64, p)
	out[r.rank] = cloneVec(data)
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		_, payload := r.Recv(src, collTagBase-2)
		if payload != nil {
			out[src] = payload.([]float64)
		}
	}
	return out
}

// Scatter distributes per-rank chunks from root (linear algorithm). Rank
// i receives chunks[i]; size is the per-chunk byte count used when
// chunks is nil.
func (r *Rank) Scatter(root int, chunks [][]float64, size int64) []float64 {
	var sizes []int64
	if chunks != nil && r.rank == root {
		sizes = chunkSizes(chunks)
	}
	defer r.record(Call{Op: "scatter", Root: root, Bytes: size, Sizes: sizes})()
	return r.scatter(root, chunks, sizes, size)
}

// ScatterSizes is Scatter at the root with explicit per-destination
// byte counts and no payload movement: destination d's chunk costs
// sizes[d] bytes (sizes must have one entry per rank). It is the
// replay-side form of a variable-size Scatter recorded from real
// chunks; non-root ranks ignore sizes.
func (r *Rank) ScatterSizes(root int, sizes []int64, size int64) []float64 {
	if r.rank != root {
		sizes = nil
	}
	defer r.record(Call{Op: "scatter", Root: root, Bytes: size, Sizes: sizes})()
	return r.scatter(root, nil, sizes, size)
}

func (r *Rank) scatter(root int, chunks [][]float64, sizes []int64, size int64) []float64 {
	p := r.Size()
	r.collectives++
	phaseBytes := size
	if sizes != nil && r.rank == root {
		phaseBytes = sumSizes(sizes)
	}
	defer r.collPhase("scatter", r.Now(), phaseBytes)()
	if r.abstractColl(float64(p-1), size) {
		if chunks != nil && r.rank == root {
			return chunks[root]
		}
		return nil
	}
	if r.rank == root {
		for dst := 0; dst < p; dst++ {
			if dst == root {
				continue
			}
			var payload interface{}
			bytes := size
			if chunks != nil {
				payload = chunks[dst]
			}
			if sizes != nil {
				bytes = sizes[dst]
			}
			r.send(dst, collTagBase-3, bytes, payload)
		}
		if chunks != nil {
			return chunks[root]
		}
		return nil
	}
	_, payload := r.Recv(root, collTagBase-3)
	if payload != nil {
		return payload.([]float64)
	}
	return nil
}

// Allgather gathers equal-size contributions everywhere using a ring
// algorithm (P-1 steps of neighbour exchange).
func (r *Rank) Allgather(data []float64, size int64) [][]float64 {
	p := r.Size()
	r.collectives++
	bytes := collBytes(data, size)
	defer r.record(Call{Op: "allgather", Bytes: bytes})()
	defer r.collPhase("allgather", r.Now(), bytes)()
	out := make([][]float64, p)
	out[r.rank] = cloneVec(data)
	if p == 1 {
		return out
	}
	if r.abstractColl(float64(p-1), bytes) {
		return out
	}
	right := (r.rank + 1) % p
	left := (r.rank - 1 + p) % p
	// Pass blocks around the ring: at step s we forward the block that
	// originated at rank (rank-s+p)%p.
	for s := 0; s < p-1; s++ {
		origin := (r.rank - s + p) % p
		var payload interface{}
		if out[origin] != nil {
			payload = out[origin]
		}
		r.send(right, collTagBase-4, bytes, payload)
		_, in := r.Recv(left, collTagBase-4)
		inOrigin := (r.rank - s - 1 + p) % p
		if in != nil {
			out[inOrigin] = in.([]float64)
		}
	}
	return out
}

// Alltoall exchanges size bytes between every pair of ranks (pairwise
// exchange algorithm). Real payloads are taken from chunks (indexed by
// destination) when non-nil; the result is indexed by source.
func (r *Rank) Alltoall(chunks [][]float64, size int64) [][]float64 {
	var sizes []int64
	if chunks != nil {
		sizes = chunkSizes(chunks)
	}
	defer r.record(Call{Op: "alltoall", Bytes: size, Sizes: sizes})()
	return r.alltoall(chunks, sizes, size)
}

// AlltoallSizes is Alltoall with explicit per-destination byte counts
// and no payload movement: the message to rank d costs sizes[d] bytes
// (sizes must have one entry per rank). It is the replay-side form of a
// variable-size Alltoall recorded from real chunks.
func (r *Rank) AlltoallSizes(sizes []int64, size int64) [][]float64 {
	defer r.record(Call{Op: "alltoall", Bytes: size, Sizes: sizes})()
	return r.alltoall(nil, sizes, size)
}

func (r *Rank) alltoall(chunks [][]float64, sizes []int64, size int64) [][]float64 {
	p := r.Size()
	r.collectives++
	phaseBytes := size * int64(p)
	if sizes != nil {
		phaseBytes = sumSizes(sizes)
	}
	defer r.collPhase("alltoall", r.Now(), phaseBytes)()
	out := make([][]float64, p)
	if chunks != nil {
		out[r.rank] = chunks[r.rank]
	}
	if r.abstractColl(float64(p-1), size) {
		return out
	}
	for step := 1; step < p; step++ {
		dst := (r.rank + step) % p
		src := (r.rank - step + p) % p
		var payload interface{}
		bytes := size
		if chunks != nil {
			payload = chunks[dst]
		}
		if sizes != nil {
			bytes = sizes[dst]
		}
		r.send(dst, collTagBase-5, bytes, payload)
		_, in := r.Recv(src, collTagBase-5)
		if in != nil {
			out[src] = in.([]float64)
		}
	}
	return out
}

func cloneVec(v []float64) []float64 {
	if v == nil {
		return nil
	}
	c := make([]float64, len(v))
	copy(c, v)
	return c
}
