package interp

import (
	"fmt"
	"math"

	"mpisim/internal/ir"
	"mpisim/internal/mpi"
	"mpisim/internal/symexpr"
)

// dummyBufferName mirrors compiler.DummyBufferName, the shared
// communication stand-in buffer of simplified (MPI-SIM-AM) programs.
// interp cannot import compiler (compiler's in-package tests import
// interp); the compiler's own tests pin the constant's value.
const dummyBufferName = "dummy_buf"

// compiled is a program lowered to closures over a frame. Compilation
// resolves every scalar name to a slot and every array name to an index,
// so execution performs no map lookups.
type compiled struct {
	prog       *ir.Program
	slots      map[string]int
	numScalars int
	slotP      int
	slotMyID   int
	arrays     []*compiledArray
	arrayIdx   map[string]int
	body       []stmtFn
}

type compiledArray struct {
	name   string
	dimFns []exprFn
	elem   int64
}

type stmtFn func(*frame)

type exprFn func(*frame) float64

func compile(p *ir.Program) (cp *compiled, err error) {
	defer func() {
		if r := recover(); r != nil {
			cp = nil
			err = fmt.Errorf("interp: compile %s: %v", p.Name, r)
		}
	}()
	cp = &compiled{
		prog:     p,
		slots:    map[string]int{},
		arrayIdx: map[string]int{},
	}
	cp.slotP = cp.slot(ir.BuiltinP)
	cp.slotMyID = cp.slot(ir.BuiltinMyID)
	for _, par := range p.Params {
		cp.slot(par)
	}
	for i, ad := range p.Arrays {
		ca := &compiledArray{name: ad.Name, elem: ad.Elem}
		for _, de := range ad.Dims {
			ca.dimFns = append(ca.dimFns, cp.expr(de))
		}
		cp.arrays = append(cp.arrays, ca)
		cp.arrayIdx[ad.Name] = i
	}
	cp.body = cp.block(p.Body)
	cp.numScalars = len(cp.slots)
	return cp, nil
}

// slot returns the frame slot for a scalar, allocating on first use.
func (cp *compiled) slot(name string) int {
	if s, ok := cp.slots[name]; ok {
		return s
	}
	s := len(cp.slots)
	cp.slots[name] = s
	return s
}

func (cp *compiled) array(name string) int {
	i, ok := cp.arrayIdx[name]
	if !ok {
		panic(fmt.Sprintf("undeclared array %q", name))
	}
	return i
}

func (cp *compiled) block(body []ir.Stmt) []stmtFn {
	fns := make([]stmtFn, 0, len(body))
	for _, s := range body {
		fns = append(fns, cp.stmt(s))
	}
	return fns
}

// evalSection compiles section bounds to a closure producing evaluated
// integer bounds.
func (cp *compiled) section(sec []ir.Range) func(*frame) [][2]int {
	los := make([]exprFn, len(sec))
	his := make([]exprFn, len(sec))
	for i, rg := range sec {
		los[i] = cp.expr(rg.Lo)
		his[i] = cp.expr(rg.Hi)
	}
	return func(f *frame) [][2]int {
		out := make([][2]int, len(los))
		for i := range los {
			out[i][0] = int(math.Round(los[i](f)))
			out[i][1] = int(math.Round(his[i](f)))
		}
		return out
	}
}

func sectionBytes(bounds [][2]int) int64 {
	return int64(sectionElems(bounds)) * 8
}

func (cp *compiled) stmt(s ir.Stmt) stmtFn {
	switch x := s.(type) {
	case *ir.Assign:
		rhs := cp.expr(x.RHS)
		cost := 1 + ir.OpCount(x.RHS)
		if !x.LHS.IsArray() {
			slot := cp.slot(x.LHS.Name)
			return func(f *frame) {
				f.ops += cost
				f.scalars[slot] = rhs(f)
			}
		}
		ai := cp.array(x.LHS.Name)
		idxFns := make([]exprFn, len(x.LHS.Index))
		for i, e := range x.LHS.Index {
			idxFns[i] = cp.expr(e)
			cost += ir.OpCount(e)
		}
		nd := len(idxFns)
		return func(f *frame) {
			f.ops += cost
			a := f.arrays[ai]
			idx := make([]int, nd)
			for i := range idxFns {
				idx[i] = int(math.Round(idxFns[i](f)))
			}
			a.data[a.linear(idx)] = rhs(f)
		}

	case *ir.For:
		slot := cp.slot(x.Var)
		lo := cp.expr(x.Lo)
		hi := cp.expr(x.Hi)
		body := cp.block(x.Body)
		headCost := ir.OpCount(x.Lo) + ir.OpCount(x.Hi) + 1
		return func(f *frame) {
			f.ops += headCost
			loV := math.Round(lo(f))
			hiV := math.Round(hi(f))
			for v := loV; v <= hiV; v++ {
				f.ops++
				f.scalars[slot] = v
				for _, st := range body {
					st(f)
				}
			}
		}

	case *ir.If:
		cond := cp.expr(x.Cond)
		cost := 1 + ir.OpCount(x.Cond)
		then := cp.block(x.Then)
		els := cp.block(x.Else)
		stmt := x
		return func(f *frame) {
			f.ops += cost
			taken := cond(f) != 0
			if bp := f.cfg.BranchProfile; bp != nil {
				bp.Record(stmt, taken)
			}
			if taken {
				for _, st := range then {
					st(f)
				}
			} else {
				for _, st := range els {
					st(f)
				}
			}
		}

	case *ir.Send:
		dest := cp.expr(x.Dest)
		secFn := cp.section(x.Section)
		ai := cp.array(x.Array)
		tag := x.Tag
		isDummy := x.Array == dummyBufferName
		return func(f *frame) {
			f.flush()
			bounds := secFn(f)
			if sectionElems(bounds) == 0 {
				return
			}
			var payload interface{}
			if !isDummy {
				payload = f.arrays[ai].pack(bounds)
			}
			// Dummy-buffer sends (simplified MPI-SIM-AM programs) carry no
			// payload: the buffer exists only to preserve message sizes, its
			// values are never read (zeros either way), and skipping pack
			// keeps the AM hot path allocation-free. The receive side only
			// unpacks []float64 payloads, so nil is ignored there.
			f.r.Send(int(math.Round(dest(f))), tag, sectionBytes(bounds), payload)
		}

	case *ir.Recv:
		src := cp.expr(x.Src)
		secFn := cp.section(x.Section)
		ai := cp.array(x.Array)
		tag := x.Tag
		return func(f *frame) {
			f.flush()
			bounds := secFn(f)
			if sectionElems(bounds) == 0 {
				return
			}
			_, payload := f.r.RecvSized(int(math.Round(src(f))), tag, sectionBytes(bounds))
			if data, ok := payload.([]float64); ok {
				f.arrays[ai].unpack(bounds, data)
			}
		}

	case *ir.Allreduce:
		slots := make([]int, len(x.Vars))
		for i, v := range x.Vars {
			slots[i] = cp.slot(v)
		}
		var op mpi.ReduceOp
		switch x.Op {
		case "sum":
			op = mpi.OpSum
		case "max":
			op = mpi.OpMax
		case "min":
			op = mpi.OpMin
		}
		return func(f *frame) {
			f.flush()
			vec := make([]float64, len(slots))
			for i, sl := range slots {
				vec[i] = f.scalars[sl]
			}
			out := f.r.Allreduce(vec, int64(len(vec))*8, op)
			// The AbstractComm model transports no values; keep locals.
			if out != nil {
				for i, sl := range slots {
					f.scalars[sl] = out[i]
				}
			}
		}

	case *ir.Bcast:
		root := cp.expr(x.Root)
		slots := make([]int, len(x.Vars))
		for i, v := range x.Vars {
			slots[i] = cp.slot(v)
		}
		return func(f *frame) {
			f.flush()
			rt := int(math.Round(root(f)))
			var vec []float64
			if f.r.Rank() == rt {
				vec = make([]float64, len(slots))
				for i, sl := range slots {
					vec[i] = f.scalars[sl]
				}
			}
			out := f.r.Bcast(rt, vec, int64(len(slots))*8)
			// The AbstractComm model transports no values; keep locals.
			if out != nil {
				for i, sl := range slots {
					f.scalars[sl] = out[i]
				}
			}
		}

	case *ir.Barrier:
		return func(f *frame) {
			f.flush()
			f.r.Barrier()
		}

	case *ir.ReadInput:
		slot := cp.slot(x.Var)
		name := x.Var
		return func(f *frame) {
			v, ok := f.cfg.Inputs[name]
			if !ok {
				panic(fmt.Sprintf("interp: missing program input %q", name))
			}
			f.scalars[slot] = v
		}

	case *ir.Delay:
		sec := cp.expr(x.Seconds)
		task := x.Task
		return func(f *frame) {
			// Delay arguments are simulator work, not target computation:
			// no op charge, and pending target ops flush first so that
			// timing order is preserved.
			f.flush()
			f.r.DelayTask(task, sec(f))
		}

	case *ir.ReadTaskTimes:
		slots := make([]int, len(x.Names))
		for i, n := range x.Names {
			slots[i] = cp.slot(n)
		}
		names := x.Names
		return func(f *frame) {
			f.flush()
			for i, n := range names {
				f.scalars[slots[i]] = f.r.ReadTaskTime(n)
			}
		}

	case *ir.Timed:
		units := cp.expr(x.Units)
		body := cp.block(x.Body)
		id := x.ID
		return func(f *frame) {
			f.flush()
			t0 := f.r.Now()
			for _, st := range body {
				st(f)
			}
			f.flush()
			if f.cfg.Calibration != nil {
				f.cfg.Calibration.Add(id, f.r.Now()-t0, units(f))
			}
		}
	}
	panic(fmt.Sprintf("unknown statement type %T", s))
}

func (cp *compiled) expr(e ir.Expr) exprFn {
	switch x := e.(type) {
	case ir.Num:
		v := x.Value
		return func(*frame) float64 { return v }

	case ir.Scalar:
		slot := cp.slot(x.Name)
		return func(f *frame) float64 { return f.scalars[slot] }

	case ir.Idx:
		ai := cp.array(x.Array)
		idxFns := make([]exprFn, len(x.Index))
		for i, sub := range x.Index {
			idxFns[i] = cp.expr(sub)
		}
		switch len(idxFns) {
		case 1:
			i0 := idxFns[0]
			return func(f *frame) float64 {
				a := f.arrays[ai]
				v := int(math.Round(i0(f)))
				if v < 1 || v > a.dims[0] {
					panic(fmt.Sprintf("interp: index %d out of bounds [1,%d] of %s", v, a.dims[0], a.name))
				}
				return a.data[v-1]
			}
		case 2:
			i0, i1 := idxFns[0], idxFns[1]
			return func(f *frame) float64 {
				a := f.arrays[ai]
				v0 := int(math.Round(i0(f)))
				v1 := int(math.Round(i1(f)))
				if v0 < 1 || v0 > a.dims[0] || v1 < 1 || v1 > a.dims[1] {
					panic(fmt.Sprintf("interp: index (%d,%d) out of bounds of %s", v0, v1, a.name))
				}
				return a.data[(v0-1)*a.dims[1]+(v1-1)]
			}
		default:
			nd := len(idxFns)
			return func(f *frame) float64 {
				a := f.arrays[ai]
				idx := make([]int, nd)
				for i := range idxFns {
					idx[i] = int(math.Round(idxFns[i](f)))
				}
				return a.data[a.linear(idx)]
			}
		}

	case ir.Bin:
		l := cp.expr(x.L)
		r := cp.expr(x.R)
		switch x.Op {
		case ir.OpAdd:
			return func(f *frame) float64 { return l(f) + r(f) }
		case ir.OpSub:
			return func(f *frame) float64 { return l(f) - r(f) }
		case ir.OpMul:
			return func(f *frame) float64 { return l(f) * r(f) }
		default:
			op := x.Op
			return func(f *frame) float64 {
				v, err := symexpr.ApplyOp(op, l(f), r(f))
				if err != nil {
					panic(err.Error())
				}
				return v
			}
		}

	case ir.Call:
		fn := ir.Intrinsics[x.Name]
		if fn == nil {
			panic(fmt.Sprintf("unknown intrinsic %q", x.Name))
		}
		arg := cp.expr(x.Arg)
		return func(f *frame) float64 { return fn(arg(f)) }

	case ir.SumE:
		slot := cp.slot(x.Index)
		lo := cp.expr(x.Lo)
		hi := cp.expr(x.Hi)
		body := cp.expr(x.Body)
		return func(f *frame) float64 {
			loV := math.Round(lo(f))
			hiV := math.Round(hi(f))
			saved := f.scalars[slot]
			total := 0.0
			for v := loV; v <= hiV; v++ {
				f.scalars[slot] = v
				total += body(f)
			}
			f.scalars[slot] = saved
			return total
		}
	}
	panic(fmt.Sprintf("unknown expression type %T", e))
}
