package interp

import (
	"mpisim/internal/ir"
)

// MemoryEstimate returns the total bytes of target-program array state a
// direct-execution simulation of the program would allocate across all
// ranks, by evaluating the array dimension expressions per rank without
// running the program. It reproduces how the paper reasons about the
// memory wall of MPI-SIM-DE for configurations too large to actually run
// (Table 1, Figures 10 and 11).
func MemoryEstimate(p *ir.Program, ranks int, inputs map[string]float64) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	cp, err := compile(p)
	if err != nil {
		return 0, err
	}
	var total int64
	f := &frame{cp: cp, scalars: make([]float64, cp.numScalars)}
	for rank := 0; rank < ranks; rank++ {
		f.scalars[cp.slotP] = float64(ranks)
		f.scalars[cp.slotMyID] = float64(rank)
		//simvet:allow maprange each input binds its own scalar slot; order-independent
		for name, v := range inputs {
			if slot, ok := cp.slots[name]; ok {
				f.scalars[slot] = v
			}
		}
		for _, ad := range cp.arrays {
			elems := int64(1)
			for _, fn := range ad.dimFns {
				v := int64(fn(f))
				if v < 1 {
					v = 1
				}
				elems *= v
			}
			total += elems * ad.elem
		}
	}
	return total, nil
}
