package interp

import (
	"math"
	"strings"
	"testing"

	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

func baseConfig(ranks int) Config {
	return Config{Ranks: ranks, Machine: machine.IBMSP(), Comm: mpi.Analytic,
		Inputs: map[string]float64{}}
}

func run(t *testing.T, p *ir.Program, cfg Config) *mpi.Report {
	t.Helper()
	rep, err := Run(p, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", p.Name, err)
	}
	return rep
}

// scalarProbe builds a program that computes into array R(1) so tests can
// verify values via a final allreduce... simpler: use a 1-element array
// and a Send to rank 0? Values are internal to the simulation, so tests
// verify behaviour through timing, memory and error channels, plus data
// movement via cross-rank round trips that would deadlock or mismatch on
// error.

func TestSimpleComputeTime(t *testing.T) {
	// x = 1+2 executed once: cost = 1 store + 1 op = 2 ops.
	p := &ir.Program{
		Name: "simple",
		Body: ir.Block(ir.SetS("x", ir.Add(ir.N(1), ir.N(2)))),
	}
	m := machine.IBMSP()
	cfg := baseConfig(1)
	rep := run(t, p, cfg)
	want := m.ComputeTime(2, 0)
	if math.Abs(rep.Time-want) > 1e-15 {
		t.Fatalf("Time = %v, want %v", rep.Time, want)
	}
}

func TestLoopOpAccounting(t *testing.T) {
	// do i=1,10 { x = i } : head 1 + 10*(1 iter + (1 store)) = 1+10*2 = 21
	p := &ir.Program{
		Name: "loop",
		Body: ir.Block(ir.Loop("", "i", ir.N(1), ir.N(10), ir.SetS("x", ir.S("i")))),
	}
	m := machine.IBMSP()
	rep := run(t, p, baseConfig(1))
	want := m.ComputeTime(21, 0)
	if math.Abs(rep.Time-want) > 1e-15 {
		t.Fatalf("Time = %v, want %v", rep.Time, want)
	}
}

func TestEmptyLoopRuns(t *testing.T) {
	p := &ir.Program{
		Name: "empty",
		Body: ir.Block(ir.Loop("", "i", ir.N(5), ir.N(4), ir.SetS("x", ir.N(1)))),
	}
	rep := run(t, p, baseConfig(1))
	m := machine.IBMSP()
	if rep.Time != m.ComputeTime(1, 0) { // loop head only
		t.Fatalf("Time = %v", rep.Time)
	}
}

func TestArrayAllocationAndMemory(t *testing.T) {
	p := &ir.Program{
		Name:   "alloc",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{
			{Name: "A", Dims: []ir.Expr{ir.S("N"), ir.CeilDiv(ir.S("N"), ir.S(ir.BuiltinP))}, Elem: 8},
		},
		Body: ir.Block(ir.SetA("A", ir.IX(ir.N(1), ir.N(1)), ir.N(42))),
	}
	cfg := baseConfig(4)
	cfg.Inputs["N"] = 100
	rep := run(t, p, cfg)
	// per rank: 100 x ceil(100/4)=25 elements x 8 bytes = 20000
	for i, rs := range rep.Ranks {
		if rs.PeakBytes != 20000 {
			t.Fatalf("rank %d PeakBytes = %d, want 20000", i, rs.PeakBytes)
		}
	}
	if rep.TotalPeakBytes != 80000 {
		t.Fatalf("TotalPeakBytes = %d", rep.TotalPeakBytes)
	}
}

func TestMissingInputFails(t *testing.T) {
	p := &ir.Program{Name: "noin", Body: ir.Block(&ir.ReadInput{Var: "N"})}
	_, err := Run(p, baseConfig(1))
	if err == nil || !strings.Contains(err.Error(), "missing program input") {
		t.Fatalf("expected missing input error, got %v", err)
	}
}

func TestIndexOutOfBounds(t *testing.T) {
	p := &ir.Program{
		Name:   "oob",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(5)}, Elem: 8}},
		Body:   ir.Block(ir.SetS("x", ir.At("A", ir.N(9)))),
	}
	_, err := Run(p, baseConfig(1))
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected bounds error, got %v", err)
	}
}

// shiftProgram moves each rank's value to its left neighbour and checks
// it (a panic inside the If signals failure through the kernel).
func shiftProgram() *ir.Program {
	myid := ir.S(ir.BuiltinMyID)
	return &ir.Program{
		Name:   "shift",
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(4)}, Elem: 8}},
		Body: ir.Block(
			// D(1) = myid
			ir.SetA("D", ir.IX(ir.N(1)), myid),
			// send D(1:1) to myid-1
			&ir.If{Cond: ir.GT(myid, ir.N(0)),
				Then: ir.Block(&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Pt(ir.N(1))})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))),
				Then: ir.Block(&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Pt(ir.N(2))})},
			// On non-last ranks, D(2) must now equal myid+1; flag into D(3).
			ir.SetA("D", ir.IX(ir.N(3)), ir.EQ(ir.At("D", ir.IX(ir.N(2))...), ir.Add(myid, ir.N(1)))),
		),
	}
}

func TestShiftMovesData(t *testing.T) {
	// Use a 1-element section round trip: rank1 sends its id to rank0;
	// rank0 then sends what it received to rank 1's slot 2... The shift
	// program already verifies locally: ensure it runs and time advanced.
	rep := run(t, shiftProgram(), baseConfig(4))
	if rep.Time <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	// 3 sends happen (ranks 1..3).
	var msgs int64
	for _, rs := range rep.Ranks {
		msgs += rs.MsgsSent
	}
	if msgs != 3 {
		t.Fatalf("MsgsSent total = %d, want 3", msgs)
	}
}

func TestDataIntegrityAcrossRanks(t *testing.T) {
	// Rank 0 computes a value, sends it to rank 1; rank 1 checks it and
	// sends a transformed value back; rank 0 validates, panicking on
	// mismatch (the assertion is an If whose branch indexes out of
	// bounds on failure — a visible error channel).
	myid := ir.S(ir.BuiltinMyID)
	fail := ir.SetS("x", ir.At("D", ir.N(99))) // out of bounds => panic
	p := &ir.Program{
		Name:   "integrity",
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(4)}, Elem: 8}},
		Body: ir.Block(
			&ir.If{Cond: ir.EQ(myid, ir.N(0)), Then: ir.Block(
				ir.SetA("D", ir.IX(ir.N(1)), ir.N(7)),
				&ir.Send{Dest: ir.N(1), Tag: 5, Array: "D", Section: ir.Pt(ir.N(1))},
				&ir.Recv{Src: ir.N(1), Tag: 6, Array: "D", Section: ir.Pt(ir.N(2))},
				&ir.If{Cond: ir.NE(ir.At("D", ir.N(2)), ir.N(21)), Then: ir.Block(fail)},
			)},
			&ir.If{Cond: ir.EQ(myid, ir.N(1)), Then: ir.Block(
				&ir.Recv{Src: ir.N(0), Tag: 5, Array: "D", Section: ir.Pt(ir.N(1))},
				&ir.If{Cond: ir.NE(ir.At("D", ir.N(1)), ir.N(7)), Then: ir.Block(fail)},
				ir.SetA("D", ir.IX(ir.N(2)), ir.Mul(ir.At("D", ir.N(1)), ir.N(3))),
				&ir.Send{Dest: ir.N(0), Tag: 6, Array: "D", Section: ir.Pt(ir.N(2))},
			)},
		),
	}
	run(t, p, baseConfig(2))
}

func TestAllreduceValues(t *testing.T) {
	// r = myid; allreduce sum; every rank then asserts r == P*(P-1)/2.
	fail := ir.SetS("x", ir.At("Z", ir.N(99)))
	p := &ir.Program{
		Name:   "allred",
		Arrays: []*ir.ArrayDecl{{Name: "Z", Dims: []ir.Expr{ir.N(2)}, Elem: 8}},
		Body: ir.Block(
			ir.SetS("r", ir.S(ir.BuiltinMyID)),
			&ir.Allreduce{Op: "sum", Vars: []string{"r"}},
			&ir.If{Cond: ir.NE(ir.S("r"), ir.N(6)), Then: ir.Block(fail)},
		),
	}
	run(t, p, baseConfig(4)) // 0+1+2+3 = 6
}

func TestBcastValues(t *testing.T) {
	fail := ir.SetS("x", ir.At("Z", ir.N(99)))
	p := &ir.Program{
		Name:   "bcast",
		Arrays: []*ir.ArrayDecl{{Name: "Z", Dims: []ir.Expr{ir.N(2)}, Elem: 8}},
		Body: ir.Block(
			&ir.If{Cond: ir.EQ(ir.S(ir.BuiltinMyID), ir.N(2)),
				Then: ir.Block(ir.SetS("v", ir.N(13)))},
			&ir.Bcast{Root: ir.N(2), Vars: []string{"v"}},
			&ir.If{Cond: ir.NE(ir.S("v"), ir.N(13)), Then: ir.Block(fail)},
		),
	}
	run(t, p, baseConfig(5))
}

func TestBarrierStmt(t *testing.T) {
	p := &ir.Program{Name: "bar", Body: ir.Block(&ir.Barrier{})}
	rep := run(t, p, baseConfig(4))
	if rep.Time <= 0 {
		t.Fatal("barrier cost nothing")
	}
}

func TestDelayStmt(t *testing.T) {
	p := &ir.Program{
		Name: "delay",
		Body: ir.Block(
			ir.SetS("w_1", ir.N(1e-6)),
			&ir.Delay{Seconds: ir.Mul(ir.S("w_1"), ir.N(1000)), Task: "t1"},
		),
	}
	rep := run(t, p, baseConfig(1))
	if rep.Ranks[0].DelayTime != 1e-3 {
		t.Fatalf("DelayTime = %v, want 1e-3", rep.Ranks[0].DelayTime)
	}
}

func TestReadTaskTimes(t *testing.T) {
	p := &ir.Program{
		Name: "rtt",
		Body: ir.Block(
			&ir.ReadTaskTimes{Names: []string{"w_1"}},
			&ir.Delay{Seconds: ir.Mul(ir.S("w_1"), ir.N(100)), Task: "t1"},
		),
	}
	cfg := baseConfig(3)
	cfg.TaskTimes = map[string]float64{"w_1": 2e-5}
	rep := run(t, p, cfg)
	for i, rs := range rep.Ranks {
		if math.Abs(float64(rs.DelayTime)-2e-3) > 1e-12 {
			t.Fatalf("rank %d DelayTime = %v, want 2e-3", i, rs.DelayTime)
		}
	}
}

func TestTimedCalibration(t *testing.T) {
	// Timed region: loop of 50 iterations with one assign each; units
	// expression says 50 units. w = time/units must equal the machine op
	// time times ops-per-unit.
	p := &ir.Program{
		Name: "timed",
		Body: ir.Block(
			&ir.Timed{ID: "w_1", Units: ir.N(50), Body: ir.Block(
				ir.Loop("", "i", ir.N(1), ir.N(50), ir.SetS("x", ir.S("i"))),
			)},
		),
	}
	cal := NewCalibration()
	cfg := baseConfig(2)
	cfg.Calibration = cal
	run(t, p, cfg)
	tt := cal.TaskTimes()
	w := tt["w_1"]
	if w <= 0 {
		t.Fatalf("calibrated w_1 = %v", w)
	}
	// ops per execution = 1 head + 50*(1+1) = 101 over 50 units; 2 ranks
	// accumulate both but the ratio is invariant.
	m := machine.IBMSP()
	want := m.ComputeTime(101, 0) / 50
	if math.Abs(w-want) > want*1e-9 {
		t.Fatalf("w_1 = %v, want %v", w, want)
	}
	if cal.Samples("w_1") != 2 {
		t.Fatalf("Samples = %d, want 2", cal.Samples("w_1"))
	}
	if ids := cal.IDs(); len(ids) != 1 || ids[0] != "w_1" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestCalibrationEmptyUnits(t *testing.T) {
	c := NewCalibration()
	c.Add("w_0", 1.0, 0)
	if c.TaskTimes()["w_0"] != 0 {
		t.Fatal("zero-unit task should calibrate to 0")
	}
}

func TestMemoryLimitAborts(t *testing.T) {
	p := &ir.Program{
		Name:   "big",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(1e6)}, Elem: 8}},
		Body:   ir.Block(ir.SetS("x", ir.N(1))),
	}
	cfg := baseConfig(4)
	cfg.MemoryLimit = 1 << 20 // 1 MB total, each rank wants 8 MB
	_, err := Run(p, cfg)
	if err == nil || !mpi.IsMemoryLimit(err) {
		t.Fatalf("expected memory limit error, got %v", err)
	}
}

func TestValidationRunsFirst(t *testing.T) {
	p := &ir.Program{Name: "bad", Body: ir.Block(ir.SetS("x", ir.At("Nope", ir.N(1))))}
	_, err := Run(p, baseConfig(1))
	if err == nil || !strings.Contains(err.Error(), "undeclared array") {
		t.Fatalf("expected validation error, got %v", err)
	}
}

func TestSumExprEvaluation(t *testing.T) {
	// x = sum(i,1,10,i) = 55; assert via If-failure channel.
	fail := ir.SetS("y", ir.At("Z", ir.N(9)))
	p := &ir.Program{
		Name:   "sum",
		Arrays: []*ir.ArrayDecl{{Name: "Z", Dims: []ir.Expr{ir.N(2)}, Elem: 8}},
		Body: ir.Block(
			ir.SetS("x", ir.SumE{Index: "i", Lo: ir.N(1), Hi: ir.N(10), Body: ir.S("i")}),
			&ir.If{Cond: ir.NE(ir.S("x"), ir.N(55)), Then: ir.Block(fail)},
		),
	}
	run(t, p, baseConfig(1))
}

func TestSumRestoresIndex(t *testing.T) {
	fail := ir.SetS("y", ir.At("Z", ir.N(9)))
	p := &ir.Program{
		Name:   "sumidx",
		Arrays: []*ir.ArrayDecl{{Name: "Z", Dims: []ir.Expr{ir.N(2)}, Elem: 8}},
		Body: ir.Block(
			ir.SetS("i", ir.N(77)),
			ir.SetS("x", ir.SumE{Index: "i", Lo: ir.N(1), Hi: ir.N(3), Body: ir.S("i")}),
			&ir.If{Cond: ir.NE(ir.S("i"), ir.N(77)), Then: ir.Block(fail)},
		),
	}
	run(t, p, baseConfig(1))
}

func TestEmptySectionSkipsComm(t *testing.T) {
	// Section with hi < lo: no message should be sent or received.
	p := &ir.Program{
		Name:   "empty-section",
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(4)}, Elem: 8}},
		Body: ir.Block(
			&ir.If{Cond: ir.EQ(ir.S(ir.BuiltinMyID), ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.N(1), Tag: 1, Array: "D", Section: ir.Sec(ir.N(3), ir.N(2))})},
			&ir.If{Cond: ir.EQ(ir.S(ir.BuiltinMyID), ir.N(1)), Then: ir.Block(
				&ir.Recv{Src: ir.N(0), Tag: 1, Array: "D", Section: ir.Sec(ir.N(3), ir.N(2))})},
		),
	}
	rep := run(t, p, baseConfig(2))
	for _, rs := range rep.Ranks {
		if rs.MsgsSent != 0 {
			t.Fatal("empty section sent a message")
		}
	}
}

func TestFigure1EndToEnd(t *testing.T) {
	// The paper's Figure 1(a): shift + compute nest, on several ranks.
	myid := ir.S(ir.BuiltinMyID)
	nArr := ir.S("N")
	b := ir.S("b")
	p := &ir.Program{
		Name:   "figure1",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{
			{Name: "A", Dims: []ir.Expr{nArr, ir.Add(ir.N(1), ir.CeilDiv(nArr, ir.S(ir.BuiltinP)))}, Elem: 8},
			{Name: "D", Dims: []ir.Expr{nArr, ir.Add(ir.N(1), ir.CeilDiv(nArr, ir.S(ir.BuiltinP)))}, Elem: 8},
		},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.SetS("b", ir.CeilDiv(nArr, ir.S(ir.BuiltinP))),
			&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(nArr, ir.N(1)), ir.N(1), ir.N(1))})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(nArr, ir.N(1)), ir.Add(b, ir.N(1)), ir.Add(b, ir.N(1)))})},
			ir.Loop("compute", "j",
				ir.MaxE(ir.N(2), ir.N(1)),
				ir.MinE(ir.Sub(nArr, ir.N(1)), b),
				ir.Loop("", "i", ir.N(2), ir.Sub(nArr, ir.N(1)),
					ir.SetA("A", ir.IX(ir.S("i"), ir.S("j")),
						ir.Mul(ir.Add(ir.At("D", ir.S("i"), ir.S("j")),
							ir.At("D", ir.S("i"), ir.Add(ir.S("j"), ir.N(1)))), ir.N(0.5))),
				),
			),
		),
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(4)
	cfg.Inputs["N"] = 64
	rep := run(t, p, cfg)
	if rep.Time <= 0 {
		t.Fatal("no time simulated")
	}
	// Engine equivalence on a real program.
	cfg2 := cfg
	cfg2.HostWorkers = 3
	cfg2.RealParallel = true
	rep2 := run(t, p, cfg2)
	if rep2.Time != rep.Time {
		t.Fatalf("parallel engine time %v != sequential %v", rep2.Time, rep.Time)
	}
}
