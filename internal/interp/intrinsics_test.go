package interp

import (
	"math"
	"strings"
	"testing"

	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// evalProbe runs a single-rank program that computes expr into scalar
// "out" and asserts it equals want, using the If-panic channel: if the
// value differs, an out-of-bounds access fails the run.
func evalProbe(t *testing.T, expr ir.Expr, want float64) {
	t.Helper()
	fail := ir.SetS("z", ir.At("ZZ", ir.N(99)))
	p := &ir.Program{
		Name:   "probe",
		Arrays: []*ir.ArrayDecl{{Name: "ZZ", Dims: []ir.Expr{ir.N(2)}, Elem: 8}},
		Body: ir.Block(
			ir.SetS("out", expr),
			&ir.If{Cond: ir.GT(ir.Abs(ir.Sub(ir.S("out"), ir.N(want))), ir.N(1e-9)),
				Then: ir.Block(fail)},
		),
	}
	if _, err := Run(p, Config{Ranks: 1, Machine: machine.IBMSP(),
		Comm: mpi.Analytic, Inputs: map[string]float64{}}); err != nil {
		t.Fatalf("expr %s != %v: %v", expr, want, err)
	}
}

func TestInterpIntrinsics(t *testing.T) {
	cases := []struct {
		expr ir.Expr
		want float64
	}{
		{ir.Sqrt(ir.N(25)), 5},
		{ir.Abs(ir.N(-3.5)), 3.5},
		{ir.Call{Name: "ceil", Arg: ir.N(2.2)}, 3},
		{ir.Call{Name: "floor", Arg: ir.N(2.8)}, 2},
		{ir.Call{Name: "log2", Arg: ir.N(16)}, 4},
		{ir.Call{Name: "exp", Arg: ir.N(0)}, 1},
		{ir.Call{Name: "sin", Arg: ir.N(0)}, 0},
		{ir.Call{Name: "cos", Arg: ir.N(0)}, 1},
		{ir.Mod(ir.N(-3), ir.N(5)), 2},
		{ir.Bin{Op: ir.OpIDiv, L: ir.N(17), R: ir.N(5)}, 3},
		{ir.CeilDiv(ir.N(17), ir.N(5)), 4},
		{ir.MinE(ir.N(2), ir.N(-7)), -7},
		{ir.MaxE(ir.N(2), ir.N(-7)), 2},
		{ir.LE(ir.N(2), ir.N(2)), 1},
		{ir.NE(ir.N(2), ir.N(2)), 0},
	}
	for _, c := range cases {
		evalProbe(t, c.expr, c.want)
	}
}

func TestInterpIfElseBothArms(t *testing.T) {
	// Branch on myid: rank 0 takes then, rank 1 takes else; both record
	// via distinct delay amounts.
	p := &ir.Program{
		Name: "arms",
		Body: ir.Block(
			&ir.If{
				Cond: ir.EQ(ir.S(ir.BuiltinMyID), ir.N(0)),
				Then: ir.Block(&ir.Delay{Seconds: ir.N(1), Task: "then"}),
				Else: ir.Block(&ir.Delay{Seconds: ir.N(2), Task: "else"}),
			},
		),
	}
	rep, err := Run(p, Config{Ranks: 2, Machine: machine.IBMSP(),
		Comm: mpi.Analytic, Inputs: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks[0].DelayTime != 1 || rep.Ranks[1].DelayTime != 2 {
		t.Fatalf("arm delays = %v, %v", rep.Ranks[0].DelayTime, rep.Ranks[1].DelayTime)
	}
	if rep.DelayByTask["then"] != 1 || rep.DelayByTask["else"] != 2 {
		t.Fatalf("DelayByTask = %v", rep.DelayByTask)
	}
}

func TestInterpBcastComputedRoot(t *testing.T) {
	// Root expression computed at runtime: P-1.
	fail := ir.SetS("z", ir.At("ZZ", ir.N(99)))
	p := &ir.Program{
		Name:   "computed-root",
		Arrays: []*ir.ArrayDecl{{Name: "ZZ", Dims: []ir.Expr{ir.N(2)}, Elem: 8}},
		Body: ir.Block(
			&ir.If{Cond: ir.EQ(ir.S(ir.BuiltinMyID), ir.Sub(ir.S(ir.BuiltinP), ir.N(1))),
				Then: ir.Block(ir.SetS("v", ir.N(77)))},
			&ir.Bcast{Root: ir.Sub(ir.S(ir.BuiltinP), ir.N(1)), Vars: []string{"v"}},
			&ir.If{Cond: ir.NE(ir.S("v"), ir.N(77)), Then: ir.Block(fail)},
		),
	}
	if _, err := Run(p, Config{Ranks: 5, Machine: machine.IBMSP(),
		Comm: mpi.Analytic, Inputs: map[string]float64{}}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpDeepNesting(t *testing.T) {
	// Four nested loops with an If at the bottom; checks op accounting
	// stays consistent between two identical runs (determinism).
	body := ir.SetS("x", ir.Add(ir.S("x"), ir.N(1)))
	p := &ir.Program{
		Name: "deep",
		Body: ir.Block(
			ir.Loop("", "a", ir.N(1), ir.N(3),
				ir.Loop("", "b", ir.N(1), ir.N(3),
					ir.Loop("", "c", ir.N(1), ir.N(3),
						ir.Loop("", "d", ir.N(1), ir.N(3),
							&ir.If{Cond: ir.EQ(ir.Mod(ir.S("d"), ir.N(2)), ir.N(0)),
								Then: ir.Block(body)})))),
		),
	}
	cfg := Config{Ranks: 1, Machine: machine.IBMSP(), Comm: mpi.Analytic,
		Inputs: map[string]float64{}}
	a, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Time <= 0 {
		t.Fatalf("nondeterministic or zero time: %v vs %v", a.Time, b.Time)
	}
}

func TestInterpDivisionByZeroSurfaces(t *testing.T) {
	p := &ir.Program{
		Name: "divzero",
		Body: ir.Block(ir.SetS("x", ir.Div(ir.N(1), ir.S("zero")))),
	}
	_, err := Run(p, Config{Ranks: 1, Machine: machine.IBMSP(),
		Comm: mpi.Analytic, Inputs: map[string]float64{}})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("expected division error, got %v", err)
	}
}

func TestInterpWorkingSetSelectsCacheFactor(t *testing.T) {
	// The same op count over a large working set must take longer than
	// over a small one.
	build := func(n int64) *ir.Program {
		return &ir.Program{
			Name:   "ws",
			Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(float64(n))}, Elem: 8}},
			Body: ir.Block(
				ir.Loop("", "i", ir.N(1), ir.N(1000),
					ir.SetA("A", ir.IX(ir.Add(ir.Mod(ir.S("i"), ir.N(64)), ir.N(1))), ir.S("i"))),
			),
		}
	}
	cfg := Config{Ranks: 1, Machine: machine.IBMSP(), Comm: mpi.Analytic,
		Inputs: map[string]float64{}}
	small, err := Run(build(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(build(1<<22), cfg) // 32 MB working set
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.Time / small.Time
	m := machine.IBMSP()
	if math.Abs(ratio-m.MemFactor) > 0.02*m.MemFactor {
		t.Fatalf("cache factor ratio = %v, want about %v", ratio, m.MemFactor)
	}
}
