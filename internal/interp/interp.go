// Package interp executes IR programs on the simulated MPI library.
//
// It is the reproduction's equivalent of running the generated MPI code
// under MPI-Sim: the computational statements are directly executed (real
// array arithmetic, with an abstract-operation count converted to target
// time through the machine model), communication statements are trapped
// and simulated in detail, and the compiler-emitted constructs (Delay,
// ReadTaskTimes, Timed) implement the paper's simplified and
// timer-instrumented program variants.
package interp

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"mpisim/internal/fault"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
)

// Config controls one interpretation run.
type Config struct {
	// Ranks is the number of target processes.
	Ranks int
	// Machine is the target architecture model.
	Machine *machine.Model
	// Comm selects the communication model (Detailed = "measured" ground
	// truth, Analytic = the simulator's model).
	Comm mpi.CommModel
	// HostWorkers / RealParallel / ForceGoroutine / Protocol / Queue
	// configure the simulation engine.
	HostWorkers    int
	RealParallel   bool
	ForceGoroutine bool
	Protocol       sim.Protocol
	Queue          sim.QueueKind
	// MemoryLimit bounds total simulated target memory (0 = unlimited).
	MemoryLimit int64
	// Inputs supplies the program's ReadInput values (problem sizes).
	Inputs map[string]float64
	// TaskTimes supplies the w_i calibration table for simplified
	// programs.
	TaskTimes map[string]float64
	// Calibration, when non-nil, collects w_i measurements from Timed
	// regions (the timer-instrumented program of Figure 2).
	Calibration *Calibration
	// CollectMatrix enables rank-to-rank communication accounting in the
	// report.
	CollectMatrix bool
	// BranchProfile, when non-nil, records the taken frequency of every
	// If statement executed (the paper's profiling support for the
	// statistical folding of eliminated branches, §3.1).
	BranchProfile *BranchProfile
	// CollectTrace enables per-rank activity segments in the report.
	CollectTrace bool
	// RecordCalls enables the API-level MPI call log in the report (see
	// mpi.Config.RecordCalls), from which internal/tracein records a
	// replayable trace.
	RecordCalls bool
	// Metrics / Tracer attach the observability plane to the underlying
	// kernel (see mpi.Config and internal/obs).
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Timeline / RunInfo attach the live-telemetry plane: time-series
	// snapshots and progress heartbeats (see sim.Config).
	Timeline *obs.Timeline
	RunInfo  *obs.RunInfo
	// Faults injects a deterministic fault scenario into the run (see
	// internal/fault and mpi.Config.Faults).
	Faults *fault.Scenario
	// Limits bounds the run: event/virtual-time budgets, the no-progress
	// watchdog and context cancellation (see sim.Limits). A tripped limit
	// aborts with a partial report.
	Limits sim.Limits
}

// Run executes the program and returns the simulation report.
func Run(p *ir.Program, cfg Config) (*mpi.Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp, err := compile(p)
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(mpi.Config{
		Ranks:          cfg.Ranks,
		Machine:        cfg.Machine,
		Comm:           cfg.Comm,
		HostWorkers:    cfg.HostWorkers,
		RealParallel:   cfg.RealParallel,
		ForceGoroutine: cfg.ForceGoroutine,
		Protocol:       cfg.Protocol,
		Queue:          cfg.Queue,
		TaskTimes:      cfg.TaskTimes,
		MemoryLimit:    cfg.MemoryLimit,
		CollectMatrix:  cfg.CollectMatrix,
		CollectTrace:   cfg.CollectTrace,
		RecordCalls:    cfg.RecordCalls,
		Metrics:        cfg.Metrics,
		Tracer:         cfg.Tracer,
		Timeline:       cfg.Timeline,
		RunInfo:        cfg.RunInfo,
		Faults:         cfg.Faults,
		Limits:         cfg.Limits,
	})
	if err != nil {
		return nil, err
	}
	return world.Run(func(r *mpi.Rank) {
		f := newFrame(cp, r, &cfg)
		for _, st := range cp.body {
			st(f)
		}
		f.flush()
	})
}

// Calibration accumulates per-task timing from Timed regions across all
// ranks of a calibration run. w_i is total elapsed time divided by total
// scaling units, i.e. the mean cost of one unit, which is exactly the
// paper's measurement of task-time parameters on a reference
// configuration.
type Calibration struct {
	mu  sync.Mutex
	acc map[string]*calEntry
}

type calEntry struct {
	seconds float64
	units   float64
	samples int64
	// Welford online moments over the per-sample unit costs
	// (seconds/units of each region execution), for fit residuals.
	n        int64
	mean, m2 float64
	min, max float64
}

// NewCalibration returns an empty collector.
func NewCalibration() *Calibration {
	return &Calibration{acc: map[string]*calEntry{}}
}

// Add records one timed region execution.
func (c *Calibration) Add(id string, seconds, units float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.acc[id]
	if e == nil {
		e = &calEntry{}
		c.acc[id] = e
	}
	e.seconds += seconds
	e.units += units
	e.samples++
	if units > 0 {
		v := seconds / units
		e.n++
		d := v - e.mean
		e.mean += d / float64(e.n)
		e.m2 += d * (v - e.mean)
		if e.n == 1 || v < e.min {
			e.min = v
		}
		if e.n == 1 || v > e.max {
			e.max = v
		}
	}
}

// TaskTimes returns the measured w_i table, keyed by task-time parameter
// name, directly usable as Config.TaskTimes for a simplified-program run.
func (c *Calibration) TaskTimes() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.acc))
	for id, e := range c.acc {
		if e.units > 0 {
			out[id] = e.seconds / e.units
		} else {
			out[id] = 0
		}
	}
	return out
}

// IDs returns the recorded task identifiers, sorted.
func (c *Calibration) IDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.acc))
	for id := range c.acc {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Samples returns how many region executions were recorded for id.
func (c *Calibration) Samples(id string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.acc[id]; e != nil {
		return e.samples
	}
	return 0
}

// CalStat summarizes the quality of one coefficient's fit: the fitted
// w_i (total seconds / total units), the per-sample spread of unit
// costs, and the sample count. RelStddev is the coefficient of
// variation of the per-sample unit cost — the fit residual a
// calibration report surfaces (large values mean w_i is not a constant
// and the simplified program's linear model is suspect for that task).
type CalStat struct {
	ID        string  `json:"id"`
	W         float64 `json:"w"`
	Samples   int64   `json:"samples"`
	Mean      float64 `json:"mean"`
	Stddev    float64 `json:"stddev"`
	RelStddev float64 `json:"rel_stddev"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
}

// Stats returns per-coefficient fit statistics, sorted by id.
func (c *Calibration) Stats() []CalStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CalStat, 0, len(c.acc))
	for id, e := range c.acc {
		s := CalStat{ID: id, Samples: e.samples, Mean: e.mean, Min: e.min, Max: e.max}
		if e.units > 0 {
			s.W = e.seconds / e.units
		}
		if e.n > 1 {
			s.Stddev = math.Sqrt(e.m2 / float64(e.n-1))
			if s.Mean != 0 {
				s.RelStddev = s.Stddev / s.Mean
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BranchProfile accumulates branch-taken counts across all ranks of a
// profiling run, keyed by the If statement's identity.
type BranchProfile struct {
	mu     sync.Mutex
	counts map[*ir.If]*branchCount
}

type branchCount struct{ taken, total int64 }

// NewBranchProfile returns an empty collector.
func NewBranchProfile() *BranchProfile {
	return &BranchProfile{counts: map[*ir.If]*branchCount{}}
}

// Record adds one branch execution.
func (bp *BranchProfile) Record(s *ir.If, taken bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	c := bp.counts[s]
	if c == nil {
		c = &branchCount{}
		bp.counts[s] = c
	}
	c.total++
	if taken {
		c.taken++
	}
}

// Probabilities returns the measured taken probability per branch,
// usable as the compiler's branch-probability table.
func (bp *BranchProfile) Probabilities() map[*ir.If]float64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make(map[*ir.If]float64, len(bp.counts))
	for s, c := range bp.counts {
		if c.total > 0 {
			out[s] = float64(c.taken) / float64(c.total)
		}
	}
	return out
}

// Branches returns how many distinct branches were observed.
func (bp *BranchProfile) Branches() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.counts)
}

// frame is the per-rank execution state.
type frame struct {
	cp      *compiled
	r       *mpi.Rank
	cfg     *Config
	scalars []float64
	arrays  []*arrayVal
	// ops is the pending abstract-operation count, flushed to simulated
	// compute time at communication and timer boundaries.
	ops float64
	// workingSet is the rank's total allocated array bytes; it selects
	// the machine's cache factor.
	workingSet int64
}

type arrayVal struct {
	name  string
	data  []float64
	dims  []int
	bytes int64
}

func newFrame(cp *compiled, r *mpi.Rank, cfg *Config) *frame {
	f := &frame{
		cp:      cp,
		r:       r,
		cfg:     cfg,
		scalars: make([]float64, cp.numScalars),
		arrays:  make([]*arrayVal, len(cp.arrays)),
	}
	// Bind built-ins and inputs before evaluating array dimensions, as
	// Fortran binds its parameter constants before declarations.
	f.scalars[cp.slotP] = float64(r.Size())
	f.scalars[cp.slotMyID] = float64(r.Rank())
	//simvet:allow maprange each input binds its own scalar slot; order-independent
	for name, v := range cfg.Inputs {
		if slot, ok := cp.slots[name]; ok {
			f.scalars[slot] = v
		}
	}
	for i, ad := range cp.arrays {
		dims := make([]int, len(ad.dimFns))
		total := 1
		for d, fn := range ad.dimFns {
			v := int(fn(f))
			if v < 1 {
				v = 1
			}
			dims[d] = v
			total *= v
		}
		bytes := int64(total) * ad.elem
		f.arrays[i] = &arrayVal{name: ad.name, data: make([]float64, total), dims: dims, bytes: bytes}
		f.workingSet += bytes
		r.TrackAlloc(bytes)
	}
	return f
}

// flush converts pending abstract operations into simulated compute time.
func (f *frame) flush() {
	if f.ops == 0 {
		return
	}
	f.r.Compute(f.cfg.Machine.ComputeTime(f.ops, f.workingSet))
	f.ops = 0
}

// linear computes the row-major linear index for 1-based subscripts,
// bounds-checked.
func (a *arrayVal) linear(idx []int) int {
	lin := 0
	for d, v := range idx {
		if v < 1 || v > a.dims[d] {
			panic(fmt.Sprintf("interp: index %d out of bounds [1,%d] in dim %d of %s",
				v, a.dims[d], d+1, a.name))
		}
		lin = lin*a.dims[d] + (v - 1)
	}
	return lin
}

// sectionElems returns the element count of a section given evaluated
// bounds; empty ranges yield zero.
func sectionElems(bounds [][2]int) int {
	total := 1
	for _, b := range bounds {
		n := b[1] - b[0] + 1
		if n <= 0 {
			return 0
		}
		total *= n
	}
	return total
}

// pack copies a section into a fresh slice (snapshot semantics: the
// simulated network must not alias rank-local state).
func (a *arrayVal) pack(bounds [][2]int) []float64 {
	n := sectionElems(bounds)
	out := make([]float64, 0, n)
	if n == 0 {
		return out
	}
	idx := make([]int, len(bounds))
	for d := range bounds {
		lo := bounds[d][0]
		if lo < 1 || bounds[d][1] > a.dims[d] {
			panic(fmt.Sprintf("interp: section [%d:%d] out of bounds [1,%d] in dim %d of %s",
				bounds[d][0], bounds[d][1], a.dims[d], d+1, a.name))
		}
		idx[d] = lo
	}
	for {
		out = append(out, a.data[a.linear(idx)])
		// Odometer increment, last dimension fastest.
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= bounds[d][1] {
				break
			}
			idx[d] = bounds[d][0]
			d--
		}
		if d < 0 {
			break
		}
	}
	return out
}

// unpack copies received data into a section.
func (a *arrayVal) unpack(bounds [][2]int, data []float64) {
	n := sectionElems(bounds)
	if n == 0 {
		return
	}
	if len(data) != n {
		panic(fmt.Sprintf("interp: received %d elements for a %d-element section of %s",
			len(data), n, a.name))
	}
	idx := make([]int, len(bounds))
	for d := range bounds {
		if bounds[d][0] < 1 || bounds[d][1] > a.dims[d] {
			panic(fmt.Sprintf("interp: section [%d:%d] out of bounds [1,%d] in dim %d of %s",
				bounds[d][0], bounds[d][1], a.dims[d], d+1, a.name))
		}
		idx[d] = bounds[d][0]
	}
	for i := 0; ; i++ {
		a.data[a.linear(idx)] = data[i]
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] <= bounds[d][1] {
				break
			}
			idx[d] = bounds[d][0]
			d--
		}
		if d < 0 {
			break
		}
	}
}
