package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RecoverPolicy selects what a restarted daemon does with jobs the
// previous daemon was killed in the middle of (state compiling or
// running in the journal). Queued (pending) jobs always re-run.
type RecoverPolicy string

const (
	// RecoverRerun re-enqueues interrupted jobs; determinism of the
	// simulator means the re-run produces the same artifact the killed
	// run would have.
	RecoverRerun RecoverPolicy = "rerun"
	// RecoverAbort marks interrupted jobs aborted ("interrupted: daemon
	// restarted mid-run") without re-running them.
	RecoverAbort RecoverPolicy = "abort"
)

// Options configures a Server. The zero value of every field has a
// sensible default.
type Options struct {
	// Dir is the data directory: journal.jsonl, cas/ (artifacts) and
	// cal/ (calibration tables). Required.
	Dir string
	// Concurrency is the number of jobs simulated at once (default 2).
	Concurrency int
	// QueueCap bounds the admission queue: submissions finding it full
	// are answered 429 + Retry-After (default 16).
	QueueCap int
	// HostWorkers is the simulation engine's worker count per job
	// (default 1; results are byte-identical across worker counts, so
	// this is purely a throughput knob).
	HostWorkers int
	// MaxRanks caps the target process count a spec may ask for
	// (default 65536).
	MaxRanks int
	// MaxEventsCap / MaxVirtualTimeCap / WallTimeoutCap cap (and, when
	// a spec leaves them unset, default) the per-job run budgets.
	// WallTimeoutCap defaults to 10 minutes; the event and virtual-time
	// caps default to unlimited.
	MaxEventsCap      int64
	MaxVirtualTimeCap float64
	WallTimeoutCap    time.Duration
	// StallEvents arms the no-progress watchdog for jobs that do not
	// set their own (0 = off).
	StallEvents int64
	// RetryAfter is the Retry-After hint on 429/503 (default 2s).
	RetryAfter time.Duration
	// Recover selects the interrupted-job policy (default RecoverRerun).
	Recover RecoverPolicy
	// NoSync disables per-record journal fsync (tests only).
	NoSync bool
	// Logf, when set, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() error {
	if o.Dir == "" {
		return fmt.Errorf("svc: Options.Dir is required")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 16
	}
	if o.HostWorkers <= 0 {
		o.HostWorkers = 1
	}
	if o.MaxRanks <= 0 {
		o.MaxRanks = 65536
	}
	if o.WallTimeoutCap <= 0 {
		o.WallTimeoutCap = 10 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.Recover == "" {
		o.Recover = RecoverRerun
	}
	if o.Recover != RecoverRerun && o.Recover != RecoverAbort {
		return fmt.Errorf("svc: unknown recover policy %q", o.Recover)
	}
	return nil
}

// Server is the simulation service: admission queue, worker pool,
// journal, artifact store and HTTP surface. Create with NewServer,
// serve Handler(), stop with Drain.
type Server struct {
	opts    Options
	journal *Journal
	store   *Store
	compile *compileCache
	mux     *http.ServeMux

	baseCtx   context.Context
	cancelAll context.CancelFunc
	stopCh    chan struct{}
	stopOnce  sync.Once
	queue     chan *job
	workerWG  sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	cacheIdx map[string]string // spec hash -> artifact hash (done jobs)
	jobNum   int64
	// reserving counts submissions that passed the admission check but
	// have not yet sent to the queue (their journal append runs outside
	// mu). The invariant len(queue)+reserving <= QueueCap guarantees the
	// post-append send never blocks.
	reserving int
	draining  bool
	crashed   atomic.Bool // test hook: simulate an unclean death (outside mu: append runs both with and without it held)
}

// NewServer opens (creating or recovering) the data directory and
// starts the worker pool. Recovery replays the journal, resolves
// non-terminal jobs per Options.Recover, rebuilds the artifact-cache
// index from done records, and sweeps orphaned store content.
func NewServer(opts Options) (*Server, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	recs, nextSeq, intactSize, err := ReplayJournal(opts.Dir)
	if err != nil {
		return nil, err
	}
	store, err := OpenStore(opts.Dir)
	if err != nil {
		return nil, err
	}
	compile, err := newCompileCache(opts.Dir)
	if err != nil {
		return nil, err
	}
	journal, err := OpenJournal(opts.Dir, nextSeq, intactSize, !opts.NoSync)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts: opts, journal: journal, store: store, compile: compile,
		baseCtx: ctx, cancelAll: cancel,
		stopCh:   make(chan struct{}),
		jobs:     map[string]*job{},
		cacheIdx: map[string]string{},
	}

	// Fold the journal into the job table. Artifacts referenced by any
	// record stay; everything else in the store is an orphan.
	referenced := map[string]bool{}
	for i := range recs {
		rec := &recs[i]
		if rec.Artifact != "" {
			referenced[rec.Artifact] = true
		}
		j, ok := s.jobs[rec.ID]
		if !ok {
			if rec.Spec == nil {
				// A mutation for a job whose submit record predates the
				// journal (should not happen); skip it.
				s.logf("svc: journal: dropping record seq=%d for unknown job %s", rec.Seq, rec.ID)
				continue
			}
			rec.Spec.Normalize()
			j = newJob(rec.ID, rec.Spec, rec.SpecHash, opts.HostWorkers)
			s.jobs[rec.ID] = j
			s.order = append(s.order, rec.ID)
			if n := jobNumOf(rec.ID); n > s.jobNum {
				s.jobNum = n
			}
		}
		j.apply(rec)
	}
	if removed, err := store.Sweep(referenced); err != nil {
		journal.Close()
		return nil, err
	} else if removed > 0 {
		s.logf("svc: store: swept %d orphaned file(s)", removed)
	}

	// Resolve non-terminal jobs deterministically: pending re-runs;
	// interrupted (compiling/running) re-runs or aborts per policy.
	var requeue []*job
	for _, id := range s.order {
		j := s.jobs[id]
		switch st := j.stateIs(); {
		case st == JobPending:
			requeue = append(requeue, j)
		case !st.Terminal():
			if opts.Recover == RecoverRerun {
				if err := s.append(&Record{ID: j.id, State: JobPending}); err != nil {
					journal.Close()
					return nil, err
				}
				j.apply(&Record{State: JobPending})
				requeue = append(requeue, j)
			} else {
				rec := &Record{ID: j.id, State: JobAborted,
					Error: "interrupted: daemon restarted mid-run"}
				if err := s.append(rec); err != nil {
					journal.Close()
					return nil, err
				}
				j.apply(rec)
			}
		}
		if st := j.stateIs(); st.Terminal() || st == JobPending {
			// Telemetry tracker for replayed jobs reflects the journal.
			if st.Terminal() {
				j.ri.Finish(st.runState(), 0, j.errText)
			}
		}
		if j.stateIs() == JobDone && j.artifact != "" && store.Has(j.artifact) {
			s.cacheIdx[j.specHash] = j.artifact
		}
	}

	// The queue must hold every recovered job plus a full admission
	// window without ever blocking a submit that passed the depth check.
	s.queue = make(chan *job, opts.QueueCap+len(requeue))
	for _, j := range requeue {
		s.queue <- j
	}
	if len(requeue) > 0 {
		s.logf("svc: recovered %d job(s) to the queue", len(requeue))
	}

	s.buildMux()
	s.workerWG.Add(opts.Concurrency)
	for i := 0; i < opts.Concurrency; i++ {
		go s.worker()
	}
	return s, nil
}

// jobNumOf parses the numeric component of a job ID ("j000017-…" → 17).
func jobNumOf(id string) int64 {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	rest := id[1:]
	if i := strings.IndexByte(rest, '-'); i > 0 {
		rest = rest[:i]
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// append journals a record. In the simulated-crash test state the
// journal is gone — appends vanish exactly as they would on SIGKILL.
func (s *Server) append(rec *Record) error {
	if s.crashed.Load() {
		return nil
	}
	return s.journal.Append(rec)
}

// transition journals a job mutation write-ahead, then folds it into
// memory. Journal failures are logged but do not stop the job: the
// in-memory state keeps serving, and the operator sees the log line.
func (s *Server) transition(j *job, rec *Record) {
	rec.ID = j.id
	if err := s.append(rec); err != nil {
		s.logf("svc: journal append failed for %s: %v", j.id, err)
	}
	j.apply(rec)
}

// rememberArtifact indexes a completed run's artifact under its spec
// hash, so identical future submissions are answered from the store.
// Only complete (done) artifacts enter the index: partial artifacts
// embed wall-clock-dependent progress and must never be replayed as a
// finished result.
func (s *Server) rememberArtifact(specHash, artifactHash string, size int64) {
	s.mu.Lock()
	s.cacheIdx[specHash] = artifactHash
	s.mu.Unlock()
	s.logf("svc: cached artifact %s (%d bytes) for spec %s", artifactHash[:8], size, specHash[:8])
}

// worker pulls jobs until drain.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case j := <-s.queue:
			select {
			case <-s.stopCh:
				// Drain won the race: leave the job pending in the
				// journal for the next daemon.
				return
			default:
			}
			s.execute(j)
		}
	}
}

// Drain gracefully stops the server: no new admissions, running jobs
// cancelled via their contexts (each persists a partial artifact with
// its progress on the way out), workers joined, journal closed. Queued
// jobs stay pending in the journal for the next start. The context
// bounds how long Drain waits for workers.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cancelAll()
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.logf("svc: drain timed out with workers still busy")
	}
	return s.journal.Close()
}

// crash simulates SIGKILL for the recovery tests: journaling stops
// mid-flight (no terminal records), workers are torn down, the journal
// file handle is closed. Nothing is drained gracefully.
func (s *Server) crash() {
	s.crashed.Store(true)
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cancelAll()
	s.workerWG.Wait()
	s.journal.Close()
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("/jobs/{id}/obs/", s.handleObs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
}

// httpError answers with a JSON {"error": ...} diagnostic.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.opts.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleSubmit is POST /jobs: decode strictly, validate cheaply,
// admission-check, journal write-ahead, then either answer from the
// artifact cache or enqueue. The fsynced journal append runs outside
// s.mu — a reservation taken under the lock holds the queue slot — so
// concurrent submissions and the read-only handlers never serialize on
// a disk sync.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := DecodeSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := spec.Validate(s.opts.MaxRanks); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash := spec.Hash()

	// The store stat is a disk access; take it before the lock. Cache
	// index entries are only ever added, never removed, so a hit seen
	// here stays valid.
	s.mu.Lock()
	cachedArtifact := s.cacheIdx[hash]
	s.mu.Unlock()
	cacheHit := cachedArtifact != "" && s.store.Has(cachedArtifact)

	// Admission: reserve a queue slot (or confirm the cache hit) under
	// the lock, without journaling yet.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		httpError(w, http.StatusServiceUnavailable, "draining: not admitting new jobs")
		return
	}
	if !cacheHit && len(s.queue)+s.reserving >= s.opts.QueueCap {
		depth := len(s.queue) + s.reserving
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		httpError(w, http.StatusTooManyRequests,
			"admission queue full (%d queued); retry later", depth)
		return
	}
	if !cacheHit {
		s.reserving++
	}
	s.jobNum++
	id := fmt.Sprintf("j%06d-%s", s.jobNum, hash[:8])
	j := newJob(id, spec, hash, s.opts.HostWorkers)
	s.mu.Unlock()

	// Write-ahead barrier, outside the lock.
	appendErr := s.append(&Record{ID: id, State: JobPending, Spec: spec, SpecHash: hash})

	// Publish the job (or release the reservation on journal failure).
	s.mu.Lock()
	if !cacheHit {
		s.reserving--
	}
	if appendErr != nil {
		// The job was never published; its number stays burned so IDs
		// taken by concurrent submissions remain unique.
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "journal: %v", appendErr)
		return
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	if !cacheHit {
		// Cannot block: the reservation held this slot until now, and
		// reservation-to-send happens atomically under mu.
		s.queue <- j
	}
	s.mu.Unlock()

	if cacheHit {
		rec := &Record{ID: id, State: JobDone, Artifact: cachedArtifact,
			Progress: 1, Cached: true}
		if err := s.append(rec); err == nil {
			j.apply(rec)
			j.ri.Finish(JobDone.runState(), 0, "")
		} else {
			// The cache answer could not be journaled; fall back to a
			// real run so the journal stays authoritative. Cache hits
			// skip the depth check, so a full queue fails the job
			// instead of blocking.
			select {
			case s.queue <- j:
			default:
				frec := &Record{ID: id, State: JobFailed,
					Error: "journal unavailable and queue full"}
				_ = s.append(frec)
				j.apply(frec)
			}
		}
	}

	v := j.view()
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{views})
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleArtifact serves the run artifact bytes, checksum-verified by
// the store on every read.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	v := j.view()
	if v.Artifact == "" {
		if v.State.Terminal() {
			httpError(w, http.StatusNotFound, "job %s (%s) has no artifact", j.id, v.State)
		} else {
			httpError(w, http.StatusConflict, "job %s still %s; artifact not ready", j.id, v.State)
		}
		return
	}
	data, err := s.store.Get(v.Artifact)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "artifact: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Artifact-Sha256", v.Artifact)
	_, _ = w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch st := j.stateIs(); {
	case st.Terminal():
		httpError(w, http.StatusConflict, "job already %s", st)
		return
	case st == JobPending:
		// Never started: journal the abort directly; the worker skips
		// terminal jobs it dequeues.
		s.transition(j, &Record{State: JobAborted, Error: "cancelled by client"})
		j.ri.Finish(JobAborted.runState(), 0, "cancelled by client")
	default:
		// Compiling or running: cancel the run context; the abort path
		// persists the partial artifact and journals the terminal state.
		j.requestCancel()
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleObs mounts the job's live telemetry plane (metrics, /series,
// /run, /healthz, /events) under /jobs/{id}/obs/.
func (s *Server) handleObs(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookup(id)
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	http.StripPrefix("/jobs/"+id+"/obs", j.obs).ServeHTTP(w, r)
}

// Health is the /healthz body: daemon status plus job-state counts.
type Health struct {
	// Status is "serving" or "draining".
	Status string `json:"status"`
	// Jobs counts jobs by state.
	Jobs map[JobState]int `json:"jobs"`
	// QueueDepth is the number of admitted-but-unstarted jobs.
	QueueDepth int `json:"queue_depth"`
	// QueueCap and Concurrency echo the admission configuration.
	QueueCap    int `json:"queue_cap"`
	Concurrency int `json:"concurrency"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := Health{
		Status:      "serving",
		Jobs:        map[JobState]int{},
		QueueDepth:  len(s.queue),
		QueueCap:    s.opts.QueueCap,
		Concurrency: s.opts.Concurrency,
	}
	if s.draining {
		h.Status = "draining"
	}
	for _, j := range s.jobs {
		h.Jobs[j.stateIs()]++
	}
	s.mu.Unlock()
	code := http.StatusOK
	if h.Status != "serving" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// Jobs returns the current job views, submission order (oldest first);
// a convenience for embedding and tests.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]JobView, 0, len(s.order))
	ids := append([]string(nil), s.order...)
	sort.SliceStable(ids, func(a, b int) bool { return jobNumOf(ids[a]) < jobNumOf(ids[b]) })
	for _, id := range ids {
		views = append(views, s.jobs[id].view())
	}
	return views
}
