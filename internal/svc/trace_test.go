package svc

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpisim/internal/mpi"
	"mpisim/internal/trace"
	"mpisim/internal/tracein"
)

// ringTraceJSONL hand-builds a small valid ring trace: per rank a
// condensed-task delay, a ring sendrecv and a barrier, with full
// provenance (machine, inputs, scaling function) so replay and
// extrapolation have everything they need.
func ringTraceJSONL(t *testing.T, p int) string {
	t.Helper()
	tr := &tracein.Trace{Header: tracein.Header{
		Version: tracein.SchemaVersion,
		App:     "ringtest", Mode: "measured",
		Ranks: p, Machine: "ibmsp", Comm: "analytic",
		Inputs:    map[string]float64{"N": float64(16 * p)},
		TaskScale: map[string]string{"w_1": "N / P"},
	}}
	tr.Calls = make([][]mpi.Call, p)
	for r := 0; r < p; r++ {
		tr.Calls[r] = []mpi.Call{
			{Op: "delay", Task: "w_1", Sec: 0.001},
			{Op: "sendrecv", Peer: (r + 1) % p, Tag: 7, Bytes: 4096,
				Peer2: (r - 1 + p) % p, Tag2: 7},
			{Op: "barrier"},
		}
	}
	var buf bytes.Buffer
	if err := tracein.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// traceSpec wraps a trace (and optional extrapolation target) in a
// submission body.
func traceSpec(t *testing.T, jsonl string, traceRanks int) string {
	t.Helper()
	spec := map[string]interface{}{"trace": jsonl}
	if traceRanks > 0 {
		spec["trace_ranks"] = traceRanks
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTraceJobLifecycle submits a trace, watches it replay to done, and
// checks the artifact is a normal run artifact with replay provenance.
func TestTraceJobLifecycle(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, code, body := submit(t, ts, traceSpec(t, ringTraceJSONL(t, 4), 0))
	if code != 202 {
		t.Fatalf("submit: %d (%s)", code, body)
	}

	v := pollUntil(t, ts, id, terminal, 30*time.Second)
	if v.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", v.State, v.Error)
	}
	if v.Mode != "replay" {
		t.Errorf("view mode = %q, want replay", v.Mode)
	}
	if v.Workload != "ringtest" {
		t.Errorf("workload = %q, want the trace header's app name", v.Workload)
	}

	a, err := trace.DecodeArtifact(fetchArtifact(t, ts, id))
	if err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}
	if a.App != "ringtest" || a.Mode != "replay" || a.Machine == "" {
		t.Fatalf("artifact provenance = app %q mode %q machine %q", a.App, a.Mode, a.Machine)
	}
	if a.Report == nil || a.Report.Time <= 0 || len(a.Report.Ranks) != 4 {
		t.Fatalf("artifact report unexpected: %+v", a.Report)
	}
}

// TestTraceMalformedIs400 verifies malformed traces are rejected at
// admission with the parser's line-anchored diagnostic and are never
// enqueued.
func TestTraceMalformedIs400(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	good := ringTraceJSONL(t, 4)
	bad := []struct{ name, jsonl string }{
		{"truncated header", good[:20]},
		{"corrupt event", strings.Replace(good, `"op":"barrier"`, `"op":"zap"`, 1)},
		{"peer out of range", strings.Replace(good, `"peer":1`, `"peer":99`, 1)},
		{"empty", ""},
	}
	for _, c := range bad {
		id, code, body := submit(t, ts, traceSpec(t, c.jsonl, 0))
		if code != 400 {
			t.Errorf("%s: submit = %d (%s), want 400", c.name, code, body)
		}
		if id != "" {
			t.Errorf("%s: malformed trace was assigned job id %s", c.name, id)
		}
		if c.jsonl != "" && !strings.Contains(string(body), "line") {
			t.Errorf("%s: diagnostic not line-anchored: %s", c.name, body)
		}
	}
	if jobs := srv.Jobs(); len(jobs) != 0 {
		t.Fatalf("malformed traces were enqueued: %+v", jobs)
	}
}

// TestTraceCacheHit verifies an identical trace resubmission is
// answered from the content-addressed artifact cache (the spec hash
// covers the trace text) with a byte-identical artifact.
func TestTraceCacheHit(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := traceSpec(t, ringTraceJSONL(t, 4), 0)
	idA, _, _ := submit(t, ts, spec)
	vA := pollUntil(t, ts, idA, terminal, 30*time.Second)
	if vA.State != JobDone {
		t.Fatalf("first run ended %s (%s)", vA.State, vA.Error)
	}

	idB, _, _ := submit(t, ts, spec)
	vB := pollUntil(t, ts, idB, terminal, 30*time.Second)
	if vB.State != JobDone || !vB.Cached {
		t.Fatalf("resubmission: state %s cached %v, want done from cache", vB.State, vB.Cached)
	}
	if !bytes.Equal(fetchArtifact(t, ts, idA), fetchArtifact(t, ts, idB)) {
		t.Fatalf("cached artifact differs from the fresh one")
	}
}

// TestTraceExtrapolatedJob submits a 4-rank trace with trace_ranks 16:
// the daemon extrapolates server-side and replays at the larger size.
func TestTraceExtrapolatedJob(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, code, body := submit(t, ts, traceSpec(t, ringTraceJSONL(t, 4), 16))
	if code != 202 {
		t.Fatalf("submit: %d (%s)", code, body)
	}
	v := pollUntil(t, ts, id, terminal, 30*time.Second)
	if v.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", v.State, v.Error)
	}
	a, err := trace.DecodeArtifact(fetchArtifact(t, ts, id))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Report.Ranks) != 16 {
		t.Fatalf("extrapolated replay has %d ranks, want 16", len(a.Report.Ranks))
	}

	// trace_ranks outside the cap or not a multiple is a 400.
	if _, code, _ := submit(t, ts, traceSpec(t, ringTraceJSONL(t, 4), 6)); code != 400 {
		t.Errorf("non-multiple trace_ranks accepted: %d", code)
	}
}
