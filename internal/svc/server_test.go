package svc

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpisim/internal/trace"
)

// quickSpec is a sample-app run that finishes in well under a second.
func quickSpec() string {
	return `{"app":"sample","mode":"measured","ranks":4,
		"inputs":{"PATTERN":2,"ITERS":50,"WORK":100,"MSG":64}}`
}

// slowSpec runs for several seconds (a blocking exchange per iteration,
// so cancellation bites within milliseconds).
func slowSpec(iters int) string {
	return fmt.Sprintf(`{"app":"sample","mode":"measured","ranks":4,
		"inputs":{"PATTERN":2,"ITERS":%d,"WORK":100,"MSG":64}}`, iters)
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	opts.NoSync = true
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv
}

// submit POSTs a spec and returns (job id, HTTP status, body).
func submit(t *testing.T, ts *httptest.Server, spec string) (string, int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var v struct {
		ID string `json:"id"`
	}
	_ = json.Unmarshal(body, &v)
	return v.ID, resp.StatusCode, body
}

// getView fetches one job's view.
func getView(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollUntil polls the job until cond holds, failing at the deadline.
func pollUntil(t *testing.T, ts *httptest.Server, id string, cond func(JobView) bool, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getView(t, ts, id)
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (error %q) after %v", id, v.State, v.Error, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func terminal(v JobView) bool { return v.State.Terminal() }

// fetchArtifact GETs the artifact bytes and checks the content-address
// header matches the body.
func fetchArtifact(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact for %s: %d (%s)", id, resp.StatusCode, body)
	}
	sum := sha256.Sum256(body)
	if got := resp.Header.Get("X-Artifact-Sha256"); got != hex.EncodeToString(sum[:]) {
		t.Fatalf("artifact header %s does not match body hash", got)
	}
	return body
}

// TestJobLifecycle walks the happy path: submit → 202 + Location,
// pending/compiling/running → done, artifact fetch, per-job obs plane,
// list and healthz.
func TestJobLifecycle(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, code, body := submit(t, ts, quickSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", code, body)
	}
	if id == "" {
		t.Fatalf("submit answered without a job id: %s", body)
	}

	v := pollUntil(t, ts, id, terminal, 30*time.Second)
	if v.State != JobDone {
		t.Fatalf("job ended %s (%s), want done", v.State, v.Error)
	}
	if v.Progress != 1 {
		t.Errorf("done progress = %v, want 1", v.Progress)
	}
	if v.Artifact == "" || v.ArtifactURL == "" {
		t.Fatalf("done job has no artifact: %+v", v)
	}

	data := fetchArtifact(t, ts, id)
	a, err := trace.DecodeArtifact(data)
	if err != nil {
		t.Fatalf("artifact does not decode: %v", err)
	}
	if a.Partial || a.Report == nil || a.Report.Time <= 0 {
		t.Fatalf("artifact unexpected: partial=%v report=%v", a.Partial, a.Report)
	}

	// The per-job telemetry plane answers under /jobs/{id}/obs/.
	for _, ep := range []string{"run", "healthz", "series?since=0"} {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/obs/" + ep)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("obs/%s: %d (%s)", ep, resp.StatusCode, b)
		}
		if !json.Valid(b) {
			t.Fatalf("obs/%s is not JSON: %s", ep, b)
		}
	}
	var run struct {
		State string `json:"state"`
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/obs/run")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&run)
	resp.Body.Close()
	if err != nil || run.State != "done" {
		t.Fatalf("obs/run state = %q (%v), want done", run.State, err)
	}

	// List and health agree.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list.Jobs) != 1 || list.Jobs[0].ID != id {
		t.Fatalf("GET /jobs = %+v (%v)", list, err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Status != "serving" || h.Jobs[JobDone] != 1 {
		t.Fatalf("healthz = %+v (%v)", h, err)
	}
}

// TestOverloadReturns429 fills the admission queue and verifies the
// daemon sheds load with 429 + Retry-After instead of accepting
// unbounded work.
func TestOverloadReturns429(t *testing.T) {
	srv := newTestServer(t, Options{Concurrency: 1, QueueCap: 1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	idA, code, body := submit(t, ts, slowSpec(500000))
	if code != http.StatusAccepted {
		t.Fatalf("submit A: %d (%s)", code, body)
	}
	// Wait for the worker to take A so the queue depth is deterministic.
	pollUntil(t, ts, idA, func(v JobView) bool { return v.State != JobPending }, 10*time.Second)

	idB, code, body := submit(t, ts, slowSpec(500001))
	if code != http.StatusAccepted {
		t.Fatalf("submit B: %d (%s)", code, body)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(slowSpec(500002)))
	if err != nil {
		t.Fatal(err)
	}
	overflow, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d (%s), want 429", resp.StatusCode, overflow)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	// Cancel both admitted jobs; the queued one aborts without running.
	for _, id := range []string{idA, idB} {
		resp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s: %d", id, resp.StatusCode)
		}
	}
	vA := pollUntil(t, ts, idA, terminal, 30*time.Second)
	vB := pollUntil(t, ts, idB, terminal, 30*time.Second)
	if vA.State != JobAborted || vB.State != JobAborted {
		t.Fatalf("after cancel: A=%s B=%s, want aborted/aborted", vA.State, vB.State)
	}
	if vB.Error != "cancelled by client" {
		t.Errorf("queued-cancel error = %q", vB.Error)
	}
	// The running job was cancelled mid-flight: its partial artifact is
	// flagged partial with a cancellation reason.
	if vA.Artifact != "" {
		a, err := trace.DecodeArtifact(fetchArtifact(t, ts, idA))
		if err != nil {
			t.Fatal(err)
		}
		if !a.Partial || !strings.Contains(a.AbortReason, "canceled") {
			t.Errorf("cancelled run artifact: partial=%v reason=%q", a.Partial, a.AbortReason)
		}
	}
}

// TestPanicIsolation submits a job whose spec materialization genuinely
// panics (NAS SP on a non-square rank count) and verifies the poisoned
// job becomes a failed record while the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	srv := newTestServer(t, Options{Concurrency: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, code, body := submit(t, ts, `{"app":"nassp","mode":"measured","ranks":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", code, body)
	}
	v := pollUntil(t, ts, id, terminal, 30*time.Second)
	if v.State != JobFailed {
		t.Fatalf("poisoned job ended %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "panic") {
		t.Errorf("failure diagnostic %q does not mention the panic", v.Error)
	}

	// The server survived: a healthy job still completes.
	id2, code, body := submit(t, ts, quickSpec())
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d (%s)", code, body)
	}
	if v2 := pollUntil(t, ts, id2, terminal, 30*time.Second); v2.State != JobDone {
		t.Fatalf("post-panic job ended %s (%s), want done", v2.State, v2.Error)
	}
}

// TestFailedRunKeepsSnapshot maps a kernel-level panic
// (*sim.PanicError) onto a failed record carrying the diagnostic
// snapshot, exercising finishJob directly.
func TestFailedRunKeepsSnapshot(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// An inline program whose loop bound divides by an input set to
	// zero: expression evaluation panics inside the interpreter, the
	// panic is confined to this job, and the daemon keeps serving.
	prog := `{"program":"program div0\n  ! input Z\n  read(*, Z)\n  b = ceildiv(10, Z)\n  do j = 1, b ! t1\n    acc = (acc + 1)\n  enddo\nend",
		"ranks":2,"mode":"measured","inputs":{"Z":0},"limits":{"max_events":100000}}`
	id, code, body := submit(t, ts, prog)
	if code != http.StatusAccepted {
		t.Fatalf("submit inline program: %d (%s)", code, body)
	}
	v := pollUntil(t, ts, id, terminal, 30*time.Second)
	if v.State != JobFailed {
		t.Fatalf("job ended %s (%s), want failed", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "zero") && !strings.Contains(v.Error, "panic") {
		t.Errorf("diagnostic %q does not surface the division by zero", v.Error)
	}
	// And the daemon still answers.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after in-kernel panic: %v / %v", err, resp)
	} else {
		resp.Body.Close()
	}
}

// TestDrain covers graceful shutdown: running jobs abort with partial
// artifacts and progress, queued jobs stay pending for the next start,
// and new submissions are refused with 503.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Options{Dir: dir, Concurrency: 1, QueueCap: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	idRun, code, body := submit(t, ts, slowSpec(500000))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", code, body)
	}
	pollUntil(t, ts, idRun, func(v JobView) bool { return v.State == JobRunning }, 10*time.Second)
	idQueued, code, body := submit(t, ts, slowSpec(500003))
	if code != http.StatusAccepted {
		t.Fatalf("submit queued: %d (%s)", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	vRun := getView(t, ts, idRun)
	if vRun.State != JobAborted {
		t.Fatalf("running job after drain: %s, want aborted", vRun.State)
	}
	if vRun.Artifact == "" {
		t.Fatal("drained job persisted no partial artifact")
	}
	a, err := trace.DecodeArtifact(fetchArtifact(t, ts, idRun))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Partial {
		t.Error("drained artifact not flagged partial")
	}
	if vQ := getView(t, ts, idQueued); vQ.State != JobPending {
		t.Fatalf("queued job after drain: %s, want pending (recovered next start)", vQ.State)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(quickSpec()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	// healthz reports draining with 503 so load balancers stop routing.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d, want 503", resp.StatusCode)
	}
}

// TestJobBudgetAborts verifies per-job limits: a tiny event budget
// aborts the run as `aborted` (not failed), with the budget reason.
func TestJobBudgetAborts(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"app":"sample","mode":"measured","ranks":4,
		"inputs":{"PATTERN":2,"ITERS":100000,"WORK":100,"MSG":64},
		"limits":{"max_events":2000}}`
	id, code, body := submit(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", code, body)
	}
	v := pollUntil(t, ts, id, terminal, 30*time.Second)
	if v.State != JobAborted {
		t.Fatalf("budgeted job ended %s (%s), want aborted", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "budget") && !strings.Contains(v.Error, "events") {
		t.Errorf("abort reason %q does not mention the event budget", v.Error)
	}
}

// TestLimitClamping pins the clamp semantics: requests tighten, never
// exceed, the operator caps.
func TestLimitClamping(t *testing.T) {
	cases := []struct {
		req, cap, want int64
	}{
		{0, 0, 0},        // nothing set: unlimited
		{500, 0, 500},    // request only
		{0, 100, 100},    // unset request inherits the cap
		{50, 100, 50},    // tighter request wins
		{1000, 100, 100}, // looser request clamped
		{-5, 0, 0},       // negative sanitized
	}
	for _, c := range cases {
		if got := clampI64(c.req, c.cap); got != c.want {
			t.Errorf("clampI64(%d, %d) = %d, want %d", c.req, c.cap, got, c.want)
		}
	}
	if got := clampDur(5*time.Second, time.Second); got != time.Second {
		t.Errorf("clampDur loose request = %v, want 1s", got)
	}
	if got := clampDur(0, time.Second); got != time.Second {
		t.Errorf("clampDur unset request = %v, want 1s", got)
	}
}
