package svc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mpisim/internal/compiler"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
)

// compileCache content-addresses compiler output and calibration
// tables by program + machine configuration (JobSpec.compileKey /
// calKey): repeat submissions of the same program skip the compiler
// entirely, and AM submissions with the same calibration context skip
// the calibration run too. Compiled results are shared read-only across
// jobs; every job wraps them in its own core.Runner, so per-run state
// (Ctx, limits, telemetry) never crosses jobs.
//
// Calibration tables are additionally persisted under cal/<key>.json in
// the data directory, so a restarted daemon keeps its w_i tables. (The
// in-memory compiled IR/STG is rebuilt on demand — compilation is
// deterministic, so the tables remain valid for the same key.)
type compileCache struct {
	mu      sync.Mutex
	dir     string // cal table directory; "" disables persistence
	entries map[string]*compileEntry
}

// compileEntry is one compiled program + its calibration tables. The
// entry mutex serializes the expensive build/calibrate work per key
// while leaving other keys (and the cache map) unlocked.
type compileEntry struct {
	mu       sync.Mutex
	prog     *ir.Program
	machine  *machine.Model
	compiled *compiler.Result
	cal      map[string]map[string]float64 // calKey -> w_i table
}

// calDirName is the calibration-table directory inside a daemon data
// directory.
const calDirName = "cal"

func newCompileCache(dataDir string) (*compileCache, error) {
	c := &compileCache{entries: map[string]*compileEntry{}}
	if dataDir != "" {
		c.dir = filepath.Join(dataDir, calDirName)
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// entry returns (creating if needed) the cache slot for key.
func (c *compileCache) entry(key string) *compileEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		e = &compileEntry{cal: map[string]map[string]float64{}}
		c.entries[key] = e
	}
	return e
}

// compiled returns the entry's compiled program, building it via
// compile on first use. The caller-provided compile closure runs under
// the entry lock, so concurrent jobs needing the same program compile
// it exactly once.
func (e *compileEntry) get(build func() (*ir.Program, *machine.Model, *compiler.Result, error)) (*ir.Program, *machine.Model, *compiler.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.compiled != nil {
		return e.prog, e.machine, e.compiled, nil
	}
	prog, m, res, err := build()
	if err != nil {
		return nil, nil, nil, err
	}
	e.prog, e.machine, e.compiled = prog, m, res
	return prog, m, res, nil
}

// calibration returns the w_i table for calKey, consulting (in order)
// the in-memory entry, the on-disk table directory, and finally the
// calibrate closure — whose result is persisted for the next daemon.
func (c *compileCache) calibration(e *compileEntry, calKey string,
	calibrate func() (map[string]float64, error)) (map[string]float64, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if tt, ok := e.cal[calKey]; ok {
		return tt, true, nil
	}
	if tt, err := c.loadCal(calKey); err == nil && tt != nil {
		e.cal[calKey] = tt
		return tt, true, nil
	}
	tt, err := calibrate()
	if err != nil {
		return nil, false, err
	}
	e.cal[calKey] = tt
	if err := c.saveCal(calKey, tt); err != nil {
		// Persistence is an optimization; the table itself is good.
		return tt, false, nil
	}
	return tt, false, nil
}

// loadCal reads a persisted calibration table; (nil, nil) when absent.
func (c *compileCache) loadCal(key string) (map[string]float64, error) {
	if c.dir == "" || !validHash(key) {
		return nil, nil
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var tt map[string]float64
	if err := json.Unmarshal(data, &tt); err != nil {
		return nil, fmt.Errorf("svc: calibration table %s corrupt: %w", key, err)
	}
	return tt, nil
}

// saveCal persists a calibration table via temp + rename.
func (c *compileCache) saveCal(key string, tt map[string]float64) error {
	if c.dir == "" || !validHash(key) {
		return nil
	}
	data, err := json.MarshalIndent(tt, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, tmpPrefix+key+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(c.dir, key+".json"))
}
