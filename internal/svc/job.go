package svc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mpisim/internal/apps"
	"mpisim/internal/compiler"
	"mpisim/internal/core"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
	"mpisim/internal/trace"
	"mpisim/internal/tracein"
)

// job is the in-memory state of one submission, mirrored record by
// record in the journal (the journal is authoritative: memory is only
// updated after the corresponding record is appended).
type job struct {
	id       string
	spec     *JobSpec
	specHash string
	// workload is the app name or the inline program's name, resolved
	// once at construction so view() never re-parses the program text.
	workload string

	// Per-run telemetry plane, mounted at /jobs/{id}/obs/*.
	reg *obs.Registry
	tl  *obs.Timeline
	ri  *obs.RunInfo
	obs http.Handler

	mu           sync.Mutex
	state        JobState
	errText      string
	snapshot     *sim.Snapshot
	artifact     string
	progress     float64
	cached       bool
	submitted    time.Time
	started      time.Time
	finished     time.Time
	cancel       context.CancelFunc
	cancelWanted bool
}

// newJob builds a job with a fresh telemetry plane.
func newJob(id string, spec *JobSpec, hash string, hostWorkers int) *job {
	reg := obs.NewRegistry(hostWorkers)
	reg.SetEnabled(true)
	tl := obs.NewTimeline(reg, obs.TimelineOptions{})
	tl.SetEnabled(true)
	ri := obs.NewRunInfo()
	name := spec.App
	if name == "" && spec.Trace != "" {
		name = "trace"
		if h, err := tracein.ParseHeader([]byte(spec.Trace)); err == nil && h.App != "" {
			name = h.App
		}
	} else if name == "" {
		if p, err := parseProgram(spec.Program); err == nil {
			name = p.Name
		} else {
			name = "program"
		}
	}
	j := &job{
		id: id, spec: spec, specHash: hash, workload: name,
		reg: reg, tl: tl, ri: ri,
		state:     JobPending,
		submitted: time.Now(),
	}
	j.obs = obs.HandlerWith(reg, obs.HandlerOpts{Timeline: tl, Run: ri})
	return j
}

// apply folds a just-journaled record into the in-memory state.
func (j *job) apply(rec *Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = rec.State
	if rec.Error != "" {
		j.errText = rec.Error
	}
	if rec.Artifact != "" {
		j.artifact = rec.Artifact
	}
	if rec.Progress > 0 {
		j.progress = rec.Progress
	}
	if rec.Cached {
		j.cached = true
	}
	if rec.Snapshot != nil {
		j.snapshot = rec.Snapshot
	}
	switch {
	case rec.State == JobCompiling && j.started.IsZero():
		j.started = time.Now()
	case rec.State.Terminal() && j.finished.IsZero():
		j.finished = time.Now()
	}
}

// runState maps a job state onto the obs run lifecycle.
func (s JobState) runState() obs.RunState {
	switch s {
	case JobCompiling:
		return obs.RunCompiling
	case JobRunning:
		return obs.RunRunning
	case JobDone:
		return obs.RunDone
	case JobAborted:
		return obs.RunAborted
	case JobFailed:
		return obs.RunFailed
	}
	return obs.RunPending
}

// JobView is the JSON representation served by GET /jobs and
// GET /jobs/{id}.
type JobView struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	SpecHash string   `json:"spec_hash"`
	// Workload identifies what runs: the app name or the inline
	// program's name.
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Ranks    int    `json:"ranks"`
	// Progress is the completed fraction in [0,1]; -1 while unknown.
	Progress float64 `json:"progress"`
	// Cached marks a job answered from the artifact cache.
	Cached bool `json:"cached,omitempty"`
	// Error carries the abort reason or failure diagnostic.
	Error string `json:"error,omitempty"`
	// Artifact is the content address of the run artifact, when one
	// exists (complete for done, partial for drained/aborted runs).
	Artifact    string `json:"artifact,omitempty"`
	ArtifactURL string `json:"artifact_url,omitempty"`
	// ObsURL is the per-run telemetry mount.
	ObsURL string `json:"obs_url"`
	// Snapshot is the kernel diagnostic snapshot of a failed/aborted
	// run, when captured.
	Snapshot    *sim.Snapshot `json:"snapshot,omitempty"`
	SubmittedAt time.Time     `json:"submitted_at"`
	StartedAt   *time.Time    `json:"started_at,omitempty"`
	FinishedAt  *time.Time    `json:"finished_at,omitempty"`
}

// view snapshots the job for serving. Live progress comes from the
// telemetry tracker while running; the journaled fraction afterwards.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, State: j.state, SpecHash: j.specHash,
		Workload: j.workload, Mode: j.spec.Mode, Ranks: j.spec.Ranks,
		Progress: -1, Cached: j.cached, Error: j.errText,
		Artifact: j.artifact, Snapshot: j.snapshot,
		ObsURL:      "/jobs/" + j.id + "/obs/",
		SubmittedAt: j.submitted,
	}
	if j.artifact != "" {
		v.ArtifactURL = "/jobs/" + j.id + "/artifact"
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	switch {
	case j.state == JobDone:
		v.Progress = 1
	case j.state.Terminal():
		v.Progress = j.progress
	default:
		if p := j.ri.Status().Percent; p >= 0 {
			v.Progress = p
		}
	}
	return v
}

// requestCancel asks the job to stop: a running job's context is
// cancelled; a job between dequeue and context creation is flagged so
// execute cancels itself as soon as the context exists.
func (j *job) requestCancel() {
	j.mu.Lock()
	cancel := j.cancel
	j.cancelWanted = true
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// setCancel installs the run context's cancel func, honoring a cancel
// that arrived before the context existed.
func (j *job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	wanted := j.cancelWanted
	j.mu.Unlock()
	if wanted {
		cancel()
	}
}

// stateIs reports the current state.
func (j *job) stateIs() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// execute runs one job start to finish on a worker goroutine. Any
// panic — spec materialization (e.g. an app rejecting the rank count),
// compiler, or simulator — is confined to this job: the deferred guard
// journals a failed record and the worker moves on.
func (s *Server) execute(j *job) {
	defer func() {
		if v := recover(); v != nil {
			s.fail(j, fmt.Sprintf("panic: %v", v), nil)
		}
	}()
	if j.stateIs().Terminal() { // cancelled while queued
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.setCancel(cancel)

	if j.spec.Trace != "" {
		s.executeReplay(j, ctx)
		return
	}

	s.transition(j, &Record{State: JobCompiling})
	j.ri.SetState(obs.RunCompiling)

	prog, inputs, m, err := j.spec.materialize()
	if err != nil {
		s.fail(j, err.Error(), nil)
		return
	}
	entry := s.compile.entry(j.spec.compileKey())
	prog, _, compiled, err := entry.get(func() (*ir.Program, *machine.Model, *compiler.Result, error) {
		res, cerr := compiler.Compile(prog)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		return prog, m, res, nil
	})
	if err != nil {
		s.fail(j, fmt.Sprintf("compile: %v", err), nil)
		return
	}

	mode := j.spec.mode()
	tt := j.spec.TaskTimes
	if mode == core.Abstract && tt == nil {
		tt, err = s.calibrated(j, entry, prog, compiled)
		if err != nil {
			s.fail(j, fmt.Sprintf("calibration: %v", err), nil)
			return
		}
	}

	lim := j.spec.Limits
	r := &core.Runner{
		Program: prog, Machine: m, Compiled: compiled,
		TaskTimes:   tt,
		HostWorkers: s.opts.HostWorkers, RealParallel: s.opts.HostWorkers > 1,
		Metrics: j.reg, Timeline: j.tl, RunInfo: j.ri,
		Faults:         j.spec.Faults,
		MaxEvents:      clampI64(limMaxEvents(lim), s.opts.MaxEventsCap),
		MaxVirtualTime: clampF64(limMaxVirtual(lim), s.opts.MaxVirtualTimeCap),
		StallEvents:    limStall(lim, s.opts.StallEvents),
		WallTimeout:    clampDur(lim.wallTimeout(), s.opts.WallTimeoutCap),
		Ctx:            ctx,
		SkipChecks:     j.spec.SkipChecks,
	}
	if tt != nil {
		// Fix the virtual-time horizon so /obs/run progress and ETA
		// divide by the statically predicted end.
		_, _ = r.EstimateHorizon(j.spec.Ranks, inputs)
	}
	s.transition(j, &Record{State: JobRunning})

	rep, runErr := r.Run(mode, j.spec.Ranks, inputs)
	meta := artifactMeta{
		app: j.spec.App, mode: mode.String(),
		machName: r.Machine.Name, inputs: inputs,
		taskLines: r.Compiled.TaskLines(),
	}
	if meta.app == "" {
		meta.app = r.Program.Name
	}
	s.finishJob(j, meta, rep, runErr)
}

// executeReplay is the trace-submission counterpart of execute: instead
// of compiling a program it parses the inline trace (and extrapolates
// it when trace_ranks asks for a larger machine), then replays the
// recorded call schedule under the job's machine/topology/fault
// configuration and budgets. The artifact, journal records, telemetry
// plane and cache behave exactly as for compiled jobs.
func (s *Server) executeReplay(j *job, ctx context.Context) {
	// The parse/extrapolate phase stands in for compilation in the
	// lifecycle.
	s.transition(j, &Record{State: JobCompiling})
	j.ri.SetState(obs.RunCompiling)

	// Validate vetted the trace at admission; parse again defensively so
	// a corrupt journaled spec fails the job rather than the daemon.
	tr, err := tracein.ParseBytes([]byte(j.spec.Trace))
	if err != nil {
		s.fail(j, fmt.Sprintf("trace: %v", err), nil)
		return
	}
	if p := j.spec.TraceRanks; p > 0 && p != tr.Header.Ranks {
		tr, err = tracein.Extrapolate(tr, tracein.ExtrapolateOptions{
			Ranks:  p,
			Inputs: j.spec.Inputs,
			Warn: func(format string, args ...interface{}) {
				s.logf("svc: %s: %s", j.id, fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			s.fail(j, fmt.Sprintf("extrapolate: %v", err), nil)
			return
		}
	}

	machName := j.spec.Machine
	if machName == "" {
		machName = tr.Header.Machine
	}
	m, err := machine.ByName(machName)
	if err != nil {
		s.fail(j, err.Error(), nil)
		return
	}
	if j.spec.Topology != "" {
		m.Topology = j.spec.Topology
	}
	if j.spec.Placement != "" {
		m.Placement = j.spec.Placement
	}

	lim := j.spec.Limits
	if wt := clampDur(lim.wallTimeout(), s.opts.WallTimeoutCap); wt > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wt)
		defer cancel()
	}
	maxEvents := clampI64(limMaxEvents(lim), s.opts.MaxEventsCap)
	maxVirtual := clampF64(limMaxVirtual(lim), s.opts.MaxVirtualTimeCap)
	cfg := mpi.Config{
		Machine:     m,
		HostWorkers: s.opts.HostWorkers, RealParallel: s.opts.HostWorkers > 1,
		Metrics: j.reg, Timeline: j.tl, RunInfo: j.ri,
		Faults: j.spec.Faults,
		Limits: sim.Limits{
			MaxEvents:   maxEvents,
			MaxTime:     sim.Time(maxVirtual),
			StallEvents: limStall(lim, s.opts.StallEvents),
			Ctx:         ctx,
		},
	}

	s.transition(j, &Record{State: JobRunning})
	// mpi.Run does not drive the RunInfo lifecycle itself (core.Runner
	// does for compiled jobs), so replay mirrors it here.
	j.ri.SetHorizon(maxVirtual, maxEvents)
	j.ri.SetState(obs.RunRunning)

	rep, runErr := tracein.Replay(tr, cfg)
	vt := 0.0
	if rep != nil {
		vt = rep.Time
	}
	if runErr != nil {
		reason := runErr.Error()
		if ab, ok := runErr.(*sim.AbortError); ok {
			reason = ab.Reason
		}
		j.ri.Finish(obs.RunAborted, vt, reason)
	} else {
		j.ri.Finish(obs.RunDone, vt, "")
	}

	meta := artifactMeta{
		app: tr.Header.App, mode: j.spec.Mode,
		machName: m.Name, inputs: tr.Header.Inputs,
	}
	if meta.app == "" {
		meta.app = "trace"
	}
	s.finishJob(j, meta, rep, runErr)
}

// calibrated resolves the job's w_i table through the calibration cache
// (memory, then disk, then a real calibration run).
func (s *Server) calibrated(j *job, entry *compileEntry, prog *ir.Program, compiled *compiler.Result) (map[string]float64, error) {
	calRanks := j.spec.effectiveCalRanks()
	calInputs := map[string]float64{}
	if j.spec.App != "" {
		calInputs = appDefaults(j.spec.App, calRanks)
	}
	for k, v := range j.spec.Inputs {
		calInputs[k] = v
	}
	key := j.spec.calKey(calRanks, calInputs)
	tt, _, err := s.compile.calibration(entry, key, func() (map[string]float64, error) {
		_, _, m, merr := j.spec.materialize()
		if merr != nil {
			return nil, merr
		}
		cr := &core.Runner{
			Program: prog, Machine: m, Compiled: compiled,
			HostWorkers: s.opts.HostWorkers, RealParallel: s.opts.HostWorkers > 1,
			RunInfo:    j.ri,
			SkipChecks: j.spec.SkipChecks,
		}
		return cr.Calibrate(calRanks, calInputs)
	})
	return tt, err
}

// appDefaults builds a registered app's default inputs; may panic on
// unsupported rank counts (confined by execute's guard).
func appDefaults(app string, ranks int) map[string]float64 {
	return apps.Registry()[app].Default(ranks)
}

// artifactMeta carries what artifact persistence needs to know about a
// run, independent of whether a compiled program or a replayed trace
// produced it.
type artifactMeta struct {
	app       string
	mode      string
	machName  string
	inputs    map[string]float64
	taskLines []compiler.TaskLine
}

// finishJob maps a run outcome onto the job's terminal record:
//
//	nil error                  → done, complete artifact, cache entry
//	*sim.AbortError            → aborted, partial artifact + progress %
//	*sim.PanicError            → failed, with the kernel's snapshot
//	anything else (check, ...) → failed
func (s *Server) finishJob(j *job, meta artifactMeta, rep *mpi.Report, runErr error) {
	if runErr == nil {
		data, hash, err := s.persistArtifact(meta, rep, 1)
		if err != nil {
			s.fail(j, fmt.Sprintf("artifact: %v", err), nil)
			return
		}
		s.transition(j, &Record{State: JobDone, Artifact: hash, Progress: 1})
		s.rememberArtifact(j.specHash, hash, int64(len(data)))
		return
	}
	var ae *sim.AbortError
	if errors.As(runErr, &ae) {
		rec := &Record{State: JobAborted, Error: ae.Reason, Snapshot: ae.Snapshot}
		if rep != nil {
			rec.Progress = s.runProgress(j)
			if _, hash, err := s.persistArtifact(meta, rep, rec.Progress); err == nil {
				rec.Artifact = hash
			} else {
				// The abort still journals, but the partial artifact is
				// lost; the operator needs to know why.
				s.logf("svc: %s: partial artifact not persisted: %v", j.id, err)
			}
		}
		s.transition(j, rec)
		return
	}
	var pe *sim.PanicError
	if errors.As(runErr, &pe) {
		s.fail(j, runErr.Error(), pe.Snapshot)
		return
	}
	s.fail(j, runErr.Error(), nil)
}

// runProgress is the completed fraction the telemetry tracker last
// observed, clamped to [0,1]; 0 when unknown.
func (s *Server) runProgress(j *job) float64 {
	p := j.ri.Status().Percent
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// persistArtifact encodes the run artifact and stores it under its
// content address. Partiality travels inside the report; progress
// records how much of the run a truncated prediction covers.
func (s *Server) persistArtifact(meta artifactMeta, rep *mpi.Report, progress float64) ([]byte, string, error) {
	art := &trace.Artifact{
		App: meta.app, Mode: meta.mode, Machine: meta.machName,
		Inputs: meta.inputs, Report: rep,
	}
	if rep.Partial {
		art.Progress = progress
	}
	if tls := meta.taskLines; len(tls) > 0 {
		art.TaskLines = make(map[string]int, len(tls))
		art.TaskHeads = make(map[string]string, len(tls))
		for _, tl := range tls {
			art.TaskLines[tl.Task] = tl.Line
			art.TaskHeads[tl.Task] = tl.Head
		}
	}
	data, err := trace.EncodeArtifact(art)
	if err != nil {
		return nil, "", err
	}
	hash, err := s.store.Put(data)
	if err != nil {
		return nil, "", err
	}
	return data, hash, nil
}

// fail journals a failed record (unless the job already reached a
// terminal state) and moves the telemetry tracker to failed.
func (s *Server) fail(j *job, msg string, snap *sim.Snapshot) {
	if j.stateIs().Terminal() {
		return
	}
	s.transition(j, &Record{State: JobFailed, Error: msg, Snapshot: snap})
	j.ri.Finish(obs.RunFailed, 0, msg)
}

// Limit helpers: a request clamps against the operator cap; zero
// requests inherit the cap (or stay unlimited when there is none).

func limMaxEvents(l *SpecLimits) int64 {
	if l == nil {
		return 0
	}
	return l.MaxEvents
}

func limMaxVirtual(l *SpecLimits) float64 {
	if l == nil {
		return 0
	}
	return l.MaxVirtualTime
}

func limStall(l *SpecLimits, def int64) int64 {
	if l != nil && l.StallEvents > 0 {
		return l.StallEvents
	}
	return def
}

func clampI64(req, cap int64) int64 {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	if req < 0 {
		return 0
	}
	return req
}

func clampF64(req, cap float64) float64 {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	if req < 0 {
		return 0
	}
	return req
}

func clampDur(req, cap time.Duration) time.Duration {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	if req < 0 {
		return 0
	}
	return req
}
