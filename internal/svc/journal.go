package svc

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mpisim/internal/sim"
)

// Record is one write-ahead journal entry: a job mutation. The first
// record for a job carries its full spec; later records carry only the
// state transition and its outcome fields. The journal is an append-only
// JSONL file — replaying it start to finish and keeping the last state
// per job reconstructs the job table exactly.
type Record struct {
	// Seq is the journal-wide sequence number, strictly increasing.
	Seq int64 `json:"seq"`
	// Time is the wall-clock append time (diagnostic only; recovery
	// never orders by it).
	Time time.Time `json:"time"`
	// ID is the job this record mutates.
	ID string `json:"id"`
	// State is the job state this record establishes.
	State JobState `json:"state"`
	// Spec is the full submission; set on the initial pending record.
	Spec *JobSpec `json:"spec,omitempty"`
	// SpecHash is the content address of the submission.
	SpecHash string `json:"spec_hash,omitempty"`
	// Artifact is the content address (sha256 hex) of the run artifact
	// in the store, set on done and on aborted-with-partial records.
	Artifact string `json:"artifact,omitempty"`
	// Progress is the completed fraction recorded at the terminal
	// transition (1 for done; the last-snapshot fraction for aborts).
	Progress float64 `json:"progress,omitempty"`
	// Cached marks a done record answered from the artifact cache.
	Cached bool `json:"cached,omitempty"`
	// Error is the abort reason or failure diagnostic.
	Error string `json:"error,omitempty"`
	// Snapshot is the kernel's diagnostic snapshot when a failed or
	// aborted run captured one (*sim.PanicError / *sim.AbortError).
	Snapshot *sim.Snapshot `json:"snapshot,omitempty"`
}

// Journal is the crash-safe append-only job log. Append is serialized
// and (by default) fsynced per record: once a caller observes a record
// as written, a crash cannot lose it.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	seq    int64
	fsync  bool
	closed bool
}

// journalName is the journal file inside a daemon data directory.
const journalName = "journal.jsonl"

// OpenJournal opens (creating if needed) the journal in dir for
// appending. nextSeq must be one past the highest replayed sequence
// number (1 for a fresh directory), and intactSize the byte length of
// the intact prefix both as reported by ReplayJournal (0 for a fresh
// directory). Any torn tail beyond intactSize — the residue of a crash
// mid-append — is truncated away before the first append, so a
// recovered daemon never concatenates a new record onto a torn
// fragment. sync enables per-record fsync.
func OpenJournal(dir string, nextSeq, intactSize int64, sync bool) (*Journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, journalName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if fi.Size() > intactSize {
		if err := f.Truncate(intactSize); err != nil {
			f.Close()
			return nil, fmt.Errorf("svc: journal truncate torn tail: %w", err)
		}
	}
	return &Journal{f: f, seq: nextSeq - 1, fsync: sync}, nil
}

// Append assigns the record its sequence number and timestamp, writes
// it as one JSONL line and (if enabled) fsyncs. It is the write-ahead
// barrier: callers update in-memory state only after Append returns.
func (j *Journal) Append(rec *Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("svc: journal closed")
	}
	j.seq++
	rec.Seq = j.seq
	rec.Time = time.Now().UTC()
	data, err := json.Marshal(rec)
	if err != nil {
		j.seq--
		return fmt.Errorf("svc: journal encode: %w", err)
	}
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("svc: journal write: %w", err)
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("svc: journal sync: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// ReplayJournal reads every intact record from dir's journal, oldest
// first. A missing journal is an empty one. A torn final line — the
// signature of a crash mid-append — is dropped; so is a final line
// missing its newline even when it parses, because Append writes
// record+newline in one write and an unterminated record was never
// acknowledged. A malformed line followed by further intact lines is
// corruption and fails the replay. The second result is the next
// sequence number to append with; the third is the byte length of the
// intact prefix, which OpenJournal truncates to before appending.
func ReplayJournal(dir string) ([]Record, int64, int64, error) {
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return nil, 1, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	var recs []Record
	var off, intact int64
	var badLine int
	br := bufio.NewReaderSize(f, 64*1024)
	line := 0
	for {
		text, rerr := br.ReadBytes('\n')
		if len(text) > 0 {
			line++
			terminated := text[len(text)-1] == '\n'
			body := bytes.TrimSuffix(text, []byte("\n"))
			body = bytes.TrimSuffix(body, []byte("\r"))
			switch {
			case len(body) == 0:
				// Blank line: harmless, stays inside the intact prefix.
				if badLine == 0 && terminated {
					intact = off + int64(len(text))
				}
			case badLine != 0:
				return nil, 0, 0, fmt.Errorf("svc: journal corrupt at line %d (intact records follow)", badLine)
			default:
				var rec Record
				if err := json.Unmarshal(body, &rec); err != nil || !terminated {
					// Tolerated only as the final line (torn append).
					badLine = line
				} else {
					recs = append(recs, rec)
					intact = off + int64(len(text))
				}
			}
			off += int64(len(text))
		}
		if rerr != nil {
			if rerr == io.EOF {
				break
			}
			return nil, 0, 0, fmt.Errorf("svc: journal read: %w", rerr)
		}
	}
	next := int64(1)
	if n := len(recs); n > 0 {
		next = recs[n-1].Seq + 1
	}
	return recs, next, intact, nil
}
